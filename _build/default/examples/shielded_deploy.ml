(** End-to-end shielded deployment: the full SCONE + SGXBounds story.

    Run with:  dune exec examples/shielded_deploy.exe

    The lifecycle a SCONE operator goes through, on the simulated
    machine:

    1. the SGX driver places the enclave at address 0x0 (the paper's
       5-line patch — a stock kernel refuses, which we show);
    2. the application image is loaded page by page and *measured*
       (ECREATE/EADD/EEXTEND/EINIT);
    3. the configuration service verifies the attestation quote before
       provisioning the TLS secret — a tampered image is rejected;
    4. the provisioned service answers requests over an encrypted
       (shielded) channel, hardened with SGXBounds;
    5. a malicious oversized request is stopped by the wrapper check and
       the service keeps running. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Loader = Sb_sgx.Loader
module Scone = Sb_scone.Scone
module Scheme = Sb_protection.Scheme
module Libc = Sb_libc.Simlibc
open Sb_protection.Types

let () =
  Fmt.pr "== Shielded deployment on the simulated SGX machine ==@.@.";

  (* 1. the driver patch *)
  (match Loader.create ~mmap_min_addr:65536 ~size:(1 lsl 20) (Memsys.create (Config.default ())) with
   | _ -> ()
   | exception Loader.Driver_error msg -> Fmt.pr "[1] stock kernel: %s@." msg);
  let ms = Memsys.create (Config.default ()) in
  let enclave = Loader.create ~mmap_min_addr:0 ~size:(1 lsl 20) ms in
  Fmt.pr "[1] patched driver: enclave created at base 0x%x@." (Loader.base enclave);

  (* 2. load + measure the image *)
  List.iter
    (fun page -> ignore (Loader.add_page enclave ~content:page))
    [ "text: server loop"; "text: sgxbounds runtime"; "rodata: config" ];
  Loader.init enclave;
  let mr = Loader.measurement enclave in
  Fmt.pr "[2] image loaded and measured: MRENCLAVE = %Lx@." mr;

  (* 3. attestation gates secret provisioning *)
  let quote = Loader.quote enclave ~report_data:"tls-key-exchange-nonce" in
  Fmt.pr "[3] quote verifies against expected measurement: %b@."
    (Loader.verify_quote ~expected:mr ~report_data:"tls-key-exchange-nonce" quote);
  let tampered = Loader.create ~mmap_min_addr:0 ~size:(1 lsl 20) (Memsys.create (Config.default ())) in
  ignore (Loader.add_page tampered ~content:"text: server loop (backdoored)");
  Loader.init tampered;
  Fmt.pr "    tampered image rejected: %b@."
    (not
       (Loader.verify_quote ~expected:mr ~report_data:"tls-key-exchange-nonce"
          (Loader.quote tampered ~report_data:"tls-key-exchange-nonce")));

  (* 4. serve over a shielded channel, hardened with SGXBounds *)
  let s = Sgxbounds.make ms in
  let world = Scone.create s in
  let conn = Scone.open_channel world ~shield:Scone.Encrypted in
  let buf = s.Scheme.malloc 256 in
  Scone.feed world conn "GET /secret-report";
  let n = Scone.read world conn ~buf ~len:256 in
  Fmt.pr "@.[4] request received over the encrypted shield (%d bytes)@." n;
  let reply = s.Scheme.malloc 64 in
  Libc.strcpy_in s ~dst:reply "200 OK: shielded and bounds-checked";
  ignore (Scone.write world conn ~buf:reply ~len:35);
  Fmt.pr "    reply on the wire: %S@." (Scone.sent world conn);

  (* 5. a malicious oversized request *)
  Scone.feed world conn (String.make 4096 'A');
  (match Scone.read world conn ~buf ~len:4096 with
   | _ -> Fmt.pr "@.[5] oversized request NOT caught (bug)@."
   | exception Violation v ->
     Fmt.pr "@.[5] oversized request stopped by the wrapper: %a@." pp_violation v);
  Fmt.pr "    service continues: %d syscalls served so far@." (Scone.syscalls world)
