(** Multithreading and metadata atomicity (paper §4.1, Figure 4c).

    Run with:  dune exec examples/mpx_race.exe

    Intel MPX keeps a pointer's bounds in a disjoint bounds table. A
    pointer store compiles to TWO operations — the data store and the
    bndstx — with no atomicity between them. Two threads racing on the
    same pointer slot can interleave so that the slot's value and its
    bounds entry belong to *different* objects. bndldx then sees the
    mismatch and hands out INIT (infinite) bounds: the loaded pointer is
    simply unprotected. An attacker who can race threads gets a window
    with no bounds checking at all.

    SGXBounds is immune by construction: pointer and upper bound live in
    the SAME 64-bit word, so every store/load of the pointer moves both
    atomically, and the lower bound is written once at creation.

    The deterministic scheduler below forces the bad interleaving. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Mt = Sb_mt.Mt
open Sb_protection.Types

(* Two threads store different pointers into the same shared slot; each
   thread's data store and metadata update are separated by a yield —
   exactly the non-atomicity of a compiled MPX pointer store. *)
let race (s : Scheme.t) ~slot ~obj1 ~obj2 =
  let store_racy q () =
    Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of slot) ~width:8 q.v;
    Mt.yield ();           (* the other thread runs here *)
    s.Scheme.store_ptr slot q
  in
  Mt.run s.Scheme.ms [| store_racy obj1; store_racy obj2 |];
  (* one more half-finished update: thread A's data store lands after
     thread B's complete update *)
  s.Scheme.store_ptr slot obj1;
  Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of slot) ~width:8 obj2.v;
  s.Scheme.load_ptr slot

let attempt name make =
  let ms = Memsys.create (Config.default ()) in
  let s = make ms in
  let slot = s.Scheme.malloc 8 in
  let obj1 = s.Scheme.malloc 16 in
  let obj2 = s.Scheme.malloc 32 in
  let p = race s ~slot ~obj1 ~obj2 in
  Fmt.pr "%-10s loaded pointer -> 0x%x@." name (s.Scheme.addr_of p);
  (* the pointer in the slot is obj2 (32 bytes); write at offset 40,
     which is out of bounds for either object *)
  match s.Scheme.store (s.Scheme.offset p 40) 1 0xEE with
  | () -> Fmt.pr "%-10s OOB write at +40 went through: UNDETECTED (desync!)@.@." name
  | exception Violation v -> Fmt.pr "%-10s OOB write caught: %a@.@." name pp_violation v

let () =
  Fmt.pr "== Racing pointer updates: MPX desync vs SGXBounds atomicity ==@.@.";
  attempt "mpx" Sb_mpx.Mpx.make;
  attempt "sgxbounds" (fun ms -> Sgxbounds.make ms);
  Fmt.pr "MPX's bounds entry no longer matches the stored pointer, so bndldx@.";
  Fmt.pr "returns INIT bounds and the access is unchecked. The SGXBounds tag@.";
  Fmt.pr "travels inside the pointer word itself — no window exists.@."
