(** Heartbleed, three ways (paper §7, Apache case study).

    Run with:  dune exec examples/heartbleed_survival.exe

    A heartbeat request claims a 256-byte payload but carries 16 bytes.
    The reply copy trusts the claim:

    - native SGX: the reply leaks 240 bytes of adjacent heap memory —
      the enclave's confidentiality is gone despite SGX;
    - SGXBounds (fail-stop): the first out-of-bounds read aborts the
      request with a diagnostic;
    - SGXBounds (boundless memory, §4.2): the out-of-bounds reads are
      redirected and return zeros; the server answers a harmless reply
      and keeps serving — availability *and* confidentiality. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Http = Sb_apps.Http_sim

let attempt name make =
  let ms = Memsys.create (Config.default ()) in
  let ctx = Sb_workloads.Wctx.make (make ms) in
  let outcome =
    match Http.heartbeat ctx ~claimed_len:256 with
    | Http.Leaked m -> "LEAKED — " ^ m
    | Http.Detected -> "detected: request aborted (fail-stop)"
    | Http.Contained_zeros -> "survived: reply zero-padded, no leak, server keeps running"
    | Http.Corrupted -> "memory corrupted"
    | Http.Harmless -> "harmless"
  in
  Fmt.pr "%-24s %s@." name outcome

let () =
  Fmt.pr "== Heartbleed inside the enclave ==@.@.";
  attempt "native SGX" Sb_protection.Native.make;
  attempt "sgxbounds (fail-stop)" (fun ms -> Sgxbounds.make ms);
  attempt "sgxbounds (boundless)" (fun ms -> Sgxbounds.make ~mode:Sgxbounds.Boundless_mode ms);
  Fmt.pr "@.And a benign 16-byte heartbeat still works in every mode:@.";
  let ms = Memsys.create (Config.default ()) in
  let ctx = Sb_workloads.Wctx.make (Sgxbounds.make ~mode:Sgxbounds.Boundless_mode ms) in
  match Http.heartbeat ctx ~claimed_len:16 with
  | Http.Harmless -> Fmt.pr "%-24s benign heartbeat answered normally@." "sgxbounds (boundless)"
  | _ -> Fmt.pr "unexpected outcome for the benign heartbeat@."
