(** Hardening a real service: the Memcached model end to end.

    Run with:  dune exec examples/kvstore_hardening.exe

    This example is the workflow a SCONE user would follow: take the
    service, run it natively inside the enclave, then re-"compile" it
    with each memory-safety scheme and compare (a) the performance and
    memory cost under a memaslap-style load, and (b) what happens when
    the CVE-2011-4971 packet arrives. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Memcached = Sb_apps.Memcached_sim

let bench name make =
  let ms = Memsys.create (Config.default ()) in
  let s = make ms in
  let ctx = Sb_workloads.Wctx.make ~threads:4 s in
  match
    let t = Memcached.create ctx in
    Memcached.memaslap t ~keys:4096 ~ops:20000
  with
  | exception Sb_protection.Types.App_crash msg ->
    Fmt.pr "%-12s CRASHED: %s@." name msg;
    None
  | elapsed, ops ->
    let kops = float_of_int ops /. (float_of_int elapsed /. 1e9) /. 1000. in
    Fmt.pr "%-12s %8.0f kops/s   peak memory %a@." name kops Sb_machine.Util.pp_bytes
      (Scheme.peak_vm s);
    Some kops

let cve name make =
  let ms = Memsys.create (Config.default ()) in
  let ctx = Sb_workloads.Wctx.make (make ms) in
  let t = Memcached.create ctx in
  let verdict =
    match Memcached.handle_binary_packet t ~body_len:(-1024) with
    | Memcached.Processed -> "processed (?)"
    | Memcached.Corrupted -> "heap corrupted — confidentiality and integrity gone"
    | Memcached.Detected_dropped -> "detected; request dropped with EINVAL, service continues"
    | Memcached.Crashed_segfault -> "segfault — denial of service"
    | Memcached.Survived_looping ->
      "boundless memory: content discarded, but the logic loops (paper §7)"
  in
  Fmt.pr "%-12s %s@." name verdict

let () =
  Fmt.pr "== Hardening a key-value store (memaslap load, 4 threads) ==@.@.";
  let base = bench "native-sgx" Sb_protection.Native.make in
  let hardened = bench "sgxbounds" (fun ms -> Sgxbounds.make ms) in
  ignore (bench "asan" (fun ms -> Sb_asan.Asan.make ms));
  ignore (bench "mpx" Sb_mpx.Mpx.make);
  (match (base, hardened) with
   | Some b, Some h ->
     Fmt.pr "@.sgxbounds keeps %.0f%% of native-SGX throughput@." (100. *. h /. b)
   | _ -> ());
  Fmt.pr "@.== CVE-2011-4971: packet with negative body length ==@.@.";
  cve "native-sgx" Sb_protection.Native.make;
  cve "sgxbounds" (fun ms -> Sgxbounds.make ms);
  cve "asan" (fun ms -> Sb_asan.Asan.make ms);
  cve "mpx" Sb_mpx.Mpx.make
