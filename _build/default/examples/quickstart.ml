(** Quickstart: harden a tiny program with SGXBounds.

    Run with:  dune exec examples/quickstart.exe

    The "program" below allocates a buffer inside the simulated enclave,
    fills it, then walks one element too far — the classic off-by-one.
    Compiled natively the bug silently reads a neighbouring object;
    compiled with SGXBounds the tagged pointer carries the object's
    upper bound and the very first out-of-bounds access is caught. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

(* The program, written once against the protection interface — think of
   this as the source code the LLVM pass instruments. *)
let program (s : Scheme.t) =
  let buf = s.Scheme.malloc 64 in
  let secret = s.Scheme.malloc 16 in
  s.Scheme.store secret 8 0xDEADBEEF;
  for i = 0 to 63 do
    s.Scheme.store (s.Scheme.offset buf i) 1 (i land 0xff)
  done;
  (* off-by-one: i <= 64 *)
  let sum = ref 0 in
  for i = 0 to 64 do
    sum := !sum + s.Scheme.load (s.Scheme.offset buf i) 1
  done;
  !sum

let run name make =
  (* a fresh simulated enclave machine: 32-bit address space, caches,
     EPC paging, everything *)
  let ms = Memsys.create (Config.default ()) in
  let s = make ms in
  (match program s with
   | sum -> Fmt.pr "%-10s ran to completion, sum = %d  (bug undetected!)@." name sum
   | exception Violation v -> Fmt.pr "%-10s %a@." name pp_violation v);
  let snap = Memsys.snapshot ms in
  Fmt.pr "%-10s cycles=%d, memory=%a@.@." name snap.Memsys.cycles
    Sb_machine.Util.pp_bytes (Scheme.peak_vm s)

let () =
  Fmt.pr "== Quickstart: an off-by-one under native vs SGXBounds ==@.@.";
  run "native" Sb_protection.Native.make;
  run "sgxbounds" (fun ms -> Sgxbounds.make ms);
  Fmt.pr "SGXBounds catches the 65th access: the pointer's upper half holds@.";
  Fmt.pr "the object's upper bound, and the check costs two ALU ops plus one@.";
  Fmt.pr "in-cache-line load of the lower bound (paper, Figure 5).@."
