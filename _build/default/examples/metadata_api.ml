(** The metadata-management API (paper §4.3, Table 2).

    Run with:  dune exec examples/metadata_api.exe

    SGXBounds' memory layout keeps an object's metadata right after the
    object: the mandatory 4-byte lower bound, then one slot per plugin.
    Plugins get the paper's three hooks (on_create / on_access /
    on_delete). This example registers two:

    - the double-free guard from the paper ("a magic number to compare
      with"), which turns a silent heap corruption into a diagnostic;
    - an origin tracker that stamps an allocation-site id readable when
      debugging a detected violation. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Meta = Sgxbounds.Meta
open Sb_protection.Types

let () =
  Fmt.pr "== Metadata plugins: double-free guard + origin tracking ==@.@.";
  let ms = Memsys.create (Config.default ()) in
  let site_id = 4021 in
  let s =
    Sgxbounds.make ~plugins:[ Meta.double_free_guard; Meta.origin_tracker ~site:site_id ] ms
  in
  let p = s.Scheme.malloc 48 in
  Fmt.pr "allocated 48 bytes at 0x%x@." (s.Scheme.addr_of p);

  (* the metadata area sits right after the object: LB, then the plugin
     slots, in registration order *)
  let ub = Sgxbounds.Tagged.ub_of p.v in
  let vm = Memsys.vmem ms in
  Fmt.pr "metadata area at 0x%x: LB=0x%x  magic=0x%x  site=%d@." ub
    (Sb_vmem.Vmem.load vm ~addr:ub ~width:4)
    (Sb_vmem.Vmem.load vm ~addr:(ub + 4) ~width:4)
    (Sb_vmem.Vmem.load vm ~addr:(ub + 8) ~width:4);

  s.Scheme.free p;
  Fmt.pr "first free: ok (magic cleared)@.";
  (match s.Scheme.free p with
   | () -> Fmt.pr "second free: NOT DETECTED (bug)@."
   | exception Violation v -> Fmt.pr "second free: %a@." pp_violation v);

  (* the origin tracker in action: find where a flagged object came from *)
  let q = s.Scheme.malloc 16 in
  (match s.Scheme.load (s.Scheme.offset q 99) 1 with
   | _ -> ()
   | exception Violation v ->
     let site = Sb_vmem.Vmem.load vm ~addr:(v.hi + 8) ~width:4 in
     Fmt.pr "@.out-of-bounds access detected; offending object was allocated at site %d@." site)
