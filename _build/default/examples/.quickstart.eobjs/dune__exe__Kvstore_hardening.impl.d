examples/kvstore_hardening.ml: Fmt Sb_apps Sb_asan Sb_machine Sb_mpx Sb_protection Sb_sgx Sb_workloads Sgxbounds
