examples/quickstart.mli:
