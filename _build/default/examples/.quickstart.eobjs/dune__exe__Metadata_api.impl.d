examples/metadata_api.ml: Fmt Sb_machine Sb_protection Sb_sgx Sb_vmem Sgxbounds
