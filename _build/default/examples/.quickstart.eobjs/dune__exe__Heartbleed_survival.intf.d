examples/heartbleed_survival.mli:
