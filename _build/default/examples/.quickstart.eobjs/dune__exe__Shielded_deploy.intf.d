examples/shielded_deploy.mli:
