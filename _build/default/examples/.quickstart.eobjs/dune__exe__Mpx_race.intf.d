examples/mpx_race.mli:
