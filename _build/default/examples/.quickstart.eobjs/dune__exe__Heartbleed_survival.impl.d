examples/heartbleed_survival.ml: Fmt Sb_apps Sb_machine Sb_protection Sb_sgx Sb_workloads Sgxbounds
