examples/metadata_api.mli:
