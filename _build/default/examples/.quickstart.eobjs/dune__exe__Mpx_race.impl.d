examples/mpx_race.ml: Fmt Sb_machine Sb_mpx Sb_mt Sb_protection Sb_sgx Sgxbounds
