examples/quickstart.ml: Fmt Sb_machine Sb_protection Sb_sgx Sgxbounds
