examples/shielded_deploy.ml: Fmt List Sb_libc Sb_machine Sb_protection Sb_scone Sb_sgx Sgxbounds String
