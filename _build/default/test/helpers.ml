(** Shared fixtures for the test suites. *)

module Config = Sb_machine.Config
module Vmem = Sb_vmem.Vmem
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

let cfg ?env ?scale () = Config.default ?env ?scale ()

let ms ?env ?scale () = Memsys.create (cfg ?env ?scale ())

type scheme_maker = Memsys.t -> Scheme.t

let native : scheme_maker = Sb_protection.Native.make
let sgxb : scheme_maker = fun m -> Sgxbounds.make m
let sgxb_noopt : scheme_maker = fun m -> Sgxbounds.make ~opts:Sgxbounds.no_opts m
let sgxb_boundless : scheme_maker = fun m -> Sgxbounds.make ~mode:Sgxbounds.Boundless_mode m
let asan : scheme_maker = fun m -> Sb_asan.Asan.make m
let mpx : scheme_maker = Sb_mpx.Mpx.make
let baggy : scheme_maker = fun m -> Sb_baggy.Baggy.make m

let fresh maker =
  let m = ms () in
  (m, maker m)

(** Run [f] and return [Some violation] if the scheme detected one. *)
let catches f =
  match f () with
  | () -> None
  | exception Violation v -> Some v

let check_detects name f =
  Alcotest.(check bool) name true (catches f <> None)

let check_allows name f =
  match f () with
  | () -> ()
  | exception Violation v ->
    Alcotest.failf "%s: unexpected violation: %a" name pp_violation v

(** All schemes that claim full object-bounds protection. *)
let protecting_schemes = [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let all_schemes =
  [ ("native", native); ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx); ("baggy", baggy) ]

let qtest = QCheck_alcotest.to_alcotest
