open Helpers
open Sb_protection.Types

let test_inbounds_ok () =
  let _, s = fresh baggy in
  let p = s.Scheme.malloc 64 in
  check_allows "in-bounds" (fun () ->
      for i = 0 to 63 do
        s.Scheme.store (s.Scheme.offset p i) 1 i
      done)

let test_allocation_bounds_semantics () =
  (* Baggy enforces allocation (power-of-two) bounds: an overflow inside
     the block's padding is NOT detected; beyond the block it is. *)
  let _, s = fresh baggy in
  let p = s.Scheme.malloc 100 in (* block is 128 *)
  check_allows "slop inside the 128-byte block" (fun () ->
      s.Scheme.store (s.Scheme.offset p 120) 1 0);
  check_detects "beyond the block" (fun () -> s.Scheme.store (s.Scheme.offset p 128) 1 0)

let test_exact_pow2_detected () =
  let _, s = fresh baggy in
  let p = s.Scheme.malloc 64 in (* block is exactly 64 *)
  check_detects "off-by-one on exact block" (fun () ->
      s.Scheme.store (s.Scheme.offset p 64) 1 0)

let test_free_space_access_detected () =
  let _, s = fresh baggy in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  check_detects "access to freed block" (fun () -> ignore (s.Scheme.load p 1))

let test_bounds_derived_from_interior_pointer () =
  let _, s = fresh baggy in
  let p = s.Scheme.malloc 64 in
  let q = s.Scheme.offset p 32 in
  check_allows "interior pointer fine" (fun () -> ignore (s.Scheme.load q 4));
  check_detects "interior pointer bounded" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset q 32) 4))

let prop_slop_never_flagged_inside_block =
  QCheck.Test.make ~name:"baggy: accesses inside the pow2 block pass" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 0 255))
    (fun (size, off) ->
       let _, s = fresh baggy in
       let p = s.Scheme.malloc size in
       let block = Sb_machine.Util.next_pow2 (max size 16) in
       QCheck.assume (off < block);
       match s.Scheme.store (s.Scheme.offset p off) 1 1 with
       | () -> true
       | exception Violation _ -> false)

let suite =
  [
    Alcotest.test_case "in-bounds accesses pass" `Quick test_inbounds_ok;
    Alcotest.test_case "allocation-bounds slop allowed" `Quick test_allocation_bounds_semantics;
    Alcotest.test_case "exact pow2 off-by-one detected" `Quick test_exact_pow2_detected;
    Alcotest.test_case "freed block access detected" `Quick test_free_space_access_detected;
    Alcotest.test_case "interior pointers derive bounds" `Quick test_bounds_derived_from_interior_pointer;
    qtest prop_slop_never_flagged_inside_block;
  ]
