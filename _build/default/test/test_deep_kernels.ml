(** Correctness tests for the full-algorithm SPEC kernels: the simulated
    programs must compute *right answers*, not just traffic. *)

open Helpers
module Wctx = Sb_workloads.Wctx
module Bzip2 = Sb_workloads.Spec_bzip2
module Astar = Sb_workloads.Spec_astar
module Sjeng = Sb_workloads.Spec_sjeng
module Gobmk = Sb_workloads.Spec_gobmk
module Hmmer = Sb_workloads.Spec_hmmer
module Quantum = Sb_workloads.Spec_libquantum
module Scheme = Sb_protection.Scheme

let ctx_of maker = Wctx.make ((fun m -> maker m) (ms ()))

(* ---- bzip2 ---- *)

let test_bwt_invertible () =
  let ctx = ctx_of sgxb in
  let len = 128 in
  let data = Wctx.array ctx len 1 in
  Wctx.fill_random ctx data len 1;
  let out = Wctx.array ctx len 1 in
  let order = Wctx.array ctx (len * 4) 1 in
  let primary = Bzip2.bwt_block ctx ~data ~out ~order ~len in
  let original =
    Sb_vmem.Vmem.read_string (Memsys.vmem ctx.Wctx.ms)
      ~addr:(ctx.Wctx.s.Scheme.addr_of data) ~len
  in
  let last_col =
    Sb_vmem.Vmem.read_string (Memsys.vmem ctx.Wctx.ms)
      ~addr:(ctx.Wctx.s.Scheme.addr_of out) ~len
  in
  Alcotest.(check string) "inverse BWT recovers the block" original
    (Bzip2.inverse_bwt last_col primary)

let test_bwt_permutes () =
  (* the BWT output is a permutation of the input bytes *)
  let ctx = ctx_of native in
  let len = 64 in
  let data = Wctx.array ctx len 1 in
  Wctx.fill_random ctx data len 1;
  let out = Wctx.array ctx len 1 in
  let order = Wctx.array ctx (len * 4) 1 in
  ignore (Bzip2.bwt_block ctx ~data ~out ~order ~len);
  let bytes_of p =
    let s =
      Sb_vmem.Vmem.read_string (Memsys.vmem ctx.Wctx.ms)
        ~addr:(ctx.Wctx.s.Scheme.addr_of p) ~len
    in
    List.sort compare (List.init len (String.get s))
  in
  Alcotest.(check bool) "same multiset of bytes" true (bytes_of data = bytes_of out)

(* ---- astar ---- *)

let test_astar_finds_valid_path () =
  let ctx = ctx_of sgxb in
  let g = Astar.build ctx ~w:24 ~h:24 ~wall_pct:20 in
  match Astar.search ctx g with
  | None -> Alcotest.fail "a path must exist (walls are finite-cost)"
  | Some path ->
    let goal = (24 * 24) - 1 in
    (match path with
     | first :: _ -> Alcotest.(check int) "starts at 0" 0 first
     | [] -> Alcotest.fail "empty path");
    Alcotest.(check int) "ends at the goal" goal (List.nth path (List.length path - 1));
    (* consecutive nodes are grid neighbours *)
    let rec ok = function
      | a :: (b :: _ as rest) ->
        let ax = a mod 24 and ay = a / 24 and bx = b mod 24 and by = b / 24 in
        abs (ax - bx) + abs (ay - by) = 1 && ok rest
      | _ -> true
    in
    Alcotest.(check bool) "steps are adjacent" true (ok path)

let test_astar_prefers_cheap_terrain () =
  (* on an open grid the path length equals the Manhattan distance *)
  let ctx = ctx_of native in
  let g = Astar.build ctx ~w:16 ~h:16 ~wall_pct:0 in
  match Astar.search ctx g with
  | None -> Alcotest.fail "path must exist"
  | Some path ->
    Alcotest.(check int) "shortest path length" (15 + 15 + 1) (List.length path)

(* ---- sjeng ---- *)

let test_alphabeta_equals_minimax () =
  let ctx = ctx_of native in
  let g = Sjeng.create ctx ~side:4 ~tt_entries:1024 in
  (* a few fixed stones *)
  Sjeng.set_cell ctx g 1 1;
  Sjeng.set_cell ctx g 6 2;
  List.iter
    (fun depth ->
       let ab =
         Sjeng.alphabeta ~use_tt:false ctx g ~depth ~alpha:min_int ~beta:max_int ~player:1
       in
       let mm = Sjeng.minimax ctx g ~depth ~player:1 in
       Alcotest.(check int) (Printf.sprintf "depth %d" depth) mm ab)
    [ 1; 2; 3; 4 ]

let test_alphabeta_prunes () =
  let ctx = ctx_of native in
  let g = Sjeng.create ctx ~side:6 ~tt_entries:1024 in
  ignore (Sjeng.alphabeta ~use_tt:false ctx g ~depth:4 ~alpha:min_int ~beta:max_int ~player:1);
  let pruned = g.Sjeng.nodes in
  g.Sjeng.nodes <- 0;
  ignore (Sjeng.minimax ctx g ~depth:4 ~player:1);
  (* minimax doesn't count nodes; compare against the full tree size *)
  let full = 1 + 5 + 25 + 125 + 625 in
  Alcotest.(check bool) "alpha-beta visits fewer nodes" true (pruned < full)

let test_tt_hits_accumulate () =
  let ctx = ctx_of native in
  let g = Sjeng.create ctx ~side:6 ~tt_entries:4096 in
  ignore (Sjeng.alphabeta ctx g ~depth:4 ~alpha:min_int ~beta:max_int ~player:1);
  ignore (Sjeng.alphabeta ctx g ~depth:4 ~alpha:min_int ~beta:max_int ~player:1);
  Alcotest.(check bool) "second search hits the table" true (g.Sjeng.tt_hits > 0)

(* ---- gobmk ---- *)

let test_capture () =
  let ctx = ctx_of sgxb in
  let b = Gobmk.create ctx in
  (* white stone at (1,1) surrounded by black on three sides *)
  let at x y = (y * 9) + x in
  Alcotest.(check bool) "place white" true (Gobmk.place ctx b (at 1 1) 2);
  Alcotest.(check bool) "b1" true (Gobmk.place ctx b (at 0 1) 1);
  Alcotest.(check bool) "b2" true (Gobmk.place ctx b (at 2 1) 1);
  Alcotest.(check bool) "b3" true (Gobmk.place ctx b (at 1 0) 1);
  Alcotest.(check int) "not captured yet" 2 (Gobmk.stone ctx b (at 1 1));
  Alcotest.(check bool) "b4 captures" true (Gobmk.place ctx b (at 1 2) 1);
  Alcotest.(check int) "white stone removed" 0 (Gobmk.stone ctx b (at 1 1));
  Alcotest.(check int) "capture counted" 1 b.Gobmk.captures

let test_group_liberties () =
  let ctx = ctx_of native in
  let b = Gobmk.create ctx in
  let at x y = (y * 9) + x in
  ignore (Gobmk.place ctx b (at 4 4) 1);
  ignore (Gobmk.place ctx b (at 5 4) 1);
  let members, libs = Gobmk.group_liberties ctx b (at 4 4) in
  Alcotest.(check int) "two-stone group" 2 (List.length members);
  Alcotest.(check int) "six liberties" 6 libs

let test_suicide_refused () =
  let ctx = ctx_of native in
  let b = Gobmk.create ctx in
  let at x y = (y * 9) + x in
  (* black surrounds the corner point *)
  ignore (Gobmk.place ctx b (at 1 0) 1);
  ignore (Gobmk.place ctx b (at 0 1) 1);
  Alcotest.(check bool) "white corner move is suicide" false (Gobmk.place ctx b (at 0 0) 2);
  Alcotest.(check int) "square stays empty" 0 (Gobmk.stone ctx b (at 0 0))

(* ---- hmmer ---- *)

let test_viterbi_traceback_consistent () =
  let ctx = ctx_of sgxb in
  let md = Hmmer.random_model ctx ~m:16 in
  let l = 24 in
  let seq = Wctx.array ctx l 1 in
  Wctx.fill_random ctx seq l 1;
  let score, ops = Hmmer.viterbi ctx md ~seq ~l in
  Alcotest.(check bool) "finite score" true (score > Hmmer.neg_inf);
  (* the ops walk must account for matches+inserts = residues consumed
     and matches+deletes = profile columns consumed *)
  let m_ct = List.length (List.filter (( = ) 1) ops) in
  let i_ct = List.length (List.filter (( = ) 2) ops) in
  let d_ct = List.length (List.filter (( = ) 3) ops) in
  Alcotest.(check bool) "ops present" true (ops <> []);
  Alcotest.(check bool) "residues covered" true (m_ct + i_ct <= l);
  Alcotest.(check bool) "columns covered" true (m_ct + d_ct <= 16)

let test_viterbi_deterministic () =
  let run () =
    let ctx = ctx_of native in
    let md = Hmmer.random_model ctx ~m:16 in
    let l = 24 in
    let seq = Wctx.array ctx l 1 in
    Wctx.fill_random ctx seq l 1;
    fst (Hmmer.viterbi ctx md ~seq ~l)
  in
  Alcotest.(check int) "same score across runs" (run ()) (run ())

(* ---- libquantum ---- *)

let test_grover_finds_marked () =
  let ctx = ctx_of sgxb in
  let r = Quantum.create ctx ~qubits:8 in
  Alcotest.(check int) "Grover amplifies the marked state" 77
    (Quantum.grover ctx r ~marked:77)

let test_grover_other_mark () =
  let ctx = ctx_of native in
  let r = Quantum.create ctx ~qubits:7 in
  Alcotest.(check int) "works for other marks too" 3 (Quantum.grover ctx r ~marked:3)

(* every deep kernel still runs clean under the protecting schemes *)
let deep_runs_clean =
  List.concat_map
    (fun wname ->
       [
         Alcotest.test_case (wname ^ " clean under sgxbounds-noopt") `Quick (fun () ->
             let ctx = Wctx.make (sgxb_noopt (ms ())) in
             (Sb_workloads.Registry.find wname).Sb_workloads.Registry.run ctx
               ~n:(max 64 ((Sb_workloads.Registry.find wname).Sb_workloads.Registry.default_n / 32)));
       ])
    [ "bzip2"; "astar"; "sjeng"; "gobmk"; "hmmer"; "libquantum" ]

let suite =
  [
    Alcotest.test_case "bzip2: BWT invertible" `Quick test_bwt_invertible;
    Alcotest.test_case "bzip2: BWT is a permutation" `Quick test_bwt_permutes;
    Alcotest.test_case "astar: valid path" `Quick test_astar_finds_valid_path;
    Alcotest.test_case "astar: shortest on open grid" `Quick test_astar_prefers_cheap_terrain;
    Alcotest.test_case "sjeng: alpha-beta sound vs minimax" `Quick test_alphabeta_equals_minimax;
    Alcotest.test_case "sjeng: alpha-beta prunes" `Quick test_alphabeta_prunes;
    Alcotest.test_case "sjeng: TT hits accumulate" `Quick test_tt_hits_accumulate;
    Alcotest.test_case "gobmk: capture mechanics" `Quick test_capture;
    Alcotest.test_case "gobmk: group liberties" `Quick test_group_liberties;
    Alcotest.test_case "gobmk: suicide refused" `Quick test_suicide_refused;
    Alcotest.test_case "hmmer: viterbi traceback consistent" `Quick test_viterbi_traceback_consistent;
    Alcotest.test_case "hmmer: deterministic" `Quick test_viterbi_deterministic;
    Alcotest.test_case "libquantum: Grover finds the marked state" `Quick test_grover_finds_marked;
    Alcotest.test_case "libquantum: Grover (other mark)" `Quick test_grover_other_mark;
  ]
  @ deep_runs_clean

(* ---- dedup ---- *)

module Dedup = Sb_workloads.Parsec_dedup

let fill_stream ctx stream ~len ~seed =
  Wctx.write_seq ctx stream ~lo:0 ~hi:(len / 4) ~width:4 (fun i ->
      ((seed * 131) + (i * 7) + (i lsr 5)) land 0xFFFFFF)

let test_dedup_content_defined () =
  (* identical content produces identical chunk boundaries *)
  let ctx = ctx_of native in
  let st = Dedup.create_store ctx ~nbuckets:256 in
  let len = 4096 in
  let s1 = Wctx.array ctx len 1 and s2 = Wctx.array ctx len 1 in
  fill_stream ctx s1 ~len ~seed:7;
  fill_stream ctx s2 ~len ~seed:7;
  let b1 = Dedup.chunk_stream ctx st s1 ~len in
  let b2 = Dedup.chunk_stream ctx st s2 ~len in
  Alcotest.(check (list int)) "same boundaries" b1 b2

let test_dedup_duplicates_not_stored () =
  let ctx = ctx_of sgxb in
  let st = Dedup.create_store ctx ~nbuckets:256 in
  let len = 4096 in
  let s1 = Wctx.array ctx len 1 in
  fill_stream ctx s1 ~len ~seed:3;
  ignore (Dedup.chunk_stream ctx st s1 ~len);
  let stored_after_first = st.Dedup.stored_bytes in
  ignore (Dedup.chunk_stream ctx st s1 ~len);
  Alcotest.(check int) "second pass stores nothing" stored_after_first st.Dedup.stored_bytes;
  Alcotest.(check bool) "duplicates counted" true (st.Dedup.dup_chunks > 0)

let test_dedup_fresh_content_stored () =
  let ctx = ctx_of native in
  let st = Dedup.create_store ctx ~nbuckets:256 in
  let len = 4096 in
  let s1 = Wctx.array ctx len 1 in
  fill_stream ctx s1 ~len ~seed:1;
  ignore (Dedup.chunk_stream ctx st s1 ~len);
  let first = st.Dedup.stored_bytes in
  fill_stream ctx s1 ~len ~seed:2;
  ignore (Dedup.chunk_stream ctx st s1 ~len);
  Alcotest.(check bool) "fresh content stored" true (st.Dedup.stored_bytes > first);
  Alcotest.(check int) "every byte accounted once" (2 * len) st.Dedup.stored_bytes

let dedup_suite =
  [
    Alcotest.test_case "dedup: chunking is content-defined" `Quick test_dedup_content_defined;
    Alcotest.test_case "dedup: duplicates not stored twice" `Quick test_dedup_duplicates_not_stored;
    Alcotest.test_case "dedup: fresh content stored once" `Quick test_dedup_fresh_content_stored;
  ]

let suite = suite @ dedup_suite

(* ---- pca ---- *)

module Pca = Sb_workloads.Phoenix_pca

let test_pca_recovers_planted_direction () =
  let ctx = ctx_of sgxb in
  let m, u = Pca.build ctx ~n:48 ~noise:4 in
  let v = Pca.power_iteration ctx m ~iters:4 in
  Alcotest.(check bool) "dominant direction recovered (cos^2 > 90%)" true
    (Pca.alignment_pct v u > 90)

let test_pca_iteration_stable () =
  (* more iterations must not destroy alignment *)
  let ctx = ctx_of native in
  let m, u = Pca.build ctx ~n:32 ~noise:2 in
  let v2 = Pca.power_iteration ctx m ~iters:2 in
  let v6 = Pca.power_iteration ctx m ~iters:6 in
  Alcotest.(check bool) "still aligned" true
    (Pca.alignment_pct v6 u >= Pca.alignment_pct v2 u - 5)

let pca_suite =
  [
    Alcotest.test_case "pca: recovers the planted direction" `Quick
      test_pca_recovers_planted_direction;
    Alcotest.test_case "pca: iteration is stable" `Quick test_pca_iteration_stable;
  ]

let suite = suite @ pca_suite
