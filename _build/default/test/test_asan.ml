open Helpers
open Sb_protection.Types

let test_inbounds_ok () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  check_allows "in-bounds" (fun () ->
      for i = 0 to 63 do
        s.Scheme.store (s.Scheme.offset p i) 1 i
      done)

let test_redzone_detected () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  check_detects "right redzone" (fun () -> s.Scheme.store (s.Scheme.offset p 64) 1 0);
  check_detects "left redzone" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p (-1)) 1))

let test_unaligned_tail () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 13 in
  check_allows "last byte ok" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p 12) 1));
  check_detects "byte 13 is partial-granule poison" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset p 13) 1))

let test_use_after_free () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  check_detects "use after free" (fun () -> ignore (s.Scheme.load p 1))

let test_double_free () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  check_detects "double free" (fun () -> s.Scheme.free p)

let test_quarantine_delays_reuse () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  let q = s.Scheme.malloc 64 in
  Alcotest.(check bool) "freed chunk not immediately reused"
    true (s.Scheme.addr_of p <> s.Scheme.addr_of q)

let test_quarantine_footprint_grows_under_churn () =
  let m, s = fresh asan in
  (* The swaptions effect: constant alloc/free of tiny objects inflates
     the footprint versus the native allocator (c.f. the same loop in
     test_alloc, which stays flat). *)
  for _ = 1 to 10_000 do
    let p = s.Scheme.malloc 48 in
    s.Scheme.free p
  done;
  let peak = Sb_vmem.Vmem.peak_reserved_bytes (Memsys.vmem m) in
  Alcotest.(check bool) "footprint inflated by quarantine" true (peak > 1024 * 1024)

let test_shadow_constant_reservation () =
  let m, s = fresh asan in
  ignore s;
  let expected = Sb_machine.Config.scaled (Memsys.cfg m) (512 * 1024 * 1024) in
  Alcotest.(check bool) "512MB-scaled shadow reserved up-front" true
    (Sb_vmem.Vmem.reserved_bytes (Memsys.vmem m) >= expected)

let test_globals_and_stack_redzones () =
  let _, s = fresh asan in
  let g = s.Scheme.global 32 in
  check_detects "global redzone" (fun () -> s.Scheme.store (s.Scheme.offset g 32) 1 0);
  let tok = s.Scheme.stack_push () in
  let b = s.Scheme.stack_alloc 32 in
  check_detects "stack redzone" (fun () -> s.Scheme.store (s.Scheme.offset b 32) 1 0);
  s.Scheme.stack_pop tok

let test_stack_pop_unpoisons () =
  let _, s = fresh asan in
  let tok = s.Scheme.stack_push () in
  let _b = s.Scheme.stack_alloc 32 in
  s.Scheme.stack_pop tok;
  let tok2 = s.Scheme.stack_push () in
  let b2 = s.Scheme.stack_alloc 64 in
  check_allows "reused stack memory clean" (fun () ->
      for i = 0 to 63 do
        s.Scheme.store (s.Scheme.offset b2 i) 1 0
      done);
  s.Scheme.stack_pop tok2

let test_no_pointer_metadata () =
  (* ASan pointers through memory lose nothing — there is nothing to
     lose; a swapped pointer is as (un)protected as the original. *)
  let _, s = fresh asan in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store_ptr slot obj;
  let obj' = s.Scheme.load_ptr slot in
  check_allows "loaded pointer usable" (fun () -> s.Scheme.store obj' 1 1);
  (* Redzone still catches adjacent overflow... *)
  check_detects "redzone catch" (fun () -> s.Scheme.store (s.Scheme.offset obj' 16) 1 1)

let test_interceptor_checks_range () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 32 in
  check_allows "32 ok" (fun () -> s.Scheme.libc_check p 32 Write);
  check_detects "33 crosses redzone" (fun () -> s.Scheme.libc_check p 33 Write)

let test_far_oob_inside_another_object_missed () =
  (* ASan's known blind spot: an OOB that lands inside another valid
     object (skipping the redzone) is not detected. *)
  let _, s = fresh asan in
  let a = s.Scheme.malloc 64 in
  let _gap = s.Scheme.malloc 64 in
  let b = s.Scheme.malloc 64 in
  let delta = s.Scheme.addr_of b - s.Scheme.addr_of a in
  check_allows "far overflow into b undetected" (fun () ->
      s.Scheme.store (s.Scheme.offset a delta) 1 0xEE)

let prop_inbounds_never_flagged =
  QCheck.Test.make ~name:"asan: in-bounds accesses never flagged" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 0 199))
    (fun (size, off) ->
       QCheck.assume (off < size);
       let _, s = fresh asan in
       let p = s.Scheme.malloc size in
       match s.Scheme.store (s.Scheme.offset p off) 1 1 with
       | () -> true
       | exception Violation _ -> false)

let suite =
  [
    Alcotest.test_case "in-bounds accesses pass" `Quick test_inbounds_ok;
    Alcotest.test_case "redzones detected" `Quick test_redzone_detected;
    Alcotest.test_case "partial granule poison" `Quick test_unaligned_tail;
    Alcotest.test_case "use-after-free detected" `Quick test_use_after_free;
    Alcotest.test_case "double free detected" `Quick test_double_free;
    Alcotest.test_case "quarantine delays reuse" `Quick test_quarantine_delays_reuse;
    Alcotest.test_case "quarantine inflates footprint under churn" `Quick test_quarantine_footprint_grows_under_churn;
    Alcotest.test_case "constant shadow reservation" `Quick test_shadow_constant_reservation;
    Alcotest.test_case "globals and stack redzones" `Quick test_globals_and_stack_redzones;
    Alcotest.test_case "stack pop unpoisons frame" `Quick test_stack_pop_unpoisons;
    Alcotest.test_case "pointers carry no metadata" `Quick test_no_pointer_metadata;
    Alcotest.test_case "interceptor checks whole range" `Quick test_interceptor_checks_range;
    Alcotest.test_case "far OOB into another object missed" `Quick test_far_oob_inside_another_object_missed;
    qtest prop_inbounds_never_flagged;
  ]

(* --- runtime flags (ASAN_OPTIONS analogues) --- *)

let asan_with opts : Helpers.scheme_maker = fun m -> Sb_asan.Asan.make ~opts m

let test_zero_quarantine_loses_uaf_detection () =
  (* the classic tradeoff: quarantine off -> freed chunk reused at once,
     and a use-after-free reads the NEW object instead of being caught *)
  let _, s =
    fresh (asan_with { Sb_asan.Asan.redzone = 16; quarantine_cap = 0 })
  in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  let q = s.Scheme.malloc 64 in
  Alcotest.(check int) "chunk reused immediately" (s.Scheme.addr_of p) (s.Scheme.addr_of q);
  check_allows "use-after-free now invisible" (fun () -> ignore (s.Scheme.load p 1))

let test_default_quarantine_catches_uaf () =
  let _, s = fresh asan in
  let p = s.Scheme.malloc 64 in
  s.Scheme.free p;
  check_detects "uaf caught with quarantine on" (fun () -> ignore (s.Scheme.load p 1))

let test_wide_redzones_cost_memory () =
  let footprint rz =
    let m, s = fresh (asan_with { Sb_asan.Asan.redzone = rz; quarantine_cap = 0 }) in
    for _ = 1 to 2000 do
      ignore (s.Scheme.malloc 32)
    done;
    Sb_vmem.Vmem.peak_reserved_bytes (Memsys.vmem m)
  in
  Alcotest.(check bool) "128B redzones cost more than 16B" true (footprint 128 > footprint 16)

let test_redzone_still_detects_with_flags () =
  let _, s = fresh (asan_with { Sb_asan.Asan.redzone = 64; quarantine_cap = 0 }) in
  let p = s.Scheme.malloc 32 in
  check_detects "overflow into the wide redzone" (fun () ->
      s.Scheme.store (s.Scheme.offset p 60) 1 0)

let flags_suite =
  [
    Alcotest.test_case "flags: quarantine=0 loses UAF detection" `Quick
      test_zero_quarantine_loses_uaf_detection;
    Alcotest.test_case "flags: default quarantine catches UAF" `Quick
      test_default_quarantine_catches_uaf;
    Alcotest.test_case "flags: wide redzones cost memory" `Quick test_wide_redzones_cost_memory;
    Alcotest.test_case "flags: wide redzones still detect" `Quick
      test_redzone_still_detects_with_flags;
  ]

let suite = suite @ flags_suite
