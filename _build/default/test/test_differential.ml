(** Differential testing: for any in-bounds program, every protection
    scheme must compute exactly what the native baseline computes —
    instrumentation may cost cycles, never correctness. *)

open Helpers
module Scheme = Sb_protection.Scheme

type op =
  | Write of int * int * int   (* array, offset, value *)
  | Read of int * int          (* array, offset *)
  | Memcpy of int * int * int  (* dst array, src array, len *)
  | Realloc of int * int       (* array, growth *)

let arr_size = 64
let n_arrays = 4

(* Run a program and collect every read result. All accesses stay within
   the original (calloc-zeroed) [arr_size] bytes: bytes beyond that are
   *uninitialized* after a growing realloc — reading them is UB in C and
   the schemes legitimately differ there (native realloc copies the old
   chunk's rounded size including slack; SGXBounds copies the exact
   object size), so the comparison is restricted to defined memory. *)
let run_program maker ops =
  let _, s = fresh maker in
  let arrays = Array.init n_arrays (fun _ -> s.Scheme.calloc 1 arr_size) in
  let log = ref [] in
  List.iter
    (fun op ->
       match op with
       | Write (a, off, v) ->
         let a = a mod n_arrays in
         s.Scheme.store (s.Scheme.offset arrays.(a) (off mod arr_size)) 1 (v land 0xff)
       | Read (a, off) ->
         let a = a mod n_arrays in
         log := s.Scheme.load (s.Scheme.offset arrays.(a) (off mod arr_size)) 1 :: !log
       | Memcpy (d, sr, len) ->
         let d = d mod n_arrays and sr = sr mod n_arrays in
         if d <> sr then
           let len = 1 + (len mod arr_size) in
           Sb_libc.Simlibc.memcpy s ~dst:arrays.(d) ~src:arrays.(sr) ~len
       | Realloc (a, grow) ->
         let a = a mod n_arrays in
         arrays.(a) <- s.Scheme.realloc arrays.(a) (arr_size + (grow mod 64)))
    ops;
  List.rev !log

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun a o v -> Write (a, o, v)) (int_bound 3) (int_bound 200) (int_bound 255));
        (4, map2 (fun a o -> Read (a, o)) (int_bound 3) (int_bound 200));
        (1, map3 (fun d s l -> Memcpy (d, s, l)) (int_bound 3) (int_bound 3) (int_bound 63));
        (1, map2 (fun a g -> Realloc (a, g)) (int_bound 3) (int_bound 63));
      ])

let arb_program = QCheck.make QCheck.Gen.(list_size (int_range 5 60) op_gen)

let differential name maker =
  QCheck.Test.make ~name:("differential: " ^ name ^ " computes what native computes")
    ~count:60 arb_program
    (fun ops -> run_program maker ops = run_program native ops)

let suite =
  [
    qtest (differential "sgxbounds" sgxb);
    qtest (differential "sgxbounds-noopt" sgxb_noopt);
    qtest (differential "sgxbounds-boundless" sgxb_boundless);
    qtest (differential "asan" asan);
    qtest (differential "mpx" mpx);
    qtest (differential "baggy" baggy);
  ]
