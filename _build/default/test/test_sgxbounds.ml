open Helpers
module Tagged = Sgxbounds.Tagged
module Boundless = Sgxbounds.Boundless
open Sb_protection.Types

(* --- tagged-pointer encoding --- *)

let test_tagged_roundtrip () =
  let t = Tagged.make ~addr:0x1234 ~ub:0x5678 in
  Alcotest.(check int) "addr" 0x1234 (Tagged.addr_of t);
  Alcotest.(check int) "ub" 0x5678 (Tagged.ub_of t)

let test_tagged_arith_preserves_tag () =
  let t = Tagged.make ~addr:100 ~ub:0x7000 in
  let t' = Tagged.with_addr t (Tagged.addr_of t + 44) in
  Alcotest.(check int) "addr moved" 144 (Tagged.addr_of t');
  Alcotest.(check int) "tag intact" 0x7000 (Tagged.ub_of t')

let test_tagged_overflow_confined () =
  (* A malicious 2^31-scale increment must wrap in the address half and
     never touch the upper bound (§3.2 pointer arithmetic). *)
  let t = Tagged.make ~addr:10 ~ub:0x4242 in
  let t' = Tagged.with_addr t (Tagged.addr_of t + (1 lsl Tagged.shift) + 5) in
  Alcotest.(check int) "address wrapped" 15 (Tagged.addr_of t');
  Alcotest.(check int) "UB untouched" 0x4242 (Tagged.ub_of t')

let prop_tagged_roundtrip =
  QCheck.Test.make ~name:"tagged make/extract roundtrip" ~count:500
    QCheck.(pair (int_bound Tagged.mask) (int_bound Tagged.mask))
    (fun (addr, ub) ->
       let t = Tagged.make ~addr ~ub in
       Tagged.addr_of t = addr && Tagged.ub_of t = ub)

let prop_arith_never_corrupts_ub =
  QCheck.Test.make ~name:"pointer arithmetic never corrupts UB" ~count:500
    QCheck.(triple (int_bound Tagged.mask) (int_bound Tagged.mask) int)
    (fun (addr, ub, delta) ->
       let t = Tagged.make ~addr ~ub in
       Tagged.ub_of (Tagged.with_addr t (Tagged.addr_of t + delta)) = ub)

(* --- the scheme --- *)

let test_inbounds_ok () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 64 in
  check_allows "in-bounds" (fun () ->
      for i = 0 to 63 do
        s.Scheme.store (s.Scheme.offset p i) 1 i
      done;
      for i = 0 to 63 do
        assert (s.Scheme.load (s.Scheme.offset p i) 1 = i)
      done)

let test_off_by_one_detected () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 64 in
  check_detects "off-by-one write" (fun () -> s.Scheme.store (s.Scheme.offset p 64) 1 0)

let test_width_accounted () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 64 in
  check_allows "8-byte load at 56" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p 56) 8));
  check_detects "8-byte load at 57 crosses UB" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset p 57) 8))

let test_lower_bound_detected () =
  let _, s = fresh sgxb in
  let _pad = s.Scheme.malloc 64 in
  let p = s.Scheme.malloc 64 in
  check_detects "underflow read" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p (-8)) 4))

let test_footer_holds_lower_bound () =
  let m, s = fresh sgxb in
  let p = s.Scheme.malloc 32 in
  let a = s.Scheme.addr_of p in
  let lb = Sb_vmem.Vmem.load (Memsys.vmem m) ~addr:(a + 32) ~width:4 in
  Alcotest.(check int) "LB footer = object base" a lb

let test_metadata_overhead_is_4_bytes () =
  let _, s = fresh sgxb in
  (* 60-byte request + 4-byte footer fits exactly in the 64-byte class:
     zero net allocator overhead. *)
  let p = s.Scheme.malloc 60 in
  check_allows "full object usable" (fun () -> s.Scheme.store (s.Scheme.offset p 59) 1 1);
  let q = s.Scheme.malloc 64 in
  Alcotest.(check int) "60+4 packed into one 64-byte class"
    (s.Scheme.addr_of p + 64 + 16) (s.Scheme.addr_of q)

let test_stack_and_globals_protected () =
  let _, s = fresh sgxb in
  let g = s.Scheme.global 16 in
  check_detects "global overflow" (fun () -> s.Scheme.store (s.Scheme.offset g 16) 1 0);
  let tok = s.Scheme.stack_push () in
  let b = s.Scheme.stack_alloc 16 in
  check_detects "stack buffer overflow" (fun () -> s.Scheme.store (s.Scheme.offset b 16) 1 0);
  s.Scheme.stack_pop tok

let test_pointer_through_memory_keeps_bounds () =
  (* The paper's key multithreading/type-cast property: the tag travels
     with the word through memory. *)
  let _, s = fresh sgxb in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store_ptr slot obj;
  let obj' = s.Scheme.load_ptr slot in
  check_allows "loaded pointer usable" (fun () -> s.Scheme.store obj' 1 7);
  check_detects "loaded pointer still bounded" (fun () ->
      s.Scheme.store (s.Scheme.offset obj' 16) 1 7)

let test_int_cast_roundtrip () =
  (* ptr -> int -> ptr: the integer carries the tag (§3.2 type casts). *)
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 16 in
  let as_int = p.v in
  let p' = { v = as_int; bnd = None } in
  check_allows "cast-back pointer works" (fun () -> ignore (s.Scheme.load p' 1));
  check_detects "cast-back pointer still checked" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset p' 20) 1))

let test_untagged_deref_detected () =
  let _, s = fresh sgxb in
  check_detects "untagged pointer" (fun () -> ignore (s.Scheme.load { v = 0x4000; bnd = None } 4))

let test_realloc_preserves_data_and_bounds () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 16 in
  s.Scheme.store p 4 0xFEED;
  let q = s.Scheme.realloc p 64 in
  Alcotest.(check int) "data preserved" 0xFEED (s.Scheme.load q 4);
  check_allows "grown region usable" (fun () -> s.Scheme.store (s.Scheme.offset q 60) 4 1);
  check_detects "new bound enforced" (fun () -> s.Scheme.store (s.Scheme.offset q 64) 1 1)

let test_calloc_zeroes () =
  let _, s = fresh sgxb in
  let p = s.Scheme.calloc 8 4 in
  for i = 0 to 7 do
    Alcotest.(check int) "zeroed" 0 (s.Scheme.load (s.Scheme.offset p (i * 4)) 4)
  done

let test_unopt_checks_every_access () =
  let _, s = fresh sgxb_noopt in
  let p = s.Scheme.malloc 64 in
  let before = s.Scheme.extras.checks_done in
  for i = 0 to 9 do
    ignore (s.Scheme.safe_load (s.Scheme.offset p i) 1)
  done;
  Alcotest.(check int) "safe accesses still checked without the opt" (before + 10)
    s.Scheme.extras.checks_done

let test_opt_elides_safe_accesses () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 64 in
  let before = s.Scheme.extras.checks_done in
  for i = 0 to 9 do
    ignore (s.Scheme.safe_load (s.Scheme.offset p i) 1)
  done;
  Alcotest.(check int) "no checks" before s.Scheme.extras.checks_done;
  Alcotest.(check bool) "elisions counted" true (s.Scheme.extras.checks_elided >= 10)

let test_hoisting_checks_once () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 256 in
  let before = s.Scheme.extras.checks_done in
  s.Scheme.check_range p 256 Read;
  for i = 0 to 255 do
    ignore (s.Scheme.load_unchecked (s.Scheme.offset p i) 1)
  done;
  Alcotest.(check int) "one range check" (before + 1) s.Scheme.extras.checks_done

let test_hoisted_range_check_detects () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 256 in
  check_detects "overlong range" (fun () -> s.Scheme.check_range p 257 Write)

let test_no_hoisting_keeps_per_access_checks () =
  let _, s = fresh sgxb_noopt in
  let p = s.Scheme.malloc 16 in
  s.Scheme.check_range p 9999 Read; (* no-op without the optimization *)
  check_detects "unchecked accessor still checks" (fun () ->
      ignore (s.Scheme.load_unchecked (s.Scheme.offset p 20) 1))

let test_free_is_uninstrumented () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 32 in
  s.Scheme.free p;
  (* No footer cleanup needed; a fresh allocation reuses the chunk. *)
  let q = s.Scheme.malloc 32 in
  Alcotest.(check int) "chunk reused" (s.Scheme.addr_of p) (s.Scheme.addr_of q)

let test_libc_wrapper_detects () =
  let _, s = fresh sgxb in
  let p = s.Scheme.malloc 32 in
  check_detects "wrapper rejects 33-byte claim" (fun () -> s.Scheme.libc_check p 33 Read);
  check_allows "wrapper accepts 32" (fun () -> s.Scheme.libc_check p 32 Read)

(* --- boundless memory --- *)

let test_boundless_survives_oob () =
  let _, s = fresh sgxb_boundless in
  let p = s.Scheme.malloc 16 in
  check_allows "oob write survives" (fun () -> s.Scheme.store (s.Scheme.offset p 100) 4 0xCAFE);
  Alcotest.(check int) "overlay readback" 0xCAFE (s.Scheme.load (s.Scheme.offset p 100) 4);
  Alcotest.(check int) "virgin oob reads zero" 0 (s.Scheme.load (s.Scheme.offset p 500) 4);
  Alcotest.(check bool) "violations counted" true (s.Scheme.extras.violations >= 2)

let test_boundless_does_not_corrupt_neighbours () =
  let _, s = fresh sgxb_boundless in
  let a = s.Scheme.malloc 16 in
  let b = s.Scheme.malloc 16 in
  s.Scheme.store b 4 0x1111;
  (* Overflow [a] far enough to land inside [b] natively. *)
  s.Scheme.store (s.Scheme.offset a 20) 4 0xBAD;
  Alcotest.(check int) "neighbour intact" 0x1111 (s.Scheme.load b 4)

let test_overlay_lru_cache () =
  let c = Boundless.create ~chunk_bytes:64 ~capacity_bytes:256 () in
  (* 4-chunk capacity; touch 6 chunks. *)
  for i = 0 to 5 do
    Boundless.write c ~addr:(i * 64) ~width:4 (i + 1)
  done;
  Alcotest.(check int) "bounded chunks" 4 (Boundless.chunks c);
  Alcotest.(check int) "evictions happened" 2 (Boundless.evictions c);
  Alcotest.(check int) "recent chunk survives" 6 (Boundless.read c ~addr:(5 * 64) ~width:4);
  Alcotest.(check int) "evicted chunk reads zero" 0 (Boundless.read c ~addr:0 ~width:4)

let test_overlay_cross_chunk_write () =
  let c = Boundless.create ~chunk_bytes:64 ~capacity_bytes:1024 () in
  Boundless.write c ~addr:62 ~width:4 0x04030201;
  Alcotest.(check int) "cross-chunk readback" 0x04030201 (Boundless.read c ~addr:62 ~width:4)

(* --- metadata API --- *)

let test_double_free_guard () =
  let m = ms () in
  let s = Sgxbounds.make ~plugins:[ Sgxbounds.Meta.double_free_guard ] m in
  let p = s.Scheme.malloc 32 in
  s.Scheme.free p;
  check_detects "double free flagged" (fun () -> s.Scheme.free p)

let test_origin_tracker_records_site () =
  let m = ms () in
  let s = Sgxbounds.make ~plugins:[ Sgxbounds.Meta.origin_tracker ~site:777 ] m in
  let p = s.Scheme.malloc 32 in
  let ub = Tagged.ub_of p.v in
  let site = Sb_vmem.Vmem.load (Memsys.vmem m) ~addr:(ub + 4) ~width:4 in
  Alcotest.(check int) "site recorded after LB slot" 777 site

let suite =
  [
    Alcotest.test_case "tagged roundtrip" `Quick test_tagged_roundtrip;
    Alcotest.test_case "tagged arithmetic preserves tag" `Quick test_tagged_arith_preserves_tag;
    Alcotest.test_case "tagged overflow confined to address half" `Quick test_tagged_overflow_confined;
    qtest prop_tagged_roundtrip;
    qtest prop_arith_never_corrupts_ub;
    Alcotest.test_case "in-bounds accesses pass" `Quick test_inbounds_ok;
    Alcotest.test_case "off-by-one detected" `Quick test_off_by_one_detected;
    Alcotest.test_case "access width accounted" `Quick test_width_accounted;
    Alcotest.test_case "lower-bound violation detected" `Quick test_lower_bound_detected;
    Alcotest.test_case "LB footer after object" `Quick test_footer_holds_lower_bound;
    Alcotest.test_case "4-byte metadata fits the class" `Quick test_metadata_overhead_is_4_bytes;
    Alcotest.test_case "stack and globals protected" `Quick test_stack_and_globals_protected;
    Alcotest.test_case "bounds travel through memory" `Quick test_pointer_through_memory_keeps_bounds;
    Alcotest.test_case "int cast roundtrip keeps protection" `Quick test_int_cast_roundtrip;
    Alcotest.test_case "untagged dereference detected" `Quick test_untagged_deref_detected;
    Alcotest.test_case "realloc preserves data and bounds" `Quick test_realloc_preserves_data_and_bounds;
    Alcotest.test_case "calloc zeroes" `Quick test_calloc_zeroes;
    Alcotest.test_case "no-opt: safe accesses checked" `Quick test_unopt_checks_every_access;
    Alcotest.test_case "opt: safe accesses elided" `Quick test_opt_elides_safe_accesses;
    Alcotest.test_case "hoisting checks once per loop" `Quick test_hoisting_checks_once;
    Alcotest.test_case "hoisted check detects overlong range" `Quick test_hoisted_range_check_detects;
    Alcotest.test_case "no hoisting: per-access checks remain" `Quick test_no_hoisting_keeps_per_access_checks;
    Alcotest.test_case "free needs no instrumentation" `Quick test_free_is_uninstrumented;
    Alcotest.test_case "libc wrapper bounds check" `Quick test_libc_wrapper_detects;
    Alcotest.test_case "boundless survives OOB" `Quick test_boundless_survives_oob;
    Alcotest.test_case "boundless protects neighbours" `Quick test_boundless_does_not_corrupt_neighbours;
    Alcotest.test_case "overlay is a bounded LRU" `Quick test_overlay_lru_cache;
    Alcotest.test_case "overlay cross-chunk write" `Quick test_overlay_cross_chunk_write;
    Alcotest.test_case "metadata API: double-free guard" `Quick test_double_free_guard;
    Alcotest.test_case "metadata API: origin tracker" `Quick test_origin_tracker_records_site;
  ]

(* --- the §8 wide-address refinement codec --- *)

module Tw = Sgxbounds.Tagged_wide

let test_wide_roundtrip () =
  let t = Tw.make ~addr:0x1235 ~ub:0x5678 in
  Alcotest.(check int) "addr" 0x1235 (Tw.addr_of t);
  Alcotest.(check int) "ub" 0x5678 (Tw.ub_of t)

let test_wide_rejects_unaligned () =
  match Tw.make ~addr:0 ~ub:0x5677 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_wide_align_ub () =
  Alcotest.(check int) "rounds up" 0x18 (Tw.align_ub 0x11);
  Alcotest.(check int) "keeps aligned" 0x18 (Tw.align_ub 0x18)

let prop_wide_roundtrip =
  QCheck.Test.make ~name:"wide codec roundtrip (aligned bounds)" ~count:300
    QCheck.(pair (int_bound Tw.mask) (int_bound (Tw.mask / 8)))
    (fun (addr, ub8) ->
       let ub = ub8 * 8 in
       let t = Tw.make ~addr ~ub in
       Tw.addr_of t = addr && Tw.ub_of t = ub)

let prop_wide_arith_confined =
  QCheck.Test.make ~name:"wide codec arithmetic never corrupts UB" ~count:300
    QCheck.(triple (int_bound Tw.mask) (int_bound (Tw.mask / 8)) int)
    (fun (addr, ub8, delta) ->
       let t = Tw.make ~addr ~ub:(ub8 * 8) in
       Tw.ub_of (Tw.with_addr t (Tw.addr_of t + delta)) = ub8 * 8)

let wide_suite =
  [
    Alcotest.test_case "wide codec roundtrip" `Quick test_wide_roundtrip;
    Alcotest.test_case "wide codec rejects unaligned UB" `Quick test_wide_rejects_unaligned;
    Alcotest.test_case "wide codec align_ub" `Quick test_wide_align_ub;
    qtest prop_wide_roundtrip;
    qtest prop_wide_arith_confined;
  ]

let suite = suite @ wide_suite
