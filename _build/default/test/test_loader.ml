open Helpers
module Loader = Sb_sgx.Loader
module Vmem = Sb_vmem.Vmem

let fresh_loader () = Loader.create ~mmap_min_addr:0 ~size:(1 lsl 20) (ms ())

let test_stock_kernel_refuses () =
  match Loader.create ~mmap_min_addr:65536 ~size:(1 lsl 20) (ms ()) with
  | _ -> Alcotest.fail "expected Driver_error"
  | exception Loader.Driver_error _ -> ()

let test_enclave_base_is_zero () =
  let e = fresh_loader () in
  Alcotest.(check int) "base 0x0" 0 (Loader.base e)

let test_null_page_guarded () =
  let m = ms () in
  let _e = Loader.create ~mmap_min_addr:0 ~size:(1 lsl 20) m in
  match Vmem.load (Memsys.vmem m) ~addr:8 ~width:4 with
  | _ -> Alcotest.fail "NULL page must fault"
  | exception Vmem.Fault { kind = Vmem.Guard_hit; _ } -> ()

let test_pages_loaded_with_content () =
  let m = ms () in
  let e = Loader.create ~mmap_min_addr:0 ~size:(1 lsl 20) m in
  let a = Loader.add_page e ~content:"code page one" in
  Alcotest.(check string) "content in place" "code page one"
    (Vmem.read_string (Memsys.vmem m) ~addr:a ~len:13)

let test_measurement_deterministic () =
  let build () =
    let e = fresh_loader () in
    ignore (Loader.add_page e ~content:"text segment");
    ignore (Loader.add_page e ~content:"rodata");
    Loader.init e;
    Loader.measurement e
  in
  Alcotest.(check int64) "same image, same MRENCLAVE" (build ()) (build ())

let test_measurement_detects_tampering () =
  let build content =
    let e = fresh_loader () in
    ignore (Loader.add_page e ~content);
    Loader.init e;
    Loader.measurement e
  in
  Alcotest.(check bool) "one flipped byte changes MRENCLAVE" true
    (build "text segment" <> build "text segmenu")

let test_measurement_depends_on_order () =
  let build pages =
    let e = fresh_loader () in
    List.iter (fun c -> ignore (Loader.add_page e ~content:c)) pages;
    Loader.init e;
    Loader.measurement e
  in
  Alcotest.(check bool) "page order measured" true
    (build [ "a"; "b" ] <> build [ "b"; "a" ])

let test_no_add_after_init () =
  let e = fresh_loader () in
  Loader.init e;
  match Loader.add_page e ~content:"late" with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_no_measurement_before_init () =
  let e = fresh_loader () in
  match Loader.measurement e with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_quote_verifies () =
  let e = fresh_loader () in
  ignore (Loader.add_page e ~content:"app");
  Loader.init e;
  let q = Loader.quote e ~report_data:"nonce-123" in
  Alcotest.(check bool) "valid quote accepted" true
    (Loader.verify_quote ~expected:(Loader.measurement e) ~report_data:"nonce-123" q)

let test_quote_rejects_wrong_measurement () =
  let e = fresh_loader () in
  ignore (Loader.add_page e ~content:"app");
  Loader.init e;
  let q = Loader.quote e ~report_data:"nonce-123" in
  Alcotest.(check bool) "wrong expected measurement rejected" false
    (Loader.verify_quote ~expected:42L ~report_data:"nonce-123" q);
  Alcotest.(check bool) "wrong nonce rejected" false
    (Loader.verify_quote ~expected:(Loader.measurement e) ~report_data:"evil" q);
  Alcotest.(check bool) "garbage rejected" false
    (Loader.verify_quote ~expected:(Loader.measurement e) ~report_data:"nonce-123" "zz")

let test_enclave_size_limit () =
  let e = Loader.create ~mmap_min_addr:0 ~size:(3 * 4096) (ms ()) in
  ignore (Loader.add_page e ~content:"one");
  ignore (Loader.add_page e ~content:"two");
  match Loader.add_page e ~content:"three" with
  | _ -> Alcotest.fail "expected Enclave_oom"
  | exception Vmem.Enclave_oom _ -> ()

let suite =
  [
    Alcotest.test_case "stock kernel refuses base 0x0" `Quick test_stock_kernel_refuses;
    Alcotest.test_case "enclave base is 0x0" `Quick test_enclave_base_is_zero;
    Alcotest.test_case "NULL page stays guarded" `Quick test_null_page_guarded;
    Alcotest.test_case "pages loaded with content" `Quick test_pages_loaded_with_content;
    Alcotest.test_case "measurement deterministic" `Quick test_measurement_deterministic;
    Alcotest.test_case "measurement detects tampering" `Quick test_measurement_detects_tampering;
    Alcotest.test_case "measurement depends on order" `Quick test_measurement_depends_on_order;
    Alcotest.test_case "no add_page after EINIT" `Quick test_no_add_after_init;
    Alcotest.test_case "no measurement before EINIT" `Quick test_no_measurement_before_init;
    Alcotest.test_case "quote verifies" `Quick test_quote_verifies;
    Alcotest.test_case "bad quotes rejected" `Quick test_quote_rejects_wrong_measurement;
    Alcotest.test_case "enclave size limit enforced" `Quick test_enclave_size_limit;
  ]
