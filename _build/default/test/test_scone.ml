open Helpers
module Scone = Sb_scone.Scone
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme

let world maker =
  let m, s = fresh maker in
  (m, s, Scone.create s)

let test_write_reaches_the_wire () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 64 in
  Sb_libc.Simlibc.strcpy_in s ~dst:buf "hello outside";
  ignore (Scone.write w fd ~buf ~len:13);
  Alcotest.(check string) "wire bytes" "hello outside" (Scone.sent w fd)

let test_read_delivers_fed_bytes () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd "request!";
  let buf = s.Scheme.malloc 64 in
  let n = Scone.read w fd ~buf ~len:64 in
  Alcotest.(check int) "bytes read" 8 n;
  Alcotest.(check string) "contents" "request!"
    (Sb_vmem.Vmem.read_string (Memsys.vmem s.Scheme.ms) ~addr:(s.Scheme.addr_of buf) ~len:8)

let test_read_consumes_queue () =
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd "abcdef";
  let buf = s.Scheme.malloc 16 in
  Alcotest.(check int) "first chunk" 4 (Scone.read w fd ~buf ~len:4);
  Alcotest.(check int) "remainder" 2 (Scone.read w fd ~buf ~len:16);
  Alcotest.(check int) "drained" 0 (Scone.read w fd ~buf ~len:16)

let test_wrapper_checks_write_length () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 16 in
  check_detects "oversized write claim" (fun () -> ignore (Scone.write w fd ~buf ~len:64))

let test_wrapper_checks_read_buffer () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd (String.make 64 'x');
  let buf = s.Scheme.malloc 16 in
  check_detects "recv overflow caught at the wrapper" (fun () ->
      ignore (Scone.read w fd ~buf ~len:64))

let test_native_wrapper_misses_recv_overflow () =
  (* the CVE-2013-2028 ingredient: natively, a too-long recv corrupts *)
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd (String.make 64 'x');
  let buf = s.Scheme.malloc 16 in
  let victim = s.Scheme.malloc 16 in
  s.Scheme.store victim 8 7;
  check_allows "no check natively" (fun () -> ignore (Scone.read w fd ~buf ~len:64));
  Alcotest.(check bool) "neighbour trampled" true (s.Scheme.load victim 8 <> 7)

let test_syscalls_counted () =
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 16 in
  ignore (Scone.write w fd ~buf ~len:8);
  Scone.feed w fd "zz";
  ignore (Scone.read w fd ~buf ~len:2);
  Alcotest.(check int) "two syscalls" 2 (Scone.syscalls w)

let test_inside_costs_more_than_outside () =
  let cost env =
    let m = Memsys.create (Config.default ~env ()) in
    let s = Sb_protection.Native.make m in
    let w = Scone.create s in
    let fd = Scone.open_channel w ~shield:Scone.No_shield in
    let buf = s.Scheme.malloc 1024 in
    Memsys.reset m;
    for _ = 1 to 50 do
      ignore (Scone.write w fd ~buf ~len:1024)
    done;
    (Memsys.snapshot m).Memsys.cycles
  in
  Alcotest.(check bool) "enclave copies + queue cost more" true
    (cost Config.Inside_enclave > cost Config.Outside_enclave * 3 / 2)

let test_shield_costs_inside_only () =
  let cost env shield =
    let m = Memsys.create (Config.default ~env ()) in
    let s = Sb_protection.Native.make m in
    let w = Scone.create s in
    let fd = Scone.open_channel w ~shield in
    let buf = s.Scheme.malloc 1024 in
    Memsys.reset m;
    for _ = 1 to 20 do
      ignore (Scone.write w fd ~buf ~len:1024)
    done;
    (Memsys.snapshot m).Memsys.cycles
  in
  Alcotest.(check bool) "encryption shield costs inside" true
    (cost Config.Inside_enclave Scone.Encrypted > cost Config.Inside_enclave Scone.No_shield);
  Alcotest.(check int) "no shield cost outside"
    (cost Config.Outside_enclave Scone.No_shield)
    (cost Config.Outside_enclave Scone.Encrypted)

let test_bad_fd_crashes () =
  let _, s, w = world native in
  let buf = s.Scheme.malloc 8 in
  match Scone.write w 42 ~buf ~len:4 with
  | _ -> Alcotest.fail "expected crash"
  | exception Sb_protection.Types.App_crash _ -> ()

let suite =
  [
    Alcotest.test_case "write reaches the wire" `Quick test_write_reaches_the_wire;
    Alcotest.test_case "read delivers fed bytes" `Quick test_read_delivers_fed_bytes;
    Alcotest.test_case "reads consume the queue" `Quick test_read_consumes_queue;
    Alcotest.test_case "wrapper checks write length" `Quick test_wrapper_checks_write_length;
    Alcotest.test_case "wrapper checks read buffer" `Quick test_wrapper_checks_read_buffer;
    Alcotest.test_case "native recv overflow corrupts silently" `Quick
      test_native_wrapper_misses_recv_overflow;
    Alcotest.test_case "syscalls counted" `Quick test_syscalls_counted;
    Alcotest.test_case "enclave syscalls cost more" `Quick test_inside_costs_more_than_outside;
    Alcotest.test_case "shield costs inside only" `Quick test_shield_costs_inside_only;
    Alcotest.test_case "bad fd crashes" `Quick test_bad_fd_crashes;
  ]

let prop_feed_read_roundtrip =
  QCheck.Test.make ~name:"scone: fed bytes arrive intact and in order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 8) (string_of_size Gen.(int_range 0 64)))
    (fun chunks ->
       let _, s, w = world native in
       let fd = Scone.open_channel w ~shield:Scone.No_shield in
       List.iter (fun c -> Scone.feed w fd c) chunks;
       let total = String.concat "" chunks in
       let buf = s.Scheme.malloc 1024 in
       let n = Scone.read w fd ~buf ~len:1024 in
       n = String.length total
       && Sb_vmem.Vmem.read_string (Memsys.vmem s.Scheme.ms)
            ~addr:(s.Scheme.addr_of buf) ~len:n
          = total)

let prop_write_preserves_bytes =
  QCheck.Test.make ~name:"scone: written bytes reach the wire verbatim" ~count:50
    QCheck.(string_of_size Gen.(int_range 1 128))
    (fun payload ->
       let _, s, w = world native in
       let fd = Scone.open_channel w ~shield:Scone.Encrypted in
       let buf = s.Scheme.malloc 256 in
       Sb_vmem.Vmem.write_string (Memsys.vmem s.Scheme.ms)
         ~addr:(s.Scheme.addr_of buf) payload;
       ignore (Scone.write w fd ~buf ~len:(String.length payload));
       Scone.sent w fd = payload)

let props_suite = [ qtest prop_feed_read_roundtrip; qtest prop_write_preserves_bytes ]

let suite = suite @ props_suite
