open Helpers
open Sb_protection.Types
module Memsys = Sb_sgx.Memsys

let test_inbounds_ok () =
  let _, s = fresh mpx in
  let p = s.Scheme.malloc 64 in
  check_allows "in-bounds" (fun () ->
      for i = 0 to 63 do
        s.Scheme.store (s.Scheme.offset p i) 1 i
      done)

let test_off_by_one_detected () =
  let _, s = fresh mpx in
  let p = s.Scheme.malloc 64 in
  check_detects "bndcu" (fun () -> s.Scheme.store (s.Scheme.offset p 64) 1 0)

let test_underflow_detected () =
  let _, s = fresh mpx in
  let p = s.Scheme.malloc 64 in
  check_detects "bndcl" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p (-1)) 1))

let test_bounds_survive_spill_fill () =
  let _, s = fresh mpx in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store_ptr slot obj;            (* store + bndstx *)
  let obj' = s.Scheme.load_ptr slot in    (* load + bndldx *)
  Alcotest.(check bool) "bounds restored" true (obj'.bnd <> None);
  check_detects "restored bounds enforced" (fun () ->
      s.Scheme.store (s.Scheme.offset obj' 16) 1 0)

let test_foreign_pointer_gets_infinite_bounds () =
  (* A pointer value written by uninstrumented code (plain store, no
     bndstx): bndldx sees the value mismatch and returns INIT bounds. *)
  let _, s = fresh mpx in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store slot 8 obj.v;            (* raw data store, no bndstx *)
  let obj' = s.Scheme.load_ptr slot in
  Alcotest.(check bool) "no bounds (INIT)" true (obj'.bnd = None);
  check_allows "unchecked thereafter (false negative)" (fun () ->
      s.Scheme.store (s.Scheme.offset obj' 16) 1 0)

let test_bt_allocated_on_demand () =
  let _, s = fresh mpx in
  let before = s.Scheme.extras.bts_allocated in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store_ptr slot obj;
  Alcotest.(check int) "one BT for the heap region" (before + 1) s.Scheme.extras.bts_allocated;
  let slot2 = s.Scheme.malloc 8 in
  s.Scheme.store_ptr slot2 obj;
  Alcotest.(check int) "same region, no new BT" (before + 1) s.Scheme.extras.bts_allocated

let test_bt_memory_counted () =
  let m, s = fresh mpx in
  let vm = Memsys.vmem m in
  let before = Sb_vmem.Vmem.reserved_bytes vm in
  let slot = s.Scheme.malloc 8 in
  let obj = s.Scheme.malloc 16 in
  s.Scheme.store_ptr slot obj;
  let bt = Sb_machine.Config.scaled (Memsys.cfg m) (4 * 1024 * 1024) in
  Alcotest.(check bool) "BT reservation visible" true
    (Sb_vmem.Vmem.reserved_bytes vm >= before + bt)

let test_oom_on_bt_flood () =
  (* Pointer stores scattered across many BT regions force a bounds table
     each until the enclave dies — the paper's Figure 1 crash. *)
  let m, s = fresh mpx in
  let vm = Memsys.vmem m in
  (match
     let obj = s.Scheme.malloc 16 in
     for i = 0 to 3999 do
       let region = (i + 512) lsl (Sb_vmem.Vmem.addr_bits - 12) in
       let a = Sb_vmem.Vmem.map vm ~addr:region ~len:4096 ~perm:Sb_vmem.Vmem.Read_write () in
       s.Scheme.store_ptr { v = a; bnd = None } obj
     done
   with
   | () -> Alcotest.fail "expected the enclave to die of OOM"
   | exception App_crash _ -> ()
   | exception Sb_vmem.Vmem.Enclave_oom _ -> ());
  Alcotest.(check bool) "bounds tables were the flood" true
    (s.Scheme.extras.bts_allocated > 20)

let test_intra_object_missed () =
  (* Narrowing disabled: an overflow inside one allocation (struct
     member into sibling member) passes. *)
  let _, s = fresh mpx in
  let st = s.Scheme.malloc 64 in        (* struct { char buf[32]; fnptr f; } *)
  check_allows "in-struct overflow missed" (fun () ->
      s.Scheme.store (s.Scheme.offset st 40) 8 0xBAD)

let test_libc_not_checked () =
  let _, s = fresh mpx in
  let p = s.Scheme.malloc 16 in
  check_allows "weak libc wrappers" (fun () -> s.Scheme.libc_check p 1000 Write)

let test_race_desyncs_bounds () =
  (* §4.1: two threads store different pointers to the same location;
     the data store and bndstx of thread A interleave with thread B's.
     Afterwards the BT entry does not match the memory value, so the
     loaded pointer escapes checking — an undetected-attack window that
     SGXBounds closes by construction. *)
  let m, s = fresh mpx in
  let slot = s.Scheme.malloc 8 in
  let obj1 = s.Scheme.malloc 16 in
  let obj2 = s.Scheme.malloc 32 in
  let store_interleaved q () =
    Memsys.store m ~addr:(s.Scheme.addr_of slot) ~width:8 q.v;
    Sb_mt.Mt.yield ();
    (* bndstx half, after the other thread ran *)
    s.Scheme.store_ptr slot q
  in
  Sb_mt.Mt.run m [| store_interleaved obj1; store_interleaved obj2 |];
  let final = s.Scheme.load_ptr slot in
  (* Whichever interleaving won, prove that a desync is possible: run the
     classic bad schedule deterministically. *)
  ignore final;
  Memsys.store m ~addr:(s.Scheme.addr_of slot) ~width:8 obj2.v; (* A: data store *)
  s.Scheme.store_ptr slot obj1;                                  (* B: full update *)
  let p = s.Scheme.load_ptr slot in
  (* Memory holds obj1 (B's data store came last in store_ptr)... make
     the desync explicit instead: *)
  Memsys.store m ~addr:(s.Scheme.addr_of slot) ~width:8 obj2.v;  (* A's late data store *)
  let p2 = s.Scheme.load_ptr slot in
  Alcotest.(check bool) "desync: value is obj2 but bounds entry is obj1's"
    true (p2.bnd = None && p.bnd <> None)

let prop_inbounds_never_flagged =
  QCheck.Test.make ~name:"mpx: in-bounds accesses never flagged" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 0 199))
    (fun (size, off) ->
       QCheck.assume (off < size);
       let _, s = fresh mpx in
       let p = s.Scheme.malloc size in
       match s.Scheme.store (s.Scheme.offset p off) 1 1 with
       | () -> true
       | exception Violation _ -> false)

let suite =
  [
    Alcotest.test_case "in-bounds accesses pass" `Quick test_inbounds_ok;
    Alcotest.test_case "off-by-one detected (bndcu)" `Quick test_off_by_one_detected;
    Alcotest.test_case "underflow detected (bndcl)" `Quick test_underflow_detected;
    Alcotest.test_case "bounds survive spill/fill" `Quick test_bounds_survive_spill_fill;
    Alcotest.test_case "foreign pointer gets INIT bounds" `Quick test_foreign_pointer_gets_infinite_bounds;
    Alcotest.test_case "bounds tables allocated on demand" `Quick test_bt_allocated_on_demand;
    Alcotest.test_case "BT reservation counted as memory" `Quick test_bt_memory_counted;
    Alcotest.test_case "BT flood kills the enclave (OOM)" `Quick test_oom_on_bt_flood;
    Alcotest.test_case "intra-object overflow missed" `Quick test_intra_object_missed;
    Alcotest.test_case "weak libc wrappers" `Quick test_libc_not_checked;
    Alcotest.test_case "race desyncs pointer and bounds" `Quick test_race_desyncs_bounds;
    qtest prop_inbounds_never_flagged;
  ]
