module Fex = Sb_fex.Fex
module Harness = Sb_harness.Harness
module Config = Sb_machine.Config

let small_exp () =
  Fex.matrix ~name:"unit" ~description:"unit-test matrix" ~baseline:"native"
    ~workloads:[ "histogram"; "swaptions" ]
    ~schemes:[ "native"; "sgxbounds" ]
    ~sizes:[ Some 512 ] ()

let test_matrix_cartesian () =
  let e = small_exp () in
  Alcotest.(check int) "2 workloads x 2 schemes" 4 (List.length e.Fex.cells)

let test_baseline_must_be_present () =
  match
    Fex.matrix ~name:"x" ~description:"" ~baseline:"native" ~workloads:[ "histogram" ]
      ~schemes:[ "sgxbounds" ] ()
  with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_run_and_normalize () =
  let e = small_exp () in
  let ms = Fex.run e in
  Alcotest.(check int) "all cells measured" 4 (List.length ms);
  let rows = Fex.normalize e ms in
  Alcotest.(check int) "one normalized row per non-baseline cell" 2 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check string) "scheme" "sgxbounds" r.Fex.row_scheme;
       match r.Fex.perf_x with
       | Some x -> Alcotest.(check bool) "overhead >= 1 in-enclave" true (x >= 0.99)
       | None -> Alcotest.fail "unexpected crash")
    rows

let test_crash_becomes_dash () =
  let e =
    Fex.matrix ~name:"crash" ~description:"" ~baseline:"native" ~workloads:[ "dedup" ]
      ~schemes:[ "native"; "mpx" ] ()
  in
  let rows = Fex.normalize e (Fex.run e) in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "mpx crash is None" true (r.Fex.perf_x = None);
    Alcotest.(check bool) "tsv renders dash" true
      (String.length (Fex.to_tsv rows) > 0
       && String.split_on_char '\t' (List.nth (String.split_on_char '\n' (Fex.to_tsv rows)) 1)
          |> fun cols -> List.nth cols 2 = "-")
  | _ -> Alcotest.fail "expected one row"

let test_gmeans () =
  let rows =
    [
      { Fex.row_workload = "a"; row_scheme = "s"; perf_x = Some 2.0; mem_x = None;
        llc_miss_x = None; epc_fault_x = None };
      { Fex.row_workload = "b"; row_scheme = "s"; perf_x = Some 8.0; mem_x = None;
        llc_miss_x = None; epc_fault_x = None };
    ]
  in
  Alcotest.(check (list (pair string (float 1e-9)))) "gmean" [ ("s", 4.0) ] (Fex.gmeans rows)

let test_determinism_check () =
  let e = small_exp () in
  Alcotest.(check int) "3 identical repetitions" 3 (Fex.check_deterministic e)

let test_write_results () =
  let e = small_exp () in
  let rows = Fex.normalize e (Fex.run e) in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sgxbounds-fex-test" in
  let tsv = Fex.write_results ~dir e rows in
  Alcotest.(check bool) "tsv written" true (Sys.file_exists tsv);
  Alcotest.(check bool) "gnuplot script written" true
    (Sys.file_exists (Filename.concat dir "unit.gp"));
  let ic = open_in tsv in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header present" true
    (String.length header > 0 && String.sub header 0 8 = "workload")

let suite =
  [
    Alcotest.test_case "matrix is cartesian" `Quick test_matrix_cartesian;
    Alcotest.test_case "baseline must be in the matrix" `Quick test_baseline_must_be_present;
    Alcotest.test_case "run + normalize" `Quick test_run_and_normalize;
    Alcotest.test_case "crashes become dashes" `Quick test_crash_becomes_dash;
    Alcotest.test_case "gmeans" `Quick test_gmeans;
    Alcotest.test_case "determinism check" `Quick test_determinism_check;
    Alcotest.test_case "write tsv + gnuplot" `Quick test_write_results;
  ]
