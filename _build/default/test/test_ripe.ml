open Helpers
module Ripe = Sb_ripe.Ripe

let tally maker =
  let _, s = fresh maker in
  Ripe.run_all s

let test_native_all_succeed () =
  let r = tally native in
  Alcotest.(check int) "16/16 attacks succeed natively" 16 (Ripe.count_succeeded r)

let test_sgxbounds_prevents_8 () =
  let r = tally sgxb in
  Alcotest.(check int) "8/16 prevented" 8 (Ripe.count_prevented r);
  (* every miss is an in-struct attack *)
  List.iter
    (fun ((a : Ripe.attack), o) ->
       if o = Ripe.Succeeded then
         Alcotest.(check bool)
           (Ripe.name a ^ " only in-struct attacks escape")
           true
           (a.Ripe.target = Ripe.Instruct_funcptr))
    r

let test_asan_prevents_8 () =
  let r = tally asan in
  Alcotest.(check int) "8/16 prevented" 8 (Ripe.count_prevented r);
  List.iter
    (fun ((a : Ripe.attack), o) ->
       if o = Ripe.Succeeded then
         Alcotest.(check bool)
           (Ripe.name a ^ " only in-struct attacks escape")
           true
           (a.Ripe.target = Ripe.Instruct_funcptr))
    r

let test_mpx_prevents_2 () =
  let r = tally mpx in
  Alcotest.(check int) "2/16 prevented" 2 (Ripe.count_prevented r);
  (* both are direct stack-smashing of an adjacent function pointer *)
  List.iter
    (fun ((a : Ripe.attack), o) ->
       if o = Ripe.Prevented then begin
         Alcotest.(check bool) "stack" true (a.Ripe.location = Ripe.Stack);
         Alcotest.(check bool) "adjacent funcptr" true (a.Ripe.target = Ripe.Adjacent_funcptr)
       end)
    r

let test_boundless_contains_adjacent_attacks () =
  let r = tally sgxb_boundless in
  (* fail-oblivious: nothing detected fatally, but no adjacent-funcptr
     attack lands either — the writes went to the overlay *)
  List.iter
    (fun ((a : Ripe.attack), o) ->
       if a.Ripe.target = Ripe.Adjacent_funcptr && a.Ripe.technique <> Ripe.Strcpy_libc
          && a.Ripe.technique <> Ripe.Memcpy_libc then
         Alcotest.(check bool) (Ripe.name a ^ " contained") true (o = Ripe.Failed))
    r

let test_sixteen_attacks () =
  Alcotest.(check int) "the matrix has 16 attacks" 16 (List.length Ripe.all_attacks)

let suite =
  [
    Alcotest.test_case "matrix size is 16" `Quick test_sixteen_attacks;
    Alcotest.test_case "native: 16/16 succeed" `Quick test_native_all_succeed;
    Alcotest.test_case "sgxbounds: 8/16 prevented (in-struct escape)" `Quick test_sgxbounds_prevents_8;
    Alcotest.test_case "asan: 8/16 prevented (in-struct escape)" `Quick test_asan_prevents_8;
    Alcotest.test_case "mpx: 2/16 prevented (direct stack smashing only)" `Quick test_mpx_prevents_2;
    Alcotest.test_case "boundless mode contains adjacent attacks" `Quick test_boundless_contains_adjacent_attacks;
  ]

(* --- the 850 -> 46 -> 16 funnel (§6.6) --- *)

module Funnel = Sb_ripe.Funnel

let test_funnel_claimed () =
  Alcotest.(check int) "RIPE claims 850 working attack forms" 850
    (Funnel.count Funnel.claimed)

let test_funnel_native () =
  Alcotest.(check int) "46 succeed on the native testbed" 46
    (Funnel.count Funnel.native_viable)

let test_funnel_sgx () =
  Alcotest.(check int) "16 survive the move into SCONE/SGX" 16
    (Funnel.count Funnel.sgx_viable)

let test_funnel_monotone () =
  List.iter
    (fun f ->
       if Funnel.sgx_viable f then Alcotest.(check bool) "sgx => native" true (Funnel.native_viable f);
       if Funnel.native_viable f then Alcotest.(check bool) "native => claimed" true (Funnel.claimed f))
    Funnel.all_forms

let test_funnel_maps_onto_concrete_attacks () =
  let survivors = List.filter Funnel.sgx_viable Funnel.all_forms in
  let mapped = List.filter_map Funnel.to_concrete survivors in
  Alcotest.(check int) "all 16 map" 16 (List.length mapped);
  (* bijection with the executable matrix *)
  let sorted l = List.sort compare l in
  Alcotest.(check bool) "exactly the executable matrix" true
    (sorted mapped = sorted Ripe.all_attacks)

let test_funnel_shellcode_dies_in_sgx () =
  List.iter
    (fun f ->
       if f.Funnel.code = Funnel.Shellcode then
         Alcotest.(check bool) "no shellcode survives SGX" false (Funnel.sgx_viable f))
    Funnel.all_forms

let funnel_suite =
  [
    Alcotest.test_case "funnel: 850 claimed" `Quick test_funnel_claimed;
    Alcotest.test_case "funnel: 46 native" `Quick test_funnel_native;
    Alcotest.test_case "funnel: 16 in SGX" `Quick test_funnel_sgx;
    Alcotest.test_case "funnel: stages are monotone" `Quick test_funnel_monotone;
    Alcotest.test_case "funnel: survivors = executable matrix" `Quick
      test_funnel_maps_onto_concrete_attacks;
    Alcotest.test_case "funnel: shellcode dies on int" `Quick test_funnel_shellcode_dies_in_sgx;
  ]

let suite = suite @ funnel_suite
