(** Tests for the §8 extension: intra-object bounds narrowing. *)

open Helpers
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

(* struct { char buf[32]; fnptr f; } — the in-struct RIPE shape *)
let mk_struct s =
  let st = s.Scheme.malloc 40 in
  s.Scheme.store (s.Scheme.offset st 32) 8 0xC0FFEE;
  st

let test_narrowed_in_bounds_ok () =
  let _, s = fresh sgxb in
  let st = mk_struct s in
  let buf = Sgxbounds.narrow s st ~len:32 in
  check_allows "field accesses fine" (fun () ->
      for i = 0 to 31 do
        s.Scheme.store (s.Scheme.offset buf i) 1 i
      done)

let test_narrowing_catches_in_struct_overflow () =
  let _, s = fresh sgxb in
  let st = mk_struct s in
  (* without narrowing the in-struct overflow passes (Table 4's misses) *)
  check_allows "object-granularity misses it" (fun () ->
      s.Scheme.store (s.Scheme.offset st 32) 8 0xBAD);
  (* with narrowing it is detected *)
  let buf = Sgxbounds.narrow s st ~len:32 in
  check_detects "narrowed bounds catch it" (fun () ->
      s.Scheme.store (s.Scheme.offset buf 32) 8 0xBAD)

let test_narrowing_catches_underflow () =
  let _, s = fresh sgxb in
  let st = mk_struct s in
  let field = Sgxbounds.narrow s (s.Scheme.offset st 16) ~len:8 in
  check_detects "below the field" (fun () -> ignore (s.Scheme.load (s.Scheme.offset field (-1)) 1))

let test_narrowing_never_widens () =
  let _, s = fresh sgxb in
  let st = mk_struct s in
  let inner = Sgxbounds.narrow s st ~len:8 in
  let rewiden = Sgxbounds.narrow s inner ~len:4000 in
  check_detects "intersection, not replacement" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset rewiden 16) 1))

let test_narrowing_does_not_outlive_memory_roundtrip () =
  let _, s = fresh sgxb in
  let st = mk_struct s in
  let buf = Sgxbounds.narrow s st ~len:32 in
  let slot = s.Scheme.malloc 8 in
  s.Scheme.store_ptr slot buf;
  let p = s.Scheme.load_ptr slot in
  (* reverted to object bounds: in-struct access allowed again... *)
  check_allows "object bounds after spill" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset p 36) 1));
  (* ...but the object's own bound still holds *)
  check_detects "tag still enforced" (fun () -> ignore (s.Scheme.load (s.Scheme.offset p 40) 1))

let test_narrowing_still_fast_path_free () =
  (* narrowed checks skip even the LB footer load *)
  let m, s = fresh sgxb in
  let st = mk_struct s in
  let buf = Sgxbounds.narrow s st ~len:32 in
  let before = (Memsys.snapshot m).Memsys.mem_accesses in
  ignore (s.Scheme.load buf 1);
  let after = (Memsys.snapshot m).Memsys.mem_accesses in
  Alcotest.(check int) "exactly one access (no LB load)" 1 (after - before)

let prop_narrowed_never_false_positive =
  QCheck.Test.make ~name:"narrowing: in-field accesses never flagged" ~count:100
    QCheck.(triple (int_range 1 64) (int_range 0 63) (int_range 0 63))
    (fun (len, base_off, off) ->
       QCheck.assume (base_off + len <= 128);
       QCheck.assume (off < len);
       let _, s = fresh sgxb in
       let st = s.Scheme.malloc 128 in
       let f = Sgxbounds.narrow s (s.Scheme.offset st base_off) ~len in
       match s.Scheme.store (s.Scheme.offset f off) 1 1 with
       | () -> true
       | exception Violation _ -> false)

let suite =
  [
    Alcotest.test_case "narrowed in-bounds accesses pass" `Quick test_narrowed_in_bounds_ok;
    Alcotest.test_case "in-struct overflow caught with narrowing" `Quick
      test_narrowing_catches_in_struct_overflow;
    Alcotest.test_case "narrowed underflow caught" `Quick test_narrowing_catches_underflow;
    Alcotest.test_case "narrowing never widens" `Quick test_narrowing_never_widens;
    Alcotest.test_case "narrowing reverts across memory" `Quick
      test_narrowing_does_not_outlive_memory_roundtrip;
    Alcotest.test_case "narrowed check needs no LB load" `Quick test_narrowing_still_fast_path_free;
    qtest prop_narrowed_never_false_positive;
  ]

let test_narrowing_closes_the_ripe_gap () =
  (* the 8 in-struct RIPE escapes of Table 4: an application that
     narrows its field pointers catches them all *)
  let _, s = fresh sgxb in
  let caught = ref 0 in
  for _variant = 1 to 8 do
    let st = mk_struct s in
    let buf = Sgxbounds.narrow s st ~len:32 in
    (* contiguous overflow from the buffer toward the sibling funcptr *)
    match
      for i = 0 to 39 do
        s.Scheme.store (s.Scheme.offset buf i) 1 0x41
      done
    with
    | () -> ()
    | exception Violation _ -> incr caught
  done;
  Alcotest.(check int) "all 8 in-struct shapes caught" 8 !caught

let prop_overlay_read_your_writes =
  QCheck.Test.make ~name:"boundless overlay: read-your-writes" ~count:200
    QCheck.(triple (int_bound 100_000) (int_range 0 2) (int_bound 0xFFFF))
    (fun (addr, wexp, v) ->
       let width = 1 lsl wexp in
       let v = v land ((1 lsl (8 * width)) - 1) in
       let c = Sgxbounds.Boundless.create ~chunk_bytes:256 ~capacity_bytes:(1 lsl 20) () in
       Sgxbounds.Boundless.write c ~addr ~width v;
       Sgxbounds.Boundless.read c ~addr ~width = v)

let closing_suite =
  [
    Alcotest.test_case "narrowing closes the RIPE in-struct gap" `Quick
      test_narrowing_closes_the_ripe_gap;
    qtest prop_overlay_read_your_writes;
  ]

let suite = suite @ closing_suite
