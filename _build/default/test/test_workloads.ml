open Helpers
module Registry = Sb_workloads.Registry
module Wctx = Sb_workloads.Wctx
module Memsys = Sb_sgx.Memsys

(* Small working sets: these tests check that every kernel runs cleanly
   (no false positives!) under the protecting schemes — the simulation
   analogue of "the instrumented benchmark suite compiles and runs". *)
let small_n (w : Registry.spec) = max 64 (w.Registry.default_n / 64)

let run_kernel maker (w : Registry.spec) ~threads =
  let m = ms () in
  let s = maker m in
  let ctx = Wctx.make ~threads s in
  w.Registry.run ctx ~n:(small_n w);
  (Memsys.snapshot m).Memsys.cycles

let kernel_cases =
  List.concat_map
    (fun (w : Registry.spec) ->
       [
         Alcotest.test_case (w.Registry.name ^ " runs under native") `Quick (fun () ->
             Alcotest.(check bool) "cycles > 0" true (run_kernel native w ~threads:1 > 0));
         Alcotest.test_case (w.Registry.name ^ " runs clean under sgxbounds") `Quick (fun () ->
             Alcotest.(check bool) "no violation, cycles > 0" true
               (run_kernel sgxb w ~threads:1 > 0));
         Alcotest.test_case (w.Registry.name ^ " runs clean under asan") `Quick (fun () ->
             Alcotest.(check bool) "no violation" true (run_kernel asan w ~threads:1 > 0));
       ])
    Registry.all

let mt_cases =
  List.filter_map
    (fun (w : Registry.spec) ->
       if not w.Registry.multithreaded then None
       else
         Some
           (Alcotest.test_case (w.Registry.name ^ " runs with 4 threads") `Quick (fun () ->
                Alcotest.(check bool) "parallel run ok" true
                  (run_kernel sgxb w ~threads:4 > 0))))
    Registry.all

let test_deterministic () =
  let w = Registry.find "kmeans" in
  let a = run_kernel sgxb w ~threads:2 and b = run_kernel sgxb w ~threads:2 in
  Alcotest.(check int) "identical cycle counts across runs" a b

let test_instrumentation_never_free () =
  (* Every protecting scheme must cost at least as much as native. *)
  let w = Registry.find "histogram" in
  let base = run_kernel native w ~threads:1 in
  List.iter
    (fun (name, maker) ->
       let c = run_kernel maker w ~threads:1 in
       Alcotest.(check bool) (name ^ " >= native") true (c >= base))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_pointer_intensity_flag_matches_mpx_bts () =
  (* pointer-intensive kernels make MPX allocate bounds tables;
     flat ones keep bounds in registers (no tables) *)
  List.iter
    (fun name ->
       let w = Registry.find name in
       let m = ms () in
       let s = mpx m in
       let ctx = Wctx.make ~threads:1 s in
       (match w.Registry.run ctx ~n:(small_n w) with
        | () -> ()
        | exception Sb_protection.Types.App_crash _ -> ());
       let bts = s.Sb_protection.Scheme.extras.Sb_protection.Types.bts_allocated in
       if w.Registry.pointer_intensive then
         Alcotest.(check bool) (name ^ " allocates BTs") true (bts > 0)
       else
         Alcotest.(check bool) (name ^ " stays in registers") true (bts <= 1))
    [ "pca"; "wordcount"; "mcf"; "xalancbmk"; "histogram"; "blackscholes"; "lbm" ]

let test_registry_counts () =
  Alcotest.(check int) "7 Phoenix" 7 (List.length (Registry.of_suite Registry.Phoenix));
  Alcotest.(check int) "9 PARSEC" 9 (List.length (Registry.of_suite Registry.Parsec));
  Alcotest.(check int) "13 SPEC" 13 (List.length (Registry.of_suite Registry.Spec))

let test_registry_find_unknown () =
  match Registry.find "quake3" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_more_threads_not_slower () =
  (* Parallel runs must not be slower than single-threaded ones for an
     embarrassingly parallel kernel. *)
  let w = Registry.find "blackscholes" in
  let t1 = run_kernel native w ~threads:1 in
  let t4 = run_kernel native w ~threads:4 in
  Alcotest.(check bool) "t4 < t1" true (t4 < t1)

let suite =
  kernel_cases @ mt_cases
  @ [
      Alcotest.test_case "runs are deterministic" `Quick test_deterministic;
      Alcotest.test_case "instrumentation never free" `Quick test_instrumentation_never_free;
      Alcotest.test_case "pointer-intensity flags match MPX BTs" `Quick
        test_pointer_intensity_flag_matches_mpx_bts;
      Alcotest.test_case "registry has 7+9+13 workloads" `Quick test_registry_counts;
      Alcotest.test_case "unknown workload rejected" `Quick test_registry_find_unknown;
      Alcotest.test_case "parallel runs scale" `Quick test_more_threads_not_slower;
    ]
