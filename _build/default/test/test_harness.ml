module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Config = Sb_machine.Config

let test_run_one_completes () =
  let w = Registry.find "histogram" in
  let r = Harness.run_one ~n:1024 ~scheme:"sgxbounds" w in
  match r.Harness.outcome with
  | Harness.Completed m ->
    Alcotest.(check bool) "cycles positive" true (m.Harness.cycles > 0);
    Alcotest.(check bool) "peak vm positive" true (m.Harness.peak_vm > 0)
  | Harness.Crashed msg -> Alcotest.failf "unexpected crash: %s" msg

let test_run_one_reports_crash () =
  let w = Registry.find "dedup" in
  let r = Harness.run_one ~scheme:"mpx" w in
  match r.Harness.outcome with
  | Harness.Crashed _ -> ()
  | Harness.Completed _ -> Alcotest.fail "dedup under MPX must die of OOM"

let test_all_makers_resolve () =
  List.iter
    (fun (name, _) ->
       let (_ : Sb_sgx.Memsys.t -> Sb_protection.Scheme.t) = Harness.maker name in
       ())
    Harness.makers;
  match Harness.maker "notascheme" with
  | (_ : Sb_sgx.Memsys.t -> Sb_protection.Scheme.t) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_ratios () =
  let w = Registry.find "histogram" in
  let base = Harness.run_one ~n:2048 ~scheme:"native" w in
  let r = Harness.run_one ~n:2048 ~scheme:"asan" w in
  match base.Harness.outcome with
  | Harness.Crashed _ -> Alcotest.fail "native crashed"
  | Harness.Completed b ->
    (match Harness.perf_ratio ~baseline:b r with
     | Some x -> Alcotest.(check bool) "asan slower than native" true (x > 1.0)
     | None -> Alcotest.fail "no ratio");
    (match Harness.mem_ratio ~baseline:b r with
     | Some x -> Alcotest.(check bool) "asan uses more memory" true (x > 1.0)
     | None -> Alcotest.fail "no mem ratio")

let test_env_plumbs_through () =
  let w = Registry.find "lbm" in
  let inside = Harness.run_one ~n:8192 ~env:Config.Inside_enclave ~scheme:"native" w in
  let outside = Harness.run_one ~n:8192 ~env:Config.Outside_enclave ~scheme:"native" w in
  match (inside.Harness.outcome, outside.Harness.outcome) with
  | Harness.Completed i, Harness.Completed o ->
    Alcotest.(check bool) "inside has EPC faults" true (i.Harness.epc_faults > 0);
    Alcotest.(check int) "outside has none" 0 o.Harness.epc_faults;
    Alcotest.(check bool) "inside slower" true (i.Harness.cycles > o.Harness.cycles)
  | _ -> Alcotest.fail "runs crashed"

let test_fresh_machine_per_run () =
  (* two runs of the same cell are bit-identical: no state leaks *)
  let w = Registry.find "milc" in
  let one () =
    match (Harness.run_one ~n:1024 ~scheme:"sgxbounds" w).Harness.outcome with
    | Harness.Completed m -> m.Harness.cycles
    | Harness.Crashed _ -> -1
  in
  Alcotest.(check int) "identical" (one ()) (one ())

let test_sgxbounds_variants_ordered () =
  (* with all optimizations the run is never slower than without *)
  let w = Registry.find "kmeans" in
  let cycles scheme =
    match (Harness.run_one ~n:2048 ~scheme w).Harness.outcome with
    | Harness.Completed m -> m.Harness.cycles
    | Harness.Crashed _ -> max_int
  in
  Alcotest.(check bool) "opt <= noopt" true (cycles "sgxbounds" <= cycles "sgxbounds-noopt")

let suite =
  [
    Alcotest.test_case "run_one completes with metrics" `Quick test_run_one_completes;
    Alcotest.test_case "run_one reports crashes" `Quick test_run_one_reports_crash;
    Alcotest.test_case "all makers resolve; unknown rejected" `Quick test_all_makers_resolve;
    Alcotest.test_case "perf/mem ratios computed" `Quick test_ratios;
    Alcotest.test_case "environment plumbs through" `Quick test_env_plumbs_through;
    Alcotest.test_case "fresh machine per run" `Quick test_fresh_machine_per_run;
    Alcotest.test_case "optimizations never hurt" `Quick test_sgxbounds_variants_ordered;
  ]
