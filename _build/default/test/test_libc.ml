open Helpers
module Libc = Sb_libc.Simlibc

let test_memcpy_basic () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "hello";
  Libc.memcpy s ~dst:b ~src:a ~len:6;
  Alcotest.(check string) "copied" "hello" (Libc.string_out s b)

let test_memcpy_overflow_detected_sgxbounds () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_detects "dst too small" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_memcpy_overflow_detected_asan () =
  let _, s = fresh asan in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_detects "dst too small" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_memcpy_overflow_missed_mpx () =
  (* GCC's MPX runtime ships weak libc wrappers: the overflow happens
     inside uninstrumented libc and is missed. *)
  let _, s = fresh mpx in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_allows "weak wrapper misses it" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_strcpy_semantics () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "enclave";
  let n = Libc.strcpy s ~dst:b ~src:a in
  Alcotest.(check int) "length" 7 n;
  Alcotest.(check string) "copied" "enclave" (Libc.string_out s b)

let test_strcpy_overflow_detected () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:a "0123456789ABCDEF";
  check_detects "strcpy overflow" (fun () -> ignore (Libc.strcpy s ~dst:b ~src:a))

let test_strlen () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "four";
  Alcotest.(check int) "strlen" 4 (Libc.strlen s a)

let test_strncpy_pads () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "ab";
  Libc.strncpy s ~dst:b ~src:a ~len:8;
  Alcotest.(check string) "content" "ab" (Libc.string_out s b);
  Alcotest.(check int) "padded" 0 (s.Scheme.load (s.Scheme.offset b 7) 1)

let test_memset_and_memcmp () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 and b = s.Scheme.malloc 16 in
  Libc.memset s ~dst:a ~byte:7 ~len:16;
  Libc.memset s ~dst:b ~byte:7 ~len:16;
  Alcotest.(check int) "equal" 0 (Libc.memcmp s a b ~len:16);
  s.Scheme.store (s.Scheme.offset b 9) 1 8;
  Alcotest.(check int) "b greater" (-1) (Libc.memcmp s a b ~len:16)

let test_strcmp () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 and b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "abc";
  Libc.strcpy_in s ~dst:b "abd";
  Alcotest.(check bool) "a < b" true (Libc.strcmp s a b < 0);
  Libc.strcpy_in s ~dst:b "abc";
  Alcotest.(check int) "equal" 0 (Libc.strcmp s a b)

let test_native_libc_unprotected () =
  (* Under native, the same strcpy overflow silently corrupts the
     neighbour — the attack primitive all exploits build on. *)
  let _, s = fresh native in
  let big = s.Scheme.malloc 64 and small = s.Scheme.malloc 16 in
  let victim = s.Scheme.malloc 16 in
  s.Scheme.store victim 4 0x5AFE;
  Libc.strcpy_in s ~dst:big (String.make 40 'X');
  check_allows "no detection natively" (fun () -> ignore (Libc.strcpy s ~dst:small ~src:big));
  Alcotest.(check bool) "victim corrupted" true (s.Scheme.load victim 4 <> 0x5AFE)

let test_unterminated_string_leak_detected () =
  (* strlen walking past the object: SGXBounds' wrapper sees the claimed
     range exceed the bounds when the result is used. *)
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 8 in
  for i = 0 to 7 do
    s.Scheme.store (s.Scheme.offset a i) 1 65 (* no terminator *)
  done;
  let b = s.Scheme.malloc 8 in
  check_detects "overread caught at wrapper" (fun () -> ignore (Libc.strcpy s ~dst:b ~src:a))

let prop_memcpy_roundtrip =
  QCheck.Test.make ~name:"memcpy roundtrip across schemes" ~count:50
    QCheck.(pair (int_range 1 100) (int_range 0 3))
    (fun (len, which) ->
       let maker = List.nth [ native; sgxb; asan; mpx ] which in
       let _, s = fresh maker in
       let a = s.Scheme.malloc (len + 8) and b = s.Scheme.malloc (len + 8) in
       for i = 0 to len - 1 do
         s.Scheme.store (s.Scheme.offset a i) 1 (i land 0xff)
       done;
       Libc.memcpy s ~dst:b ~src:a ~len;
       let ok = ref true in
       for i = 0 to len - 1 do
         if s.Scheme.load (s.Scheme.offset b i) 1 <> i land 0xff then ok := false
       done;
       !ok)

let suite =
  [
    Alcotest.test_case "memcpy basic" `Quick test_memcpy_basic;
    Alcotest.test_case "memcpy overflow: sgxbounds detects" `Quick test_memcpy_overflow_detected_sgxbounds;
    Alcotest.test_case "memcpy overflow: asan detects" `Quick test_memcpy_overflow_detected_asan;
    Alcotest.test_case "memcpy overflow: mpx misses (weak wrappers)" `Quick test_memcpy_overflow_missed_mpx;
    Alcotest.test_case "strcpy semantics" `Quick test_strcpy_semantics;
    Alcotest.test_case "strcpy overflow detected" `Quick test_strcpy_overflow_detected;
    Alcotest.test_case "strlen" `Quick test_strlen;
    Alcotest.test_case "strncpy pads with NUL" `Quick test_strncpy_pads;
    Alcotest.test_case "memset and memcmp" `Quick test_memset_and_memcmp;
    Alcotest.test_case "strcmp ordering" `Quick test_strcmp;
    Alcotest.test_case "native: strcpy silently corrupts" `Quick test_native_libc_unprotected;
    Alcotest.test_case "unterminated string overread detected" `Quick test_unterminated_string_leak_detected;
    qtest prop_memcpy_roundtrip;
  ]

(* --- extended libc: strcat, memchr/strchr, qsort proxy, snprintf --- *)

let test_strcat () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "foo";
  let b = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:b "bar";
  let n = Libc.strcat s ~dst:a ~src:b in
  Alcotest.(check int) "length" 6 n;
  Alcotest.(check string) "concatenated" "foobar" (Libc.string_out s a)

let test_strcat_overflow_detected () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:a "sixchr";
  let b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:b "overflows";
  check_detects "combined length exceeds dst" (fun () -> ignore (Libc.strcat s ~dst:a ~src:b))

let test_memchr_strchr () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "hay:needle";
  Alcotest.(check (option int)) "memchr finds" (Some 3) (Libc.memchr s a ~byte:(Char.code ':') ~len:10);
  Alcotest.(check (option int)) "memchr misses" None (Libc.memchr s a ~byte:0x7f ~len:10);
  Alcotest.(check (option int)) "strchr" (Some 4) (Libc.strchr s a ~byte:(Char.code 'n'))

let test_qsort_with_proxy () =
  List.iter
    (fun (_name, maker) ->
       let _, s = fresh maker in
       let n = 16 in
       let a = s.Scheme.malloc (n * 4) in
       for i = 0 to n - 1 do
         s.Scheme.store (s.Scheme.offset a (i * 4)) 4 ((997 * (i + 3)) mod 101)
       done;
       (* the comparator runs as instrumented application code *)
       let cmp p q = compare (s.Scheme.load p 4) (s.Scheme.load q 4) in
       Libc.qsort s ~base:a ~nmemb:n ~width:4 ~cmp;
       for i = 1 to n - 1 do
         let x = s.Scheme.load (s.Scheme.offset a ((i - 1) * 4)) 4 in
         let y = s.Scheme.load (s.Scheme.offset a (i * 4)) 4 in
         Alcotest.(check bool) "sorted" true (x <= y)
       done)
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan) ]

let test_qsort_wrapper_checks_base () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  check_detects "nmemb*width exceeds object" (fun () ->
      Libc.qsort s ~base:a ~nmemb:10 ~width:4 ~cmp:(fun _ _ -> 0))

let test_snprintf_formats () =
  let _, s = fresh sgxb in
  let name = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:name "enclave";
  let dst = s.Scheme.malloc 64 in
  let n =
    Libc.snprintf s ~dst ~max:64 ~fmt:"hello %s, %d%% shielded"
      ~args:[ Libc.Str name; Libc.Int 100 ]
  in
  Alcotest.(check string) "formatted" "hello enclave, 100% shielded" (Libc.string_out s dst);
  Alcotest.(check int) "length" 28 n

let test_snprintf_truncates () =
  let _, s = fresh sgxb in
  let dst = s.Scheme.malloc 8 in
  ignore (Libc.snprintf s ~dst ~max:8 ~fmt:"0123456789" ~args:[]);
  Alcotest.(check string) "truncated to max-1" "0123456" (Libc.string_out s dst)

let test_snprintf_checks_string_pointer () =
  (* the %s argument is extracted and bounds-checked on the fly *)
  let _, s = fresh sgxb in
  let bad = s.Scheme.malloc 8 in
  Libc.memset s ~dst:bad ~byte:65 ~len:8; (* unterminated *)
  let dst = s.Scheme.malloc 256 in
  check_detects "unterminated %s argument caught" (fun () ->
      ignore (Libc.snprintf s ~dst ~max:256 ~fmt:"%s" ~args:[ Libc.Str bad ]))

let extended_suite =
  [
    Alcotest.test_case "strcat" `Quick test_strcat;
    Alcotest.test_case "strcat overflow detected" `Quick test_strcat_overflow_detected;
    Alcotest.test_case "memchr and strchr" `Quick test_memchr_strchr;
    Alcotest.test_case "qsort via callback proxy" `Quick test_qsort_with_proxy;
    Alcotest.test_case "qsort wrapper checks base" `Quick test_qsort_wrapper_checks_base;
    Alcotest.test_case "snprintf formats %d/%s/%%" `Quick test_snprintf_formats;
    Alcotest.test_case "snprintf truncates at max" `Quick test_snprintf_truncates;
    Alcotest.test_case "snprintf checks %s pointers" `Quick test_snprintf_checks_string_pointer;
  ]

let suite = suite @ extended_suite
