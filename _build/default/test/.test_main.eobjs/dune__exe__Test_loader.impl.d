test/test_loader.ml: Alcotest Helpers List Memsys Sb_sgx Sb_vmem
