test/test_harness.ml: Alcotest List Sb_harness Sb_machine Sb_protection Sb_sgx Sb_workloads
