test/test_sgxbounds.ml: Alcotest Helpers Memsys QCheck Sb_protection Sb_vmem Scheme Sgxbounds
