test/test_sgx.ml: Alcotest Helpers Memsys Sb_machine Sb_sgx Sb_vmem
