test/test_mpx.ml: Alcotest Helpers QCheck Sb_machine Sb_mt Sb_protection Sb_sgx Sb_vmem Scheme
