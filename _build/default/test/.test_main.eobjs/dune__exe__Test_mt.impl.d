test/test_mt.ml: Alcotest Array Buffer Fun Helpers List Sb_machine Sb_mt Sb_sgx Sb_vmem String
