test/test_fex.ml: Alcotest Filename List Sb_fex Sb_harness Sb_machine String Sys
