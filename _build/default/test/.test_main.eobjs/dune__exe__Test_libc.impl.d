test/test_libc.ml: Alcotest Char Helpers List QCheck Sb_libc Scheme String
