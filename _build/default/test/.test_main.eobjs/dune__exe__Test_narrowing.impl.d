test/test_narrowing.ml: Alcotest Helpers Memsys QCheck Sb_protection Sgxbounds
