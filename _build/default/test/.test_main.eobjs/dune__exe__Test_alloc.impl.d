test/test_alloc.ml: Alcotest Gen Helpers List QCheck Sb_alloc Sb_machine Sb_sgx Sb_vmem
