test/test_workloads.ml: Alcotest Helpers List Sb_protection Sb_sgx Sb_workloads
