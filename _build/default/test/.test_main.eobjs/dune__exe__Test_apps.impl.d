test/test_apps.ml: Alcotest Hashtbl Helpers List Printf QCheck Sb_apps Sb_machine Sb_protection Sb_sgx Sb_vmem Sb_workloads String
