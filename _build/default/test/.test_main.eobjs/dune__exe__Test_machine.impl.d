test/test_machine.ml: Alcotest Helpers QCheck Sb_machine
