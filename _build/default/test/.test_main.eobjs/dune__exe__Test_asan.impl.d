test/test_asan.ml: Alcotest Helpers Memsys QCheck Sb_asan Sb_machine Sb_protection Sb_vmem Scheme
