test/helpers.ml: Alcotest QCheck_alcotest Sb_asan Sb_baggy Sb_machine Sb_mpx Sb_protection Sb_sgx Sb_vmem Sgxbounds
