test/test_baggy.ml: Alcotest Helpers QCheck Sb_machine Sb_protection Scheme
