test/test_scone.ml: Alcotest Gen Helpers List QCheck Sb_libc Sb_machine Sb_protection Sb_scone Sb_sgx Sb_vmem String
