test/test_vmem.ml: Alcotest Gen Helpers List Printf QCheck Sb_machine Sb_vmem String
