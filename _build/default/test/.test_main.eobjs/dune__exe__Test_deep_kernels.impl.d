test/test_deep_kernels.ml: Alcotest Helpers List Memsys Printf Sb_protection Sb_vmem Sb_workloads String
