test/test_differential.ml: Array Helpers List QCheck Sb_libc Sb_protection
