test/test_cache.ml: Alcotest Gen Helpers List QCheck Sb_cache
