test/test_ripe.ml: Alcotest Helpers List Sb_ripe
