open Helpers
module Cache = Sb_cache.Cache
module Hierarchy = Sb_cache.Hierarchy

let test_cold_miss_then_hit () =
  let c = Cache.create ~size:1024 ~assoc:2 ~line_size:64 in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~line:1);
  Alcotest.(check bool) "then hit" true (Cache.access c ~line:1)

let test_lru_eviction () =
  let c = Cache.create ~size:(2 * 64) ~assoc:2 ~line_size:64 in
  (* one set, two ways *)
  ignore (Cache.access c ~line:0);
  ignore (Cache.access c ~line:1);
  ignore (Cache.access c ~line:0);          (* 0 is now MRU *)
  ignore (Cache.access c ~line:2);          (* evicts 1 (LRU) *)
  Alcotest.(check bool) "0 survived" true (Cache.access c ~line:0);
  Alcotest.(check bool) "1 evicted" false (Cache.access c ~line:1)

let test_sets_isolate () =
  let c = Cache.create ~size:(4 * 64) ~assoc:1 ~line_size:64 in
  (* 4 direct-mapped sets: lines 0 and 4 collide, 0 and 1 do not *)
  ignore (Cache.access c ~line:0);
  ignore (Cache.access c ~line:1);
  Alcotest.(check bool) "line 0 still cached" true (Cache.access c ~line:0);
  ignore (Cache.access c ~line:4);
  Alcotest.(check bool) "line 0 evicted by conflict" false (Cache.access c ~line:0)

let test_flush () =
  let c = Cache.create ~size:1024 ~assoc:2 ~line_size:64 in
  ignore (Cache.access c ~line:3);
  Cache.flush c;
  Alcotest.(check bool) "miss after flush" false (Cache.access c ~line:3)

let test_stats () =
  let c = Cache.create ~size:1024 ~assoc:2 ~line_size:64 in
  ignore (Cache.access c ~line:1);
  ignore (Cache.access c ~line:1);
  ignore (Cache.access c ~line:2);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Cache.reset_stats c;
  Alcotest.(check int) "reset" 0 (Cache.misses c)

let test_hierarchy_levels () =
  let h = Hierarchy.create (cfg ()) in
  Alcotest.(check bool) "first access goes to DRAM" true
    (Hierarchy.access h ~addr:0x1000 = Hierarchy.Dram);
  Alcotest.(check bool) "second is L1" true
    (Hierarchy.access h ~addr:0x1000 = Hierarchy.L1)

let test_hierarchy_costs_ordered () =
  let h = Hierarchy.create (cfg ()) in
  let c1 = Hierarchy.hit_cost h Hierarchy.L1
  and c2 = Hierarchy.hit_cost h Hierarchy.L2
  and c3 = Hierarchy.hit_cost h Hierarchy.Llc in
  Alcotest.(check bool) "L1 < L2 < LLC" true (c1 < c2 && c2 < c3)

let test_llc_miss_counting () =
  let h = Hierarchy.create (cfg ()) in
  (* Stream far more lines than the LLC holds: every access misses. *)
  let n = 100_000 in
  for i = 0 to n - 1 do
    ignore (Hierarchy.access h ~addr:(i * 64))
  done;
  Alcotest.(check int) "all cold misses" n (Hierarchy.llc_misses h)

let prop_misses_bounded =
  QCheck.Test.make ~name:"misses <= accesses" ~count:50
    QCheck.(list_of_size Gen.(return 500) (int_bound 10_000))
    (fun lines ->
       let c = Cache.create ~size:4096 ~assoc:4 ~line_size:64 in
       List.iter (fun l -> ignore (Cache.access c ~line:l)) lines;
       Cache.hits c + Cache.misses c = List.length lines)

let prop_working_set_fits =
  QCheck.Test.make ~name:"small working set eventually all hits" ~count:20
    QCheck.(int_range 1 8)
    (fun n ->
       let c = Cache.create ~size:(16 * 64) ~assoc:16 ~line_size:64 in
       (* n <= 8 distinct lines in a 16-way single... multiple sets; warm then probe *)
       for _ = 1 to 3 do
         for i = 0 to n - 1 do
           ignore (Cache.access c ~line:i)
         done
       done;
       Cache.reset_stats c;
       for i = 0 to n - 1 do
         ignore (Cache.access c ~line:i)
       done;
       Cache.misses c = 0)

let suite =
  [
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "sets isolate lines" `Quick test_sets_isolate;
    Alcotest.test_case "flush empties cache" `Quick test_flush;
    Alcotest.test_case "hit/miss statistics" `Quick test_stats;
    Alcotest.test_case "hierarchy fills on miss" `Quick test_hierarchy_levels;
    Alcotest.test_case "hierarchy costs ordered" `Quick test_hierarchy_costs_ordered;
    Alcotest.test_case "LLC miss counting under streaming" `Quick test_llc_miss_counting;
    qtest prop_misses_bounded;
    qtest prop_working_set_fits;
  ]
