open Helpers
module Rng = Sb_machine.Rng
module Util = Sb_machine.Util
module Config = Sb_machine.Config

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_range () =
  let r = Rng.create 7 in
  for _ = 1 to 200 do
    let v = Rng.range r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_skew () =
  let r = Rng.create 7 in
  let low = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.skewed r 1000 < 200 then incr low
  done;
  (* one 80/20 level: ~80% of draws land in the first fifth *)
  Alcotest.(check bool) "skewed toward the head" true (!low > n * 6 / 10)

let test_align () =
  Alcotest.(check int) "up" 64 (Util.align_up 33 32);
  Alcotest.(check int) "up exact" 32 (Util.align_up 32 32);
  Alcotest.(check int) "down" 32 (Util.align_down 63 32)

let test_pow2 () =
  Alcotest.(check int) "next_pow2 17" 32 (Util.next_pow2 17);
  Alcotest.(check int) "next_pow2 32" 32 (Util.next_pow2 32);
  Alcotest.(check int) "next_pow2 1" 1 (Util.next_pow2 1);
  Alcotest.(check bool) "is_pow2" true (Util.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Util.is_pow2 48);
  Alcotest.(check int) "log2_floor 1024" 10 (Util.log2_floor 1024);
  Alcotest.(check int) "log2_floor 1023" 9 (Util.log2_floor 1023)

let test_ceil_div_clamp () =
  Alcotest.(check int) "ceil_div" 3 (Util.ceil_div 9 4);
  Alcotest.(check int) "ceil_div exact" 2 (Util.ceil_div 8 4);
  Alcotest.(check int) "clamp low" 2 (Util.clamp 1 2 5);
  Alcotest.(check int) "clamp high" 5 (Util.clamp 9 2 5);
  Alcotest.(check int) "clamp in" 3 (Util.clamp 3 2 5)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "gmean of [2;8]" 4.0 (Util.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "gmean empty" 1.0 (Util.geomean [])

let test_config_scaled () =
  let c = Config.default ~scale:64 () in
  Alcotest.(check int) "scaled" (1024 * 1024) (Config.scaled c (64 * 1024 * 1024));
  Alcotest.(check int) "never zero" 1 (Config.scaled c 3)

let test_config_defaults_consistent () =
  let c = Config.default () in
  Alcotest.(check bool) "epc below enclave limit" true
    (c.Config.epc_bytes < c.Config.enclave_mem_limit);
  Alcotest.(check bool) "l1 < l2 < llc" true
    (c.Config.l1.Config.size < c.Config.l2.Config.size
     && c.Config.l2.Config.size < c.Config.llc.Config.size)

let prop_align_up_is_aligned =
  QCheck.Test.make ~name:"align_up result aligned and >= input" ~count:200
    QCheck.(pair (int_bound 100000) (int_range 0 10))
    (fun (n, sh) ->
       let a = 1 lsl sh in
       let r = Util.align_up n a in
       r mod a = 0 && r >= n && r - n < a)

let prop_next_pow2 =
  QCheck.Test.make ~name:"next_pow2 is smallest covering power" ~count:200
    QCheck.(int_range 1 (1 lsl 20))
    (fun n ->
       let p = Util.next_pow2 n in
       Util.is_pow2 p && p >= n && (p = 1 || p / 2 < n))

let suite =
  [
    Alcotest.test_case "rng is deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng range bounds" `Quick test_rng_range;
    Alcotest.test_case "rng skewed distribution" `Quick test_rng_skew;
    Alcotest.test_case "align up/down" `Quick test_align;
    Alcotest.test_case "power-of-two helpers" `Quick test_pow2;
    Alcotest.test_case "ceil_div and clamp" `Quick test_ceil_div_clamp;
    Alcotest.test_case "geometric mean" `Quick test_geomean;
    Alcotest.test_case "config scaling" `Quick test_config_scaled;
    Alcotest.test_case "config defaults consistent" `Quick test_config_defaults_consistent;
    qtest prop_align_up_is_aligned;
    qtest prop_next_pow2;
  ]
