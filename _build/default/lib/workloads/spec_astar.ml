(** astar: a complete A* pathfinder over simulated memory.

    Grid nodes are individually heap-allocated records reached through a
    pointer table (the pointer-intensity that floods Intel MPX with
    bounds tables); the open list is a real binary min-heap in a flat
    array; parents are pointer fields written on relaxation, and the
    result path is reconstructed by chasing them — the access mix of the
    original SPEC program (graph of small objects + a hot priority
    queue).

    Node layout: [0] g-cost (4), [4] closed flag (4), [8] terrain cost
    (4), [16] parent pointer (8). *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

let node_bytes = 28 (* +4B footer stays inside the 32-byte bin *)
let inf = 0x3FFFFFFF

type grid = {
  w : int;
  h : int;
  nodes : ptr;      (* pointer table, w*h entries *)
  heap : ptr;       (* binary heap of (key,1) packed as key*2^20|idx *)
  mutable heap_len : int;
}

let node g ctx i = ctx.s.Scheme.load_ptr (idx ctx g.nodes i 8)
let g_of ctx nd = ctx.s.Scheme.safe_load nd 4
let set_g ctx nd v = ctx.s.Scheme.safe_store nd 4 v
let closed ctx nd = ctx.s.Scheme.safe_load (ctx.s.Scheme.offset nd 4) 4 = 1
let set_closed ctx nd = ctx.s.Scheme.safe_store (ctx.s.Scheme.offset nd 4) 4 1
let terrain ctx nd = ctx.s.Scheme.safe_load (ctx.s.Scheme.offset nd 8) 4
let set_parent ctx nd p = ctx.s.Scheme.store_ptr (ctx.s.Scheme.offset nd 16) p
let parent ctx nd = ctx.s.Scheme.load_ptr (ctx.s.Scheme.offset nd 16)

(* ---- binary min-heap over (key, node index), packed in 8 bytes ---- *)

let pack key i = (key lsl 24) lor i
let key_of e = e lsr 24
let idx_of e = e land 0xFFFFFF

let heap_get ctx g i = ctx.s.Scheme.load (idx ctx g.heap i 8) 8
let heap_set ctx g i v = ctx.s.Scheme.store (idx ctx g.heap i 8) 8 v

let heap_capacity g = 4 * g.w * g.h

let heap_push ctx g key i =
  if g.heap_len >= heap_capacity g then () (* lazy-deletion overflow guard *)
  else begin
  let pos = ref g.heap_len in
  g.heap_len <- g.heap_len + 1;
  heap_set ctx g !pos (pack key i);
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !pos > 0 do
    work ctx 4;
    let par = (!pos - 1) / 2 in
    let pv = heap_get ctx g par and cv = heap_get ctx g !pos in
    if key_of pv > key_of cv then begin
      heap_set ctx g par cv;
      heap_set ctx g !pos pv;
      pos := par
    end
    else continue_ := false
  done
  end

let heap_pop ctx g =
  let top = heap_get ctx g 0 in
  g.heap_len <- g.heap_len - 1;
  if g.heap_len > 0 then begin
    heap_set ctx g 0 (heap_get ctx g g.heap_len);
    (* sift down *)
    let pos = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      work ctx 4;
      let l = (2 * !pos) + 1 and r = (2 * !pos) + 2 in
      let smallest = ref !pos in
      if l < g.heap_len && key_of (heap_get ctx g l) < key_of (heap_get ctx g !smallest) then
        smallest := l;
      if r < g.heap_len && key_of (heap_get ctx g r) < key_of (heap_get ctx g !smallest) then
        smallest := r;
      if !smallest <> !pos then begin
        let a = heap_get ctx g !pos and b = heap_get ctx g !smallest in
        heap_set ctx g !pos b;
        heap_set ctx g !smallest a;
        pos := !smallest
      end
      else continue_ := false
    done
  end;
  top

(* ------------------------------------------------------------------ *)

let manhattan g a b =
  abs ((a mod g.w) - (b mod g.w)) + abs ((a / g.w) - (b / g.w))

let build ctx ~w ~h ~wall_pct =
  let nodes = array ctx (w * h) 8 in
  for i = 0 to (w * h) - 1 do
    let nd = ctx.s.Scheme.malloc node_bytes in
    set_g ctx nd inf;
    (* walls are very expensive terrain; start/goal rows stay open *)
    let wall = Rng.int ctx.rng 100 < wall_pct && i >= w && i < w * (h - 1) in
    ctx.s.Scheme.safe_store (ctx.s.Scheme.offset nd 8) 4
      (if wall then 10_000 else 1 + Rng.int ctx.rng 8);
    ctx.s.Scheme.store_ptr (idx ctx nodes i 8) nd
  done;
  { w; h; nodes; heap = array ctx (4 * w * h) 8; heap_len = 0 }

let neighbours g i =
  let x = i mod g.w and y = i / g.w in
  List.filter_map
    (fun (dx, dy) ->
       let nx = x + dx and ny = y + dy in
       if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h then None else Some ((ny * g.w) + nx))
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

(** A* from node 0 to node w*h-1. Returns the path as node indices from
    start to goal, if one was found. *)
let search ctx g =
  let start = 0 and goal = (g.w * g.h) - 1 in
  let snode = node g ctx start in
  set_g ctx snode 0;
  heap_push ctx g (manhattan g start goal) start;
  let found = ref false in
  while g.heap_len > 0 && not !found do
    let e = heap_pop ctx g in
    let i = idx_of e in
    if i = goal then found := true
    else begin
      let nd = node g ctx i in
      if not (closed ctx nd) then begin
        set_closed ctx nd;
        let gi = g_of ctx nd in
        List.iter
          (fun j ->
             let nj = node g ctx j in
             work ctx 8;
             if not (closed ctx nj) then begin
               let cand = gi + terrain ctx nj in
               if cand < g_of ctx nj then begin
                 set_g ctx nj cand;
                 set_parent ctx nj nd;
                 heap_push ctx g (cand + manhattan g j goal) j
               end
             end)
          (neighbours g i)
      end
    end
  done;
  if not !found then None
  else begin
    (* reconstruct by chasing parent pointers; compare addresses to map
       nodes back to indices through the table *)
    let addr_to_index = Hashtbl.create (g.w * g.h) in
    for i = 0 to (g.w * g.h) - 1 do
      Hashtbl.replace addr_to_index (ctx.s.Scheme.addr_of (node g ctx i)) i
    done;
    let rec chase nd acc =
      match Hashtbl.find_opt addr_to_index (ctx.s.Scheme.addr_of nd) with
      | None -> acc
      | Some i ->
        if i = start then i :: acc
        else
          let p = parent ctx nd in
          if is_null ctx p then i :: acc else chase p (i :: acc)
    in
    Some (chase (node g ctx goal) [])
  end

(** The kernel: build the grid and run the search. [n] = node count. *)
let run ctx ~n =
  let w = 128 in
  let h = max 8 (n / w) in
  let g = build ctx ~w ~h ~wall_pct:25 in
  ignore (search ctx g)
