(** libquantum: a quantum-register simulator running Grover's search,
    over simulated memory.

    The register holds 2^qubits amplitudes as 16.16 fixed-point pairs
    (re, im) in one flat array. Gates are the strided passes that give
    the original its access character: Hadamard on qubit k touches
    amplitude pairs 2^k apart; the oracle and diffusion operators are
    linear sweeps. Grover's iteration count is the textbook
    floor(pi/4 * sqrt N), after which the marked state dominates —
    which the tests verify. *)

module Scheme = Sb_protection.Scheme
open Sb_protection.Types
open Wctx

type reg = {
  qubits : int;
  n : int;            (* 2^qubits *)
  amps : ptr;         (* n pairs of (re, im), 4 bytes each *)
}

let re_off i = i * 8
let im_off i = (i * 8) + 4

let get_re ctx r i =
  let v = ctx.s.Scheme.load_unchecked (ctx.s.Scheme.offset r.amps (re_off i)) 4 in
  (v lxor 0x80000000) - 0x80000000 (* sign-extend 32-bit *)

let set_re ctx r i v =
  ctx.s.Scheme.store_unchecked (ctx.s.Scheme.offset r.amps (re_off i)) 4 (v land 0xFFFFFFFF)

let create ctx ~qubits =
  let n = 1 lsl qubits in
  let r = { qubits; n; amps = ctx.s.Scheme.calloc n 8 } in
  ctx.s.Scheme.check_range r.amps (n * 8) Write;
  (* |0...0> *)
  set_re ctx r 0 (fx 1);
  r

(* Hadamard on qubit k: the strided butterfly pass. 1/sqrt2 in 16.16. *)
let inv_sqrt2 = 46341

let hadamard ctx r k =
  let stride = 1 lsl k in
  ctx.s.Scheme.check_range r.amps (r.n * 8) Write;
  let i = ref 0 in
  while !i < r.n do
    if !i land stride = 0 then begin
      let a = get_re ctx r !i and b = get_re ctx r (!i + stride) in
      work ctx 8;
      set_re ctx r !i (fx_mul inv_sqrt2 (a + b));
      set_re ctx r (!i + stride) (fx_mul inv_sqrt2 (a - b))
    end;
    incr i
  done

(* Oracle: flip the sign of the marked state's amplitude. *)
let oracle ctx r marked =
  let v = get_re ctx r marked in
  work ctx 4;
  set_re ctx r marked (-v)

(* Diffusion (inversion about the mean): one sweep to compute the mean,
   one to reflect. *)
let diffusion ctx r =
  ctx.s.Scheme.check_range r.amps (r.n * 8) Write;
  let sum = ref 0 in
  for i = 0 to r.n - 1 do
    sum := !sum + get_re ctx r i;
    work ctx 2
  done;
  let mean = !sum / r.n in
  for i = 0 to r.n - 1 do
    let v = get_re ctx r i in
    set_re ctx r i ((2 * mean) - v);
    work ctx 3
  done

(** Run Grover's search for [marked]; returns the index with the largest
    probability afterwards. *)
let grover ctx r ~marked =
  (* uniform superposition *)
  for k = 0 to r.qubits - 1 do
    hadamard ctx r k
  done;
  let iters =
    int_of_float (Float.pi /. 4.0 *. sqrt (float_of_int r.n)) |> max 1
  in
  for _ = 1 to iters do
    oracle ctx r marked;
    diffusion ctx r
  done;
  (* measurement: argmax |amp|^2 *)
  let best = ref 0 and bestv = ref 0 in
  for i = 0 to r.n - 1 do
    let v = abs (get_re ctx r i) in
    if v > !bestv then begin
      bestv := v;
      best := i
    end
  done;
  !best

(** The kernel: [n] scales the register size and repetitions. *)
let run ctx ~n =
  let qubits = Sb_machine.Util.clamp (Sb_machine.Util.log2_floor (max 64 (n / 32))) 6 12 in
  let reps = 2 in
  for rep = 1 to reps do
    let r = create ctx ~qubits in
    let marked = (rep * 2654435761) land (r.n - 1) in
    ignore (grover ctx r ~marked);
    ctx.s.Scheme.free r.amps
  done
