(** sjeng: game-tree search with alpha-beta pruning and a transposition
    table, over simulated memory.

    The game is a deterministic zero-sum "territory" game on a small
    board (players alternately claim cells; a claimed cell scores its
    value plus a bonus for adjacent friendly cells), which gives the
    search the branchy, evaluation-heavy, TT-probing profile of the
    original chess engine: a hot board array, a large flat transposition
    table probed pseudo-randomly, and lots of ALU per node.

    [alphabeta] and [minimax] are exposed so tests can prove the pruning
    sound (identical values). *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

type game = {
  side : int;            (* board side length *)
  board : ptr;           (* side*side cells: 0 empty, 1/2 claimed *)
  values : ptr;          (* per-cell score values *)
  tt : ptr;              (* transposition table: entries of 16 bytes *)
  tt_entries : int;
  mutable nodes : int;
  mutable tt_hits : int;
}

let cells g = g.side * g.side

let create ctx ~side ~tt_entries =
  let g =
    {
      side;
      board = ctx.s.Scheme.calloc (side * side) 4;
      values = array ctx (side * side) 4;
      tt = ctx.s.Scheme.calloc (tt_entries * 2) 8;
      tt_entries;
      nodes = 0;
      tt_hits = 0;
    }
  in
  write_seq ctx g.values ~lo:0 ~hi:(side * side) ~width:4 (fun _ -> 1 + Rng.int ctx.rng 9);
  g

let cell ctx g i = ctx.s.Scheme.load (idx ctx g.board i 4) 4
let set_cell ctx g i v = ctx.s.Scheme.store (idx ctx g.board i 4) 4 v
let value ctx g i = ctx.s.Scheme.load (idx ctx g.values i 4) 4

let neighbours g i =
  let x = i mod g.side and y = i / g.side in
  List.filter_map
    (fun (dx, dy) ->
       let nx = x + dx and ny = y + dy in
       if nx < 0 || nx >= g.side || ny < 0 || ny >= g.side then None
       else Some ((ny * g.side) + nx))
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

(* Score of claiming cell [i] for [player]: cell value + connectivity. *)
let move_score ctx g i player =
  work ctx 12;
  let bonus =
    List.fold_left
      (fun acc j -> if cell ctx g j = player then acc + 2 else acc)
      0 (neighbours g i)
  in
  value ctx g i + bonus

(* Zobrist-ish incremental hash of the position. *)
let position_hash ctx g =
  let h = ref 0 in
  ctx.s.Scheme.check_range g.board (cells g * 4) Read;
  for i = 0 to cells g - 1 do
    let c = ctx.s.Scheme.load_unchecked (idx ctx g.board i 4) 4 in
    if c <> 0 then h := !h lxor ((i + 1) * 0x9E3779B9 * c);
    work ctx 2
  done;
  !h land max_int

let tt_probe ctx g hash depth =
  let slot = hash land (g.tt_entries - 1) in
  let key = ctx.s.Scheme.load (idx ctx g.tt (slot * 2) 8) 8 in
  let data = ctx.s.Scheme.load (idx ctx g.tt ((slot * 2) + 1) 8) 8 in
  if key = hash land 0xFFFFFFFF && data land 0xFF = depth then begin
    g.tt_hits <- g.tt_hits + 1;
    Some ((data asr 8) - (1 lsl 30))
  end
  else None

let tt_store ctx g hash depth score =
  let slot = hash land (g.tt_entries - 1) in
  ctx.s.Scheme.store (idx ctx g.tt (slot * 2) 8) 8 (hash land 0xFFFFFFFF);
  ctx.s.Scheme.store (idx ctx g.tt ((slot * 2) + 1) 8) 8
    (((score + (1 lsl 30)) lsl 8) lor depth)

(* Score differential search: player 1 maximizes, player 2 minimizes.
   [moves] limits branching like sjeng's move ordering window. *)
let rec alphabeta ?(use_tt = true) ctx g ~depth ~alpha ~beta ~player =
  g.nodes <- g.nodes + 1;
  if depth = 0 then 0
  else begin
    let hash = if use_tt then position_hash ctx g else 0 in
    match if use_tt then tt_probe ctx g hash depth else None with
    | Some v -> v
    | None ->
      (* candidate moves: first [branch] empty cells *)
      let branch = 5 in
      let moves = ref [] in
      let i = ref 0 in
      while List.length !moves < branch && !i < cells g do
        if cell ctx g !i = 0 then moves := !i :: !moves;
        incr i
      done;
      let best = ref (if player = 1 then min_int else max_int) in
      if !moves = [] then best := 0
      else begin
        let a = ref alpha and b = ref beta in
        (* the child's window must be expressed in the child's frame:
           total = s + sub (max node) or sub - s (min node), so shift the
           bounds by the incremental move score, saturating at infinity *)
        let shift w d =
          if w <= -(1 lsl 50) || w >= 1 lsl 50 then w else w + d
        in
        (try
           List.iter
             (fun m ->
                let s = move_score ctx g m player in
                set_cell ctx g m player;
                let sub =
                  if player = 1 then
                    alphabeta ~use_tt ctx g ~depth:(depth - 1)
                      ~alpha:(shift !a (-s)) ~beta:(shift !b (-s))
                      ~player:2
                  else
                    alphabeta ~use_tt ctx g ~depth:(depth - 1)
                      ~alpha:(shift !a s) ~beta:(shift !b s)
                      ~player:1
                in
                set_cell ctx g m 0;
                let v = if player = 1 then s + sub else sub - s in
                if player = 1 then begin
                  if v > !best then best := v;
                  if !best > !a then a := !best;
                  if !a >= !b then raise Exit
                end
                else begin
                  if v < !best then best := v;
                  if !best < !b then b := !best;
                  if !a >= !b then raise Exit
                end)
             (List.rev !moves)
         with Exit -> ())
      end;
      if use_tt then tt_store ctx g hash depth !best;
      !best
  end

(* Plain minimax (no pruning, no TT): the reference for soundness tests. *)
let rec minimax ctx g ~depth ~player =
  if depth = 0 then 0
  else begin
    let branch = 5 in
    let moves = ref [] in
    let i = ref 0 in
    while List.length !moves < branch && !i < cells g do
      if cell ctx g !i = 0 then moves := !i :: !moves;
      incr i
    done;
    if !moves = [] then 0
    else
      let vals =
        List.map
          (fun m ->
             let s = move_score ctx g m player in
             set_cell ctx g m player;
             let sub = minimax ctx g ~depth:(depth - 1) ~player:(3 - player) in
             set_cell ctx g m 0;
             if player = 1 then s + sub else sub - s)
          (List.rev !moves)
      in
      if player = 1 then List.fold_left max min_int vals
      else List.fold_left min max_int vals
  end

(** The kernel: repeated root searches from random positions; [n] scales
    the transposition table and the number of searches. *)
let run ctx ~n =
  let tt_entries = Sb_machine.Util.next_pow2 (max 1024 n) in
  let g = create ctx ~side:8 ~tt_entries in
  let searches = max 1 (n / 4096) in
  for _s = 1 to searches do
    (* scatter a few stones and search *)
    for _ = 1 to 6 do
      set_cell ctx g (Rng.int ctx.rng (cells g)) (1 + Rng.int ctx.rng 2)
    done;
    ignore (alphabeta ctx g ~depth:4 ~alpha:min_int ~beta:max_int ~player:1)
  done
