(** The 13 supported SPEC CPU2006 programs (§6.7: the paper runs 13 of
    19; perlbench, gcc, soplex, dealII, omnetpp and povray are excluded
    for the same reasons given there).

    All kernels are single-threaded (SPEC is) and more CPU-intensive than
    Phoenix/PARSEC — more arithmetic per memory access — so SGX restricts
    them less, as in Figure 11 vs Figure 7. Pointer-heavy programs (mcf,
    astar, xalancbmk) are the ones whose bounds tables kill Intel MPX. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

(** astar: a complete A* pathfinder (binary heap, parent-pointer path
    reconstruction) over individually allocated nodes — see
    {!Spec_astar}. Pointer-heavy with a large working set: the first of
    the paper's three MPX OOM victims. *)
let astar ctx ~n = Spec_astar.run ctx ~n

(** bzip2: the full Burrows-Wheeler pipeline (RLE/BWT/MTF/entropy) —
    see {!Spec_bzip2}. Flat buffers, byte-granularity, sort-dominated. *)
let bzip2 ctx ~n = Spec_bzip2.run ctx ~n

(** gobmk: Go playouts with real capture mechanics (flood-fill groups,
    liberty counting, suicide filter) — see {!Spec_gobmk}. Small hot
    arrays, branchy, ALU-heavy. *)
let gobmk ctx ~n = Spec_gobmk.run ctx ~n

(** h264ref: reference-encoder motion search, lighter than x264. *)
let h264ref ctx ~n = Parsec.x264 ctx ~n:(n / 2)

(** hmmer: full profile-HMM Viterbi with traceback — see {!Spec_hmmer}.
    Dense sequential DP, arithmetic-heavy. *)
let hmmer ctx ~n = Spec_hmmer.run ctx ~n

(** lbm: lattice-Boltzmann — two large grids streamed sequentially;
    working set far beyond the EPC but with perfect spatial locality. *)
let lbm ctx ~n =
  let vals = 20 in
  let src = array ctx (n * vals) 4 and dst = array ctx (n * vals) 4 in
  fill_random ctx src (n * vals) 4;
  for _step = 1 to 2 do
    ctx.s.Scheme.check_range src (n * vals * 4) Read;
    ctx.s.Scheme.check_range dst (n * vals * 4) Write;
    for cell = 0 to n - 1 do
      let acc = ref 0 in
      for v = 0 to vals - 1 do
        acc := !acc + ctx.s.Scheme.load_unchecked (idx ctx src ((cell * vals) + v) 4) 4;
        work ctx 2
      done;
      for v = 0 to vals - 1 do
        ctx.s.Scheme.store_unchecked (idx ctx dst ((cell * vals) + v) 4) 4 (!acc / vals);
        work ctx 2
      done
    done;
    Sb_libc.Simlibc.memcpy ctx.s ~dst:src ~src:dst ~len:(n * vals * 4)
  done

(** libquantum: a quantum-register simulator running Grover search —
    see {!Spec_libquantum}. Flat amplitude array, strided butterflies
    and linear sweeps. *)
let libquantum ctx ~n = Spec_libquantum.run ctx ~n

(** mcf: minimum-cost flow — arcs holding head/tail node pointers,
    chased across a working set far beyond the EPC. The paper's starkest
    ASan-vs-SGXBounds gap (2.4x vs 1%) and an MPX OOM victim. *)
let mcf ctx ~n =
  (* n arcs, n/4 nodes *)
  let nnodes = max 16 (n / 4) in
  let node_bytes = 28 and arc_bytes = 40 in
  let nodes = array ctx nnodes 8 in
  for i = 0 to nnodes - 1 do
    ctx.s.Scheme.store_ptr (idx ctx nodes i 8) (ctx.s.Scheme.malloc node_bytes)
  done;
  let arcs = array ctx n 8 in
  for i = 0 to n - 1 do
    let a = ctx.s.Scheme.malloc arc_bytes in
    ctx.s.Scheme.store a 4 (Rng.int ctx.rng 1000); (* cost *)
    ctx.s.Scheme.store_ptr (ctx.s.Scheme.offset a 8)
      (ctx.s.Scheme.load_ptr (idx ctx nodes (Rng.int ctx.rng nnodes) 8));
    ctx.s.Scheme.store_ptr (ctx.s.Scheme.offset a 16)
      (ctx.s.Scheme.load_ptr (idx ctx nodes (Rng.int ctx.rng nnodes) 8));
    ctx.s.Scheme.store_ptr (idx ctx arcs i 8) a
  done;
  (* pricing passes: chase arc -> node pointers *)
  for _pass = 1 to 2 do
    ctx.s.Scheme.check_range arcs (n * 8) Read;
    for i = 0 to n - 1 do
      let a = ctx.s.Scheme.load_ptr_unchecked (idx ctx arcs i 8) in
      let cost = ctx.s.Scheme.safe_load a 4 in
      let tail = ctx.s.Scheme.load_ptr (ctx.s.Scheme.offset a 8) in
      let head = ctx.s.Scheme.load_ptr (ctx.s.Scheme.offset a 16) in
      let pt = ctx.s.Scheme.safe_load tail 4 and ph = ctx.s.Scheme.safe_load head 4 in
      work ctx 10;
      if cost + pt < ph then ctx.s.Scheme.safe_store head 4 (cost + pt)
    done
  done

(** milc: lattice QCD — flat 4D lattice of small matrices, streaming
    staple sums. *)
let milc ctx ~n =
  let per_site = 18 in
  let lat = array ctx (n * per_site) 4 in
  fill_random ctx lat (n * per_site) 4;
  for _pass = 1 to 2 do
    ctx.s.Scheme.check_range lat (n * per_site * 4) Write;
    for s = 0 to n - 1 do
      let acc = ref 0 in
      for v = 0 to per_site - 1 do
        acc := !acc + ctx.s.Scheme.load_unchecked (idx ctx lat ((s * per_site) + v) 4) 4;
        work ctx 4
      done;
      ctx.s.Scheme.store_unchecked (idx ctx lat (s * per_site) 4) 4 !acc
    done
  done

(** namd: molecular dynamics — force loops over atoms and an index-based
    pair list (no pointer chasing, good locality). *)
let namd ctx ~n =
  let atoms = array ctx (n * 8) 4 in
  fill_random ctx atoms (n * 8) 4;
  let pairs_per_atom = 8 in
  for i = 0 to n - 1 do
    let base = idx ctx atoms (i * 8) 4 in
    ctx.s.Scheme.check_range base 32 Write;
    for p = 0 to pairs_per_atom - 1 do
      let j = (i + (p * 53) + 1) mod n in
      let f = get ctx atoms ((j * 8) + 2) 4 in
      work ctx 18; (* 1/r^2, switching function *)
      ctx.s.Scheme.store_unchecked base 4 (ctx.s.Scheme.load_unchecked base 4 + f)
    done
  done

(** sjeng: alpha-beta game-tree search with a transposition table —
    see {!Spec_sjeng}. Hot board array + big flat TT probed randomly. *)
let sjeng ctx ~n = Spec_sjeng.run ctx ~n

(** sphinx3: acoustic scoring — streaming gaussian evaluation of frames
    against a senone table. *)
let sphinx3 ctx ~n =
  let senones = 512 and comp = 4 in
  let table = array ctx (senones * comp * 2) 4 in
  fill_random ctx table (senones * comp * 2) 4;
  let frames = max 1 (n / senones) in
  let feat = array ctx 16 4 in
  for f = 0 to frames - 1 do
    ignore f;
    fill_random ctx feat 16 4;
    ctx.s.Scheme.check_range table (senones * comp * 2 * 4) Read;
    for sn = 0 to senones - 1 do
      let score = ref 0 in
      for c = 0 to comp - 1 do
        let mean = ctx.s.Scheme.load_unchecked (idx ctx table ((sn * comp * 2) + c) 4) 4 in
        let var = ctx.s.Scheme.load_unchecked (idx ctx table ((sn * comp * 2) + comp + c) 4) 4 in
        let x = get ctx feat (c land 15) 4 in
        score := !score + fx_mul (x - mean) (x - mean) + var;
        work ctx 6
      done;
      ignore !score
    done
  done

(** xalancbmk: XSLT processing — a DOM tree of individually allocated
    nodes with child-pointer arrays, repeatedly traversed. Pointer-heavy
    with many small allocations: the third MPX OOM victim. *)
let xalancbmk ctx ~n =
  (* n DOM nodes in a branching-factor-4 tree *)
  let node_bytes = 72 in (* tag, attrs, 4 child pointers *)
  let all = array ctx n 8 in
  for i = 0 to n - 1 do
    let nd = ctx.s.Scheme.malloc node_bytes in
    ctx.s.Scheme.store nd 4 (i land 0xff);
    ctx.s.Scheme.store_ptr (idx ctx all i 8) nd
  done;
  (* wire children: node i -> 4i+1 .. 4i+4 *)
  for i = 0 to n - 1 do
    let nd = ctx.s.Scheme.load_ptr (idx ctx all i 8) in
    for c = 0 to 3 do
      let j = (4 * i) + c + 1 in
      if j < n then
        ctx.s.Scheme.store_ptr
          (ctx.s.Scheme.offset nd (8 + (c * 8)))
          (ctx.s.Scheme.load_ptr (idx ctx all j 8))
    done
  done;
  (* three template-matching traversals *)
  for _pass = 1 to 3 do
    let rec visit nd depth =
      if not (is_null ctx nd) && depth < 24 then begin
        work ctx 14; (* template match on the tag *)
        ignore (ctx.s.Scheme.load nd 4);
        for c = 0 to 3 do
          visit (ctx.s.Scheme.load_ptr (ctx.s.Scheme.offset nd (8 + (c * 8)))) (depth + 1)
        done
      end
    in
    visit (ctx.s.Scheme.load_ptr all) 0
  done
