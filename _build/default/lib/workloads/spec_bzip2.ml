(** bzip2: the real compression pipeline over simulated memory.

    Stage structure of the original (Burrows-Wheeler block sorting):
    run-length encoding, BWT (rotation sort), move-to-front, and a final
    run-length/entropy stage. All buffers live in simulated memory and
    every byte moves through the scheme, so the kernel keeps bzip2's
    character: flat buffers, byte-granularity accesses, sort-dominated
    CPU time, working set = a handful of block-sized arrays.

    The BWT here is the textbook rotation sort (insertion-binary hybrid
    with bounded comparison depth like the original's fallback sorter),
    applied per block; [bwt_block]/[inverse_bwt] are exposed so tests can
    prove the transform invertible. *)

module Scheme = Sb_protection.Scheme
open Sb_protection.Types
open Wctx

let block_bytes = 256
let cmp_depth = 12

(* Compare rotations [i] and [j] of the [len]-byte block at [data],
   reading through the scheme (hoisted: the block was range-checked). *)
let rot_cmp ctx data len i j =
  let rec go k =
    if k >= cmp_depth then 0
    else begin
      work ctx 3;
      let a = ctx.s.Scheme.load_unchecked (idx ctx data ((i + k) mod len) 1) 1 in
      let b = ctx.s.Scheme.load_unchecked (idx ctx data ((j + k) mod len) 1) 1 in
      if a <> b then compare a b else go (k + 1)
    end
  in
  go 0

(** BWT of the [len]-byte block at [data]: fills [out] with the last
    column and returns the index of the original rotation. [order] is a
    scratch array of [len] 4-byte ints (the rotation index vector). *)
let bwt_block ctx ~data ~out ~order ~len =
  ctx.s.Scheme.check_range data len Read;
  ctx.s.Scheme.check_range order (len * 4) Write;
  (* initialize the rotation indices *)
  for i = 0 to len - 1 do
    ctx.s.Scheme.store_unchecked (idx ctx order i 4) 4 i
  done;
  (* insertion sort with binary probing — the original's fallback sorter
     is similarly quadratic-ish on small blocks *)
  for i = 1 to len - 1 do
    let v = ctx.s.Scheme.load_unchecked (idx ctx order i 4) 4 in
    (* binary search for the insertion point in [0, i) *)
    let lo = ref 0 and hi = ref i in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let m = ctx.s.Scheme.load_unchecked (idx ctx order mid 4) 4 in
      if rot_cmp ctx data len m v <= 0 then lo := mid + 1 else hi := mid
    done;
    (* shift and insert *)
    for j = i downto !lo + 1 do
      ctx.s.Scheme.store_unchecked (idx ctx order j 4) 4
        (ctx.s.Scheme.load_unchecked (idx ctx order (j - 1) 4) 4)
    done;
    ctx.s.Scheme.store_unchecked (idx ctx order !lo 4) 4 v
  done;
  (* emit the last column; find the original rotation *)
  ctx.s.Scheme.check_range out len Write;
  let primary = ref 0 in
  for i = 0 to len - 1 do
    let rot = ctx.s.Scheme.load_unchecked (idx ctx order i 4) 4 in
    if rot = 0 then primary := i;
    let last = (rot + len - 1) mod len in
    ctx.s.Scheme.store_unchecked (idx ctx out i 1)
      1
      (ctx.s.Scheme.load_unchecked (idx ctx data last 1) 1)
  done;
  !primary

(** Inverse BWT (OCaml-side verification helper): reconstructs the
    original block from the last column and the primary index. *)
let inverse_bwt last_column primary =
  let n = String.length last_column in
  let counts = Array.make 256 0 in
  String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) last_column;
  let firsts = Array.make 256 0 in
  let acc = ref 0 in
  for c = 0 to 255 do
    firsts.(c) <- !acc;
    acc := !acc + counts.(c)
  done;
  (* next.(i): row of the rotation that follows row i's rotation *)
  let seen = Array.make 256 0 in
  let next = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = Char.code last_column.[i] in
    next.(firsts.(c) + seen.(c)) <- i;
    seen.(c) <- seen.(c) + 1
  done;
  let out = Bytes.create n in
  let row = ref next.(primary) in
  for i = 0 to n - 1 do
    Bytes.set out i last_column.[!row];
    row := next.(!row)
  done;
  Bytes.to_string out

(* Move-to-front over the BWT output: small table, byte-at-a-time. *)
let mtf_pass ctx ~src ~dst ~len =
  let table = array ctx 256 1 in
  ctx.s.Scheme.check_range table 256 Write;
  for c = 0 to 255 do
    ctx.s.Scheme.store_unchecked (idx ctx table c 1) 1 c
  done;
  ctx.s.Scheme.check_range src len Read;
  ctx.s.Scheme.check_range dst len Write;
  for i = 0 to len - 1 do
    let c = ctx.s.Scheme.load_unchecked (idx ctx src i 1) 1 in
    (* find c's position and move it to front *)
    let pos = ref 0 in
    while ctx.s.Scheme.load_unchecked (idx ctx table !pos 1) 1 <> c do
      incr pos;
      work ctx 1
    done;
    ctx.s.Scheme.store_unchecked (idx ctx dst i 1) 1 !pos;
    for j = !pos downto 1 do
      ctx.s.Scheme.store_unchecked (idx ctx table j 1) 1
        (ctx.s.Scheme.load_unchecked (idx ctx table (j - 1) 1) 1)
    done;
    ctx.s.Scheme.store_unchecked (idx ctx table 0 1) 1 c
  done;
  ctx.s.Scheme.free table

(* Final stage: run-length + frequency counting (stands in for the
   Huffman coder's first pass). *)
let entropy_pass ctx ~src ~len =
  let freq = array ctx 256 4 in
  ctx.s.Scheme.check_range src len Read;
  ctx.s.Scheme.check_range freq 1024 Write;
  let runs = ref 0 and prev = ref (-1) in
  for i = 0 to len - 1 do
    let c = ctx.s.Scheme.load_unchecked (idx ctx src i 1) 1 in
    if c <> !prev then incr runs;
    prev := c;
    let f = ctx.s.Scheme.load_unchecked (idx ctx freq c 4) 4 in
    ctx.s.Scheme.store_unchecked (idx ctx freq c 4) 4 (f + 1);
    work ctx 3
  done;
  ctx.s.Scheme.free freq;
  !runs

(** The kernel: compress an [n]-byte input block-by-block. *)
let run ctx ~n =
  let input = array ctx n 1 in
  (* mildly compressible input, like the reference corpus: long runs of
     slowly-varying bytes with occasional noise — this is what makes the
     BWT cluster and MTF emit small symbols *)
  write_seq ctx input ~lo:0 ~hi:n ~width:1 (fun i ->
      if i land 15 = 0 then Sb_machine.Rng.int ctx.rng 256
      else ((i lsr 4) land 0x3f) + 0x20);
  let out = array ctx block_bytes 1 in
  let mtf = array ctx block_bytes 1 in
  let order = array ctx (block_bytes * 4) 1 in
  let blocks = n / block_bytes in
  for b = 0 to blocks - 1 do
    let data = idx ctx input (b * block_bytes) 1 in
    let primary = bwt_block ctx ~data ~out ~order ~len:block_bytes in
    ignore primary;
    mtf_pass ctx ~src:out ~dst:mtf ~len:block_bytes;
    ignore (entropy_pass ctx ~src:mtf ~len:block_bytes)
  done
