(** hmmer: full profile-HMM Viterbi with traceback over simulated memory.

    The dynamic program of hmmsearch: for a profile of [m] match states
    and a sequence of [l] residues, compute the best-path score over
    match/insert/delete states and recover the alignment by traceback.
    The score matrix rows and the byte-wide traceback matrix live in
    simulated memory — the original's profile exactly: dense sequential
    DP (arithmetic-heavy, perfectly strided) plus one cold traceback
    walk.

    [viterbi] returns (score, alignment ops) so tests can check it
    against an OCaml-side reference on small instances. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

let neg_inf = -(1 lsl 40)

(* transition penalties (log-space, negative costs) *)
let t_mm = 0 and t_mi = -3 and t_md = -4 and t_im = -1 and t_dm = -1

type model = {
  m : int;                 (* match states *)
  emit : ptr;              (* m x 4 emission scores (DNA alphabet) *)
}

let random_model ctx ~m =
  let emit = array ctx (m * 4) 4 in
  write_seq ctx emit ~lo:0 ~hi:(m * 4) ~width:4 (fun _ -> Rng.int ctx.rng 8);
  { m; emit }

let emission ctx md j res = ctx.s.Scheme.load (idx ctx md.emit ((j * 4) + res) 4) 4

(* traceback ops *)
let op_match = 1 and op_insert = 2 and op_delete = 3

(** Viterbi over residues [seq] (length l, values 0..3 in sim memory).
    Returns (best score, traceback ops from the last cell). *)
let viterbi ctx md ~seq ~l =
  let m = md.m in
  let width = m + 1 in
  (* three DP rows per sequence position would be O(l*m); keep the two
     rolling rows for M/I/D plus a full byte traceback matrix *)
  let row_bytes = width * 8 in
  let mk () = (array ctx row_bytes 1, array ctx row_bytes 1) in
  let m_prev, m_cur = mk () in
  let i_prev, i_cur = mk () in
  let d_prev, d_cur = mk () in
  let tb = array ctx (l * width) 1 in   (* traceback: best predecessor *)
  let get p j = ctx.s.Scheme.load_unchecked (idx ctx p j 8) 8 - (1 lsl 41) in
  let set p j v = ctx.s.Scheme.store_unchecked (idx ctx p j 8) 8 (v + (1 lsl 41)) in
  List.iter
    (fun (p : ptr) -> ctx.s.Scheme.check_range p row_bytes Write)
    [ m_prev; m_cur; i_prev; i_cur; d_prev; d_cur ];
  ctx.s.Scheme.check_range tb (l * width) Write;
  (* init row 0 *)
  for j = 0 to m do
    set m_prev j (if j = 0 then 0 else neg_inf);
    set i_prev j neg_inf;
    set d_prev j (if j = 0 then neg_inf else t_md + ((j - 1) * t_dm))
  done;
  let res_at i = ctx.s.Scheme.load (idx ctx seq i 1) 1 land 3 in
  for i = 1 to l do
    let res = res_at (i - 1) in
    set m_cur 0 neg_inf;
    set i_cur 0 (max (get m_prev 0 + t_mi) (get i_prev 0 + t_im));
    set d_cur 0 neg_inf;
    for j = 1 to m do
      work ctx 14;
      let e = emission ctx md (j - 1) res in
      (* match: from M/I/D at (i-1, j-1) *)
      let fm = get m_prev (j - 1) + t_mm in
      let fi = get i_prev (j - 1) + t_im in
      let fd = get d_prev (j - 1) + t_dm in
      let best = max fm (max fi fd) in
      set m_cur j (best + e);
      ctx.s.Scheme.store_unchecked
        (idx ctx tb (((i - 1) * width) + j) 1)
        1
        (if best = fm then op_match else if best = fi then op_insert else op_delete);
      (* insert: stay in column j, consume a residue *)
      set i_cur j (max (get m_prev j + t_mi) (get i_prev j + t_im));
      (* delete: skip a profile column *)
      set d_cur j (max (get m_cur (j - 1) + t_md) (get d_cur (j - 1) + t_dm))
    done;
    (* roll rows *)
    for j = 0 to m do
      set m_prev j (get m_cur j);
      set i_prev j (get i_cur j);
      set d_prev j (get d_cur j)
    done
  done;
  let score = get m_prev m in
  (* traceback walk: cold strided reads through the byte matrix *)
  let ops = ref [] in
  let i = ref l and j = ref m in
  while !i > 0 && !j > 0 do
    let op = ctx.s.Scheme.load (idx ctx tb (((!i - 1) * width) + !j) 1) 1 in
    ops := op :: !ops;
    (match op with
     | o when o = op_match -> decr i; decr j
     | o when o = op_insert -> decr i
     | _ -> decr j);
    work ctx 3
  done;
  (score, !ops)

(** The kernel: score [n]-scaled sequences against one profile. *)
let run ctx ~n =
  let m = 128 in
  let md = random_model ctx ~m in
  let l = 256 in
  let seq = array ctx l 1 in
  let passes = max 1 (n / (l * m / 64)) in
  for _p = 1 to min passes 8 do
    fill_random ctx seq l 1;
    ignore (viterbi ctx md ~seq ~l)
  done
