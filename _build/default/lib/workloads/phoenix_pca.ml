(** pca: principal component analysis by power iteration, over a matrix
    stored as an array of row pointers (Phoenix passes the data as
    "int pointer pointer").

    The math is the real thing: v <- normalize(Aᵀ(A v)) converges to the
    dominant right singular vector (the first principal direction of the
    row-centred data); tests plant a known dominant direction and check
    that the iteration recovers it.

    The memory behaviour is the paper's worst case for Intel MPX: the
    compiled [a\[i\]\[k\]] indexing re-derives the row pointer on every
    element access, so each inner-loop step performs a pointer load —
    free for SGXBounds (the tag rides in the word), a bndldx for MPX. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

type mat = {
  n : int;             (* rows = cols *)
  rows : ptr;          (* row-pointer table *)
}

let elem ctx m i k =
  (* a[i][k]: row-pointer load then element load, both inside hoisted
     ranges (the checks hoist; MPX's metadata load does not) *)
  let row = ctx.s.Scheme.load_ptr_unchecked (idx ctx m.rows i 8) in
  ctx.s.Scheme.load_unchecked (idx ctx row k 4) 4

(** Build an n x n matrix whose rows are s_i * u + noise for a planted
    unit-ish direction u; returns (matrix, planted u as an int array). *)
let build ctx ~n ~noise =
  let u = Array.init n (fun k -> if k land 1 = 0 then 50 + (k mod 7) else -(40 + (k mod 5))) in
  let rows = array ctx n 8 in
  for i = 0 to n - 1 do
    let r = array ctx n 4 in
    ctx.s.Scheme.check_range r (n * 4) Write;
    let s = 1 + (i mod 5) in
    for k = 0 to n - 1 do
      let nz = if noise = 0 then 0 else Rng.int ctx.rng (2 * noise) - noise in
      (* store sign-magnitude-free: offset by 2^20 to keep values positive *)
      ctx.s.Scheme.store_unchecked (idx ctx r k 4) 4 (((s * u.(k)) + nz) + (1 lsl 20))
    done;
    ctx.s.Scheme.store_ptr (idx ctx rows i 8) r
  done;
  ({ n; rows }, u)

let signed v = v - (1 lsl 20)

(** Power iteration: returns the dominant direction as an int array
    (scaled to max |v| = 2^16). *)
let power_iteration ctx m ~iters =
  let n = m.n in
  let v = Array.init n (fun k -> ((k * 37) mod 97) - 48) in
  let w = Array.make n 0 in
  for _it = 1 to iters do
    ctx.s.Scheme.check_range m.rows (n * 8) Read;
    (* w = A v (row-centred implicitly: the +2^20 offset cancels after
       centring v to zero mean) *)
    let v_mean = Array.fold_left ( + ) 0 v / n in
    for i = 0 to n - 1 do
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (signed (elem ctx m i k) * (v.(k) - v_mean));
        work ctx 4
      done;
      w.(i) <- !acc
    done;
    (* rescale w to avoid overflow *)
    let wmax = Array.fold_left (fun a x -> max a (abs x)) 1 w in
    let w = Array.map (fun x -> x * 65536 / wmax) w in
    (* v = A^T w, with w centred so the storage offset cancels again *)
    let w_mean = Array.fold_left ( + ) 0 w / n in
    for k = 0 to n - 1 do
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + (signed (elem ctx m i k) * (w.(i) - w_mean));
        work ctx 4
      done;
      v.(k) <- !acc
    done;
    let vmax = Array.fold_left (fun a x -> max a (abs x)) 1 v in
    Array.iteri (fun k x -> v.(k) <- x * 65536 / vmax) v
  done;
  v

(** Cosine-squared similarity of two directions, in percent. *)
let alignment_pct a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
       let x = float_of_int x and y = float_of_int b.(i) in
       dot := !dot +. (x *. y);
       na := !na +. (x *. x);
       nb := !nb +. (y *. y))
    a;
  int_of_float (100.0 *. !dot *. !dot /. (!na *. !nb))

(** The kernel. [n] is the matrix dimension. *)
let run ctx ~n =
  let m, _u = build ctx ~n ~noise:8 in
  ignore (power_iteration ctx m ~iters:2)
