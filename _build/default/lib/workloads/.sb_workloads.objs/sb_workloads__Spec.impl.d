lib/workloads/spec.ml: Parsec Sb_libc Sb_machine Sb_protection Spec_astar Spec_bzip2 Spec_gobmk Spec_hmmer Spec_libquantum Spec_sjeng Wctx
