lib/workloads/spec_bzip2.ml: Array Bytes Char Sb_machine Sb_protection String Wctx
