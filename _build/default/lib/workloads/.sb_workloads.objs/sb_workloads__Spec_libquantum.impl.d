lib/workloads/spec_libquantum.ml: Float Sb_machine Sb_protection Wctx
