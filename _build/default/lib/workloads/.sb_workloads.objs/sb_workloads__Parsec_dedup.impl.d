lib/workloads/parsec_dedup.ml: List Sb_libc Sb_machine Sb_protection Wctx
