lib/workloads/spec_sjeng.ml: List Sb_machine Sb_protection Wctx
