lib/workloads/registry.ml: List Parsec Phoenix Printf Spec Wctx
