lib/workloads/spec_hmmer.ml: List Sb_machine Sb_protection Wctx
