lib/workloads/spec_astar.ml: Hashtbl List Sb_machine Sb_protection Wctx
