lib/workloads/phoenix_pca.ml: Array Sb_machine Sb_protection Wctx
