lib/workloads/spec_gobmk.ml: List Sb_libc Sb_machine Sb_protection Wctx
