lib/workloads/phoenix.ml: Phoenix_pca Sb_machine Sb_protection Wctx
