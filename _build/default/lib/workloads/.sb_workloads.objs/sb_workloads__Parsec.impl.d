lib/workloads/parsec.ml: Parsec_dedup Sb_machine Sb_protection Wctx
