lib/workloads/wctx.ml: Array Sb_machine Sb_mt Sb_protection Sb_sgx
