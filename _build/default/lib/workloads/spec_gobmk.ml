(** gobmk: Go playouts with real capture logic over simulated memory.

    Random playouts on a 9x9 board with the actual rules mechanics that
    dominate the original's profile: group discovery by flood fill,
    liberty counting, capture removal, and a simple suicide filter.
    Board and flood-fill worklists are flat arrays (gobmk's access
    character: small, hot, branchy), with heavy ALU per move.

    [place]/[group_liberties] are exposed so tests can check the rules
    (a surrounded stone is captured; a group with liberties is not). *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

let side = 9
let cells = side * side

type board = {
  stones : ptr;      (* cells of 4 bytes: 0 empty, 1 black, 2 white *)
  mark : ptr;        (* flood-fill visited marks *)
  work_stack : ptr;  (* flood-fill worklist *)
  mutable captures : int;
}

let create ctx =
  {
    stones = ctx.s.Scheme.calloc cells 4;
    mark = ctx.s.Scheme.calloc cells 4;
    work_stack = ctx.s.Scheme.calloc cells 4;
    captures = 0;
  }

let stone ctx b i = ctx.s.Scheme.load (idx ctx b.stones i 4) 4
let set_stone ctx b i v = ctx.s.Scheme.store (idx ctx b.stones i 4) 4 v

let neighbours i =
  let x = i mod side and y = i / side in
  List.filter_map
    (fun (dx, dy) ->
       let nx = x + dx and ny = y + dy in
       if nx < 0 || nx >= side || ny < 0 || ny >= side then None else Some ((ny * side) + nx))
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

(* Flood-fill the group containing [i]; returns (members, liberties). *)
let group_liberties ctx b i =
  let colour = stone ctx b i in
  assert (colour <> 0);
  (* clear marks *)
  Sb_libc.Simlibc.memset ctx.s ~dst:b.mark ~byte:0 ~len:(cells * 4);
  let members = ref [] and libs = ref 0 in
  let sp = ref 0 in
  let push j =
    ctx.s.Scheme.store (idx ctx b.work_stack !sp 4) 4 j;
    incr sp
  in
  let marked j = ctx.s.Scheme.load (idx ctx b.mark j 4) 4 <> 0 in
  let mark j v = ctx.s.Scheme.store (idx ctx b.mark j 4) 4 v in
  push i;
  mark i 1;
  while !sp > 0 do
    decr sp;
    let j = ctx.s.Scheme.load (idx ctx b.work_stack !sp 4) 4 in
    members := j :: !members;
    work ctx 25;
    List.iter
      (fun k ->
         if not (marked k) then begin
           let c = stone ctx b k in
           if c = colour then begin
             mark k 1;
             push k
           end
           else if c = 0 then begin
             mark k 2; (* count each liberty once *)
             incr libs
           end
         end)
      (neighbours j)
  done;
  (!members, !libs)

(** Place a stone for [colour] at [i] (must be empty): removes captured
    opposing groups; refuses suicide. Returns whether the move stood. *)
let place ctx b i colour =
  if stone ctx b i <> 0 then false
  else begin
    set_stone ctx b i colour;
    (* capture any adjacent enemy group left without liberties *)
    let enemy = 3 - colour in
    List.iter
      (fun j ->
         if stone ctx b j = enemy then begin
           let members, libs = group_liberties ctx b j in
           if libs = 0 then begin
             List.iter (fun m -> set_stone ctx b m 0) members;
             b.captures <- b.captures + List.length members
           end
         end)
      (neighbours i);
    (* suicide check on our own group *)
    let _, libs = group_liberties ctx b i in
    if libs = 0 then begin
      set_stone ctx b i 0;
      false
    end
    else true
  end

(** The kernel: [n]-scaled random playouts. *)
let run ctx ~n =
  let b = create ctx in
  let playouts = max 1 (n / 256) in
  for _p = 1 to playouts do
    Sb_libc.Simlibc.memset ctx.s ~dst:b.stones ~byte:0 ~len:(cells * 4);
    for mv = 0 to 80 do
      let colour = 1 + (mv land 1) in
      work ctx 160; (* pattern matching and move-generation heuristics *)
      ignore (place ctx b (Rng.int ctx.rng cells) colour)
    done
  done
