(** Workload execution context and loop helpers.

    Kernels perform every memory operation through the scheme, so they
    are "compiled" with the scheme's instrumentation. The loop helpers
    encode the two §4.4-optimizable patterns:

    - [for_range]: a simple positive-stride loop — one hoisted range
      check, then per-iteration accesses through the unchecked accessors
      (which stay checked when the scheme cannot hoist);
    - [safe_*]: accesses at compiler-provably-safe offsets (fixed struct
      fields, constant indices).

    [work] charges plain ALU cycles: the arithmetic a real kernel would
    retire between memory operations. Without it every workload would be
    a pure memory stress test and instrumentation overheads would be
    wildly exaggerated relative to the paper. *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types

type t = {
  s : Scheme.t;
  ms : Memsys.t;
  rng : Rng.t;
  threads : int;
}

let make ?(seed = 42) ?(threads = 1) (s : Scheme.t) =
  { s; ms = s.Scheme.ms; rng = Rng.create seed; threads }

(** Charge [n] ALU instructions of kernel arithmetic. *)
let work ctx n = Memsys.charge_alu ctx.ms n

(** Allocate an array of [n] elements of [width] bytes. *)
let array ctx n width = ctx.s.Scheme.malloc (n * width)

(** Element pointer at index [i]. *)
let idx ctx p i width = ctx.s.Scheme.offset p (i * width)

(** Checked element load/store (per-access check; for irregular indices). *)
let get ctx p i width = ctx.s.Scheme.load (idx ctx p i width) width
let set ctx p i width v = ctx.s.Scheme.store (idx ctx p i width) width v

(** Hoistable sequential loop over elements [lo, hi) of array [p]:
    performs the scheme's range check once, then unchecked accesses.
    [f] receives the element index and an accessor pair. *)
let for_range ctx p ~lo ~hi ~width ~access f =
  if hi > lo then begin
    let base = ctx.s.Scheme.offset p (lo * width) in
    ctx.s.Scheme.check_range base ((hi - lo) * width) access;
    for i = lo to hi - 1 do
      f i (ctx.s.Scheme.offset p (i * width))
    done
  end

(** Sequential read loop with hoisted check. *)
let read_seq ctx p ~lo ~hi ~width f =
  for_range ctx p ~lo ~hi ~width ~access:Read (fun i ep ->
      f i (ctx.s.Scheme.load_unchecked ep width))

(** Sequential write loop with hoisted check. *)
let write_seq ctx p ~lo ~hi ~width f =
  for_range ctx p ~lo ~hi ~width ~access:Write (fun i ep ->
      ctx.s.Scheme.store_unchecked ep width (f i))

(** Parallel partition of [0, n) over the context's threads. [f] is
    called with (thread id, lo, hi). Runs inline when threads = 1. *)
let parallel ctx n f =
  if ctx.threads <= 1 then f 0 0 n
  else begin
    let chunk = (n + ctx.threads - 1) / ctx.threads in
    let thunks =
      Array.init ctx.threads (fun t ->
          let lo = t * chunk in
          let hi = min n (lo + chunk) in
          fun () -> if lo < hi then f t lo hi)
    in
    Sb_mt.Mt.run ctx.ms thunks
  end

(** Fill an array with deterministic pseudo-random bytes/ints. *)
let fill_random ctx p n width =
  write_seq ctx p ~lo:0 ~hi:n ~width (fun _ ->
      Sb_machine.Rng.int ctx.rng (1 lsl (8 * min width 3)))

(** Null test for a pointer value loaded from memory. *)
let is_null ctx p = ctx.s.Scheme.addr_of p = 0

(** Fixed-point helpers: kernels model floating point with 16.16 ints. *)
let fx v = v * 65536
let fx_mul a b = a * b / 65536
let fx_div a b = if b = 0 then 0 else a * 65536 / b
