(** Effects used for cooperative multithreading.

    The memory system performs [Yield] periodically while a multithreaded
    region is active; the scheduler in [Sb_mt] handles it. Defining the
    effect here keeps the memory system independent of the scheduler. *)

type _ Effect.t += Yield : unit Effect.t

(** Set while a scheduler is installed; the memory system only performs
    [Yield] when this is true, so single-threaded code never pays for an
    unhandled-effect exception. *)
let scheduler_active = ref false
