lib/machine/eff.ml: Effect
