lib/machine/rng.ml: Int64
