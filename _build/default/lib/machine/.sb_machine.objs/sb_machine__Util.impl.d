lib/machine/util.ml: Fmt List
