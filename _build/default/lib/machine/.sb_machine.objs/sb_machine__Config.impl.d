lib/machine/config.ml:
