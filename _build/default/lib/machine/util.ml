(** Small arithmetic helpers shared across the simulator. *)

(** Round [n] up to the next multiple of [align] (a power of two). *)
let align_up n align =
  assert (align land (align - 1) = 0);
  (n + align - 1) land lnot (align - 1)

(** Round [n] down to a multiple of [align] (a power of two). *)
let align_down n align =
  assert (align land (align - 1) = 0);
  n land lnot (align - 1)

(** Integer ceiling division. *)
let ceil_div a b = (a + b - 1) / b

(** Position of the highest set bit, i.e. floor(log2 n). Requires n > 0. *)
let log2_floor n =
  assert (n > 0);
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(** Smallest power of two >= n. *)
let next_pow2 n =
  if n <= 1 then 1
  else
    let l = log2_floor (n - 1) in
    1 lsl (l + 1)

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** Clamp [v] into [lo, hi]. *)
let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

(** Geometric mean of a list of positive floats. *)
let geomean = function
  | [] -> 1.0
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (s /. float_of_int (List.length xs))

(** Pretty-print a byte count as B/KB/MB with one decimal. *)
let pp_bytes ppf n =
  let f = float_of_int n in
  if n < 1024 then Fmt.pf ppf "%dB" n
  else if n < 1024 * 1024 then Fmt.pf ppf "%.1fKB" (f /. 1024.)
  else Fmt.pf ppf "%.1fMB" (f /. (1024. *. 1024.))
