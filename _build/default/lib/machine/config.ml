(** Global configuration of the simulated machine.

    All byte sizes below are *already scaled*: real hardware sizes divided
    by [scale]. Keeping working-set : EPC : cache ratios constant preserves
    every crossover of the paper while letting a full evaluation sweep run
    in minutes (see DESIGN.md §6). *)

type env =
  | Outside_enclave  (** normal unconstrained execution (paper's Figure 12) *)
  | Inside_enclave   (** shielded execution under SGX: MEE costs + EPC paging *)

(** Cycle costs of the memory hierarchy and of instrumentation building
    blocks. Calibrated against the paper's Figure 2 (relative overheads of
    Intel SGX w.r.t. native execution) and Skylake latencies. *)
type costs = {
  l1_hit : int;          (** L1 data-cache hit *)
  l2_hit : int;          (** L2 hit *)
  llc_hit : int;         (** last-level-cache hit *)
  dram : int;            (** DRAM access outside the enclave *)
  mee_percent : int;     (** extra cost of an in-enclave DRAM access, in percent
                             (memory encryption engine + integrity check) *)
  epc_fault : int;       (** EPC page fault: evict + re-encrypt + load + decrypt *)
  alu : int;             (** one simple ALU instruction *)
}

type cache_geometry = {
  size : int;            (** capacity in bytes *)
  assoc : int;           (** ways per set *)
}

type t = {
  env : env;
  scale : int;                 (** divisor applied to all real byte sizes *)
  line_size : int;             (** cache-line size in bytes (not scaled) *)
  page_size : int;             (** VM page size in bytes (not scaled) *)
  l1 : cache_geometry;
  l2 : cache_geometry;
  llc : cache_geometry;
  epc_bytes : int;             (** usable EPC capacity (scaled) *)
  enclave_mem_limit : int;     (** max reserved virtual memory before the
                                   enclave dies with OOM (scaled) *)
  costs : costs;
  max_threads : int;
}

let default_costs = {
  l1_hit = 4;
  l2_hit = 12;
  llc_hit = 42;
  dram = 150;
  mee_percent = 140;           (* in-enclave DRAM ~2.4x native *)
  epc_fault = 25_000;
  alu = 1;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

(** [default ()] models the paper's testbed (4-core Skylake, 32K/256K/8M
    caches, 94 MiB usable EPC, 4 GiB enclave) scaled down by 64.
    [epc_bytes] overrides the (already scaled) EPC capacity — the knob
    behind the §8 "EPC Size" sensitivity sweep. *)
let default ?(env = Inside_enclave) ?(scale = 64) ?epc_bytes () =
  {
    env;
    scale;
    line_size = 64;
    page_size = 4096;
    l1 = { size = kib 32 / scale; assoc = 8 };
    l2 = { size = kib 256 / scale; assoc = 8 };
    llc = { size = mib 8 / scale; assoc = 16 };
    epc_bytes = (match epc_bytes with Some b -> b | None -> mib 94 / scale);
    enclave_mem_limit = mib 4096 / scale;
    costs = default_costs;
    max_threads = 64;
  }

(** Scale a real-world byte count into simulated bytes, keeping at least
    one byte so tiny real sizes do not vanish. *)
let scaled t real_bytes = max 1 (real_bytes / t.scale)

let is_inside t = t.env = Inside_enclave
