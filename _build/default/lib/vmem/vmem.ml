let addr_bits = 31
let addr_mask = (1 lsl addr_bits) - 1
let page_size = 4096
let page_shift = 12
let num_pages = 1 lsl (addr_bits - page_shift)

type perm = Read_only | Read_write | Guard

type fault_kind = Unmapped | Guard_hit | Write_to_ro

exception Fault of { addr : int; kind : fault_kind }
exception Enclave_oom of { requested : int; reserved : int; limit : int }

type page = { data : Bytes.t; mutable perm : perm }

type t = {
  pages : page option array;
  limit : int;
  mutable reserved : int;
  mutable peak : int;
  (* Next-fit cursor for address-space placement of anonymous mappings.
     Page index, never reset below its start so address reuse after unmap
     only happens via explicit [addr]. We start at page 16 to keep a null
     guard zone, mirroring the paper's vm.mmap_min_addr = 0 setup where
     the enclave starts at 0 but page 0 is still never handed out. *)
  mutable cursor : int;
}

let create (cfg : Sb_machine.Config.t) =
  {
    pages = Array.make num_pages None;
    limit = cfg.enclave_mem_limit;
    reserved = 0;
    peak = 0;
    cursor = 16;
  }

let reserved_bytes t = t.reserved
let peak_reserved_bytes t = t.peak
let headroom t = t.limit - t.reserved

let is_mapped t addr =
  addr >= 0 && addr <= addr_mask && t.pages.(addr lsr page_shift) <> None

let fault addr kind = raise (Fault { addr; kind })

let pages_of_len len = (len + page_size - 1) lsr page_shift

let range_free t page0 npages =
  let rec go i = i >= npages || (t.pages.(page0 + i) = None && go (i + 1)) in
  page0 + npages <= num_pages && go 0

let find_gap t npages =
  (* Next-fit from the cursor, wrapping once. *)
  let rec scan start tries =
    if tries > num_pages then
      raise
        (Enclave_oom { requested = npages * page_size; reserved = t.reserved; limit = t.limit })
    else if start + npages > num_pages then scan 16 (tries + 1)
    else if range_free t start npages then start
    else scan (start + 1) (tries + npages)
  in
  scan t.cursor 0

let map t ?addr ~len ~perm () =
  if len <= 0 then invalid_arg "Vmem.map: len <= 0";
  let npages = pages_of_len len in
  let bytes = npages * page_size in
  if t.reserved + bytes > t.limit then
    raise (Enclave_oom { requested = bytes; reserved = t.reserved; limit = t.limit });
  let page0 =
    match addr with
    | None ->
      let p = find_gap t npages in
      t.cursor <- p + npages;
      p
    | Some a ->
      if a land (page_size - 1) <> 0 then invalid_arg "Vmem.map: addr not page-aligned";
      let p = a lsr page_shift in
      if not (range_free t p npages) then invalid_arg "Vmem.map: overlap";
      p
  in
  for i = page0 to page0 + npages - 1 do
    t.pages.(i) <- Some { data = Bytes.make page_size '\000'; perm }
  done;
  t.reserved <- t.reserved + bytes;
  if t.reserved > t.peak then t.peak <- t.reserved;
  page0 lsl page_shift

let unmap t ~addr ~len =
  let page0 = addr lsr page_shift and npages = pages_of_len len in
  for i = page0 to page0 + npages - 1 do
    match t.pages.(i) with
    | Some _ ->
      t.pages.(i) <- None;
      t.reserved <- t.reserved - page_size
    | None -> ()
  done

let protect t ~addr ~len ~perm =
  let page0 = addr lsr page_shift and npages = pages_of_len len in
  for i = page0 to page0 + npages - 1 do
    match t.pages.(i) with
    | Some p -> p.perm <- perm
    | None -> fault (i lsl page_shift) Unmapped
  done

let get_page_rd t addr =
  if addr < 0 || addr > addr_mask then fault addr Unmapped;
  match t.pages.(addr lsr page_shift) with
  | None -> fault addr Unmapped
  | Some p -> if p.perm = Guard then fault addr Guard_hit else p

let get_page_wr t addr =
  if addr < 0 || addr > addr_mask then fault addr Unmapped;
  match t.pages.(addr lsr page_shift) with
  | None -> fault addr Unmapped
  | Some p ->
    (match p.perm with
     | Read_write -> p
     | Guard -> fault addr Guard_hit
     | Read_only -> fault addr Write_to_ro)

let off addr = addr land (page_size - 1)

(* Slow byte-at-a-time paths for accesses that straddle a page. *)
let load_bytes_slow t addr width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    let a = addr + i in
    let p = get_page_rd t a in
    v := (!v lsl 8) lor Char.code (Bytes.unsafe_get p.data (off a))
  done;
  !v

let store_bytes_slow t addr width v =
  for i = 0 to width - 1 do
    let a = addr + i in
    let p = get_page_wr t a in
    Bytes.unsafe_set p.data (off a) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
  done

let load t ~addr ~width =
  let o = off addr in
  if o + width <= page_size then begin
    let p = get_page_rd t addr in
    match width with
    | 1 -> Bytes.get_uint8 p.data o
    | 2 -> Bytes.get_uint16_le p.data o
    | 4 -> Int32.to_int (Bytes.get_int32_le p.data o) land 0xFFFFFFFF
    | 8 -> Int64.to_int (Bytes.get_int64_le p.data o) land max_int
    | _ -> invalid_arg "Vmem.load: width"
  end
  else load_bytes_slow t addr width

let store t ~addr ~width v =
  let o = off addr in
  if o + width <= page_size then begin
    let p = get_page_wr t addr in
    match width with
    | 1 -> Bytes.set_uint8 p.data o (v land 0xff)
    | 2 -> Bytes.set_uint16_le p.data o (v land 0xffff)
    | 4 -> Bytes.set_int32_le p.data o (Int32.of_int v)
    | 8 -> Bytes.set_int64_le p.data o (Int64.of_int v)
    | _ -> invalid_arg "Vmem.store: width"
  end
  else store_bytes_slow t addr width v

let blit t ~src ~dst ~len =
  if len > 0 then begin
    (* Copy via a temporary buffer: simple and overlap-safe; [len] is
       bounded by object sizes which are small in the scaled simulation. *)
    let buf = Bytes.create len in
    let i = ref 0 in
    while !i < len do
      let a = src + !i in
      let p = get_page_rd t a in
      let chunk = min (len - !i) (page_size - off a) in
      Bytes.blit p.data (off a) buf !i chunk;
      i := !i + chunk
    done;
    let i = ref 0 in
    while !i < len do
      let a = dst + !i in
      let p = get_page_wr t a in
      let chunk = min (len - !i) (page_size - off a) in
      Bytes.blit buf !i p.data (off a) chunk;
      i := !i + chunk
    done
  end

let write_string t ~addr s =
  String.iteri (fun i c -> store t ~addr:(addr + i) ~width:1 (Char.code c)) s

let read_string t ~addr ~len =
  String.init len (fun i -> Char.chr (load t ~addr:(addr + i) ~width:1))

let fill t ~addr ~len ~byte =
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let p = get_page_wr t a in
    let chunk = min (len - !i) (page_size - off a) in
    Bytes.fill p.data (off a) chunk (Char.chr (byte land 0xff));
    i := !i + chunk
  done
