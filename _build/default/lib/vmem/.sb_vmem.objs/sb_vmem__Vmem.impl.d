lib/vmem/vmem.ml: Array Bytes Char Int32 Int64 Sb_machine String
