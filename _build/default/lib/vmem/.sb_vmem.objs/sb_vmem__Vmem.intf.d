lib/vmem/vmem.mli: Sb_machine
