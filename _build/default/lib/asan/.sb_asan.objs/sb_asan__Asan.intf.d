lib/asan/asan.mli: Sb_protection Sb_sgx
