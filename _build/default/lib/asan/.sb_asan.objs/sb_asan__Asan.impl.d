lib/asan/asan.ml: List Queue Sb_alloc Sb_machine Sb_protection Sb_sgx Sb_vmem
