(** AddressSanitizer model (paper §2.2/§5.2): shadow memory at 1/8 of the
    address space (512 MiB scaled arena reserved up-front, as in 32-bit
    mode), redzones around every object, a size-capped quarantine that
    delays reuse (catching use-after-free/double-free and inflating
    footprints under churn), range-checking libc interceptors, and no
    per-pointer metadata. All shadow traffic goes through the simulated
    cache/EPC — the source of ASan's in-enclave slowdowns. *)

(** Run-time flags (ASAN_OPTIONS analogues): redzone width and the
    real-world quarantine cap (0 disables delayed reuse — and with it
    use-after-free detection). *)
type opts = {
  redzone : int;
  quarantine_cap : int;
}

val default_opts : opts

(** Build an ASan-hardened execution environment on a machine. *)
val make : ?opts:opts -> Sb_sgx.Memsys.t -> Sb_protection.Scheme.t
