(** Experiment harness: run a workload under a scheme, collect the
    metrics the paper reports, normalize against the native-SGX baseline
    and print paper-shaped tables.

    Methodology mirrors §6.1: results are normalized against the native
    (uninstrumented) version in the same environment; memory numbers are
    peak reserved virtual memory; crashed configurations (MPX out of
    enclave memory) are reported as missing bars. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

type metrics = {
  cycles : int;
  instrs : int;
  mem_accesses : int;
  llc_misses : int;
  epc_faults : int;
  peak_vm : int;
  bts : int;
  quarantine : int;
}

type outcome =
  | Completed of metrics
  | Crashed of string

type result = {
  scheme : string;
  workload : string;
  n : int;
  threads : int;
  env : Config.env;
  outcome : outcome;
}

(** The scheme line-up of the evaluation. [sgxbounds-*] variants are the
    Figure 10 optimization ablation. *)
let makers : (string * (Memsys.t -> Scheme.t)) list =
  [
    ("native", Sb_protection.Native.make);
    ("sgxbounds", fun m -> Sgxbounds.make m);
    ("sgxbounds-noopt", fun m -> Sgxbounds.make ~opts:Sgxbounds.no_opts m);
    ( "sgxbounds-safe",
      fun m ->
        Sgxbounds.make ~opts:{ Sgxbounds.safe_elision = true; hoisting = false } m );
    ( "sgxbounds-hoist",
      fun m ->
        Sgxbounds.make ~opts:{ Sgxbounds.safe_elision = false; hoisting = true } m );
    ("sgxbounds-boundless", fun m -> Sgxbounds.make ~mode:Sgxbounds.Boundless_mode m);
    ("asan", (fun m -> Sb_asan.Asan.make m));
    ("mpx", Sb_mpx.Mpx.make);
    ("baggy", fun m -> Sb_baggy.Baggy.make ~region_bytes:(16 * 1024 * 1024) m);
  ]

let maker name =
  match List.assoc_opt name makers with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Harness.maker: unknown scheme %S" name)

(** Run one (workload, scheme, environment) cell on a fresh machine. *)
let run_one ?(env = Config.Inside_enclave) ?(threads = 1) ?n ~scheme
    (w : Sb_workloads.Registry.spec) =
  let n = Option.value n ~default:w.Sb_workloads.Registry.default_n in
  let cfg = Config.default ~env () in
  let ms = Memsys.create cfg in
  let s = maker scheme ms in
  let ctx = Sb_workloads.Wctx.make ~threads s in
  let outcome =
    match w.Sb_workloads.Registry.run ctx ~n with
    | () ->
      let snap = Memsys.snapshot ms in
      Completed
        {
          cycles = snap.Memsys.cycles;
          instrs = snap.Memsys.instrs;
          mem_accesses = snap.Memsys.mem_accesses;
          llc_misses = snap.Memsys.llc_misses;
          epc_faults = snap.Memsys.epc_faults;
          peak_vm = Vmem.peak_reserved_bytes (Memsys.vmem ms);
          bts = s.Scheme.extras.bts_allocated;
          quarantine = s.Scheme.extras.quarantine_bytes;
        }
    | exception App_crash msg -> Crashed msg
    | exception Vmem.Enclave_oom _ -> Crashed "enclave out of memory"
    | exception Violation v -> Crashed (Fmt.str "%a" pp_violation v)
  in
  { scheme; workload = w.Sb_workloads.Registry.name; n; threads; env; outcome }

let metrics_exn r =
  match r.outcome with
  | Completed m -> m
  | Crashed msg -> failwith (r.workload ^ "/" ^ r.scheme ^ " crashed: " ^ msg)

(** Performance overhead of [r] relative to baseline cycles (1.0 = equal). *)
let perf_ratio ~baseline r =
  match r.outcome with
  | Crashed _ -> None
  | Completed m -> Some (float_of_int m.cycles /. float_of_int (max 1 baseline.cycles))

let mem_ratio ~baseline r =
  match r.outcome with
  | Crashed _ -> None
  | Completed m -> Some (float_of_int m.peak_vm /. float_of_int (max 1 baseline.peak_vm))

(* ---------- table formatting ---------- *)

let pp_ratio ppf = function
  | None -> Fmt.string ppf "   CRASH"
  | Some r -> Fmt.pf ppf "%7.2fx" r

let pp_cell_bytes ppf = function
  | None -> Fmt.string ppf "   CRASH"
  | Some b -> Fmt.pf ppf "%8s" (Fmt.str "%a" Sb_machine.Util.pp_bytes b)

(** Print a normalized table: one row per workload, one column per
    scheme, each cell a ratio to the native baseline. *)
let print_ratio_table ~title ~rows ~columns ~cell () =
  Fmt.pr "@.%s@." title;
  Fmt.pr "%-18s" "";
  List.iter (fun c -> Fmt.pr "%10s" c) columns;
  Fmt.pr "@.";
  List.iter
    (fun row ->
       Fmt.pr "%-18s" row;
       List.iter (fun col -> Fmt.pr "  %a" pp_ratio (cell ~row ~col)) columns;
       Fmt.pr "@.")
    rows

(** Geometric mean over the defined cells of a column. *)
let gmean_column ~rows ~cell ~col =
  let vals = List.filter_map (fun row -> cell ~row ~col) rows in
  if vals = [] then None else Some (Sb_machine.Util.geomean vals)
