lib/harness/harness.ml: Fmt List Option Printf Sb_asan Sb_baggy Sb_machine Sb_mpx Sb_protection Sb_sgx Sb_vmem Sb_workloads Sgxbounds
