lib/scone/scone.mli: Sb_protection
