lib/scone/scone.ml: Buffer Hashtbl Printf Sb_machine Sb_protection Sb_sgx Sb_vmem String
