module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Config = Sb_machine.Config

type cell = {
  workload : string;
  scheme : string;
  env : Config.env;
  threads : int;
  n : int option;
}

type experiment = {
  name : string;
  description : string;
  cells : cell list;
  baseline_scheme : string;
}

type measurement = {
  cell : cell;
  outcome : Harness.outcome;
}

type normalized_row = {
  row_workload : string;
  row_scheme : string;
  perf_x : float option;
  mem_x : float option;
  llc_miss_x : float option;
  epc_fault_x : float option;
}

let matrix ~name ~description ~baseline ~workloads ~schemes
    ?(envs = [ Config.Inside_enclave ]) ?(threads = [ 1 ]) ?(sizes = [ None ]) () =
  let cells =
    List.concat_map
      (fun workload ->
         List.concat_map
           (fun scheme ->
              List.concat_map
                (fun env ->
                   List.concat_map
                     (fun t -> List.map (fun n -> { workload; scheme; env; threads = t; n }) sizes)
                     threads)
                envs)
           schemes)
      workloads
  in
  (* the baseline must be part of the matrix or normalization is undefined *)
  if not (List.mem baseline schemes) then invalid_arg "Fex.matrix: baseline not in schemes";
  { name; description; cells; baseline_scheme = baseline }

let run_cell c =
  let w = Registry.find c.workload in
  let r = Harness.run_one ~env:c.env ~threads:c.threads ?n:c.n ~scheme:c.scheme w in
  { cell = c; outcome = r.Harness.outcome }

let run e = List.map run_cell e.cells

let check_deterministic ?(repetitions = 3) e =
  match e.cells with
  | [] -> 0
  | c :: _ ->
    let snapshot () =
      match (run_cell c).outcome with
      | Harness.Completed m -> Some (m.Harness.cycles, m.Harness.peak_vm, m.Harness.llc_misses)
      | Harness.Crashed msg -> Some (String.length msg, 0, 0)
    in
    let first = snapshot () in
    for i = 2 to repetitions do
      if snapshot () <> first then
        failwith (Printf.sprintf "Fex: repetition %d diverged for %s/%s" i c.workload c.scheme)
    done;
    repetitions

let same_config a b = a.env = b.env && a.threads = b.threads && a.n = b.n

let normalize e ms =
  let baseline_of c =
    List.find_opt
      (fun m ->
         m.cell.workload = c.workload
         && m.cell.scheme = e.baseline_scheme
         && same_config m.cell c)
      ms
  in
  List.filter_map
    (fun m ->
       if m.cell.scheme = e.baseline_scheme then None
       else
         match baseline_of m.cell with
         | None | Some { outcome = Harness.Crashed _; _ } -> None
         | Some { outcome = Harness.Completed b; _ } ->
           let row =
             match m.outcome with
             | Harness.Crashed _ ->
               {
                 row_workload = m.cell.workload;
                 row_scheme = m.cell.scheme;
                 perf_x = None;
                 mem_x = None;
                 llc_miss_x = None;
                 epc_fault_x = None;
               }
             | Harness.Completed v ->
               let ratio num den = float_of_int num /. float_of_int (max 1 den) in
               {
                 row_workload = m.cell.workload;
                 row_scheme = m.cell.scheme;
                 perf_x = Some (ratio v.Harness.cycles b.Harness.cycles);
                 mem_x = Some (ratio v.Harness.peak_vm b.Harness.peak_vm);
                 llc_miss_x = Some (ratio v.Harness.llc_misses b.Harness.llc_misses);
                 epc_fault_x = Some (ratio v.Harness.epc_faults b.Harness.epc_faults);
               }
           in
           Some row)
    ms

let gmeans rows =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
       match r.perf_x with
       | Some x ->
         let l = Option.value (Hashtbl.find_opt tbl r.row_scheme) ~default:[] in
         Hashtbl.replace tbl r.row_scheme (x :: l)
       | None -> ())
    rows;
  Hashtbl.fold (fun s xs acc -> (s, Sb_machine.Util.geomean xs) :: acc) tbl []
  |> List.sort compare

let cellf = function None -> "-" | Some x -> Printf.sprintf "%.4f" x

let to_tsv rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "workload\tscheme\tperf_x\tmem_x\tllc_miss_x\tepc_fault_x\n";
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%s\t%s\t%s\t%s\t%s\t%s\n" r.row_workload r.row_scheme
            (cellf r.perf_x) (cellf r.mem_x) (cellf r.llc_miss_x) (cellf r.epc_fault_x)))
    rows;
  Buffer.contents b

let gnuplot_script e ~data_file =
  String.concat "\n"
    [
      Printf.sprintf "# %s — %s" e.name e.description;
      "set style data histograms";
      "set style histogram clustered gap 1";
      "set style fill solid 0.8 border -1";
      "set ylabel 'overhead (x over " ^ e.baseline_scheme ^ ")'";
      "set xtics rotate by -35";
      "set key top left";
      "set grid ytics";
      Printf.sprintf "set title '%s'" e.description;
      Printf.sprintf
        "plot '%s' using 3:xtic(1) title columnheader(2) # one series per scheme: \
         pre-filter rows by scheme or use an every clause"
        data_file;
      "";
    ]

let write_results ~dir e rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tsv_path = Filename.concat dir (e.name ^ ".tsv") in
  let gp_path = Filename.concat dir (e.name ^ ".gp") in
  let write path contents =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
  in
  write tsv_path (to_tsv rows);
  write gp_path (gnuplot_script e ~data_file:(Filename.basename tsv_path));
  tsv_path
