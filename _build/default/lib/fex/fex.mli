(** Fex-style evaluation framework (the paper runs all experiments with
    Fex [Oleksenko et al., DSN'17]: declarative experiment matrices,
    repeated runs, normalized results, machine-readable output).

    An {!experiment} is a matrix of (workload × scheme × environment ×
    threads × input size). {!run} executes every cell on a fresh machine,
    {!normalize} folds the raw cells into baseline-relative rows, and the
    writers emit TSV (plot-ready, one file per experiment) and gnuplot
    scripts so each paper figure can be redrawn outside the terminal.

    The simulator is deterministic, so [repetitions] exists for API
    compatibility with the original workflow (variance is exactly zero);
    a {!check_deterministic} helper asserts that property instead of
    averaging noise away. *)

type cell = {
  workload : string;
  scheme : string;
  env : Sb_machine.Config.env;
  threads : int;
  n : int option;            (** input-size override *)
}

type experiment = {
  name : string;
  description : string;
  cells : cell list;
  baseline_scheme : string;  (** rows are normalized against this scheme *)
}

type measurement = {
  cell : cell;
  outcome : Sb_harness.Harness.outcome;
}

type normalized_row = {
  row_workload : string;
  row_scheme : string;
  perf_x : float option;     (** None = crashed *)
  mem_x : float option;
  llc_miss_x : float option;
  epc_fault_x : float option;
}

(** Build the full cartesian matrix for an experiment. *)
val matrix :
  name:string -> description:string -> baseline:string ->
  workloads:string list -> schemes:string list ->
  ?envs:Sb_machine.Config.env list -> ?threads:int list ->
  ?sizes:int option list -> unit -> experiment

(** Execute every cell (each on a fresh simulated machine). *)
val run : experiment -> measurement list

(** Re-run a sample cell [repetitions] times and verify bit-identical
    results; returns the number of repetitions checked.
    @raise Failure if any repetition diverges. *)
val check_deterministic : ?repetitions:int -> experiment -> int

(** Fold measurements into baseline-normalized rows (per workload ×
    non-baseline scheme, within the same env/threads/size). *)
val normalize : experiment -> measurement list -> normalized_row list

(** Geometric means of the defined [perf_x] per scheme. *)
val gmeans : normalized_row list -> (string * float) list

(** Render rows as TSV: header then one line per row ("-" = crash). *)
val to_tsv : normalized_row list -> string

(** A gnuplot script that plots the TSV written next to it as a grouped
    bar chart, one bar group per workload. *)
val gnuplot_script : experiment -> data_file:string -> string

(** Write [experiment.name].tsv and [experiment.name].gp under [dir]
    (created if missing); returns the TSV path. *)
val write_results : dir:string -> experiment -> normalized_row list -> string
