lib/fex/fex.ml: Buffer Filename Fun Hashtbl List Option Printf Sb_harness Sb_machine Sb_workloads String Sys
