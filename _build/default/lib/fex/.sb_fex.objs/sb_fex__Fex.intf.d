lib/fex/fex.mli: Sb_harness Sb_machine
