(** Metadata-management API (§4.3, Table 2).

    The SGXBounds memory layout reserves the object's metadata area right
    after the object: the mandatory 4-byte lower bound first, then one
    slot per registered plugin. Plugins receive the three hooks of the
    paper's Table 2 and may read/write their slot through the memory
    system, so metadata traffic is costed like any other access.

    The bundled {!double_free_guard} reproduces the paper's example of
    probabilistic double-free protection via a magic number. *)

type hooks = {
  (* on_create(objbase, objsize, objtype) *)
  on_create : ms:Sb_sgx.Memsys.t -> objbase:int -> objsize:int -> meta_addr:int -> unit;
  (* on_access(address, size, metadata, accesstype) *)
  on_access :
    ms:Sb_sgx.Memsys.t -> addr:int -> size:int -> meta_addr:int ->
    access:Sb_protection.Types.access -> unit;
  (* on_delete(metadata) — heap objects only *)
  on_delete : ms:Sb_sgx.Memsys.t -> meta_addr:int -> unit;
}

type plugin = {
  name : string;
  slot_bytes : int;
  hooks : hooks;
}

(** A plugin with empty hooks to build on. *)
val no_hooks : hooks

(** Detects double frees by stamping a magic number at creation and
    clearing it at deletion; a second delete sees the cleared slot and
    raises {!Sb_protection.Types.Violation}. *)
val double_free_guard : plugin

(** Records a 4-byte allocation-site id, readable for debugging — the
    paper's "where does this out-of-bounds access originate" example. *)
val origin_tracker : site:int -> plugin
