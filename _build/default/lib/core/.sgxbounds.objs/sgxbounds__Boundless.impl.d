lib/core/boundless.ml: Bytes Char Hashtbl Sb_machine
