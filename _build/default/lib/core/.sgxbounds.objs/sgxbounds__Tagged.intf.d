lib/core/tagged.mli:
