lib/core/meta.mli: Sb_protection Sb_sgx
