lib/core/meta.ml: Sb_protection Sb_sgx
