lib/core/sgxbounds.ml: Boundless List Meta Sb_alloc Sb_protection Sb_sgx Sb_vmem Tagged Tagged_wide
