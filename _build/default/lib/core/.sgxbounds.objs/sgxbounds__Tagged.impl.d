lib/core/tagged.ml: Sb_vmem
