lib/core/boundless.mli:
