lib/core/tagged_wide.ml: Sb_machine Sb_vmem
