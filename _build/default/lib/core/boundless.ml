type chunk = {
  data : Bytes.t;
  mutable tick : int;  (* last-use stamp for LRU eviction *)
}

type t = {
  chunk_bytes : int;
  max_chunks : int;
  table : (int, chunk) Hashtbl.t;  (* chunk base -> chunk *)
  mutable clock : int;
  mutable evictions : int;
}

let create ?(chunk_bytes = 1024) ?(capacity_bytes = 1024 * 1024) () =
  assert (Sb_machine.Util.is_pow2 chunk_bytes);
  {
    chunk_bytes;
    max_chunks = max 1 (capacity_bytes / chunk_bytes);
    table = Hashtbl.create 64;
    clock = 0;
    evictions = 0;
  }

let chunk_base t addr = addr land lnot (t.chunk_bytes - 1)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun base c ->
       match !victim with
       | Some (_, best) when best.tick <= c.tick -> ()
       | _ -> victim := Some (base, c))
    t.table;
  match !victim with
  | Some (base, _) ->
    Hashtbl.remove t.table base;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_create t addr =
  let base = chunk_base t addr in
  match Hashtbl.find_opt t.table base with
  | Some c ->
    c.tick <- tick t;
    c
  | None ->
    if Hashtbl.length t.table >= t.max_chunks then evict_lru t;
    let c = { data = Bytes.make t.chunk_bytes '\000'; tick = tick t } in
    Hashtbl.replace t.table base c;
    c

let read t ~addr ~width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    let a = addr + i in
    let base = chunk_base t a in
    let byte =
      match Hashtbl.find_opt t.table base with
      | None -> 0  (* failure-oblivious: fabricate zeros *)
      | Some c ->
        c.tick <- tick t;
        Char.code (Bytes.get c.data (a - base))
    in
    v := (!v lsl 8) lor byte
  done;
  !v

let write t ~addr ~width v =
  for i = 0 to width - 1 do
    let a = addr + i in
    let c = find_or_create t a in
    Bytes.set c.data (a - chunk_base t a) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let chunks t = Hashtbl.length t.table
let evictions t = t.evictions
