(** Tagged-pointer encoding (the paper's Figure 5).

    A 64-bit pointer word holds the address in its low half and the
    referent object's upper bound (which doubles as the address of the
    object's metadata area) in its high half. In the simulation the word
    is one OCaml [int] and the halves are {!Sb_vmem.Vmem.addr_bits} = 31
    bits wide; the mechanism — and crucially the *atomicity* of updating
    pointer and bound together (§4.1) — is identical.

    All functions are pure bit manipulation; the caller charges the ALU
    cost. *)

val shift : int
val mask : int

(** [make ~addr ~ub] builds the tagged word [(ub << shift) | addr].
    The paper's [specify_bounds] without the LB store. *)
val make : addr:int -> ub:int -> int

(** [extract_p]: the low half — the raw pointer. *)
val addr_of : int -> int

(** [extract_UB]: the high half — the upper bound / metadata address. *)
val ub_of : int -> int

(** [with_addr t a] replaces the address half, keeping the tag: this is
    the instrumented pointer arithmetic of §3.2 — an overflowing [a]
    cannot corrupt the upper bound. *)
val with_addr : int -> int -> int

(** True if the word carries no tag (e.g. NULL or a foreign integer). *)
val untagged : int -> bool
