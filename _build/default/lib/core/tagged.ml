let shift = Sb_vmem.Vmem.addr_bits
let mask = (1 lsl shift) - 1

let make ~addr ~ub = (ub lsl shift) lor (addr land mask)
let addr_of t = t land mask
let ub_of t = (t lsr shift) land mask
let with_addr t a = (t land lnot mask) lor (a land mask)
let untagged t = t lsr shift = 0
