(** Boundless memory blocks (§4.2): failure-oblivious overlay storage.

    When boundless mode is on, a detected out-of-bounds access is not
    fatal: writes are redirected to an overlay area keyed by the
    offending address, reads return the overlay contents or zeros. The
    overlay is a bounded LRU cache of on-demand chunks, so an attack
    spanning gigabytes cannot exhaust memory — evicting the least
    recently used chunk instead. *)

type t

(** [create ~chunk_bytes ~capacity_bytes ()] — paper defaults: 1 KiB
    chunks, 1 MiB total. *)
val create : ?chunk_bytes:int -> ?capacity_bytes:int -> unit -> t

(** Overlay read at (simulated) out-of-bounds address [addr]; zeros when
    nothing was ever written there (failure-oblivious fallback). *)
val read : t -> addr:int -> width:int -> int

(** Overlay write; allocates (or LRU-recycles) the covering chunk. *)
val write : t -> addr:int -> width:int -> int -> unit

(** Number of chunks currently allocated. *)
val chunks : t -> int

(** Chunks evicted so far. *)
val evictions : t -> int
