(** The §8 "EPC Size" refinement: tagged pointers for address spaces
    wider than half the word.

    SGX v1 architecturally allows 36-bit enclave address spaces, which
    would leave only 28 bits for the upper bound in a 64-bit word. The
    paper's fix: "SGXBounds could be refined to allow 36-bit pointers,
    hinged on the correct alignment of newly allocated objects" — if
    every object (and thus every metadata area) is 8-byte aligned, the
    upper bound's low 3 bits are always zero and [UB >> 3] fits the
    shrunken tag field.

    This module implements that codec generically: addresses span the
    full simulated space, the tag field is [Sb_vmem.Vmem.addr_bits - 3]
    bits wide, and upper bounds must be 8-byte aligned (which the
    allocator guarantees by padding the object + footer to 8 bytes).
    Properties mirror {!Tagged}: round-trips are exact for aligned
    bounds, and pointer arithmetic cannot touch the tag. *)

let align = 8
let shift = Sb_vmem.Vmem.addr_bits
let mask = (1 lsl shift) - 1

(** [make ~addr ~ub] — [ub] must be [align]-aligned.
    @raise Invalid_argument on a misaligned upper bound. *)
let make ~addr ~ub =
  if ub land (align - 1) <> 0 then invalid_arg "Tagged_wide.make: unaligned upper bound";
  ((ub lsr 3) lsl shift) lor (addr land mask)

let addr_of t = t land mask
let ub_of t = (t lsr shift) lsl 3
let with_addr t a = (t land lnot mask) lor (a land mask)
let untagged t = t lsr shift = 0

(** Round an upper bound up to the codec's alignment (what the §8
    refinement asks of the allocator). *)
let align_ub ub = Sb_machine.Util.align_up ub align
