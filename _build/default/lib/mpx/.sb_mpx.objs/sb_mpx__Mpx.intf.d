lib/mpx/mpx.mli: Sb_protection Sb_sgx
