(** Intel MPX model (paper §2.2/§5.2): per-pointer bounds in registers
    (bndmk/bndcl/bndcu), spilled and filled through a two-level Bounds
    Directory → Bounds Table structure in *simulated memory* (tables are
    allocated on demand at 4x the address range they cover and can
    exhaust the enclave — the paper's Figure 1/7/11 crashes), bndldx
    value-mismatch semantics (INIT bounds for pointers written by
    uninstrumented code — and for racy pointer updates, §4.1), narrowing
    disabled, and weak libc wrappers. *)

(** Build an MPX-hardened execution environment on a machine.
    @raise Sb_protection.Types.App_crash when bounds-table allocation
    exhausts enclave memory at run time. *)
val make : Sb_sgx.Memsys.t -> Sb_protection.Scheme.t
