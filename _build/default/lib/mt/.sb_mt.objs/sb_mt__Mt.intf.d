lib/mt/mt.mli: Sb_sgx
