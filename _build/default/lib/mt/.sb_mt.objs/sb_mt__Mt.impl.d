lib/mt/mt.ml: Array Effect Fun Sb_machine Sb_sgx
