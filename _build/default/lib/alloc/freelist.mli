(** The enclave heap: a size-class free-list allocator.

    Stands in for the dlmalloc inside SCONE's libc. Properties the
    evaluation depends on:
    - bump placement inside segments → adjacent allocations are adjacent
      in memory (heap-overflow attacks corrupt the next object);
    - 16-byte chunk headers written to simulated memory → allocator
      traffic is visible to the cache/EPC model;
    - prompt reuse through exact-fit free lists → the native baseline
      keeps a small footprint even under churn (the paper's swaptions),
      so AddressSanitizer's quarantine blow-up shows against it.

    Payload addresses are 16-byte aligned. *)

type t

val create : Sb_sgx.Memsys.t -> t

(** [alloc t size] returns the payload address of a fresh chunk of at
    least [size] bytes. Charges allocator cycles and header traffic.
    @raise Sb_vmem.Vmem.Enclave_oom when the heap cannot grow. *)
val alloc : t -> int -> int

(** Size class actually reserved for the payload at [addr] (>= requested). *)
val chunk_size : t -> int -> int

(** Return a chunk to its size-class free list.
    @raise Invalid_argument on a pointer not live in this heap (double
    free or wild free). *)
val free : t -> int -> unit

(** [is_live t addr] — is [addr] the payload address of an allocated
    chunk? *)
val is_live : t -> int -> bool

(** Live payload bytes currently allocated. *)
val live_bytes : t -> int

(** Number of live chunks. *)
val live_chunks : t -> int

(** Total bytes ever allocated (cumulative). *)
val total_allocated : t -> int
