module Memsys = Sb_sgx.Memsys
module Util = Sb_machine.Util

let min_order = 4 (* 16-byte minimum block *)

type t = {
  ms : Memsys.t;
  base : int;
  max_order : int;
  free : int list ref array;          (* per order, block offsets *)
  live : (int, int) Hashtbl.t;        (* offset -> order *)
  (* Orders of *free* blocks so merge can recognise a buddy. *)
  free_set : (int, int) Hashtbl.t;    (* offset -> order *)
  mutable live_bytes : int;
}

let create ms ~region_bytes =
  let region = Util.next_pow2 region_bytes in
  let base = Sb_vmem.Vmem.map (Memsys.vmem ms) ~len:region ~perm:Sb_vmem.Vmem.Read_write () in
  let max_order = Util.log2_floor region in
  let free = Array.init (max_order + 1) (fun _ -> ref []) in
  let t =
    { ms; base; max_order; free; live = Hashtbl.create 1024;
      free_set = Hashtbl.create 1024; live_bytes = 0 }
  in
  t.free.(max_order) := [ 0 ];
  Hashtbl.replace t.free_set 0 max_order;
  t

let order_of_size size = max min_order (Util.log2_floor (Util.next_pow2 size))

let rec take_block t order =
  if order > t.max_order then
    raise
      (Sb_vmem.Vmem.Enclave_oom
         { requested = 1 lsl order;
           reserved = t.live_bytes;
           limit = 1 lsl t.max_order })
  else
    match !(t.free.(order)) with
    | off :: rest ->
      t.free.(order) := rest;
      Hashtbl.remove t.free_set off;
      off
    | [] ->
      (* Split a larger block; the upper half goes back on the free list. *)
      let off = take_block t (order + 1) in
      let buddy = off + (1 lsl order) in
      t.free.(order) := buddy :: !(t.free.(order));
      Hashtbl.replace t.free_set buddy order;
      off

let alloc t size =
  if size <= 0 then invalid_arg "Buddy.alloc: size <= 0";
  Memsys.charge_alu t.ms 45;
  let order = order_of_size size in
  let off = take_block t order in
  Hashtbl.replace t.live off order;
  t.live_bytes <- t.live_bytes + (1 lsl order);
  t.base + off

let rec insert_free t off order =
  if order < t.max_order then begin
    let buddy = off lxor (1 lsl order) in
    match Hashtbl.find_opt t.free_set buddy with
    | Some o when o = order ->
      (* Merge with the buddy and promote. *)
      Hashtbl.remove t.free_set buddy;
      t.free.(order) := List.filter (fun x -> x <> buddy) !(t.free.(order));
      insert_free t (min off buddy) (order + 1)
    | _ ->
      t.free.(order) := off :: !(t.free.(order));
      Hashtbl.replace t.free_set off order
  end
  else begin
    t.free.(order) := off :: !(t.free.(order));
    Hashtbl.replace t.free_set off order
  end

let free t addr =
  let off = addr - t.base in
  match Hashtbl.find_opt t.live off with
  | None -> invalid_arg "Buddy.free: not a live block"
  | Some order ->
    Memsys.charge_alu t.ms 30;
    Hashtbl.remove t.live off;
    t.live_bytes <- t.live_bytes - (1 lsl order);
    insert_free t off order

let block_size t addr =
  match Hashtbl.find_opt t.live (addr - t.base) with
  | Some order -> 1 lsl order
  | None -> invalid_arg "Buddy.block_size: not a live block"

let base_of t addr =
  let off = addr - t.base in
  if off < 0 || off >= 1 lsl t.max_order then None
  else
    (* Scan orders from small to large; a live block is aligned to its
       size, so masking the offset finds the candidate base. *)
    let rec go order =
      if order > t.max_order then None
      else
        let cand = Util.align_down off (1 lsl order) in
        match Hashtbl.find_opt t.live cand with
        | Some o when o = order -> Some (t.base + cand)
        | _ -> go (order + 1)
    in
    go min_order

let is_live t addr = Hashtbl.mem t.live (addr - t.base)
let live_bytes t = t.live_bytes
