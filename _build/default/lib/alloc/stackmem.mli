(** A downward-growing call stack in simulated memory.

    Stack frames hold the stack-allocated buffers that RIPE-style attacks
    overflow; the word below a frame's locals models the saved return
    address / adjacent function pointer that stack-smashing targets. *)

type t

(** [create ms ~size ~tid] maps a [size]-byte stack. One per simulated
    thread. *)
val create : Sb_sgx.Memsys.t -> size:int -> t

(** Open a new frame; returns a token for [pop_frame]. *)
val push_frame : t -> int

(** Allocate [size] bytes of locals in the current frame (grows down, so
    later allocations sit at *lower* addresses — a buffer overflow with a
    positive stride runs toward earlier locals and the saved return
    address, like on x86). Returns the buffer's base address. *)
val alloc : t -> ?align:int -> int -> int

(** Close the current frame, releasing everything allocated since the
    matching [push_frame]. *)
val pop_frame : t -> int -> unit

val sp : t -> int

(** Highest address of the stack mapping (the stack base). *)
val base : t -> int
