module Memsys = Sb_sgx.Memsys
module Util = Sb_machine.Util

let segment = 64 * 1024

type t = {
  ms : Memsys.t;
  mutable cur : int;
  mutable seg_end : int;
  mutable used : int;
}

let create ms () = { ms; cur = 0; seg_end = 0; used = 0 }

let alloc t ?(align = 16) size =
  if size <= 0 then invalid_arg "Bump.alloc: size <= 0";
  let cur = Util.align_up t.cur align in
  if cur + size > t.seg_end then begin
    let len = max segment (Util.align_up size Sb_vmem.Vmem.page_size) in
    let addr = Sb_vmem.Vmem.map (Memsys.vmem t.ms) ~len ~perm:Sb_vmem.Vmem.Read_write () in
    t.cur <- addr;
    t.seg_end <- addr + len
  end;
  let addr = Util.align_up t.cur align in
  t.cur <- addr + size;
  t.used <- t.used + size;
  addr

let used_bytes t = t.used
