(** Bump-only region for globals and BSS.

    Global variables are laid out once at program start and never freed;
    SGXBounds pads each with a 4-byte lower-bound footer (the paper's
    struct-wrapping transformation, §3.2). *)

type t

val create : Sb_sgx.Memsys.t -> unit -> t

(** Reserve [size] bytes, [align]-aligned (default 16). Grows the region
    as needed. *)
val alloc : t -> ?align:int -> int -> int

val used_bytes : t -> int
