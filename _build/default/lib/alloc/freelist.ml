module Memsys = Sb_sgx.Memsys
module Util = Sb_machine.Util

let header_size = 16
let min_segment = 64 * 1024

(* Size classes: multiples of 16 up to 512 bytes, then 256-byte
   granularity, then page granularity for large chunks (as dlmalloc's
   mmap path does). Exact-fit reuse within a class keeps footprints
   tight under churn, and large allocations waste at most one page — so
   a 4-byte footer never doubles an allocation. *)
let class_size size =
  if size <= 512 then Util.align_up (max size 16) 16
  else if size <= 65536 then Util.align_up size 256
  else Util.align_up size 4096

type chunk = { size : int }

type t = {
  ms : Memsys.t;
  live : (int, chunk) Hashtbl.t;        (* payload addr -> chunk *)
  freelists : (int, int list ref) Hashtbl.t;  (* class size -> payload addrs *)
  mutable seg_cur : int;                (* bump pointer in current segment *)
  mutable seg_end : int;
  mutable live_bytes : int;
  mutable total_allocated : int;
}

let create ms =
  {
    ms;
    live = Hashtbl.create 4096;
    freelists = Hashtbl.create 64;
    seg_cur = 0;
    seg_end = 0;
    live_bytes = 0;
    total_allocated = 0;
  }

let freelist t cls =
  match Hashtbl.find_opt t.freelists cls with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.freelists cls l;
    l

let grow t need =
  let len = max min_segment (Util.align_up (need + header_size) Sb_vmem.Vmem.page_size) in
  let addr = Sb_vmem.Vmem.map (Memsys.vmem t.ms) ~len ~perm:Sb_vmem.Vmem.Read_write () in
  (* A fresh segment may not be contiguous with the previous one; the
     leftover tail of the old segment is abandoned (real mallocs keep it
     on a free list; the waste is bounded by one class size). *)
  t.seg_cur <- addr;
  t.seg_end <- addr + len

let alloc t size =
  if size <= 0 then invalid_arg "Freelist.alloc: size <= 0";
  let cls = class_size size in
  Memsys.charge_alu t.ms 40;
  let payload =
    let fl = freelist t cls in
    match !fl with
    | addr :: rest ->
      fl := rest;
      addr
    | [] ->
      let need = header_size + cls in
      if t.seg_cur + need > t.seg_end then grow t need;
      let hdr = t.seg_cur in
      t.seg_cur <- t.seg_cur + need;
      hdr + header_size
  in
  (* Write the chunk header (size word) for cache realism. *)
  Memsys.store t.ms ~addr:(payload - header_size) ~width:8 cls;
  Hashtbl.replace t.live payload { size = cls };
  t.live_bytes <- t.live_bytes + cls;
  t.total_allocated <- t.total_allocated + cls;
  payload

let chunk_size t addr =
  match Hashtbl.find_opt t.live addr with
  | Some c -> c.size
  | None -> invalid_arg "Freelist.chunk_size: not a live chunk"

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Freelist.free: not a live chunk"
  | Some c ->
    Memsys.charge_alu t.ms 25;
    Memsys.touch t.ms ~addr:(addr - header_size) ~width:8;
    Hashtbl.remove t.live addr;
    t.live_bytes <- t.live_bytes - c.size;
    let fl = freelist t c.size in
    fl := addr :: !fl

let is_live t addr = Hashtbl.mem t.live addr
let live_bytes t = t.live_bytes
let live_chunks t = Hashtbl.length t.live
let total_allocated t = t.total_allocated
