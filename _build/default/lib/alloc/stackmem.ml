module Memsys = Sb_sgx.Memsys
module Util = Sb_machine.Util

type t = {
  lo : int;
  hi : int;
  mutable sp : int;
}

let create ms ~size =
  let len = Util.align_up size Sb_vmem.Vmem.page_size in
  let lo = Sb_vmem.Vmem.map (Memsys.vmem ms) ~len ~perm:Sb_vmem.Vmem.Read_write () in
  { lo; hi = lo + len; sp = lo + len }

let push_frame t = t.sp

let alloc t ?(align = 16) size =
  if size <= 0 then invalid_arg "Stackmem.alloc: size <= 0";
  let sp = Util.align_down (t.sp - size) align in
  if sp < t.lo then failwith "Stackmem: stack overflow";
  t.sp <- sp;
  sp

let pop_frame t token =
  assert (token >= t.sp && token <= t.hi);
  t.sp <- token

let sp t = t.sp
let base t = t.hi
