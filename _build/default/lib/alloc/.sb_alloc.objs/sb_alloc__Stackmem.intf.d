lib/alloc/stackmem.mli: Sb_sgx
