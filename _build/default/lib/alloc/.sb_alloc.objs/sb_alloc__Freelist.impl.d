lib/alloc/freelist.ml: Hashtbl Sb_machine Sb_sgx Sb_vmem
