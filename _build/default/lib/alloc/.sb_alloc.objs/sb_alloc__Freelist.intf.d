lib/alloc/freelist.mli: Sb_sgx
