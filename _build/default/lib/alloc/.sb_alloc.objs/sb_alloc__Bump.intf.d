lib/alloc/bump.mli: Sb_sgx
