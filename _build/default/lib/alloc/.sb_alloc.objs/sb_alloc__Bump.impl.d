lib/alloc/bump.ml: Sb_machine Sb_sgx Sb_vmem
