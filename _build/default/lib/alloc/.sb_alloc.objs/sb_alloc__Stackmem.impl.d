lib/alloc/stackmem.ml: Sb_machine Sb_sgx Sb_vmem
