lib/alloc/buddy.mli: Sb_sgx
