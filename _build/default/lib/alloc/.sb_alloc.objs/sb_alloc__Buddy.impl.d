lib/alloc/buddy.ml: Array Hashtbl List Sb_machine Sb_sgx Sb_vmem
