(** Buddy allocator: power-of-two blocks with split/merge.

    Substrate for the Baggy Bounds baseline (§2.2 of the paper): Baggy
    Bounds enforces *allocation* bounds by making every object a
    power-of-two-sized, size-aligned block, so base and size are derivable
    from the pointer alone. *)

type t

(** [create ms ~region_bytes] reserves one power-of-two region. *)
val create : Sb_sgx.Memsys.t -> region_bytes:int -> t

(** [alloc t size] returns the block address; the block is
    [block_size t addr] bytes, a power of two >= size, and aligned to its
    own size. @raise Sb_vmem.Vmem.Enclave_oom when the region is full. *)
val alloc : t -> int -> int

val free : t -> int -> unit

(** Power-of-two size of the allocated block at [addr]. *)
val block_size : t -> int -> int

(** Derive the block base from any address inside an allocated block, the
    Baggy/low-fat trick: clear the low [log2 size] bits. *)
val base_of : t -> int -> int option

val is_live : t -> int -> bool
val live_bytes : t -> int
