lib/protection/native.ml: Base Sb_alloc Sb_sgx Scheme Types
