lib/protection/types.ml: Fmt
