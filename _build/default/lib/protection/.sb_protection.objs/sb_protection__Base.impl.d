lib/protection/base.ml: Array Sb_alloc Sb_machine Sb_sgx
