lib/protection/scheme.ml: Sb_sgx Sb_vmem Types
