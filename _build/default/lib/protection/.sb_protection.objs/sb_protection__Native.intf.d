lib/protection/native.mli: Sb_sgx Scheme
