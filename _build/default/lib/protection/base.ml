(** Shared run-time state used by every scheme implementation: the heap,
    the globals region and one stack per simulated thread. *)

module Memsys = Sb_sgx.Memsys

type t = {
  ms : Memsys.t;
  heap : Sb_alloc.Freelist.t;
  globals : Sb_alloc.Bump.t;
  stacks : Sb_alloc.Stackmem.t option array;
  stack_bytes : int;
}

let default_stack_bytes = 256 * 1024

let create ?(stack_bytes = default_stack_bytes) ms =
  {
    ms;
    heap = Sb_alloc.Freelist.create ms;
    globals = Sb_alloc.Bump.create ms ();
    stacks = Array.make (Memsys.cfg ms).Sb_machine.Config.max_threads None;
    stack_bytes;
  }

(** Stack of the currently scheduled thread, created on first use. *)
let stack t =
  let tid = Memsys.current_thread t.ms in
  match t.stacks.(tid) with
  | Some s -> s
  | None ->
    let s = Sb_alloc.Stackmem.create t.ms ~size:t.stack_bytes in
    t.stacks.(tid) <- Some s;
    s
