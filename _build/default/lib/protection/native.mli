(** The uninstrumented baseline ("native SGX" in the paper's plots): no
    checks, no metadata, no protection. Out-of-bounds accesses silently
    read or corrupt whatever is mapped; only the MMU stops accesses to
    unmapped or guard pages. Every experiment normalizes against this. *)

(** Build the baseline execution environment on a machine. *)
val make : Sb_sgx.Memsys.t -> Scheme.t
