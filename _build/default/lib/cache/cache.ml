type t = {
  nsets : int;
  assoc : int;
  (* tags.(set * assoc + way); way 0 is most recently used. -1 = invalid. *)
  tags : int array;
  mutable hits : int;
  mutable misses : int;
}

let create ~size ~assoc ~line_size =
  let nsets = max 1 (size / (assoc * line_size)) in
  (* Power-of-two set count keeps indexing a mask. *)
  let nsets =
    if Sb_machine.Util.is_pow2 nsets then nsets
    else Sb_machine.Util.next_pow2 nsets / 2
  in
  let nsets = max 1 nsets in
  { nsets; assoc; tags = Array.make (nsets * assoc) (-1); hits = 0; misses = 0 }

let access t ~line =
  let set = line land (t.nsets - 1) in
  let base = set * t.assoc in
  let tag = line in
  let rec find way = if way >= t.assoc then -1 else if t.tags.(base + way) = tag then way else find (way + 1) in
  let way = find 0 in
  if way >= 0 then begin
    (* Move to front to record recency. *)
    for i = way downto 1 do
      t.tags.(base + i) <- t.tags.(base + i - 1)
    done;
    t.tags.(base) <- tag;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    for i = t.assoc - 1 downto 1 do
      t.tags.(base + i) <- t.tags.(base + i - 1)
    done;
    t.tags.(base) <- tag;
    t.misses <- t.misses + 1;
    false
  end

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
