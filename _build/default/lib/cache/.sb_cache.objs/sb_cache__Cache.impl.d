lib/cache/cache.ml: Array Sb_machine
