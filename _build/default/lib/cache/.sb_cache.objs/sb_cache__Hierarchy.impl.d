lib/cache/hierarchy.ml: Cache Sb_machine
