lib/cache/cache.mli:
