lib/cache/hierarchy.mli: Sb_machine
