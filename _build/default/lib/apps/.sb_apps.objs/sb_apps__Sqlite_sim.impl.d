lib/apps/sqlite_sim.ml: Sb_machine Sb_protection Sb_sgx Sb_workloads
