lib/apps/memcached_sim.ml: Sb_libc Sb_machine Sb_protection Sb_scone Sb_sgx Sb_vmem Sb_workloads String
