lib/apps/http_sim.ml: Char Sb_libc Sb_machine Sb_protection Sb_scone Sb_sgx Sb_vmem Sb_workloads String
