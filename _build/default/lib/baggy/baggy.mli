(** Baggy Bounds baseline (paper §2.2): buddy allocation makes every
    object a power-of-two, size-aligned block; a compact size table (one
    byte per 16-byte slot) lets checks derive base and bounds from the
    pointer alone. Enforces *allocation* bounds — overflows within the
    block's padding pass. Not publicly available at the time of the
    paper; included as the tagged-scheme reference point for the
    outside-enclave comparison (Figure 12 discussion). *)

(** Build a Baggy-Bounds-hardened execution environment. [region_bytes]
    sizes the buddy region backing heap, globals and stack. *)
val make : ?region_bytes:int -> Sb_sgx.Memsys.t -> Sb_protection.Scheme.t
