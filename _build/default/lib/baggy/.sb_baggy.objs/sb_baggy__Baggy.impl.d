lib/baggy/baggy.ml: List Sb_alloc Sb_machine Sb_protection Sb_sgx Sb_vmem
