lib/baggy/baggy.mli: Sb_protection Sb_sgx
