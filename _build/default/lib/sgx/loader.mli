(** Enclave loader and attestation model.

    Models the SGX machinery the paper relies on around the edges:

    - §5.1: "SGXBounds relies on SGX enclaves (and thus the virtual
      address space) to start from 0x0 ... we set vm.mmap_min_addr to
      zero and modified the Intel SGX driver (5 LOC) to always start the
      enclave at address 0x0." [create] enforces that requirement and
      fails like the unmodified driver would when the low mapping is not
      permitted.
    - SCONE provisions secrets only after *remote attestation*: the
      enclave's initial contents are measured page by page (ECREATE /
      EADD / EEXTEND), finalized (EINIT), and quoted. [measure]/[quote]/
      [verify_quote] model that chain: any tampering with the loaded
      image changes the measurement and verification fails. *)

type t

(** The unmodified driver's failure mode. *)
exception Driver_error of string

(** [create ~mmap_min_addr ~size ms] — ECREATE: reserve the enclave
    range starting at 0x0.
    @raise Driver_error if [mmap_min_addr > 0] (the stock-kernel failure
    mode the paper's 5-line driver patch removes). *)
val create : mmap_min_addr:int -> size:int -> Memsys.t -> t

(** EADD + EEXTEND: copy a page of initial content into the enclave and
    fold it into the measurement. Returns the page's base address. *)
val add_page : t -> content:string -> int

(** EINIT: finalize. No pages can be added afterwards. *)
val init : t -> unit

(** The enclave measurement (MRENCLAVE analogue); stable across loads of
    identical content, different for any content/order change.
    @raise Failure before [init]. *)
val measurement : t -> int64

(** Produce an attestation quote binding [report_data] (e.g. a key-
    exchange nonce) to the measurement. *)
val quote : t -> report_data:string -> string

(** Check a quote against an expected measurement and report data —
    what SCONE's configuration service does before releasing secrets. *)
val verify_quote : expected:int64 -> report_data:string -> string -> bool

(** Enclave base address (always 0 — the tagged-pointer prerequisite). *)
val base : t -> int
