(** The memory system: every simulated access pays its way here.

    Combines the virtual address space ({!Sb_vmem.Vmem}), the cache
    hierarchy ({!Sb_cache.Hierarchy}) and — when running inside an
    enclave — the EPC paging model ({!Epc}). Protection schemes issue
    loads/stores through this module so that both their *data* accesses
    and their *metadata* accesses (shadow memory, bounds tables, lower
    bounds) have first-class cache and paging behaviour, which is the
    mechanism behind all of the paper's performance results.

    Cycle accounting is per-thread (see {!Sb_mt}); elapsed time of a
    parallel region is the max over its threads. *)

type t

type snapshot = {
  cycles : int;        (** elapsed cycles (max over thread clocks) *)
  instrs : int;        (** retired ALU instructions charged *)
  mem_accesses : int;  (** memory operations issued *)
  llc_misses : int;
  epc_faults : int;
}

val create : Sb_machine.Config.t -> t
val cfg : t -> Sb_machine.Config.t
val vmem : t -> Sb_vmem.Vmem.t

(** {2 Costed data accesses} *)

val load : t -> addr:int -> width:int -> int
val store : t -> addr:int -> width:int -> int -> unit

(** Charge the cost of an access without transferring data (used for
    metadata whose value the simulator keeps elsewhere). *)
val touch : t -> addr:int -> width:int -> unit

(** Touch every cache line in [addr, addr+len). *)
val touch_range : t -> addr:int -> len:int -> unit

(** Costed memmove inside simulated memory. *)
val blit : t -> src:int -> dst:int -> len:int -> unit

(** Costed memset. *)
val fill : t -> addr:int -> len:int -> byte:int -> unit

(** Charge [n] simple ALU instructions to the current thread. *)
val charge_alu : t -> int -> unit

(** {2 Thread clocks} *)

val set_thread : t -> int -> unit
val current_thread : t -> int
val get_clock : t -> int -> int
val set_clock : t -> int -> int -> unit

(** {2 Statistics} *)

val snapshot : t -> snapshot

(** Reset clocks, stats, cache contents and EPC residency — a fresh run
    on the same address space contents. *)
val reset : t -> unit

val epc_faults : t -> int
val llc_misses : t -> int
