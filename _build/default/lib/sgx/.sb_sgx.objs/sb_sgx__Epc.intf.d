lib/sgx/epc.mli:
