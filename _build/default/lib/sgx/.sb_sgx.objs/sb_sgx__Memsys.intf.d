lib/sgx/memsys.mli: Sb_machine Sb_vmem
