lib/sgx/loader.ml: Char Int64 Memsys Printf Sb_vmem String
