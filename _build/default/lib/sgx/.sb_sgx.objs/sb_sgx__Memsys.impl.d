lib/sgx/memsys.ml: Array Effect Epc Sb_cache Sb_machine Sb_vmem
