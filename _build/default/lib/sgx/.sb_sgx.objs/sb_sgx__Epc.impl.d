lib/sgx/epc.ml: Array Bytes Hashtbl
