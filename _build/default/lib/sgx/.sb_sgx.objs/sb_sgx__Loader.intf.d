lib/sgx/loader.mli: Memsys
