module Vmem = Sb_vmem.Vmem

type t = {
  ms : Memsys.t;
  size : int;
  mutable next_page : int;
  mutable mr : int64;            (* running measurement *)
  mutable initialized : bool;
}

(* FNV-1a over bytes, mixed with a tag per measured record: a stand-in
   for the SHA-256 MRENCLAVE chain. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let mix h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

let mix_string h s = String.fold_left (fun h c -> mix h (Char.code c)) h s

let mix_int h v =
  let rec go h i = if i >= 8 then h else go (mix h (v lsr (8 * i))) (i + 1) in
  go h 0

exception Driver_error of string

let create ~mmap_min_addr ~size ms =
  if mmap_min_addr > 0 then
    raise
      (Driver_error
         "cannot place the enclave at 0x0 (vm.mmap_min_addr > 0); apply the \
          paper's 5-line driver patch");
  (* ECREATE: the enclave range starts at address 0. Page 0 stays a guard
     (NULL still faults); content pages start at page 1. *)
  let vm = Memsys.vmem ms in
  ignore (Vmem.map vm ~addr:0 ~len:Vmem.page_size ~perm:Vmem.Guard ());
  {
    ms;
    size;
    next_page = 1;
    mr = mix_int fnv_basis size;
    initialized = false;
  }

let base _ = 0

let add_page t ~content =
  if t.initialized then failwith "Loader.add_page: enclave already initialized";
  if String.length content > Vmem.page_size then invalid_arg "Loader.add_page: content too big";
  let addr = t.next_page * Vmem.page_size in
  if addr + Vmem.page_size > t.size then
    raise (Sb_vmem.Vmem.Enclave_oom { requested = Vmem.page_size; reserved = addr; limit = t.size });
  let vm = Memsys.vmem t.ms in
  ignore (Vmem.map vm ~addr ~len:Vmem.page_size ~perm:Vmem.Read_write ());
  Vmem.write_string vm ~addr content;
  (* EEXTEND: measurement covers the page offset and its contents *)
  t.mr <- mix_string (mix_int t.mr addr) content;
  t.next_page <- t.next_page + 1;
  addr

let init t =
  if t.initialized then failwith "Loader.init: already initialized";
  t.mr <- mix_int t.mr 0xE1A17; (* EINIT seals the chain *)
  t.initialized <- true

let measurement t =
  if not t.initialized then failwith "Loader.measurement: enclave not initialized";
  t.mr

(* A quote is measurement || report-data hash, "signed" by folding in a
   platform key stand-in. *)
let platform_key = 0x5EC5EC5EC5EC5ECL

let quote t ~report_data =
  let m = measurement t in
  let rd = mix_string fnv_basis report_data in
  let sig_ = Int64.logxor (Int64.logxor m rd) platform_key in
  Printf.sprintf "%Lx:%Lx:%Lx" m rd sig_

let verify_quote ~expected ~report_data q =
  match String.split_on_char ':' q with
  | [ m; rd; sig_ ] ->
    (try
       let m = Int64.of_string ("0x" ^ m)
       and rd = Int64.of_string ("0x" ^ rd)
       and sig_ = Int64.of_string ("0x" ^ sig_) in
       m = expected
       && rd = mix_string fnv_basis report_data
       && sig_ = Int64.logxor (Int64.logxor m rd) platform_key
     with Failure _ -> false)
  | _ -> false
