module Config = Sb_machine.Config
module Vmem = Sb_vmem.Vmem
module Hierarchy = Sb_cache.Hierarchy

type snapshot = {
  cycles : int;
  instrs : int;
  mem_accesses : int;
  llc_misses : int;
  epc_faults : int;
}

type t = {
  cfg : Config.t;
  vmem : Vmem.t;
  hier : Hierarchy.t;
  epc : Epc.t option;
  clocks : int array;
  mutable tid : int;
  mutable instrs : int;
  mutable mem_accesses : int;
  mutable yield_countdown : int;
  line_mask : int;
  dram_cost : int;          (* cost of a DRAM access in the current env *)
}


let yield_quantum = 32

let create (cfg : Config.t) =
  let epc =
    match cfg.env with
    | Config.Inside_enclave ->
      Some (Epc.create ~capacity_pages:(max 4 (cfg.epc_bytes / cfg.page_size)))
    | Config.Outside_enclave -> None
  in
  let dram_cost =
    match cfg.env with
    | Config.Inside_enclave -> cfg.costs.dram * (100 + cfg.costs.mee_percent) / 100
    | Config.Outside_enclave -> cfg.costs.dram
  in
  {
    cfg;
    vmem = Vmem.create cfg;
    hier = Hierarchy.create cfg;
    epc;
    clocks = Array.make cfg.max_threads 0;
    tid = 0;
    instrs = 0;
    mem_accesses = 0;
    yield_countdown = yield_quantum;
    line_mask = lnot (cfg.line_size - 1);
    dram_cost;
  }

let cfg t = t.cfg
let vmem t = t.vmem

let maybe_yield t =
  t.yield_countdown <- t.yield_countdown - 1;
  if t.yield_countdown <= 0 then begin
    t.yield_countdown <- yield_quantum;
    if !Sb_machine.Eff.scheduler_active then Effect.perform Sb_machine.Eff.Yield
  end

(* Cost of touching one cache line at [addr]. *)
let line_cost t addr =
  match Hierarchy.access t.hier ~addr with
  | Hierarchy.Dram ->
    let c = t.dram_cost in
    (match t.epc with
     | None -> c
     | Some epc ->
       if Epc.touch epc ~page:(addr lsr 12) then c else c + t.cfg.costs.epc_fault)
  | served -> Hierarchy.hit_cost t.hier served

let touch t ~addr ~width =
  t.mem_accesses <- t.mem_accesses + 1;
  let first = addr land t.line_mask in
  let last = (addr + width - 1) land t.line_mask in
  let cost = if first = last then line_cost t addr else line_cost t addr + line_cost t (addr + width - 1) in
  t.clocks.(t.tid) <- t.clocks.(t.tid) + cost;
  maybe_yield t

let touch_range t ~addr ~len =
  if len > 0 then begin
    let line = t.cfg.line_size in
    let first = addr land t.line_mask in
    let last = (addr + len - 1) land t.line_mask in
    let a = ref first in
    let cost = ref 0 in
    let n = ref 0 in
    while !a <= last do
      cost := !cost + line_cost t !a;
      incr n;
      a := !a + line
    done;
    t.mem_accesses <- t.mem_accesses + !n;
    t.clocks.(t.tid) <- t.clocks.(t.tid) + !cost;
    maybe_yield t
  end

let load t ~addr ~width =
  touch t ~addr ~width;
  Vmem.load t.vmem ~addr ~width

let store t ~addr ~width v =
  touch t ~addr ~width;
  Vmem.store t.vmem ~addr ~width v

let blit t ~src ~dst ~len =
  touch_range t ~addr:src ~len;
  touch_range t ~addr:dst ~len;
  Vmem.blit t.vmem ~src ~dst ~len

let fill t ~addr ~len ~byte =
  touch_range t ~addr ~len;
  Vmem.fill t.vmem ~addr ~len ~byte

let charge_alu t n =
  t.instrs <- t.instrs + n;
  t.clocks.(t.tid) <- t.clocks.(t.tid) + (n * t.cfg.costs.alu)

let set_thread t tid = t.tid <- tid
let current_thread t = t.tid
let get_clock t tid = t.clocks.(tid)
let set_clock t tid v = t.clocks.(tid) <- v

let elapsed t = Array.fold_left max 0 t.clocks

let snapshot t =
  {
    cycles = elapsed t;
    instrs = t.instrs;
    mem_accesses = t.mem_accesses;
    llc_misses = Hierarchy.llc_misses t.hier;
    epc_faults = (match t.epc with None -> 0 | Some e -> Epc.faults e);
  }

let reset t =
  Array.fill t.clocks 0 (Array.length t.clocks) 0;
  t.tid <- 0;
  t.instrs <- 0;
  t.mem_accesses <- 0;
  Hierarchy.flush t.hier;
  Hierarchy.reset_stats t.hier;
  match t.epc with None -> () | Some e -> Epc.clear e

let epc_faults t = match t.epc with None -> 0 | Some e -> Epc.faults e
let llc_misses t = Hierarchy.llc_misses t.hier
