(** RIPE-style runtime intrusion prevention evaluator (§6.6, Table 4).

    The original RIPE fires 850 attack combinations; under the paper's
    SCONE/SGX configuration 16 remain viable (shellcode variants die on
    the int instruction, etc.). This module synthesizes those 16 as the
    cartesian product

      technique  ∈ {direct byte loop, direct unrolled, strcpy, memcpy}
      location   ∈ {stack, heap}
      target     ∈ {adjacent function pointer, in-struct function pointer}

    and runs each under a scheme. Outcomes are decided mechanically by
    each scheme's machinery — nothing is hard-coded:

    - every attack writes *contiguously* from the vulnerable buffer to
      the target (as RIPE's overflows do);
    - heap attacks reach the buffer through a pointer that untrusted
      setup code stored to memory with a plain (uninstrumented) store —
      Intel MPX's bndldx then yields INIT bounds and misses, while the
      SGXBounds tag survives the round trip (§3.2 type casts);
    - libc-based attacks (strcpy/memcpy) overflow inside uninstrumented
      libc: caught by wrappers that check (SGXBounds, ASan interceptors)
      and missed by MPX's weak wrappers;
    - in-struct attacks never leave the object, so object-granularity
      schemes (all three) miss them — the paper's 8/16 ceiling.

    Expected tally (Table 4): native 16/16 succeed; MPX prevents 2/16;
    AddressSanitizer 8/16; SGXBounds 8/16. *)

module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
module Libc = Sb_libc.Simlibc
open Sb_protection.Types

type technique = Direct_loop | Direct_unrolled | Strcpy_libc | Memcpy_libc
type location = Stack | Heap
type target = Adjacent_funcptr | Instruct_funcptr

type attack = {
  technique : technique;
  location : location;
  target : target;
}

type outcome =
  | Succeeded   (** the function pointer now holds the attacker's value *)
  | Prevented   (** the scheme detected the overflow (or contained it) *)
  | Failed      (** attack ran but did not corrupt the target *)

let attacker_value = 0x42424242424242 (* seven NUL-free 'B' bytes *)
let sentinel = 0x00C0FFEE

let all_attacks =
  List.concat_map
    (fun technique ->
       List.concat_map
         (fun location ->
            List.map
              (fun target -> { technique; location; target })
              [ Adjacent_funcptr; Instruct_funcptr ])
         [ Stack; Heap ])
    [ Direct_loop; Direct_unrolled; Strcpy_libc; Memcpy_libc ]

let technique_name = function
  | Direct_loop -> "direct-loop"
  | Direct_unrolled -> "direct-unrolled"
  | Strcpy_libc -> "strcpy"
  | Memcpy_libc -> "memcpy"

let location_name = function Stack -> "stack" | Heap -> "heap"

let target_name = function
  | Adjacent_funcptr -> "adjacent-funcptr"
  | Instruct_funcptr -> "in-struct-funcptr"

let name a =
  Printf.sprintf "%s/%s/%s" (technique_name a.technique) (location_name a.location)
    (target_name a.target)

let buf_bytes = 32

(** Build the vulnerable layout; returns (buffer ptr, raw address of the
    target function pointer, frame token to pop). *)
let setup (s : Scheme.t) a =
  match (a.location, a.target) with
  | Stack, Adjacent_funcptr ->
    let tok = s.Scheme.stack_push () in
    (* the function pointer lives above the buffer (allocated first;
       stacks grow down), so a positive overflow reaches it *)
    let fp = s.Scheme.stack_alloc 8 in
    Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of fp) ~width:8 sentinel;
    let buf = s.Scheme.stack_alloc buf_bytes in
    (buf, s.Scheme.addr_of fp, Some tok)
  | Stack, Instruct_funcptr ->
    let tok = s.Scheme.stack_push () in
    let st = s.Scheme.stack_alloc (buf_bytes + 8) in
    Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of st + buf_bytes) ~width:8 sentinel;
    (st, s.Scheme.addr_of st + buf_bytes, Some tok)
  | Heap, Adjacent_funcptr ->
    let buf = s.Scheme.malloc buf_bytes in
    let fpobj = s.Scheme.malloc 8 in
    Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of fpobj) ~width:8 sentinel;
    (buf, s.Scheme.addr_of fpobj, None)
  | Heap, Instruct_funcptr ->
    let st = s.Scheme.malloc (buf_bytes + 8) in
    Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of st + buf_bytes) ~width:8 sentinel;
    (st, s.Scheme.addr_of st + buf_bytes, None)

(** RIPE's heap attacks reach the vulnerable buffer through attack-setup
    structs in memory. The pointer round-trips through a plain store and
    load — uninstrumented code from the bounds trackers' viewpoint. *)
let launder (s : Scheme.t) p =
  let slot = s.Scheme.malloc 8 in
  Memsys.store s.Scheme.ms ~addr:(s.Scheme.addr_of slot) ~width:8 p.v;
  s.Scheme.load_ptr slot

let run_attack (s : Scheme.t) a =
  let buf, target_addr, tok = setup s a in
  let buf = match a.location with Heap -> launder s buf | Stack -> buf in
  let delta = target_addr - s.Scheme.addr_of buf in
  let result =
    match
      (match a.technique with
       | Direct_loop ->
         (* contiguous byte-wise overflow from buf[0] past the end *)
         for i = 0 to delta + 7 do
           let byte =
             if i >= delta && i < delta + 8 then (attacker_value lsr (8 * (i - delta))) land 0xff
             else 0x41
           in
           s.Scheme.store (s.Scheme.offset buf i) 1 byte
         done
       | Direct_unrolled ->
         (* same overflow with 8-byte stores *)
         let i = ref 0 in
         while !i < delta do
           s.Scheme.store (s.Scheme.offset buf !i) 8 0x41414141414141;
           i := !i + 8
         done;
         s.Scheme.store (s.Scheme.offset buf delta) 8 attacker_value
       | Strcpy_libc ->
         (* attacker-controlled NUL-free source string *)
         let src = s.Scheme.malloc (delta + 16) in
         let vm = Memsys.vmem s.Scheme.ms in
         for i = 0 to delta - 1 do
           Vmem.store vm ~addr:(s.Scheme.addr_of src + i) ~width:1 0x41
         done;
         Vmem.store vm ~addr:(s.Scheme.addr_of src + delta) ~width:8 attacker_value;
         Vmem.store vm ~addr:(s.Scheme.addr_of src + delta + 8) ~width:1 0;
         ignore (Libc.strcpy s ~dst:buf ~src)
       | Memcpy_libc ->
         let src = s.Scheme.malloc (delta + 16) in
         let vm = Memsys.vmem s.Scheme.ms in
         for i = 0 to delta - 1 do
           Vmem.store vm ~addr:(s.Scheme.addr_of src + i) ~width:1 0x41
         done;
         Vmem.store vm ~addr:(s.Scheme.addr_of src + delta) ~width:8 attacker_value;
         Libc.memcpy s ~dst:buf ~src ~len:(delta + 8))
    with
    | () ->
      (* attack code ran to completion: did it take the target? *)
      let v = Vmem.load (Memsys.vmem s.Scheme.ms) ~addr:target_addr ~width:8 in
      if v = attacker_value then Succeeded else Failed
    | exception Violation _ -> Prevented
    | exception Vmem.Fault _ -> Prevented (* e.g. ASan guard behaviour *)
  in
  (match tok with Some t -> (try s.Scheme.stack_pop t with _ -> ()) | None -> ());
  result

(** Run the full 16-attack matrix; returns per-attack outcomes. *)
let run_all (s : Scheme.t) = List.map (fun a -> (a, run_attack s a)) all_attacks

let count_prevented results =
  List.length (List.filter (fun (_, o) -> o = Prevented) results)

let count_succeeded results =
  List.length (List.filter (fun (_, o) -> o = Succeeded) results)
