lib/ripe/ripe.ml: List Printf Sb_libc Sb_protection Sb_sgx Sb_vmem
