lib/ripe/funnel.ml: List Ripe
