(** The RIPE attack-form funnel (§6.6).

    RIPE generates its attacks from a build matrix of attack code ×
    overflow function × buffer location × target code pointer ×
    technique. The paper reports the funnel:

    - RIPE claims **850** working attack forms;
    - on the paper's native testbed only **46** actually succeed
      (shellcode that creates a dummy file, and return-into-libc);
    - rebuilt under SCONE inside SGX, **16** remain: every shellcode
      form dies because SGX disallows the [int] instruction it uses, and
      the forms that depended on the dynamic loader's PLT/GOT layout
      have nothing to aim at in SCONE's static binaries.

    This module reconstructs that funnel from the matrix dimensions and
    per-stage viability predicates. The predicates encode the *reasons*
    (NX, bounded copy functions, [int] under SGX, static linking); their
    exact extents are calibrated to RIPE's published counts — RIPE's own
    build matrix is similarly idiosyncratic. The 16 SGX survivors map
    one-to-one onto the concrete, executable attacks of {!Ripe}. *)

type code =
  | Shellcode          (** injected code (RIPE's dummy-file creator) *)
  | Return_into_libc
  | Rop                (** return-oriented chain *)

type func =
  | F_memcpy | F_strcpy | F_strncpy | F_sprintf | F_snprintf
  | F_strcat | F_strncat | F_sscanf | F_fscanf | F_homebrew

type loc = L_stack | L_heap | L_bss | L_data

type tgt =
  | T_ret              (** saved return address *)
  | T_funcptr_var      (** function-pointer variable adjacent to the buffer *)
  | T_funcptr_param    (** function-pointer parameter *)
  | T_struct_funcptr   (** function pointer inside the overflowed struct *)
  | T_longjmp          (** longjmp buffer *)

type tech = Direct | Indirect

type form = {
  code : code;
  func : func;
  loc : loc;
  tgt : tgt;
  tech : tech;
}

let codes = [ Shellcode; Return_into_libc; Rop ]

let funcs =
  [ F_memcpy; F_strcpy; F_strncpy; F_sprintf; F_snprintf; F_strcat; F_strncat;
    F_sscanf; F_fscanf; F_homebrew ]

let locs = [ L_stack; L_heap; L_bss; L_data ]
let tgts = [ T_ret; T_funcptr_var; T_funcptr_param; T_struct_funcptr; T_longjmp ]
let techs = [ Direct; Indirect ]

let all_forms =
  List.concat_map
    (fun code ->
       List.concat_map
         (fun func ->
            List.concat_map
              (fun loc ->
                 List.concat_map
                   (fun tgt -> List.map (fun tech -> { code; func; loc; tgt; tech }) techs)
                   tgts)
              locs)
         funcs)
    codes

let bounded_func = function
  | F_strncpy | F_snprintf | F_strncat -> true
  | F_memcpy | F_strcpy | F_sprintf | F_strcat | F_sscanf | F_fscanf | F_homebrew -> false

(** Forms RIPE's build matrix emits ("claims to work"): the return
    address only lives on the stack; the bounded copy functions only
    overflow through the direct misuse RIPE codes for them; and RIPE has
    no indirect fscanf ROP variant. *)
let claimed f =
  (match f.tgt with T_ret -> f.loc = L_stack | _ -> true)
  && not (bounded_func f.func && f.tech = Indirect)
  && not (f.code = Rop && f.func = F_fscanf && f.tech = Indirect)

(** Forms that actually succeed on the paper's native testbed (46): the
    shellcode family that writes a dummy file, and return-into-libc;
    everything else is stopped by the stock hardening of the test
    machine (NX, stack protector defaults, layout). *)
let native_viable f =
  claimed f
  &&
  match f.code with
  | Shellcode ->
    f.tech = Direct
    && List.mem f.func [ F_memcpy; F_strcpy; F_sprintf; F_homebrew ]
    && (match (f.loc, f.tgt) with
        | L_stack, (T_ret | T_funcptr_var | T_struct_funcptr) -> true
        | L_heap, (T_funcptr_var | T_struct_funcptr) -> true
        | _ -> false)
  | Return_into_libc ->
    (match f.tech with
     | Direct ->
       List.mem f.func [ F_memcpy; F_strcpy; F_sprintf; F_homebrew ]
       && (match (f.loc, f.tgt) with
           | L_stack, (T_ret | T_funcptr_var | T_struct_funcptr) -> true
           | L_heap, (T_funcptr_var | T_struct_funcptr) -> true
           | _ -> false)
     | Indirect ->
       List.mem f.func [ F_memcpy; F_strcpy ]
       && f.loc = L_stack
       && (f.tgt = T_ret || f.tgt = T_funcptr_var))
  | Rop -> f.tech = Direct && f.loc = L_stack && f.tgt = T_ret
           && List.mem f.func [ F_memcpy; F_homebrew ]

(** Forms that survive the move into SCONE/SGX (16): shellcode dies on
    the [int] instruction; ROP chains and the indirect / return-address
    forms aimed at loader-provided layout that SCONE's static,
    enclave-confined binaries do not have. *)
let sgx_viable f =
  native_viable f
  && f.code = Return_into_libc
  && f.tech = Direct
  && (f.tgt = T_funcptr_var || f.tgt = T_struct_funcptr)

let count p = List.length (List.filter p all_forms)

(** Map an SGX-viable form onto the concrete executable attack of
    {!Ripe} (a bijection onto {!Ripe.all_attacks}). *)
let to_concrete f =
  if not (sgx_viable f) then None
  else
    let technique =
      match f.func with
      | F_memcpy -> Ripe.Memcpy_libc
      | F_strcpy -> Ripe.Strcpy_libc
      | F_homebrew -> Ripe.Direct_loop
      | F_sprintf -> Ripe.Direct_unrolled (* SCONE libc inlines the format copy *)
      | F_strncpy | F_snprintf | F_strcat | F_strncat | F_sscanf | F_fscanf -> assert false
    in
    let location = match f.loc with L_stack -> Ripe.Stack | _ -> Ripe.Heap in
    let target =
      match f.tgt with
      | T_funcptr_var -> Ripe.Adjacent_funcptr
      | T_struct_funcptr -> Ripe.Instruct_funcptr
      | T_ret | T_funcptr_param | T_longjmp -> assert false
    in
    Some { Ripe.technique; location; target }
