lib/libc/simlibc.ml: Buffer Printf Sb_protection Sb_sgx Sb_vmem String
