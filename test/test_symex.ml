(** The symbolic interface auditor over the TeeRex buggy-handler
    corpus.

    Pins, per vulnerability class: the unprotected run is flagged with
    the class's signature finding kind, and the SGXBounds run
    neutralizes it (violation trapped, or nothing left to find). Plus
    the golden interface matrix — bit-identical across all three
    memory engines and any [--jobs] fan-out, and equal to the committed
    `results/interface_matrix.tsv` (check.sh regenerates and compares
    the file itself) — the audit-subset soundness pin measured across
    *independent* runs, the shipped service handlers staying clean, and
    the fuzz-seed export replaying clean through the differential
    oracle. *)

module Symex = Sb_analysis.Symex
module Audit = Sb_analysis.Audit
module Finding = Sb_analysis.Finding
module Handlers = Sb_apps.Handlers
module Interface_audit = Sb_service.Interface_audit
module Fuzz = Sb_fuzz.Fuzz
module Harness = Sb_harness.Harness
module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Fastpath = Sb_machine.Fastpath
open Sb_protection.Types

let variant name =
  match Handlers.find_variant name with
  | Some v -> v
  | None -> Alcotest.failf "no corpus variant %s" name

let cell ~scheme name = Symex.run_variant ~scheme (variant name)

(* -- per-class pins: native flagged with the signature kind -- *)

let test_native_class (name, kind) () =
  let c = cell ~scheme:"native" name in
  Alcotest.(check string) (name ^ " native status") "flagged" c.Symex.cc_status;
  Alcotest.(check bool)
    (name ^ " native signature kind " ^ kind)
    true
    (List.mem kind (Symex.cell_kinds c))

(* -- per-class pins: sgxbounds neutralizes -- *)

let test_sgxbounds_class (name, _kind) () =
  let c = cell ~scheme:"sgxbounds" name in
  Alcotest.(check bool)
    (name ^ " sgxbounds neutralized (status=" ^ c.Symex.cc_status ^ ")")
    true
    (c.Symex.cc_status = "trapped" || c.Symex.cc_status = "ok");
  Alcotest.(check bool)
    (name ^ " sgxbounds canary intact")
    false c.Symex.cc_corrupted;
  Alcotest.(check int) (name ^ " sgxbounds wild accesses") 0 c.Symex.cc_wild

let test_good_clean () =
  List.iter
    (fun scheme ->
       let c = cell ~scheme "good" in
       Alcotest.(check string) ("good " ^ scheme) "ok" c.Symex.cc_status;
       Alcotest.(check int)
         ("good " ^ scheme ^ " findings")
         0
         (List.length c.Symex.cc_findings))
    Symex.matrix_schemes

(* -- the golden matrix: engine- and jobs-invariant -- *)

let matrix_under_engine kind jobs =
  Fastpath.with_kind kind (fun () ->
      Symex.matrix_tsv (Symex.corpus_sweep ~jobs ()))

let test_matrix_invariant () =
  let reference = matrix_under_engine Fastpath.Naive 1 in
  List.iter
    (fun (label, kind, jobs) ->
       Alcotest.(check string)
         (Printf.sprintf "matrix identical under %s" label)
         reference
         (matrix_under_engine kind jobs))
    [
      ("fast engine", Fastpath.Fast, 1);
      ("trace engine", Fastpath.Trace, 1);
      ("naive engine, jobs=2", Fastpath.Naive, 2);
    ];
  (* and the Table-4 pins hold on what we just generated *)
  Alcotest.(check (list string))
    "matrix pins" []
    (Symex.verify_matrix (Symex.corpus_sweep ()))

(* -- audit-subset soundness across independent runs: the dynamic
      auditor alone, on the same handler and scheme, finds nothing the
      composed run does not also report -- *)

let audit_only_findings ~scheme v =
  let ms = Memsys.create (Config.default ()) in
  Fun.protect ~finally:(fun () -> Memsys.retire ms) @@ fun () ->
  let s, a = Audit.wrap ~track_races:false (Harness.maker scheme ms) in
  Fun.protect ~finally:Audit.unhook @@ fun () ->
  let req = s.Sb_protection.Scheme.malloc 1024 in
  let resp = s.Sb_protection.Scheme.malloc 1024 in
  let ra = s.Sb_protection.Scheme.addr_of req in
  Memsys.fill ms ~addr:ra ~len:Symex.req_image_len ~byte:0x41;
  List.iter
    (fun (off, value) -> Memsys.store ms ~addr:(ra + off) ~width:4 value)
    v.Handlers.v_fields;
  let h =
    { Handlers.s; req; req_len = Symex.req_image_len; resp; resp_len = 1024;
      note_phase = ignore }
  in
  (try v.Handlers.v_run h with
   | Violation _ | Sb_vmem.Vmem.Fault _ | App_crash _ -> ());
  Audit.findings a

let test_subset_independent_runs () =
  List.iter
    (fun name ->
       let v = variant name in
       List.iter
         (fun scheme ->
            let dyn = audit_only_findings ~scheme v in
            let unified = (cell ~scheme name).Symex.cc_findings in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: audit-only findings ⊆ unified" name scheme)
              true
              (Finding.subset dyn unified))
         [ "native"; "sgxbounds" ])
    [ "good"; "libc-len"; "len-overflow" ]

(* -- within-run subset pin over the whole matrix -- *)

let test_subset_within_runs () =
  List.iter
    (fun c ->
       Alcotest.(check bool)
         (Printf.sprintf "%s/%s subset_ok" c.Symex.cc_class c.Symex.cc_scheme)
         true c.Symex.cc_subset_ok)
    (Symex.corpus_sweep ())

(* -- the shipped service handlers audit clean symbolically -- *)

let test_shipped_clean () =
  List.iter
    (fun c ->
       Alcotest.(check int)
         (Printf.sprintf "%s/%s findings" c.Interface_audit.ic_app
            c.Interface_audit.ic_scheme)
         0 c.Interface_audit.ic_total;
       Alcotest.(check bool)
         (Printf.sprintf "%s/%s completed" c.Interface_audit.ic_app
            c.Interface_audit.ic_scheme)
         true
         (c.Interface_audit.ic_crashed = None);
       Alcotest.(check bool)
         (Printf.sprintf "%s/%s subset_ok" c.Interface_audit.ic_app
            c.Interface_audit.ic_scheme)
         true c.Interface_audit.ic_subset_ok)
    (Interface_audit.sweep ~schemes:[ "native"; "sgxbounds" ] ~requests:4 ())

(* -- symbolic findings round-trip through the fuzz oracle -- *)

let test_seed_traces_replay () =
  let cells = Symex.corpus_sweep ~schemes:[ "native" ] () in
  let seeds = Symex.seed_traces cells in
  Alcotest.(check bool)
    (Printf.sprintf "seed count %d >= 3" (List.length seeds))
    true
    (List.length seeds >= 3);
  List.iteri
    (fun i tr ->
       match Fuzz.check_trace tr with
       | None -> ()
       | Some f -> Alcotest.failf "seed trace %d failed: %a" i Fuzz.pp_failure f)
    (Symex.expand_seeds ~total:16 seeds)

(* -- the symbolic pass's own selftests -- *)

let test_selftests () =
  let sts = Symex.selftests () in
  List.iter
    (fun st ->
       Alcotest.(check bool)
         (st.Symex.sx_name ^ ": " ^ st.Symex.sx_detail)
         true st.Symex.sx_pass)
    sts

let class_cases =
  List.map
    (fun ((name, _) as cls) ->
       Alcotest.test_case (name ^ " flagged on native") `Quick
         (test_native_class cls))
    Symex.signature_kinds
  @ List.map
      (fun ((name, _) as cls) ->
         Alcotest.test_case (name ^ " neutralized by sgxbounds") `Quick
           (test_sgxbounds_class cls))
      Symex.signature_kinds

let suite =
  class_cases
  @ [
      Alcotest.test_case "good handler clean under every scheme" `Quick
        test_good_clean;
      Alcotest.test_case "matrix bit-identical across engines and jobs" `Slow
        test_matrix_invariant;
      Alcotest.test_case "audit subset across independent runs" `Quick
        test_subset_independent_runs;
      Alcotest.test_case "audit subset within every matrix cell" `Quick
        test_subset_within_runs;
      Alcotest.test_case "shipped handlers symbolically clean" `Slow
        test_shipped_clean;
      Alcotest.test_case "symbolic seeds replay clean through fuzz oracle" `Slow
        test_seed_traces_replay;
      Alcotest.test_case "symex selftests" `Slow test_selftests;
    ]
