(** The telemetry subsystem: metrics primitives, the event ring, JSON,
    exporters, and the cycle-attribution invariants of the memory
    system. *)

module Config = Sb_machine.Config
module Vmem = Sb_vmem.Vmem
module Memsys = Sb_sgx.Memsys
module Telemetry = Sb_telemetry.Telemetry
module Metrics = Sb_telemetry.Metrics
module Events = Sb_telemetry.Events
module Json = Sb_telemetry.Json
module Sink = Sb_telemetry.Sink
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---------- metrics primitives ---------- *)

let test_counter () =
  let c = Metrics.Counter.create "c" in
  Alcotest.(check int) "fresh" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:41 c;
  Alcotest.(check int) "incremented" 42 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.value c)

let test_histogram () =
  let h = Metrics.Histogram.create "h" in
  List.iter (Metrics.Histogram.observe h) [ 1; 4; 4; 5; 150; 0 ];
  Alcotest.(check int) "count" 6 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 164 (Metrics.Histogram.sum h);
  Alcotest.(check int) "max" 150 (Metrics.Histogram.max_value h);
  (* buckets: 0,1 -> [0,2); 4,4,5 -> [4,8); 150 -> [128,256) *)
  Alcotest.(check (list (triple int int int)))
    "buckets"
    [ (0, 2, 2); (4, 8, 3); (128, 256, 1) ]
    (Metrics.Histogram.nonzero_buckets h);
  Alcotest.(check bool) "p50 below 8" true (Metrics.Histogram.quantile h 0.5 <= 8);
  Alcotest.(check int) "p100 covers max" 256 (Metrics.Histogram.quantile h 1.0);
  Metrics.Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Metrics.Histogram.count h);
  Alcotest.(check (list (triple int int int))) "reset buckets" []
    (Metrics.Histogram.nonzero_buckets h)

let test_ring_bounded () =
  let r = Events.create ~capacity:4 in
  for i = 1 to 7 do
    Events.push r { Events.dummy with Events.ts = i; name = string_of_int i }
  done;
  Alcotest.(check int) "length capped" 4 (Events.length r);
  Alcotest.(check int) "dropped" 3 (Events.dropped r);
  Alcotest.(check (list string)) "keeps newest, oldest first" [ "4"; "5"; "6"; "7" ]
    (List.map (fun (e : Events.event) -> e.Events.name) (Events.to_list r));
  Events.clear r;
  Alcotest.(check int) "cleared" 0 (Events.length r)

let test_spans () =
  let tel = Telemetry.create () in
  let clock = ref 100 in
  Telemetry.set_clock tel (fun () -> !clock);
  Telemetry.with_span tel "outer" (fun () ->
      clock := 150;
      Telemetry.with_span tel "inner" (fun () -> clock := 175));
  (match Telemetry.events tel with
   | [ inner; outer ] ->
     Alcotest.(check string) "inner name" "inner" inner.Events.name;
     Alcotest.(check int) "inner start" 150 inner.Events.ts;
     (match (inner.Events.ph, outer.Events.ph) with
      | Events.Complete d_in, Events.Complete d_out ->
        Alcotest.(check int) "inner duration" 25 d_in;
        Alcotest.(check int) "outer duration" 75 d_out
      | _ -> Alcotest.fail "expected complete events");
     Alcotest.(check string) "outer name" "outer" outer.Events.name
   | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* span durations land in a histogram *)
  let hs = Telemetry.histograms tel in
  Alcotest.(check bool) "span histogram exists" true
    (List.mem_assoc "span:outer" hs && List.mem_assoc "span:inner" hs)

let test_disabled_hub_records_nothing () =
  let tel = Telemetry.disabled () in
  Telemetry.incr tel "x";
  Telemetry.observe tel "h" 5;
  Telemetry.event tel "ev";
  Telemetry.with_span tel "s" (fun () -> ());
  Alcotest.(check (list (pair string int))) "no counters" [] (Telemetry.counters tel);
  Alcotest.(check int) "no events" 0 (List.length (Telemetry.events tel));
  Alcotest.(check bool) "no histograms" true (Telemetry.histograms tel = [])

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.List [ Json.Str "x\"y\n"; Json.Bool true; Json.Null ]);
        ("c", Json.Obj [ ("nested", Json.Float 1.5) ]);
        ("d", Json.Int (-7));
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  List.iter
    (fun s ->
       match Json.parse s with
       | Ok _ -> Alcotest.failf "accepted malformed %S" s
       | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "12 34"; "" ]

(* ---------- memory-system attribution ---------- *)

let run_metrics ?n ~scheme name =
  let r = Harness.run_one ?n ~scheme (Registry.find name) in
  Harness.metrics_exn r

let test_attribution_sums_to_cycles () =
  (* single-threaded: every cycle belongs to exactly one bucket *)
  List.iter
    (fun scheme ->
       let m = run_metrics ~n:1024 ~scheme "kmeans" in
       Alcotest.(check int)
         (scheme ^ " attribution sums to elapsed cycles")
         m.Harness.cycles
         (Harness.attributed_total m))
    [ "native"; "sgxbounds"; "sgxbounds-noopt"; "asan"; "baggy" ]

let test_metadata_classes_by_scheme () =
  let cls m c =
    match List.assoc_opt c m.Harness.attribution with
    | Some (st : Memsys.class_stat) -> st.Memsys.cycles
    | None -> 0
  in
  let sgxb = run_metrics ~n:1024 ~scheme:"sgxbounds" "kmeans" in
  Alcotest.(check bool) "sgxbounds pays footer traffic" true (cls sgxb Memsys.Footer_meta > 0);
  Alcotest.(check int) "sgxbounds has no shadow" 0 (cls sgxb Memsys.Shadow);
  let asan = run_metrics ~n:1024 ~scheme:"asan" "kmeans" in
  Alcotest.(check bool) "asan pays shadow traffic" true (cls asan Memsys.Shadow > 0);
  Alcotest.(check int) "asan has no footers" 0 (cls asan Memsys.Footer_meta);
  let baggy = run_metrics ~n:1024 ~scheme:"baggy" "kmeans" in
  Alcotest.(check bool) "baggy pays size-table traffic" true (cls baggy Memsys.Bounds_table > 0);
  let native = run_metrics ~n:1024 ~scheme:"native" "kmeans" in
  List.iter
    (fun (c, (st : Memsys.class_stat)) ->
       if c <> Memsys.Data then
         Alcotest.(check int) ("native has no " ^ Memsys.class_name c) 0 st.Memsys.cycles)
    native.Harness.attribution

let test_memsys_reset_clears_everything () =
  let tel = Telemetry.create () in
  let ms = Memsys.create ~tel (Config.default ()) in
  (* Generate traffic over more pages than the EPC holds: faults, evictions
     and telemetry events all fire. *)
  let len = 2 * 1024 * 1024 in
  let base = Vmem.map (Memsys.vmem ms) ~len ~perm:Vmem.Read_write () in
  Telemetry.with_span tel "stress" (fun () ->
      Memsys.touch_range ms ~addr:base ~len;
      Memsys.touch_range ~cls:Memsys.Shadow ms ~addr:base ~len);
  Memsys.charge_alu ms 7;
  Alcotest.(check bool) "faults happened" true (Memsys.epc_faults ms > 0);
  Alcotest.(check bool) "evictions happened" true (Memsys.epc_evictions ms > 0);
  Alcotest.(check bool) "events recorded" true (List.length (Telemetry.events tel) > 0);
  Alcotest.(check bool) "attributed" true (Memsys.attributed_cycles ms > 0);
  let fault_names =
    List.sort_uniq compare
      (List.map (fun (e : Events.event) -> e.Events.name) (Telemetry.events tel))
  in
  Alcotest.(check bool) "fault and evict events present" true
    (List.mem "epc_fault" fault_names && List.mem "epc_evict" fault_names);
  Memsys.reset ms;
  let snap = Memsys.snapshot ms in
  Alcotest.(check int) "cycles zero" 0 snap.Memsys.cycles;
  Alcotest.(check int) "instrs zero" 0 snap.Memsys.instrs;
  Alcotest.(check int) "accesses zero" 0 snap.Memsys.mem_accesses;
  Alcotest.(check int) "llc zero" 0 snap.Memsys.llc_misses;
  Alcotest.(check int) "faults zero" 0 snap.Memsys.epc_faults;
  Alcotest.(check int) "evictions zero" 0 (Memsys.epc_evictions ms);
  Alcotest.(check int) "attributed zero" 0 (Memsys.attributed_cycles ms);
  List.iter
    (fun (c, (st : Memsys.class_stat)) ->
       Alcotest.(check int) (Memsys.class_name c ^ " accesses zero") 0 st.Memsys.accesses;
       Alcotest.(check int) (Memsys.class_name c ^ " cycles zero") 0 st.Memsys.cycles)
    (Memsys.attribution ms);
  List.iter
    (fun (lvl, (st : Sb_cache.Hierarchy.level_stats)) ->
       Alcotest.(check int) (lvl ^ " hits zero") 0 st.Sb_cache.Hierarchy.hits;
       Alcotest.(check int) (lvl ^ " misses zero") 0 st.Sb_cache.Hierarchy.misses)
    (Memsys.cache_stats ms);
  Alcotest.(check int) "event ring cleared" 0 (List.length (Telemetry.events tel));
  Alcotest.(check bool) "all counters zero" true
    (List.for_all (fun (_, v) -> v = 0) (Telemetry.counters tel));
  Alcotest.(check bool) "all histograms zero" true
    (List.for_all (fun (_, h) -> Metrics.Histogram.count h = 0) (Telemetry.histograms tel))

(* ---------- golden: the §4.4 ablation is visible in the counters ---------- *)

let test_ablation_check_counts () =
  let opt = run_metrics ~n:2048 ~scheme:"sgxbounds" "kmeans" in
  let noopt = run_metrics ~n:2048 ~scheme:"sgxbounds-noopt" "kmeans" in
  Alcotest.(check bool) "optimizations execute fewer checks" true
    (opt.Harness.checks_done < noopt.Harness.checks_done);
  Alcotest.(check bool) "optimizations elide checks" true (opt.Harness.checks_elided > 0);
  Alcotest.(check int) "noopt elides nothing" 0 noopt.Harness.checks_elided;
  Alcotest.(check bool) "optimizations hoist range checks" true
    (opt.Harness.checks_hoisted > 0);
  Alcotest.(check int) "noopt hoists nothing" 0 noopt.Harness.checks_hoisted;
  Alcotest.(check bool) "optimizations never slower" true
    (opt.Harness.cycles <= noopt.Harness.cycles);
  let footer (m : Harness.metrics) =
    match List.assoc_opt Memsys.Footer_meta m.Harness.attribution with
    | Some (st : Memsys.class_stat) -> st.Memsys.cycles
    | None -> 0
  in
  Alcotest.(check bool) "optimizations cut footer-metadata cycles" true
    (footer opt < footer noopt)

(* ---------- exporters ---------- *)

let test_chrome_trace_valid_and_complete () =
  let tel = Telemetry.create () in
  let r = Harness.run_one ~tel ~n:1024 ~scheme:"sgxbounds" (Registry.find "kmeans") in
  (match r.Harness.outcome with
   | Harness.Completed _ -> ()
   | Harness.Crashed msg -> Alcotest.failf "crashed: %s" msg);
  let trace = Json.to_string (Sink.chrome_trace (Sink.snapshot tel)) in
  match Json.parse trace with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok j ->
    let events = Option.bind (Json.member "traceEvents" j) Json.to_list in
    (match events with
     | None -> Alcotest.fail "no traceEvents array"
     | Some evs ->
       let named n e =
         match Option.bind (Json.member "name" e) Json.to_str with
         | Some s -> s = n
         | None -> false
       in
       Alcotest.(check bool) "has run phase span" true
         (List.exists (named "run:kmeans/sgxbounds") evs);
       Alcotest.(check bool) "has setup phase span" true
         (List.exists (named "setup:sgxbounds") evs);
       Alcotest.(check bool) "has epc fault events" true
         (List.exists (named "epc_fault") evs);
       Alcotest.(check bool) "all events have ts" true
         (List.for_all
            (fun e ->
               Json.member "ph" e = Some (Json.Str "M") || Json.member "ts" e <> None)
            evs))

let test_sink_table_and_csv () =
  let tel = Telemetry.create () in
  Telemetry.incr tel ~by:3 "widget_count";
  Telemetry.observe tel "lat" 12;
  let s = Sink.snapshot tel in
  let table = Fmt.str "%a" Sink.pp_table s in
  Alcotest.(check bool) "table mentions counter" true (contains ~sub:"widget_count" table);
  let csv = Sink.counters_csv s in
  Alcotest.(check bool) "csv has header" true (prefixed ~prefix:"metric,value\n" csv);
  Alcotest.(check bool) "csv has counter line" true (contains ~sub:"widget_count,3\n" csv);
  match Json.parse (Json.to_string (Sink.to_json s)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sink json invalid: %s" e

let test_maker_error_lists_schemes () =
  match (Harness.maker "notascheme" : Sb_sgx.Memsys.t -> Sb_protection.Scheme.t) with
  | (_ : Sb_sgx.Memsys.t -> Sb_protection.Scheme.t) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message lists valid schemes" true
      (contains ~sub:"sgxbounds-noopt" msg)

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "event ring is bounded" `Quick test_ring_bounded;
    Alcotest.test_case "spans nest and time" `Quick test_spans;
    Alcotest.test_case "disabled hub records nothing" `Quick test_disabled_hub_records_nothing;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick test_json_errors;
    Alcotest.test_case "attribution sums to cycles" `Quick test_attribution_sums_to_cycles;
    Alcotest.test_case "metadata classes per scheme" `Quick test_metadata_classes_by_scheme;
    Alcotest.test_case "Memsys.reset clears attribution + events" `Quick
      test_memsys_reset_clears_everything;
    Alcotest.test_case "ablation: fewer checks with optimizations" `Quick
      test_ablation_check_counts;
    Alcotest.test_case "chrome trace valid + has spans and faults" `Quick
      test_chrome_trace_valid_and_complete;
    Alcotest.test_case "table/csv/json sinks" `Quick test_sink_table_and_csv;
    Alcotest.test_case "maker error lists schemes" `Quick test_maker_error_lists_schemes;
  ]

(* --- quantile corners: single bucket, overflow bucket --- *)

let test_histogram_quantile_corners () =
  (* single occupied bucket: both estimators stay inside it *)
  let h = Metrics.Histogram.create "single" in
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 6
  done;
  Alcotest.(check int) "edge quantile rounds to the bucket top" 8
    (Metrics.Histogram.quantile h 0.5);
  List.iter
    (fun q ->
       let v = Metrics.Histogram.quantile_interp h q in
       Alcotest.(check bool)
         (Printf.sprintf "interp q=%.2f inside [4,6]" q)
         true (v >= 4 && v <= 6))
    [ 0.01; 0.50; 0.99; 1.0 ];
  (* overflow bucket: values past 2^61 have no representable bucket top,
     so estimators must report the observed max instead of a wrapped
     (negative) bound *)
  let o = Metrics.Histogram.create "overflow" in
  let huge = (1 lsl 61) + 5 in
  Metrics.Histogram.observe o 3;
  Metrics.Histogram.observe o huge;
  Alcotest.(check int) "edge quantile reports the observed max" huge
    (Metrics.Histogram.quantile o 1.0);
  Alcotest.(check int) "interp caps at the observed max" huge
    (Metrics.Histogram.quantile_interp o 1.0);
  Alcotest.(check bool) "median stays in the low bucket" true
    (Metrics.Histogram.quantile_interp o 0.5 <= 4);
  (* max_int itself stays finite and nonnegative *)
  let x = Metrics.Histogram.create "maxint" in
  Metrics.Histogram.observe x max_int;
  Alcotest.(check int) "quantile of max_int sample" max_int
    (Metrics.Histogram.quantile x 1.0);
  let v = Metrics.Histogram.quantile_interp x 1.0 in
  Alcotest.(check bool) "interp nonnegative and bounded" true (v >= 0 && v <= max_int)

(* ---------- checks_hoisted semantics are uniform across schemes ---------- *)

(* The invariant the static optimizer (and Figure 10) relies on:
   [checks_hoisted] counts widened range checks that actually execute in
   place of per-access checks. Only the sgxbounds variants with hoisting
   enabled may report it; every other scheme reports exactly 0 even when
   the workload calls [check_range] (ASan/MPX/Baggy model compilers that
   keep per-access checks, so their [check_range] is a no-op and their
   [*_unchecked] accessors stay checked). Always: hoisted <= done, and a
   hoist only ever appears together with elisions it pays for. *)

let hoisting_schemes = [ "sgxbounds"; "sgxbounds-hoist"; "sgxbounds-boundless" ]

let test_hoist_counter_semantics () =
  let open Sb_protection.Types in
  List.iter
    (fun scheme ->
       let ms = Memsys.create (Config.default ()) in
       let s = Harness.maker scheme ms in
       let module Scheme = Sb_protection.Scheme in
       (* the canonical hoisted loop: one range check, unchecked body *)
       let p = s.Scheme.malloc 64 in
       s.Scheme.check_range p 64 Write;
       for i = 0 to 7 do
         s.Scheme.store_unchecked (s.Scheme.offset p (8 * i)) 8 i
       done;
       ignore (s.Scheme.safe_load p 8 : int);
       let x = s.Scheme.extras in
       let hoists = List.mem scheme hoisting_schemes in
       Alcotest.(check bool)
         (scheme ^ ": hoisted>0 exactly under hoisting sgxbounds variants")
         hoists (x.checks_hoisted > 0);
       Alcotest.(check bool) (scheme ^ ": hoisted <= done") true
         (x.checks_hoisted <= x.checks_done);
       if hoists then begin
         Alcotest.(check int) (scheme ^ ": one range check, one hoist") 1
           x.checks_hoisted;
         Alcotest.(check bool) (scheme ^ ": the hoist pays for elisions") true
           (x.checks_elided >= 8)
       end;
       if scheme = "native" then begin
         Alcotest.(check int) "native: no checks" 0 x.checks_done;
         Alcotest.(check int) "native: no elisions" 0 x.checks_elided
       end)
    Harness.scheme_names

let test_hoist_counters_on_workload () =
  (* same invariant end-to-end, plus: all hoisting variants agree on the
     whole counter triple (hoisting is independent of boundless/safe) *)
  let triple scheme =
    let m = run_metrics ~n:2048 ~scheme "kmeans" in
    (m.Harness.checks_done, m.Harness.checks_elided, m.Harness.checks_hoisted)
  in
  let reference = triple "sgxbounds" in
  let _, _, ref_hoisted = reference in
  Alcotest.(check bool) "sgxbounds hoists on kmeans" true (ref_hoisted > 0);
  List.iter
    (fun scheme ->
       let ((done_, _, hoisted) as t) = triple scheme in
       Alcotest.(check bool) (scheme ^ ": hoisted <= done") true (hoisted <= done_);
       if List.mem scheme hoisting_schemes then
         Alcotest.(check (triple int int int))
           (scheme ^ ": counter triple matches sgxbounds") reference t
       else Alcotest.(check int) (scheme ^ ": reports no hoists") 0 hoisted)
    Harness.scheme_names

let suite =
  suite
  @ [
      Alcotest.test_case "histogram quantile corners" `Quick
        test_histogram_quantile_corners;
      Alcotest.test_case "checks_hoisted semantics per scheme" `Quick
        test_hoist_counter_semantics;
      Alcotest.test_case "checks_hoisted invariant on kmeans" `Quick
        test_hoist_counters_on_workload;
    ]
