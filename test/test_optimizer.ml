(** The proof-carrying bounds-check optimizer: plan determinism (across
    engines and across [--jobs]), certificate verification, runtime
    rejection of tampered plans, fuzz-oracle soundness of optimized
    replays, and the SARIF 2.1.0 writer. *)

module Optimizer = Sb_analysis.Optimizer
module Optimized = Sb_protection.Optimized
module Sarif = Sb_analysis.Sarif
module Finding = Sb_analysis.Finding
module Fastpath = Sb_machine.Fastpath
module Registry = Sb_workloads.Registry
module Json = Sb_telemetry.Json

(* ---------- plan determinism ---------- *)

let test_plan_deterministic_across_engines () =
  let w = Registry.find "pca" in
  let plan kind =
    Fastpath.with_kind kind (fun () -> Optimizer.plan_of_cell ~scheme:"sgxbounds" w)
  in
  let naive = plan Fastpath.Naive in
  let fast = plan Fastpath.Fast in
  let trace = plan Fastpath.Trace in
  Alcotest.(check bool) "some sites certified" true
    (Array.length naive.Optimized.p_sites > 0);
  Alcotest.(check bool) "naive = fast" true (naive = fast);
  Alcotest.(check bool) "naive = trace" true (naive = trace)

let test_sweep_jobs_invariant () =
  let ws = [ Registry.find "kmeans"; Registry.find "pca" ] in
  let rows jobs = Optimizer.sweep ~jobs ~schemes:[ "sgxbounds" ] ws in
  let r1 = rows 1 and r2 = rows 2 in
  Alcotest.(check string) "TSV identical under --jobs 1 vs 2"
    (Optimizer.tsv_of_rows r1) (Optimizer.tsv_of_rows r2);
  Alcotest.(check bool) "rows structurally equal" true (r1 = r2);
  List.iter
    (fun r ->
       Alcotest.(check bool) (r.Optimizer.r_workload ^ " sound") true
         r.Optimizer.r_sound)
    r1

(* ---------- certificates: elision rate, verification, tampering ---------- *)

let test_optimized_cell_sound_and_effective () =
  let r = Optimizer.optimize_cell ~scheme:"sgxbounds" (Registry.find "kmeans") in
  Alcotest.(check bool) "sound" true r.Optimizer.r_sound;
  Alcotest.(check int) "no certificate failures" 0 r.Optimizer.r_certs_bad;
  Alcotest.(check int) "no runtime rejections" 0 r.Optimizer.r_fallbacks;
  Alcotest.(check bool) "elides a material fraction of checks" true
    (r.Optimizer.r_removed_pct >= 20.0);
  Alcotest.(check bool) "checks never increase" true
    (r.Optimizer.r_checks_after <= r.Optimizer.r_checks_before);
  Alcotest.(check bool) "cycles never increase" true
    (r.Optimizer.r_cycles_after <= r.Optimizer.r_cycles_before)

let test_audit_replay_clean () =
  (* satellite: plan replay composed with Audit.wrap reports zero findings *)
  let w = Registry.find "matrixmul" in
  let plan = Optimizer.plan_of_cell ~scheme:"sgxbounds" w in
  let findings, fallbacks = Optimizer.verify_replay ~scheme:"sgxbounds" w plan in
  Alcotest.(check int) "audit findings" 0 findings;
  Alcotest.(check int) "runtime rejections" 0 fallbacks

let test_tampered_plan_rejected () =
  let w = Registry.find "pca" in
  let plan = Optimizer.plan_of_cell ~scheme:"sgxbounds" w in
  let tampered =
    {
      plan with
      Optimized.p_sites =
        Array.map
          (fun (s : Optimized.site) ->
             { s with Optimized.site_hi = s.Optimized.site_hi + 4096 })
          plan.Optimized.p_sites;
    }
  in
  (* the static verifier flags it... *)
  let _r, stream, _n = Optimizer.record_cell ~scheme:"sgxbounds" w in
  Alcotest.(check bool) "static verifier flags widened extents" true
    (Optimizer.verify_plan tampered stream <> []);
  (* ...and the runtime refuses to elide against it, keeping the verdict *)
  let findings, _ = Optimizer.verify_replay ~scheme:"sgxbounds" w tampered in
  Alcotest.(check int) "tampered replay still audits clean" 0 findings

(* ---------- fuzz-oracle soundness (tri-engine, detection contracts) ---------- *)

let test_fuzz_soundness () =
  let rep = Optimizer.fuzz_soundness ~seed:11 ~iters:16 () in
  Alcotest.(check (list string)) "no soundness failures" [] rep.Optimizer.fz_failures;
  Alcotest.(check bool) "optimized replays actually elide" true
    (rep.Optimizer.fz_elided > 0);
  Alcotest.(check int) "every cell exercised" (16 * 2) rep.Optimizer.fz_cells

(* ---------- SARIF golden ---------- *)

let test_sarif_golden () =
  let results =
    [
      Sarif.of_finding ~workload:"kmeans" ~scheme:"sgxbounds"
        {
          Finding.kind = Finding.Unchecked_uncovered;
          site = "store_unchecked";
          addr = 0x5018;
          obj = 0x5000;
          extent = 8;
          thread = 0;
          detail = "no covering live check";
        };
      Sarif.of_cert_failure ~workload:"pca" ~scheme:"sgxbounds"
        "site 0: extent [0,4288) exceeds object 0 (192 bytes)";
    ]
  in
  let expected =
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\n\"version\":\"2.1.0\", \"runs\":[{\"tool\":{\"driver\":{\"name\":\"sgxbounds-analyze\",\n\"version\":\"1.0.0\", \"informationUri\":\"https://github.com/tudinfse/sgxbounds\",\n\"rules\":[{\"id\":\"unchecked-uncovered\",\n\"shortDescription\":{\"text\":\"unchecked-uncovered\"}}, {\"id\":\"check-oob\",\n\"shortDescription\":{\"text\":\"check-oob\"}}, {\"id\":\"safe-oob\",\n\"shortDescription\":{\"text\":\"safe-oob\"}}, {\"id\":\"libc-mismatch\",\n\"shortDescription\":{\"text\":\"libc-mismatch\"}}, {\"id\":\"libc-unchecked\",\n\"shortDescription\":{\"text\":\"libc-unchecked\"}}, {\"id\":\"data-race\",\n\"shortDescription\":{\"text\":\"data-race\"}}, {\"id\":\"meta-race\",\n\"shortDescription\":{\"text\":\"meta-race\"}}, {\"id\":\"tainted-deref\",\n\"shortDescription\":{\"text\":\"tainted-deref\"}}, {\"id\":\"tainted-extent\",\n\"shortDescription\":{\"text\":\"tainted-extent\"}}, {\"id\":\"tainted-libc\",\n\"shortDescription\":{\"text\":\"tainted-libc\"}}, {\"id\":\"double-fetch\",\n\"shortDescription\":{\"text\":\"double-fetch\"}}, {\"id\":\"phase-disorder\",\n\"shortDescription\":{\"text\":\"phase-disorder\"}}, {\"id\":\"optimizer-cert\",\n\"shortDescription\":{\"text\":\"optimizer-cert\"}}]}},\n\"results\":[{\"ruleId\":\"unchecked-uncovered\", \"level\":\"error\",\n\"message\":{\"text\":\"[unchecked-uncovered] store_unchecked: 8 byte(s) at 0x5018 (object 0x5000, thread 0): no covering live check\"},\n\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"sim://kmeans/sgxbounds\"}},\n\"logicalLocations\":[{\"fullyQualifiedName\":\"sim://kmeans/sgxbounds\"}]}]},\n{\"ruleId\":\"optimizer-cert\", \"level\":\"error\",\n\"message\":{\"text\":\"site 0: extent [0,4288) exceeds object 0 (192 bytes)\"},\n\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"sim://pca/sgxbounds\"}},\n\"logicalLocations\":[{\"fullyQualifiedName\":\"sim://pca/sgxbounds\"}]}]}]}]}"
  in
  Alcotest.(check string) "SARIF document" expected (Sarif.to_string results);
  (* and it parses back as JSON with the pinned version *)
  match Json.parse (Sarif.to_string results) with
  | Error e -> Alcotest.failf "SARIF is not valid JSON: %s" e
  | Ok j ->
    Alcotest.(check bool) "version 2.1.0" true
      (Json.member "version" j = Some (Json.Str "2.1.0"))

let suite =
  [
    Alcotest.test_case "plan deterministic across engines" `Quick
      test_plan_deterministic_across_engines;
    Alcotest.test_case "sweep invariant under --jobs" `Quick test_sweep_jobs_invariant;
    Alcotest.test_case "optimized cell sound and effective" `Quick
      test_optimized_cell_sound_and_effective;
    Alcotest.test_case "audit replay of the plan is clean" `Quick
      test_audit_replay_clean;
    Alcotest.test_case "tampered plan rejected, verdict kept" `Quick
      test_tampered_plan_rejected;
    Alcotest.test_case "fuzz oracle soundness with elision active" `Quick
      test_fuzz_soundness;
    Alcotest.test_case "sarif golden" `Quick test_sarif_golden;
  ]
