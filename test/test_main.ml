let () =
  Alcotest.run "sgxbounds"
    [
      ("machine", Test_machine.suite);
      ("vmem", Test_vmem.suite);
      ("cache", Test_cache.suite);
      ("sgx", Test_sgx.suite);
      ("loader", Test_loader.suite);
      ("alloc", Test_alloc.suite);
      ("sgxbounds", Test_sgxbounds.suite);
      ("asan", Test_asan.suite);
      ("mpx", Test_mpx.suite);
      ("baggy", Test_baggy.suite);
      ("libc", Test_libc.suite);
      ("scone", Test_scone.suite);
      ("mt", Test_mt.suite);
      ("ripe", Test_ripe.suite);
      ("workloads", Test_workloads.suite);
      ("deep-kernels", Test_deep_kernels.suite);
      ("apps", Test_apps.suite);
      ("harness", Test_harness.suite);
      ("telemetry", Test_telemetry.suite);
      ("service", Test_service.suite);
      ("fex", Test_fex.suite);
      ("narrowing", Test_narrowing.suite);
      ("differential", Test_differential.suite);
      ("fastpath", Test_fastpath.suite);
      ("trace", Test_trace.suite);
      ("fuzz", Test_fuzz.suite);
      ("analysis", Test_analysis.suite);
      ("symex", Test_symex.suite);
      ("optimizer", Test_optimizer.suite);
      ("ripe-golden", Test_ripe_golden.suite);
      ("sink-golden", Test_sink_golden.suite);
      ("profile", Test_profile.suite);
      ("ycsb", Test_ycsb.suite);
      ("fleet", Test_fleet.suite);
    ]
