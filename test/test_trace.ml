(** Trace-engine (superblock fusion) differential tests (PR 7).

    The trace engine records hot strided access sequences and replays
    their accounting through compiled per-site flush closures
    ({!Sb_machine.Trace}, [Sb_sgx.Memsys]). Its contract: every
    simulated observable — cycles, per-class attribution, cache
    hit/miss counts, EPC faults, loaded values, crash identity, thread
    clocks — is bit-for-bit the naive interpreter's at every
    observation point. These tests drive the recorder's edge cases
    (promotion, pattern breaks, interposed probes, remap invalidation,
    thread switches, cooperative yields, telemetry/profiler fallback,
    machine-pool reuse) under all three engines and insist on
    structural equality. *)

module Fastpath = Sb_machine.Fastpath
module Trace = Sb_machine.Trace
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Profile = Sb_telemetry.Profile

let engines = [ (Fastpath.Naive, "naive"); (Fastpath.Fast, "fast"); (Fastpath.Trace, "trace") ]

(* Run [f] under every engine; check all results structurally equal to
   the naive one via [check name naive other]. *)
let tri ~check f =
  let naive = Fastpath.with_kind Fastpath.Naive f in
  List.iter
    (fun (kind, name) ->
       if kind <> Fastpath.Naive then check name naive (Fastpath.with_kind kind f))
    engines

let check_int = Alcotest.(check int)

type probe = {
  snap : Memsys.snapshot;
  attr : (Memsys.access_class * Memsys.class_stat) list;
  cache : (string * Sb_cache.Hierarchy.level_stats) list;
  clocks : int * int;
  compute : int;
}

let probe ms =
  {
    snap = Memsys.snapshot ms;
    attr = Memsys.attribution ms;
    cache = Memsys.cache_stats ms;
    clocks = (Memsys.get_clock ms 0, Memsys.get_clock ms 1);
    compute = Memsys.compute_cycles ms;
  }

let check_probe where (n : probe) (o : probe) =
  check_int (where ^ " cycles") n.snap.Memsys.cycles o.snap.Memsys.cycles;
  check_int (where ^ " instrs") n.snap.Memsys.instrs o.snap.Memsys.instrs;
  check_int (where ^ " mem_accesses") n.snap.Memsys.mem_accesses o.snap.Memsys.mem_accesses;
  check_int (where ^ " llc_misses") n.snap.Memsys.llc_misses o.snap.Memsys.llc_misses;
  check_int (where ^ " epc_faults") n.snap.Memsys.epc_faults o.snap.Memsys.epc_faults;
  check_int (where ^ " clock0") (fst n.clocks) (fst o.clocks);
  check_int (where ^ " clock1") (snd n.clocks) (snd o.clocks);
  check_int (where ^ " compute") n.compute o.compute;
  List.iter2
    (fun (c, (s1 : Memsys.class_stat)) (_, (s2 : Memsys.class_stat)) ->
       check_int (where ^ " attr:" ^ Memsys.class_name c) s1.Memsys.accesses s2.Memsys.accesses;
       check_int (where ^ " attr-cyc:" ^ Memsys.class_name c) s1.Memsys.cycles s2.Memsys.cycles)
    n.attr o.attr;
  List.iter2
    (fun (l, (s1 : Sb_cache.Hierarchy.level_stats))
      (_, (s2 : Sb_cache.Hierarchy.level_stats)) ->
      check_int (where ^ " " ^ l ^ " hits") s1.Sb_cache.Hierarchy.hits s2.Sb_cache.Hierarchy.hits;
      check_int (where ^ " " ^ l ^ " misses") s1.Sb_cache.Hierarchy.misses
        s2.Sb_cache.Hierarchy.misses)
    n.cache o.cache

let check_run where name (pn, dn) (po, d) =
  let where = where ^ "/" ^ name in
  check_int (where ^ " digest") dn d;
  List.iteri (fun i (a, b) -> check_probe (Printf.sprintf "%s #%d" where i) a b)
    (List.combine pn po)

(* ------------------------------------------------------------------ *)
(* Stride patterns: promotion, splits, breaks, interposed probes       *)
(* ------------------------------------------------------------------ *)

(* Every shape the recorder distinguishes: contiguous scans at all
   widths (aligned and unaligned, so accesses straddle cache lines
   mid-run), larger strides with per-access splits, backward scans,
   stride-0 hammering, abrupt pattern breaks, and probes that must kill
   a live run ([touch_range]/[blit]/[fill]/class switches). *)
let pattern_kernel () =
  let ms = Memsys.create (Config.default ()) in
  let vm = Memsys.vmem ms in
  let len = 64 * 1024 in
  let a = Vmem.map vm ~len ~perm:Vmem.Read_write () in
  let probes = ref [] in
  let checkpoint () = probes := probe ms :: !probes in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  (* seed memory *)
  for i = 0 to (len / 8) - 1 do
    Memsys.store ms ~addr:(a + (i * 8)) ~width:8 (i * 2654435761)
  done;
  checkpoint ();
  (* contiguous scans, all widths, aligned *)
  List.iter
    (fun w ->
       let i = ref 0 in
       while !i + w <= 4096 do
         note (Memsys.load ms ~addr:(a + !i) ~width:w);
         i := !i + w
       done)
    [ 1; 2; 4; 8 ];
  checkpoint ();
  (* unaligned scans: width 4 at stride 4 from a+1, width 8 at stride 8
     from a+5 — some accesses split across lines inside a run *)
  let i = ref 1 in
  while !i + 4 <= 2048 do
    note (Memsys.load ms ~addr:(a + !i) ~width:4);
    i := !i + 4
  done;
  let i = ref 5 in
  while !i + 8 <= 2048 do
    note (Memsys.load ms ~addr:(a + !i) ~width:8);
    i := !i + 8
  done;
  checkpoint ();
  (* strided with splits: stride 12 width 8; stride 48 width 4 *)
  let i = ref 0 in
  while !i + 8 <= 8192 do
    note (Memsys.load ms ~addr:(a + !i) ~width:8);
    i := !i + 12
  done;
  let i = ref 2 in
  while !i + 4 <= 8192 do
    note (Memsys.load ms ~addr:(a + !i) ~width:4);
    i := !i + 48
  done;
  checkpoint ();
  (* backward scan *)
  let i = ref (4096 - 8) in
  while !i >= 0 do
    note (Memsys.load ms ~addr:(a + !i) ~width:8);
    i := !i - 8
  done;
  checkpoint ();
  (* stride-0 hammer, split by a mid-stream class switch *)
  for k = 1 to 600 do
    Memsys.store ms ~addr:(a + 128) ~width:8 k;
    note (Memsys.load ms ~addr:(a + 128) ~width:8);
    if k = 300 then Memsys.touch ~cls:Memsys.Shadow ms ~addr:(a + 128) ~width:1
  done;
  checkpoint ();
  (* pattern breaks: alternate two interleaved scans so the stride
     detector sees a break on every access *)
  for k = 0 to 255 do
    note (Memsys.load ms ~addr:(a + (k * 8)) ~width:8);
    note (Memsys.load ms ~addr:(a + 16384 + (k * 16)) ~width:8)
  done;
  checkpoint ();
  (* interposed probes must kill live runs with exact accounting *)
  let i = ref 0 in
  while !i + 8 <= 4096 do
    note (Memsys.load ms ~addr:(a + !i) ~width:8);
    (match !i with
     | 1024 -> Memsys.touch_range ms ~addr:(a + 20000) ~len:300
     | 2048 -> Memsys.blit ms ~src:a ~dst:(a + 32768) ~len:256
     | 3072 -> Memsys.fill ms ~addr:(a + 24000) ~len:128 ~byte:0x5A
     | 1536 -> Memsys.charge_alu ms 7
     | _ -> ());
    i := !i + 8
  done;
  checkpoint ();
  (* metadata-class runs: footer loads at stride 8 *)
  for k = 0 to 255 do
    Memsys.touch ~cls:Memsys.Footer_meta ms ~addr:(a + 40960 + (k * 8)) ~width:4
  done;
  checkpoint ();
  let r = (List.rev !probes, !digest) in
  Memsys.retire ms;
  r

let test_patterns () = tri ~check:(check_run "patterns") pattern_kernel

(* ------------------------------------------------------------------ *)
(* Remap invalidation: unmap / protect / scheme free / realloc         *)
(* ------------------------------------------------------------------ *)

let remap_kernel () =
  let ms = Memsys.create (Config.default ()) in
  let vm = Memsys.vmem ms in
  let a = Vmem.map vm ~len:16384 ~perm:Vmem.Read_write () in
  let b = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  let probes = ref [] in
  let checkpoint () = probes := probe ms :: !probes in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  for i = 0 to 1023 do
    Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i;
    Memsys.store ms ~addr:(b + (i * 4)) ~width:4 i
  done;
  (* scan [a]; unmap [b] mid-run — the remap hook fires while a run over
     [a] is live and must flush (not lose) its pending accounting *)
  for i = 0 to 511 do
    note (Memsys.load ms ~addr:(a + (i * 8)) ~width:8);
    if i = 300 then Vmem.unmap vm ~addr:b ~len:8192
  done;
  checkpoint ();
  (* protect to read-only mid-run, then fault on store: the fused data
     window over [a] must die with the protect, and the fault must land
     at the same access with identical pre-fault accounting *)
  let faulted = ref (-1) in
  (try
     for i = 0 to 511 do
       Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i;
       if i = 200 then Vmem.protect vm ~addr:a ~len:4096 ~perm:Vmem.Read_only
     done
   with Vmem.Fault { addr; _ } -> faulted := addr - a);
  note !faulted;
  checkpoint ();
  let r = (List.rev !probes, !digest) in
  Memsys.retire ms;
  r

let test_remap () = tri ~check:(check_run "remap") remap_kernel

(* free/realloc during hot scans, through a real scheme's allocator *)
let alloc_kernel () =
  let ms = Memsys.create (Config.default ()) in
  let s : Scheme.t = Sgxbounds.make ms in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  let p = s.Scheme.calloc 1 4096 in
  let q = s.Scheme.calloc 1 2048 in
  for i = 0 to 4095 do
    s.Scheme.store (s.Scheme.offset p i) 1 (i land 0xff)
  done;
  (* scan [p]; free [q] mid-run *)
  for i = 0 to 4088 do
    note (s.Scheme.load (s.Scheme.offset p i) 1);
    if i = 2000 then s.Scheme.free q
  done;
  (* realloc [p] mid-scan: the object may move; subsequent accesses go
     through the new mapping and any cached window must be dead *)
  let p = ref p in
  for i = 0 to 1023 do
    note (s.Scheme.load (s.Scheme.offset !p i) 1);
    if i = 512 then p := s.Scheme.realloc !p 8192
  done;
  let snap = Memsys.snapshot ms in
  let r = (!digest, snap.Memsys.cycles, snap.Memsys.mem_accesses, snap.Memsys.llc_misses) in
  Memsys.retire ms;
  r

let test_alloc_invalidation () =
  tri
    ~check:(fun name n o ->
      let dn, cn, mn, ln = n and d, c, m, l = o in
      check_int (name ^ " digest") dn d;
      check_int (name ^ " cycles") cn c;
      check_int (name ^ " mem_accesses") mn m;
      check_int (name ^ " llc_misses") ln l)
    alloc_kernel

(* ------------------------------------------------------------------ *)
(* Thread switches and cooperative yields mid-run                      *)
(* ------------------------------------------------------------------ *)

let thread_kernel () =
  let ms = Memsys.create (Config.default ()) in
  let vm = Memsys.vmem ms in
  let a = Vmem.map vm ~len:16384 ~perm:Vmem.Read_write () in
  for i = 0 to 2047 do
    Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
  done;
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  (* switch threads in the middle of a hot scan: pending superblock
     accounting must land on the thread that issued it, never migrate *)
  for i = 0 to 2047 do
    note (Memsys.load ms ~addr:(a + (i * 8)) ~width:8);
    if i = 1000 then Memsys.set_thread ms 1;
    if i = 1500 then Memsys.set_thread ms 0
  done;
  let p = probe ms in
  Memsys.retire ms;
  ([ p ], !digest)

let test_thread_switch () = tri ~check:(check_run "thread-switch") thread_kernel

(* Simulated multithreading: the cooperative scheduler's interleaving
   derives from yield points and simulated clocks, so equality across
   engines proves fusion preserves both exactly (a superblock must not
   defer a yield). *)
let test_mt_workload () =
  let run () =
    let w = Registry.find "pca" in
    let n = max 16 (w.Registry.default_n / 8) in
    (Harness.run_one ~threads:4 ~n ~scheme:"sgxbounds" w).Harness.outcome
  in
  tri
    ~check:(fun name n o ->
      match (n, o) with
      | Harness.Completed a, Harness.Completed b ->
        check_int (name ^ " cycles") a.Harness.cycles b.Harness.cycles;
        check_int (name ^ " instrs") a.Harness.instrs b.Harness.instrs;
        check_int (name ^ " mem_accesses") a.Harness.mem_accesses b.Harness.mem_accesses;
        check_int (name ^ " llc_misses") a.Harness.llc_misses b.Harness.llc_misses;
        check_int (name ^ " epc_faults") a.Harness.epc_faults b.Harness.epc_faults;
        check_int (name ^ " checks_done") a.Harness.checks_done b.Harness.checks_done
      | Harness.Crashed a, Harness.Crashed b -> Alcotest.(check string) name a b
      | _ -> Alcotest.failf "%s: outcome shape differs from naive" name)
    run

(* ------------------------------------------------------------------ *)
(* Telemetry and profiler fallback                                     *)
(* ------------------------------------------------------------------ *)

(* With a telemetry hub enabled the recorder must stay off (each access
   is observed individually) — and the simulated stats must still equal
   the naive engine's. *)
let test_telemetry_fallback () =
  let kernel () =
    let tel = Sb_telemetry.Telemetry.create ~enabled:true () in
    let ms = Memsys.create ~tel (Config.default ()) in
    let vm = Memsys.vmem ms in
    let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
    let digest = ref 0 in
    for i = 0 to 1023 do
      Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
    done;
    for i = 0 to 1023 do
      digest := (!digest * 31) + Memsys.load ms ~addr:(a + (i * 8)) ~width:8
    done;
    let p = probe ms in
    let ts = Memsys.trace_stats ms in
    Memsys.retire ms;
    (p, !digest, ts)
  in
  let naive, _, _ = Fastpath.with_kind Fastpath.Naive kernel in
  let tr_p, tr_d, ts = Fastpath.with_kind Fastpath.Trace kernel in
  check_probe "telemetry-fallback" naive tr_p;
  check_int "telemetry digest"
    (let _, d, _ = Fastpath.with_kind Fastpath.Naive kernel in d) tr_d;
  check_int "recorder off: superblocks" 0 ts.Trace.superblocks;
  check_int "recorder off: fused" 0 ts.Trace.fused;
  check_int "recorder off: sites" 0 ts.Trace.sites

(* Attaching a profiler mid-run kills the live superblock and disables
   promotion until detach; simulated stats stay bit-identical and the
   profiler sees every post-attach charge. *)
let profiler_kernel () =
  let ms = Memsys.create (Config.default ()) in
  let vm = Memsys.vmem ms in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  let prof = Profile.create ~buckets:Memsys.profile_buckets () in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  for i = 0 to 1023 do
    Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
  done;
  for i = 0 to 1023 do
    note (Memsys.load ms ~addr:(a + (i * 8)) ~width:8);
    if i = 400 then Memsys.attach_profiler ms prof;
    if i = 800 then Memsys.detach_profiler ms
  done;
  let p = probe ms in
  let profiled =
    List.fold_left (fun acc (r : Profile.row) -> acc + r.Profile.r_self) 0
      (Profile.rows prof)
  in
  Memsys.retire ms;
  ([ p ], (!digest * 31) + profiled)

let test_profiler_attach () = tri ~check:(check_run "profiler-attach") profiler_kernel

(* ------------------------------------------------------------------ *)
(* Machine pool reuse                                                  *)
(* ------------------------------------------------------------------ *)

(* Retire/create cycles hand page and EPC arrays through the pools; a
   recycled machine must behave exactly like the first, and compiled
   site closures must never leak across machines (they capture their
   machine). Run the same kernel on three consecutive machines per
   engine and require identical results each time. *)
let test_pool_reuse () =
  let kernel () =
    let ms = Memsys.create (Config.default ()) in
    let vm = Memsys.vmem ms in
    let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
    let digest = ref 0 in
    for i = 0 to 1023 do
      Memsys.store ms ~addr:(a + (i * 8)) ~width:8 (i * 17)
    done;
    for i = 0 to 1023 do
      digest := (!digest * 31) + Memsys.load ms ~addr:(a + (i * 8)) ~width:8
    done;
    let ts = Memsys.trace_stats ms in
    let p = probe ms in
    Memsys.retire ms;
    (p, !digest, ts.Trace.superblocks, ts.Trace.fused)
  in
  let runs3 () =
    let a = kernel () and b = kernel () and c = kernel () in
    [ a; b; c ]
  in
  tri
    ~check:(fun name ns os ->
      List.iteri
        (fun i ((pn, dn, _, _), (po, d, _, _)) ->
           check_int (Printf.sprintf "%s run%d digest" name i) dn d;
           check_probe (Printf.sprintf "%s run%d" name i) pn po)
        (List.combine ns os))
    runs3;
  (* under the trace engine, every pooled reincarnation re-records *)
  Fastpath.with_kind Fastpath.Trace (fun () ->
    let (_, _, sb1, fu1) = kernel () in
    let (_, _, sb2, fu2) = kernel () in
    Alcotest.(check bool) "superblocks promoted on recycled machine" true (sb2 > 0);
    check_int "same superblocks across reincarnations" sb1 sb2;
    check_int "same fused count across reincarnations" fu1 fu2)

(* ------------------------------------------------------------------ *)
(* Recorder observability                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_stats () =
  (* under fast/naive the recorder must never engage *)
  List.iter
    (fun kind ->
       Fastpath.with_kind kind (fun () ->
         let ms = Memsys.create (Config.default ()) in
         let vm = Memsys.vmem ms in
         let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
         for i = 0 to 511 do
           Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
         done;
         let ts = Memsys.trace_stats ms in
         check_int "no superblocks" 0 ts.Trace.superblocks;
         check_int "no fused" 0 ts.Trace.fused;
         Memsys.retire ms))
    [ Fastpath.Naive; Fastpath.Fast ];
  (* under trace: promotion, breaks and invalidations all observable *)
  Fastpath.with_kind Fastpath.Trace (fun () ->
    let ms = Memsys.create (Config.default ()) in
    let vm = Memsys.vmem ms in
    let a = Vmem.map vm ~len:16384 ~perm:Vmem.Read_write () in
    let b = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
    for i = 0 to 1023 do
      Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
    done;
    let ts = Memsys.trace_stats ms in
    Alcotest.(check bool) "superblocks > 0" true (ts.Trace.superblocks > 0);
    Alcotest.(check bool) "fused > 0" true (ts.Trace.fused > 0);
    Alcotest.(check bool) "sites > 0" true (ts.Trace.sites > 0);
    (* interposed bulk probe breaks the live run *)
    ignore (Memsys.load ms ~addr:a ~width:8);
    ignore (Memsys.load ms ~addr:(a + 8) ~width:8);
    ignore (Memsys.load ms ~addr:(a + 16) ~width:8);
    ignore (Memsys.load ms ~addr:(a + 24) ~width:8);
    Memsys.touch_range ms ~addr:(a + 8192) ~len:256;
    let ts2 = Memsys.trace_stats ms in
    Alcotest.(check bool) "breaks recorded" true (ts2.Trace.breaks > ts.Trace.breaks);
    (* remap during a live run is an invalidation *)
    ignore (Memsys.load ms ~addr:(a + 512) ~width:8);
    ignore (Memsys.load ms ~addr:(a + 520) ~width:8);
    ignore (Memsys.load ms ~addr:(a + 528) ~width:8);
    ignore (Memsys.load ms ~addr:(a + 536) ~width:8);
    Vmem.unmap (Memsys.vmem ms) ~addr:b ~len:4096;
    let ts3 = Memsys.trace_stats ms in
    Alcotest.(check bool) "invalidations recorded" true
      (ts3.Trace.invalidations > ts2.Trace.invalidations);
    (* reset clears counters but keeps the engine armed *)
    Memsys.reset ms;
    let ts4 = Memsys.trace_stats ms in
    check_int "reset superblocks" 0 ts4.Trace.superblocks;
    for i = 0 to 255 do
      Memsys.store ms ~addr:(a + (i * 8)) ~width:8 i
    done;
    let ts5 = Memsys.trace_stats ms in
    Alcotest.(check bool) "re-promotes after reset" true (ts5.Trace.superblocks > 0);
    Memsys.retire ms)

let suite =
  [
    Alcotest.test_case "tri-engine: stride patterns, breaks, probes" `Quick test_patterns;
    Alcotest.test_case "tri-engine: unmap/protect invalidation mid-run" `Quick test_remap;
    Alcotest.test_case "tri-engine: free/realloc through a scheme" `Quick
      test_alloc_invalidation;
    Alcotest.test_case "tri-engine: thread switch mid-superblock" `Quick test_thread_switch;
    Alcotest.test_case "tri-engine: multithreaded workload (yields)" `Slow test_mt_workload;
    Alcotest.test_case "telemetry hub forces interpreter, stats invariant" `Quick
      test_telemetry_fallback;
    Alcotest.test_case "profiler attach mid-run, stats invariant" `Quick
      test_profiler_attach;
    Alcotest.test_case "machine pool reuse re-records identically" `Quick test_pool_reuse;
    Alcotest.test_case "trace_stats observability" `Quick test_trace_stats;
  ]
