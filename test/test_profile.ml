(** The observability layer: site-attributed profiler (tree nesting,
    unwind safety, collapsed-stack golden, differential sign), request
    span reservoir determinism, tracing/profiling stats-invariance
    (zero simulated cost when observing), and the deterministic
    perf-score gate. *)

module Profile = Sb_telemetry.Profile
module Json = Sb_telemetry.Json
module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Service = Sb_service.Service
module Spans = Sb_service.Spans
module Experiment = Sb_service.Experiment
module Drivers = Sb_service.Drivers
module Score = Sb_service.Score

(* ---------- profiler core ---------- *)

(* A small two-bucket profile used by several tests:
     root: 7 cycles (bucket y), a: 5 (x) + 2 (x), a;b: 3 (y) *)
let small_profile () =
  let p = Profile.create ~buckets:[| "x"; "y" |] () in
  let a = Profile.intern p "a" in
  let b = Profile.intern p "b" in
  Profile.enter p a;
  Profile.charge p 0 5;
  Profile.enter p b;
  Profile.charge p 1 3;
  Profile.exit p;
  Profile.charge p 0 2;
  Profile.exit p;
  Profile.charge p 1 7;
  p

let test_tree_nesting () =
  let p = small_profile () in
  let rows = Profile.rows p in
  let paths = List.map (fun r -> String.concat ";" r.Profile.r_path) rows in
  Alcotest.(check (list string)) "DFS rows, site-id order" [ ""; "a"; "a;b" ] paths;
  let row path =
    List.find (fun r -> String.concat ";" r.Profile.r_path = path) rows
  in
  Alcotest.(check int) "root self" 7 (row "").Profile.r_self;
  Alcotest.(check int) "a self" 7 (row "a").Profile.r_self;
  Alcotest.(check int) "a inclusive" 10 (row "a").Profile.r_incl;
  Alcotest.(check int) "a;b self" 3 (row "a;b").Profile.r_self;
  Alcotest.(check int) "a entered once" 1 (row "a").Profile.r_calls;
  Alcotest.(check int) "root inclusive = total" (Profile.total p)
    (row "").Profile.r_incl;
  Alcotest.(check int) "conservation: total = all charges" 17 (Profile.total p);
  (* per-bucket split survives aggregation *)
  Alcotest.(check int) "a bucket x" 7 (row "a").Profile.r_buckets.(0);
  Alcotest.(check int) "a;b bucket y" 3 (row "a;b").Profile.r_buckets.(1)

let test_unwind_safety () =
  let p = Profile.create ~buckets:[| "x" |] () in
  let a = Profile.intern p "a" in
  (* with_site pops even when the body raises *)
  (try Profile.with_site p a (fun () -> failwith "boom")
   with Failure _ -> ());
  Profile.charge p 0 4;
  (* popping at the root is ignored, not a crash or corruption *)
  Profile.exit p;
  Profile.exit p;
  Profile.charge p 0 6;
  let rows = Profile.rows p in
  let root = List.find (fun r -> r.Profile.r_path = []) rows in
  Alcotest.(check int) "all charges landed at the root" 10 root.Profile.r_self;
  let a_row = List.find (fun r -> r.Profile.r_path = [ "a" ]) rows in
  Alcotest.(check int) "raised site kept its call count" 1 a_row.Profile.r_calls;
  Alcotest.(check int) "raised site charged nothing" 0 a_row.Profile.r_self

let test_collapsed_golden () =
  let p = small_profile () in
  Alcotest.(check string) "folded stacks, exact bytes"
    "all 7\nall;a 7\nall;a;b 3\n"
    (Profile.to_collapsed p);
  Alcotest.(check string) "custom label prefixes every line"
    "kmeans/sgxbounds 7\nkmeans/sgxbounds;a 7\nkmeans/sgxbounds;a;b 3\n"
    (Profile.to_collapsed ~label:"kmeans/sgxbounds" p)

let test_diff_sign () =
  let mk charges =
    let p = Profile.create ~buckets:[| "x"; "y" |] () in
    List.iter
      (fun (site, bucket, cost) ->
         let id = Profile.intern p site in
         Profile.with_site p id (fun () -> Profile.charge p bucket cost))
      charges;
    p
  in
  (* B spends 15 more under "hot" (bucket 1), 4 less under "cold";
     "only_a" exists only in A *)
  let a = mk [ ("hot", 1, 10); ("cold", 0, 9); ("only_a", 0, 6) ] in
  let b = mk [ ("hot", 1, 25); ("cold", 0, 5) ] in
  let ds = Profile.diff a b in
  let d path = List.find (fun d -> d.Profile.d_path = [ path ]) ds in
  Alcotest.(check int) "hot delta = B - A" 15 (Profile.d_delta (d "hot"));
  Alcotest.(check int) "hot per-bucket delta" 15 (d "hot").Profile.d_buckets.(1);
  Alcotest.(check int) "cold delta negative" (-4) (Profile.d_delta (d "cold"));
  Alcotest.(check int) "A-only site counts as zero in B" (-6)
    (Profile.d_delta (d "only_a"));
  Alcotest.(check int) "A-only a_cycles" 6 (d "only_a").Profile.d_a;
  Alcotest.(check int) "A-only b_cycles" 0 (d "only_a").Profile.d_b;
  (* descending delta: B's extra cycles first *)
  let deltas = List.map Profile.d_delta ds in
  Alcotest.(check (list int)) "sorted by descending delta" [ 15; -4; -6 ] deltas;
  (* mismatched bucket sets are a caller bug, not a silent zero *)
  let c = Profile.create ~buckets:[| "x" |] () in
  Alcotest.check_raises "bucket mismatch rejected"
    (Invalid_argument "Profile.diff: bucket sets differ") (fun () ->
        ignore (Profile.diff a c))

(* ---------- observation is free: simulated metrics are invariant ----- *)

let test_profiled_run_stats_invariant () =
  let w = Registry.find "kmeans" in
  let plain = Harness.run_one ~n:256 ~scheme:"sgxbounds" w in
  let profiled, prof = Harness.run_profiled ~n:256 ~scheme:"sgxbounds" w in
  match (plain.Harness.outcome, profiled.Harness.outcome) with
  | Harness.Completed a, Harness.Completed b ->
    Alcotest.(check int) "cycles identical" a.Harness.cycles b.Harness.cycles;
    Alcotest.(check int) "instrs identical" a.Harness.instrs b.Harness.instrs;
    Alcotest.(check int) "accesses identical" a.Harness.mem_accesses
      b.Harness.mem_accesses;
    Alcotest.(check int) "llc misses identical" a.Harness.llc_misses
      b.Harness.llc_misses;
    (* conservation: every attributed cycle landed in some site *)
    Alcotest.(check int) "profiler total = attributed cycles"
      (b.Harness.compute_cycles
       + List.fold_left
           (fun acc (_, (cs : Memsys.class_stat)) -> acc + cs.Memsys.cycles)
           0 b.Harness.attribution)
      (Profile.total prof)
  | _ -> Alcotest.fail "kmeans crashed"

let serve_cell ~spans () =
  let cfg =
    {
      Service.workers = 2;
      queue_cap = 16;
      requests = 120;
      rate_rps = 150_000.;
      process = Sb_service.Loadgen.Poisson;
      seed = 3;
    }
  in
  Experiment.run_cell ?spans
    { Experiment.app = Drivers.Memcached; scheme = "sgxbounds";
      env = Config.Inside_enclave; cfg }

let test_traced_serve_stats_invariant () =
  let plain = serve_cell ~spans:None () in
  let traced = serve_cell ~spans:(Some 6) () in
  match (plain.Experiment.pt_outcome, traced.Experiment.pt_outcome) with
  | Ok a, Ok b ->
    Alcotest.(check int) "completed identical" a.Service.completed b.Service.completed;
    Alcotest.(check int) "dropped identical" a.Service.dropped b.Service.dropped;
    Alcotest.(check int) "elapsed identical" a.Service.elapsed b.Service.elapsed;
    let log = Option.get traced.Experiment.pt_spans in
    Alcotest.(check int) "every completion recorded" b.Service.completed
      (Spans.recorded log);
    let slow = Spans.slowest log in
    Alcotest.(check bool) "reservoir bounded" true (List.length slow <= 6);
    List.iter
      (fun sp ->
         Alcotest.(check int)
           (Printf.sprintf "span %d: sojourn = wait + exec" sp.Spans.sp_id)
           (Spans.sojourn sp)
           (Spans.queue_wait sp + Spans.exec sp))
      slow;
    (* the slowest exemplar is the histogram's max *)
    (match slow with
     | top :: _ ->
       Alcotest.(check int) "slowest span = latency max"
         (Sb_service.Latency.summary b.Service.latency).Sb_service.Latency.max
         (Spans.sojourn top)
     | [] -> Alcotest.fail "no spans retained")
  | _ -> Alcotest.fail "serve cell crashed"

(* ---------- span reservoir: deterministic slowest-K ---------- *)

let test_reservoir_determinism () =
  let feed () =
    let log = Spans.create ~cap:3 ~workers:1 () in
    (* sojourns: 5 9 9 2 9 1 7 — cap 3 keeps the 9s, ties by id *)
    List.iteri
      (fun i sj ->
         Spans.begin_exec log ~worker:0;
         Spans.finish log ~id:i ~worker:0 ~arrival:0 ~dequeue:0 ~fin:sj)
      [ 5; 9; 9; 2; 9; 1; 7 ];
    log
  in
  let ids log = List.map (fun sp -> sp.Spans.sp_id) (Spans.slowest log) in
  let a = feed () and b = feed () in
  Alcotest.(check (list int)) "identical runs retain identical spans" (ids a) (ids b);
  (* total order (sojourn, id): the three 9s survive, highest id first *)
  Alcotest.(check (list int)) "slowest-K by (sojourn, id)" [ 4; 2; 1 ] (ids a);
  Alcotest.(check int) "recorded counts every offer" 7 (Spans.recorded a)

(* ---------- the perf-score gate ---------- *)

let score_baseline ?(engine = Score.engine ()) ?(smoke = false) kernels =
  Json.Obj
    [
      ("bench", Json.Str "score");
      ("engine", Json.Str engine);
      ("smoke", Json.Bool smoke);
      ( "kernels",
        Json.List
          (List.map
             (fun (name, score) ->
                Json.Obj [ ("kernel", Json.Str name); ("score", Json.Int score) ])
             kernels) );
    ]

let meas name score =
  {
    Score.m_kernel = name;
    m_accesses = 1000;
    m_instrs = 0;
    m_cycles = 0;
    m_alloc_words = score;
    m_score = score;
  }

let test_gate_verdicts () =
  let baseline = score_baseline [ ("k1", 100); ("k2", 100); ("gone", 50) ] in
  match
    Score.gate ~smoke:false ~tolerance_pct:25 ~baseline
      [ meas "k1" 125; meas "k2" 126; meas "new" 999 ]
  with
  | Error e -> Alcotest.fail e
  | Ok vs ->
    let v name = List.find (fun v -> v.Score.v_kernel = name) vs in
    Alcotest.(check bool) "at tolerance is ok" false (v "k1").Score.v_regressed;
    Alcotest.(check bool) "beyond tolerance regresses" true (v "k2").Score.v_regressed;
    Alcotest.(check int) "kernels only in one side are skipped" 2 (List.length vs)

let test_gate_mismatches () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "engine mismatch refused" true
    (is_error
       (Score.gate ~smoke:false ~tolerance_pct:25
          ~baseline:(score_baseline ~engine:"definitely-other" [ ("k", 1) ])
          [ meas "k" 1 ]));
  Alcotest.(check bool) "scale (smoke) mismatch refused" true
    (is_error
       (Score.gate ~smoke:true ~tolerance_pct:25
          ~baseline:(score_baseline ~smoke:false [ ("k", 1) ])
          [ meas "k" 1 ]));
  Alcotest.(check bool) "disjoint kernel sets refused" true
    (is_error
       (Score.gate ~smoke:false ~tolerance_pct:25
          ~baseline:(score_baseline [ ("other", 1) ])
          [ meas "k" 1 ]));
  Alcotest.(check bool) "same engine and scale accepted" true
    (not
       (is_error
          (Score.gate ~smoke:false ~tolerance_pct:25
             ~baseline:(score_baseline [ ("k", 1) ])
             [ meas "k" 1 ])))

let test_score_doc_trend () =
  let ms = [ meas "k1" 10; meas "k2" 20 ] in
  let d1 = Score.doc ~smoke:true ~label:"pr6" ~prev:None ms in
  (* re-emitting with the same label replaces, not appends: byte-identical *)
  let d2 = Score.doc ~smoke:true ~label:"pr6" ~prev:(Some d1) ms in
  Alcotest.(check string) "same label re-emission is byte-identical"
    (Json.to_string d1) (Json.to_string d2);
  (* a different label appends and keeps history *)
  let d3 = Score.doc ~smoke:true ~label:"pr7" ~prev:(Some d2) ms in
  (match Json.member "trend" d3 with
   | Some (Json.List l) ->
     let labels =
       List.filter_map
         (fun e ->
            match Json.member "label" e with Some (Json.Str s) -> Some s | _ -> None)
         l
     in
     Alcotest.(check (list string)) "trend keeps history, newest last"
       [ "pr6"; "pr7" ] labels
   | _ -> Alcotest.fail "no trend array");
  (* the document round-trips through the parser *)
  match Json.parse (Json.to_string d3) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("doc does not re-parse: " ^ e)

let test_score_measure_deterministic () =
  (* A pool-free synthetic kernel allocates exactly the same words every
     call, so [measure] must report identical numbers — the property
     behind the gate's +0.0% on unchanged code. (The real kernels are
     deterministic per *process*, pinned by check.sh's double-run cmp;
     in-process repeats see different machine-pool states.) *)
  let kernel =
    ( "synthetic",
      fun () ->
        let sink = ref [] in
        for i = 1 to 10_000 do
          sink := i :: !sink
        done;
        ignore (Sys.opaque_identity !sink);
        { Score.s_accesses = 10_000; s_instrs = 0; s_cycles = 0 } )
  in
  let m1 = Score.measure kernel in
  let m2 = Score.measure kernel in
  Alcotest.(check int) "alloc words identical" m1.Score.m_alloc_words
    m2.Score.m_alloc_words;
  Alcotest.(check int) "score identical" m1.Score.m_score m2.Score.m_score;
  Alcotest.(check bool)
    (Printf.sprintf "~3 words per cons counted (got %d)" m1.Score.m_alloc_words)
    true
    (m1.Score.m_alloc_words >= 29_000 && m1.Score.m_alloc_words <= 33_000);
  (* the perturbation hook inflates the measured allocation by its
     percentage — the deliberate slowdown check.sh proves the gate on *)
  Unix.putenv "SGXBOUNDS_SCORE_PERTURB" "100";
  let p = Score.measure kernel in
  Unix.putenv "SGXBOUNDS_SCORE_PERTURB" "";
  Alcotest.(check bool)
    (Printf.sprintf "perturb=100 roughly doubles the score (%d vs %d)"
       p.Score.m_score m1.Score.m_score)
    true
    (p.Score.m_score >= m1.Score.m_score * 18 / 10);
  (* real kernels do real simulated work and allocate *)
  let r = Score.measure (List.hd (Score.kernels ~smoke:true)) in
  Alcotest.(check bool) "real kernel does simulated work" true (r.Score.m_accesses > 0);
  Alcotest.(check bool) "real kernel allocates" true (r.Score.m_alloc_words > 0)

let suite =
  [
    Alcotest.test_case "tree nesting and conservation" `Quick test_tree_nesting;
    Alcotest.test_case "unwind safety" `Quick test_unwind_safety;
    Alcotest.test_case "collapsed-stack golden" `Quick test_collapsed_golden;
    Alcotest.test_case "differential sign and order" `Quick test_diff_sign;
    Alcotest.test_case "profiled run: stats invariant" `Quick
      test_profiled_run_stats_invariant;
    Alcotest.test_case "traced serve: stats invariant" `Quick
      test_traced_serve_stats_invariant;
    Alcotest.test_case "span reservoir determinism" `Quick test_reservoir_determinism;
    Alcotest.test_case "gate verdicts" `Quick test_gate_verdicts;
    Alcotest.test_case "gate mismatch refusals" `Quick test_gate_mismatches;
    Alcotest.test_case "score doc trend semantics" `Quick test_score_doc_trend;
    Alcotest.test_case "score measurement deterministic" `Quick
      test_score_measure_deterministic;
  ]
