open Helpers
module Mt = Sb_mt.Mt
module Memsys = Sb_sgx.Memsys

let test_all_threads_run () =
  let m = ms () in
  let hits = Array.make 4 false in
  Mt.run m (Array.init 4 (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "all ran" true (Array.for_all Fun.id hits)

let test_elapsed_is_max () =
  let m = ms () in
  Mt.run m
    [|
      (fun () -> Memsys.charge_alu m 1000);
      (fun () -> Memsys.charge_alu m 10);
    |];
  Alcotest.(check int) "elapsed = slowest thread" 1000 (Memsys.get_clock m 0)

let test_min_clock_scheduling_interleaves () =
  let m = ms () in
  let order = ref [] in
  let worker tag cost () =
    for _ = 1 to 3 do
      order := tag :: !order;
      Memsys.charge_alu m cost;
      Mt.yield ()
    done
  in
  Mt.run m [| worker "slow" 100; worker "fast" 10 |];
  (* The fast thread must get multiple turns before the slow one ends. *)
  let seq = List.rev !order in
  Alcotest.(check bool) "interleaved, not serial" true
    (seq <> [ "slow"; "slow"; "slow"; "fast"; "fast"; "fast" ])

let test_deterministic () =
  let run () =
    let m = ms () in
    let log = Buffer.create 64 in
    let worker tag () =
      for _ = 1 to 5 do
        Buffer.add_string log tag;
        Memsys.charge_alu m (10 * (1 + String.length tag));
        Mt.yield ()
      done
    in
    Mt.run m [| worker "a"; worker "bb"; worker "ccc" |];
    Buffer.contents log
  in
  Alcotest.(check string) "same schedule across runs" (run ()) (run ())

let test_memory_accesses_yield_automatically () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Sb_vmem.Vmem.map vm ~len:8192 ~perm:Sb_vmem.Vmem.Read_write () in
  let turns = ref [] in
  let worker tag () =
    for i = 0 to 999 do
      ignore (Memsys.load m ~addr:(a + (i land 1023)) ~width:4)
    done;
    turns := tag :: !turns
  in
  Mt.run m [| worker 1; worker 2 |];
  (* Both finish; with automatic yields neither starves. *)
  Alcotest.(check int) "both completed" 2 (List.length !turns)

let test_parallel_for_covers_range () =
  let m = ms () in
  let seen = Array.make 100 0 in
  Mt.parallel_for m ~threads:8 ~lo:0 ~hi:100 (fun i -> seen.(i) <- seen.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) seen)

let test_parallel_speedup () =
  (* The same total ALU work split over 4 threads must take ~1/4 the
     simulated time. *)
  let run threads =
    let m = ms () in
    Mt.parallel_for m ~threads ~lo:0 ~hi:4000 (fun _ -> Memsys.charge_alu m 10);
    Memsys.get_clock m 0
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check int) "perfect scaling of ALU work" (t1 / 4) t4

let test_exception_propagates_and_resets () =
  let m = ms () in
  (match Mt.run m [| (fun () -> failwith "boom") |] with
   | () -> Alcotest.fail "expected exception"
   | exception Failure _ -> ());
  Alcotest.(check bool) "scheduler deactivated" false (Sb_machine.Eff.scheduler_active ());
  (* And a new region still works. *)
  Mt.run m [| (fun () -> ()) |]

let test_nested_run_rejected () =
  let m = ms () in
  (match Mt.run m [| (fun () -> Mt.run m [| (fun () -> ()) |]) |] with
   | () -> Alcotest.fail "expected rejection"
   | exception Invalid_argument _ -> ())

let test_yield_outside_region_is_noop () = Mt.yield ()

let suite =
  [
    Alcotest.test_case "all threads run" `Quick test_all_threads_run;
    Alcotest.test_case "elapsed is max over threads" `Quick test_elapsed_is_max;
    Alcotest.test_case "min-clock scheduling interleaves" `Quick test_min_clock_scheduling_interleaves;
    Alcotest.test_case "schedule is deterministic" `Quick test_deterministic;
    Alcotest.test_case "memory accesses yield automatically" `Quick test_memory_accesses_yield_automatically;
    Alcotest.test_case "parallel_for covers range once" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "parallel ALU work scales" `Quick test_parallel_speedup;
    Alcotest.test_case "exceptions propagate and reset scheduler" `Quick test_exception_propagates_and_resets;
    Alcotest.test_case "nested regions rejected" `Quick test_nested_run_rejected;
    Alcotest.test_case "yield outside region is a no-op" `Quick test_yield_outside_region_is_noop;
  ]

(* --- service-layer hardening: fairness, channel ops, exhaustion --- *)

let test_fair_rounds () =
  (* with equal per-turn cost, the min-clock scheduler gives every
     runnable thread exactly one turn per round — no thread can lag a
     full round behind *)
  let m = ms () in
  let n = 5 and rounds = 6 in
  let order = ref [] in
  let worker i () =
    for _ = 1 to rounds do
      order := i :: !order;
      Memsys.charge_alu m 100;
      Mt.yield ()
    done
  in
  Mt.run m (Array.init n (fun i -> worker i));
  let seq = Array.of_list (List.rev !order) in
  Alcotest.(check int) "every turn recorded" (n * rounds) (Array.length seq);
  for r = 0 to rounds - 1 do
    let round = Array.sub seq (r * n) n in
    Array.sort compare round;
    Alcotest.(check (array int))
      (Printf.sprintf "round %d runs each thread once" r)
      (Array.init n Fun.id) round
  done

let test_yield_during_channel_ops () =
  (* explicit yields between composing and sending a message must not
     let another thread corrupt this thread's channel or buffer *)
  let m, s = fresh native in
  let w = Sb_scone.Scone.create s in
  let n = 3 in
  let fds =
    Array.init n (fun _ -> Sb_scone.Scone.open_channel w ~shield:Sb_scone.Scone.No_shield)
  in
  let bufs = Array.init n (fun _ -> s.Scheme.malloc 64) in
  let payload i r = Printf.sprintf "t%d.%d;" i r in
  let worker i () =
    for r = 1 to 4 do
      let p = payload i r in
      Sb_vmem.Vmem.write_string (Memsys.vmem m) ~addr:(s.Scheme.addr_of bufs.(i)) p;
      Mt.yield ();
      ignore (Sb_scone.Scone.write w fds.(i) ~buf:bufs.(i) ~len:(String.length p));
      Mt.yield ()
    done
  in
  Mt.run m (Array.init n (fun i -> worker i));
  for i = 0 to n - 1 do
    let expect = String.concat "" (List.map (payload i) [ 1; 2; 3; 4 ]) in
    Alcotest.(check string)
      (Printf.sprintf "channel %d ordered and uncorrupted" i)
      expect
      (Sb_scone.Scone.sent w fds.(i))
  done

let test_thread_exhaustion () =
  let m = ms () in
  let max_t = (Memsys.cfg m).Config.max_threads in
  let hits = Array.make max_t false in
  Mt.run m (Array.init max_t (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "the full hardware complement runs" true
    (Array.for_all Fun.id hits);
  (match Mt.run m (Array.init (max_t + 1) (fun _ () -> ())) with
   | () -> Alcotest.fail "oversubscription accepted"
   | exception Invalid_argument _ -> ());
  (* a rejected region must not leave the scheduler wedged *)
  Alcotest.(check bool) "scheduler still inactive" false
    (Sb_machine.Eff.scheduler_active ());
  Mt.run m [||];
  Mt.run m [| (fun () -> ()) |]

let prop_elapsed_is_max_cost =
  QCheck.Test.make ~name:"mt: region elapsed time is the slowest thread's cost"
    ~count:40
    QCheck.(list_of_size Gen.(int_range 1 8) (int_bound 2000))
    (fun costs ->
       let m = ms () in
       let fns = List.map (fun c () -> Memsys.charge_alu m c) costs in
       Mt.run m (Array.of_list fns);
       Memsys.get_clock m 0 = List.fold_left max 0 costs)

let service_suite =
  [
    Alcotest.test_case "fairness: each round runs every thread" `Quick test_fair_rounds;
    Alcotest.test_case "yield during channel ops is safe" `Quick
      test_yield_during_channel_ops;
    Alcotest.test_case "thread exhaustion: cap enforced, recoverable" `Quick
      test_thread_exhaustion;
    qtest prop_elapsed_is_max_cost;
  ]

let suite = suite @ service_suite
