open Helpers
module Mt = Sb_mt.Mt
module Memsys = Sb_sgx.Memsys

let test_all_threads_run () =
  let m = ms () in
  let hits = Array.make 4 false in
  Mt.run m (Array.init 4 (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "all ran" true (Array.for_all Fun.id hits)

let test_elapsed_is_max () =
  let m = ms () in
  Mt.run m
    [|
      (fun () -> Memsys.charge_alu m 1000);
      (fun () -> Memsys.charge_alu m 10);
    |];
  Alcotest.(check int) "elapsed = slowest thread" 1000 (Memsys.get_clock m 0)

let test_min_clock_scheduling_interleaves () =
  let m = ms () in
  let order = ref [] in
  let worker tag cost () =
    for _ = 1 to 3 do
      order := tag :: !order;
      Memsys.charge_alu m cost;
      Mt.yield ()
    done
  in
  Mt.run m [| worker "slow" 100; worker "fast" 10 |];
  (* The fast thread must get multiple turns before the slow one ends. *)
  let seq = List.rev !order in
  Alcotest.(check bool) "interleaved, not serial" true
    (seq <> [ "slow"; "slow"; "slow"; "fast"; "fast"; "fast" ])

let test_deterministic () =
  let run () =
    let m = ms () in
    let log = Buffer.create 64 in
    let worker tag () =
      for _ = 1 to 5 do
        Buffer.add_string log tag;
        Memsys.charge_alu m (10 * (1 + String.length tag));
        Mt.yield ()
      done
    in
    Mt.run m [| worker "a"; worker "bb"; worker "ccc" |];
    Buffer.contents log
  in
  Alcotest.(check string) "same schedule across runs" (run ()) (run ())

let test_memory_accesses_yield_automatically () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Sb_vmem.Vmem.map vm ~len:8192 ~perm:Sb_vmem.Vmem.Read_write () in
  let turns = ref [] in
  let worker tag () =
    for i = 0 to 999 do
      ignore (Memsys.load m ~addr:(a + (i land 1023)) ~width:4)
    done;
    turns := tag :: !turns
  in
  Mt.run m [| worker 1; worker 2 |];
  (* Both finish; with automatic yields neither starves. *)
  Alcotest.(check int) "both completed" 2 (List.length !turns)

let test_parallel_for_covers_range () =
  let m = ms () in
  let seen = Array.make 100 0 in
  Mt.parallel_for m ~threads:8 ~lo:0 ~hi:100 (fun i -> seen.(i) <- seen.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) seen)

let test_parallel_speedup () =
  (* The same total ALU work split over 4 threads must take ~1/4 the
     simulated time. *)
  let run threads =
    let m = ms () in
    Mt.parallel_for m ~threads ~lo:0 ~hi:4000 (fun _ -> Memsys.charge_alu m 10);
    Memsys.get_clock m 0
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check int) "perfect scaling of ALU work" (t1 / 4) t4

let test_exception_propagates_and_resets () =
  let m = ms () in
  (match Mt.run m [| (fun () -> failwith "boom") |] with
   | () -> Alcotest.fail "expected exception"
   | exception Failure _ -> ());
  Alcotest.(check bool) "scheduler deactivated" false (Sb_machine.Eff.scheduler_active ());
  (* And a new region still works. *)
  Mt.run m [| (fun () -> ()) |]

let test_nested_run_rejected () =
  let m = ms () in
  (match Mt.run m [| (fun () -> Mt.run m [| (fun () -> ()) |]) |] with
   | () -> Alcotest.fail "expected rejection"
   | exception Invalid_argument _ -> ())

let test_yield_outside_region_is_noop () = Mt.yield ()

let suite =
  [
    Alcotest.test_case "all threads run" `Quick test_all_threads_run;
    Alcotest.test_case "elapsed is max over threads" `Quick test_elapsed_is_max;
    Alcotest.test_case "min-clock scheduling interleaves" `Quick test_min_clock_scheduling_interleaves;
    Alcotest.test_case "schedule is deterministic" `Quick test_deterministic;
    Alcotest.test_case "memory accesses yield automatically" `Quick test_memory_accesses_yield_automatically;
    Alcotest.test_case "parallel_for covers range once" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "parallel ALU work scales" `Quick test_parallel_speedup;
    Alcotest.test_case "exceptions propagate and reset scheduler" `Quick test_exception_propagates_and_resets;
    Alcotest.test_case "nested regions rejected" `Quick test_nested_run_rejected;
    Alcotest.test_case "yield outside region is a no-op" `Quick test_yield_outside_region_is_noop;
  ]
