(** Differential tests for the fast memory engine (PR 2): with the fast
    paths on or off ({!Sb_machine.Fastpath}, env [SGXBOUNDS_NAIVE]),
    every *simulated* result must be bit-for-bit identical — cycles,
    instruction counts, per-class attribution, per-level cache stats,
    EPC faults/evictions, loaded values, crash messages. The fast engine
    may only change host wall-clock time. *)

module Fastpath = Sb_machine.Fastpath
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry

let both f = (Fastpath.with_engine true f, Fastpath.with_engine false f)

let check_int name a b = Alcotest.(check int) name b a

let check_metrics where (f : Harness.metrics) (n : Harness.metrics) =
  let at field = where ^ "." ^ field in
  check_int (at "cycles") f.Harness.cycles n.Harness.cycles;
  check_int (at "instrs") f.Harness.instrs n.Harness.instrs;
  check_int (at "mem_accesses") f.Harness.mem_accesses n.Harness.mem_accesses;
  check_int (at "llc_misses") f.Harness.llc_misses n.Harness.llc_misses;
  check_int (at "epc_faults") f.Harness.epc_faults n.Harness.epc_faults;
  check_int (at "epc_evictions") f.Harness.epc_evictions n.Harness.epc_evictions;
  check_int (at "peak_vm") f.Harness.peak_vm n.Harness.peak_vm;
  check_int (at "bts") f.Harness.bts n.Harness.bts;
  check_int (at "quarantine") f.Harness.quarantine n.Harness.quarantine;
  check_int (at "compute_cycles") f.Harness.compute_cycles n.Harness.compute_cycles;
  check_int (at "checks_done") f.Harness.checks_done n.Harness.checks_done;
  check_int (at "checks_elided") f.Harness.checks_elided n.Harness.checks_elided;
  check_int (at "checks_hoisted") f.Harness.checks_hoisted n.Harness.checks_hoisted;
  check_int (at "violations") f.Harness.violations n.Harness.violations;
  List.iter2
    (fun (c1, (s1 : Memsys.class_stat)) (c2, (s2 : Memsys.class_stat)) ->
       let cls = Memsys.class_name c1 in
       Alcotest.(check string) (at "attr class") (Memsys.class_name c2) cls;
       check_int (at ("attr accesses:" ^ cls)) s1.Memsys.accesses s2.Memsys.accesses;
       check_int (at ("attr cycles:" ^ cls)) s1.Memsys.cycles s2.Memsys.cycles)
    f.Harness.attribution n.Harness.attribution;
  List.iter2
    (fun (l1, (s1 : Sb_cache.Hierarchy.level_stats))
      (l2, (s2 : Sb_cache.Hierarchy.level_stats)) ->
      Alcotest.(check string) (at "cache level") l2 l1;
      check_int (at (l1 ^ " hits")) s1.Sb_cache.Hierarchy.hits s2.Sb_cache.Hierarchy.hits;
      check_int (at (l1 ^ " misses")) s1.Sb_cache.Hierarchy.misses
        s2.Sb_cache.Hierarchy.misses)
    f.Harness.cache n.Harness.cache

let check_outcome where fast naive =
  match (fast, naive) with
  | Harness.Completed f, Harness.Completed n -> check_metrics where f n
  | Harness.Crashed f, Harness.Crashed n ->
    Alcotest.(check string) (where ^ " crash message") n f
  | Harness.Completed _, Harness.Crashed m ->
    Alcotest.failf "%s: fast completed but naive crashed (%s)" where m
  | Harness.Crashed m, Harness.Completed _ ->
    Alcotest.failf "%s: fast crashed (%s) but naive completed" where m

(* ------------------------------------------------------------------ *)
(* Harness-level: full workloads under every scheme                    *)
(* ------------------------------------------------------------------ *)

let run_workload ~scheme ~threads w =
  let n = max 16 (w.Registry.default_n / 8) in
  (Harness.run_one ~threads ~n ~scheme w).Harness.outcome

let test_workloads () =
  List.iter
    (fun scheme ->
       List.iter
         (fun wname ->
            let w = Registry.find wname in
            let fast, naive = both (fun () -> run_workload ~scheme ~threads:1 w) in
            check_outcome (scheme ^ "/" ^ wname) fast naive)
         [ "kmeans"; "wordcount"; "mcf" ])
    [ "native"; "sgxbounds"; "sgxbounds-noopt"; "asan"; "mpx"; "baggy" ]

let test_workloads_mt () =
  (* Multithreaded run: the cooperative scheduler's interleaving depends
     on simulated clocks and yield points, so equality here proves the
     fast engine preserves both exactly. *)
  List.iter
    (fun scheme ->
       let w = Registry.find "pca" in
       let fast, naive = both (fun () -> run_workload ~scheme ~threads:4 w) in
       check_outcome (scheme ^ "/pca(t=4)") fast naive)
    [ "native"; "sgxbounds"; "asan" ]

(* ------------------------------------------------------------------ *)
(* Memsys-level: access microkernel incl. EPC thrash                   *)
(* ------------------------------------------------------------------ *)

type probe = {
  snap : Memsys.snapshot;
  attr : (Memsys.access_class * Memsys.class_stat) list;
  cache : (string * Sb_cache.Hierarchy.level_stats) list;
  evictions : int;
}

let probe ms =
  {
    snap = Memsys.snapshot ms;
    attr = Memsys.attribution ms;
    cache = Memsys.cache_stats ms;
    evictions = Memsys.epc_evictions ms;
  }

let check_probe where (f : probe) (n : probe) =
  check_int (where ^ " cycles") f.snap.Memsys.cycles n.snap.Memsys.cycles;
  check_int (where ^ " mem_accesses") f.snap.Memsys.mem_accesses
    n.snap.Memsys.mem_accesses;
  check_int (where ^ " llc_misses") f.snap.Memsys.llc_misses n.snap.Memsys.llc_misses;
  check_int (where ^ " epc_faults") f.snap.Memsys.epc_faults n.snap.Memsys.epc_faults;
  check_int (where ^ " epc_evictions") f.evictions n.evictions;
  List.iter2
    (fun (c, (s1 : Memsys.class_stat)) (_, (s2 : Memsys.class_stat)) ->
       check_int (where ^ " attr " ^ Memsys.class_name c) s1.Memsys.accesses
         s2.Memsys.accesses;
       check_int (where ^ " attr-cyc " ^ Memsys.class_name c) s1.Memsys.cycles
         s2.Memsys.cycles)
    f.attr n.attr;
  List.iter2
    (fun (l, (s1 : Sb_cache.Hierarchy.level_stats))
      (_, (s2 : Sb_cache.Hierarchy.level_stats)) ->
      check_int (where ^ " " ^ l ^ " hits") s1.Sb_cache.Hierarchy.hits
        s2.Sb_cache.Hierarchy.hits;
      check_int (where ^ " " ^ l ^ " misses") s1.Sb_cache.Hierarchy.misses
        s2.Sb_cache.Hierarchy.misses)
    f.cache n.cache

(* A microkernel touching every Memsys entry point, with an EPC smaller
   than the working set so paging and eviction run. Returns checkpoints
   (stats probes) and a digest of every value loaded. *)
let memsys_kernel () =
  (* 16 pages of EPC vs a 48-page working set: guaranteed thrash. *)
  let ms = Memsys.create (Config.default ~epc_bytes:(16 * 4096) ()) in
  let vm = Memsys.vmem ms in
  let len = 48 * 4096 in
  let a = Vmem.map vm ~len ~perm:Vmem.Read_write () in
  let probes = ref [] in
  let checkpoint () = probes := probe ms :: !probes in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  (* hot-line hammer with class switches mid-streak *)
  for i = 1 to 500 do
    Memsys.store ms ~addr:a ~width:8 i;
    note (Memsys.load ms ~addr:a ~width:8);
    if i mod 7 = 0 then
      note (Memsys.load ~cls:Memsys.Footer_meta ms ~addr:a ~width:4)
  done;
  checkpoint ();
  (* sequential scan, all widths, including line-straddling accesses *)
  let off = ref 0 in
  while !off + 8 <= len do
    Memsys.store ms ~addr:(a + !off) ~width:4 (!off land 0xFFFF);
    note (Memsys.load ms ~addr:(a + !off) ~width:2);
    (* unaligned width-8 access straddling a line boundary every 64 B *)
    if !off mod 64 = 60 then note (Memsys.load ms ~addr:(a + !off) ~width:8);
    off := !off + 12
  done;
  checkpoint ();
  (* random loads across the whole (EPC-thrashing) working set *)
  let rng = Sb_machine.Rng.create 99 in
  for _ = 1 to 2000 do
    let o = Sb_machine.Rng.int rng (len - 8) in
    note (Memsys.load ms ~addr:(a + o) ~width:1)
  done;
  checkpoint ();
  (* bulk ops + reset + reuse *)
  Memsys.fill ms ~addr:a ~len:(len / 2) ~byte:0xAB;
  Memsys.blit ms ~src:a ~dst:(a + (len / 2)) ~len:(len / 4);
  note (Memsys.load ms ~addr:(a + (len / 2) + 100) ~width:8);
  checkpoint ();
  Memsys.reset ms;
  for i = 0 to 200 do
    Memsys.store ms ~addr:(a + (i * 64)) ~width:8 (i * 3);
    note (Memsys.load ms ~addr:(a + (i * 64)) ~width:8)
  done;
  checkpoint ();
  (List.rev !probes, !digest)

let test_memsys_kernel () =
  let (pf, df), (pn, dn) = both memsys_kernel in
  check_int "loaded-value digest" df dn;
  List.iteri
    (fun i (f, n) -> check_probe (Printf.sprintf "checkpoint %d" i) f n)
    (List.combine pf pn)

(* ------------------------------------------------------------------ *)
(* Vmem-level: values, faults and accounting                           *)
(* ------------------------------------------------------------------ *)

let vmem_kernel () =
  let vm = Vmem.create (Config.default ()) in
  let digest = ref 0 in
  let note v = digest := (!digest * 31) + v in
  let a = Vmem.map vm ~len:(3 * 4096) ~perm:Vmem.Read_write () in
  (* all widths, signed values, page-straddling accesses *)
  Vmem.store vm ~addr:a ~width:8 (-1);
  note (Vmem.load vm ~addr:a ~width:8);
  Vmem.store vm ~addr:(a + 4094) ~width:8 0x1122334455667788;
  note (Vmem.load vm ~addr:(a + 4094) ~width:8);
  Vmem.store vm ~addr:(a + 13) ~width:4 0xCAFEBABE;
  note (Vmem.load vm ~addr:(a + 13) ~width:4);
  Vmem.store vm ~addr:(a + 21) ~width:2 0xBEEF;
  note (Vmem.load vm ~addr:(a + 21) ~width:2);
  Vmem.store vm ~addr:(a + 23) ~width:1 0x7F;
  note (Vmem.load vm ~addr:(a + 23) ~width:1);
  (* min_int exercises the sign bit through the store codec *)
  Vmem.store vm ~addr:(a + 64) ~width:8 min_int;
  note (Vmem.load vm ~addr:(a + 64) ~width:8);
  (* string round-trip across a page boundary *)
  let s = String.init 300 (fun i -> Char.chr (i land 0xff)) in
  Vmem.write_string vm ~addr:(a + 4000) s;
  note (Hashtbl.hash (Vmem.read_string vm ~addr:(a + 4000) ~len:300));
  (* unmap middle page, check fault + accounting *)
  Vmem.unmap vm ~addr:(a + 4096) ~len:4096;
  note (Vmem.reserved_bytes vm);
  note (if Vmem.is_mapped vm (a + 4096) then 1 else 0);
  (match Vmem.load vm ~addr:(a + 4096) ~width:1 with
   | v -> note v
   | exception Vmem.Fault _ -> note 4242);
  (* write to a read-only page faults identically *)
  let ro = Vmem.map vm ~len:4096 ~perm:Vmem.Read_only () in
  (match Vmem.store vm ~addr:ro ~width:1 1 with
   | () -> note 0
   | exception Vmem.Fault _ -> note 777);
  note (Vmem.reserved_bytes vm);
  !digest

let test_vmem_kernel () =
  let df, dn = both vmem_kernel in
  check_int "vmem digest" df dn

let suite =
  [
    Alcotest.test_case "fast = naive: workloads x schemes" `Slow test_workloads;
    Alcotest.test_case "fast = naive: multithreaded pca" `Slow test_workloads_mt;
    Alcotest.test_case "fast = naive: memsys microkernel (EPC thrash)" `Quick
      test_memsys_kernel;
    Alcotest.test_case "fast = naive: vmem codecs, faults, accounting" `Quick
      test_vmem_kernel;
  ]
