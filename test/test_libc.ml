open Helpers
module Libc = Sb_libc.Simlibc

let test_memcpy_basic () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "hello";
  Libc.memcpy s ~dst:b ~src:a ~len:6;
  Alcotest.(check string) "copied" "hello" (Libc.string_out s b)

let test_memcpy_overflow_detected_sgxbounds () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_detects "dst too small" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_memcpy_overflow_detected_asan () =
  let _, s = fresh asan in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_detects "dst too small" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_memcpy_overflow_missed_mpx () =
  (* GCC's MPX runtime ships weak libc wrappers: the overflow happens
     inside uninstrumented libc and is missed. *)
  let _, s = fresh mpx in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 32 in
  check_allows "weak wrapper misses it" (fun () -> Libc.memcpy s ~dst:b ~src:a ~len:64)

let test_strcpy_semantics () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "enclave";
  let n = Libc.strcpy s ~dst:b ~src:a in
  Alcotest.(check int) "length" 7 n;
  Alcotest.(check string) "copied" "enclave" (Libc.string_out s b)

let test_strcpy_overflow_detected () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 64 and b = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:a "0123456789ABCDEF";
  check_detects "strcpy overflow" (fun () -> ignore (Libc.strcpy s ~dst:b ~src:a))

let test_strlen () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "four";
  Alcotest.(check int) "strlen" 4 (Libc.strlen s a)

let test_strncpy_pads () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 and b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "ab";
  Libc.strncpy s ~dst:b ~src:a ~len:8;
  Alcotest.(check string) "content" "ab" (Libc.string_out s b);
  Alcotest.(check int) "padded" 0 (s.Scheme.load (s.Scheme.offset b 7) 1)

let test_memset_and_memcmp () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 and b = s.Scheme.malloc 16 in
  Libc.memset s ~dst:a ~byte:7 ~len:16;
  Libc.memset s ~dst:b ~byte:7 ~len:16;
  Alcotest.(check int) "equal" 0 (Libc.memcmp s a b ~len:16);
  s.Scheme.store (s.Scheme.offset b 9) 1 8;
  Alcotest.(check int) "b greater" (-1) (Libc.memcmp s a b ~len:16)

let test_strcmp () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 and b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "abc";
  Libc.strcpy_in s ~dst:b "abd";
  Alcotest.(check bool) "a < b" true (Libc.strcmp s a b < 0);
  Libc.strcpy_in s ~dst:b "abc";
  Alcotest.(check int) "equal" 0 (Libc.strcmp s a b)

let test_native_libc_unprotected () =
  (* Under native, the same strcpy overflow silently corrupts the
     neighbour — the attack primitive all exploits build on. *)
  let _, s = fresh native in
  let big = s.Scheme.malloc 64 and small = s.Scheme.malloc 16 in
  let victim = s.Scheme.malloc 16 in
  s.Scheme.store victim 4 0x5AFE;
  Libc.strcpy_in s ~dst:big (String.make 40 'X');
  check_allows "no detection natively" (fun () -> ignore (Libc.strcpy s ~dst:small ~src:big));
  Alcotest.(check bool) "victim corrupted" true (s.Scheme.load victim 4 <> 0x5AFE)

let test_unterminated_string_leak_detected () =
  (* strlen walking past the object: SGXBounds' wrapper sees the claimed
     range exceed the bounds when the result is used. *)
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 8 in
  for i = 0 to 7 do
    s.Scheme.store (s.Scheme.offset a i) 1 65 (* no terminator *)
  done;
  let b = s.Scheme.malloc 8 in
  check_detects "overread caught at wrapper" (fun () -> ignore (Libc.strcpy s ~dst:b ~src:a))

let prop_memcpy_roundtrip =
  QCheck.Test.make ~name:"memcpy roundtrip across schemes" ~count:50
    QCheck.(pair (int_range 1 100) (int_range 0 3))
    (fun (len, which) ->
       let maker = List.nth [ native; sgxb; asan; mpx ] which in
       let _, s = fresh maker in
       let a = s.Scheme.malloc (len + 8) and b = s.Scheme.malloc (len + 8) in
       for i = 0 to len - 1 do
         s.Scheme.store (s.Scheme.offset a i) 1 (i land 0xff)
       done;
       Libc.memcpy s ~dst:b ~src:a ~len;
       let ok = ref true in
       for i = 0 to len - 1 do
         if s.Scheme.load (s.Scheme.offset b i) 1 <> i land 0xff then ok := false
       done;
       !ok)

let suite =
  [
    Alcotest.test_case "memcpy basic" `Quick test_memcpy_basic;
    Alcotest.test_case "memcpy overflow: sgxbounds detects" `Quick test_memcpy_overflow_detected_sgxbounds;
    Alcotest.test_case "memcpy overflow: asan detects" `Quick test_memcpy_overflow_detected_asan;
    Alcotest.test_case "memcpy overflow: mpx misses (weak wrappers)" `Quick test_memcpy_overflow_missed_mpx;
    Alcotest.test_case "strcpy semantics" `Quick test_strcpy_semantics;
    Alcotest.test_case "strcpy overflow detected" `Quick test_strcpy_overflow_detected;
    Alcotest.test_case "strlen" `Quick test_strlen;
    Alcotest.test_case "strncpy pads with NUL" `Quick test_strncpy_pads;
    Alcotest.test_case "memset and memcmp" `Quick test_memset_and_memcmp;
    Alcotest.test_case "strcmp ordering" `Quick test_strcmp;
    Alcotest.test_case "native: strcpy silently corrupts" `Quick test_native_libc_unprotected;
    Alcotest.test_case "unterminated string overread detected" `Quick test_unterminated_string_leak_detected;
    qtest prop_memcpy_roundtrip;
  ]

(* --- extended libc: strcat, memchr/strchr, qsort proxy, snprintf --- *)

let test_strcat () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  Libc.strcpy_in s ~dst:a "foo";
  let b = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:b "bar";
  let n = Libc.strcat s ~dst:a ~src:b in
  Alcotest.(check int) "length" 6 n;
  Alcotest.(check string) "concatenated" "foobar" (Libc.string_out s a)

let test_strcat_overflow_detected () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 8 in
  Libc.strcpy_in s ~dst:a "sixchr";
  let b = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:b "overflows";
  check_detects "combined length exceeds dst" (fun () -> ignore (Libc.strcat s ~dst:a ~src:b))

let test_memchr_strchr () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:a "hay:needle";
  Alcotest.(check (option int)) "memchr finds" (Some 3) (Libc.memchr s a ~byte:(Char.code ':') ~len:10);
  Alcotest.(check (option int)) "memchr misses" None (Libc.memchr s a ~byte:0x7f ~len:10);
  Alcotest.(check (option int)) "strchr" (Some 4) (Libc.strchr s a ~byte:(Char.code 'n'))

let test_qsort_with_proxy () =
  List.iter
    (fun (_name, maker) ->
       let _, s = fresh maker in
       let n = 16 in
       let a = s.Scheme.malloc (n * 4) in
       for i = 0 to n - 1 do
         s.Scheme.store (s.Scheme.offset a (i * 4)) 4 ((997 * (i + 3)) mod 101)
       done;
       (* the comparator runs as instrumented application code *)
       let cmp p q = compare (s.Scheme.load p 4) (s.Scheme.load q 4) in
       Libc.qsort s ~base:a ~nmemb:n ~width:4 ~cmp;
       for i = 1 to n - 1 do
         let x = s.Scheme.load (s.Scheme.offset a ((i - 1) * 4)) 4 in
         let y = s.Scheme.load (s.Scheme.offset a (i * 4)) 4 in
         Alcotest.(check bool) "sorted" true (x <= y)
       done)
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan) ]

let test_qsort_wrapper_checks_base () =
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 32 in
  check_detects "nmemb*width exceeds object" (fun () ->
      Libc.qsort s ~base:a ~nmemb:10 ~width:4 ~cmp:(fun _ _ -> 0))

let test_snprintf_formats () =
  let _, s = fresh sgxb in
  let name = s.Scheme.malloc 16 in
  Libc.strcpy_in s ~dst:name "enclave";
  let dst = s.Scheme.malloc 64 in
  let n =
    Libc.snprintf s ~dst ~max:64 ~fmt:"hello %s, %d%% shielded"
      ~args:[ Libc.Str name; Libc.Int 100 ]
  in
  Alcotest.(check string) "formatted" "hello enclave, 100% shielded" (Libc.string_out s dst);
  Alcotest.(check int) "length" 28 n

let test_snprintf_truncates () =
  let _, s = fresh sgxb in
  let dst = s.Scheme.malloc 8 in
  ignore (Libc.snprintf s ~dst ~max:8 ~fmt:"0123456789" ~args:[]);
  Alcotest.(check string) "truncated to max-1" "0123456" (Libc.string_out s dst)

let test_snprintf_checks_string_pointer () =
  (* the %s argument is extracted and bounds-checked on the fly *)
  let _, s = fresh sgxb in
  let bad = s.Scheme.malloc 8 in
  Libc.memset s ~dst:bad ~byte:65 ~len:8; (* unterminated *)
  let dst = s.Scheme.malloc 256 in
  check_detects "unterminated %s argument caught" (fun () ->
      ignore (Libc.snprintf s ~dst ~max:256 ~fmt:"%s" ~args:[ Libc.Str bad ]))

let extended_suite =
  [
    Alcotest.test_case "strcat" `Quick test_strcat;
    Alcotest.test_case "strcat overflow detected" `Quick test_strcat_overflow_detected;
    Alcotest.test_case "memchr and strchr" `Quick test_memchr_strchr;
    Alcotest.test_case "qsort via callback proxy" `Quick test_qsort_with_proxy;
    Alcotest.test_case "qsort wrapper checks base" `Quick test_qsort_wrapper_checks_base;
    Alcotest.test_case "snprintf formats %d/%s/%%" `Quick test_snprintf_formats;
    Alcotest.test_case "snprintf truncates at max" `Quick test_snprintf_truncates;
    Alcotest.test_case "snprintf checks %s pointers" `Quick test_snprintf_checks_string_pointer;
  ]

(* --- edge cases: zero length, exact fit, overlap, footer adjacency --- *)

let checking_schemes = [ ("sgxbounds", sgxb); ("asan", asan) ]

let test_zero_length_ops () =
  (* len=0 must be a no-op even through one-past-the-end pointers — the
     C idiom memcpy(end, end, 0) is legal and wrappers must not check. *)
  List.iter
    (fun (name, maker) ->
       let _, s = fresh maker in
       let a = s.Scheme.malloc 16 and b = s.Scheme.malloc 16 in
       check_allows (name ^ ": memcpy len 0 at end") (fun () ->
           Libc.memcpy s ~dst:(s.Scheme.offset b 16) ~src:(s.Scheme.offset a 16) ~len:0);
       check_allows (name ^ ": memmove len 0") (fun () ->
           Libc.memmove s ~dst:b ~src:a ~len:0);
       check_allows (name ^ ": memset len 0 at end") (fun () ->
           Libc.memset s ~dst:(s.Scheme.offset a 16) ~byte:0xAA ~len:0))
    checking_schemes

let test_strcpy_exact_fit () =
  List.iter
    (fun (name, maker) ->
       let _, s = fresh maker in
       let src = s.Scheme.malloc 16 in
       Libc.strcpy_in s ~dst:src "12345";
       (* 5 chars + NUL exactly fill a 6-byte destination *)
       let fit = s.Scheme.malloc 6 in
       check_allows (name ^ ": exact fit allowed") (fun () ->
           ignore (Libc.strcpy s ~dst:fit ~src));
       Alcotest.(check string) (name ^ ": content") "12345" (Libc.string_out s fit);
       (* one byte less and the terminator overflows *)
       let tight = s.Scheme.malloc 5 in
       check_detects (name ^ ": one short detected") (fun () ->
           ignore (Libc.strcpy s ~dst:tight ~src)))
    checking_schemes

let test_strcat_exact_fit () =
  List.iter
    (fun (name, maker) ->
       let _, s = fresh maker in
       let src = s.Scheme.malloc 8 in
       Libc.strcpy_in s ~dst:src "bar";
       let fit = s.Scheme.malloc 7 in
       Libc.strcpy_in s ~dst:fit "foo";
       check_allows (name ^ ": 3+3+NUL fills 7") (fun () ->
           ignore (Libc.strcat s ~dst:fit ~src));
       Alcotest.(check string) (name ^ ": content") "foobar" (Libc.string_out s fit);
       let tight = s.Scheme.malloc 6 in
       Libc.strcpy_in s ~dst:tight "foo";
       check_detects (name ^ ": 6 bytes is one short") (fun () ->
           ignore (Libc.strcat s ~dst:tight ~src)))
    checking_schemes

let test_memmove_overlapping () =
  List.iter
    (fun (name, maker) ->
       let _, s = fresh maker in
       let a = s.Scheme.malloc 32 in
       let reset () =
         for i = 0 to 31 do s.Scheme.store (s.Scheme.offset a i) 1 i done
       in
       (* forward overlap: dst > src *)
       reset ();
       Libc.memmove s ~dst:(s.Scheme.offset a 4) ~src:a ~len:16;
       for i = 0 to 15 do
         Alcotest.(check int) (name ^ ": forward byte") i
           (s.Scheme.load (s.Scheme.offset a (4 + i)) 1)
       done;
       (* backward overlap: dst < src *)
       reset ();
       Libc.memmove s ~dst:a ~src:(s.Scheme.offset a 4) ~len:16;
       for i = 0 to 15 do
         Alcotest.(check int) (name ^ ": backward byte") (4 + i)
           (s.Scheme.load (s.Scheme.offset a i) 1)
       done)
    checking_schemes

let test_footer_adjacent_writes () =
  (* SGXBounds keeps the LB footer just past the object. In-bounds
     writes right up against it — last byte, exact-fit memset — must not
     corrupt it: the very next overflow still has to be detected. *)
  let _, s = fresh sgxb in
  let a = s.Scheme.malloc 24 in
  check_allows "last byte store" (fun () -> s.Scheme.store (s.Scheme.offset a 23) 1 0xFF);
  check_allows "exact-fit wide store" (fun () ->
      s.Scheme.store (s.Scheme.offset a 16) 8 (-1));
  check_allows "exact-fit memset" (fun () -> Libc.memset s ~dst:a ~byte:0x5A ~len:24);
  check_detects "footer survives: overflow still caught" (fun () ->
      s.Scheme.store (s.Scheme.offset a 24) 1 0);
  check_detects "footer survives: wide access straddling end" (fun () ->
      ignore (s.Scheme.load (s.Scheme.offset a 20) 8));
  (* ASan: same adjacency, detection comes from the redzone instead *)
  let _, s = fresh asan in
  let b = s.Scheme.malloc 24 in
  check_allows "asan: last byte store" (fun () ->
      s.Scheme.store (s.Scheme.offset b 23) 1 0xFF);
  check_detects "asan: first redzone byte" (fun () ->
      s.Scheme.store (s.Scheme.offset b 24) 1 0)

let edge_suite =
  [
    Alcotest.test_case "zero-length ops never check" `Quick test_zero_length_ops;
    Alcotest.test_case "strcpy exact fit" `Quick test_strcpy_exact_fit;
    Alcotest.test_case "strcat exact fit" `Quick test_strcat_exact_fit;
    Alcotest.test_case "memmove overlapping ranges" `Quick test_memmove_overlapping;
    Alcotest.test_case "footer-adjacent writes" `Quick test_footer_adjacent_writes;
  ]

let suite = suite @ extended_suite @ edge_suite
