(** The open-loop service layer: arrival processes, latency-percentile
    math, the bounded-queue scheduler, and the Figure 13 experiment
    cells (determinism, engine equality, overload shedding). *)

open Helpers
module Rng = Sb_machine.Rng
module Fastpath = Sb_machine.Fastpath
module Histogram = Sb_telemetry.Metrics.Histogram
module Loadgen = Sb_service.Loadgen
module Latency = Sb_service.Latency
module Service = Sb_service.Service
module Drivers = Sb_service.Drivers
module Experiment = Sb_service.Experiment

(* ---------- load generation ---------- *)

let processes = [ Loadgen.Fixed; Loadgen.Poisson; Loadgen.Burst 16 ]

let test_arrivals_sorted_nonneg () =
  List.iter
    (fun p ->
       let rng = Rng.create 7 in
       let a = Loadgen.arrivals ~rng ~process:p ~rate_rps:1e6 ~n:500 in
       Alcotest.(check int) "count" 500 (Array.length a);
       let ok = ref (a.(0) >= 0) in
       for i = 1 to 499 do
         if a.(i) < a.(i - 1) then ok := false
       done;
       Alcotest.(check bool) (Loadgen.to_string p ^ ": sorted, nonnegative") true !ok)
    processes

let test_mean_rate () =
  (* every process offers the same mean rate: n arrivals span ~n gaps *)
  List.iter
    (fun p ->
       let rng = Rng.create 3 in
       let n = 4000 and rate = 200_000. in
       let a = Loadgen.arrivals ~rng ~process:p ~rate_rps:rate ~n in
       let expect = float_of_int n *. Loadgen.cycles_per_sec /. rate in
       let last = float_of_int a.(n - 1) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: span %.0f within 15%% of %.0f" (Loadgen.to_string p)
            last expect)
         true
         (last > 0.85 *. expect && last < 1.15 *. expect))
    processes

let test_burst_bunches () =
  let back_to_back p =
    let rng = Rng.create 5 in
    let a = Loadgen.arrivals ~rng ~process:p ~rate_rps:100_000. ~n:320 in
    let z = ref 0 in
    for i = 1 to 319 do
      if a.(i) = a.(i - 1) then incr z
    done;
    !z
  in
  Alcotest.(check bool) "burst groups arrive together" true
    (back_to_back (Loadgen.Burst 16) > 200);
  Alcotest.(check int) "fixed never bunches" 0 (back_to_back Loadgen.Fixed)

let test_arrivals_invalid_args () =
  let rng = Rng.create 1 in
  (match Loadgen.arrivals ~rng ~process:Loadgen.Fixed ~rate_rps:0. ~n:4 with
   | _ -> Alcotest.fail "zero rate accepted"
   | exception Invalid_argument _ -> ());
  match Loadgen.arrivals ~rng ~process:Loadgen.Fixed ~rate_rps:1e3 ~n:(-1) with
  | _ -> Alcotest.fail "negative count accepted"
  | exception Invalid_argument _ -> ()

let test_process_names_roundtrip () =
  List.iter
    (fun n ->
       match Loadgen.of_string n with
       | Some p -> Alcotest.(check string) "name roundtrip" n (Loadgen.to_string p)
       | None -> Alcotest.failf "listed process %s not parsed" n)
    Loadgen.process_names;
  Alcotest.(check bool) "unknown rejected" true (Loadgen.of_string "pareto" = None)

(* ---------- latency percentiles vs the exact reference ---------- *)

let test_interp_tracks_exact () =
  (* the interpolated estimate lives in the same power-of-two bucket as
     the exact nearest-rank value, so they agree within a factor of 2 *)
  let rng = Rng.create 11 in
  let samples = Array.init 500 (fun _ -> Rng.int rng 2_000_000) in
  let h = Histogram.create "t" in
  Array.iter (Histogram.observe h) samples;
  List.iter
    (fun q ->
       let exact = Latency.exact_percentile samples q in
       let est = Histogram.quantile_interp h q in
       Alcotest.(check bool)
         (Printf.sprintf "q=%.2f: estimate %d within 2x of exact %d" q est exact)
         true
         (est <= (2 * exact) + 2
          && exact <= (2 * est) + 2
          && est <= Histogram.max_value h))
    [ 0.50; 0.95; 0.99; 1.0 ]

let test_single_bucket_corner () =
  let h = Histogram.create "t" in
  for _ = 1 to 100 do
    Histogram.observe h 5
  done;
  List.iter
    (fun q ->
       let v = Histogram.quantile_interp h q in
       Alcotest.(check bool)
         (Printf.sprintf "interp q=%.2f stays in the only bucket" q)
         true
         (v >= 4 && v <= 5))
    [ 0.01; 0.50; 0.99; 1.0 ]

let test_overflow_bucket_corner () =
  let h = Histogram.create "t" in
  let huge = (1 lsl 61) + 5 in
  Histogram.observe h 3;
  Histogram.observe h huge;
  (* the top bucket's 2^62 upper bound wraps negative; both estimators
     must fall back to the observed max *)
  Alcotest.(check int) "edge quantile reports the max" huge (Histogram.quantile h 1.0);
  Alcotest.(check int) "interp caps at the max" huge (Histogram.quantile_interp h 1.0);
  Alcotest.(check bool) "median stays in the low bucket" true
    (Histogram.quantile_interp h 0.5 <= 4)

let test_exact_percentile_corners () =
  Alcotest.(check int) "empty" 0 (Latency.exact_percentile [||] 0.5);
  Alcotest.(check int) "single sample" 7 (Latency.exact_percentile [| 7 |] 0.99);
  let s = [| 5; 1; 9; 3 |] in
  Alcotest.(check int) "p100 is the max" 9 (Latency.exact_percentile s 1.0);
  Alcotest.(check int) "p25 is rank 1" 1 (Latency.exact_percentile s 0.25)

let test_summary_fields () =
  let h = Histogram.create "t" in
  List.iter (Histogram.observe h) [ 10; 20; 30; 40 ];
  let s = Latency.summary h in
  Alcotest.(check int) "count" 4 s.Latency.count;
  Alcotest.(check int) "max" 40 s.Latency.max;
  Alcotest.(check bool) "percentiles ordered" true
    (s.Latency.p50 <= s.Latency.p95 && s.Latency.p95 <= s.Latency.p99
     && s.Latency.p99 <= s.Latency.max)

(* ---------- the service scheduler ---------- *)

let cell ?(app = Drivers.Http) ?(scheme = "sgxbounds") ?(env = Config.Inside_enclave)
    ?(workers = 2) ?(queue_cap = 64) ?(requests = 120) ?(process = Loadgen.Poisson)
    ?(seed = 1) rate =
  {
    Experiment.app;
    scheme;
    env;
    cfg = { Service.workers; queue_cap; requests; rate_rps = rate; process; seed };
  }

let stats_exn name (p : Experiment.point) =
  match p.Experiment.pt_outcome with
  | Ok st -> st
  | Error e -> Alcotest.failf "%s: crashed: %s" name e

let http_capacity =
  lazy
    (match
       Experiment.capacity ~app:Drivers.Http ~scheme:"sgxbounds"
         ~env:Config.Inside_enclave ~workers:2 ~requests:100 ~seed:1
     with
     | Some cap when cap > 0. -> cap
     | Some _ | None -> Alcotest.fail "capacity probe failed")

let test_capacity_positive () = ignore (Lazy.force http_capacity : float)

let test_run_deterministic () =
  let c = cell 40_000. in
  let l1 = Experiment.tsv_line (Experiment.run_cell c) in
  let l2 = Experiment.tsv_line (Experiment.run_cell c) in
  Alcotest.(check string) "identical reruns" l1 l2

let test_engines_agree () =
  (* whole cells (machine creation included) under each memory engine *)
  let c = cell ~app:Drivers.Memcached ~requests:80 60_000. in
  let fast = Experiment.tsv_line (Experiment.run_cell c) in
  let naive =
    Fastpath.with_engine false (fun () -> Experiment.tsv_line (Experiment.run_cell c))
  in
  Alcotest.(check string) "fast engine = naive engine" fast naive

let test_jobs_invariance () =
  let cells =
    [ cell 30_000.; cell ~scheme:"asan" 30_000.; cell ~app:Drivers.Sqlite 30_000. ]
  in
  let lines jobs = List.map Experiment.tsv_line (Experiment.sweep ~jobs cells) in
  Alcotest.(check (list string)) "one domain = two domains" (lines 1) (lines 2)

let test_underload_completes_everything () =
  let cap = Lazy.force http_capacity in
  let st =
    stats_exn "underload" (Experiment.run_cell (cell ~requests:200 (0.2 *. cap)))
  in
  Alcotest.(check int) "all offered requests completed" st.Service.offered
    st.Service.completed;
  Alcotest.(check int) "nothing shed" 0 st.Service.dropped;
  Alcotest.(check bool) "throughput positive" true (Service.throughput_rps st > 0.)

let test_overload_sheds_never_wedges () =
  let cap = Lazy.force http_capacity in
  let c =
    cell ~queue_cap:2 ~process:(Loadgen.Burst 16) ~requests:300 (20. *. cap)
  in
  let st = stats_exn "overload" (Experiment.run_cell c) in
  Alcotest.(check int) "every request completed or shed" st.Service.offered
    (st.Service.completed + st.Service.dropped);
  Alcotest.(check bool) "overload sheds" true (st.Service.dropped > 0);
  Alcotest.(check bool) "accept queue stays bounded" true (st.Service.max_queue <= 2);
  Alcotest.(check bool) "drop ratio reflects the sheds" true
    (Service.drop_ratio st > 0. && Service.drop_ratio st < 1.)

let test_latency_grows_with_load () =
  let cap = Lazy.force http_capacity in
  let summary rate =
    Service.summary (stats_exn "load" (Experiment.run_cell (cell ~requests:200 rate)))
  in
  let low = summary (0.15 *. cap) and high = summary (1.2 *. cap) in
  Alcotest.(check bool) "queueing inflates the mean" true
    (low.Latency.mean < high.Latency.mean);
  Alcotest.(check bool) "and the tail" true (low.Latency.p95 <= high.Latency.p95)

let test_all_apps_and_schemes_serve () =
  List.iter
    (fun app ->
       List.iter
         (fun scheme ->
            let name = Drivers.name app ^ "/" ^ scheme in
            let c = cell ~app ~scheme ~requests:40 200_000. in
            let st = stats_exn name (Experiment.run_cell c) in
            (* queue_cap 64 > 40 requests: nothing can be shed *)
            Alcotest.(check int) (name ^ ": all served") st.Service.offered
              st.Service.completed)
         [ "native"; "sgxbounds"; "asan"; "mpx" ])
    Drivers.all

let test_config_validation () =
  let m = ms () in
  (match Service.run m { Service.default with Service.workers = 0 } (fun ~worker:_ -> ()) with
   | _ -> Alcotest.fail "workers=0 accepted"
   | exception Invalid_argument _ -> ());
  match Service.run m { Service.default with Service.queue_cap = 0 } (fun ~worker:_ -> ()) with
  | _ -> Alcotest.fail "queue_cap=0 accepted"
  | exception Invalid_argument _ -> ()

let test_driver_names () =
  Alcotest.(check bool) "nginx aliases http" true
    (Drivers.of_string "nginx" = Some Drivers.Http);
  Alcotest.(check bool) "unknown app rejected" true (Drivers.of_string "redis" = None);
  List.iter
    (fun a ->
       Alcotest.(check bool) "app name roundtrip" true
         (Drivers.of_string (Drivers.name a) = Some a))
    Drivers.all

let test_tsv_format () =
  let p = Experiment.run_cell (cell ~requests:30 50_000.) in
  let line = Experiment.tsv_line p in
  let ncols s = List.length (String.split_on_char '\t' s) in
  Alcotest.(check int) "line matches the header" (ncols Experiment.tsv_header)
    (ncols line);
  Alcotest.(check bool) "status column says ok" true
    (match List.rev (String.split_on_char '\t' line) with
     | "ok" :: _ -> true
     | _ -> false)

(* ---------- properties ---------- *)

let prop_arrivals_monotone =
  QCheck.Test.make ~name:"loadgen: schedules are sorted and nonnegative" ~count:60
    QCheck.(triple (int_bound 3) small_nat (int_range 1 200))
    (fun (p, seed, n) ->
       let process =
         match p with
         | 0 -> Loadgen.Fixed
         | 1 -> Loadgen.Poisson
         | 2 -> Loadgen.Burst 4
         | _ -> Loadgen.Burst 1
       in
       let rng = Rng.create seed in
       let a = Loadgen.arrivals ~rng ~process ~rate_rps:250_000. ~n in
       let ok = ref true in
       Array.iteri (fun i v -> if v < 0 || (i > 0 && v < a.(i - 1)) then ok := false) a;
       !ok)

let prop_interp_shares_exact_bucket =
  QCheck.Test.make ~name:"latency: interpolated quantile tracks the exact rank"
    ~count:60
    QCheck.(pair (list_of_size Gen.(int_range 1 200) (int_bound 1_000_000)) (int_bound 100))
    (fun (l, qpct) ->
       let q = float_of_int qpct /. 100. in
       let samples = Array.of_list l in
       let h = Histogram.create "p" in
       Array.iter (Histogram.observe h) samples;
       let exact = Latency.exact_percentile samples q in
       let est = Histogram.quantile_interp h q in
       est <= (2 * exact) + 2 && exact <= (2 * est) + 2
       && est <= Histogram.max_value h)

let suite =
  [
    Alcotest.test_case "loadgen: arrivals sorted and nonnegative" `Quick
      test_arrivals_sorted_nonneg;
    Alcotest.test_case "loadgen: every process offers the mean rate" `Quick
      test_mean_rate;
    Alcotest.test_case "loadgen: burst bunches, fixed paces" `Quick test_burst_bunches;
    Alcotest.test_case "loadgen: invalid arguments rejected" `Quick
      test_arrivals_invalid_args;
    Alcotest.test_case "loadgen: process names roundtrip" `Quick
      test_process_names_roundtrip;
    Alcotest.test_case "latency: interp tracks the exact reference" `Quick
      test_interp_tracks_exact;
    Alcotest.test_case "latency: single-bucket corner" `Quick test_single_bucket_corner;
    Alcotest.test_case "latency: overflow-bucket corner" `Quick
      test_overflow_bucket_corner;
    Alcotest.test_case "latency: exact-percentile corners" `Quick
      test_exact_percentile_corners;
    Alcotest.test_case "latency: summary fields ordered" `Quick test_summary_fields;
    Alcotest.test_case "service: capacity probe positive" `Quick test_capacity_positive;
    Alcotest.test_case "service: reruns are bit-identical" `Quick test_run_deterministic;
    Alcotest.test_case "service: fast and naive engines agree" `Quick test_engines_agree;
    Alcotest.test_case "service: results independent of --jobs" `Quick
      test_jobs_invariance;
    Alcotest.test_case "service: underload completes everything" `Quick
      test_underload_completes_everything;
    Alcotest.test_case "service: overload sheds, never wedges" `Quick
      test_overload_sheds_never_wedges;
    Alcotest.test_case "service: latency grows with offered load" `Quick
      test_latency_grows_with_load;
    Alcotest.test_case "service: all apps and schemes serve" `Quick
      test_all_apps_and_schemes_serve;
    Alcotest.test_case "service: config validation" `Quick test_config_validation;
    Alcotest.test_case "service: driver names" `Quick test_driver_names;
    Alcotest.test_case "service: tsv line matches header" `Quick test_tsv_format;
    qtest prop_arrivals_monotone;
    qtest prop_interp_shares_exact_bucket;
  ]
