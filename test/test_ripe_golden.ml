(** RIPE golden matrix: the complete per-attack outcome table for every
    scheme, pinned as an expect-style golden.

    [Test_ripe] checks the paper's aggregate claims (8/16 prevented,
    in-struct escapes, ...); this suite pins the {e exact} outcome of
    each of the 16 attacks so any behavioural drift — a changed
    allocator layout, a check reordering, a redzone tweak — shows up as
    a named cell flipping, not a count silently compensating. Update a
    row only when the change in detection behaviour is intended. *)

open Helpers
module Ripe = Sb_ripe.Ripe

let outcome_name = function
  | Ripe.Succeeded -> "succeeded"
  | Ripe.Prevented -> "prevented"
  | Ripe.Failed -> "failed"

let render maker =
  let _, s = fresh maker in
  Ripe.run_all s
  |> List.map (fun (a, o) -> Printf.sprintf "%-37s %s" (Ripe.name a) (outcome_name o))
  |> String.concat "\n"

(* Captured from the simulator; one line per attack, 16 per scheme. *)
let golden =
  [
    ( "native",
      "direct-loop/stack/adjacent-funcptr    succeeded\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     succeeded\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr succeeded\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr succeeded\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         succeeded\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          succeeded\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         succeeded\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          succeeded\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
    ( "sgxbounds",
      "direct-loop/stack/adjacent-funcptr    prevented\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     prevented\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr prevented\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr prevented\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         prevented\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          prevented\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         prevented\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          prevented\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
    ( "sgxbounds-boundless",
      (* Fail-oblivious: direct overflows are redirected to the overlay
         (attack neither detected fatally nor landed = failed); libc
         wrappers still fail-stop (§3.4). *)
      "direct-loop/stack/adjacent-funcptr    failed\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     failed\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr failed\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr failed\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         prevented\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          prevented\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         prevented\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          prevented\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
    ( "asan",
      "direct-loop/stack/adjacent-funcptr    prevented\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     prevented\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr prevented\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr prevented\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         prevented\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          prevented\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         prevented\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          prevented\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
    ( "mpx",
      (* No libc interceptors (§5.3) and no heap narrowing: only direct
         stack smashing of the adjacent pointer is stopped. *)
      "direct-loop/stack/adjacent-funcptr    prevented\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     succeeded\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr prevented\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr succeeded\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         succeeded\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          succeeded\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         succeeded\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          succeeded\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
    ( "baggy",
      (* Allocation-bounds only: buddy padding swallows most of the
         32-byte overflows ([failed]: the write landed in padding, the
         target survived; [succeeded]: block-aligned neighbours). *)
      "direct-loop/stack/adjacent-funcptr    failed\n\
       direct-loop/stack/in-struct-funcptr   succeeded\n\
       direct-loop/heap/adjacent-funcptr     succeeded\n\
       direct-loop/heap/in-struct-funcptr    succeeded\n\
       direct-unrolled/stack/adjacent-funcptr succeeded\n\
       direct-unrolled/stack/in-struct-funcptr succeeded\n\
       direct-unrolled/heap/adjacent-funcptr succeeded\n\
       direct-unrolled/heap/in-struct-funcptr succeeded\n\
       strcpy/stack/adjacent-funcptr         failed\n\
       strcpy/stack/in-struct-funcptr        succeeded\n\
       strcpy/heap/adjacent-funcptr          failed\n\
       strcpy/heap/in-struct-funcptr         succeeded\n\
       memcpy/stack/adjacent-funcptr         failed\n\
       memcpy/stack/in-struct-funcptr        succeeded\n\
       memcpy/heap/adjacent-funcptr          failed\n\
       memcpy/heap/in-struct-funcptr         succeeded" );
  ]

let makers =
  [
    ("native", native);
    ("sgxbounds", sgxb);
    ("sgxbounds-boundless", sgxb_boundless);
    ("asan", asan);
    ("mpx", mpx);
    ("baggy", baggy);
  ]

let test_matrix scheme () =
  let maker = List.assoc scheme makers in
  let expected = List.assoc scheme golden in
  Alcotest.(check string) (scheme ^ " RIPE matrix") expected (render maker)

let suite =
  List.map
    (fun (scheme, _) ->
       Alcotest.test_case (scheme ^ ": full outcome table") `Quick (test_matrix scheme))
    golden
