open Helpers
module Scone = Sb_scone.Scone
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme

let world maker =
  let m, s = fresh maker in
  (m, s, Scone.create s)

let test_write_reaches_the_wire () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 64 in
  Sb_libc.Simlibc.strcpy_in s ~dst:buf "hello outside";
  ignore (Scone.write w fd ~buf ~len:13);
  Alcotest.(check string) "wire bytes" "hello outside" (Scone.sent w fd)

let test_read_delivers_fed_bytes () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd "request!";
  let buf = s.Scheme.malloc 64 in
  let n = Scone.read w fd ~buf ~len:64 in
  Alcotest.(check int) "bytes read" 8 n;
  Alcotest.(check string) "contents" "request!"
    (Sb_vmem.Vmem.read_string (Memsys.vmem s.Scheme.ms) ~addr:(s.Scheme.addr_of buf) ~len:8)

let test_read_consumes_queue () =
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd "abcdef";
  let buf = s.Scheme.malloc 16 in
  Alcotest.(check int) "first chunk" 4 (Scone.read w fd ~buf ~len:4);
  Alcotest.(check int) "remainder" 2 (Scone.read w fd ~buf ~len:16);
  Alcotest.(check int) "drained" 0 (Scone.read w fd ~buf ~len:16)

let test_wrapper_checks_write_length () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 16 in
  check_detects "oversized write claim" (fun () -> ignore (Scone.write w fd ~buf ~len:64))

let test_wrapper_checks_read_buffer () =
  let _, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd (String.make 64 'x');
  let buf = s.Scheme.malloc 16 in
  check_detects "recv overflow caught at the wrapper" (fun () ->
      ignore (Scone.read w fd ~buf ~len:64))

let test_native_wrapper_misses_recv_overflow () =
  (* the CVE-2013-2028 ingredient: natively, a too-long recv corrupts *)
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  Scone.feed w fd (String.make 64 'x');
  let buf = s.Scheme.malloc 16 in
  let victim = s.Scheme.malloc 16 in
  s.Scheme.store victim 8 7;
  check_allows "no check natively" (fun () -> ignore (Scone.read w fd ~buf ~len:64));
  Alcotest.(check bool) "neighbour trampled" true (s.Scheme.load victim 8 <> 7)

let test_syscalls_counted () =
  let _, s, w = world native in
  let fd = Scone.open_channel w ~shield:Scone.No_shield in
  let buf = s.Scheme.malloc 16 in
  ignore (Scone.write w fd ~buf ~len:8);
  Scone.feed w fd "zz";
  ignore (Scone.read w fd ~buf ~len:2);
  Alcotest.(check int) "two syscalls" 2 (Scone.syscalls w)

let test_inside_costs_more_than_outside () =
  let cost env =
    let m = Memsys.create (Config.default ~env ()) in
    let s = Sb_protection.Native.make m in
    let w = Scone.create s in
    let fd = Scone.open_channel w ~shield:Scone.No_shield in
    let buf = s.Scheme.malloc 1024 in
    Memsys.reset m;
    for _ = 1 to 50 do
      ignore (Scone.write w fd ~buf ~len:1024)
    done;
    (Memsys.snapshot m).Memsys.cycles
  in
  Alcotest.(check bool) "enclave copies + queue cost more" true
    (cost Config.Inside_enclave > cost Config.Outside_enclave * 3 / 2)

let test_shield_costs_inside_only () =
  let cost env shield =
    let m = Memsys.create (Config.default ~env ()) in
    let s = Sb_protection.Native.make m in
    let w = Scone.create s in
    let fd = Scone.open_channel w ~shield in
    let buf = s.Scheme.malloc 1024 in
    Memsys.reset m;
    for _ = 1 to 20 do
      ignore (Scone.write w fd ~buf ~len:1024)
    done;
    (Memsys.snapshot m).Memsys.cycles
  in
  Alcotest.(check bool) "encryption shield costs inside" true
    (cost Config.Inside_enclave Scone.Encrypted > cost Config.Inside_enclave Scone.No_shield);
  Alcotest.(check int) "no shield cost outside"
    (cost Config.Outside_enclave Scone.No_shield)
    (cost Config.Outside_enclave Scone.Encrypted)

let test_bad_fd_crashes () =
  let _, s, w = world native in
  let buf = s.Scheme.malloc 8 in
  match Scone.write w 42 ~buf ~len:4 with
  | _ -> Alcotest.fail "expected crash"
  | exception Sb_protection.Types.App_crash _ -> ()

let suite =
  [
    Alcotest.test_case "write reaches the wire" `Quick test_write_reaches_the_wire;
    Alcotest.test_case "read delivers fed bytes" `Quick test_read_delivers_fed_bytes;
    Alcotest.test_case "reads consume the queue" `Quick test_read_consumes_queue;
    Alcotest.test_case "wrapper checks write length" `Quick test_wrapper_checks_write_length;
    Alcotest.test_case "wrapper checks read buffer" `Quick test_wrapper_checks_read_buffer;
    Alcotest.test_case "native recv overflow corrupts silently" `Quick
      test_native_wrapper_misses_recv_overflow;
    Alcotest.test_case "syscalls counted" `Quick test_syscalls_counted;
    Alcotest.test_case "enclave syscalls cost more" `Quick test_inside_costs_more_than_outside;
    Alcotest.test_case "shield costs inside only" `Quick test_shield_costs_inside_only;
    Alcotest.test_case "bad fd crashes" `Quick test_bad_fd_crashes;
  ]

let prop_feed_read_roundtrip =
  QCheck.Test.make ~name:"scone: fed bytes arrive intact and in order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 8) (string_of_size Gen.(int_range 0 64)))
    (fun chunks ->
       let _, s, w = world native in
       let fd = Scone.open_channel w ~shield:Scone.No_shield in
       List.iter (fun c -> Scone.feed w fd c) chunks;
       let total = String.concat "" chunks in
       let buf = s.Scheme.malloc 1024 in
       let n = Scone.read w fd ~buf ~len:1024 in
       n = String.length total
       && Sb_vmem.Vmem.read_string (Memsys.vmem s.Scheme.ms)
            ~addr:(s.Scheme.addr_of buf) ~len:n
          = total)

let prop_write_preserves_bytes =
  QCheck.Test.make ~name:"scone: written bytes reach the wire verbatim" ~count:50
    QCheck.(string_of_size Gen.(int_range 1 128))
    (fun payload ->
       let _, s, w = world native in
       let fd = Scone.open_channel w ~shield:Scone.Encrypted in
       let buf = s.Scheme.malloc 256 in
       Sb_vmem.Vmem.write_string (Memsys.vmem s.Scheme.ms)
         ~addr:(s.Scheme.addr_of buf) payload;
       ignore (Scone.write w fd ~buf ~len:(String.length payload));
       Scone.sent w fd = payload)

let props_suite = [ qtest prop_feed_read_roundtrip; qtest prop_write_preserves_bytes ]

let suite = suite @ props_suite

(* --- service-layer edge cases: zero-length I/O, shields, telemetry --- *)

let test_zero_length_transfers_free () =
  let m, s, w = world sgxb in
  let fd = Scone.open_channel w ~shield:Scone.Encrypted in
  let buf = s.Scheme.malloc 16 in
  Memsys.reset m;
  Alcotest.(check int) "zero-length write returns 0" 0 (Scone.write w fd ~buf ~len:0);
  Alcotest.(check int) "read from an empty channel returns 0" 0
    (Scone.read w fd ~buf ~len:16);
  Alcotest.(check int) "no syscalls counted" 0 (Scone.syscalls w);
  Alcotest.(check int) "no cycles charged" 0 (Memsys.snapshot m).Memsys.cycles

let test_shield_preserves_payload () =
  (* the shield changes cost, never content: both directions deliver
     byte-identical payloads with and without encryption *)
  let m, s, w = world native in
  let plain = Scone.open_channel w ~shield:Scone.No_shield in
  let enc = Scone.open_channel w ~shield:Scone.Encrypted in
  let payload = "shielded bytes arrive verbatim" in
  let buf = s.Scheme.malloc 64 in
  Sb_vmem.Vmem.write_string (Memsys.vmem m) ~addr:(s.Scheme.addr_of buf) payload;
  ignore (Scone.write w plain ~buf ~len:(String.length payload));
  ignore (Scone.write w enc ~buf ~len:(String.length payload));
  Alcotest.(check string) "wire bytes identical" (Scone.sent w plain) (Scone.sent w enc);
  Scone.feed w plain "abc";
  Scone.feed w enc "abc";
  let b2 = s.Scheme.malloc 8 in
  let delivered fd =
    ignore (Scone.read w fd ~buf:b2 ~len:3);
    Sb_vmem.Vmem.read_string (Memsys.vmem m) ~addr:(s.Scheme.addr_of b2) ~len:3
  in
  Alcotest.(check string) "delivered bytes identical" (delivered plain) (delivered enc)

let test_interleaved_channels_across_threads () =
  (* worker threads writing concurrently (auto-yields fire inside the
     copy loops) must keep per-channel streams intact and ordered *)
  let m, s, w = world native in
  let n = 4 and reps = 5 and len = 128 in
  let fds = Array.init n (fun _ -> Scone.open_channel w ~shield:Scone.No_shield) in
  let bufs =
    Array.init n (fun i ->
        let b = s.Scheme.malloc len in
        Sb_vmem.Vmem.write_string (Memsys.vmem m) ~addr:(s.Scheme.addr_of b)
          (String.make len (Char.chr (Char.code 'a' + i)));
        b)
  in
  Sb_mt.Mt.run m
    (Array.init n (fun i () ->
         for _ = 1 to reps do
           ignore (Scone.write w fds.(i) ~buf:bufs.(i) ~len)
         done));
  Array.iteri
    (fun i fd ->
       Alcotest.(check string)
         (Printf.sprintf "channel %d stream intact" i)
         (String.make (reps * len) (Char.chr (Char.code 'a' + i)))
         (Scone.sent w fd))
    fds

let test_shield_telemetry_regression () =
  (* regression pin: one Encrypted 100-byte write inside the enclave
     charges exactly shield_per_byte (4) cycles per byte to telemetry *)
  let tel = Sb_telemetry.Telemetry.create () in
  let m = Memsys.create ~tel (Config.default ~env:Config.Inside_enclave ()) in
  let s = Sb_protection.Native.make m in
  let w = Scone.create s in
  let fd = Scone.open_channel w ~shield:Scone.Encrypted in
  let buf = s.Scheme.malloc 128 in
  let counter t name =
    match List.assoc_opt name (Sb_telemetry.Telemetry.counters t) with
    | Some v -> v
    | None -> 0
  in
  ignore (Scone.write w fd ~buf ~len:100);
  Alcotest.(check int) "one syscall counted" 1 (counter tel "scone.syscalls");
  Alcotest.(check int) "shielded bytes" 100 (counter tel "scone.shield_bytes");
  Alcotest.(check int) "shield cycles = 4 per byte" 400
    (counter tel "scone.shield_cycles");
  (* outside the enclave the shield is a no-op and never counted *)
  let tel2 = Sb_telemetry.Telemetry.create () in
  let m2 = Memsys.create ~tel:tel2 (Config.default ~env:Config.Outside_enclave ()) in
  let s2 = Sb_protection.Native.make m2 in
  let w2 = Scone.create s2 in
  let fd2 = Scone.open_channel w2 ~shield:Scone.Encrypted in
  let buf2 = s2.Scheme.malloc 128 in
  ignore (Scone.write w2 fd2 ~buf:buf2 ~len:100);
  Alcotest.(check int) "outside: syscall still counted" 1 (counter tel2 "scone.syscalls");
  Alcotest.(check int) "outside: no shield cycles" 0 (counter tel2 "scone.shield_cycles");
  Alcotest.(check int) "outside: no shield bytes" 0 (counter tel2 "scone.shield_bytes")

let edge_suite =
  [
    Alcotest.test_case "zero-length transfers are free" `Quick
      test_zero_length_transfers_free;
    Alcotest.test_case "shield preserves payloads both ways" `Quick
      test_shield_preserves_payload;
    Alcotest.test_case "interleaved channels from worker threads" `Quick
      test_interleaved_channels_across_threads;
    Alcotest.test_case "per-call shield cost pinned in telemetry" `Quick
      test_shield_telemetry_regression;
  ]

let suite = suite @ edge_suite
