open Helpers
module Freelist = Sb_alloc.Freelist
module Buddy = Sb_alloc.Buddy
module Bump = Sb_alloc.Bump
module Stackmem = Sb_alloc.Stackmem
module Util = Sb_machine.Util

let with_heap f =
  let m = ms () in
  f m (Freelist.create m)

let test_alloc_aligned () =
  with_heap (fun _ h ->
      for size = 1 to 64 do
        let a = Freelist.alloc h size in
        Alcotest.(check int) "16-aligned" 0 (a mod 16)
      done)

let test_chunk_size_rounding () =
  with_heap (fun _ h ->
      let a = Freelist.alloc h 17 in
      Alcotest.(check int) "rounded to 32" 32 (Freelist.chunk_size h a);
      let b = Freelist.alloc h 600 in
      Alcotest.(check int) "rounded to 256B granule" 768 (Freelist.chunk_size h b))

let test_free_then_reuse () =
  with_heap (fun _ h ->
      let a = Freelist.alloc h 100 in
      Freelist.free h a;
      let b = Freelist.alloc h 100 in
      Alcotest.(check int) "exact-fit reuse" a b)

let test_double_free_rejected () =
  with_heap (fun _ h ->
      let a = Freelist.alloc h 100 in
      Freelist.free h a;
      match Freelist.free h a with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

let test_live_accounting () =
  with_heap (fun _ h ->
      let a = Freelist.alloc h 64 in
      let _b = Freelist.alloc h 64 in
      Alcotest.(check int) "two live" 2 (Freelist.live_chunks h);
      Alcotest.(check int) "bytes" 128 (Freelist.live_bytes h);
      Freelist.free h a;
      Alcotest.(check int) "one live" 1 (Freelist.live_chunks h))

let test_adjacency_of_fresh_allocs () =
  with_heap (fun _ h ->
      (* Fresh (bump) allocations are adjacent — heap overflows reach the
         next object, which the attack suites rely on. *)
      let a = Freelist.alloc h 32 in
      let b = Freelist.alloc h 32 in
      Alcotest.(check int) "header-separated neighbours" (a + 32 + 16) b)

let test_churn_footprint_bounded () =
  with_heap (fun m h ->
      (* Allocate/free in a loop: footprint must stay ~flat thanks to
         reuse (this is what ASan's quarantine deliberately breaks). *)
      for _ = 1 to 10_000 do
        let a = Freelist.alloc h 48 in
        Freelist.free h a
      done;
      let vm = Sb_sgx.Memsys.vmem m in
      Alcotest.(check bool) "footprint stays small" true
        (Sb_vmem.Vmem.peak_reserved_bytes vm < 256 * 1024))

let prop_no_overlap =
  QCheck.Test.make ~name:"live chunks never overlap" ~count:30
    QCheck.(list_of_size Gen.(int_range 10 60) (int_range 1 300))
    (fun sizes ->
       with_heap (fun _ h ->
           let ranges =
             List.map
               (fun s ->
                  let a = Freelist.alloc h s in
                  (a, a + Freelist.chunk_size h a))
               sizes
           in
           let sorted = List.sort compare ranges in
           let rec ok = function
             | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ok rest
             | _ -> true
           in
           ok sorted))

let prop_freelist_reuse_is_lifo_consistent =
  QCheck.Test.make ~name:"alloc after frees returns a freed or fresh chunk" ~count:30
    QCheck.(int_range 1 200)
    (fun size ->
       with_heap (fun _ h ->
           let a = Freelist.alloc h size in
           let b = Freelist.alloc h size in
           Freelist.free h a;
           Freelist.free h b;
           let c = Freelist.alloc h size in
           c = a || c = b))

(* --- buddy --- *)

let with_buddy f =
  let m = ms () in
  f m (Buddy.create m ~region_bytes:(1 lsl 20))

let test_buddy_pow2_sizes () =
  with_buddy (fun _ b ->
      let a = Buddy.alloc b 100 in
      Alcotest.(check int) "rounded to 128" 128 (Buddy.block_size b a);
      Alcotest.(check int) "aligned to own size" 0 (a mod 128))

let test_buddy_base_of () =
  with_buddy (fun _ b ->
      let a = Buddy.alloc b 100 in
      Alcotest.(check (option int)) "interior derives base" (Some a) (Buddy.base_of b (a + 77));
      Alcotest.(check (option int)) "free space has no base" None (Buddy.base_of b (a + 1000)))

let test_buddy_merge () =
  with_buddy (fun _ b ->
      let a1 = Buddy.alloc b 16 in
      let a2 = Buddy.alloc b 16 in
      Buddy.free b a1;
      Buddy.free b a2;
      (* After merging, a 32-byte block is available at the same base. *)
      let big = Buddy.alloc b 32 in
      Alcotest.(check int) "merged block reused" (min a1 a2) big)

let test_buddy_exhaustion () =
  with_buddy (fun _ b ->
      match
        for _ = 1 to 3000 do
          ignore (Buddy.alloc b 1024)
        done
      with
      | () -> Alcotest.fail "expected exhaustion"
      | exception Sb_vmem.Vmem.Enclave_oom _ -> ())

let prop_buddy_alignment =
  QCheck.Test.make ~name:"buddy blocks size-aligned" ~count:100
    QCheck.(int_range 1 5000)
    (fun size ->
       with_buddy (fun _ b ->
           let a = Buddy.alloc b size in
           let s = Buddy.block_size b a in
           Util.is_pow2 s && s >= size && a mod s = 0))

(* --- bump and stack --- *)

let test_bump_monotonic () =
  let m = ms () in
  let g = Bump.create m () in
  let a = Bump.alloc g 100 in
  let b = Bump.alloc g 100 in
  Alcotest.(check bool) "monotonic" true (b > a);
  Alcotest.(check int) "used" 200 (Bump.used_bytes g)

let test_stack_grows_down () =
  let m = ms () in
  let s = Stackmem.create m ~size:65536 in
  let f = Stackmem.push_frame s in
  let a = Stackmem.alloc s 64 in
  let b = Stackmem.alloc s 64 in
  Alcotest.(check bool) "second local below first" true (b < a);
  Stackmem.pop_frame s f;
  Alcotest.(check int) "sp restored" f (Stackmem.sp s)

let test_stack_overflow () =
  let m = ms () in
  let s = Stackmem.create m ~size:4096 in
  (match
     let _ = Stackmem.push_frame s in
     for _ = 1 to 100 do
       ignore (Stackmem.alloc s 128)
     done
   with
   | () -> Alcotest.fail "expected stack overflow"
   | exception Failure _ -> ())

(* --- randomized allocator walks (seeded, reproducible) --- *)

module Rng = Sb_machine.Rng
module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem

(* A random alloc/free walk asserting, after every allocation: the
   payload is aligned, fully inside mapped arena memory, and disjoint
   from every live chunk — in particular, a reused chunk never overlaps
   anything still allocated. Driven by Sb_machine.Rng so a failure
   reproduces from the seed in the test name. *)
let walk ~seed ~steps ~max_size m ~alloc ~free ~extent ~align =
  let vm = Memsys.vmem m in
  let rng = Rng.create seed in
  let live = Hashtbl.create 64 in (* payload addr -> (end, step) *)
  for step = 1 to steps do
    if Hashtbl.length live = 0 || Rng.bernoulli rng 0.6 then begin
      let size = 1 + Rng.int rng max_size in
      let a = alloc size in
      align ~addr:a ~size;
      if not (Vmem.is_mapped vm a && Vmem.is_mapped vm (a + size - 1)) then
        Alcotest.failf "step %d: payload [%#x, %#x) not mapped" step a (a + size);
      let e = a + extent a in
      Hashtbl.iter
        (fun a2 (e2, step2) ->
           if a < e2 && a2 < e then
             Alcotest.failf "step %d: chunk [%#x, %#x) overlaps live [%#x, %#x) from step %d"
               step a e a2 e2 step2)
        live;
      Hashtbl.replace live a (e, step)
    end
    else begin
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
      let k = List.nth keys (Rng.int rng (List.length keys)) in
      free k;
      Hashtbl.remove live k
    end
  done

let test_freelist_walk seed () =
  with_heap (fun m h ->
      walk ~seed ~steps:400 ~max_size:300 m
        ~alloc:(Freelist.alloc h) ~free:(Freelist.free h)
        ~extent:(Freelist.chunk_size h)
        ~align:(fun ~addr ~size:_ ->
            if addr mod 16 <> 0 then Alcotest.failf "%#x not 16-aligned" addr))

let test_buddy_walk seed () =
  with_buddy (fun m b ->
      walk ~seed ~steps:400 ~max_size:500 m
        ~alloc:(Buddy.alloc b) ~free:(Buddy.free b)
        ~extent:(Buddy.block_size b)
        ~align:(fun ~addr ~size ->
            let bs = Buddy.block_size b addr in
            if not (Util.is_pow2 bs && bs >= size && addr mod bs = 0) then
              Alcotest.failf "%#x: block %d not size-aligned pow2 >= %d" addr bs size;
            (* interior pointers derive the base — what the scheme's
               check relies on *)
            let interior = addr + Rng.int (Rng.create (addr + seed)) bs in
            if Buddy.base_of b interior <> Some addr then
              Alcotest.failf "base_of %#x <> %#x" interior addr))

let test_bump_walk () =
  (* No free: every allocation must be fresh, mapped and disjoint. *)
  let m = ms () in
  let g = Bump.create m () in
  walk ~seed:12 ~steps:150 ~max_size:200 m
    ~alloc:(Bump.alloc g)
    ~free:(fun _ -> ())
    ~extent:(fun _ -> 1) (* conservative: starts must at least be distinct *)
    ~align:(fun ~addr:_ ~size:_ -> ())

let suite =
  [
    Alcotest.test_case "payloads 16-byte aligned" `Quick test_alloc_aligned;
    Alcotest.test_case "size-class rounding" `Quick test_chunk_size_rounding;
    Alcotest.test_case "free then exact-fit reuse" `Quick test_free_then_reuse;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "live accounting" `Quick test_live_accounting;
    Alcotest.test_case "fresh allocations adjacent" `Quick test_adjacency_of_fresh_allocs;
    Alcotest.test_case "churn keeps footprint flat" `Quick test_churn_footprint_bounded;
    qtest prop_no_overlap;
    qtest prop_freelist_reuse_is_lifo_consistent;
    Alcotest.test_case "buddy: power-of-two size-aligned blocks" `Quick test_buddy_pow2_sizes;
    Alcotest.test_case "buddy: base derivation" `Quick test_buddy_base_of;
    Alcotest.test_case "buddy: merge on free" `Quick test_buddy_merge;
    Alcotest.test_case "buddy: exhaustion raises" `Quick test_buddy_exhaustion;
    qtest prop_buddy_alignment;
    Alcotest.test_case "bump region monotonic" `Quick test_bump_monotonic;
    Alcotest.test_case "stack grows down, pop restores" `Quick test_stack_grows_down;
    Alcotest.test_case "stack overflow detected" `Quick test_stack_overflow;
    Alcotest.test_case "freelist random walk (seed 1)" `Quick (test_freelist_walk 1);
    Alcotest.test_case "freelist random walk (seed 2)" `Quick (test_freelist_walk 2);
    Alcotest.test_case "buddy random walk (seed 1)" `Quick (test_buddy_walk 1);
    Alcotest.test_case "buddy random walk (seed 2)" `Quick (test_buddy_walk 2);
    Alcotest.test_case "bump random walk" `Quick test_bump_walk;
  ]
