(** The differential fuzzer's own tests: oracle semantics on hand-built
    traces, contract capability checks, seed determinism, clean
    campaigns under both polarities, harness sanity via fault injection
    (a fuzzer never seen catching a broken scheme proves nothing), and
    the regression trace for the split-line MRU memo bug the fuzzer
    found in the fast memory engine. *)

module Rng = Sb_machine.Rng
module Trace = Sb_fuzz.Trace
module Oracle = Sb_fuzz.Oracle
module Contract = Sb_fuzz.Contract
module Replay = Sb_fuzz.Replay
module Fuzz = Sb_fuzz.Fuzz
module Faulty = Sb_protection.Faulty

(* ---------- oracle semantics on hand traces ---------- *)

let exec_at plan i =
  match plan.Oracle.p_dispositions.(i) with
  | Oracle.Exec x -> x
  | Oracle.Skip -> Alcotest.failf "event %d unexpectedly skipped" i

let is_skip plan i = plan.Oracle.p_dispositions.(i) = Oracle.Skip

let test_oracle_skips () =
  let t : Trace.t =
    [|
      Trace.Load { id = 0; off = 0; width = 1; safe = false }; (* before alloc *)
      Trace.Alloc { id = 0; size = 32; region = Trace.Global };
      Trace.Free { id = 0 };                                   (* global: skip *)
      Trace.Alloc { id = 1; size = 16; region = Trace.Heap };
      Trace.Free { id = 1 };
      Trace.Free { id = 1 };                                   (* double free: skip *)
      Trace.Realloc { id = 1; size = 8 };                      (* freed: skip *)
      Trace.Alloc { id = 1; size = 0; region = Trace.Heap };   (* size 0: skip *)
    |]
  in
  let plan = Oracle.analyze t in
  List.iter
    (fun (i, skip) ->
       Alcotest.(check bool) (Printf.sprintf "event %d skip" i) skip (is_skip plan i))
    [ (0, true); (1, false); (2, true); (3, false); (4, false); (5, true); (6, true);
      (7, true) ];
  Alcotest.(check (option int)) "all-skip/alloc trace is safe" None
    plan.Oracle.p_first_unsafe

let test_oracle_overflow_label () =
  let t : Trace.t =
    [|
      Trace.Alloc { id = 0; size = 16; region = Trace.Heap };
      Trace.Store { id = 0; off = 8; width = 8; value = 1; safe = false };  (* exact fit *)
      Trace.Store { id = 0; off = 9; width = 8; value = 1; safe = false };  (* 1 past *)
      Trace.Load { id = 0; off = 0; width = 4; safe = false };
    |]
  in
  let plan = Oracle.analyze t in
  Alcotest.(check (option int)) "first unsafe is the overflow" (Some 2)
    plan.Oracle.p_first_unsafe;
  Alcotest.(check string) "label" "overflow" (Oracle.event_label plan 2);
  Alcotest.(check string) "exact fit is safe" "safe" (Oracle.event_label plan 1);
  (* Reads at or after the first unsafe event are never comparable. *)
  Alcotest.(check bool) "post-unsafe read masked" false (exec_at plan 3).Oracle.x_compare.(0)

let test_oracle_uaf_label () =
  let t : Trace.t =
    [|
      Trace.Alloc { id = 0; size = 16; region = Trace.Heap };
      Trace.Free { id = 0 };
      Trace.Load { id = 0; off = 0; width = 1; safe = false };
    |]
  in
  let plan = Oracle.analyze t in
  Alcotest.(check (option int)) "dangling load flagged" (Some 2) plan.Oracle.p_first_unsafe;
  Alcotest.(check string) "label" "use-after-free" (Oracle.event_label plan 2);
  let r = List.hd (exec_at plan 2).Oracle.x_ranges in
  Alcotest.(check bool) "range freed" true r.Oracle.r_freed

let test_oracle_definedness () =
  let t : Trace.t =
    [|
      Trace.Alloc { id = 0; size = 8; region = Trace.Heap };
      Trace.Load { id = 0; off = 0; width = 8; safe = false };   (* calloc: defined *)
      Trace.Realloc { id = 0; size = 32 };
      Trace.Load { id = 0; off = 0; width = 8; safe = false };   (* kept prefix *)
      Trace.Load { id = 0; off = 8; width = 8; safe = false };   (* realloc slack *)
      Trace.Store { id = 0; off = 8; width = 8; value = 7; safe = false };
      Trace.Load { id = 0; off = 8; width = 8; safe = false };   (* now written *)
    |]
  in
  let plan = Oracle.analyze t in
  Alcotest.(check (option int)) "trace is safe" None plan.Oracle.p_first_unsafe;
  let comparable i = (exec_at plan i).Oracle.x_compare.(0) in
  Alcotest.(check bool) "calloc'd bytes comparable" true (comparable 1);
  Alcotest.(check bool) "realloc'd prefix comparable" true (comparable 3);
  Alcotest.(check bool) "realloc slack not comparable" false (comparable 4);
  Alcotest.(check bool) "comparable once stored" true (comparable 6)

(* ---------- contract capabilities on hand ranges ---------- *)

let range ?(kind = Oracle.Direct) ?(freed = false) ~off ~len ~size () =
  { Oracle.r_off = off; r_len = len; r_size = size;
    r_block = Sb_machine.Util.next_pow2 (max size 16); r_kind = kind; r_freed = freed }

let covers scheme r = Contract.covers ~scheme r

let test_contract_sgxbounds () =
  Alcotest.(check bool) "upper overflow covered" true
    (covers "sgxbounds" (range ~off:98 ~len:4 ~size:100 ()));
  Alcotest.(check bool) "libc overflow covered" true
    (covers "sgxbounds" (range ~kind:Oracle.Libc ~off:0 ~len:101 ~size:100 ()));
  Alcotest.(check bool) "underflow is best-effort only" false
    (covers "sgxbounds" (range ~off:(-4) ~len:4 ~size:100 ()));
  Alcotest.(check bool) "UAF within old bounds not guaranteed" false
    (covers "sgxbounds" (range ~freed:true ~off:0 ~len:4 ~size:100 ()));
  Alcotest.(check bool) "variants share the floor" true
    (covers "sgxbounds-noopt" (range ~off:98 ~len:4 ~size:100 ()))

let test_contract_asan () =
  Alcotest.(check bool) "redzone hit covered" true
    (covers "asan" (range ~off:100 ~len:1 ~size:100 ()));
  Alcotest.(check bool) "underflow redzone covered" true
    (covers "asan" (range ~off:(-2) ~len:2 ~size:100 ()));
  Alcotest.(check bool) "wild far access not covered" false
    (covers "asan" (range ~off:500 ~len:4 ~size:100 ()));
  Alcotest.(check bool) "freed payload covered (quarantine)" true
    (covers "asan" (range ~freed:true ~off:50 ~len:4 ~size:100 ()))

let test_contract_mpx_baggy_native () =
  Alcotest.(check bool) "mpx covers direct overflow" true
    (covers "mpx" (range ~off:98 ~len:4 ~size:100 ()));
  Alcotest.(check bool) "mpx exempt on libc (no interceptors)" false
    (covers "mpx" (range ~kind:Oracle.Libc ~off:0 ~len:101 ~size:100 ()));
  (* size 100 -> 128-byte buddy block *)
  Alcotest.(check bool) "baggy: padding overflow swallowed" false
    (covers "baggy" (range ~off:100 ~len:8 ~size:100 ()));
  Alcotest.(check bool) "baggy: past the block covered" true
    (covers "baggy" (range ~off:120 ~len:16 ~size:100 ()));
  Alcotest.(check bool) "baggy: start outside block exempt" false
    (covers "baggy" (range ~off:300 ~len:4 ~size:100 ()));
  Alcotest.(check bool) "native promises nothing" false
    (covers "native" (range ~off:98 ~len:100 ~size:100 ()));
  Alcotest.(check bool) "safe accesses exempt everywhere" false
    (covers "sgxbounds" (range ~kind:Oracle.Safe_access ~off:98 ~len:4 ~size:100 ()))

(* ---------- scheme-level spot check: baggy padding tolerance ---------- *)

let test_baggy_padding_tolerance () =
  let open Sb_protection.Types in
  let m = Sb_sgx.Memsys.create (Sb_machine.Config.default ()) in
  let s = Sb_baggy.Baggy.make m in
  let p = s.Sb_protection.Scheme.malloc 100 in
  (* 100 -> 128-byte block: off 120..124 is padding, tolerated *)
  (match s.Sb_protection.Scheme.store (s.Sb_protection.Scheme.offset p 120) 4 7 with
   | () -> ()
   | exception Violation v ->
     Alcotest.failf "padding store wrongly flagged: %a" pp_violation v);
  (* off 126 + 4 runs past the block: must stop *)
  (match s.Sb_protection.Scheme.store (s.Sb_protection.Scheme.offset p 126) 4 7 with
   | () -> Alcotest.fail "out-of-block store missed"
   | exception Violation _ -> ())

(* ---------- determinism ---------- *)

let test_generate_deterministic () =
  let t1 = Trace.generate (Rng.create 42) in
  let t2 = Trace.generate (Rng.create 42) in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  let t3 = Trace.generate (Rng.create 43) in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_campaign_deterministic () =
  let r1 = Fuzz.campaign ~seed:5 ~iters:15 () in
  let r2 = Fuzz.campaign ~seed:5 ~iters:15 () in
  Alcotest.(check int) "same events generated" r1.Fuzz.rp_events r2.Fuzz.rp_events;
  Alcotest.(check bool) "same verdict" true
    (r1.Fuzz.rp_counterexample = None && r2.Fuzz.rp_counterexample = None)

(* ---------- clean campaigns ---------- *)

let check_clean name (r : Fuzz.report) =
  match r.Fuzz.rp_counterexample with
  | None -> ()
  | Some cx ->
    Alcotest.failf "%s: %a on\n%s" name Fuzz.pp_failure cx.Fuzz.cx_failure
      (Trace.to_string cx.Fuzz.cx_shrunk)

let test_clean_campaign () =
  check_clean "mixed traces" (Fuzz.campaign ~seed:2026 ~iters:40 ())

let test_all_safe_campaign () =
  let params = { Trace.default_params with Trace.p_bad = 0.0 } in
  check_clean "all-safe traces" (Fuzz.campaign ~params ~seed:7 ~iters:40 ())

let test_all_bad_campaign () =
  let params = { Trace.default_params with Trace.p_bad = 1.0 } in
  check_clean "all-violating traces" (Fuzz.campaign ~params ~seed:11 ~iters:40 ())

(* ---------- harness sanity: a broken scheme must be caught ---------- *)

let faulty_spec fault =
  {
    Fuzz.sp_name = "sgxbounds";
    sp_maker = (fun m -> Faulty.inject fault (Sgxbounds.make m));
    sp_counts_only = false;
  }

let test_fault_caught fault () =
  let specs = [ faulty_spec fault ] in
  let r = Fuzz.campaign ~specs ~seed:1 ~iters:500 () in
  match r.Fuzz.rp_counterexample with
  | None -> Alcotest.fail "broken scheme survived the campaign"
  | Some cx ->
    Alcotest.(check bool) "reported as a missed violation" true
      (cx.Fuzz.cx_failure.Fuzz.f_kind = Fuzz.Missed_violation);
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to <= 10 events (got %d)" (Array.length cx.Fuzz.cx_shrunk))
      true
      (Array.length cx.Fuzz.cx_shrunk <= 10)

(* ---------- regression: the fast-engine split-line MRU memo bug ---------- *)

(* Found by [fuzz --seed 31337]: a 4-byte store at 0x..ff spans two cache
   lines, and the fast engine's last-line memo recorded the high line as
   most-recently-used while the unspecified evaluation order of [+] had
   actually probed it first. One elided recency update later the L1 LRU
   order diverged from the naive engine and an 8-cycle delta surfaced
   three events downstream. The probe order is now pinned low-line-first
   (see Memsys.touch); this trace pins the fix. *)
let mru_memo_trace : Trace.t =
  [|
    Trace.Alloc { id = 0; size = 63; region = Trace.Global };
    Trace.Alloc { id = 7; size = 112; region = Trace.Stack };
    Trace.Alloc { id = 4; size = 101; region = Trace.Heap };
    Trace.Realloc { id = 4; size = 120 };
    Trace.Store { id = 4; off = 111; width = 4; value = 0xfaee; safe = true };
    Trace.Load { id = 4; off = 4; width = 8; safe = false };
    Trace.Store { id = 0; off = 6; width = 2; value = 0x13da; safe = false };
    Trace.Store { id = 7; off = 13; width = 2; value = 0x2cfa; safe = false };
    Trace.Realloc { id = 4; size = 94 };
  |]

let test_split_line_mru_regression () =
  match Fuzz.check_trace mru_memo_trace with
  | None -> ()
  | Some f -> Alcotest.failf "regression trace fails again: %a" Fuzz.pp_failure f

let suite =
  [
    Alcotest.test_case "oracle: inapplicable events skip" `Quick test_oracle_skips;
    Alcotest.test_case "oracle: overflow labelled, reads masked" `Quick
      test_oracle_overflow_label;
    Alcotest.test_case "oracle: use-after-free labelled" `Quick test_oracle_uaf_label;
    Alcotest.test_case "oracle: definedness tracks writes" `Quick test_oracle_definedness;
    Alcotest.test_case "contract: sgxbounds" `Quick test_contract_sgxbounds;
    Alcotest.test_case "contract: asan" `Quick test_contract_asan;
    Alcotest.test_case "contract: mpx, baggy, native" `Quick test_contract_mpx_baggy_native;
    Alcotest.test_case "baggy tolerates padding, stops past block" `Quick
      test_baggy_padding_tolerance;
    Alcotest.test_case "generator is seed-deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "campaign is seed-deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "clean campaign: mixed traces" `Slow test_clean_campaign;
    Alcotest.test_case "clean campaign: all-safe traces" `Slow test_all_safe_campaign;
    Alcotest.test_case "clean campaign: all-violating traces" `Slow test_all_bad_campaign;
    Alcotest.test_case "fault injection: elided checks caught + shrunk" `Slow
      (test_fault_caught (Faulty.Elide_every_nth 3));
    Alcotest.test_case "fault injection: deaf libc caught + shrunk" `Slow
      (test_fault_caught Faulty.Deaf_libc);
    Alcotest.test_case "regression: split-line MRU memo (engines agree)" `Quick
      test_split_line_mru_regression;
  ]
