open Helpers
module Sqlite = Sb_apps.Sqlite_sim
module Memcached = Sb_apps.Memcached_sim
module Http = Sb_apps.Http_sim
module Wctx = Sb_workloads.Wctx
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys

let ctx_of maker =
  let m = ms () in
  Wctx.make (maker m)

(* ---------- sqlite ---------- *)

let test_sqlite_insert_select () =
  List.iter
    (fun (name, maker) ->
       let ctx = ctx_of maker in
       let t = Sqlite.create ctx in
       for k = 0 to 499 do
         Sqlite.insert_row t (k * 7)
       done;
       for k = 0 to 499 do
         if not (Sqlite.select t (k * 7)) then
           Alcotest.failf "%s: key %d not found" name (k * 7)
       done;
       Alcotest.(check bool) (name ^ ": absent key") false (Sqlite.select t 999999))
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan) ]

let test_sqlite_update () =
  let ctx = ctx_of sgxb in
  let t = Sqlite.create ctx in
  for k = 0 to 99 do
    Sqlite.insert_row t k
  done;
  for k = 0 to 99 do
    Alcotest.(check bool) "update hits" true (Sqlite.update t k)
  done

let test_sqlite_duplicate_keys_overwrite () =
  let ctx = ctx_of sgxb in
  let t = Sqlite.create ctx in
  Sqlite.insert_row t 42;
  Sqlite.insert_row t 42;
  Alcotest.(check bool) "still found once" true (Sqlite.select t 42)

let test_speedtest_runs_under_all_protections () =
  List.iter
    (fun (name, maker) ->
       let ctx = ctx_of maker in
       match Sqlite.speedtest ctx ~items:200 with
       | () -> ()
       | exception Sb_protection.Types.Violation v ->
         Alcotest.failf "%s: false positive: %a" name Sb_protection.Types.pp_violation v)
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_sqlite_is_pointer_intensive_for_mpx () =
  let bts items =
    let m = ms () in
    let s = mpx m in
    let ctx = Wctx.make s in
    (match Sqlite.speedtest ctx ~items with
     | () -> ()
     | exception Sb_protection.Types.App_crash _ -> ());
    s.Sb_protection.Scheme.extras.Sb_protection.Types.bts_allocated
  in
  let small = bts 300 and big = bts 4000 in
  Alcotest.(check bool) "tables appear" true (small >= 1);
  Alcotest.(check bool) "tables grow with the working set" true (big > small + 2)

(* ---------- memcached ---------- *)

let test_memcached_get_set () =
  List.iter
    (fun (_name, maker) ->
       let ctx = ctx_of maker in
       let t = Memcached.create ~nbuckets:256 ctx in
       Memcached.set_kv t 7 100;
       Memcached.set_kv t 8 200;
       Alcotest.(check bool) "key 7" true (Memcached.get t 7);
       Alcotest.(check bool) "key 8" true (Memcached.get t 8);
       Alcotest.(check bool) "absent" false (Memcached.get t 12345))
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_memaslap_runs () =
  let ctx = ctx_of sgxb in
  let t = Memcached.create ctx in
  let elapsed, ops = Memcached.memaslap t ~keys:200 ~ops:1000 in
  Alcotest.(check int) "ops" 1000 ops;
  Alcotest.(check bool) "time advanced" true (elapsed > 0)

let test_cve_2011_4971 () =
  (* benign packet fine everywhere *)
  let benign maker =
    let ctx = ctx_of maker in
    Memcached.handle_binary_packet (Memcached.create ctx) ~body_len:256
  in
  List.iter
    (fun (name, maker) ->
       Alcotest.(check bool) (name ^ ": benign processed") true
         (benign maker = Memcached.Processed))
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ];
  (* the attack packet: negative body length *)
  let attack maker =
    let ctx = ctx_of maker in
    Memcached.handle_binary_packet (Memcached.create ctx) ~body_len:(-1024)
  in
  Alcotest.(check bool) "native: DoS (corruption or segfault)" true
    (match attack native with
     | Memcached.Corrupted | Memcached.Crashed_segfault -> true
     | _ -> false);
  List.iter
    (fun (name, maker) ->
       Alcotest.(check bool) (name ^ ": detected and dropped") true
         (attack maker = Memcached.Detected_dropped))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

(* ---------- http servers ---------- *)

let test_http_benches_run () =
  let ctx = ctx_of sgxb in
  let cyc, n = Http.apache_bench ctx ~clients:4 ~requests:40 in
  Alcotest.(check bool) "apache time" true (cyc > 0 && n >= 40);
  let ctx = ctx_of sgxb in
  let cyc, n = Http.nginx_bench ctx ~requests:32 in
  Alcotest.(check bool) "nginx time" true (cyc > 0 && n = 32)

let test_sgx_send_copy_costs () =
  (* the SCONE double copy: inside-enclave nginx pays more per request *)
  let run env =
    let m = Memsys.create (Config.default ~env ()) in
    let ctx = Wctx.make (Sb_protection.Native.make m) in
    fst (Http.nginx_bench ctx ~requests:64)
  in
  Alcotest.(check bool) "inside > outside" true
    (run Config.Inside_enclave > run Config.Outside_enclave)

let test_heartbleed () =
  let run maker =
    let ctx = ctx_of maker in
    Http.heartbeat ctx ~claimed_len:256
  in
  (match run native with
   | Http.Leaked _ -> ()
   | _ -> Alcotest.fail "native must leak the secret");
  List.iter
    (fun (name, maker) ->
       Alcotest.(check bool) (name ^ ": detected") true (run maker = Http.Detected))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ];
  (match run sgxb_boundless with
   | Http.Contained_zeros -> ()
   | Http.Leaked _ -> Alcotest.fail "boundless must not leak"
   | _ -> Alcotest.fail "boundless must answer with zeros")

let test_heartbleed_benign () =
  List.iter
    (fun (name, maker) ->
       let ctx = ctx_of maker in
       Alcotest.(check bool) (name ^ ": benign heartbeat fine") true
         (Http.heartbeat ctx ~claimed_len:16 = Http.Harmless))
    [ ("native", native); ("sgxbounds", sgxb); ("asan", asan) ]

let test_cve_2013_2028 () =
  let attack maker =
    let ctx = ctx_of maker in
    Http.chunked_request ctx ~chunk_size:0xFFFFF000
  in
  Alcotest.(check bool) "native: stack smashed" true (attack native = Http.Corrupted);
  List.iter
    (fun (name, maker) ->
       Alcotest.(check bool) (name ^ ": detected") true (attack maker = Http.Detected))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ];
  (* benign chunk *)
  let ctx = ctx_of sgxb in
  Alcotest.(check bool) "benign chunk fine" true
    (Http.chunked_request ctx ~chunk_size:64 = Http.Harmless)

let suite =
  [
    Alcotest.test_case "sqlite: insert/select correctness" `Quick test_sqlite_insert_select;
    Alcotest.test_case "sqlite: update" `Quick test_sqlite_update;
    Alcotest.test_case "sqlite: duplicate keys overwrite" `Quick test_sqlite_duplicate_keys_overwrite;
    Alcotest.test_case "sqlite: speedtest clean under all schemes" `Quick
      test_speedtest_runs_under_all_protections;
    Alcotest.test_case "sqlite: pointer-intensive for MPX" `Quick
      test_sqlite_is_pointer_intensive_for_mpx;
    Alcotest.test_case "memcached: get/set" `Quick test_memcached_get_set;
    Alcotest.test_case "memcached: memaslap driver" `Quick test_memaslap_runs;
    Alcotest.test_case "memcached: CVE-2011-4971" `Quick test_cve_2011_4971;
    Alcotest.test_case "http: benches run" `Quick test_http_benches_run;
    Alcotest.test_case "http: SCONE double copy costs" `Quick test_sgx_send_copy_costs;
    Alcotest.test_case "heartbleed outcomes" `Quick test_heartbleed;
    Alcotest.test_case "heartbleed benign request" `Quick test_heartbleed_benign;
    Alcotest.test_case "nginx CVE-2013-2028 outcomes" `Quick test_cve_2013_2028;
  ]

(* --- extended app behaviours: B-tree delete, memcached LRU eviction --- *)

let test_sqlite_delete () =
  let ctx = ctx_of sgxb in
  let t = Sqlite.create ctx in
  for k = 0 to 199 do
    Sqlite.insert_row t k
  done;
  Alcotest.(check bool) "delete hits" true (Sqlite.delete t 100);
  Alcotest.(check bool) "deleted key gone" false (Sqlite.select t 100);
  Alcotest.(check bool) "neighbours intact" true (Sqlite.select t 99 && Sqlite.select t 101);
  Alcotest.(check bool) "second delete misses" false (Sqlite.delete t 100);
  Sqlite.insert_row t 100;
  Alcotest.(check bool) "reinsert works" true (Sqlite.select t 100)

let test_sqlite_delete_frees_rows () =
  let m = ms () in
  let s = native m in
  let ctx = Sb_workloads.Wctx.make s in
  let t = Sqlite.create ctx in
  for k = 0 to 99 do
    Sqlite.insert_row t k
  done;
  let before = Sb_vmem.Vmem.reserved_bytes (Memsys.vmem m) in
  for k = 0 to 99 do
    ignore (Sqlite.delete t k)
  done;
  for k = 100 to 199 do
    Sqlite.insert_row t k
  done;
  (* freed rows are recycled: the second hundred reuses the first's rows *)
  Alcotest.(check bool) "no footprint growth from delete+insert" true
    (Sb_vmem.Vmem.reserved_bytes (Memsys.vmem m) <= before + 65536)

let test_memcached_lru_eviction () =
  let ctx = ctx_of sgxb in
  let t = Memcached.create ~nbuckets:64 ~max_items:8 ctx in
  for k = 0 to 7 do
    Memcached.set_kv t k k
  done;
  (* refresh key 0 so it is MRU, then overflow the cap *)
  Alcotest.(check bool) "key 0 present" true (Memcached.get t 0);
  Memcached.set_kv t 100 100;
  Alcotest.(check bool) "LRU victim (key 1) evicted" false (Memcached.get t 1);
  Alcotest.(check bool) "refreshed key 0 survived" true (Memcached.get t 0);
  Alcotest.(check bool) "new key present" true (Memcached.get t 100)

let test_memcached_eviction_reuses_slabs () =
  let m = ms () in
  let ctx = Sb_workloads.Wctx.make (native m) in
  let t = Memcached.create ~nbuckets:64 ~max_items:16 ctx in
  for k = 0 to 499 do
    Memcached.set_kv t k k
  done;
  (* 500 sets through a 16-item cap: memory bounded by the cap *)
  Alcotest.(check bool) "footprint bounded by the cap" true
    (Sb_vmem.Vmem.peak_reserved_bytes (Memsys.vmem m) < 1024 * 1024)

let extended_apps_suite =
  [
    Alcotest.test_case "sqlite: delete semantics" `Quick test_sqlite_delete;
    Alcotest.test_case "sqlite: delete frees rows" `Quick test_sqlite_delete_frees_rows;
    Alcotest.test_case "memcached: LRU eviction order" `Quick test_memcached_lru_eviction;
    Alcotest.test_case "memcached: eviction bounds memory" `Quick
      test_memcached_eviction_reuses_slabs;
  ]

let suite = suite @ extended_apps_suite

let test_cve_2011_4971_boundless () =
  let ctx = ctx_of sgxb_boundless in
  Alcotest.(check bool) "boundless: discarded but loops (paper §7)" true
    (Memcached.handle_binary_packet (Memcached.create ctx) ~body_len:(-1024)
     = Memcached.Survived_looping)

let boundless_cve_suite =
  [ Alcotest.test_case "memcached CVE under boundless memory" `Quick test_cve_2011_4971_boundless ]

let suite = suite @ boundless_cve_suite

(* --- model-based property tests: the apps vs OCaml reference models --- *)

type db_op = Ins of int | Del of int | Sel of int

let db_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> Ins (k land 0xFF)) int);
        (2, map (fun k -> Del (k land 0xFF)) int);
        (4, map (fun k -> Sel (k land 0xFF)) int);
      ])

let arb_db_program =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Ins k -> Printf.sprintf "I%d" k
             | Del k -> Printf.sprintf "D%d" k
             | Sel k -> Printf.sprintf "S%d" k)
           ops))
    QCheck.Gen.(list_size (int_range 1 120) db_op_gen)

let prop_sqlite_matches_reference =
  QCheck.Test.make ~name:"sqlite: agrees with a reference map on random programs"
    ~count:40 arb_db_program
    (fun ops ->
       let ctx = ctx_of sgxb in
       let t = Sqlite.create ctx in
       let reference = Hashtbl.create 64 in
       List.for_all
         (fun op ->
            match op with
            | Ins k ->
              Sqlite.insert_row t k;
              Hashtbl.replace reference k ();
              true
            | Del k ->
              let expected = Hashtbl.mem reference k in
              Hashtbl.remove reference k;
              Sqlite.delete t k = expected
            | Sel k -> Sqlite.select t k = Hashtbl.mem reference k)
         ops)

let prop_memcached_matches_reference =
  QCheck.Test.make ~name:"memcached: agrees with a reference table (no cap)"
    ~count:30 arb_db_program
    (fun ops ->
       let ctx = ctx_of sgxb in
       let t = Memcached.create ~nbuckets:64 ctx in
       let reference = Hashtbl.create 64 in
       List.for_all
         (fun op ->
            match op with
            | Ins k | Del k ->
              (* the cache has no delete; deletes double as sets *)
              Memcached.set_kv t k k;
              Hashtbl.replace reference k ();
              true
            | Sel k -> Memcached.get t k = Hashtbl.mem reference k)
         ops)

let model_suite = [ qtest prop_sqlite_matches_reference; qtest prop_memcached_matches_reference ]

let suite = suite @ model_suite

(* --- protocol conformance: golden wire traces, malformed requests, expiry --- *)

module Scone = Sb_scone.Scone

let conformance_schemes =
  [ ("native", native); ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_http_golden_wire_trace () =
  (* the response bytes on the wire are a pure function of the request,
     not of the protection scheme: every scheme serves the same page *)
  let trace maker =
    let ctx = ctx_of maker in
    let srv = Http.create_server ctx in
    let wc = Http.open_worker_conn srv in
    Http.serve_request srv wc;
    Scone.sent srv.Http.world wc.Http.wc_fd
  in
  let golden = trace native in
  Alcotest.(check int) "response is the full static page" Http.page_bytes
    (String.length golden);
  List.iter
    (fun (name, maker) ->
       Alcotest.(check string) (name ^ ": byte-identical response") golden
         (trace maker))
    conformance_schemes

let test_memcached_golden_wire_trace () =
  let trace maker =
    let ctx = ctx_of maker in
    let t = Memcached.create ~nbuckets:256 ctx in
    Memcached.set_kv t 7 7;
    let conn = Memcached.open_conn t in
    let buf = ctx.Wctx.s.Scheme.malloc 1024 in
    Memcached.serve_request t ~conn ~buf ~key:7 ~is_get:true;
    Scone.sent t.Memcached.world conn
  in
  let golden = trace native in
  Alcotest.(check int) "response carries the default value size" 96
    (String.length golden);
  Alcotest.(check string) "response echoes the request prefix"
    (String.make Memcached.request_bytes 'r')
    (String.sub golden 0 Memcached.request_bytes);
  List.iter
    (fun (name, maker) ->
       Alcotest.(check string) (name ^ ": byte-identical response") golden
         (trace maker))
    conformance_schemes

let test_sqlite_serve_query_clean () =
  List.iter
    (fun (name, maker) ->
       let ctx = ctx_of maker in
       let t = Sqlite.create ctx in
       for k = 0 to 63 do
         Sqlite.insert_row t k
       done;
       match
         Sqlite.serve_query t 5 ~is_select:true;
         Sqlite.serve_query t 6 ~is_select:false;
         Sqlite.serve_query t 9999 ~is_select:true
       with
       | () -> ()
       | exception Sb_protection.Types.Violation v ->
         Alcotest.failf "%s: false positive: %a" name Sb_protection.Types.pp_violation v)
    conformance_schemes

let test_malformed_packet_lengths () =
  (* zero-length body: trivially processed everywhere *)
  List.iter
    (fun (name, maker) ->
       let ctx = ctx_of maker in
       Alcotest.(check bool) (name ^ ": empty body processed") true
         (Memcached.handle_binary_packet (Memcached.create ctx) ~body_len:0
          = Memcached.Processed))
    conformance_schemes;
  (* oversized positive body: runs off the 1 KiB connection buffer *)
  let over maker =
    let ctx = ctx_of maker in
    Memcached.handle_binary_packet (Memcached.create ctx) ~body_len:8192
  in
  Alcotest.(check bool) "native: oversized body corrupts or crashes" true
    (over native <> Memcached.Processed);
  List.iter
    (fun (name, maker) ->
       Alcotest.(check bool) (name ^ ": oversized body dropped") true
         (over maker = Memcached.Detected_dropped))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_memcached_expiry_roundtrip () =
  let ctx = ctx_of sgxb in
  let t = Memcached.create ~nbuckets:64 ctx in
  Memcached.set_kv t 1 1;                    (* ttl 0: never expires *)
  Memcached.set_kv ~ttl:50_000 t 2 2;
  Alcotest.(check bool) "fresh item served" true (Memcached.get t 2);
  let items = Memcached.item_count t in
  Memsys.charge_alu ctx.Wctx.ms 60_000;      (* advance past the deadline *)
  Alcotest.(check bool) "expired item lazily dropped" false (Memcached.get t 2);
  Alcotest.(check int) "reclaimed on the failed get" (items - 1)
    (Memcached.item_count t);
  Alcotest.(check bool) "ttl-less item unaffected" true (Memcached.get t 1);
  Memcached.set_kv ~ttl:50_000 t 2 2;
  Alcotest.(check bool) "re-set after expiry serves again" true (Memcached.get t 2)

let conformance_suite =
  [
    Alcotest.test_case "http: golden wire trace across schemes" `Quick
      test_http_golden_wire_trace;
    Alcotest.test_case "memcached: golden wire trace across schemes" `Quick
      test_memcached_golden_wire_trace;
    Alcotest.test_case "sqlite: serve_query clean across schemes" `Quick
      test_sqlite_serve_query_clean;
    Alcotest.test_case "memcached: malformed packet lengths" `Quick
      test_malformed_packet_lengths;
    Alcotest.test_case "memcached: expiry round-trip" `Quick
      test_memcached_expiry_roundtrip;
  ]

let suite = suite @ conformance_suite
