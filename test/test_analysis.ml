(* The instrumentation auditor: §4.4 contract verification and the
   vector-clock race detector over Mt regions.

   Covers the seeded scenarios (MPX bounds-table race, annotation
   mutants), soundness corner cases (use-after-free, read checks not
   licensing writes, check extents), precision corner cases that bit us
   on real workloads (allocator address reuse across threads), the
   pure-observation guarantee (audited metrics bit-identical), and
   regression pins: every workload the auditor caught racing stays
   clean at 4 threads after its fork/join restructuring. *)

module Audit = Sb_analysis.Audit
module Analyze = Sb_analysis.Analyze
module Finding = Sb_analysis.Finding
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Scheme = Sb_protection.Scheme
module Mt = Sb_mt.Mt
open Sb_protection.Types

let with_audited ?(track_races = false) scheme f =
  let ms = Memsys.create (Config.default ()) in
  let s = Harness.maker scheme ms in
  let s', a = Audit.wrap ~track_races s in
  Fun.protect ~finally:Audit.unhook (fun () -> f s' a)

(* ---- seeded scenarios (the CLI's --selftest, run under Alcotest) ---- *)

let test_selftests () =
  List.iter
    (fun st ->
       Alcotest.(check bool)
         (st.Analyze.st_name ^ ": " ^ st.Analyze.st_detail)
         true st.Analyze.st_pass)
    (Analyze.selftests ())

(* ---- contract soundness ---- *)

let test_use_after_free_flagged () =
  with_audited "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 64 Read;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check int) "in-bounds while live" 0 (Audit.total a);
      s.Scheme.free p;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check bool) "access after free flagged" true
        (Audit.count a Finding.Unchecked_uncovered > 0))

let test_check_does_not_survive_realloc () =
  with_audited "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 64 Write;
      let q = s.Scheme.realloc p 128 in
      ignore (s.Scheme.load_unchecked q 4);
      Alcotest.(check bool) "stale check does not cover the new object"
        true
        (Audit.count a Finding.Unchecked_uncovered > 0);
      s.Scheme.free q)

let test_read_check_does_not_license_writes () =
  with_audited "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 64 Read;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check int) "read under read check is fine" 0 (Audit.total a);
      s.Scheme.store_unchecked p 4 7;
      Alcotest.(check bool) "write under read-only check flagged" true
        (Audit.count a Finding.Unchecked_uncovered > 0);
      s.Scheme.free p)

let test_write_check_licenses_reads () =
  with_audited "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 64 Write;
      s.Scheme.store_unchecked p 4 7;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check int) "write check covers both directions" 0
        (Audit.total a);
      s.Scheme.free p)

let test_check_oob_flagged () =
  with_audited "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 80 Read;
      Alcotest.(check bool) "over-long check_range flagged" true
        (Audit.count a Finding.Check_oob > 0);
      s.Scheme.free p)

let test_stack_frame_lifetime () =
  with_audited "native" (fun s a ->
      let tok = s.Scheme.stack_push () in
      let p = s.Scheme.stack_alloc 32 in
      s.Scheme.check_range p 32 Read;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check int) "live frame is fine" 0 (Audit.total a);
      s.Scheme.stack_pop tok;
      ignore (s.Scheme.load_unchecked p 4);
      Alcotest.(check bool) "access into popped frame flagged" true
        (Audit.count a Finding.Unchecked_uncovered > 0))

(* ---- race-detector precision ---- *)

let test_disjoint_parallel_writes_clean () =
  with_audited ~track_races:true "native" (fun s a ->
      let p = s.Scheme.malloc 256 in
      s.Scheme.check_range p 256 Write;
      Mt.run s.Scheme.ms
        [|
          (fun () ->
             for i = 0 to 7 do
               s.Scheme.store_unchecked (s.Scheme.offset p (i * 4)) 4 i;
               Mt.yield ()
             done);
          (fun () ->
             for i = 8 to 15 do
               s.Scheme.store_unchecked (s.Scheme.offset p (i * 4)) 4 i;
               Mt.yield ()
             done);
        |];
      Alcotest.(check int) "disjoint halves do not race" 0 (Audit.total a);
      s.Scheme.free p)

let test_sequential_between_regions_clean () =
  (* region 1 writes, the join publishes, region 2 reads: no race *)
  with_audited ~track_races:true "native" (fun s a ->
      let p = s.Scheme.malloc 64 in
      s.Scheme.check_range p 64 Write;
      Mt.run s.Scheme.ms
        [| (fun () -> s.Scheme.store_unchecked p 4 1); (fun () -> Mt.yield ()) |];
      s.Scheme.store_unchecked p 4 2;
      Mt.run s.Scheme.ms
        [|
          (fun () -> ignore (s.Scheme.load_unchecked p 4));
          (fun () -> ignore (s.Scheme.load_unchecked (s.Scheme.offset p 8) 4));
        |];
      Alcotest.(check int) "fork/join is synchronization" 0 (Audit.total a);
      s.Scheme.free p)

let test_address_reuse_not_a_race () =
  (* The swaptions false positive: thread A frees its block, a later
     allocation by thread B recycles the address. The allocator
     serializes the handoff, so the prior owner's accesses must not be
     read as conflicts. *)
  with_audited ~track_races:true "native" (fun s a ->
      let slots = Array.make 2 None in
      Mt.run s.Scheme.ms
        [|
          (fun () ->
             let p = s.Scheme.malloc 32 in
             s.Scheme.store p 4 1;
             s.Scheme.free p;
             slots.(0) <- Some (s.Scheme.addr_of p);
             Mt.yield ());
          (fun () ->
             Mt.yield ();
             let q = s.Scheme.malloc 32 in
             s.Scheme.store q 4 2;
             slots.(1) <- Some (s.Scheme.addr_of q);
             s.Scheme.free q);
        |];
      Alcotest.(check (option int))
        "the test is only meaningful if the address was recycled" slots.(0)
        slots.(1);
      Alcotest.(check int) "allocator handoff is synchronization" 0
        (Audit.total a))

let test_true_sharing_is_a_race () =
  with_audited ~track_races:true "native" (fun s a ->
      let p = s.Scheme.malloc 8 in
      Mt.run s.Scheme.ms
        [|
          (fun () -> s.Scheme.store p 4 1; Mt.yield ());
          (fun () -> s.Scheme.store p 4 2; Mt.yield ());
        |];
      Alcotest.(check bool) "same-word writes race" true
        (Audit.count a Finding.Data_race > 0);
      s.Scheme.free p)

(* ---- pure observation: audited metrics are bit-identical ---- *)

let test_audit_does_not_perturb_metrics () =
  List.iter
    (fun scheme ->
       let w = Registry.find "histogram" in
       let plain = Harness.run_one ~scheme ~n:256 w in
       let wrap s = fst (Audit.wrap ~track_races:true s) in
       let audited =
         Fun.protect ~finally:Audit.unhook (fun () ->
             Harness.run_one ~wrap ~scheme ~n:256 w)
       in
       Alcotest.(check bool)
         (scheme ^ ": audited metrics bit-identical")
         true
         (Harness.metrics_exn plain = Harness.metrics_exn audited))
    [ "native"; "sgxbounds"; "mpx" ]

(* ---- regression pins: the workloads the auditor caught ---- *)

let test_fixed_workloads_audit_clean () =
  (* wordcount mutated shared bucket chains from the map phase; dedup
     committed to the shared store from inside the region; fluidanimate
     wrote the halo field its neighbours were reading; swaptions was an
     auditor false positive (address reuse). All must stay clean at 4
     threads under a metadata-bearing scheme and a plain one. *)
  List.iter
    (fun name ->
       let w = Registry.find name in
       List.iter
         (fun scheme ->
            let c = Analyze.run_cell ~threads:4 ~scheme w in
            Alcotest.(check (option string))
              (name ^ "/" ^ scheme ^ " completes") None c.Analyze.c_crashed;
            Alcotest.(check int)
              (name ^ "/" ^ scheme ^ " audits clean at t=4")
              0 c.Analyze.c_total)
         [ "sgxbounds"; "mpx" ])
    [ "wordcount"; "fluidanimate"; "dedup"; "swaptions" ]

let test_sweep_smoke () =
  let cells =
    Analyze.sweep ~schemes:[ "native"; "sgxbounds" ]
      [ Registry.find "histogram"; Registry.find "mcf" ]
  in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  Alcotest.(check int) "no findings" 0 (Analyze.cells_findings cells);
  Alcotest.(check int) "no crashes" 0 (Analyze.cells_crashed cells);
  List.iter
    (fun c ->
       Alcotest.(check bool) "audited some operations" true (c.Analyze.c_ops > 0))
    cells

let suite =
  [
    Alcotest.test_case "selftests: seeded race and mutants" `Quick test_selftests;
    Alcotest.test_case "use-after-free access flagged" `Quick
      test_use_after_free_flagged;
    Alcotest.test_case "checks die with their object (realloc)" `Quick
      test_check_does_not_survive_realloc;
    Alcotest.test_case "read check does not license writes" `Quick
      test_read_check_does_not_license_writes;
    Alcotest.test_case "write check licenses reads" `Quick
      test_write_check_licenses_reads;
    Alcotest.test_case "over-long check_range flagged" `Quick test_check_oob_flagged;
    Alcotest.test_case "stack frames bound object lifetime" `Quick
      test_stack_frame_lifetime;
    Alcotest.test_case "races: disjoint parallel writes clean" `Quick
      test_disjoint_parallel_writes_clean;
    Alcotest.test_case "races: fork/join synchronizes" `Quick
      test_sequential_between_regions_clean;
    Alcotest.test_case "races: address reuse is not a race" `Quick
      test_address_reuse_not_a_race;
    Alcotest.test_case "races: true sharing is a race" `Quick
      test_true_sharing_is_a_race;
    Alcotest.test_case "audit is pure observation (metrics identical)" `Slow
      test_audit_does_not_perturb_metrics;
    Alcotest.test_case "fixed workloads audit clean at t=4" `Slow
      test_fixed_workloads_audit_clean;
    Alcotest.test_case "sweep smoke" `Slow test_sweep_smoke;
  ]
