open Helpers
module Registry = Sb_workloads.Registry
module Wctx = Sb_workloads.Wctx
module Memsys = Sb_sgx.Memsys

(* Small working sets: these tests check that every kernel runs cleanly
   (no false positives!) under the protecting schemes — the simulation
   analogue of "the instrumented benchmark suite compiles and runs". *)
let small_n (w : Registry.spec) = max 64 (w.Registry.default_n / 64)

let run_kernel maker (w : Registry.spec) ~threads =
  let m = ms () in
  let s = maker m in
  let ctx = Wctx.make ~threads s in
  w.Registry.run ctx ~n:(small_n w);
  (Memsys.snapshot m).Memsys.cycles

let kernel_cases =
  List.concat_map
    (fun (w : Registry.spec) ->
       [
         Alcotest.test_case (w.Registry.name ^ " runs under native") `Quick (fun () ->
             Alcotest.(check bool) "cycles > 0" true (run_kernel native w ~threads:1 > 0));
         Alcotest.test_case (w.Registry.name ^ " runs clean under sgxbounds") `Quick (fun () ->
             Alcotest.(check bool) "no violation, cycles > 0" true
               (run_kernel sgxb w ~threads:1 > 0));
         Alcotest.test_case (w.Registry.name ^ " runs clean under asan") `Quick (fun () ->
             Alcotest.(check bool) "no violation" true (run_kernel asan w ~threads:1 > 0));
       ])
    Registry.all

let mt_cases =
  List.filter_map
    (fun (w : Registry.spec) ->
       if not w.Registry.multithreaded then None
       else
         Some
           (Alcotest.test_case (w.Registry.name ^ " runs with 4 threads") `Quick (fun () ->
                Alcotest.(check bool) "parallel run ok" true
                  (run_kernel sgxb w ~threads:4 > 0))))
    Registry.all

let test_deterministic () =
  let w = Registry.find "kmeans" in
  let a = run_kernel sgxb w ~threads:2 and b = run_kernel sgxb w ~threads:2 in
  Alcotest.(check int) "identical cycle counts across runs" a b

let test_instrumentation_never_free () =
  (* Every protecting scheme must cost at least as much as native. *)
  let w = Registry.find "histogram" in
  let base = run_kernel native w ~threads:1 in
  List.iter
    (fun (name, maker) ->
       let c = run_kernel maker w ~threads:1 in
       Alcotest.(check bool) (name ^ " >= native") true (c >= base))
    [ ("sgxbounds", sgxb); ("asan", asan); ("mpx", mpx) ]

let test_pointer_intensity_flag_matches_mpx_bts () =
  (* pointer-intensive kernels make MPX allocate bounds tables;
     flat ones keep bounds in registers (no tables) *)
  List.iter
    (fun name ->
       let w = Registry.find name in
       let m = ms () in
       let s = mpx m in
       let ctx = Wctx.make ~threads:1 s in
       (match w.Registry.run ctx ~n:(small_n w) with
        | () -> ()
        | exception Sb_protection.Types.App_crash _ -> ());
       let bts = s.Sb_protection.Scheme.extras.Sb_protection.Types.bts_allocated in
       if w.Registry.pointer_intensive then
         Alcotest.(check bool) (name ^ " allocates BTs") true (bts > 0)
       else
         Alcotest.(check bool) (name ^ " stays in registers") true (bts <= 1))
    [ "pca"; "wordcount"; "mcf"; "xalancbmk"; "histogram"; "blackscholes"; "lbm" ]

let test_registry_counts () =
  Alcotest.(check int) "7 Phoenix" 7 (List.length (Registry.of_suite Registry.Phoenix));
  Alcotest.(check int) "9 PARSEC" 9 (List.length (Registry.of_suite Registry.Parsec));
  Alcotest.(check int) "13 SPEC" 13 (List.length (Registry.of_suite Registry.Spec))

let test_registry_find_unknown () =
  match Registry.find "quake3" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_more_threads_not_slower () =
  (* Parallel runs must not be slower than single-threaded ones for an
     embarrassingly parallel kernel. *)
  let w = Registry.find "blackscholes" in
  let t1 = run_kernel native w ~threads:1 in
  let t4 = run_kernel native w ~threads:4 in
  Alcotest.(check bool) "t4 < t1" true (t4 < t1)

(* ---- Wctx.parallel edge cases ---- *)

let parallel_ctx threads =
  let m = ms () in
  Wctx.make ~threads (native m)

let covered_ranges ctx n =
  (* collect every (lo, hi) a worker actually received *)
  let got = ref [] in
  Wctx.parallel ctx n (fun t lo hi -> got := (t, lo, hi) :: !got);
  List.rev !got

let test_parallel_zero_items () =
  List.iter
    (fun threads ->
       let ctx = parallel_ctx threads in
       let calls = covered_ranges ctx 0 in
       List.iter
         (fun (_, lo, hi) ->
            Alcotest.(check bool) "no non-empty range for n=0" true (lo >= hi))
         calls)
    [ 1; 4 ]

let test_parallel_fewer_items_than_threads () =
  let ctx = parallel_ctx 4 in
  let calls = covered_ranges ctx 2 in
  let items =
    List.concat_map (fun (_, lo, hi) -> List.init (max 0 (hi - lo)) (fun i -> lo + i)) calls
  in
  Alcotest.(check (list int)) "each item exactly once, in order" [ 0; 1 ]
    (List.sort compare items)

let test_parallel_uneven_partition () =
  (* n not divisible by threads: every index covered exactly once, no
     overlap, empty tails allowed *)
  List.iter
    (fun n ->
       let ctx = parallel_ctx 3 in
       let calls = covered_ranges ctx n in
       let seen = Array.make (max 1 n) 0 in
       List.iter
         (fun (_, lo, hi) ->
            for i = lo to hi - 1 do
              seen.(i) <- seen.(i) + 1
            done)
         calls;
       Array.iteri
         (fun i c ->
            if i < n then
              Alcotest.(check int) (Printf.sprintf "n=%d item %d once" n i) 1 c)
         seen)
    [ 1; 5; 7; 64 ]

let test_parallel_inline_when_single_threaded () =
  (* threads=1 must not enter the scheduler: one call covering [0, n) *)
  let ctx = parallel_ctx 1 in
  let calls = covered_ranges ctx 10 in
  Alcotest.(check int) "one call" 1 (List.length calls);
  match calls with
  | [ (t, lo, hi) ] ->
    Alcotest.(check int) "thread 0" 0 t;
    Alcotest.(check int) "lo" 0 lo;
    Alcotest.(check int) "hi" 10 hi
  | _ -> Alcotest.fail "expected exactly one inline call"

let suite =
  kernel_cases @ mt_cases
  @ [
      Alcotest.test_case "parallel: n=0 runs no items" `Quick test_parallel_zero_items;
      Alcotest.test_case "parallel: n < threads" `Quick
        test_parallel_fewer_items_than_threads;
      Alcotest.test_case "parallel: uneven partition covers once" `Quick
        test_parallel_uneven_partition;
      Alcotest.test_case "parallel: inline when threads=1" `Quick
        test_parallel_inline_when_single_threaded;
      Alcotest.test_case "runs are deterministic" `Quick test_deterministic;
      Alcotest.test_case "instrumentation never free" `Quick test_instrumentation_never_free;
      Alcotest.test_case "pointer-intensity flags match MPX BTs" `Quick
        test_pointer_intensity_flag_matches_mpx_bts;
      Alcotest.test_case "registry has 7+9+13 workloads" `Quick test_registry_counts;
      Alcotest.test_case "unknown workload rejected" `Quick test_registry_find_unknown;
      Alcotest.test_case "parallel runs scale" `Quick test_more_threads_not_slower;
    ]
