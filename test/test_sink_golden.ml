(** Golden tests for the telemetry exporters.

    A hand-built {!Sb_telemetry.Sink.snapshot} is rendered through each
    exporter and compared against committed output, so accidental format
    drift (a renamed JSON key, a reordered CSV column, a lost Chrome
    [pid]) fails a named test instead of silently breaking downstream
    consumers (spreadsheets, Perfetto). JSON comparisons are
    whitespace-normalized: the pretty-printer's line breaks depend on
    the box margin, which is not part of the format. *)

module Sink = Sb_telemetry.Sink
module Events = Sb_telemetry.Events
module Json = Sb_telemetry.Json

let snap =
  {
    Sink.counters = [ ("checks_done", 42); ("epc_faults", 3) ];
    histograms =
      [
        ( "access_cycles:data",
          { Sink.h_count = 3; h_sum = 30; h_mean = 10.0; h_max = 20; h_p50 = 8; h_p99 = 20 }
        );
      ];
    events =
      [
        { Events.ts = 5; tid = 0; name = "epc_fault"; cat = "epc"; ph = Events.Instant;
          args = [ ("page", "0x2a") ] };
        { Events.ts = 9; tid = 1; name = "phase"; cat = "run"; ph = Events.Complete 7;
          args = [] };
      ];
    dropped_events = 1;
  }

(* Collapse all whitespace runs to single spaces: pretty-printer line
   breaks are layout, not format. *)
let normalize s =
  String.split_on_char ' ' (String.map (function '\n' | '\t' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")
  |> String.concat " "

let check_normalized name expected actual =
  Alcotest.(check string) name (normalize expected) (normalize actual)

let test_csv () =
  Alcotest.(check string) "counters csv"
    "metric,value\nchecks_done,42\nepc_faults,3\naccess_cycles:data.sum,30\n"
    (Sink.counters_csv snap)

let test_flat_json () =
  check_normalized "flat json"
    {|{"counters":{"checks_done":42, "epc_faults":3},
       "histograms":{"access_cycles:data":{"count":3, "sum":30, "mean":10.0,
       "p50":8, "p99":20, "max":20}}, "events":[{"name":"epc_fault", "cat":"epc",
       "ts":5, "tid":0, "ph":"i", "args":{"page":"0x2a"}}, {"name":"phase",
       "cat":"run", "ts":9, "tid":1, "ph":"X", "dur":7, "args":{}}],
       "dropped_events":1}|}
    (Json.to_string (Sink.to_json snap))

let test_chrome_trace () =
  check_normalized "chrome trace_event json"
    {|{"traceEvents":[{"name":"process_name", "ph":"M", "pid":1, "tid":0,
       "args":{"name":"sgxbounds-sim"}}, {"name":"epc_fault", "cat":"epc", "ts":5,
       "tid":0, "ph":"i", "args":{"page":"0x2a"}, "pid":1}, {"name":"phase",
       "cat":"run", "ts":9, "tid":1, "ph":"X", "dur":7, "args":{}, "pid":1}],
       "displayTimeUnit":"ms",
       "otherData":{"dropped_events":1}}|}
    (Json.to_string (Sink.chrome_trace snap))

let test_chrome_process_name_override () =
  let j = Json.to_string (Sink.chrome_trace ~process_name:"bench-7" snap) in
  Alcotest.(check bool) "custom process name present" true
    (let norm = normalize j in
     let needle = {|"args":{"name":"bench-7"}|} in
     let rec find i =
       i + String.length needle <= String.length norm
       && (String.sub norm i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_empty_snapshot_exports () =
  let empty = { Sink.counters = []; histograms = []; events = []; dropped_events = 0 } in
  Alcotest.(check string) "empty csv is just the header" "metric,value\n"
    (Sink.counters_csv empty);
  check_normalized "empty flat json"
    {|{"counters":{}, "histograms":{}, "events":[], "dropped_events":0}|}
    (Json.to_string (Sink.to_json empty))

let suite =
  [
    Alcotest.test_case "counters_csv golden" `Quick test_csv;
    Alcotest.test_case "flat json golden" `Quick test_flat_json;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace;
    Alcotest.test_case "chrome trace process name" `Quick test_chrome_process_name_override;
    Alcotest.test_case "empty snapshot exports" `Quick test_empty_snapshot_exports;
  ]
