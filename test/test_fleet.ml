(** Fleet failover pyramid: kill-and-restart determinism across all
    three memory engines and any [--jobs], balancer shedding under
    overload, the consistent-hash ring's golden assignments and bounded
    remap, and the per-instance histogram merge against the pooled exact
    reference. *)

module Fleet = Sb_service.Fleet
module Ycsb = Sb_service.Ycsb
module Latency = Sb_service.Latency
module Loadgen = Sb_service.Loadgen
module Spans = Sb_service.Spans
module Histogram = Sb_telemetry.Metrics.Histogram
module Fastpath = Sb_machine.Fastpath
module Rng = Sb_machine.Rng

(* A small but busy fleet with two mid-run kills: enough load that the
   kills land while requests are queued and in flight. *)
let failover_cfg =
  {
    Fleet.default with
    Fleet.instances = 3;
    workers = 1;
    queue_cap = 32;
    requests = 400;
    rate_rps = 2_500_000.;
    seed = 11;
    workload = Ycsb.B;
    records = 512;
    kills = [ (0, 100_000); (2, 200_000) ];
  }

let run_ok ?spans cfg =
  match Fleet.run ?spans cfg with
  | Ok st -> st
  | Error msg -> Alcotest.failf "fleet run crashed: %s" msg

(* ---------- failover determinism ---------- *)

let test_engines_agree () =
  let fps =
    List.map
      (fun kind -> Fastpath.with_kind kind (fun () -> Fleet.fingerprint (run_ok failover_cfg)))
      [ Fastpath.Naive; Fastpath.Fast; Fastpath.Trace ]
  in
  match fps with
  | [ naive; fast; trace ] ->
    Alcotest.(check string) "fast agrees with naive" naive fast;
    Alcotest.(check string) "trace agrees with naive" naive trace
  | _ -> assert false

let test_jobs_invariant () =
  (* the same two configs swept on one domain and on two *)
  let cfgs = [ failover_cfg; { failover_cfg with Fleet.policy = Fleet.Least_loaded } ] in
  let fp outcome =
    match outcome with
    | Ok st -> Fleet.fingerprint st
    | Error msg -> "error: " ^ msg
  in
  let one = List.map fp (Fleet.sweep ~jobs:1 cfgs) in
  let two = List.map fp (Fleet.sweep ~jobs:2 cfgs) in
  List.iteri
    (fun i (a, b) -> Alcotest.(check string) (Printf.sprintf "cell %d" i) a b)
    (List.combine one two)

let test_failover_accounting () =
  let st = run_ok ~spans:4 failover_cfg in
  Alcotest.(check int) "offered = completed + dropped + lost" st.Fleet.offered
    (st.Fleet.completed + st.Fleet.dropped + st.Fleet.lost);
  Alcotest.(check int) "both kills restarted an instance" 2 st.Fleet.restarts;
  Alcotest.(check bool) "the kills disturbed the run" true
    (st.Fleet.lost + st.Fleet.failed_over > 0);
  Alcotest.(check int) "merged latency count = completed" st.Fleet.completed
    (Histogram.count st.Fleet.latency);
  Array.iter
    (fun (i : Fleet.inst_stats) ->
       Alcotest.(check int)
         (Printf.sprintf "instance %d: spans recorded = completed" i.Fleet.i_idx)
         i.Fleet.i_completed
         (match i.Fleet.i_spans with Some log -> Spans.recorded log | None -> -1))
    st.Fleet.per_instance;
  let inst_sum f = Array.fold_left (fun a i -> a + f i) 0 st.Fleet.per_instance in
  Alcotest.(check int) "per-instance completions add up" st.Fleet.completed
    (inst_sum (fun i -> i.Fleet.i_completed));
  Alcotest.(check int) "per-instance losses add up" st.Fleet.lost
    (inst_sum (fun i -> i.Fleet.i_lost))

(* ---------- overload sheds at the balancer ---------- *)

let test_overload_sheds () =
  let cfg =
    {
      Fleet.default with
      Fleet.instances = 2;
      workers = 1;
      queue_cap = 8;
      requests = 300;
      rate_rps = 5_000_000.;
      process = Loadgen.Fixed;
      seed = 3;
      records = 256;
      policy = Fleet.Round_robin;
    }
  in
  let st = run_ok cfg in
  Alcotest.(check bool) "overload sheds" true (st.Fleet.dropped > 0);
  Alcotest.(check int) "accounting closes" st.Fleet.offered
    (st.Fleet.completed + st.Fleet.dropped + st.Fleet.lost);
  Array.iter
    (fun (i : Fleet.inst_stats) ->
       Alcotest.(check bool)
         (Printf.sprintf "instance %d 's queue stays bounded" i.Fleet.i_idx)
         true
         (i.Fleet.i_max_queue <= cfg.Fleet.queue_cap))
    st.Fleet.per_instance;
  Alcotest.(check bool) "server kept serving while shedding" true
    (st.Fleet.completed > 0)

(* ---------- consistent-hash ring ---------- *)

let test_ring_golden () =
  (* key->shard is a pure function: pinned assignments for 4 instances *)
  let r4 = Fleet.Ring.make 4 in
  List.iter
    (fun (k, want) ->
       Alcotest.(check int) (Printf.sprintf "owner of key %d" k) want
         (Fleet.Ring.owner r4 k))
    [ (0, 2); (1, 2); (2, 2); (3, 2); (42, 0); (1000, 1); (9999, 2) ];
  (* and stable across independent ring constructions *)
  let r4' = Fleet.Ring.make 4 in
  for k = 0 to 999 do
    Alcotest.(check int) "stable across runs" (Fleet.Ring.owner r4 k)
      (Fleet.Ring.owner r4' k)
  done

let test_ring_remap_bounded () =
  let nkeys = 10_000 in
  let r4 = Fleet.Ring.make 4 and r5 = Fleet.Ring.make 5 in
  let moved = ref 0 in
  for k = 0 to nkeys - 1 do
    let a = Fleet.Ring.owner r4 k and b = Fleet.Ring.owner r5 k in
    if a <> b then begin
      incr moved;
      (* consistent hashing: a key only ever moves TO the new instance *)
      Alcotest.(check int) (Printf.sprintf "key %d moved to the new instance" k) 4 b
    end
  done;
  let frac = float_of_int !moved /. float_of_int nkeys in
  (* expected ~1/5 of the key space; 64 vnodes keeps it near that *)
  Alcotest.(check bool)
    (Printf.sprintf "remapped fraction %.3f within [0.10, 0.30]" frac)
    true
    (frac >= 0.10 && frac <= 0.30)

let test_ring_alive_walk () =
  let r4 = Fleet.Ring.make 4 in
  (* with everyone alive, the walk is the owner *)
  Alcotest.(check bool) "alive walk = owner" true
    (Fleet.Ring.owner_alive r4 ~alive:(fun _ -> true) 42 = Some (Fleet.Ring.owner r4 42));
  (* with the owner dead, keys land on a different live instance *)
  let dead = Fleet.Ring.owner r4 42 in
  (match Fleet.Ring.owner_alive r4 ~alive:(fun i -> i <> dead) 42 with
   | Some o -> Alcotest.(check bool) "fails over to a live instance" true (o <> dead)
   | None -> Alcotest.fail "no live instance found");
  Alcotest.(check bool) "all dead gives None" true
    (Fleet.Ring.owner_alive r4 ~alive:(fun _ -> false) 42 = None)

(* ---------- Latency.merge vs the pooled exact reference ---------- *)

let test_merge_matches_pooled_exact () =
  let rng = Rng.create 17 in
  let shards =
    List.init 4 (fun i ->
        (Histogram.create (Printf.sprintf "shard%d" i),
         Array.init (200 + (i * 57)) (fun _ -> Rng.int rng 2_000_000)))
  in
  List.iter (fun (h, samples) -> Array.iter (Histogram.observe h) samples) shards;
  let merged = Latency.merge "merged" (List.map fst shards) in
  let pooled = Array.concat (List.map snd shards) in
  Alcotest.(check int) "merged count = pooled count" (Array.length pooled)
    (Histogram.count merged);
  Alcotest.(check int) "merged sum = pooled sum"
    (Array.fold_left ( + ) 0 pooled)
    (Histogram.sum merged);
  Alcotest.(check int) "merged max = pooled max"
    (Array.fold_left max 0 pooled)
    (Histogram.max_value merged);
  (* the interp-vs-exact bound carries over to the pooled reference *)
  List.iter
    (fun q ->
       let exact = Latency.exact_percentile pooled q in
       let est = Histogram.quantile_interp merged q in
       Alcotest.(check bool)
         (Printf.sprintf "q=%.2f: merged estimate %d within 2x of pooled exact %d" q
            est exact)
         true
         (est <= (2 * exact) + 2
          && exact <= (2 * est) + 2
          && est <= Histogram.max_value merged))
    [ 0.50; 0.95; 0.99; 1.0 ]

(* ---------- policies ---------- *)

let test_policy_parsing () =
  List.iter
    (fun n ->
       match Fleet.policy_of_string n with
       | Some p -> Alcotest.(check string) "roundtrip" n (Fleet.policy_name p)
       | None -> Alcotest.failf "listed policy %s not parsed" n)
    Fleet.policy_names;
  Alcotest.(check bool) "unknown rejected" true (Fleet.policy_of_string "random" = None)

let test_policies_all_complete () =
  List.iter
    (fun policy ->
       let cfg =
         { failover_cfg with Fleet.policy; kills = []; affinity = policy <> Fleet.Hash }
       in
       let st = run_ok cfg in
       Alcotest.(check int)
         (Printf.sprintf "policy %s: everything accounted" (Fleet.policy_name policy))
         st.Fleet.offered
         (st.Fleet.completed + st.Fleet.dropped + st.Fleet.lost))
    [ Fleet.Round_robin; Fleet.Least_loaded; Fleet.Hash ]

let suite =
  [
    Alcotest.test_case "failover: engines agree bit-for-bit" `Quick test_engines_agree;
    Alcotest.test_case "failover: --jobs 1 = --jobs 2" `Quick test_jobs_invariant;
    Alcotest.test_case "failover: accounting and spans" `Quick test_failover_accounting;
    Alcotest.test_case "overload sheds at the balancer" `Quick test_overload_sheds;
    Alcotest.test_case "ring: golden key->shard assignments" `Quick test_ring_golden;
    Alcotest.test_case "ring: add-instance remap is bounded" `Quick test_ring_remap_bounded;
    Alcotest.test_case "ring: alive walk fails over" `Quick test_ring_alive_walk;
    Alcotest.test_case "merge matches pooled exact percentiles" `Quick
      test_merge_matches_pooled_exact;
    Alcotest.test_case "policy parsing roundtrips" `Quick test_policy_parsing;
    Alcotest.test_case "all policies close the accounting" `Quick
      test_policies_all_complete;
  ]
