(** Property tests for the YCSB-style workload generator: seeded
    determinism, A–F mix ratios, key-distribution skew, and record-id
    bounds (inserts extend the key space; every key stays inside it). *)

module Ycsb = Sb_service.Ycsb

let gen ?dist ?(records = 10_000) ?(n = 20_000) ~seed workload =
  Ycsb.generate ?dist ~seed ~workload ~records ~n ()

(* ---------- determinism ---------- *)

let prop_deterministic =
  QCheck.Test.make ~name:"same seed, same stream; streams are pure" ~count:30
    QCheck.(pair small_nat (int_range 0 5))
    (fun (seed, wi) ->
       let w = List.nth Ycsb.all wi in
       let ops1, fin1 = gen ~records:512 ~n:400 ~seed w in
       let ops2, fin2 = gen ~records:512 ~n:400 ~seed w in
       ops1 = ops2 && fin1 = fin2)

let test_seeds_differ () =
  let ops1, _ = gen ~seed:1 Ycsb.A in
  let ops2, _ = gen ~seed:2 Ycsb.A in
  Alcotest.(check bool) "different seeds give different streams" true (ops1 <> ops2)

(* ---------- mix ratios ---------- *)

let fractions ops =
  let n = float_of_int (Array.length ops) in
  let count p = float_of_int (Array.length (Array.of_list (List.filter p (Array.to_list ops)))) /. n in
  ( count (function Ycsb.Read _ -> true | _ -> false),
    count (function Ycsb.Update _ -> true | _ -> false),
    count (function Ycsb.Insert _ -> true | _ -> false),
    count (function Ycsb.Scan _ -> true | _ -> false),
    count (function Ycsb.Rmw _ -> true | _ -> false) )

let test_mix_ratios () =
  (* 20k draws: binomial noise is well under 1%, use a 2% tolerance *)
  let tol = 0.02 in
  List.iter
    (fun w ->
       let m = Ycsb.mix w in
       let ops, _ = gen ~seed:7 w in
       let r, u, i, s, f = fractions ops in
       List.iter
         (fun (what, got, want) ->
            Alcotest.(check bool)
              (Printf.sprintf "workload %s: %s fraction %.3f within %.2f of %.2f"
                 (Ycsb.name w) what got tol want)
              true
              (Float.abs (got -. want) <= tol))
         [ ("read", r, m.Ycsb.m_read); ("update", u, m.Ycsb.m_update);
           ("insert", i, m.Ycsb.m_insert); ("scan", s, m.Ycsb.m_scan);
           ("rmw", f, m.Ycsb.m_rmw) ])
    Ycsb.all

(* ---------- key-distribution skew ---------- *)

let read_keys ops =
  List.filter_map (function Ycsb.Read k -> Some k | _ -> None) (Array.to_list ops)

let mass_below keys bound =
  let hits = List.length (List.filter (fun k -> k < bound) keys) in
  float_of_int hits /. float_of_int (List.length keys)

let test_zipfian_top1pct () =
  (* theta-0.99 zipfian over 10k keys puts the majority of the mass on
     the top 1% of ranks (~0.53 analytically); uniform puts ~1% there *)
  let ops, _ = gen ~seed:3 Ycsb.C in
  let keys = read_keys ops in
  let top = mass_below keys 100 in
  Alcotest.(check bool)
    (Printf.sprintf "zipfian top-1%% key mass %.3f >= 0.40" top)
    true (top >= 0.40);
  let ops_u, _ = gen ~dist:Ycsb.Uniform ~seed:3 Ycsb.C in
  let u = mass_below (read_keys ops_u) 100 in
  Alcotest.(check bool)
    (Printf.sprintf "uniform top-1%% key mass %.3f <= 0.03" u)
    true (u <= 0.03)

let test_latest_skew () =
  (* workload D reads cluster at the tail of the (growing) key space:
     rank-r from the latest insert, so rank < 100 means key >= cur-101
     >= records-101 *)
  let records = 10_000 in
  let ops, fin = gen ~records ~seed:5 Ycsb.D in
  Alcotest.(check bool) "inserts grew the key space" true (fin > records);
  let keys = read_keys ops in
  let tail = List.length (List.filter (fun k -> k >= records - 101) keys) in
  let frac = float_of_int tail /. float_of_int (List.length keys) in
  Alcotest.(check bool)
    (Printf.sprintf "latest: %.3f of reads within 100 of the newest record" frac)
    true (frac >= 0.40)

(* ---------- record-id bounds ---------- *)

let prop_bounds =
  QCheck.Test.make ~name:"every key within the record space of its time" ~count:30
    QCheck.(pair small_nat (int_range 0 5))
    (fun (seed, wi) ->
       let w = List.nth Ycsb.all wi in
       let records = 512 in
       let ops, fin = gen ~records ~n:600 ~seed w in
       let cur = ref records in
       let ok = ref true in
       Array.iter
         (fun op ->
            (match op with
             | Ycsb.Insert k ->
               (* inserts take exactly the next fresh id *)
               if k <> !cur then ok := false;
               incr cur
             | Ycsb.Read k | Ycsb.Update k | Ycsb.Rmw k ->
               if k < 0 || k >= !cur then ok := false
             | Ycsb.Scan (k, len) ->
               (* scans are clipped to the live key space *)
               if k < 0 || k >= !cur then ok := false;
               if len < 1 && !cur - k >= 1 then ok := false;
               if len > Ycsb.max_scan_len then ok := false;
               if k + len > !cur then ok := false);
            if Ycsb.op_key op < 0 then ok := false)
         ops;
       !ok && fin = !cur)

let test_names_roundtrip () =
  List.iter
    (fun w ->
       match Ycsb.of_string (Ycsb.name w) with
       | Some w' -> Alcotest.(check string) "roundtrip" (Ycsb.name w) (Ycsb.name w')
       | None -> Alcotest.failf "workload %s not parsed back" (Ycsb.name w))
    Ycsb.all;
  Alcotest.(check bool) "lowercase accepted" true (Ycsb.of_string "f" = Some Ycsb.F);
  Alcotest.(check bool) "unknown rejected" true (Ycsb.of_string "G" = None);
  Alcotest.(check bool) "dist roundtrip" true
    (List.for_all
       (fun d -> Ycsb.dist_of_string (Ycsb.dist_name d) = Some d)
       [ Ycsb.Uniform; Ycsb.Zipfian; Ycsb.Latest ])

let suite =
  [
    Helpers.qtest prop_deterministic;
    Alcotest.test_case "different seeds diverge" `Quick test_seeds_differ;
    Alcotest.test_case "A-F mix ratios within tolerance" `Quick test_mix_ratios;
    Alcotest.test_case "zipfian vs uniform top-1% mass" `Quick test_zipfian_top1pct;
    Alcotest.test_case "latest clusters at the newest records" `Quick test_latest_skew;
    Helpers.qtest prop_bounds;
    Alcotest.test_case "name/dist parsing roundtrips" `Quick test_names_roundtrip;
  ]
