open Helpers
module Vmem = Sb_vmem.Vmem

let create () = Vmem.create (cfg ())

let test_map_returns_aligned () =
  let vm = create () in
  let a = Vmem.map vm ~len:100 ~perm:Vmem.Read_write () in
  Alcotest.(check int) "page aligned" 0 (a mod Vmem.page_size)

let test_rw_widths () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  List.iter
    (fun (w, v) ->
       Vmem.store vm ~addr:(a + 8) ~width:w v;
       Alcotest.(check int) (Printf.sprintf "width %d" w) v (Vmem.load vm ~addr:(a + 8) ~width:w))
    [ (1, 0xAB); (2, 0xBEEF); (4, 0xDEADBEEF); (8, 0x1234_5678_9ABC) ]

let test_little_endian () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  Vmem.store vm ~addr:a ~width:4 0x11223344;
  Alcotest.(check int) "low byte first" 0x44 (Vmem.load vm ~addr:a ~width:1);
  Alcotest.(check int) "high byte last" 0x11 (Vmem.load vm ~addr:(a + 3) ~width:1)

let test_page_crossing () =
  let vm = create () in
  let a = Vmem.map vm ~len:(2 * 4096) ~perm:Vmem.Read_write () in
  let addr = a + 4096 - 3 in
  Vmem.store vm ~addr ~width:8 0x0102030405060708;
  Alcotest.(check int) "cross-page roundtrip" 0x0102030405060708
    (Vmem.load vm ~addr ~width:8)

let test_unmapped_faults () =
  let vm = create () in
  Alcotest.check_raises "unmapped load"
    (Vmem.Fault { addr = 0x100; kind = Vmem.Unmapped })
    (fun () -> ignore (Vmem.load vm ~addr:0x100 ~width:1))

let test_guard_faults () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Guard () in
  Alcotest.check_raises "guard hit"
    (Vmem.Fault { addr = a; kind = Vmem.Guard_hit })
    (fun () -> ignore (Vmem.load vm ~addr:a ~width:1))

let test_readonly_faults_writes () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_only () in
  ignore (Vmem.load vm ~addr:a ~width:1);
  Alcotest.check_raises "ro write"
    (Vmem.Fault { addr = a; kind = Vmem.Write_to_ro })
    (fun () -> Vmem.store vm ~addr:a ~width:1 1)

let test_protect_changes_perm () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  Vmem.protect vm ~addr:a ~len:4096 ~perm:Vmem.Guard;
  (match Vmem.load vm ~addr:a ~width:1 with
   | _ -> Alcotest.fail "expected fault"
   | exception Vmem.Fault _ -> ());
  Vmem.protect vm ~addr:a ~len:4096 ~perm:Vmem.Read_write;
  ignore (Vmem.load vm ~addr:a ~width:1)

let test_unmap () =
  let vm = create () in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  let before = Vmem.reserved_bytes vm in
  Vmem.unmap vm ~addr:a ~len:8192;
  Alcotest.(check int) "reserved decreases" (before - 8192) (Vmem.reserved_bytes vm);
  Alcotest.(check bool) "no longer mapped" false (Vmem.is_mapped vm a)

let test_peak_tracking () =
  let vm = create () in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  Vmem.unmap vm ~addr:a ~len:8192;
  ignore (Vmem.map vm ~len:4096 ~perm:Vmem.Read_write ());
  Alcotest.(check int) "peak is high-water mark" 8192 (Vmem.peak_reserved_bytes vm)

let test_oom_limit () =
  let vm = create () in
  let limit = (cfg ()).Sb_machine.Config.enclave_mem_limit in
  (match Vmem.map vm ~len:(limit + 4096) ~perm:Vmem.Read_write () with
   | _ -> Alcotest.fail "expected Enclave_oom"
   | exception Vmem.Enclave_oom _ -> ())

let test_fixed_map_overlap_rejected () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  (match Vmem.map vm ~addr:a ~len:4096 ~perm:Vmem.Read_write () with
   | _ -> Alcotest.fail "expected overlap rejection"
   | exception Invalid_argument _ -> ())

let test_blit_and_strings () =
  let vm = create () in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  Vmem.write_string vm ~addr:a "hello, enclave";
  Vmem.blit vm ~src:a ~dst:(a + 4096 - 4) ~len:14;
  Alcotest.(check string) "blit across pages" "hello, enclave"
    (Vmem.read_string vm ~addr:(a + 4096 - 4) ~len:14)

let test_blit_overlap () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  Vmem.write_string vm ~addr:a "abcdef";
  Vmem.blit vm ~src:a ~dst:(a + 2) ~len:6;
  Alcotest.(check string) "memmove semantics" "ababcdef"
    (Vmem.read_string vm ~addr:a ~len:8)

let test_fill () =
  let vm = create () in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  Vmem.fill vm ~addr:(a + 10) ~len:20 ~byte:0x7F;
  Alcotest.(check int) "filled" 0x7F (Vmem.load vm ~addr:(a + 29) ~width:1);
  Alcotest.(check int) "boundary untouched" 0 (Vmem.load vm ~addr:(a + 30) ~width:1)

let prop_roundtrip =
  QCheck.Test.make ~name:"vmem store/load roundtrip" ~count:200
    QCheck.(pair (int_bound 4000) (int_bound 0xFFFF))
    (fun (off, v) ->
       let vm = create () in
       let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
       Vmem.store vm ~addr:(a + off) ~width:2 v;
       Vmem.load vm ~addr:(a + off) ~width:2 = v)

let prop_disjoint_writes =
  QCheck.Test.make ~name:"disjoint writes do not interfere" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (o1, o2) ->
       QCheck.assume (abs (o1 - o2) >= 4);
       let vm = create () in
       let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
       Vmem.store vm ~addr:(a + o1) ~width:4 0xAAAAAAAA;
       Vmem.store vm ~addr:(a + o2) ~width:4 0x55555555;
       Vmem.load vm ~addr:(a + o1) ~width:4 = 0xAAAAAAAA)

let suite =
  [
    Alcotest.test_case "map returns page-aligned address" `Quick test_map_returns_aligned;
    Alcotest.test_case "store/load all widths" `Quick test_rw_widths;
    Alcotest.test_case "little-endian layout" `Quick test_little_endian;
    Alcotest.test_case "page-crossing access" `Quick test_page_crossing;
    Alcotest.test_case "unmapped access faults" `Quick test_unmapped_faults;
    Alcotest.test_case "guard page faults" `Quick test_guard_faults;
    Alcotest.test_case "read-only write faults" `Quick test_readonly_faults_writes;
    Alcotest.test_case "protect changes permissions" `Quick test_protect_changes_perm;
    Alcotest.test_case "unmap releases reservation" `Quick test_unmap;
    Alcotest.test_case "peak reserved is a high-water mark" `Quick test_peak_tracking;
    Alcotest.test_case "enclave memory limit enforced" `Quick test_oom_limit;
    Alcotest.test_case "fixed-address overlap rejected" `Quick test_fixed_map_overlap_rejected;
    Alcotest.test_case "blit and string io" `Quick test_blit_and_strings;
    Alcotest.test_case "overlapping blit is memmove" `Quick test_blit_overlap;
    Alcotest.test_case "fill stays in range" `Quick test_fill;
    qtest prop_roundtrip;
    qtest prop_disjoint_writes;
  ]

(* --- additional edge cases --- *)

let test_map_at_top_of_address_space () =
  let vm = create () in
  let top = (1 lsl Vmem.addr_bits) - Vmem.page_size in
  let a = Vmem.map vm ~addr:top ~len:Vmem.page_size ~perm:Vmem.Read_write () in
  Vmem.store vm ~addr:(a + Vmem.page_size - 8) ~width:8 77;
  Alcotest.(check int) "top page usable" 77
    (Vmem.load vm ~addr:(a + Vmem.page_size - 8) ~width:8)

let test_protect_unmapped_faults () =
  let vm = create () in
  match Vmem.protect vm ~addr:0x200000 ~len:4096 ~perm:Vmem.Guard with
  | () -> Alcotest.fail "expected fault"
  | exception Vmem.Fault _ -> ()

let test_negative_address_faults () =
  let vm = create () in
  match Vmem.load vm ~addr:(-8) ~width:4 with
  | _ -> Alcotest.fail "expected fault"
  | exception Vmem.Fault _ -> ()

let test_headroom_accounting () =
  let vm = create () in
  let before = Vmem.headroom vm in
  ignore (Vmem.map vm ~len:8192 ~perm:Vmem.Read_write ());
  Alcotest.(check int) "headroom shrinks by the mapping" (before - 8192) (Vmem.headroom vm)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"write_string/read_string roundtrip" ~count:100
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun s ->
       let vm = create () in
       let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
       Vmem.write_string vm ~addr:a s;
       Vmem.read_string vm ~addr:a ~len:(String.length s) = s)

let extra_suite =
  [
    Alcotest.test_case "map at top of address space" `Quick test_map_at_top_of_address_space;
    Alcotest.test_case "protect on unmapped faults" `Quick test_protect_unmapped_faults;
    Alcotest.test_case "negative address faults" `Quick test_negative_address_faults;
    Alcotest.test_case "headroom accounting" `Quick test_headroom_accounting;
    qtest prop_string_roundtrip;
  ]

(* PR 2 regressions: allocator scan accounting and the unmap contract. *)

let page = Vmem.page_size
let num_pages = (Vmem.addr_mask + 1) / page

let test_find_gap_behind_long_run () =
  (* Regression: the next-fit scan used to advance its give-up counter by
     [npages] per candidate start, so walking a long mapped run burned
     the whole budget and raised Enclave_oom while a real gap sat right
     behind the run. A 4000-page blocker followed by a 256-page request
     must find the gap just after the blocker. *)
  let vm = create () in
  let blocker = Vmem.map vm ~addr:(16 * page) ~len:(4000 * page) ~perm:Vmem.Read_write () in
  Alcotest.(check int) "blocker at requested addr" (16 * page) blocker;
  let a = Vmem.map vm ~len:(256 * page) ~perm:Vmem.Read_write () in
  Alcotest.(check int) "gap found right behind the run" ((16 + 4000) * page) a

let test_find_gap_wraps_past_top () =
  (* Push the next-fit cursor to the very top of the address space, then
     allocate: the scan must wrap, skip a blocker at the bottom, and
     land just behind it — terminating rather than spinning or raising. *)
  let vm = Vmem.create (cfg ~scale:1 ()) in
  let chunk = 4096 in
  (* One short of a full sweep: cursor ends at page 16 + 127*4096 with
     fewer than [chunk] pages of headroom left above it. *)
  for _ = 1 to (num_pages / chunk) - 1 do
    let a = Vmem.map vm ~len:(chunk * page) ~perm:Vmem.Read_write () in
    Vmem.unmap vm ~addr:a ~len:(chunk * page)
  done;
  ignore (Vmem.map vm ~addr:(16 * page) ~len:(64 * page) ~perm:Vmem.Read_write ());
  (* [chunk] pages no longer fit above the cursor, so the scan must wrap
     to the bottom and land right behind the blocker. *)
  let a = Vmem.map vm ~len:(chunk * page) ~perm:Vmem.Read_write () in
  Alcotest.(check int) "wrapped and skipped the blocker" (80 * page) a

let test_unmap_holes_accounting () =
  (* The documented contract: unmap is idempotent and hole-tolerant, and
     reserved_bytes moves only for pages that were actually mapped. *)
  let vm = create () in
  let base = Vmem.reserved_bytes vm in
  let a = Vmem.map vm ~len:(8 * page) ~perm:Vmem.Read_write () in
  Alcotest.(check int) "8 pages reserved" (base + (8 * page)) (Vmem.reserved_bytes vm);
  Vmem.unmap vm ~addr:(a + (3 * page)) ~len:(2 * page);
  Alcotest.(check int) "hole releases exactly 2 pages" (base + (6 * page))
    (Vmem.reserved_bytes vm);
  (* Unmapping the whole range again releases only the 6 still mapped. *)
  Vmem.unmap vm ~addr:a ~len:(8 * page);
  Alcotest.(check int) "re-unmap over holes never double-frees" base
    (Vmem.reserved_bytes vm);
  Vmem.unmap vm ~addr:a ~len:(8 * page);
  Alcotest.(check int) "unmap is idempotent" base (Vmem.reserved_bytes vm);
  (* Remapping into the freed hole re-reserves exactly what was released. *)
  let b = Vmem.map vm ~addr:(a + (3 * page)) ~len:(2 * page) ~perm:Vmem.Read_write () in
  Alcotest.(check int) "remap lands in the hole" (a + (3 * page)) b;
  Alcotest.(check int) "remap re-reserves exactly 2 pages" (base + (2 * page))
    (Vmem.reserved_bytes vm)

let pr2_suite =
  [
    Alcotest.test_case "find_gap: gap behind a long mapped run" `Quick
      test_find_gap_behind_long_run;
    Alcotest.test_case "find_gap: wraps past the top and terminates" `Quick
      test_find_gap_wraps_past_top;
    Alcotest.test_case "unmap: holes, idempotence, reserved accounting" `Quick
      test_unmap_holes_accounting;
  ]

let suite = suite @ extra_suite @ pr2_suite
