open Helpers
module Epc = Sb_sgx.Epc
module Config = Sb_machine.Config
module Vmem = Sb_vmem.Vmem

let test_epc_hit_after_fault () =
  let e = Epc.create ~capacity_pages:4 () in
  Alcotest.(check bool) "first touch faults" false (Epc.touch e ~page:1);
  Alcotest.(check bool) "then resident" true (Epc.touch e ~page:1)

let test_epc_capacity_respected () =
  let e = Epc.create ~capacity_pages:4 () in
  for p = 0 to 9 do
    ignore (Epc.touch e ~page:p)
  done;
  Alcotest.(check int) "resident never exceeds capacity" 4 (Epc.resident_pages e)

let test_epc_eviction_cycles () =
  let e = Epc.create ~capacity_pages:2 () in
  ignore (Epc.touch e ~page:1);
  ignore (Epc.touch e ~page:2);
  ignore (Epc.touch e ~page:3);            (* evicts someone *)
  Alcotest.(check int) "three faults so far" 3 (Epc.faults e);
  (* Touching all three again must fault at least once. *)
  ignore (Epc.touch e ~page:1);
  ignore (Epc.touch e ~page:2);
  ignore (Epc.touch e ~page:3);
  Alcotest.(check bool) "thrash faults" true (Epc.faults e > 3)

let test_epc_clear () =
  let e = Epc.create ~capacity_pages:2 () in
  ignore (Epc.touch e ~page:1);
  Epc.clear e;
  Alcotest.(check int) "cleared" 0 (Epc.resident_pages e);
  Alcotest.(check bool) "faults again" false (Epc.touch e ~page:1)

let test_memsys_inside_pays_more_than_outside () =
  (* A working set far beyond every cache: inside the enclave each DRAM
     access pays the MEE premium. *)
  let run env =
    let m = ms ~env () in
    let vm = Memsys.vmem m in
    let len = 4 * 1024 * 1024 in
    let a = Vmem.map vm ~len ~perm:Vmem.Read_write () in
    for i = 0 to (len / 64) - 1 do
      ignore (Memsys.load m ~addr:(a + (i * 64)) ~width:4)
    done;
    (Memsys.snapshot m).Memsys.cycles
  in
  let inside = run Config.Inside_enclave and outside = run Config.Outside_enclave in
  Alcotest.(check bool) "MEE premium" true (inside > outside * 3 / 2)

let test_memsys_epc_thrashing_counts_faults () =
  let m = ms () in
  let c = Memsys.cfg m in
  let vm = Memsys.vmem m in
  (* Working set = 2x EPC, random-ish strided sweep, twice. *)
  let len = 2 * c.Config.epc_bytes in
  let a = Vmem.map vm ~len ~perm:Vmem.Read_write () in
  for _pass = 1 to 2 do
    let i = ref 0 in
    while !i < len do
      ignore (Memsys.load m ~addr:(a + !i) ~width:4);
      i := !i + 4096
    done
  done;
  Alcotest.(check bool) "EPC faults observed" true (Memsys.epc_faults m > len / 4096)

let test_memsys_small_ws_no_faults_after_warmup () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  for _ = 1 to 100 do
    ignore (Memsys.load m ~addr:a ~width:8)
  done;
  Alcotest.(check int) "one fault only (warmup)" 1 (Memsys.epc_faults m)

let test_memsys_outside_never_faults () =
  let m = ms ~env:Config.Outside_enclave () in
  let vm = Memsys.vmem m in
  let len = 8 * 1024 * 1024 in
  let a = Vmem.map vm ~len ~perm:Vmem.Read_write () in
  let i = ref 0 in
  while !i < len do
    ignore (Memsys.load m ~addr:(a + !i) ~width:4);
    i := !i + 4096
  done;
  Alcotest.(check int) "no EPC outside" 0 (Memsys.epc_faults m)

let test_charge_alu_advances_clock () =
  let m = ms () in
  let before = (Memsys.snapshot m).Memsys.cycles in
  Memsys.charge_alu m 123;
  let after = (Memsys.snapshot m).Memsys.cycles in
  Alcotest.(check int) "cycles advance" 123 (after - before);
  Alcotest.(check int) "instrs counted" 123 (Memsys.snapshot m).Memsys.instrs

let test_thread_clocks_independent () =
  let m = ms () in
  Memsys.set_thread m 1;
  Memsys.charge_alu m 50;
  Memsys.set_thread m 2;
  Memsys.charge_alu m 80;
  Alcotest.(check int) "thread 1 clock" 50 (Memsys.get_clock m 1);
  Alcotest.(check int) "thread 2 clock" 80 (Memsys.get_clock m 2);
  Alcotest.(check int) "elapsed is max" 80 (Memsys.snapshot m).Memsys.cycles

let test_touch_line_crossing_costs_two () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  Memsys.reset m;
  (* Warm both lines. *)
  Memsys.touch m ~addr:(a + 60) ~width:8;
  let c0 = Memsys.get_clock m 0 in
  Memsys.touch m ~addr:(a + 60) ~width:8;   (* crosses lines 0 and 1, both warm *)
  let cost_crossing = Memsys.get_clock m 0 - c0 in
  Memsys.touch m ~addr:a ~width:8;
  let cost_single = Memsys.get_clock m 0 - c0 - cost_crossing in
  Alcotest.(check int) "two L1 hits vs one" (2 * cost_single) cost_crossing

let test_reset_clears_stats_not_data () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Vmem.map vm ~len:4096 ~perm:Vmem.Read_write () in
  ignore (Memsys.store m ~addr:a ~width:4 42);
  Memsys.reset m;
  Alcotest.(check int) "stats cleared" 0 (Memsys.snapshot m).Memsys.mem_accesses;
  Alcotest.(check int) "data survives" 42 (Vmem.load vm ~addr:a ~width:4)

let suite =
  [
    Alcotest.test_case "EPC: hit after fault" `Quick test_epc_hit_after_fault;
    Alcotest.test_case "EPC: capacity respected" `Quick test_epc_capacity_respected;
    Alcotest.test_case "EPC: eviction under pressure" `Quick test_epc_eviction_cycles;
    Alcotest.test_case "EPC: clear" `Quick test_epc_clear;
    Alcotest.test_case "inside enclave pays MEE premium" `Quick test_memsys_inside_pays_more_than_outside;
    Alcotest.test_case "EPC thrashing counts faults" `Quick test_memsys_epc_thrashing_counts_faults;
    Alcotest.test_case "small working set: warmup faults only" `Quick test_memsys_small_ws_no_faults_after_warmup;
    Alcotest.test_case "outside enclave never EPC-faults" `Quick test_memsys_outside_never_faults;
    Alcotest.test_case "charge_alu advances clock" `Quick test_charge_alu_advances_clock;
    Alcotest.test_case "thread clocks independent; elapsed is max" `Quick test_thread_clocks_independent;
    Alcotest.test_case "line-crossing access costs two lines" `Quick test_touch_line_crossing_costs_two;
    Alcotest.test_case "reset clears stats, keeps data" `Quick test_reset_clears_stats_not_data;
  ]

let test_touch_range_counts_lines () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  Memsys.reset m;
  Memsys.touch_range m ~addr:a ~len:640; (* exactly 10 lines *)
  Alcotest.(check int) "one access event per line" 10 (Memsys.snapshot m).Memsys.mem_accesses

let test_blit_costs_both_sides () =
  let m = ms () in
  let vm = Memsys.vmem m in
  let a = Vmem.map vm ~len:8192 ~perm:Vmem.Read_write () in
  Memsys.reset m;
  Memsys.blit m ~src:a ~dst:(a + 4096) ~len:256;
  Alcotest.(check int) "4 src + 4 dst lines" 8 (Memsys.snapshot m).Memsys.mem_accesses

let extra_suite =
  [
    Alcotest.test_case "touch_range counts lines" `Quick test_touch_range_counts_lines;
    Alcotest.test_case "blit costs both sides" `Quick test_blit_costs_both_sides;
  ]

let suite = suite @ extra_suite
