(** AddressSanitizer model (§2.2, Figure 3a/4b), as adapted for SGX
    enclaves in §5.2 of the paper:

    - shadow memory: one shadow byte per 8 application bytes, at
      [shadow_base + (addr >> 3)]; the 32-bit mode's fixed 512 MiB
      (scaled) shadow arena is reserved at start-up — exactly the
      constant memory overhead the paper charges ASan with;
    - every check performs a *real* load of the shadow byte through the
      cache/EPC model — the cache pollution and EPC thrashing that the
      evaluation attributes to ASan arise from this traffic;
    - redzones around every object, poisoned in shadow;
    - a size-capped quarantine delays reuse of freed chunks (detecting
      use-after-free and double free, and inflating footprints under
      churn — the paper's swaptions blow-up);
    - libc interceptors check the whole buffer range (so ASan catches
      strcpy/memcpy overflows, unlike the paper's MPX setup);
    - leak detection is disabled (as in the paper's SCONE port).

    Shadow byte values: 0 addressable; 1..7 first-k-bytes addressable;
    0xFA redzone; 0xFD freed. *)

module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
module Base = Sb_protection.Base
open Sb_protection.Types

let sh_rz = 0xFA
let sh_freed = 0xFD

(** Run-time flags (ASAN_OPTIONS analogues). [redzone]: bytes of poison
    on each side of every object. [quarantine_cap]: *real-world* bytes
    of freed memory held back from reuse (scaled by the machine config;
    0 disables the quarantine — and with it use-after-free detection,
    the classic tradeoff). Leak detection is permanently off, as in the
    paper's SCONE port (§5.2). *)
type opts = {
  redzone : int;
  quarantine_cap : int;
}

let default_opts = { redzone = 16; quarantine_cap = 256 * 1024 * 1024 }

type shadow = {
  ms : Memsys.t;
  base : int;              (* shadow arena base address *)
  covered : int;           (* app bytes covered by the eager arena *)
  mutable lazy_pages : int; (* extra shadow pages mapped beyond the arena *)
}

let shadow_addr sh addr = sh.base + (addr lsr 3)

(* Map shadow pages beyond the eager arena on demand (the arena covers
   the configured enclave limit already, so this is a rare safety net for
   high addresses such as the guard page). *)
let ensure sh addr =
  if addr >= sh.covered then begin
    let sa = shadow_addr sh addr in
    let vm = Memsys.vmem sh.ms in
    if not (Vmem.is_mapped vm sa) then begin
      let page = sa land lnot (Vmem.page_size - 1) in
      ignore (Vmem.map vm ~addr:page ~len:Vmem.page_size ~perm:Vmem.Read_write ());
      sh.lazy_pages <- sh.lazy_pages + 1
    end
  end

let shadow_load sh addr =
  ensure sh addr;
  Memsys.load ~cls:Memsys.Shadow sh.ms ~addr:(shadow_addr sh addr) ~width:1

(* Set the shadow of [len] app bytes to [byte]; costed as shadow-range
   traffic. [cls] lets the free path attribute its poisoning to the
   quarantine instead. *)
let poison_range ?(cls = Memsys.Shadow) sh addr len byte =
  if len > 0 then begin
    ensure sh addr;
    ensure sh (addr + len - 1);
    let s0 = shadow_addr sh addr and s1 = shadow_addr sh (addr + len - 1) in
    Memsys.touch_range ~cls sh.ms ~addr:s0 ~len:(s1 - s0 + 1);
    let vm = Memsys.vmem sh.ms in
    for a = s0 to s1 do
      Vmem.store vm ~addr:a ~width:1 byte
    done
  end

(* Unpoison an object of [size] bytes: full granules 0, trailing partial
   granule holds the number of addressable bytes. *)
let unpoison_object sh addr size =
  poison_range sh addr size 0;
  if size land 7 <> 0 then begin
    let last = addr + (size land lnot 7) in
    ensure sh last;
    Vmem.store (Memsys.vmem sh.ms) ~addr:(shadow_addr sh last) ~width:1 (size land 7)
  end

type quarantine = {
  q : (int * int) Queue.t;   (* payload addr, chunk bytes *)
  mutable bytes : int;
  cap : int;
}

let make ?(opts = default_opts) ms : Scheme.t =
  let cfg = Memsys.cfg ms in
  let redzone = max 8 (Sb_machine.Util.align_up opts.redzone 8) in
  let base = Base.create ms in
  let heap = base.Base.heap in
  let extras = fresh_extras () in
  let vm = Memsys.vmem ms in
  (* The fixed 512 MiB (scaled) shadow arena of 32-bit ASan. It covers
     app addresses up to 8x its size, i.e. the whole enclave limit. *)
  let arena = Sb_machine.Config.scaled cfg (512 * 1024 * 1024) in
  let arena = Sb_machine.Util.align_up arena Vmem.page_size in
  let sh_base = Vmem.map vm ~len:arena ~perm:Vmem.Read_write () in
  let sh = { ms; base = sh_base; covered = arena * 8; lazy_pages = 0 } in
  let quar = { q = Queue.create (); bytes = 0; cap = (if opts.quarantine_cap = 0 then 0 else Sb_machine.Config.scaled cfg opts.quarantine_cap) } in

  let report addr access width reason =
    raise (Violation { scheme = "asan"; addr; access; width; lo = 0; hi = 0; reason })
  in

  (* One shadow-byte check covers an 8-byte granule; accesses that cross
     a granule check the last byte too. *)
  let check addr width access =
    extras.checks_done <- extras.checks_done + 1;
    Memsys.charge_alu ms 2;
    let s = shadow_load sh addr in
    let bad s k =
      (* nonzero shadow: partial granule allows first s bytes *)
      s >= 8 || k >= s
    in
    if s <> 0 && bad s ((addr land 7) + width - 1) then
      report addr access width
        (if s = sh_freed then "use after free" else "redzone/poisoned access")
    else if (addr land 7) + width > 8 then begin
      let last = addr + width - 1 in
      let s2 = shadow_load sh last in
      Memsys.charge_alu ms 1;
      if s2 <> 0 && bad s2 (last land 7) then
        report addr access width
          (if s2 = sh_freed then "use after free" else "redzone/poisoned access")
    end
  in

  let malloc size =
    let a = Sb_alloc.Freelist.alloc heap (size + (2 * redzone)) in
    let payload = a + redzone in
    poison_range sh a redzone sh_rz;
    (* The right redzone's poison starts at the next granule boundary;
       the shared tail granule keeps the object's partial-byte count. *)
    let rz_start = Sb_machine.Util.align_up (payload + size) 8 in
    poison_range sh rz_start (payload + size + redzone - rz_start) sh_rz;
    unpoison_object sh payload size;
    extras.redzone_bytes <- extras.redzone_bytes + (2 * redzone);
    { v = payload; bnd = None }
  in
  let really_free payload =
    let chunk = payload - redzone in
    if Sb_alloc.Freelist.is_live heap chunk then Sb_alloc.Freelist.free heap chunk
  in
  let free p =
    let payload = p.v in
    let chunk = payload - redzone in
    if not (Sb_alloc.Freelist.is_live heap chunk) then
      report payload Write 0 "invalid free (wild pointer or double free)"
    else begin
      let s = shadow_load sh payload in
      if s = sh_freed then report payload Write 0 "double free"
      else begin
        let size = Sb_alloc.Freelist.chunk_size heap chunk - (2 * redzone) in
        poison_range ~cls:Memsys.Quarantine sh payload size sh_freed;
        (* Quarantine: delay the real free; evict oldest beyond the cap. *)
        Queue.push (payload, size + (2 * redzone)) quar.q;
        quar.bytes <- quar.bytes + size + (2 * redzone);
        extras.quarantine_bytes <- quar.bytes;
        while quar.bytes > quar.cap && not (Queue.is_empty quar.q) do
          let old_payload, old_bytes = Queue.pop quar.q in
          quar.bytes <- quar.bytes - old_bytes;
          really_free old_payload
        done
      end
    end
  in
  let calloc n size =
    let p = malloc (n * size) in
    Memsys.fill ms ~addr:p.v ~len:(n * size) ~byte:0;
    p
  in
  let realloc p size =
    if p.v = 0 then malloc size
    else begin
      let old_size = Sb_alloc.Freelist.chunk_size heap (p.v - redzone) - (2 * redzone) in
      let q = malloc size in
      Memsys.blit ms ~src:p.v ~dst:q.v ~len:(min old_size size);
      free p;
      q
    end
  in
  let load p width =
    check p.v width Read;
    Memsys.load ms ~addr:p.v ~width
  in
  let store p width v =
    check p.v width Write;
    Memsys.store ms ~addr:p.v ~width v
  in
  let raw_load p width = Memsys.load ms ~addr:p.v ~width in
  let raw_store p width v = Memsys.store ms ~addr:p.v ~width v in
  let libc_check p len access =
    (* Interceptor checks the whole range through shadow. *)
    if len > 0 then begin
      extras.checks_done <- extras.checks_done + 1;
      let s0 = shadow_addr sh p.v and s1 = shadow_addr sh (p.v + len - 1) in
      ensure sh p.v;
      ensure sh (p.v + len - 1);
      Memsys.touch_range ~cls:Memsys.Shadow ms ~addr:s0 ~len:(s1 - s0 + 1);
      Memsys.charge_alu ms ((s1 - s0 + 1) / 8 + 2);
      let vm = Memsys.vmem ms in
      for a = p.v to p.v + len - 1 do
        let s = Vmem.load vm ~addr:(shadow_addr sh a) ~width:1 in
        if s <> 0 && (s >= 8 || a land 7 >= s) then
          raise
            (Violation
               { scheme = "asan"; addr = a; access; width = len; lo = 0; hi = 0;
                 reason = "interceptor: poisoned byte in buffer range" })
      done
    end
  in
  let stack_frames : (int * (int * int) list ref) list ref = ref [] in
  {
    Scheme.name = "asan";
    ms;
    extras;
    malloc;
    calloc;
    realloc;
    free;
    global =
      (fun size ->
         let a = Sb_alloc.Bump.alloc base.Base.globals (size + (2 * redzone)) in
         let payload = a + redzone in
         poison_range sh a redzone sh_rz;
         let rz_start = Sb_machine.Util.align_up (payload + size) 8 in
         poison_range sh rz_start (payload + size + redzone - rz_start) sh_rz;
         unpoison_object sh payload size;
         extras.redzone_bytes <- extras.redzone_bytes + (2 * redzone);
         { v = payload; bnd = None });
    stack_push =
      (fun () ->
         let tok = Sb_alloc.Stackmem.push_frame (Base.stack base) in
         stack_frames := (tok, ref []) :: !stack_frames;
         tok);
    stack_alloc =
      (fun size ->
         let a = Sb_alloc.Stackmem.alloc (Base.stack base) (size + (2 * redzone)) in
         let payload = a + redzone in
         poison_range sh a redzone sh_rz;
         let rz_start = Sb_machine.Util.align_up (payload + size) 8 in
         poison_range sh rz_start (payload + size + redzone - rz_start) sh_rz;
         unpoison_object sh payload size;
         extras.redzone_bytes <- extras.redzone_bytes + (2 * redzone);
         (match !stack_frames with
          | (_, vars) :: _ -> vars := (a, size + (2 * redzone)) :: !vars
          | [] -> ());
         { v = payload; bnd = None });
    stack_pop =
      (fun tok ->
         (* Unpoison the frame's shadow so reused stack memory is clean. *)
         (match !stack_frames with
          | (t, vars) :: rest when t = tok ->
            List.iter (fun (a, len) -> poison_range sh a len 0) !vars;
            stack_frames := rest
          | _ -> ());
         Sb_alloc.Stackmem.pop_frame (Base.stack base) tok);
    offset = (fun p delta -> { p with v = p.v + delta });
    addr_of = (fun p -> p.v);
    load;
    store;
    safe_load =
      (fun p width ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_load p width);
    safe_store =
      (fun p width v ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_store p width v);
    (* No per-object bounds: ASan cannot hoist checks out of loops. *)
    check_range = (fun _ _ _ -> ());
    load_unchecked = load;
    store_unchecked = store;
    load_ptr =
      (fun p ->
         check p.v 8 Read;
         { v = Memsys.load ms ~addr:p.v ~width:8; bnd = None });
    store_ptr =
      (fun p q ->
         check p.v 8 Write;
         Memsys.store ms ~addr:p.v ~width:8 q.v);
    load_ptr_unchecked =
      (fun p ->
         check p.v 8 Read;
         { v = Memsys.load ms ~addr:p.v ~width:8; bnd = None });
    store_ptr_unchecked =
      (fun p q ->
         check p.v 8 Write;
         Memsys.store ms ~addr:p.v ~width:8 q.v);
    libc_check;
    libc_touch = Scheme.no_touch;
  }
