(** Baggy Bounds baseline (§2.2 of the paper).

    Baggy Bounds Checking enforces *allocation* bounds: the buddy
    allocator makes every object a power-of-two block aligned to its own
    size, and a compact size table (one byte of log2-size per 16-byte
    slot) lets the check derive base and bounds from the pointer alone.
    Consequences faithfully modelled:

    - checks read one size-table byte through the cache (less traffic
      than ASan's shadow, more than SGXBounds' in-object footer);
    - out-of-bounds accesses that stay within the block's power-of-two
      padding are *not* detected (allocation-bounds, not object-bounds);
    - internal fragmentation plus the 1/16 table give the ~12% memory
      overhead the paper quotes.

    The paper could not compare against the real implementation (not
    public); this model serves as the "tagged-scheme outside SGX"
    reference point for Figure 12 discussions. *)

module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

let slot = 16

let make ?(region_bytes = 8 * 1024 * 1024) ms : Scheme.t =
  let extras = fresh_extras () in
  let buddy = Sb_alloc.Buddy.create ms ~region_bytes in
  (* The size table: one byte per 16-byte slot of the buddy region. *)
  let region = Sb_machine.Util.next_pow2 region_bytes in
  let heap_base =
    (* Buddy mapped its region first; derive its base via a probe alloc. *)
    let p = Sb_alloc.Buddy.alloc buddy slot in
    let b = p in
    Sb_alloc.Buddy.free buddy p;
    b
  in
  let table_base = Vmem.map (Memsys.vmem ms) ~len:(region / slot) ~perm:Vmem.Read_write () in
  let table_addr addr = table_base + ((addr - heap_base) / slot) in
  let set_size addr size =
    let order = Sb_machine.Util.log2_floor size in
    let n = Sb_machine.Util.ceil_div size slot in
    Memsys.touch_range ~cls:Memsys.Bounds_table ms ~addr:(table_addr addr) ~len:n;
    let vm = Memsys.vmem ms in
    for i = 0 to n - 1 do
      Vmem.store vm ~addr:(table_addr addr + i) ~width:1 order
    done
  in
  let stacks_and_globals_block size =
    (* Baggy's prototype covers heap (and stack in the 2017 paper); we
       allocate globals and stack from the same buddy region so bounds
       derivation stays uniform. *)
    let a = Sb_alloc.Buddy.alloc buddy (max size slot) in
    set_size a (Sb_alloc.Buddy.block_size buddy a);
    { v = a; bnd = None }
  in
  let check p width access =
    extras.checks_done <- extras.checks_done + 1;
    Memsys.charge_alu ms 3;
    let order = Memsys.load ~cls:Memsys.Bounds_table ms ~addr:(table_addr p.v) ~width:1 in
    if order = 0 then
      raise
        (Violation
           { scheme = "baggy"; addr = p.v; access; width; lo = 0; hi = 0;
             reason = "no allocation covers this address" })
    else begin
      let size = 1 lsl order in
      let base = p.v land lnot (size - 1) in
      if p.v + width > base + size then
        raise
          (Violation
             { scheme = "baggy"; addr = p.v; access; width; lo = base; hi = base + size;
               reason = "allocation bounds violated" })
    end
  in
  let malloc size =
    let a = Sb_alloc.Buddy.alloc buddy (max size slot) in
    set_size a (Sb_alloc.Buddy.block_size buddy a);
    { v = a; bnd = None }
  in
  let free p =
    if Sb_alloc.Buddy.is_live buddy p.v then begin
      let size = Sb_alloc.Buddy.block_size buddy p.v in
      let n = Sb_machine.Util.ceil_div size slot in
      let vm = Memsys.vmem ms in
      for i = 0 to n - 1 do
        Vmem.store vm ~addr:(table_addr p.v + i) ~width:1 0
      done;
      Sb_alloc.Buddy.free buddy p.v
    end
  in
  let calloc n size =
    let p = malloc (n * size) in
    Memsys.fill ms ~addr:p.v ~len:(n * size) ~byte:0;
    p
  in
  let realloc p size =
    if p.v = 0 then malloc size
    else begin
      let old_size = Sb_alloc.Buddy.block_size buddy p.v in
      let q = malloc size in
      Memsys.blit ms ~src:p.v ~dst:q.v ~len:(min old_size size);
      free p;
      q
    end
  in
  let load p width =
    check p width Read;
    Memsys.load ms ~addr:p.v ~width
  in
  let store p width v =
    check p width Write;
    Memsys.store ms ~addr:p.v ~width v
  in
  let frames : (int list ref * int) list ref = ref [] in
  {
    Scheme.name = "baggy";
    ms;
    extras;
    malloc;
    calloc;
    realloc;
    free;
    global = stacks_and_globals_block;
    stack_push =
      (fun () ->
         let tok = List.length !frames in
         frames := (ref [], tok) :: !frames;
         tok);
    stack_alloc =
      (fun size ->
         let p = stacks_and_globals_block size in
         (match !frames with
          | (vars, _) :: _ -> vars := p.v :: !vars
          | [] -> ());
         p);
    stack_pop =
      (fun tok ->
         match !frames with
         | (vars, t) :: rest when t = tok ->
           List.iter (fun a -> free { v = a; bnd = None }) !vars;
           frames := rest
         | _ -> ());
    offset =
      (fun p delta ->
         Memsys.charge_alu ms 1;
         { p with v = p.v + delta });
    addr_of = (fun p -> p.v);
    load;
    store;
    safe_load =
      (fun p width ->
         extras.checks_elided <- extras.checks_elided + 1;
         Memsys.load ms ~addr:p.v ~width);
    safe_store =
      (fun p width v ->
         extras.checks_elided <- extras.checks_elided + 1;
         Memsys.store ms ~addr:p.v ~width v);
    check_range = (fun _ _ _ -> ());
    load_unchecked = load;
    store_unchecked = store;
    load_ptr =
      (fun p ->
         check p 8 Read;
         { v = Memsys.load ms ~addr:p.v ~width:8; bnd = None });
    store_ptr =
      (fun p q ->
         check p 8 Write;
         Memsys.store ms ~addr:p.v ~width:8 q.v);
    load_ptr_unchecked =
      (fun p -> { v = Memsys.load ms ~addr:p.v ~width:8; bnd = None });
    store_ptr_unchecked =
      (fun p q -> Memsys.store ms ~addr:p.v ~width:8 q.v);
    libc_check = (fun p len access -> if len > 0 then check p len access);
    libc_touch = Scheme.no_touch;
  }
