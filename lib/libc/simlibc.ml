(** The simulated (uninstrumented) libc plus per-scheme wrappers.

    Mirrors the paper's structure (§3.2 "Function calls"): libc itself is
    not instrumented; every scheme supplies a wrapper policy through
    [Scheme.libc_check], applied to whole buffer arguments before the raw
    body runs. SGXBounds and ASan check; the paper's MPX setup does not —
    which decides several RIPE outcomes and the real-exploit case
    studies.

    All functions operate on simulated memory via {!Sb_sgx.Memsys}, so
    their traffic is costed. [strcpy]/[strlen] intentionally trust the
    terminator they find, like the real thing: with an unterminated
    string they read right past the object — the classic information
    leak. *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

let ms (s : Scheme.t) = s.Scheme.ms

(** Raw (unchecked) strlen in simulated memory: scans for NUL. *)
let raw_strlen s p =
  let m = ms s in
  let a0 = s.Scheme.addr_of p in
  let rec go i = if Memsys.load m ~addr:(a0 + i) ~width:1 = 0 then i else go (i + 1) in
  go 0

(** strlen(3): the wrapper can only check that the *start* is valid — the
    length is the result, not an input. *)
let strlen s p =
  s.Scheme.libc_check p 1 Read;
  s.Scheme.libc_touch "strlen" p 1 Read;
  (* the terminator scan itself is trusted, like the real thing *)
  raw_strlen s p

(** memcpy(3): wrapper checks both whole buffers, then one raw copy. *)
let memcpy s ~dst ~src ~len =
  if len > 0 then begin
    s.Scheme.libc_check src len Read;
    s.Scheme.libc_check dst len Write;
    s.Scheme.libc_touch "memcpy" src len Read;
    s.Scheme.libc_touch "memcpy" dst len Write;
    Memsys.blit (ms s) ~src:(s.Scheme.addr_of src) ~dst:(s.Scheme.addr_of dst) ~len
  end

(** memmove(3) — same semantics here since {!Memsys.blit} is overlap-safe. *)
let memmove = memcpy

(** memset(3). *)
let memset s ~dst ~byte ~len =
  if len > 0 then begin
    s.Scheme.libc_check dst len Write;
    s.Scheme.libc_touch "memset" dst len Write;
    Memsys.fill (ms s) ~addr:(s.Scheme.addr_of dst) ~len ~byte
  end

(** strcpy(3): length comes from the source's terminator — the canonical
    overflow primitive. The wrapper checks the source read and the
    destination write for that discovered length. *)
let strcpy s ~dst ~src =
  let n = raw_strlen s src in
  s.Scheme.libc_check src (n + 1) Read;
  s.Scheme.libc_check dst (n + 1) Write;
  s.Scheme.libc_touch "strcpy" src (n + 1) Read;
  s.Scheme.libc_touch "strcpy" dst (n + 1) Write;
  Memsys.blit (ms s) ~src:(s.Scheme.addr_of src) ~dst:(s.Scheme.addr_of dst) ~len:(n + 1);
  n

(** strncpy(3). *)
let strncpy s ~dst ~src ~len =
  let n = min len (raw_strlen s src) in
  s.Scheme.libc_check src n Read;
  s.Scheme.libc_check dst len Write;
  s.Scheme.libc_touch "strncpy" src n Read;
  s.Scheme.libc_touch "strncpy" dst len Write;
  Memsys.blit (ms s) ~src:(s.Scheme.addr_of src) ~dst:(s.Scheme.addr_of dst) ~len:n;
  if n < len then Memsys.fill (ms s) ~addr:(s.Scheme.addr_of dst + n) ~len:(len - n) ~byte:0

(** memcmp(3): compares through checked loads (cheap; used in hash table
    probes of the workloads). Returns the sign of the first difference. *)
let memcmp s a b ~len =
  s.Scheme.libc_check a len Read;
  s.Scheme.libc_check b len Read;
  s.Scheme.libc_touch "memcmp" a len Read;
  s.Scheme.libc_touch "memcmp" b len Read;
  let m = ms s in
  let aa = s.Scheme.addr_of a and ab = s.Scheme.addr_of b in
  let rec go i =
    if i >= len then 0
    else
      let x = Memsys.load m ~addr:(aa + i) ~width:1
      and y = Memsys.load m ~addr:(ab + i) ~width:1 in
      if x = y then go (i + 1) else compare x y
  in
  go 0

(** strcmp(3). *)
let strcmp s a b =
  s.Scheme.libc_check a 1 Read;
  s.Scheme.libc_check b 1 Read;
  s.Scheme.libc_touch "strcmp" a 1 Read;
  s.Scheme.libc_touch "strcmp" b 1 Read;
  let m = ms s in
  let aa = s.Scheme.addr_of a and ab = s.Scheme.addr_of b in
  let rec go i =
    let x = Memsys.load m ~addr:(aa + i) ~width:1
    and y = Memsys.load m ~addr:(ab + i) ~width:1 in
    if x <> y then compare x y else if x = 0 then 0 else go (i + 1)
  in
  go 0

(** Write an OCaml string (plus NUL) into a simulated buffer via the
    scheme's wrapper — a stand-in for snprintf-style formatting. *)
let strcpy_in s ~dst str =
  let n = String.length str in
  s.Scheme.libc_check dst (n + 1) Write;
  s.Scheme.libc_touch "strcpy_in" dst (n + 1) Write;
  let m = ms s in
  let a = s.Scheme.addr_of dst in
  Memsys.touch_range m ~addr:a ~len:(n + 1);
  Sb_vmem.Vmem.write_string (Memsys.vmem m) ~addr:a str;
  Sb_vmem.Vmem.store (Memsys.vmem m) ~addr:(a + n) ~width:1 0

(** Read a NUL-terminated simulated string into an OCaml string. *)
let string_out s p =
  let n = raw_strlen s p in
  let m = ms s in
  let a = s.Scheme.addr_of p in
  Memsys.touch_range m ~addr:a ~len:n;
  Sb_vmem.Vmem.read_string (Memsys.vmem m) ~addr:a ~len:n

(** strcat(3): append [src] at [dst]'s terminator — another classic
    overflow primitive; the wrapper checks the combined length. *)
let strcat s ~dst ~src =
  let dlen = raw_strlen s dst in
  let slen = raw_strlen s src in
  s.Scheme.libc_check src (slen + 1) Read;
  s.Scheme.libc_check dst (dlen + slen + 1) Write;
  s.Scheme.libc_touch "strcat" src (slen + 1) Read;
  s.Scheme.libc_touch "strcat" dst (dlen + slen + 1) Write;
  Memsys.blit (ms s)
    ~src:(s.Scheme.addr_of src)
    ~dst:(s.Scheme.addr_of dst + dlen)
    ~len:(slen + 1);
  dlen + slen

(** memchr(3): find [byte] in the first [len] bytes; returns its offset. *)
let memchr s p ~byte ~len =
  s.Scheme.libc_check p len Read;
  s.Scheme.libc_touch "memchr" p len Read;
  let m = ms s in
  let a = s.Scheme.addr_of p in
  let rec go i =
    if i >= len then None
    else if Memsys.load m ~addr:(a + i) ~width:1 = byte land 0xff then Some i
    else go (i + 1)
  in
  go 0

(** strchr(3): like {!memchr} over a NUL-terminated string. *)
let strchr s p ~byte =
  let n = raw_strlen s p in
  memchr s p ~byte ~len:n

(** qsort(3): libc sorts opaque elements and calls back into the
    *instrumented* application for comparisons. The wrapper provides the
    proxy the paper describes (§3.2: "writing proxies for callbacks
    (qsort)"): libc hands the proxy raw element addresses, and the proxy
    re-attaches the scheme's view before invoking the user comparator
    with scheme pointers. Elements are [width] bytes. *)
let qsort s ~base ~nmemb ~width ~cmp =
  s.Scheme.libc_check base (nmemb * width) Write;
  s.Scheme.libc_touch "qsort" base (nmemb * width) Write;
  let m = ms s in
  let a0 = s.Scheme.addr_of base in
  (* the callback proxy: wrap raw addresses back into scheme pointers *)
  let proxy i j = cmp (s.Scheme.offset base (i * width)) (s.Scheme.offset base (j * width)) in
  let swap i j =
    if i <> j then begin
      let ai = a0 + (i * width) and aj = a0 + (j * width) in
      for b = 0 to width - 1 do
        let x = Memsys.load m ~addr:(ai + b) ~width:1 in
        let y = Memsys.load m ~addr:(aj + b) ~width:1 in
        Memsys.store m ~addr:(ai + b) ~width:1 y;
        Memsys.store m ~addr:(aj + b) ~width:1 x
      done
    end
  in
  (* insertion sort: libc-side, uninstrumented element moves *)
  for i = 1 to nmemb - 1 do
    let j = ref i in
    while !j > 0 && proxy !j (!j - 1) < 0 do
      swap !j (!j - 1);
      decr j
    done
  done

(** A %-style formatter into a simulated buffer: the printf-family
    wrapper of §3.2 "tracking and extracting the pointers on-the-fly".
    Supports %d, %s (a *tagged/simulated* string pointer argument, which
    the wrapper extracts and bounds-checks) and %%. Returns the number of
    bytes written (excluding the NUL). *)
type fmt_arg = Int of int | Str of Sb_protection.Types.ptr

let snprintf s ~dst ~max ~fmt ~args =
  let out = Buffer.create 64 in
  let args = ref args in
  let next () =
    match !args with
    | [] -> invalid_arg "Simlibc.snprintf: not enough arguments"
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    (if fmt.[!i] = '%' && !i + 1 < n then begin
       (match fmt.[!i + 1] with
        | 'd' ->
          (match next () with
           | Int v -> Buffer.add_string out (string_of_int v)
           | Str _ -> invalid_arg "Simlibc.snprintf: %d expects Int")
        | 's' ->
          (match next () with
           | Str p ->
             (* extract the pointer, check it, read the string *)
             let len = raw_strlen s p in
             s.Scheme.libc_check p (len + 1) Read;
             s.Scheme.libc_touch "snprintf" p (len + 1) Read;
             Buffer.add_string out (string_out s p)
           | Int _ -> invalid_arg "Simlibc.snprintf: %s expects Str")
        | '%' -> Buffer.add_char out '%'
        | c -> invalid_arg (Printf.sprintf "Simlibc.snprintf: unsupported %%%c" c));
       i := !i + 2
     end
     else begin
       Buffer.add_char out fmt.[!i];
       incr i
     end)
  done;
  let text = Buffer.contents out in
  let text =
    if String.length text > max - 1 then String.sub text 0 (max - 1) else text
  in
  strcpy_in s ~dst text;
  String.length text
