(** Deterministic pseudo-random number generator (splitmix64).

    Every workload draws randomness from its own [Rng.t] seeded from the
    experiment id, so runs are reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

(** [float t] is uniform in [0, 1). *)
let float t =
  let v = Int64.to_int (next_int64 t) land ((1 lsl 53) - 1) in
  float_of_int v /. float_of_int (1 lsl 53)

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(** True with probability [p]. *)
let bernoulli t p = float t < p

(** [split t] derives a fresh independent seed from [t]'s stream, for
    seeding a child generator whose consumption must not perturb the
    parent's sequence (e.g. one child per fuzz iteration, so iteration
    [i] is replayable without re-running iterations [0..i-1]'s draws). *)
let split t = Int64.to_int (next_int64 t) land max_int

(** [pick t arr] is a uniformly chosen element of [arr]. *)
let pick t arr = arr.(int t (Array.length arr))

(** A zipf-ish skewed key pick in [0, n): 80% of draws land in the first
    20% of the space, recursively. Cheap stand-in for memcached key
    popularity distributions. *)
let skewed t n =
  let rec go lo hi depth =
    if depth = 0 || hi - lo <= 1 then lo + int t (max 1 (hi - lo))
    else if bernoulli t 0.8 then go lo (lo + max 1 ((hi - lo) / 5)) (depth - 1)
    else go lo hi 0
  in
  go 0 n 1
