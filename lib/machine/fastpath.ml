(** Engine selection for the memory-engine implementations.

    The simulator keeps three behaviourally identical implementations of
    its hot layers (cache probe, address translation, EPC residency,
    access charging):

    - [Naive] — the straightforward reference code every optimisation is
      proven against;
    - [Fast] — MRU fast paths, translation memos, unboxed codecs,
      same-line streak batching (PR 2);
    - [Trace] — everything in [Fast], plus the superblock recorder
      ({!Trace} + the fused paths in [Sb_sgx.Memsys]): hot strided
      access sequences are detected at run time and executed through a
      per-site compiled closure that performs translation memoization,
      cache/EPC simulation and class accounting once per superblock
      instead of once per access.

    Selection is sampled once per component at [create] time, so a
    component never changes engine mid-life and two components with
    different engines can coexist (that is what the differential tests
    and the tri-engine fuzz oracle do).

    Every engine must produce bit-for-bit identical simulation results
    (cycles, hit/miss counts, EPC faults, attribution) — only host
    wall-clock may differ. [test/test_fastpath.ml] and
    [test/test_trace.ml] pin this.

    Set [SGXBOUNDS_ENGINE] to [naive], [fast] or [trace] to pick the
    start-up engine (any other value is rejected at start-up). The
    legacy [SGXBOUNDS_NAIVE] variable (any value) still selects the
    naive engine when [SGXBOUNDS_ENGINE] is unset. The default is
    [Fast]. *)

type kind = Naive | Fast | Trace

let kind_name = function Naive -> "naive" | Fast -> "fast" | Trace -> "trace"

let kind_of_string = function
  | "naive" -> Some Naive
  | "fast" -> Some Fast
  | "trace" -> Some Trace
  | _ -> None

let initial_kind () =
  match Sys.getenv_opt "SGXBOUNDS_ENGINE" with
  | Some s ->
    (match kind_of_string (String.lowercase_ascii (String.trim s)) with
     | Some k -> k
     | None ->
       Printf.eprintf
         "sgxbounds: unknown SGXBOUNDS_ENGINE=%S (expected naive|fast|trace)\n%!" s;
       exit 2)
  | None -> if Sys.getenv_opt "SGXBOUNDS_NAIVE" = None then Fast else Naive

(* Stored as an int so the cross-domain cell stays a word-sized
   immediate: 0 = Naive, 1 = Fast, 2 = Trace. *)
let cell : int Atomic.t =
  Atomic.make (match initial_kind () with Naive -> 0 | Fast -> 1 | Trace -> 2)

let kind () =
  match Atomic.get cell with 0 -> Naive | 1 -> Fast | _ -> Trace

let set_kind k =
  Atomic.set cell (match k with Naive -> 0 | Fast -> 1 | Trace -> 2)

(** [true] for any engine with fast paths ([Fast] and [Trace]): the
    per-layer micro-optimisations of PR 2 apply to both. *)
let is_enabled () = Atomic.get cell <> 0

(** [true] only for the [Trace] engine: gates the superblock recorder. *)
let trace_enabled () = Atomic.get cell = 2

let set b = set_kind (if b then Fast else Naive)

(** Run [f] with the engine forced to [k], restoring the previous
    selection afterwards. Only components *created* inside [f] are
    affected. *)
let with_kind k f =
  let prev = Atomic.get cell in
  set_kind k;
  Fun.protect ~finally:(fun () -> Atomic.set cell prev) f

(** Back-compat boolean selector: [true] = fast, [false] = naive. *)
let with_engine fast f = with_kind (if fast then Fast else Naive) f
let with_naive f = with_kind Naive f
let with_trace f = with_kind Trace f

(** Name of the currently selected engine ("naive" | "fast" | "trace"). *)
let current_name () = kind_name (kind ())
