(** Engine selection for the fast-path memory engine.

    The simulator keeps two behaviourally identical implementations of
    its hot layers (cache probe, address translation, EPC residency,
    access charging): the *fast* engine — MRU fast paths, translation
    memos, unboxed codecs — and the *naive* reference engine, the
    straightforward code the fast paths are proven against. Selection is
    sampled once per component at [create] time, so a component never
    changes engine mid-life and two components with different engines
    can coexist (that is what the differential tests do).

    The fast engine must produce bit-for-bit identical simulation
    results (cycles, hit/miss counts, EPC faults, attribution) — only
    host wall-clock may differ. [test/test_fastpath.ml] pins this.

    Set the [SGXBOUNDS_NAIVE] environment variable (any value) to start
    with the naive engine, e.g. to time the speedup from outside. *)

let enabled : bool Atomic.t =
  Atomic.make (Sys.getenv_opt "SGXBOUNDS_NAIVE" = None)

let is_enabled () = Atomic.get enabled
let set b = Atomic.set enabled b

(** Run [f] with the engine forced to naive ([false]) or fast ([true]),
    restoring the previous selection afterwards. Only components
    *created* inside [f] are affected. *)
let with_engine fast f =
  let prev = Atomic.get enabled in
  Atomic.set enabled fast;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

let with_naive f = with_engine false f
