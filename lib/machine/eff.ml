(** Effects used for cooperative multithreading.

    The memory system performs [Yield] periodically while a multithreaded
    region is active; the scheduler in [Sb_mt] handles it. Defining the
    effect here keeps the memory system independent of the scheduler. *)

type _ Effect.t += Yield : unit Effect.t

(** Set while a scheduler is installed; the memory system only performs
    [Yield] when this is true, so single-threaded code never pays for an
    unhandled-effect exception.

    Domain-local: effect handlers do not cross OCaml domains, so a
    scheduler installed by one domain must not make a memory system
    running in another domain perform an unhandled [Yield]. The
    parallel experiment runner ({!Sb_harness.Parallel_runner}) relies on
    this — each domain simulates its own cooperative threads. *)
let scheduler_key = Domain.DLS.new_key (fun () -> false)

let scheduler_active () = Domain.DLS.get scheduler_key
let set_scheduler_active v = Domain.DLS.set scheduler_key v
