(** Small free-lists for expensive flat arrays.

    Creating a simulated machine allocates a handful of multi-megabyte
    arrays (the dense Vmem page table, the EPC residency table). Code
    that churns through many short-lived machines — the differential
    fuzzer replays every trace on a fresh machine per scheme per engine
    — spends more time zero-filling those arrays than simulating. A
    [Pool.t] lets a machine's owner hand the arrays back ([Vmem.retire],
    [Epc.retire], [Memsys.retire]) so the next [create] reuses them.

    Recycling is two-level. Each domain keeps a small domain-local stash
    (via [Domain.DLS]) that [put]/[get] hit first: the parallel runner's
    domains each churn their own machines, so the common case touches no
    shared state at all — no compare-and-set ping-pong between domains
    recycling at the same time. The overflow/underflow level is a
    Treiber stack over an immutable list in an [Atomic], safe to share
    across domains. ABA is not a concern: cons cells are freshly
    allocated on every push, so a stale compare-and-set always fails.

    Both levels are bounded; when full, [put] drops the value on the
    floor and lets the GC have it (a domain-local stash also dies with
    its domain). Callers must only [put] values they have re-initialised
    to the state [get]'s consumers expect — the pool itself never
    inspects them. *)

type 'a t = {
  shared : 'a list Atomic.t;
  max : int;
  (* Per-domain stash. The DLS key is per-pool, so distinct pools never
     share a stash. *)
  local : 'a list ref Domain.DLS.key;
  local_max : int;
}

let create ?(max = 8) () =
  {
    shared = Atomic.make [];
    max;
    local = Domain.DLS.new_key (fun () -> ref []);
    local_max = 2;
  }

let rec put_shared t x =
  let cur = Atomic.get t.shared in
  if List.length cur >= t.max then ()
  else if not (Atomic.compare_and_set t.shared cur (x :: cur)) then put_shared t x

let put t x =
  let stash = Domain.DLS.get t.local in
  if List.length !stash < t.local_max then stash := x :: !stash
  else put_shared t x

let rec get_shared t ~validate mk =
  match Atomic.get t.shared with
  | [] -> mk ()
  | x :: rest as cur ->
    if Atomic.compare_and_set t.shared cur rest then
      if validate x then x else get_shared t ~validate mk
    else get_shared t ~validate mk

(** [get t ~validate mk] pops a pooled value satisfying [validate]
    (non-conforming entries are discarded), or builds a fresh one with
    [mk]. *)
let rec get t ~validate mk =
  let stash = Domain.DLS.get t.local in
  match !stash with
  | x :: rest ->
    stash := rest;
    if validate x then x else get t ~validate mk
  | [] -> get_shared t ~validate mk

(** Entries visible to the calling domain: its own stash plus the shared
    level (other domains' stashes are invisible by design). *)
let size t = List.length !(Domain.DLS.get t.local) + List.length (Atomic.get t.shared)
