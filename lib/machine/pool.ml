(** Small lock-free free-lists for expensive flat arrays.

    Creating a simulated machine allocates a handful of multi-megabyte
    arrays (the dense Vmem page table, the EPC residency table). Code
    that churns through many short-lived machines — the differential
    fuzzer replays every trace on a fresh machine per scheme per engine
    — spends more time zero-filling those arrays than simulating. A
    [Pool.t] lets a machine's owner hand the arrays back ([Vmem.retire],
    [Epc.retire], [Memsys.retire]) so the next [create] reuses them.

    The pool is a Treiber stack over an immutable list in an [Atomic],
    so it is safe to share across domains (the parallel runner creates
    machines concurrently). ABA is not a concern: cons cells are freshly
    allocated on every push, so a stale compare-and-set always fails.
    The pool is bounded; when full, [put] drops the value on the floor
    and lets the GC have it. Callers must only [put] values they have
    re-initialised to the state [get]'s consumers expect — the pool
    itself never inspects them. *)

type 'a t = { items : 'a list Atomic.t; max : int }

let create ?(max = 8) () = { items = Atomic.make []; max }

let rec put t x =
  let cur = Atomic.get t.items in
  if List.length cur >= t.max then ()
  else if not (Atomic.compare_and_set t.items cur (x :: cur)) then put t x

(** [get t ~validate mk] pops a pooled value satisfying [validate]
    (non-conforming entries are discarded), or builds a fresh one with
    [mk]. *)
let rec get t ~validate mk =
  match Atomic.get t.items with
  | [] -> mk ()
  | x :: rest as cur ->
    if Atomic.compare_and_set t.items cur rest then
      if validate x then x else get t ~validate mk
    else get t ~validate mk

let size t = List.length (Atomic.get t.items)
