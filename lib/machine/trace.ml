(** Superblock trace recorder — the data plane of the [Trace] engine.

    The memory system interprets one access at a time; that per-access
    dispatch is the throughput ceiling the paper's own design argument
    points at (SGXBounds wins by amortizing per-access work — tagged
    pointers instead of per-access table walks; the same amortization
    applies one level up, to the simulator itself). The trace engine
    amortizes the *simulation* of an access stream: the hot inner loops
    of the workloads are strided (scans, sweeps, hammers), so when the
    recorder observes the same (stride, width, class) signature on
    consecutive accesses it promotes the stream to a {e run} — a
    superblock of pending accesses that is later replayed {e per cache
    line} instead of per access by a compiled flush closure.

    This module owns the recorder state and the per-site closure table;
    the fused execution paths and the closure compiler live in
    [Sb_sgx.Memsys], which is the only writer of these fields. The
    split keeps the recorder reusable (and testable) without dragging
    the cache/EPC layers into [lib/machine].

    {b Contract} (pinned by [test/test_trace.ml] and the tri-engine
    fuzz oracle): a run may defer accounting only between accesses of
    the run itself. Any other observation point — a stats read, a
    thread switch, a cooperative yield, an interposed probe
    ([touch_range]/[blit]/[fill] or a non-matching access), a page
    remap, a profiler attach — must flush (and for probes and remaps,
    kill) the run first, so observable simulation state is bit-for-bit
    the naive engine's at every read point. *)

(** Runs only make sense when several accesses share a cache line, so
    strides are capped below the line size; larger strides would flush
    one probe per access and amortize nothing. *)
let max_stride = 63

(** Per-site flush closures are indexed by a packed (stride, width,
    class) signature: 7 bits of stride bias, 2 bits of log2 width,
    3 bits of class index. *)
let sig_space = 4096

let pack_sig ~stride ~width ~ci =
  let wlog = match width with 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> 3 in
  ((stride + max_stride + 1) lsl 5) lor (wlog lsl 3) lor ci

(** Placeholder for "no closure compiled yet"; compared physically. *)
let no_flush : int -> int -> unit = fun _ _ -> ()

type stats = {
  superblocks : int;   (** runs promoted *)
  fused : int;         (** accesses executed through a fused path *)
  breaks : int;        (** runs killed by a pattern break or interposed probe *)
  invalidations : int; (** runs/windows killed by remap, reset or profiler attach *)
  sites : int;         (** distinct (stride, width, class) signatures compiled *)
}

type t = {
  (* [true] while the recorder may promote new runs. Cleared when the
     machine is created under a non-trace engine, when telemetry is
     enabled (each access must be observed individually), and while a
     profiler charge hook is attached; restored on detach if the
     machine was trace-capable at creation. *)
  mutable on : bool;
  (* Live run. [run_next] is the address the next access must hit to
     continue the run, or [min_int] when no run is active — that single
     compare is the whole fused-path dispatch. [run_k] accesses from
     [run_start] (stride [run_stride], width [run_w], class [run_ci])
     are accumulated but not yet accounted; [run_flush start k] applies
     them. *)
  mutable run_next : int;
  mutable run_w : int;
  mutable run_ci : int;
  mutable run_stride : int;
  mutable run_start : int;
  mutable run_k : int;
  mutable run_flush : int -> int -> unit;
  (* Cached translation window: the backing bytes of the page currently
     under the run, so fused data accesses skip Vmem entirely.
     [win_base] is the simulated address of byte 0 of [win_data], or
     [min_int] when invalid (killed by any remap/protect/retire via the
     Vmem hook). *)
  mutable win_data : Bytes.t;
  mutable win_base : int;
  mutable win_wr : bool;
  (* Stride detector: a run is promoted when the second consecutive
     stride matches (three accesses with the same (stride, width,
     class) signature). *)
  mutable last_addr : int;
  mutable last_stride : int;
  mutable last_w : int;
  mutable last_ci : int;
  (* Per-site compiled flush closures and hit counts, indexed by packed
     signature. Empty arrays when the recorder was created disabled. *)
  sites : (int -> int -> unit) array;
  site_hits : int array;
  (* Lifetime counters, [stats]. *)
  mutable superblocks : int;
  mutable fused : int;
  mutable breaks : int;
  mutable invalidations : int;
}

let create ~enabled =
  {
    on = enabled;
    run_next = min_int;
    run_w = -1;
    run_ci = -1;
    run_stride = 0;
    run_start = 0;
    run_k = 0;
    run_flush = no_flush;
    win_data = Bytes.empty;
    win_base = min_int;
    win_wr = false;
    last_addr = min_int;
    last_stride = max_int;
    last_w = -1;
    last_ci = -1;
    sites = (if enabled then Array.make sig_space no_flush else [||]);
    site_hits = (if enabled then Array.make sig_space 0 else [||]);
    superblocks = 0;
    fused = 0;
    breaks = 0;
    invalidations = 0;
  }

(** Drop (without flushing — callers that must account first flush
    themselves) the live run, the window and the detector state. *)
let clear_run t =
  t.run_next <- min_int;
  t.run_w <- -1;
  t.run_ci <- -1;
  t.run_k <- 0;
  t.run_flush <- no_flush;
  t.win_data <- Bytes.empty;
  t.win_base <- min_int;
  t.win_wr <- false;
  t.last_addr <- min_int;
  t.last_stride <- max_int;
  t.last_w <- -1;
  t.last_ci <- -1

(** Fresh-run reset: drops the live run and the lifetime counters.
    Compiled site closures are kept — they capture only the machine
    they were compiled for, and recompiling them is pure overhead. *)
let reset t =
  clear_run t;
  if Array.length t.site_hits > 0 then
    Array.fill t.site_hits 0 sig_space 0;
  t.superblocks <- 0;
  t.fused <- 0;
  t.breaks <- 0;
  t.invalidations <- 0

let stats t : stats =
  let sites = ref 0 in
  Array.iter (fun f -> if f != no_flush then incr sites) t.sites;
  {
    superblocks = t.superblocks;
    fused = t.fused;
    breaks = t.breaks;
    invalidations = t.invalidations;
    sites = !sites;
  }
