(** A single set-associative cache with LRU replacement.

    Only tags are modelled (data lives in {!Sb_vmem.Vmem}); an access
    either hits or misses and updates recency. This is enough to
    reproduce the cache-pollution effects that drive the paper's
    AddressSanitizer results (shadow-memory accesses evicting application
    data) and Intel MPX results (bounds-table accesses doing the same). *)

type t

(** [create ~size ~assoc ~line_size] — [size] bytes total, [assoc] ways,
    [line_size]-byte lines. [size] is rounded so there is at least one
    set. *)
val create : size:int -> assoc:int -> line_size:int -> t

(** [access t ~line] touches cache line number [line] (address divided by
    line size); returns [true] on hit. On miss the LRU way of the set is
    replaced. *)
val access : t -> line:int -> bool

(** Record a hit without probing. Caller contract: the line must be at
    way 0 of its set (true immediately after any [access] of it with no
    intervening access to the cache). Equivalent to [access] on such a
    line — counts the hit, recency already correct. Used by the memory
    system's last-line fast path. *)
val count_mru_hits : t -> int -> unit

(** Invalidate everything (e.g. between experiment runs). *)
val flush : t -> unit

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
