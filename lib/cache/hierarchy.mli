(** Three-level cache hierarchy (L1 / L2 / shared LLC) with cycle costs.

    Matches the paper's testbed: private 32 KiB L1 and 256 KiB L2 per
    core, one shared 8 MiB L3 — scaled per {!Sb_machine.Config}. *)

type t

(** Where an access was served. [Dram] means it missed every level; the
    caller (the SGX memory system) decides whether that costs plain DRAM
    or MEE-encrypted DRAM plus possible EPC paging. *)
type served = L1 | L2 | Llc | Dram

val create : Sb_machine.Config.t -> t

(** [access t ~addr] walks the hierarchy for the line containing [addr]
    and returns where it was served; inserts the line into every level it
    missed. *)
val access : t -> addr:int -> served

(** Cycles charged for a hit at the given level ([Dram] returns 0 — the
    memory system adds the DRAM/EPC cost itself). *)
val hit_cost : t -> served -> int

(** [hit_cost t L1] without constructing a [served]. *)
val l1_hit_cost : t -> int

(** Count an L1 hit the caller short-circuited. Contract as in
    {!Cache.count_mru_hits}: the line was the hierarchy's most recent
    access, so it sits at way 0 of L1 and [access] would have returned
    [L1] while changing nothing but the hit counter. *)
val count_l1_mru_hits : t -> int -> unit

val llc_misses : t -> int

(** Per-level hit/miss counters since the last [reset_stats]. A miss at
    one level is retried (and counted again) at the next, so e.g. LLC
    accesses = L2 misses. *)
type level_stats = { hits : int; misses : int }

(** [("L1", _); ("L2", _); ("LLC", _)], innermost first. *)
val stats : t -> (string * level_stats) list

val flush : t -> unit
val reset_stats : t -> unit
