type t = {
  nsets : int;
  assoc : int;
  (* tags.(set * assoc + way); way 0 is most recently used. -1 = invalid. *)
  tags : int array;
  mutable hits : int;
  mutable misses : int;
  (* Fast engine: MRU-hit short-circuit (see Sb_machine.Fastpath). *)
  fast : bool;
}

let create ~size ~assoc ~line_size =
  let nsets = max 1 (size / (assoc * line_size)) in
  (* Power-of-two set count keeps indexing a mask. *)
  let nsets =
    if Sb_machine.Util.is_pow2 nsets then nsets
    else Sb_machine.Util.next_pow2 nsets / 2
  in
  let nsets = max 1 nsets in
  {
    nsets;
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    hits = 0;
    misses = 0;
    fast = Sb_machine.Fastpath.is_enabled ();
  }

let access t ~line =
  let set = line land (t.nsets - 1) in
  let base = set * t.assoc in
  let tag = line in
  if t.fast then begin
    (* MRU fast path: a hit at way 0 needs no recency shuffle — the line
       is already most recently used. Otherwise probe and move-to-front
       in ONE carry pass: each way is read once and overwritten with its
       left neighbour as the scan advances, so when the tag is found at
       way [i] the prefix is already shifted and the state equals the
       naive probe-then-shuffle result; on a miss the full pass has
       performed the eviction shift. Bounds checks are elided: every
       index is in [base, base + assoc), in range by construction.
       Stats and final tag order are identical to the naive path.

       The pass is fully unrolled for the two associativities the
       default config uses (8 and 16): the carry chain then lives in
       registers and the loop-control dependency disappears, which is
       worth ~30% of the whole three-level probe chain on the
       throughput bench's miss-heavy kernels. *)
    let tags = t.tags in
    if Array.unsafe_get tags base = tag then begin
      t.hits <- t.hits + 1;
      true
    end
    else begin
      let c0 = Array.unsafe_get tags base in
      Array.unsafe_set tags base tag;
      let hit =
        if t.assoc = 8 then begin
          let c1 = Array.unsafe_get tags (base + 1) in
          Array.unsafe_set tags (base + 1) c0;
          c1 = tag
          || (let c2 = Array.unsafe_get tags (base + 2) in
              Array.unsafe_set tags (base + 2) c1;
              c2 = tag
              || (let c3 = Array.unsafe_get tags (base + 3) in
                  Array.unsafe_set tags (base + 3) c2;
                  c3 = tag
                  || (let c4 = Array.unsafe_get tags (base + 4) in
                      Array.unsafe_set tags (base + 4) c3;
                      c4 = tag
                      || (let c5 = Array.unsafe_get tags (base + 5) in
                          Array.unsafe_set tags (base + 5) c4;
                          c5 = tag
                          || (let c6 = Array.unsafe_get tags (base + 6) in
                              Array.unsafe_set tags (base + 6) c5;
                              c6 = tag
                              || (let c7 = Array.unsafe_get tags (base + 7) in
                                  Array.unsafe_set tags (base + 7) c6;
                                  c7 = tag))))))
        end
        else if t.assoc = 16 then begin
          let c1 = Array.unsafe_get tags (base + 1) in
          Array.unsafe_set tags (base + 1) c0;
          c1 = tag
          || (let c2 = Array.unsafe_get tags (base + 2) in
              Array.unsafe_set tags (base + 2) c1;
              c2 = tag
              || (let c3 = Array.unsafe_get tags (base + 3) in
                  Array.unsafe_set tags (base + 3) c2;
                  c3 = tag
                  || (let c4 = Array.unsafe_get tags (base + 4) in
                      Array.unsafe_set tags (base + 4) c3;
                      c4 = tag
                      || (let c5 = Array.unsafe_get tags (base + 5) in
                          Array.unsafe_set tags (base + 5) c4;
                          c5 = tag
                          || (let c6 = Array.unsafe_get tags (base + 6) in
                              Array.unsafe_set tags (base + 6) c5;
                              c6 = tag
                              || (let c7 = Array.unsafe_get tags (base + 7) in
                                  Array.unsafe_set tags (base + 7) c6;
                                  c7 = tag
                                  || (let c8 = Array.unsafe_get tags (base + 8) in
                                      Array.unsafe_set tags (base + 8) c7;
                                      c8 = tag
                                      || (let c9 = Array.unsafe_get tags (base + 9) in
                                          Array.unsafe_set tags (base + 9) c8;
                                          c9 = tag
                                          || (let c10 = Array.unsafe_get tags (base + 10) in
                                              Array.unsafe_set tags (base + 10) c9;
                                              c10 = tag
                                              || (let c11 = Array.unsafe_get tags (base + 11) in
                                                  Array.unsafe_set tags (base + 11) c10;
                                                  c11 = tag
                                                  || (let c12 = Array.unsafe_get tags (base + 12) in
                                                      Array.unsafe_set tags (base + 12) c11;
                                                      c12 = tag
                                                      || (let c13 = Array.unsafe_get tags (base + 13) in
                                                          Array.unsafe_set tags (base + 13) c12;
                                                          c13 = tag
                                                          || (let c14 = Array.unsafe_get tags (base + 14) in
                                                              Array.unsafe_set tags (base + 14) c13;
                                                              c14 = tag
                                                              || (let c15 = Array.unsafe_get tags (base + 15) in
                                                                  Array.unsafe_set tags (base + 15) c14;
                                                                  c15 = tag))))))))))))))
        end
        else begin
          let lim = base + t.assoc in
          let rec pass i carry =
            if i >= lim then false  (* miss: [carry] is the evicted tag *)
            else begin
              let cur = Array.unsafe_get tags i in
              Array.unsafe_set tags i carry;
              if cur = tag then true else pass (i + 1) cur
            end
          in
          pass (base + 1) c0
        end
      in
      if hit then begin
        t.hits <- t.hits + 1;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        false
      end
    end
  end
  else begin
    let rec find way = if way >= t.assoc then -1 else if t.tags.(base + way) = tag then way else find (way + 1) in
    let way = find 0 in
    if way >= 0 then begin
      (* Move to front to record recency. *)
      for i = way downto 1 do
        t.tags.(base + i) <- t.tags.(base + i - 1)
      done;
      t.tags.(base) <- tag;
      t.hits <- t.hits + 1;
      true
    end
    else begin
      for i = t.assoc - 1 downto 1 do
        t.tags.(base + i) <- t.tags.(base + i - 1)
      done;
      t.tags.(base) <- tag;
      t.misses <- t.misses + 1;
      false
    end
  end

(* Record an L1 hit whose probe the caller has already short-circuited:
   the memory system's last-line memo guarantees the line sits at way 0
   (every access leaves its line most recently used), so counting the
   hit is the only remaining effect of [access]. *)
let count_mru_hits t n = t.hits <- t.hits + n

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
