type t = {
  nsets : int;
  assoc : int;
  (* tags.(set * assoc + way); way 0 is most recently used. -1 = invalid. *)
  tags : int array;
  mutable hits : int;
  mutable misses : int;
  (* Fast engine: MRU-hit short-circuit (see Sb_machine.Fastpath). *)
  fast : bool;
}

let create ~size ~assoc ~line_size =
  let nsets = max 1 (size / (assoc * line_size)) in
  (* Power-of-two set count keeps indexing a mask. *)
  let nsets =
    if Sb_machine.Util.is_pow2 nsets then nsets
    else Sb_machine.Util.next_pow2 nsets / 2
  in
  let nsets = max 1 nsets in
  {
    nsets;
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    hits = 0;
    misses = 0;
    fast = Sb_machine.Fastpath.is_enabled ();
  }

let access t ~line =
  let set = line land (t.nsets - 1) in
  let base = set * t.assoc in
  let tag = line in
  if t.fast then begin
    (* MRU fast path: a hit at way 0 needs no recency shuffle — the line
       is already most recently used. Otherwise probe and move-to-front
       in ONE carry pass: each way is read once and overwritten with its
       left neighbour as the scan advances, so when the tag is found at
       way [i] the prefix is already shifted and the state equals the
       naive probe-then-shuffle result; on a miss the full pass has
       performed the eviction shift. Bounds checks are elided: every
       index is in [base, base + assoc), in range by construction.
       Stats and final tag order are identical to the naive path. *)
    if Array.unsafe_get t.tags base = tag then begin
      t.hits <- t.hits + 1;
      true
    end
    else begin
      let lim = base + t.assoc in
      let rec pass i carry =
        if i >= lim then false  (* miss: [carry] is the evicted tag *)
        else begin
          let cur = Array.unsafe_get t.tags i in
          Array.unsafe_set t.tags i carry;
          if cur = tag then true else pass (i + 1) cur
        end
      in
      let carry = Array.unsafe_get t.tags base in
      Array.unsafe_set t.tags base tag;
      if pass (base + 1) carry then begin
        t.hits <- t.hits + 1;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        false
      end
    end
  end
  else begin
    let rec find way = if way >= t.assoc then -1 else if t.tags.(base + way) = tag then way else find (way + 1) in
    let way = find 0 in
    if way >= 0 then begin
      (* Move to front to record recency. *)
      for i = way downto 1 do
        t.tags.(base + i) <- t.tags.(base + i - 1)
      done;
      t.tags.(base) <- tag;
      t.hits <- t.hits + 1;
      true
    end
    else begin
      for i = t.assoc - 1 downto 1 do
        t.tags.(base + i) <- t.tags.(base + i - 1)
      done;
      t.tags.(base) <- tag;
      t.misses <- t.misses + 1;
      false
    end
  end

(* Record an L1 hit whose probe the caller has already short-circuited:
   the memory system's last-line memo guarantees the line sits at way 0
   (every access leaves its line most recently used), so counting the
   hit is the only remaining effect of [access]. *)
let count_mru_hits t n = t.hits <- t.hits + n

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
