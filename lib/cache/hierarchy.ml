type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  llc : Cache.t;
  line_shift : int;
  costs : Sb_machine.Config.costs;
}

type served = L1 | L2 | Llc | Dram

let create (cfg : Sb_machine.Config.t) =
  let line_size = cfg.line_size in
  {
    l1 = Cache.create ~size:cfg.l1.size ~assoc:cfg.l1.assoc ~line_size;
    l2 = Cache.create ~size:cfg.l2.size ~assoc:cfg.l2.assoc ~line_size;
    llc = Cache.create ~size:cfg.llc.size ~assoc:cfg.llc.assoc ~line_size;
    line_shift = Sb_machine.Util.log2_floor line_size;
    costs = cfg.costs;
  }

let access t ~addr =
  let line = addr lsr t.line_shift in
  if Cache.access t.l1 ~line then L1
  else if Cache.access t.l2 ~line then L2
  else if Cache.access t.llc ~line then Llc
  else Dram

let hit_cost t = function
  | L1 -> t.costs.l1_hit
  | L2 -> t.costs.l2_hit
  | Llc -> t.costs.llc_hit
  | Dram -> 0

let l1_hit_cost t = t.costs.l1_hit

(* See Cache.count_mru_hit: the caller has proven (via its last-line
   memo) that the line is at way 0 of L1, so the access is an L1 hit
   with no recency or lower-level effects. *)
let count_l1_mru_hits t n = Cache.count_mru_hits t.l1 n

let llc_misses t = Cache.misses t.llc

type level_stats = { hits : int; misses : int }

let stats t =
  let of_cache c = { hits = Cache.hits c; misses = Cache.misses c } in
  [ ("L1", of_cache t.l1); ("L2", of_cache t.l2); ("LLC", of_cache t.llc) ]

let flush t =
  Cache.flush t.l1;
  Cache.flush t.l2;
  Cache.flush t.llc

let reset_stats t =
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.llc
