(** App adapters: turn each case-study simulator into a per-request
    service handler with one client connection per worker.

    Every adapter shares one server instance (heap, SCONE world) across
    workers — the contention the paper's Figure 13 measures — while each
    worker owns its connection channel and I/O buffers, like distinct
    client sockets multiplexed onto server threads. Request parameters
    (keys, get/set mix) are drawn from the context's seeded RNG, so the
    op sequence is a deterministic function of the seed and the service
    schedule. *)

module Scheme = Sb_protection.Scheme
module Scone = Sb_scone.Scone
module Rng = Sb_machine.Rng
module Wctx = Sb_workloads.Wctx
module Http_sim = Sb_apps.Http_sim
module Memcached_sim = Sb_apps.Memcached_sim
module Sqlite_sim = Sb_apps.Sqlite_sim

type app = Http | Memcached | Sqlite

let all = [ Http; Memcached; Sqlite ]

let name = function Http -> "http" | Memcached -> "memcached" | Sqlite -> "sqlite"

let of_string = function
  | "http" | "nginx" -> Some Http
  | "memcached" -> Some Memcached
  | "sqlite" -> Some Sqlite
  | _ -> None

let app_names = List.map name all

(* Preloaded working sets. Memcached's is sized like the closed-loop
   memaslap run (4096 items): large enough that MPX's bounds tables push
   the item working set out of the EPC — the paper's Figure 13a collapse
   — while native/sgxbounds still fit. *)
let memcached_keys = 4096
let sqlite_rows = 512

(** A built app plus its attack surface: the per-worker request buffer
    every handler parses. [e_requests.(w)] is worker [w]'s buffer as
    (raw address, request bytes) — what the symbolic interface auditor
    ({!Interface_audit}) taints before each request, since those bytes
    are exactly what an untrusted client controls. *)
type entries = {
  e_handler : worker:int -> unit;
  e_requests : (int * int) array;
}

(** [make_entries app ctx ~workers] builds the shared server state and
    returns the per-request handler {!Service.run} drives — serve
    exactly one request on the current Mt thread over worker [worker]'s
    connection — along with each worker's request-buffer region. *)
let make_entries app (ctx : Wctx.t) ~workers =
  let addr p = ctx.Wctx.s.Scheme.addr_of p in
  match app with
  | Http ->
    let srv = Http_sim.create_server ctx in
    let conns = Array.init workers (fun _ -> Http_sim.open_worker_conn srv) in
    {
      e_handler = (fun ~worker -> Http_sim.serve_request srv conns.(worker));
      (* recv_request fills and the parser scans the first 256 bytes *)
      e_requests =
        Array.map (fun wc -> (addr wc.Http_sim.wc_in, 256)) conns;
    }
  | Memcached ->
    let t = Memcached_sim.create ctx in
    for k = 0 to memcached_keys - 1 do
      Memcached_sim.set_kv t k k
    done;
    let conns = Array.init workers (fun _ -> Memcached_sim.open_conn t) in
    let bufs = Array.init workers (fun _ -> ctx.Wctx.s.Scheme.malloc 1024) in
    {
      e_handler =
        (fun ~worker ->
           (* memaslap mix: 9:1 get:set over a key space 25% wider than
              the preload, so some gets miss *)
           let key = Rng.int ctx.Wctx.rng (memcached_keys * 10 / 8) in
           let is_get = Rng.bernoulli ctx.Wctx.rng 0.9 in
           Memcached_sim.serve_request t ~conn:conns.(worker)
             ~buf:bufs.(worker) ~key ~is_get);
      e_requests = Array.map (fun b -> (addr b, 1024)) bufs;
    }
  | Sqlite ->
    let t = Sqlite_sim.create ctx in
    for k = 0 to sqlite_rows - 1 do
      Sqlite_sim.insert_row t k
    done;
    let world = Scone.create ctx.Wctx.s in
    let conns =
      Array.init workers (fun _ -> Scone.open_channel world ~shield:Scone.No_shield)
    in
    let bufs = Array.init workers (fun _ -> ctx.Wctx.s.Scheme.malloc 256) in
    let query = String.make 48 'q' in
    let response_bytes = 64 in
    {
      e_handler =
        (fun ~worker ->
           let conn = conns.(worker) and buf = bufs.(worker) in
           (* the SQL text arrives and the result rows leave through SCONE *)
           Scone.feed world conn query;
           ignore (Scone.read world conn ~buf ~len:(String.length query));
           let key = Rng.int ctx.Wctx.rng sqlite_rows in
           Sqlite_sim.serve_query t key
             ~is_select:(Rng.bernoulli ctx.Wctx.rng 0.9);
           ignore (Scone.write world conn ~buf ~len:response_bytes));
      e_requests = Array.map (fun b -> (addr b, 256)) bufs;
    }

(** [make app ctx ~workers]: just the handler (the historical entry
    point {!Service.run} and the fleet use). *)
let make app (ctx : Wctx.t) ~workers = (make_entries app ctx ~workers).e_handler
