(** Symbolic interface audit of the *shipped* request handlers.

    The buggy corpus in {!Sb_apps.Handlers} proves the symbolic pass
    can see; this module points the same pass at the real service
    adapters ({!Drivers}): build each app, then before every request
    mark the worker's request buffer — the bytes an untrusted client
    controls — as tainted, and let {!Sb_analysis.Symex} verify that no
    attacker-derived pointer or length reaches memory or libc without a
    dominating check. The shipped handlers must come back clean under
    every scheme; `analyze --symbolic` exits non-zero otherwise. *)

module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Scheme = Sb_protection.Scheme
module Json = Sb_telemetry.Json
module Wctx = Sb_workloads.Wctx
module Harness = Sb_harness.Harness
module Parallel_runner = Sb_harness.Parallel_runner
module Symex = Sb_analysis.Symex
module Finding = Sb_analysis.Finding
open Sb_protection.Types

type cell = {
  ic_app : string;
  ic_scheme : string;
  ic_requests : int;    (* requests actually served (all, unless crashed) *)
  ic_crashed : string option;
  ic_ops : int;
  ic_total : int;       (* finding occurrences, both passes *)
  ic_findings : Finding.t list;
  ic_subset_ok : bool;
}

(** Serve [requests] rounds across [workers] connections of [app] under
    [scheme], tainting each worker's request buffer before every
    request (fresh symbols per request, so cross-request buffer reuse
    is not a double fetch). *)
let run_app ?(requests = 12) ?(workers = 2) ~scheme app : cell =
  let ms = Memsys.create (Config.default ()) in
  Fun.protect ~finally:(fun () -> Memsys.retire ms) @@ fun () ->
  let s0 = Harness.maker scheme ms in
  let s, t = Symex.wrap ~track_races:false s0 in
  Fun.protect ~finally:Symex.unhook @@ fun () ->
  let ctx = Wctx.make s in
  let e = Drivers.make_entries app ctx ~workers in
  let served = ref 0 in
  let label = Drivers.name app ^ ".req" in
  let crashed =
    try
      for _r = 1 to requests do
        for w = 0 to workers - 1 do
          let addr, len = e.Drivers.e_requests.(w) in
          Symex.taint_region t ~addr ~len ~label;
          e.Drivers.e_handler ~worker:w;
          incr served
        done
      done;
      None
    with
    | Violation v -> Some ("violation: " ^ v.reason)
    | App_crash msg -> Some ("crash: " ^ msg)
  in
  {
    ic_app = Drivers.name app;
    ic_scheme = scheme;
    ic_requests = !served;
    ic_crashed = crashed;
    ic_ops = Symex.ops t;
    ic_total = Symex.total t;
    ic_findings = Symex.findings t;
    ic_subset_ok = Symex.subset_ok t;
  }

(** Every shipped app under every scheme; cells own fresh machines, so
    the fan-out is deterministic for any [jobs]. *)
let sweep ?jobs ?(schemes = Sb_schemes.Scheme_info.headline_names) ?requests ?workers () =
  let cells =
    List.concat_map (fun app -> List.map (fun sc -> (app, sc)) schemes)
      Drivers.all
  in
  Parallel_runner.map_list ?jobs
    (fun (app, sc) -> run_app ?requests ?workers ~scheme:sc app)
    cells

let cells_bad cells =
  List.filter
    (fun c -> c.ic_total > 0 || c.ic_crashed <> None || not c.ic_subset_ok)
    cells

let json_of_cell c =
  Json.Obj
    [
      ("app", Json.Str c.ic_app);
      ("scheme", Json.Str c.ic_scheme);
      ("requests", Json.Int c.ic_requests);
      ( "status",
        Json.Str (match c.ic_crashed with None -> "completed" | Some _ -> "crashed") );
      ("ops_audited", Json.Int c.ic_ops);
      ("findings", Json.Int c.ic_total);
      ("subset_ok", Json.Bool c.ic_subset_ok);
      ("detail", Json.List (List.map Finding.to_json c.ic_findings));
    ]

let json_report cells =
  Json.Obj
    [
      ("cells", Json.List (List.map json_of_cell cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("findings",
             Json.Int (List.fold_left (fun acc c -> acc + c.ic_total) 0 cells));
            ("bad", Json.Int (List.length (cells_bad cells)));
            ( "subset_ok",
              Json.Bool (List.for_all (fun c -> c.ic_subset_ok) cells) );
          ] );
    ]

let print_report cells =
  List.iter
    (fun c ->
       let tag =
         match c.ic_crashed with
         | Some msg -> "CRASHED: " ^ msg
         | None ->
           if c.ic_total = 0 then "clean"
           else Printf.sprintf "%d finding(s)" c.ic_total
       in
       Fmt.pr "%-12s %-12s requests=%-4d ops=%-9d %s@." c.ic_app c.ic_scheme
         c.ic_requests c.ic_ops tag;
       List.iter (fun f -> Fmt.pr "    %a@." Finding.pp f) c.ic_findings)
    cells;
  Fmt.pr "interface audit: %d cell(s), %d with findings/crashes@."
    (List.length cells)
    (List.length (cells_bad cells))
