(** The Figure 13 throughput–latency experiment: sweep offered rate per
    (app, scheme, environment) cell, one fresh machine per cell, fanned
    across domains by {!Sb_harness.Parallel_runner}.

    Each cell is self-contained and deterministic, so results are
    identical for any [--jobs] and for either memory engine; machines are
    retired into {!Sb_machine.Pool} after each cell so a sweep recycles
    its big arrays instead of re-faulting fresh ones. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Harness = Sb_harness.Harness
module Parallel_runner = Sb_harness.Parallel_runner
module Wctx = Sb_workloads.Wctx
module Profile = Sb_telemetry.Profile
open Sb_protection.Types

type cell = {
  app : Drivers.app;
  scheme : string;
  env : Config.env;
  cfg : Service.config;
}

type point = {
  pt_app : string;
  pt_scheme : string;
  pt_env : Config.env;
  pt_rate : float;
  pt_outcome : (Service.stats, string) result;
  (* machine-level views captured before the cell's machine is retired *)
  pt_attr : (Memsys.access_class * Memsys.class_stat) list;
  pt_compute : int;
  pt_spans : Spans.log option;  (** request exemplars when traced *)
}

(** Run one cell on a fresh machine; the machine is retired to the pool
    afterwards. Scheme setup or serving crashes become [Error].
    [spans], when given, traces every request and keeps the [spans]
    slowest as exemplars in [pt_spans] (observation only — stats are
    unchanged). The machine's per-class cycle attribution is always
    captured into [pt_attr]/[pt_compute]. *)
let run_cell ?spans (c : cell) =
  let ms = Memsys.create (Config.default ~env:c.env ()) in
  let log =
    Option.map (fun cap -> Spans.create ~cap ~workers:c.cfg.Service.workers ()) spans
  in
  let outcome =
    match
      let s = Harness.maker c.scheme ms in
      let ctx = Wctx.make ~seed:c.cfg.Service.seed ~threads:c.cfg.Service.workers s in
      let handler = Drivers.make c.app ctx ~workers:c.cfg.Service.workers in
      Service.run ?trace:log ms c.cfg handler
    with
    | st -> Ok st
    | exception App_crash msg -> Error msg
    | exception Sb_vmem.Vmem.Enclave_oom _ -> Error "enclave out of memory"
    | exception Violation v -> Error (Fmt.str "%a" pp_violation v)
  in
  let attr = Memsys.attribution ms in
  let compute = Memsys.compute_cycles ms in
  Memsys.retire ms;
  {
    pt_app = Drivers.name c.app;
    pt_scheme = c.scheme;
    pt_env = c.env;
    pt_rate = c.cfg.Service.rate_rps;
    pt_outcome = outcome;
    pt_attr = attr;
    pt_compute = compute;
    pt_spans = log;
  }

(** Profile an app handler: serve [requests] back-to-back requests on
    one worker with a site-attributed profiler attached to the machine —
    scheme operations are "op:<name>" sites
    ({!Sb_protection.Profiled.wrap}), server construction and preload
    run under "setup", each request under "request". No load generator:
    this isolates where a request's cycles go, which is what
    [profile --diff] compares between schemes. *)
let profile_app ?(env = Config.Inside_enclave) ?(requests = 200) ?(seed = 1) ~app
    ~scheme () =
  let cfg = Config.default ~env () in
  let ms = Memsys.create cfg in
  let prof =
    Profile.create ~max_threads:cfg.Config.max_threads ~buckets:Memsys.profile_buckets ()
  in
  Memsys.attach_profiler ms prof;
  let site_setup = Profile.intern prof "setup" in
  let site_req = Profile.intern prof "request" in
  let outcome =
    match
      let handler =
        Profile.with_site prof site_setup (fun () ->
            let s = Sb_protection.Profiled.wrap prof (Harness.maker scheme ms) in
            Drivers.make app (Wctx.make ~seed s) ~workers:1)
      in
      for _ = 1 to requests do
        Profile.with_site prof site_req (fun () -> handler ~worker:0)
      done
    with
    | () -> Ok prof
    | exception App_crash msg -> Error msg
    | exception Sb_vmem.Vmem.Enclave_oom _ -> Error "enclave out of memory"
    | exception Violation v -> Error (Fmt.str "%a" pp_violation v)
  in
  Memsys.retire ms;
  outcome

(** Closed-loop capacity estimate for calibrating a sweep: offer the
    whole schedule at once (every arrival at t=0, queue deep enough to
    hold it) and measure completions per second — the server's peak
    service rate with no idle gaps. *)
let capacity ~app ~scheme ~env ~workers ~requests ~seed =
  let cfg =
    {
      Service.workers;
      queue_cap = max 1 requests;
      requests;
      rate_rps = 1e15;
      process = Loadgen.Fixed;
      seed;
    }
  in
  let pt = run_cell { app; scheme; env; cfg } in
  match pt.pt_outcome with
  | Ok st -> Some (Service.throughput_rps st)
  | Error _ -> None

(** Run [cells] across [jobs] domains; results in cell order. *)
let sweep ?jobs cells = Parallel_runner.map_list ?jobs run_cell cells

(* ---------- TSV export ---------- *)

let tsv_header =
  "app\tscheme\tenv\toffered_rps\tthroughput_rps\toffered\tcompleted\tdropped\t\
   max_queue\tp50_cycles\tp95_cycles\tp99_cycles\tmean_cycles\tmax_cycles\tstatus"

let tsv_line (p : point) =
  match p.pt_outcome with
  | Error msg ->
    Printf.sprintf "%s\t%s\t%s\t%.0f\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\tcrashed: %s"
      p.pt_app p.pt_scheme (Harness.env_name p.pt_env) p.pt_rate msg
  | Ok st ->
    let s = Service.summary st in
    Printf.sprintf "%s\t%s\t%s\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%d\tok"
      p.pt_app p.pt_scheme (Harness.env_name p.pt_env) p.pt_rate
      (Service.throughput_rps st) st.Service.offered st.Service.completed
      st.Service.dropped st.Service.max_queue s.Latency.p50 s.Latency.p95
      s.Latency.p99 s.Latency.mean s.Latency.max

(** Write the sweep as a TSV table (one row per point), creating the
    directory if needed. *)
let write_tsv ~path points =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (tsv_header ^ "\n");
  List.iter (fun p -> output_string oc (tsv_line p ^ "\n")) points;
  close_out oc
