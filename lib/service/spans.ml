(** Per-request trace spans: one record per served request from arrival
    through queue wait and worker execution, with the execution window's
    simulated cycles split by {!Sb_sgx.Memsys.profile_buckets} class.

    The log keeps a bounded reservoir of the K {e slowest} requests by
    sojourn time — the exemplars that explain a Figure-13 knee: a slow
    request whose cycles sit in [queue_wait] was a queueing victim,
    one whose execution cycles sit in the EPC-heavy classes was an EPC
    thrash victim. Admission is by the total order (sojourn, id), so the
    retained set is a pure function of the request stream — independent
    of memory engine and host parallelism, like the service layer
    itself.

    Class cycles are fed by the machine's charge hook
    ({!Sb_sgx.Memsys.set_charge_hook}) while a request is executing on a
    worker; charges outside any request window (idle, admission) land in
    no span. *)

module Memsys = Sb_sgx.Memsys
module Events = Sb_telemetry.Events
module Json = Sb_telemetry.Json

type span = {
  sp_id : int;       (** arrival index in the offered schedule *)
  sp_worker : int;
  sp_arrival : int;  (** cycles: joined the accept queue *)
  sp_dequeue : int;  (** cycles: picked up by the worker *)
  sp_fin : int;      (** cycles: handler returned *)
  sp_classes : int array;  (** exec-window cycles per profile bucket *)
}

let queue_wait sp = sp.sp_dequeue - sp.sp_arrival
let exec sp = sp.sp_fin - sp.sp_dequeue
let sojourn sp = sp.sp_fin - sp.sp_arrival

type log = {
  cap : int;
  buckets : string array;
  mutable reservoir : span list;   (* unsorted, <= cap *)
  mutable recorded : int;          (* spans offered to the reservoir *)
  totals : int array;              (* exec-window cycles per bucket, all requests *)
  cur : int array option array;    (* per-worker open accumulator *)
}

let create ?(cap = 8) ~workers () =
  if cap < 1 then invalid_arg "Spans.create: cap must be >= 1";
  let n = Array.length Memsys.profile_buckets in
  {
    cap;
    buckets = Memsys.profile_buckets;
    reservoir = [];
    recorded = 0;
    totals = Array.make n 0;
    cur = Array.make (max 1 workers) None;
  }

(** The charge hook to install on the machine for the run: routes every
    charge into the worker's open span (if any). [tid] must report the
    machine's current simulated thread = the worker index. *)
let charge_hook log tid =
  fun bucket cost ->
    match log.cur.(tid ()) with
    | Some arr ->
      arr.(bucket) <- arr.(bucket) + cost;
      log.totals.(bucket) <- log.totals.(bucket) + cost
    | None -> ()

let begin_exec log ~worker =
  log.cur.(worker) <- Some (Array.make (Array.length log.buckets) 0)

(** Drop the worker's open accumulator without recording a span — the
    request died with its enclave (fleet instance kill) and must not
    count toward [recorded]. Charges already routed to [totals] stay:
    the machine really spent them. *)
let abort log ~worker = log.cur.(worker) <- None

(* Reservoir admission key: lexicographic (sojourn, id). Unique ids make
   it a total order, so "keep the cap largest" has exactly one answer. *)
let key sp = (sojourn sp, sp.sp_id)

let finish log ~id ~worker ~arrival ~dequeue ~fin =
  let classes =
    match log.cur.(worker) with
    | Some a -> a
    | None -> Array.make (Array.length log.buckets) 0
  in
  log.cur.(worker) <- None;
  let sp =
    { sp_id = id; sp_worker = worker; sp_arrival = arrival; sp_dequeue = dequeue;
      sp_fin = fin; sp_classes = classes }
  in
  log.recorded <- log.recorded + 1;
  if List.length log.reservoir < log.cap then log.reservoir <- sp :: log.reservoir
  else begin
    let mn =
      List.fold_left (fun m s -> if key s < key m then s else m)
        (List.hd log.reservoir) (List.tl log.reservoir)
    in
    if key sp > key mn then
      log.reservoir <- sp :: List.filter (fun s -> s != mn) log.reservoir
  end

(** Retained exemplars, slowest first (ties by id descending — the
    reverse of the admission order, also total). *)
let slowest log =
  List.sort (fun a b -> compare (key b) (key a)) log.reservoir

let recorded log = log.recorded
let totals log = Array.copy log.totals

(* ---------- export ---------- *)

(** Chrome trace_event rendering of the exemplars: per request one
    "wait" complete-event (arrival → dequeue, when nonzero) and one
    "exec" complete-event (dequeue → fin) on the worker's track, the
    exec event carrying the per-class cycles as args. Feed these through
    {!Sb_telemetry.Sink.chrome_trace} by grafting them onto a
    snapshot's event list. *)
let events log =
  List.concat_map
    (fun sp ->
       let name = Printf.sprintf "req:%d" sp.sp_id in
       let wait =
         if queue_wait sp > 0 then
           [ { Events.ts = sp.sp_arrival; tid = sp.sp_worker; name = name ^ " wait";
               cat = "queue"; ph = Events.Complete (queue_wait sp); args = [] } ]
         else []
       in
       let args =
         List.filteri (fun i _ -> sp.sp_classes.(i) > 0)
           (Array.to_list (Array.mapi (fun i b -> (b, string_of_int sp.sp_classes.(i))) log.buckets))
       in
       wait
       @ [ { Events.ts = sp.sp_dequeue; tid = sp.sp_worker; name = name ^ " exec";
             cat = "request"; ph = Events.Complete (exec sp); args } ])
    (slowest log)

let json_of_span log sp =
  Json.Obj
    [
      ("id", Json.Int sp.sp_id);
      ("worker", Json.Int sp.sp_worker);
      ("arrival", Json.Int sp.sp_arrival);
      ("queue_wait", Json.Int (queue_wait sp));
      ("exec", Json.Int (exec sp));
      ("sojourn", Json.Int (sojourn sp));
      ( "classes",
        Json.Obj
          (Array.to_list
             (Array.mapi (fun i b -> (b, Json.Int sp.sp_classes.(i))) log.buckets)) );
    ]

let to_json log =
  Json.Obj
    [
      ("recorded", Json.Int (recorded log));
      ("reservoir_cap", Json.Int log.cap);
      ( "exec_class_totals",
        Json.Obj
          (Array.to_list
             (Array.mapi (fun i b -> (b, Json.Int log.totals.(i))) log.buckets)) );
      ("slowest", Json.List (List.map (json_of_span log) (slowest log)));
    ]
