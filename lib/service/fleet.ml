(** Enclave fleet: N instances of the sharded KV service, each on its
    own simulated machine (own {!Sb_vmem.Vmem}/EPC/cache, drawn from and
    retired to the machine pools), behind one front load balancer.

    The fleet is a discrete-event simulation at the host level. Each
    instance serves requests one at a time per worker; a request's
    service cycles are whatever its handler charges on that instance's
    machine, so the per-scheme EPC behaviour of a shard is exactly the
    single-machine model's. The balancer walks the open-loop arrival
    schedule in time order, routing each request by policy:

    - round-robin over the alive instances,
    - least-loaded by (queue depth + busy workers) at arrival time,
    - consistent-hash sharding of the YCSB key space ({!Ring}).

    Connection affinity pins a client id to its first-routed instance
    for the non-hash policies. A full per-instance accept queue sheds at
    the balancer, like {!Service}.

    Failure/restart: a kill at simulated time K loses the requests in
    flight on that instance, fails its queued requests over through the
    balancer, and relaunches a fresh enclave — teardown + re-attestation
    charged at the {!Sb_scone.Scone} lifecycle costs, plus the measured
    cycles of re-preloading its shard — before the instance rejoins the
    alive set. The ring never changes membership on failure: keys walk
    clockwise past the dead instance and snap back on restart.

    Determinism: every quantity is simulated (seeded arrival schedule,
    seeded op stream, measured machine cycles), kills are configured
    times, and ties break on instance index — so a run is a pure
    function of its config, bit-identical across the naive/fast/trace
    engines and for any host parallelism around it. *)

module Config = Sb_machine.Config
module Rng = Sb_machine.Rng
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Scone = Sb_scone.Scone
module Harness = Sb_harness.Harness
module Parallel_runner = Sb_harness.Parallel_runner
module Wctx = Sb_workloads.Wctx
module Memcached_sim = Sb_apps.Memcached_sim
module Histogram = Sb_telemetry.Metrics.Histogram
open Sb_protection.Types

(* ---------- balancer policies ---------- *)

type policy = Round_robin | Least_loaded | Hash

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Hash -> "hash"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "hash" | "consistent-hash" -> Some Hash
  | _ -> None

let policy_names = [ "round-robin"; "least-loaded"; "hash" ]

(* ---------- consistent-hash ring ---------- *)

module Ring = struct
  (** Consistent hashing with [vnodes] virtual points per instance on a
      splitmix-hashed ring. Key→owner is a pure function of (key,
      instance count), stable across runs and processes; adding or
      removing one instance remaps only the arc segments that gain or
      lose points — ~1/n of the key space, never a reshuffle. *)

  let vnodes = 64

  (* splitmix64 finalizer: deterministic, seedless, well-mixed *)
  let hash x =
    let open Int64 in
    let z = mul (add (of_int x) 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 30)) 0x94D049BB133111EBL in
    Int64.to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

  (* points and keys hash from disjoint id spaces *)
  let point_hash inst v = hash ((((inst * vnodes) + v) * 2) + 0)
  let key_hash k = hash ((k * 2) + 1)

  type t = {
    hashes : int array;  (* sorted ring positions *)
    owners : int array;  (* owning instance per position *)
  }

  let make n =
    if n < 1 then invalid_arg "Ring.make: need at least one instance";
    let pts =
      Array.init (n * vnodes) (fun i ->
          (point_hash (i / vnodes) (i mod vnodes), i / vnodes))
    in
    Array.sort compare pts;
    { hashes = Array.map fst pts; owners = Array.map snd pts }

  (* index of the first point at or clockwise-after [h], wrapping *)
  let position t h =
    let n = Array.length t.hashes in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.hashes.(mid) < h then lo := mid + 1 else hi := mid
    done;
    if !lo = n then 0 else !lo

  let owner t key = t.owners.(position t (key_hash key))

  (** First alive instance clockwise from the key's position — the
      failover route while an owner is down. [None] if nothing is up. *)
  let owner_alive t ~alive key =
    let n = Array.length t.hashes in
    let start = position t (key_hash key) in
    let rec go i steps =
      if steps >= n then None
      else
        let o = t.owners.(i) in
        if alive o then Some o else go ((i + 1) mod n) (steps + 1)
    in
    go start 0
end

(* ---------- configuration ---------- *)

type config = {
  instances : int;      (** fleet size, >= 1 *)
  workers : int;        (** simulated server threads per instance *)
  queue_cap : int;      (** per-instance accept-queue bound *)
  requests : int;       (** offered load: total arrivals *)
  rate_rps : float;     (** offered rate, requests per simulated second *)
  process : Loadgen.process;
  seed : int;
  scheme : string;
  env : Config.env;
  policy : policy;
  affinity : bool;      (** sticky client→instance routing (non-hash) *)
  clients : int;        (** distinct client connections for affinity *)
  workload : Ycsb.workload;
  dist : Ycsb.dist option;  (** key-distribution override *)
  records : int;        (** preloaded KV records (whole key space) *)
  value_bytes : int;
  kills : (int * int) list;
      (** (instance, simulated time) failure injections; each kill loses
          the in-flight requests, fails queued ones over and relaunches
          the instance after teardown + attestation + shard re-preload *)
}

let default =
  {
    instances = 2;
    workers = 2;
    queue_cap = 64;
    requests = 2000;
    rate_rps = 50_000.;
    process = Loadgen.Poisson;
    seed = 1;
    scheme = "sgxbounds";
    env = Config.Inside_enclave;
    policy = Hash;
    affinity = false;
    clients = 64;
    workload = Ycsb.A;
    dist = None;
    records = 4096;
    value_bytes = 96;
    kills = [];
  }

(* ---------- results ---------- *)

type inst_stats = {
  i_idx : int;
  i_completed : int;
  i_lost : int;
  i_restarts : int;
  i_max_queue : int;
  i_latency : Histogram.t;
  i_queue_wait : Histogram.t;
  i_spans : Spans.log option;
}

type stats = {
  offered : int;
  completed : int;
  dropped : int;        (** shed at the balancer (full queue / fleet down) *)
  failed_over : int;    (** requeued to another instance after a kill *)
  lost : int;           (** in flight on an instance when it died *)
  restarts : int;
  elapsed : int;        (** cycles from t=0 to the last completion *)
  records : int;        (** final record count after the stream's inserts *)
  latency : Histogram.t;      (** {!Latency.merge} over the instances *)
  queue_wait : Histogram.t;
  per_instance : inst_stats array;
}

let throughput_rps st =
  if st.elapsed <= 0 then 0.
  else float_of_int st.completed /. (float_of_int st.elapsed /. Loadgen.cycles_per_sec)

let drop_ratio st =
  if st.offered = 0 then 0. else float_of_int st.dropped /. float_of_int st.offered

let summary st = Latency.summary st.latency

(** One line capturing every merged and per-instance counter plus the
    exact histogram moments — what the determinism tests pin across
    engines and [--jobs]. *)
let fingerprint st =
  let s = summary st in
  Printf.sprintf
    "off=%d done=%d drop=%d fo=%d lost=%d rs=%d el=%d rec=%d \
     p50=%d p99=%d max=%d sum=%d qsum=%d inst=[%s]"
    st.offered st.completed st.dropped st.failed_over st.lost st.restarts
    st.elapsed st.records s.Latency.p50 s.Latency.p99 s.Latency.max
    (Histogram.sum st.latency) (Histogram.sum st.queue_wait)
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun i ->
                Printf.sprintf "%d/%d/%d/%d" i.i_completed i.i_lost i.i_restarts
                  i.i_max_queue)
             st.per_instance)))

(* ---------- per-instance server ---------- *)

type inst = {
  idx : int;
  mutable ms : Memsys.t;
  mutable serve : worker:int -> Ycsb.op -> unit;
  queue : (int * int) Queue.t;  (* (op id, enqueue time) *)
  free_at : int array;          (* per worker: busy until this clock *)
  mutable down_until : int;
  mutable pending_kills : int list;  (* ascending times *)
  mutable completed : int;
  mutable lost : int;
  mutable restarts : int;
  mutable max_queue : int;
  latency : Histogram.t;
  queue_wait : Histogram.t;
  spans : Spans.log option;
}

let next_kill inst = match inst.pending_kills with [] -> max_int | k :: _ -> k

let alive inst ~t = inst.down_until <= t

let load inst ~t =
  let busy = ref 0 in
  Array.iter (fun f -> if f > t then incr busy) inst.free_at;
  Queue.length inst.queue + !busy

(* The shard an instance preloads: under hash routing, exactly the keys
   it owns on the ring; under the replicating policies, every record. *)
let shard_keys (cfg : config) ring idx =
  let keys = ref [] in
  for k = cfg.records - 1 downto 0 do
    if cfg.policy <> Hash || Ring.owner ring k = idx then keys := k :: !keys
  done;
  !keys

(* Deterministic per-(instance, incarnation) seed. *)
let inst_seed (cfg : config) idx incarnation =
  (cfg.seed * 1_000_003) + (idx * 7919) + incarnation

(** Build one server incarnation: fresh machine, scheme, KV store, the
    shard preloaded, one connection and I/O buffer per worker. The
    machine's thread-0 clock after this is the setup cost in cycles. *)
let build (cfg : config) ring idx ~seed =
  let ms = Memsys.create (Config.default ~env:cfg.env ()) in
  let s = Harness.maker cfg.scheme ms in
  let ctx = Wctx.make ~seed s in
  let t = Memcached_sim.create ~value_bytes:cfg.value_bytes ctx in
  List.iter (fun k -> Memcached_sim.set_kv t k k) (shard_keys cfg ring idx);
  let conns = Array.init cfg.workers (fun _ -> Memcached_sim.open_conn t) in
  let bufs = Array.init cfg.workers (fun _ -> s.Scheme.malloc 1024) in
  let serve ~worker op =
    let conn = conns.(worker) and buf = bufs.(worker) in
    match op with
    | Ycsb.Read k -> Memcached_sim.serve_request t ~conn ~buf ~key:k ~is_get:true
    | Ycsb.Update k | Ycsb.Insert k ->
      Memcached_sim.serve_request t ~conn ~buf ~key:k ~is_get:false
    | Ycsb.Rmw k ->
      (* one request envelope; the write-back is server-side *)
      Memcached_sim.serve_request t ~conn ~buf ~key:k ~is_get:true;
      Memcached_sim.set_kv t k k
    | Ycsb.Scan (k, len) ->
      Memcached_sim.serve_request t ~conn ~buf ~key:k ~is_get:true;
      for j = 1 to len - 1 do
        ignore (Memcached_sim.get t (k + j))
      done
  in
  (ms, serve)

let install_spans_hook inst =
  match inst.spans with
  | Some log ->
    Memsys.set_charge_hook inst.ms
      (Some (Spans.charge_hook log (fun () -> Memsys.current_thread inst.ms)))
  | None -> ()

(* ---------- the discrete-event drive loop ---------- *)

(** Serve everything this instance can start at or before [t]: pop the
    queue head whenever the earliest-free worker can begin it before the
    horizon (and strictly before the instance's next scheduled kill).
    Each request runs to completion on the instance's machine — its
    measured cycles set the worker's next free time — and is classified
    immediately: completed if it finishes before the kill, lost if the
    kill lands mid-execution. *)
let advance_inst inst ops arrivals ~t ~on_fin =
  let horizon = min t (next_kill inst - 1) in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt inst.queue with
    | None -> continue := false
    | Some (id, enq) ->
      let w = ref 0 in
      for i = 1 to Array.length inst.free_at - 1 do
        if inst.free_at.(i) < inst.free_at.(!w) then w := i
      done;
      let w = !w in
      let start = max inst.free_at.(w) enq in
      if start > horizon then continue := false
      else begin
        ignore (Queue.pop inst.queue);
        Memsys.set_thread inst.ms w;
        Memsys.set_clock inst.ms w start;
        (match inst.spans with
         | Some log -> Spans.begin_exec log ~worker:w
         | None -> ());
        inst.serve ~worker:w ops.(id);
        let fin = Memsys.get_clock inst.ms w in
        inst.free_at.(w) <- fin;
        if fin <= next_kill inst then begin
          inst.completed <- inst.completed + 1;
          Histogram.observe inst.latency (fin - arrivals.(id));
          Histogram.observe inst.queue_wait (start - arrivals.(id));
          (match inst.spans with
           | Some log ->
             Spans.finish log ~id ~worker:w ~arrival:arrivals.(id) ~dequeue:start
               ~fin
           | None -> ());
          on_fin fin
        end
        else begin
          (* the enclave dies with this request on the worker *)
          inst.lost <- inst.lost + 1;
          match inst.spans with
          | Some log -> Spans.abort log ~worker:w
          | None -> ()
        end
      end
  done

(** [run ?spans cfg] drives the whole schedule and returns the merged
    stats. With [spans], each instance keeps its own slowest-K exemplar
    reservoir (observation only — stats are unchanged). *)
let run ?spans (cfg : config) =
  if cfg.instances < 1 then invalid_arg "Fleet.run: instances must be >= 1";
  if cfg.workers < 1 then invalid_arg "Fleet.run: workers must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Fleet.run: queue_cap must be >= 1";
  if cfg.clients < 1 then invalid_arg "Fleet.run: clients must be >= 1";
  if cfg.records < 1 then invalid_arg "Fleet.run: records must be >= 1";
  List.iter
    (fun (i, at) ->
       if i < 0 || i >= cfg.instances then
         invalid_arg "Fleet.run: kill names an instance out of range";
       if at < 0 then invalid_arg "Fleet.run: kill time must be >= 0")
    cfg.kills;
  let rng = Rng.create cfg.seed in
  let arrivals =
    Loadgen.arrivals ~rng ~process:cfg.process ~rate_rps:cfg.rate_rps
      ~n:cfg.requests
  in
  let op_seed = Rng.split rng in
  let ops, final_records =
    Ycsb.generate ?dist:cfg.dist ~seed:op_seed ~workload:cfg.workload
      ~records:cfg.records ~n:cfg.requests ()
  in
  let ring = Ring.make cfg.instances in
  (* every machine ever built, retired when the run ends (or crashes) *)
  let machines = ref [] in
  let retire_all () = List.iter Memsys.retire !machines in
  let kills = List.sort compare (List.map (fun (i, at) -> (at, i)) cfg.kills) in
  let outcome =
    match
      let insts =
        Array.init cfg.instances (fun idx ->
            let ms, serve = build cfg ring idx ~seed:(inst_seed cfg idx 0) in
            machines := ms :: !machines;
            let inst =
              {
                idx;
                ms;
                serve;
                queue = Queue.create ();
                free_at = Array.make cfg.workers 0;
                down_until = 0;
                pending_kills =
                  List.filter_map
                    (fun (at, i) -> if i = idx then Some at else None)
                    kills;
                completed = 0;
                lost = 0;
                restarts = 0;
                max_queue = 0;
                latency = Histogram.create (Printf.sprintf "fleet.%d.latency" idx);
                queue_wait =
                  Histogram.create (Printf.sprintf "fleet.%d.queue_wait" idx);
                spans =
                  Option.map (fun cap -> Spans.create ~cap ~workers:cfg.workers ())
                    spans;
              }
            in
            install_spans_hook inst;
            inst)
      in
      let dropped = ref 0 and failed_over = ref 0 and last_fin = ref 0 in
      let rr = ref 0 in
      let sticky = Array.make cfg.clients (-1) in
      let on_fin fin = if fin > !last_fin then last_fin := fin in
      let advance_all ~t =
        Array.iter (fun inst -> advance_inst inst ops arrivals ~t ~on_fin) insts
      in
      let rr_next ~t =
        let n = cfg.instances in
        let rec go tries =
          if tries >= n then None
          else begin
            let i = !rr mod n in
            incr rr;
            if alive insts.(i) ~t then Some i else go (tries + 1)
          end
        in
        go 0
      in
      let ll_pick ~t =
        let best = ref None in
        Array.iter
          (fun inst ->
             if alive inst ~t then begin
               let l = load inst ~t in
               match !best with
               | Some (_, bl) when bl <= l -> ()
               | _ -> best := Some (inst.idx, l)
             end)
          insts;
        Option.map fst !best
      in
      (* Route one request at time [t]: pick an instance by policy among
         the alive ones, shed if its queue is full (or nothing is up). *)
      let route ~t ~id ~requeue =
        let choice =
          match cfg.policy with
          | Hash ->
            Ring.owner_alive ring ~alive:(fun i -> alive insts.(i) ~t)
              (Ycsb.op_key ops.(id))
          | Round_robin | Least_loaded ->
            let client = id mod cfg.clients in
            if
              cfg.affinity && sticky.(client) >= 0
              && alive insts.(sticky.(client)) ~t
            then Some sticky.(client)
            else begin
              let c =
                match cfg.policy with
                | Round_robin -> rr_next ~t
                | Least_loaded -> ll_pick ~t
                | Hash -> assert false
              in
              (match c with
               | Some i when cfg.affinity -> sticky.(client) <- i
               | _ -> ());
              c
            end
        in
        match choice with
        | None -> incr dropped
        | Some i ->
          let inst = insts.(i) in
          if Queue.length inst.queue >= cfg.queue_cap then incr dropped
          else begin
            Queue.add (id, t) inst.queue;
            if Queue.length inst.queue > inst.max_queue then
              inst.max_queue <- Queue.length inst.queue;
            if requeue then incr failed_over
          end
      in
      let do_kill inst ~at =
        inst.pending_kills <- List.tl inst.pending_kills;
        let queued = List.of_seq (Queue.to_seq inst.queue) in
        Queue.clear inst.queue;
        inst.restarts <- inst.restarts + 1;
        let old = inst.ms in
        Memsys.retire old;
        machines := List.filter (fun m -> m != old) !machines;
        (* relaunch: fresh enclave + shard re-preload, then the SCONE
           lifecycle bill — EPC teardown and the re-attestation round
           trip — before the instance rejoins the alive set *)
        let ms, serve =
          build cfg ring inst.idx ~seed:(inst_seed cfg inst.idx inst.restarts)
        in
        machines := ms :: !machines;
        Memsys.charge_alu ms (Scone.enclave_teardown + Scone.enclave_attest);
        let ready = at + Memsys.get_clock ms 0 in
        inst.ms <- ms;
        inst.serve <- serve;
        install_spans_hook inst;
        Array.fill inst.free_at 0 cfg.workers ready;
        inst.down_until <- ready;
        (* the queued requests fail over through the balancer *)
        List.iter (fun (id, _) -> route ~t:at ~id ~requeue:true) queued
      in
      let pending = ref kills in
      let process_kills_until t =
        let continue = ref true in
        while !continue do
          match !pending with
          | (at, i) :: rest when at <= t ->
            pending := rest;
            advance_all ~t:at;
            do_kill insts.(i) ~at
          | _ -> continue := false
        done
      in
      for id = 0 to cfg.requests - 1 do
        let t = arrivals.(id) in
        process_kills_until t;
        advance_all ~t;
        route ~t ~id ~requeue:false
      done;
      process_kills_until max_int;
      advance_all ~t:max_int;
      let per_instance =
        Array.map
          (fun inst ->
             {
               i_idx = inst.idx;
               i_completed = inst.completed;
               i_lost = inst.lost;
               i_restarts = inst.restarts;
               i_max_queue = inst.max_queue;
               i_latency = inst.latency;
               i_queue_wait = inst.queue_wait;
               i_spans = inst.spans;
             })
          insts
      in
      let hs f = Array.to_list (Array.map f per_instance) in
      {
        offered = cfg.requests;
        completed = Array.fold_left (fun a i -> a + i.i_completed) 0 per_instance;
        dropped = !dropped;
        failed_over = !failed_over;
        lost = Array.fold_left (fun a i -> a + i.i_lost) 0 per_instance;
        restarts = Array.fold_left (fun a i -> a + i.i_restarts) 0 per_instance;
        elapsed = !last_fin;
        records = final_records;
        latency = Latency.merge "fleet.latency" (hs (fun i -> i.i_latency));
        queue_wait = Latency.merge "fleet.queue_wait" (hs (fun i -> i.i_queue_wait));
        per_instance;
      }
    with
    | st -> Ok st
    | exception App_crash msg -> Error msg
    | exception Sb_vmem.Vmem.Enclave_oom _ -> Error "enclave out of memory"
    | exception Violation v -> Error (Fmt.str "%a" pp_violation v)
  in
  retire_all ();
  outcome

(** Closed-loop fleet capacity: the whole schedule offered at t=0 with a
    queue deep enough to hold it — completions per second at full
    pressure, the number the capacity-vs-shards table plots. *)
let capacity cfg =
  let cfg =
    {
      cfg with
      rate_rps = 1e15;
      process = Loadgen.Fixed;
      queue_cap = max cfg.queue_cap cfg.requests;
    }
  in
  match run cfg with Ok st -> Some (throughput_rps st) | Error _ -> None

(** Run independent fleet configs across domains; results in order.
    Each config is self-contained, so any [--jobs] gives identical
    results. *)
let sweep ?jobs cfgs = Parallel_runner.map_list ?jobs run cfgs

(* ---------- fleetcap TSV schema ---------- *)

let capacity_tsv_header =
  "scheme\tshards\tpolicy\tycsb\trecords\tcapacity_kops\toffered_rps\t\
   completed\tdropped\tfailed_over\tlost\trestarts\tp50_cycles\tp99_cycles\tstatus"

(** One row of [results/fleet_capacity.tsv]: the closed-loop capacity of
    a (scheme, shard count) cell plus the open-loop run at the target
    rate that supplies its tail latency. *)
let capacity_tsv_line ~scheme ~shards ~policy ~workload ~records ~capacity_kops
    ~offered_rps outcome =
  match outcome with
  | Error msg ->
    Printf.sprintf "%s\t%d\t%s\t%s\t%d\t%.1f\t%.0f\t0\t0\t0\t0\t0\t0\t0\tcrashed: %s"
      scheme shards (policy_name policy) (Ycsb.name workload) records
      capacity_kops offered_rps msg
  | Ok st ->
    let s = summary st in
    Printf.sprintf "%s\t%d\t%s\t%s\t%d\t%.1f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\tok"
      scheme shards (policy_name policy) (Ycsb.name workload) records
      capacity_kops offered_rps st.completed st.dropped st.failed_over st.lost
      st.restarts s.Latency.p50 s.Latency.p99
