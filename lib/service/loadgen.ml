(** Open-loop arrival processes.

    An open-loop generator decides request arrival times *independently
    of the server* — requests keep arriving on schedule whether or not
    earlier ones have finished, which is what exposes queueing delay and
    the overload knee that closed-loop drivers (our `*_bench` functions,
    ab, memaslap in its default mode) structurally cannot see.

    Arrival timestamps are simulated cycles on the machine's 1 GHz
    clock convention (1 simulated second = 1e9 cycles, as in the bench
    throughput figures), generated deterministically from a seeded
    {!Sb_machine.Rng}: the same (seed, process, rate, n) always yields
    the same schedule, on either memory engine and for any host
    parallelism. *)

module Rng = Sb_machine.Rng

let cycles_per_sec = 1_000_000_000.

type process =
  | Fixed
      (** constant inter-arrival gap — a paced benchmark client *)
  | Poisson
      (** exponential inter-arrival gaps — memoryless internet traffic *)
  | Burst of int
      (** groups of [k] back-to-back arrivals separated by [k] gaps:
          the same mean rate as [Fixed], maximally bunched *)

let default_burst = 16

let to_string = function
  | Fixed -> "fixed"
  | Poisson -> "poisson"
  | Burst _ -> "burst"

let of_string = function
  | "fixed" -> Some Fixed
  | "poisson" -> Some Poisson
  | "burst" -> Some (Burst default_burst)
  | _ -> None

let process_names = [ "fixed"; "poisson"; "burst" ]

(** [arrivals ~rng ~process ~rate_rps ~n] is the sorted array of [n]
    arrival timestamps (cycles, relative to the start of the run) of an
    open-loop client offering [rate_rps] requests per simulated second. *)
let arrivals ~rng ~process ~rate_rps ~n =
  if rate_rps <= 0. then invalid_arg "Loadgen.arrivals: rate must be positive";
  if n < 0 then invalid_arg "Loadgen.arrivals: negative request count";
  let gap = cycles_per_sec /. rate_rps in
  let t = ref 0. in
  Array.init n (fun i ->
      (match process with
       | Fixed -> t := !t +. gap
       | Poisson ->
         (* inverse-CDF exponential; Rng.float is in [0,1) so the log
            argument stays strictly positive *)
         t := !t +. (-.log (1. -. Rng.float rng) *. gap)
       | Burst k ->
         let k = max 1 k in
         if i mod k = 0 then t := !t +. (gap *. float_of_int k));
      int_of_float !t)
