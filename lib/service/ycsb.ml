(** YCSB-style workload generator: the standard A–F core-workload mixes
    over a keyed record store, as a deterministic op stream.

    The generator is pure: [generate ~seed ~workload ~records ~n] is the
    op schedule, computed up front from a seeded {!Sb_machine.Rng} with
    no reference to the server — the open-loop discipline of the rest of
    the service layer. Inserts extend the key space at generation time
    (key [records], then [records + 1], ...), so every op's key is
    bounded by the record count in force when it was drawn, and the
    stream replays identically on any engine and any host parallelism.

    Key distributions follow the YCSB core package: a Gray-et-al
    zipfian over the initial record range (theta 0.99; the popular keys
    are the low ids — we skip YCSB's hash-scrambling so skew is visible
    to tests and to the consistent-hash ring), "latest" as the same
    zipfian measured back from the most recent insert, and uniform. *)

module Rng = Sb_machine.Rng

type workload = A | B | C | D | E | F

let all = [ A; B; C; D; E; F ]

let name = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | E -> "E" | F -> "F"

let of_string s =
  match String.uppercase_ascii s with
  | "A" -> Some A
  | "B" -> Some B
  | "C" -> Some C
  | "D" -> Some D
  | "E" -> Some E
  | "F" -> Some F
  | _ -> None

let workload_names = List.map name all

type dist = Uniform | Zipfian | Latest

let dist_name = function Uniform -> "uniform" | Zipfian -> "zipfian" | Latest -> "latest"

let dist_of_string = function
  | "uniform" -> Some Uniform
  | "zipfian" -> Some Zipfian
  | "latest" -> Some Latest
  | _ -> None

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int  (** start key, length *)
  | Rmw of int         (** read-modify-write: get then set of one key *)

let op_key = function
  | Read k | Update k | Insert k | Scan (k, _) | Rmw k -> k

(** Operation mix of a workload: fractions sum to 1. [m_dist] is the
    request-key distribution; overridable per run. *)
type mix = {
  m_read : float;
  m_update : float;
  m_insert : float;
  m_scan : float;
  m_rmw : float;
  m_dist : dist;
}

(* The YCSB core-workload definitions (workloads/workload[a-f]). *)
let mix = function
  | A -> { m_read = 0.5; m_update = 0.5; m_insert = 0.; m_scan = 0.; m_rmw = 0.; m_dist = Zipfian }
  | B -> { m_read = 0.95; m_update = 0.05; m_insert = 0.; m_scan = 0.; m_rmw = 0.; m_dist = Zipfian }
  | C -> { m_read = 1.0; m_update = 0.; m_insert = 0.; m_scan = 0.; m_rmw = 0.; m_dist = Zipfian }
  | D -> { m_read = 0.95; m_update = 0.; m_insert = 0.05; m_scan = 0.; m_rmw = 0.; m_dist = Latest }
  | E -> { m_read = 0.; m_update = 0.; m_insert = 0.05; m_scan = 0.95; m_rmw = 0.; m_dist = Zipfian }
  | F -> { m_read = 0.5; m_update = 0.; m_insert = 0.; m_scan = 0.; m_rmw = 0.5; m_dist = Zipfian }

let max_scan_len = 16

(* ---------- zipfian (Gray et al., the YCSB generator) ---------- *)

let zipf_theta = 0.99

type zipf = {
  z_n : int;
  z_zetan : float;
  z_alpha : float;
  z_eta : float;
}

let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. (float_of_int i ** theta))
  done;
  !s

let zipf_make n =
  let n = max 1 n in
  let zetan = zeta n zipf_theta in
  let zeta2 = zeta 2 zipf_theta in
  {
    z_n = n;
    z_zetan = zetan;
    z_alpha = 1. /. (1. -. zipf_theta);
    z_eta =
      (1. -. ((2. /. float_of_int n) ** (1. -. zipf_theta)))
      /. (1. -. (zeta2 /. zetan));
  }

(** Draw from [0, z_n): rank 0 is the most popular key. *)
let zipf_draw z rng =
  let u = Rng.float rng in
  let uz = u *. z.z_zetan in
  if uz < 1. then 0
  else if uz < 1. +. (0.5 ** zipf_theta) then 1
  else
    let k =
      int_of_float
        (float_of_int z.z_n *. (((z.z_eta *. u) -. z.z_eta +. 1.) ** z.z_alpha))
    in
    min (z.z_n - 1) (max 0 k)

(* ---------- op-stream generation ---------- *)

(** [generate ?dist ~seed ~workload ~records ~n ()] is [(ops, final)]:
    [n] operations over an initially-[records]-key store, and the record
    count after the stream's inserts. [dist] overrides the workload's
    standard key distribution. *)
let generate ?dist ~seed ~workload ~records ~n () =
  if records < 1 then invalid_arg "Ycsb.generate: records must be >= 1";
  if n < 0 then invalid_arg "Ycsb.generate: negative op count";
  let m = mix workload in
  let dist = Option.value dist ~default:m.m_dist in
  let rng = Rng.create seed in
  let zipf = zipf_make records in
  let cur = ref records in
  let key () =
    match dist with
    | Uniform -> Rng.int rng !cur
    | Zipfian ->
      (* the zipfian ranks cover the preloaded range; keys inserted
         mid-stream are only reachable through Latest (YCSB's D) *)
      zipf_draw zipf rng
    | Latest ->
      (* most recent insert = rank 0, measured back from the tail *)
      let k = !cur - 1 - zipf_draw zipf rng in
      max 0 k
  in
  let ops =
    Array.init n (fun _ ->
        let r = Rng.float rng in
        let t1 = m.m_read in
        let t2 = t1 +. m.m_update in
        let t3 = t2 +. m.m_insert in
        let t4 = t3 +. m.m_scan in
        if r < t1 then Read (key ())
        else if r < t2 then Update (key ())
        else if r < t3 then begin
          let k = !cur in
          incr cur;
          Insert k
        end
        else if r < t4 then begin
          let k = key () in
          let len = Rng.range rng 1 max_scan_len in
          Scan (k, min len (!cur - k))
        end
        else Rmw (key ()))
  in
  (ops, !cur)
