(** Deterministic perf-score gate: a host-noise-free proxy for the
    simulator's own speed, built only from quantities that are a pure
    function of the code — simulated work (memory accesses + retired
    instructions) and OCaml allocation words ([Gc.allocated_bytes]
    deltas). No wall clock anywhere, so the score is bit-identical
    across runs on the same build and comparable across machines.

    Why allocation words: in an OCaml simulator the allocation rate per
    unit of simulated work is the dominant, deterministic component of
    host cost — a change that makes the hot path box values or rebuild
    closures shows up here exactly, every run, while wall-clock
    measurements of the same change drown in scheduler noise. The
    simulated-work denominator pins the other half: a change that makes
    the machine do *more* simulated work for the same kernel moves the
    per-kernel [accesses]/[instrs] fields, which the gate also reports.

    Each kernel runs once as warm-up (faults in lazy state, grows hash
    tables, fills the machine pools) and once measured; the score is
    allocation words per 1000 units of simulated work. Scores are only
    comparable between runs at the {e same} input scale — fixed setup
    allocation amortizes differently over smoke and full inputs — so
    the document records its scale and {!gate} refuses a cross-scale
    comparison, exactly like an engine mismatch.

    The gate is two-sided: an unexplained {e improvement} beyond
    tolerance fails just like a regression, because it means the
    committed baseline no longer describes the build and must be
    regenerated — silent drift in either direction erodes what the
    gate can prove.

    [SGXBOUNDS_SCORE_PERTURB=<pct>] perturbs the measured allocation by
    [pct] percent — positive values through real allocations inside the
    measured window (riding the same path a genuine regression would),
    negative values by deflating the measured delta (drift injection; no
    way to un-allocate). The hook check.sh uses to prove the gate fails
    on deliberate movement in both directions. *)

module Config = Sb_machine.Config
module Fastpath = Sb_machine.Fastpath
module Rng = Sb_machine.Rng
module Vmem = Sb_vmem.Vmem
module Memsys = Sb_sgx.Memsys
module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Wctx = Sb_workloads.Wctx
module Json = Sb_telemetry.Json

type sample = { s_accesses : int; s_instrs : int; s_cycles : int }

type measurement = {
  m_kernel : string;
  m_accesses : int;      (** simulated memory accesses of the measured run *)
  m_instrs : int;        (** simulated ALU instructions of the measured run *)
  m_cycles : int;        (** simulated cycles (behaviour fingerprint) *)
  m_alloc_words : int;   (** OCaml words allocated during the measured run *)
  m_score : int;         (** allocation words per 1000 units of simulated work *)
}

let version = 1
let word_bytes = Sys.word_size / 8
let engine () = Fastpath.current_name ()

(** [Gc.allocated_bytes]'s unit is not the same on every runtime (this
    one reports words); calibrate once against a known allocation — 64k
    [ref]s = 128k words — instead of trusting the documentation. *)
let units_per_word =
  lazy
    (Gc.full_major ();
     let before = Gc.allocated_bytes () in
     let sink = ref 0 in
     for i = 1 to 65536 do
       sink := !(Sys.opaque_identity (ref i))
     done;
     ignore (Sys.opaque_identity !sink);
     let delta = Gc.allocated_bytes () -. before in
     max 1 (int_of_float ((delta /. 131072.) +. 0.5)))

let perturb_pct () =
  match Sys.getenv_opt "SGXBOUNDS_SCORE_PERTURB" with
  | None -> 0
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some v when v > -100 -> v
               | _ -> 0)

let work s = max 1 (s.s_accesses + s.s_instrs)

(** Warm up, then measure one kernel. The perturbation (when requested)
    allocates [pct]% of the kernel's own measured words *inside* the
    measured window, so it rides the same path a real regression
    would. *)
let measure (name, f) =
  let upw = Lazy.force units_per_word in
  ignore (f ());
  (* Empty the minor heap before opening the window: [allocated_bytes]
     subtracts promoted words, so survivors of *earlier* work being
     promoted mid-window would otherwise deflate this kernel's delta. *)
  Gc.full_major ();
  let before = Gc.allocated_bytes () in
  let sim = f () in
  let p = perturb_pct () in
  if p > 0 then begin
    (* allocate p% of the kernel's own measured allocation on top,
       self-calibrating: loop until the counter says we got there *)
    let mid = Gc.allocated_bytes () in
    let target = (mid -. before) *. float_of_int p /. 100. in
    let sink = ref 0 in
    while Gc.allocated_bytes () -. mid < target do
      sink := !(Sys.opaque_identity (ref !sink))
    done;
    ignore (Sys.opaque_identity !sink)
  end;
  let after = Gc.allocated_bytes () in
  let measured = after -. before in
  (* Negative perturbation deflates the measured delta arithmetically:
     allocation cannot be taken back, and the hook only needs the gate
     to see a too-good-to-be-true number. *)
  let measured =
    if p < 0 then measured *. (1. +. (float_of_int p /. 100.)) else measured
  in
  let alloc_words = int_of_float (measured /. float_of_int upw) in
  {
    m_kernel = name;
    m_accesses = sim.s_accesses;
    m_instrs = sim.s_instrs;
    m_cycles = sim.s_cycles;
    m_alloc_words = alloc_words;
    m_score = alloc_words * 1000 / work sim;
  }

(* ---------- kernels ---------- *)

let sample_of_ms ms =
  let snap = Memsys.snapshot ms in
  {
    s_accesses = snap.Memsys.mem_accesses;
    s_instrs = snap.Memsys.instrs;
    s_cycles = snap.Memsys.cycles;
  }

(** Raw engine speed: a deterministic access mix straight on one
    [Memsys] — hot-word hammering (the same-line fast paths), byte
    scans, random loads (miss + EPC traffic) and bulk fill/blit. *)
let access_mix ~rounds () =
  let ms = Memsys.create (Config.default ()) in
  let vm = Memsys.vmem ms in
  let buf_len = 128 * 1024 in
  let buf = Vmem.map vm ~len:buf_len ~perm:Vmem.Read_write () in
  let words = buf_len / 8 in
  let rng = Rng.create 42 in
  for r = 1 to rounds do
    for i = 1 to 4096 do
      let v = Memsys.load ms ~addr:buf ~width:8 in
      Memsys.store ms ~addr:buf ~width:8 (v + i)
    done;
    for b = 0 to 8191 do
      ignore (Memsys.load ms ~addr:(buf + b) ~width:1)
    done;
    for _ = 1 to 2048 do
      let w = Rng.int rng words in
      ignore (Memsys.load ms ~addr:(buf + (w * 8)) ~width:8)
    done;
    Memsys.fill ms ~addr:buf ~len:8192 ~byte:(r land 0xff);
    Memsys.blit ms ~src:buf ~dst:(buf + 65536) ~len:8192
  done;
  let s = sample_of_ms ms in
  Memsys.retire ms;
  s

let sample_of_result (r : Harness.result) =
  match r.Harness.outcome with
  | Harness.Completed m ->
    {
      s_accesses = m.Harness.mem_accesses;
      s_instrs = m.Harness.instrs;
      s_cycles = m.Harness.cycles;
    }
  | Harness.Crashed msg ->
    failwith (Printf.sprintf "score kernel %s/%s crashed: %s" r.Harness.workload
                r.Harness.scheme msg)

(** Full harness path: workload under a scheme on a fresh machine. *)
let workload_kernel ~wname ~scheme ~n () =
  sample_of_result (Harness.run_one ~scheme ~n (Registry.find wname))

(** The profiling path itself: same cell with a site-attributed profiler
    attached — pins the observability layer's own host cost. *)
let profiled_kernel ~wname ~scheme ~n () =
  let r, _prof = Harness.run_profiled ~scheme ~n (Registry.find wname) in
  sample_of_result r

(** The service layer: open-loop memcached cell, spans traced — covers
    the scheduler, the request drivers and the span reservoir. *)
let serve_kernel ~requests () =
  let ms = Memsys.create (Config.default ()) in
  let cfg =
    {
      Service.workers = 2;
      queue_cap = 32;
      requests;
      rate_rps = 100_000.;
      process = Loadgen.Poisson;
      seed = 1;
    }
  in
  let s = Harness.maker "sgxbounds" ms in
  let ctx = Wctx.make ~seed:1 ~threads:cfg.Service.workers s in
  let handler = Drivers.make Drivers.Memcached ctx ~workers:cfg.Service.workers in
  let log = Spans.create ~cap:8 ~workers:cfg.Service.workers () in
  ignore (Service.run ~trace:log ms cfg handler);
  let s = sample_of_ms ms in
  Memsys.retire ms;
  s

(** The kernel line-up, one per layer of the stack. Smoke shrinks the
    inputs ~4x; the score is intensive, so smoke and full runs of the
    same build agree within the gate's tolerance. *)
let kernels ~smoke =
  let d = if smoke then 4 else 1 in
  [
    ("access-mix/native", access_mix ~rounds:(max 1 (4 / d)));
    ("kmeans/sgxbounds", workload_kernel ~wname:"kmeans" ~scheme:"sgxbounds" ~n:(2048 / d));
    ("mcf/asan", workload_kernel ~wname:"mcf" ~scheme:"asan" ~n:(8192 / d));
    ("memcached/serve", serve_kernel ~requests:(400 / d));
    ("kmeans/profiled", profiled_kernel ~wname:"kmeans" ~scheme:"sgxbounds" ~n:(2048 / d));
  ]

let measure_all ~smoke = List.map measure (kernels ~smoke)

let total ms = List.fold_left (fun a m -> a + m.m_score) 0 ms

(* ---------- JSON document with trend ---------- *)

let json_of_measurement m =
  Json.Obj
    [
      ("kernel", Json.Str m.m_kernel);
      ("accesses", Json.Int m.m_accesses);
      ("instrs", Json.Int m.m_instrs);
      ("cycles", Json.Int m.m_cycles);
      ("alloc_words", Json.Int m.m_alloc_words);
      ("score", Json.Int m.m_score);
    ]

(** Build the BENCH document. [prev] is the previously committed
    document (if any): its trend array is carried over, minus any entry
    with the same label — so re-running with an unchanged build and the
    same label reproduces the file byte for byte. *)
let doc ~smoke ~label ~prev ms =
  let entry =
    Json.Obj
      [
        ("label", Json.Str label);
        ("score_total", Json.Int (total ms));
        ( "kernels",
          Json.Obj (List.map (fun m -> (m.m_kernel, Json.Int m.m_score)) ms) );
      ]
  in
  let carried =
    match prev with
    | None -> []
    | Some j ->
      (match Json.member "trend" j with
       | Some (Json.List l) ->
         List.filter
           (fun e ->
              match Json.member "label" e with
              | Some (Json.Str l) -> l <> label
              | _ -> true)
           l
       | _ -> [])
  in
  Json.Obj
    [
      ("bench", Json.Str "score");
      ("version", Json.Int version);
      ("engine", Json.Str (engine ()));
      ("smoke", Json.Bool smoke);
      ("word_bytes", Json.Int word_bytes);
      ("kernels", Json.List (List.map json_of_measurement ms));
      ("score_total", Json.Int (total ms));
      ("trend", Json.List (carried @ [ entry ]));
    ]

(* ---------- the gate ---------- *)

type verdict = {
  v_kernel : string;
  v_old : int;
  v_new : int;
  v_regressed : bool;  (** new > old beyond tolerance (higher = worse) *)
  v_improved : bool;
      (** new < old beyond tolerance — also a gate failure: the
          committed baseline is stale and must be regenerated *)
}

(** Compare a fresh run against a committed baseline document. Fails
    (Error) when the comparison itself is meaningless: engine or input
    scale (smoke vs full) mismatch, or no kernel in common. A kernel
    only present on one side is skipped — renaming kernels updates the
    baseline, it does not break the gate. *)
let gate ~smoke ~tolerance_pct ~baseline ms =
  let this_engine = engine () in
  match Json.member "engine" baseline with
  | None -> Error "baseline has no \"engine\" key — not a `bench score' document"
  | Some (Json.Str e) when e <> this_engine ->
    Error
      (Printf.sprintf
         "engine mismatch: baseline measured on %S, this run on %S — regenerate \
          the baseline under the same engine" e this_engine)
  | Some _ when
      (match Json.member "smoke" baseline with
       | Some (Json.Bool b) -> b <> smoke
       | _ -> false) ->
    Error
      (Printf.sprintf
         "input-scale mismatch: baseline is a %s run, this is a %s run — scores \
          only compare at equal scale"
         (if smoke then "full" else "smoke")
         (if smoke then "smoke" else "full"))
  | Some _ ->
    let bkernels =
      match Json.member "kernels" baseline with Some (Json.List l) -> l | _ -> []
    in
    let old_of name =
      List.find_map
        (fun k ->
           match (Json.member "kernel" k, Json.member "score" k) with
           | Some (Json.Str n), Some s when n = name -> Json.to_int s
           | _ -> None)
        bkernels
    in
    let verdicts =
      List.filter_map
        (fun m ->
           Option.map
             (fun old ->
                let slack = max 1 (old * tolerance_pct / 100) in
                {
                  v_kernel = m.m_kernel;
                  v_old = old;
                  v_new = m.m_score;
                  v_regressed = m.m_score > old + slack;
                  v_improved = m.m_score < old - slack;
                })
             (old_of m.m_kernel))
        ms
    in
    if verdicts = [] then
      Error "baseline shares no kernels with this run — regenerate it"
    else Ok verdicts
