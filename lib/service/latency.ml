(** Latency summaries over the power-of-two histograms of
    {!Sb_telemetry.Metrics.Histogram}, plus the exact sorted-array
    reference the tests compare them against. *)

module Histogram = Sb_telemetry.Metrics.Histogram

type summary = {
  count : int;
  mean : float;   (* cycles *)
  max : int;      (* cycles *)
  p50 : int;      (* cycles, rank-interpolated *)
  p95 : int;
  p99 : int;
}

let summary h =
  {
    count = Histogram.count h;
    mean = Histogram.mean h;
    max = Histogram.max_value h;
    p50 = Histogram.quantile_interp h 0.50;
    p95 = Histogram.quantile_interp h 0.95;
    p99 = Histogram.quantile_interp h 0.99;
  }

(** [merge name hs] pools per-instance histograms into one fresh
    histogram — the fleet roll-up. Bucket counts, count, sum and max add
    exactly, so a quantile of the merge equals a quantile of one
    histogram fed every underlying sample: the interp-vs-exact bound
    (factor of 2) carries over to the pooled exact reference unchanged. *)
let merge name hs =
  let m = Histogram.create name in
  List.iter (fun h -> Histogram.merge_into m h) hs;
  m

(** Exact quantile of a sample set: the value of rank [ceil (q * n)] in
    the sorted order (the nearest-rank definition the histogram
    estimators approximate). *)
let exact_percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
    sorted.(rank - 1)
  end

(* The machine runs at a simulated 1 GHz, so cycles/1000 = microseconds. *)
let us_of_cycles c = float_of_int c /. 1000.

let pp ppf s =
  Fmt.pf ppf "p50 %.1fus  p95 %.1fus  p99 %.1fus  mean %.1fus  max %.1fus"
    (us_of_cycles s.p50) (us_of_cycles s.p95) (us_of_cycles s.p99)
    (s.mean /. 1000.) (us_of_cycles s.max)
