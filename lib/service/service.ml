(** Open-loop request scheduler: the serving half of the load generator.

    [run] multiplexes an arrival schedule (from {!Loadgen}) over [workers]
    cooperative {!Sb_mt.Mt} threads of one simulated machine. Arrivals are
    admitted into a bounded accept queue; when the queue is full, the
    request is shed and counted — the server degrades by dropping, it
    never wedges. Each admitted request is served by the app handler on
    whichever worker thread dequeues it, and its sojourn time (completion
    minus arrival, queueing included) lands in a power-of-two histogram.

    Determinism: the worker loop consults only simulated clocks, the
    min-clock {!Sb_mt.Mt} schedule and host-side queue state derived from
    them, so a run is a pure function of (machine config, scheme, handler,
    config) — identical on the fast and naive memory engines and for any
    host parallelism around it.

    Termination: every arrival is eventually admitted or shed (idle
    workers jump their clock to the next arrival), every admitted request
    is served by the next worker to observe it, and workers exit once the
    schedule is exhausted and the queue drained — so overload slows
    completion but cannot deadlock. *)

module Memsys = Sb_sgx.Memsys
module Mt = Sb_mt.Mt
module Telemetry = Sb_telemetry.Telemetry
module Histogram = Sb_telemetry.Metrics.Histogram
module Rng = Sb_machine.Rng

type config = {
  workers : int;        (** simulated server threads, >= 1 *)
  queue_cap : int;      (** accept-queue bound, >= 1 *)
  requests : int;       (** offered load: total arrivals *)
  rate_rps : float;     (** offered rate, requests per simulated second *)
  process : Loadgen.process;
  seed : int;           (** arrival-schedule seed *)
}

let default =
  {
    workers = 4;
    queue_cap = 64;
    requests = 2000;
    rate_rps = 50_000.;
    process = Loadgen.Poisson;
    seed = 1;
  }

type stats = {
  offered : int;
  completed : int;
  dropped : int;        (** shed at the accept queue *)
  elapsed : int;        (** cycles from first arrival opportunity to last completion *)
  max_queue : int;      (** high-water mark of the accept queue *)
  latency : Histogram.t;     (** sojourn time: completion - arrival *)
  queue_wait : Histogram.t;  (** dequeue - arrival *)
}

let throughput_rps st =
  if st.elapsed <= 0 then 0.
  else float_of_int st.completed /. (float_of_int st.elapsed /. Loadgen.cycles_per_sec)

let drop_ratio st =
  if st.offered = 0 then 0. else float_of_int st.dropped /. float_of_int st.offered

let summary st = Latency.summary st.latency

(** [run ?trace ms cfg handler] drives [handler ~worker] once per served
    request. The handler runs on the worker's Mt thread and is expected
    to advance that thread's simulated clock (memory traffic, ALU work,
    SCONE calls); it yields implicitly through [Memsys.maybe_yield].

    With [trace], every served request is recorded as a {!Spans.span}
    (arrival → dequeue → completion, exec-window cycles split by memsys
    class via the machine's charge hook) into the caller's log; the
    slowest-K reservoir survives the run for export. Tracing only
    observes: simulated stats are identical with and without it. *)
let run ?trace ms cfg handler =
  if cfg.workers < 1 then invalid_arg "Service.run: workers must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Service.run: queue_cap must be >= 1";
  let rng = Rng.create cfg.seed in
  let arr =
    Loadgen.arrivals ~rng ~process:cfg.process ~rate_rps:cfg.rate_rps
      ~n:cfg.requests
  in
  let tel = Memsys.telemetry ms in
  let base = Memsys.get_clock ms (Memsys.current_thread ms) in
  let q = Queue.create () in
  let next = ref 0 in
  let dropped = ref 0 and completed = ref 0 and max_queue = ref 0 in
  let latency = Histogram.create "service.latency" in
  let queue_wait = Histogram.create "service.queue_wait" in
  (* Admission control: pull every arrival whose timestamp has passed
     into the accept queue; a full queue sheds (drop + count) instead of
     blocking the accept loop. Elements are (arrival index, arrival
     time) so a traced run can name the request in its span. *)
  let admit now =
    while !next < cfg.requests && base + arr.(!next) <= now do
      if Queue.length q >= cfg.queue_cap then begin
        incr dropped;
        Telemetry.incr tel "service.dropped"
      end
      else begin
        Queue.add (!next, base + arr.(!next)) q;
        if Queue.length q > !max_queue then max_queue := Queue.length q
      end;
      incr next
    done
  in
  let worker w () =
    let rec loop () =
      let tid = Memsys.current_thread ms in
      let now = Memsys.get_clock ms tid in
      admit now;
      match Queue.take_opt q with
      | Some (id, arrived) ->
        Histogram.observe queue_wait (now - arrived);
        (match trace with
         | Some log -> Spans.begin_exec log ~worker:w
         | None -> ());
        handler ~worker:w;
        let fin = Memsys.get_clock ms (Memsys.current_thread ms) in
        Histogram.observe latency (fin - arrived);
        (match trace with
         | Some log -> Spans.finish log ~id ~worker:w ~arrival:arrived ~dequeue:now ~fin
         | None -> ());
        incr completed;
        Telemetry.incr tel "service.completed";
        Mt.yield ();
        loop ()
      | None ->
        if !next < cfg.requests then begin
          (* idle: sleep until the next scheduled arrival *)
          let wake = base + arr.(!next) in
          if wake > now then Memsys.set_clock ms tid wake;
          Mt.yield ();
          loop ()
        end
        (* schedule exhausted and queue drained: worker exits *)
    in
    loop ()
  in
  (match trace with
   | Some log ->
     Memsys.set_charge_hook ms
       (Some (Spans.charge_hook log (fun () -> Memsys.current_thread ms)))
   | None -> ());
  Mt.run ms (Array.init cfg.workers (fun w -> worker w));
  (match trace with
   | Some _ -> Memsys.set_charge_hook ms None
   | None -> ());
  (* Mt.run leaves thread 0 at the max clock over the region *)
  let elapsed = Memsys.get_clock ms 0 - base in
  {
    offered = cfg.requests;
    completed = !completed;
    dropped = !dropped;
    elapsed;
    max_queue = !max_queue;
    latency;
    queue_wait;
  }
