module Memsys = Sb_sgx.Memsys
open Sb_protection.Types

type hooks = {
  on_create : ms:Memsys.t -> objbase:int -> objsize:int -> meta_addr:int -> unit;
  on_access :
    ms:Memsys.t -> addr:int -> size:int -> meta_addr:int -> access:access -> unit;
  on_delete : ms:Memsys.t -> meta_addr:int -> unit;
}

type plugin = {
  name : string;
  slot_bytes : int;
  hooks : hooks;
}

let no_hooks = {
  on_create = (fun ~ms:_ ~objbase:_ ~objsize:_ ~meta_addr:_ -> ());
  on_access = (fun ~ms:_ ~addr:_ ~size:_ ~meta_addr:_ ~access:_ -> ());
  on_delete = (fun ~ms:_ ~meta_addr:_ -> ());
}

let double_free_magic = 0xD00D1E5

let double_free_guard =
  {
    name = "double-free-guard";
    slot_bytes = 4;
    hooks =
      {
        no_hooks with
        on_create =
          (fun ~ms ~objbase:_ ~objsize:_ ~meta_addr ->
             Memsys.store ~cls:Memsys.Footer_meta ms ~addr:meta_addr ~width:4 double_free_magic);
        on_delete =
          (fun ~ms ~meta_addr ->
             let v = Memsys.load ~cls:Memsys.Footer_meta ms ~addr:meta_addr ~width:4 in
             if v <> double_free_magic then
               raise
                 (Violation
                    { scheme = "sgxbounds"; addr = meta_addr; access = Write; width = 0;
                      lo = 0; hi = 0; reason = "double free detected by magic-number metadata" })
             else Memsys.store ~cls:Memsys.Footer_meta ms ~addr:meta_addr ~width:4 0);
      };
  }

let origin_tracker ~site =
  {
    name = "origin-tracker";
    slot_bytes = 4;
    hooks =
      {
        no_hooks with
        on_create =
          (fun ~ms ~objbase:_ ~objsize:_ ~meta_addr ->
             Memsys.store ~cls:Memsys.Footer_meta ms ~addr:meta_addr ~width:4 site);
      };
  }
