(** SGXBounds: memory safety for shielded execution (EuroSys'17).

    This module is the library entry point. It implements the paper's
    instrumentation as a {!Sb_protection.Scheme.t}:

    - tagged pointers: address in the low half of the word, upper bound
      in the high half ({!Tagged}, Figure 5);
    - the lower bound in a 4-byte footer right after the object (§3.1),
      extended by optional metadata plugins ({!Meta}, §4.3);
    - run-time checks before every load/store (§3.2), with the §4.4
      optimizations (safe-access elision and loop-check hoisting);
    - instrumented pointer arithmetic confined to the address half, so
      integer overflows cannot corrupt the tag (§3.2);
    - boundless-memory mode ({!Boundless}, §4.2) that survives
      out-of-bounds accesses failure-obliviously instead of crashing;
    - libc-wrapper semantics: wrappers check the whole buffer argument
      once and never fall back to boundless redirection — they surface
      an error to the application instead (§5.1), which is how the
      Memcached case study drops the CVE-2011-4971 packet. *)

module Tagged = Tagged
module Tagged_wide = Tagged_wide
module Boundless = Boundless
module Meta = Meta

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Base = Sb_protection.Base
open Sb_protection.Types

(** §4.4 optimizations. [safe_elision]: drop checks (and pointer-
    arithmetic instrumentation) on accesses the compiler proves safe.
    [hoisting]: replace per-iteration checks of simple loops by one range
    check outside the loop. *)
type opts = {
  safe_elision : bool;
  hoisting : bool;
}

let all_opts = { safe_elision = true; hoisting = true }
let no_opts = { safe_elision = false; hoisting = false }

(** Out-of-bounds handling: crash with a diagnostic, or redirect through
    the boundless-memory overlay. *)
type mode = Fail_stop | Boundless_mode

let lb_slot_bytes = 4

(** [make ?opts ?mode ?plugins ms] builds the hardened execution
    environment. Defaults: all optimizations on, fail-stop, no plugins. *)
let make ?(opts = all_opts) ?(mode = Fail_stop) ?(plugins = []) ms : Scheme.t =
  let base = Base.create ms in
  let heap = base.Base.heap in
  let extras = fresh_extras () in
  let overlay = Boundless.create () in
  let meta_bytes =
    lb_slot_bytes + List.fold_left (fun a (p : Meta.plugin) -> a + p.slot_bytes) 0 plugins
  in
  (* The last page of the enclave address space is unaddressable; together
     with confining pointer arithmetic to the address half this protects
     hoisted checks against counter over/underflow (§4.4). *)
  let top_guard = (1 lsl Sb_vmem.Vmem.addr_bits) - Sb_vmem.Vmem.page_size in
  (match Sb_vmem.Vmem.map (Memsys.vmem ms) ~addr:top_guard ~len:Sb_vmem.Vmem.page_size
           ~perm:Sb_vmem.Vmem.Guard ()
   with
   | (_ : int) -> ()
   | exception Invalid_argument _ -> () (* another scheme instance mapped it *));

  (* specify_bounds of §3.2: write the LB footer, run plugin on_create
     hooks, and return the tagged word. *)
  let specify_bounds addr size =
    let ub = addr + size in
    Memsys.store ~cls:Memsys.Footer_meta ms ~addr:ub ~width:4 addr;
    Memsys.charge_alu ms 2;
    let slot = ref (ub + lb_slot_bytes) in
    List.iter
      (fun (p : Meta.plugin) ->
         p.hooks.on_create ~ms ~objbase:addr ~objsize:size ~meta_addr:!slot;
         slot := !slot + p.slot_bytes)
      plugins;
    { v = Tagged.make ~addr ~ub; bnd = None }
  in

  let violate ~addr ~access ~width ~lo ~hi reason =
    extras.violations <- extras.violations + 1;
    match mode with
    | Fail_stop ->
      raise (Violation { scheme = "sgxbounds"; addr; access; width; lo; hi; reason })
    | Boundless_mode -> ()
  in

  (* The §3.2 check sequence: extract p and UB (register moves), load LB
     through the cache (it sits in the object's footer, typically the
     same or the next cache line), compare. Returns the raw address and
     whether the access must be redirected to the overlay. *)
  let check p width access =
    extras.checks_done <- extras.checks_done + 1;
    (* extract + compare + branch: 3 uops that co-issue with the access
       on an out-of-order core; ~2 cycles of critical path *)
    Memsys.charge_alu ms 2;
    match p.bnd with
    | Some b ->
      (* §8 "catching intra-object overflows": narrowed field bounds are
         carried in registers next to the pointer (see [narrow]); no LB
         load is needed, the register pair is authoritative *)
      let a = Tagged.addr_of p.v in
      if a < b.lo || a + width > b.hi then begin
        violate ~addr:a ~access ~width ~lo:b.lo ~hi:b.hi "narrowed field bounds violated";
        (a, true)
      end
      else (a, false)
    | None ->
    let a = Tagged.addr_of p.v and ub = Tagged.ub_of p.v in
    if ub = 0 then begin
      violate ~addr:a ~access ~width ~lo:0 ~hi:0 "dereference of untagged pointer";
      (a, true)
    end
    else begin
      let lb = Memsys.load ~cls:Memsys.Footer_meta ms ~addr:ub ~width:4 in
      Memsys.charge_alu ms 1;
      if a < lb || a + width > ub then begin
        violate ~addr:a ~access ~width ~lo:lb ~hi:ub "bounds violated";
        (a, true)
      end
      else (a, false)
    end
  in

  let redirect_load a width =
    extras.boundless_reads <- extras.boundless_reads + 1;
    Memsys.charge_alu ~cls:Memsys.Overlay ms 150; (* global lock + hash lookup: slow path *)
    Boundless.read overlay ~addr:a ~width
  in
  let redirect_store a width v =
    extras.boundless_writes <- extras.boundless_writes + 1;
    Memsys.charge_alu ~cls:Memsys.Overlay ms 150;
    Boundless.write overlay ~addr:a ~width v
  in

  let load p width =
    let a, oob = check p width Read in
    if oob then redirect_load a width else Memsys.load ms ~addr:a ~width
  in
  let store p width v =
    let a, oob = check p width Write in
    if oob then redirect_store a width v else Memsys.store ms ~addr:a ~width v
  in
  let raw_load p width = Memsys.load ms ~addr:(Tagged.addr_of p.v) ~width in
  let raw_store p width v = Memsys.store ms ~addr:(Tagged.addr_of p.v) ~width v in
  let safe_load =
    if opts.safe_elision then
      (fun p width ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_load p width)
    else load
  in
  let safe_store =
    if opts.safe_elision then
      (fun p width v ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_store p width v)
    else store
  in
  (* Hoisted range check: verify [p, p+len) once; the loop body then uses
     the unchecked accessors. Without the optimization the range check
     disappears and the "unchecked" accessors keep their checks, so the
     protection level is unchanged (§4.4). *)
  let check_range =
    if opts.hoisting then
      (fun p len access ->
        if len > 0 then begin
        extras.checks_done <- extras.checks_done + 1;
        extras.checks_hoisted <- extras.checks_hoisted + 1;
        Memsys.charge_alu ms 4;
        let a = Tagged.addr_of p.v and ub = Tagged.ub_of p.v in
        if ub = 0 then
          violate ~addr:a ~access ~width:len ~lo:0 ~hi:0 "dereference of untagged pointer"
        else begin
          let lb = Memsys.load ~cls:Memsys.Footer_meta ms ~addr:ub ~width:4 in
          if a < lb || a + len > ub then
            violate ~addr:a ~access ~width:len ~lo:lb ~hi:ub "hoisted bounds check failed"
        end
      end)
    else fun _ _ _ -> ()
  in
  let load_unchecked =
    if opts.hoisting then
      (fun p width ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_load p width)
    else load
  in
  let store_unchecked =
    if opts.hoisting then
      (fun p width v ->
         extras.checks_elided <- extras.checks_elided + 1;
         raw_store p width v)
    else store
  in

  let malloc size =
    let addr = Sb_alloc.Freelist.alloc heap (size + meta_bytes) in
    specify_bounds addr size
  in
  let object_size p =
    let ub = Tagged.ub_of p.v in
    ub - Tagged.addr_of p.v
  in
  let free p =
    let addr = Tagged.addr_of p.v and ub = Tagged.ub_of p.v in
    let slot = ref (ub + lb_slot_bytes) in
    List.iter
      (fun (pl : Meta.plugin) ->
         pl.hooks.on_delete ~ms ~meta_addr:!slot;
         slot := !slot + pl.slot_bytes)
      plugins;
    (* The 4-byte footer vanishes with the chunk itself: free needs no
       instrumentation beyond the plugin hooks (§3.2). *)
    if Sb_alloc.Freelist.is_live heap addr then Sb_alloc.Freelist.free heap addr
  in
  let calloc n size =
    let p = malloc (n * size) in
    Memsys.fill ms ~addr:(Tagged.addr_of p.v) ~len:(n * size) ~byte:0;
    p
  in
  let realloc p size =
    if Tagged.addr_of p.v = 0 then malloc size
    else begin
      let q = malloc size in
      let n = min (object_size p) size in
      Memsys.blit ms ~src:(Tagged.addr_of p.v) ~dst:(Tagged.addr_of q.v) ~len:n;
      free p;
      q
    end
  in
  let libc_check p len access =
    (* Wrapper pattern of §3.2/§5.1: extract, check the whole buffer,
       then the real libc runs uninstrumented. Never boundless — the
       wrapper reports an error (errno-style) via the exception, letting
       servers drop the offending request. *)
    if len > 0 then begin
      extras.checks_done <- extras.checks_done + 1;
      Memsys.charge_alu ms 4;
      let a = Tagged.addr_of p.v and ub = Tagged.ub_of p.v in
      let lb = if ub = 0 then 0 else Memsys.load ~cls:Memsys.Footer_meta ms ~addr:ub ~width:4 in
      if ub = 0 || a < lb || a + len > ub then begin
        extras.violations <- extras.violations + 1;
        raise
          (Violation
             { scheme = "sgxbounds"; addr = a; access; width = len; lo = lb; hi = ub;
               reason = "libc wrapper bounds check failed (EINVAL)" })
      end
    end
  in
  {
    Scheme.name = "sgxbounds";
    ms;
    extras;
    malloc;
    calloc;
    realloc;
    free;
    global =
      (fun size ->
         (* Globals are wrapped in a padded struct and registered at
            program initialization (§3.2). *)
         let addr = Sb_alloc.Bump.alloc base.Base.globals (size + meta_bytes) in
         specify_bounds addr size);
    stack_push = (fun () -> Sb_alloc.Stackmem.push_frame (Base.stack base));
    stack_alloc =
      (fun size ->
         let addr = Sb_alloc.Stackmem.alloc (Base.stack base) (size + meta_bytes) in
         specify_bounds addr size);
    stack_pop = (fun tok -> Sb_alloc.Stackmem.pop_frame (Base.stack base) tok);
    offset =
      (fun p delta ->
         (* Instrumented pointer arithmetic: mask + or, co-issued. *)
         Memsys.charge_alu ms 1;
         { p with v = Tagged.with_addr p.v (Tagged.addr_of p.v + delta) });
    addr_of = (fun p -> Tagged.addr_of p.v);
    load;
    store;
    safe_load;
    safe_store;
    check_range;
    load_unchecked;
    store_unchecked;
    load_ptr =
      (fun p ->
         (* The loaded word carries its own tag: bounds metadata travels
            with the pointer through memory, no bndldx analogue needed. *)
         let a, oob = check p 8 Read in
         let v = if oob then redirect_load a 8 else Memsys.load ms ~addr:a ~width:8 in
         { v; bnd = None });
    store_ptr =
      (fun p q ->
         let a, oob = check p 8 Write in
         if oob then redirect_store a 8 q.v else Memsys.store ms ~addr:a ~width:8 q.v);
    load_ptr_unchecked =
      (if opts.hoisting then fun p ->
         (* the tag travels in the loaded word: no metadata lookup at all *)
         extras.checks_elided <- extras.checks_elided + 1;
         { v = Memsys.load ms ~addr:(Tagged.addr_of p.v) ~width:8; bnd = None }
       else fun p ->
         let a, oob = check p 8 Read in
         let v = if oob then redirect_load a 8 else Memsys.load ms ~addr:a ~width:8 in
         { v; bnd = None });
    store_ptr_unchecked =
      (if opts.hoisting then fun p q ->
         extras.checks_elided <- extras.checks_elided + 1;
         Memsys.store ms ~addr:(Tagged.addr_of p.v) ~width:8 q.v
       else fun p q ->
         let a, oob = check p 8 Write in
         if oob then redirect_store a 8 q.v else Memsys.store ms ~addr:a ~width:8 q.v);
    libc_check;
    libc_touch = Scheme.no_touch;
  }

(** Intra-object bounds narrowing (§8, "catching intra-object
    overflows"). [narrow s p ~len] returns a pointer restricted to the
    [len]-byte field at [p]: subsequent checked accesses through the
    result are confined to the field, so overflowing a buffer inside a
    struct into a sibling member is detected — the 8 RIPE attacks that
    object-granularity schemes miss (Table 4).

    The narrowed bounds live in registers next to the pointer (the
    paper's prototype direction: per-field lower-bound metadata kept out
    of the object). They do not survive a trip through memory —
    [store_ptr]/[load_ptr] revert to the object's tagged bounds — and
    they never *widen*: narrowing an already-narrowed pointer intersects
    the ranges. *)
let narrow (s : Scheme.t) p ~len =
  Memsys.charge_alu s.Scheme.ms 2;
  let a = Tagged.addr_of p.v in
  let lo, hi =
    match p.bnd with
    | Some b -> (max a b.lo, min (a + len) b.hi)
    | None -> (a, a + len)
  in
  { p with bnd = Some { lo; hi } }
