(** Bounded event ring buffer.

    Holds the most recent [capacity] events; older ones are overwritten
    and counted in [dropped]. Timestamps are simulated cycles, [tid] is
    the simulated thread — both map directly onto Chrome's
    [trace_event] fields (see {!Sink.chrome_trace}). *)

type phase =
  | Instant                   (** point event (EPC fault, violation) *)
  | Complete of int           (** span with duration in cycles *)

type event = {
  ts : int;                   (** simulated-cycle timestamp (span start) *)
  tid : int;                  (** simulated thread *)
  name : string;
  cat : string;               (** coarse category, e.g. "epc", "phase" *)
  ph : phase;
  args : (string * string) list;
}

type ring = {
  capacity : int;
  buf : event array;
  mutable len : int;
  mutable head : int;         (* next write position *)
  mutable dropped : int;
}

let dummy = { ts = 0; tid = 0; name = ""; cat = ""; ph = Instant; args = [] }

let create ~capacity =
  let capacity = max 0 capacity in
  { capacity; buf = Array.make (max 1 capacity) dummy; len = 0; head = 0; dropped = 0 }

let push r ev =
  if r.capacity = 0 then r.dropped <- r.dropped + 1
  else begin
    if r.len = r.capacity then r.dropped <- r.dropped + 1 else r.len <- r.len + 1;
    r.buf.(r.head) <- ev;
    r.head <- (r.head + 1) mod r.capacity
  end

let length r = r.len
let dropped r = r.dropped
let capacity r = r.capacity

(** Retained events, oldest first. *)
let to_list r =
  let start = (r.head - r.len + r.capacity) mod max 1 r.capacity in
  List.init r.len (fun i -> r.buf.((start + i) mod r.capacity))

let clear r =
  r.len <- 0;
  r.head <- 0;
  r.dropped <- 0
