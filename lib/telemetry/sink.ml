(** Pluggable telemetry exporters.

    A {!snapshot} is an immutable copy of a hub's state; the sinks
    render one as a pretty table, flat JSON, CSV, or Chrome
    [trace_event] JSON (load the file at chrome://tracing or
    https://ui.perfetto.dev). Sinks run only at export time, so their
    cost never lands inside a measured simulation. *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_mean : float;
  h_max : int;
  h_p50 : int;
  h_p99 : int;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
  events : Events.event list;
  dropped_events : int;
}

let summarize h =
  {
    h_count = Metrics.Histogram.count h;
    h_sum = Metrics.Histogram.sum h;
    h_mean = Metrics.Histogram.mean h;
    h_max = Metrics.Histogram.max_value h;
    h_p50 = Metrics.Histogram.quantile h 0.5;
    h_p99 = Metrics.Histogram.quantile h 0.99;
  }

let snapshot (t : Telemetry.t) =
  {
    counters = Telemetry.counters t;
    histograms = List.map (fun (n, h) -> (n, summarize h)) (Telemetry.histograms t);
    events = Telemetry.events t;
    dropped_events = Telemetry.dropped_events t;
  }

(* ---------- pretty table ---------- *)

let pp_table ppf s =
  if s.counters <> [] then begin
    Fmt.pf ppf "counters@.";
    List.iter (fun (n, v) -> Fmt.pf ppf "  %-40s %12d@." n v) s.counters
  end;
  if s.histograms <> [] then begin
    Fmt.pf ppf "histograms (cycles)@.";
    Fmt.pf ppf "  %-40s %10s %12s %10s %10s %10s@." "name" "count" "mean" "p50<" "p99<" "max";
    List.iter
      (fun (n, h) ->
         Fmt.pf ppf "  %-40s %10d %12.1f %10d %10d %10d@." n h.h_count h.h_mean h.h_p50
           h.h_p99 h.h_max)
      s.histograms
  end;
  if s.events <> [] || s.dropped_events > 0 then
    Fmt.pf ppf "events: %d retained, %d dropped@." (List.length s.events) s.dropped_events

(* ---------- JSON ---------- *)

let json_of_event (e : Events.event) =
  let args = List.map (fun (k, v) -> (k, Json.Str v)) e.Events.args in
  let base =
    [
      ("name", Json.Str e.Events.name);
      ("cat", Json.Str e.Events.cat);
      ("ts", Json.Int e.Events.ts);
      ("tid", Json.Int e.Events.tid);
    ]
  in
  match e.Events.ph with
  | Events.Instant -> Json.Obj (base @ [ ("ph", Json.Str "i"); ("args", Json.Obj args) ])
  | Events.Complete dur ->
    Json.Obj (base @ [ ("ph", Json.Str "X"); ("dur", Json.Int dur); ("args", Json.Obj args) ])

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, h) ->
                ( n,
                  Json.Obj
                    [
                      ("count", Json.Int h.h_count);
                      ("sum", Json.Int h.h_sum);
                      ("mean", Json.Float h.h_mean);
                      ("p50", Json.Int h.h_p50);
                      ("p99", Json.Int h.h_p99);
                      ("max", Json.Int h.h_max);
                    ] ))
             s.histograms) );
      ("events", Json.List (List.map json_of_event s.events));
      ("dropped_events", Json.Int s.dropped_events);
    ]

(* ---------- CSV ---------- *)

(** Counters (and histogram sums) as [metric,value] lines. *)
let counters_csv s =
  let b = Buffer.create 256 in
  Buffer.add_string b "metric,value\n";
  List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s,%d\n" n v)) s.counters;
  List.iter
    (fun (n, h) -> Buffer.add_string b (Printf.sprintf "%s.sum,%d\n" n h.h_sum))
    s.histograms;
  Buffer.contents b

(* ---------- Chrome trace_event ---------- *)

(** Chrome's JSON object format: everything under ["traceEvents"], one
    simulated thread per Chrome [tid], timestamps in (simulated) "us".
    A metadata event names the process so the timeline is labeled. *)
let chrome_trace ?(process_name = "sgxbounds-sim") s =
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  let with_pid = function
    | Json.Obj kvs -> Json.Obj (kvs @ [ ("pid", Json.Int 1) ])
    | j -> j
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (meta :: List.map (fun e -> with_pid (json_of_event e)) s.events) );
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int s.dropped_events) ]);
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_trace ?process_name path s =
  write_file path (Json.to_string (chrome_trace ?process_name s))
