(** Counters and simulated-cycle histograms.

    Both are plain mutable records with integer arithmetic only: an
    increment is one load/add/store, cheap enough to leave compiled into
    hot simulation paths unconditionally. Anything more expensive (event
    construction, string formatting) lives behind the {!Telemetry}
    enabled guard instead. *)

module Counter = struct
  type t = {
    name : string;
    mutable v : int;
  }

  let create name = { name; v = 0 }
  let incr ?(by = 1) t = t.v <- t.v + by
  let value t = t.v
  let name t = t.name
  let reset t = t.v <- 0
end

module Histogram = struct
  (** Power-of-two bucketed histogram of non-negative integer samples
      (simulated cycles, sizes). Bucket 0 holds samples <= 1; bucket
      [i >= 1] holds samples in [2^i, 2^(i+1)). 62 buckets cover the
      whole positive [int] range on 64-bit. *)

  let nbuckets = 62

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
  }

  let create name = { name; buckets = Array.make nbuckets 0; count = 0; sum = 0; max = 0 }

  let bucket_of v =
    if v <= 1 then 0 else min (nbuckets - 1) (Sb_machine.Util.log2_floor v)

  let observe t v =
    let v = max 0 v in
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max then t.max <- v

  let name t = t.name
  let count t = t.count
  let sum t = t.sum
  let max_value t = t.max
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

  (** Non-empty buckets as [(lo, hi_exclusive, count)], ascending. *)
  let nonzero_buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then
        let lo = if i = 0 then 0 else 1 lsl i in
        let hi = 1 lsl (i + 1) in
        acc := (lo, hi, t.buckets.(i)) :: !acc
    done;
    !acc

  (** Smallest bucket upper bound below which at least [q] (0..1) of the
      samples fall — a coarse quantile, exact only at bucket edges. The
      overflow bucket has no representable upper bound ([1 lsl 62] wraps
      negative), so samples landing there report the observed max. *)
  let quantile t q =
    if t.count = 0 then 0
    else begin
      let target = int_of_float (ceil (q *. float_of_int t.count)) in
      let rec go i seen =
        if i >= nbuckets then t.max
        else
          let seen = seen + t.buckets.(i) in
          if seen >= target then
            if i = nbuckets - 1 then t.max else 1 lsl (i + 1)
          else go (i + 1) seen
      in
      go 0 0
    end

  (** Rank-interpolated quantile: locate the bucket holding the sample
      of rank [ceil (q * count)] and interpolate linearly by rank within
      the bucket's value range. The result always lies inside that
      bucket and never exceeds the observed max, so the error is bounded
      by the bucket width (a factor of 2) instead of {!quantile}'s
      round-up-to-edge bias. *)
  let quantile_interp t q =
    if t.count = 0 then 0
    else begin
      let target = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
      let rec go i seen =
        if i >= nbuckets then t.max
        else
          let inb = t.buckets.(i) in
          if seen + inb >= target then begin
            let lo = if i = 0 then 0 else 1 lsl i in
            (* the overflow bucket's only safe upper bound is the max *)
            let hi = if i = nbuckets - 1 then t.max + 1 else 1 lsl (i + 1) in
            let hi = Stdlib.max hi (lo + 1) in
            let frac = float_of_int (target - seen) /. float_of_int inb in
            Stdlib.min t.max (lo + int_of_float (frac *. float_of_int (hi - 1 - lo)))
          end
          else go (i + 1) (seen + inb)
      in
      go 0 0
    end

  (** Accumulate [src] into [dst]: bucketwise counts, count, sum, and
      max. Exact for everything the histogram itself represents exactly
      — merging per-shard histograms then asking for a quantile is the
      same as observing the pooled samples into one histogram, so the
      interpolated quantile keeps its factor-of-2 bound against the
      pooled exact reference. *)
  let merge_into dst src =
    for i = 0 to nbuckets - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum;
    if src.max > dst.max then dst.max <- src.max

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0;
    t.max <- 0
end
