(** Site-attributed profiler: where do the simulated cycles go, per site?

    A *site* is a named region pushed by instrumented code — a scheme
    hook ("op:load"), an app handler ("request"), a workload phase. Sites
    nest into a call tree (one shared tree, one stack per simulated
    thread), and every cycle the memory system charges while a site is
    on top of its thread's stack lands in that tree node's *self*
    buckets, split by the charger's cost bucket (the {!Sb_sgx.Memsys}
    access classes plus "compute"). Self cycles over the whole tree
    therefore re-add exactly to the cycles charged while the profiler
    was attached — the conservation law the tests pin.

    The module is generic: it knows nothing about the memory system. The
    bucket labels arrive at {!create}; charges arrive through {!charge}
    from whatever hook the owner installed (see
    [Sb_sgx.Memsys.attach_profiler]); the thread id comes from the
    [tid] closure set by the same owner. Everything is deterministic:
    node ids are creation-ordered, report rows are sorted by path, and
    no wall clock is ever read. *)

type node = {
  site : int;                  (* interned site id; -1 for the root *)
  parent : node option;
  mutable children : node list;  (* newest first; resorted at report time *)
  buckets : int array;         (* self cycles per bucket *)
  mutable self : int;          (* sum over buckets *)
  mutable charges : int;       (* charge events landed here *)
  mutable calls : int;         (* times entered *)
}

type t = {
  bucket_names : string array;
  mutable site_names : string array;   (* id -> name *)
  mutable nsites : int;
  site_ids : (string, int) Hashtbl.t;
  root : node;
  mutable tops : node array;           (* per-thread stack top; pop = parent *)
  mutable tid : unit -> int;
}

let nbuckets t = Array.length t.bucket_names
let bucket_names t = t.bucket_names

let new_node t ~site ~parent =
  { site; parent; children = []; buckets = Array.make (nbuckets t) 0;
    self = 0; charges = 0; calls = 0 }

let create ?(max_threads = 64) ~buckets () =
  if Array.length buckets = 0 then invalid_arg "Profile.create: no buckets";
  let t =
    {
      bucket_names = Array.copy buckets;
      site_names = Array.make 16 "";
      nsites = 0;
      site_ids = Hashtbl.create 64;
      root =
        { site = -1; parent = None; children = [];
          buckets = Array.make (Array.length buckets) 0;
          self = 0; charges = 0; calls = 0 };
      tops = [||];
      tid = (fun () -> 0);
    }
  in
  t.tops <- Array.make (max 1 max_threads) t.root;
  t

let set_tid t f = t.tid <- f

(** Grow the per-thread stack array to at least [n] slots (new slots
    start at the root). Attaching owners call this with the machine's
    hardware thread count. *)
let ensure_threads t n =
  let cur = Array.length t.tops in
  if n > cur then begin
    let tops = Array.make n t.root in
    Array.blit t.tops 0 tops 0 cur;
    t.tops <- tops
  end

(** Intern [name], returning its stable site id (creation-ordered). *)
let intern t name =
  match Hashtbl.find_opt t.site_ids name with
  | Some id -> id
  | None ->
    let id = t.nsites in
    if id = Array.length t.site_names then begin
      let grown = Array.make (2 * id) "" in
      Array.blit t.site_names 0 grown 0 id;
      t.site_names <- grown
    end;
    t.site_names.(id) <- name;
    t.nsites <- id + 1;
    Hashtbl.replace t.site_ids name id;
    id

let site_name t id = if id < 0 then "(root)" else t.site_names.(id)

(* ---------- the hot path: enter / exit / charge ---------- *)

let rec find_child cs site =
  match cs with
  | [] -> None
  | c :: rest -> if c.site = site then Some c else find_child rest site

(** Push site [id] on the current thread's stack: descend to (or
    create) the child of the current node for this site. *)
let enter t id =
  let tid = t.tid () in
  let top = t.tops.(tid) in
  let child =
    match find_child top.children id with
    | Some c -> c
    | None ->
      let c = new_node t ~site:id ~parent:(Some top) in
      top.children <- c :: top.children;
      c
  in
  child.calls <- child.calls + 1;
  t.tops.(tid) <- child

(** Pop the current thread's stack. Popping at the root is ignored, so
    unbalanced exits cannot corrupt the tree. *)
let exit t =
  let tid = t.tid () in
  match (t.tops.(tid)).parent with
  | Some p -> t.tops.(tid) <- p
  | None -> ()

(** Run [f] inside site [id]; the site is popped even if [f] raises. *)
let with_site t id f =
  enter t id;
  match f () with
  | v ->
    exit t;
    v
  | exception e ->
    exit t;
    raise e

(** Charge [cost] cycles in [bucket] to the current site of the current
    thread. This is the closure the memory system calls per access when
    a profiler is attached. *)
let charge t bucket cost =
  let nd = t.tops.(t.tid ()) in
  nd.buckets.(bucket) <- nd.buckets.(bucket) + cost;
  nd.self <- nd.self + cost;
  nd.charges <- nd.charges + 1

(* ---------- reports ---------- *)

type row = {
  r_path : string list;   (* site names, outermost first; [] = root *)
  r_self : int;           (* cycles charged directly to this site *)
  r_incl : int;           (* self + all descendants *)
  r_buckets : int array;
  r_charges : int;
  r_calls : int;
}

let sorted_children nd =
  List.sort (fun a b -> compare a.site b.site) nd.children

let rec inclusive nd =
  List.fold_left (fun acc c -> acc + inclusive c) nd.self nd.children

(** Every node with any activity, depth-first in site-id order. The
    root row (empty path) carries the cycles charged outside any
    site. *)
let rows t =
  let acc = ref [] in
  let rec go path nd =
    let incl = inclusive nd in
    if incl > 0 || nd.calls > 0 then
      acc :=
        {
          r_path = List.rev path;
          r_self = nd.self;
          r_incl = incl;
          r_buckets = Array.copy nd.buckets;
          r_charges = nd.charges;
          r_calls = nd.calls;
        }
        :: !acc;
    List.iter (fun c -> go (site_name t c.site :: path) c) (sorted_children nd)
  in
  go [] t.root;
  List.rev !acc

(** Total cycles observed: the conservation-law counterpart of the
    charges the owner routed here while attached. *)
let total t = inclusive t.root

(* ---------- collapsed stacks (flamegraph folded format) ---------- *)

(** One line per site with self cycles, [root_label;site;site count] —
    the folded format flamegraph.pl and speedscope ingest. [label]
    names the whole run (e.g. "kmeans/sgxbounds"). *)
let to_collapsed ?(label = "all") t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
       if r.r_self > 0 then begin
         Buffer.add_string b (String.concat ";" (label :: r.r_path));
         Buffer.add_char b ' ';
         Buffer.add_string b (string_of_int r.r_self);
         Buffer.add_char b '\n'
       end)
    (rows t);
  Buffer.contents b

(* ---------- differential profiles ---------- *)

type delta = {
  d_path : string list;
  d_a : int;               (* self cycles under profile A *)
  d_b : int;               (* self cycles under profile B *)
  d_buckets : int array;   (* per-bucket self delta, B - A *)
}

let d_delta d = d.d_b - d.d_a

(** Per-site self-cycle deltas between two profiles with the same
    bucket set, keyed by site path (site ids need not match). Sorted by
    descending delta (B's extra cycles first), ties by path — fully
    deterministic. Paths present in only one profile count as zero in
    the other. *)
let diff a b =
  if a.bucket_names <> b.bucket_names then
    invalid_arg "Profile.diff: bucket sets differ";
  let tbl = Hashtbl.create 64 in
  let feed sign t =
    List.iter
      (fun r ->
         if r.r_self > 0 || r.r_charges > 0 then begin
           let key = String.concat ";" r.r_path in
           let d =
             match Hashtbl.find_opt tbl key with
             | Some d -> d
             | None ->
               let d =
                 { d_path = r.r_path; d_a = 0; d_b = 0;
                   d_buckets = Array.make (nbuckets t) 0 }
               in
               Hashtbl.replace tbl key d;
               d
           in
           let d =
             if sign < 0 then { d with d_a = d.d_a + r.r_self }
             else { d with d_b = d.d_b + r.r_self }
           in
           Array.iteri
             (fun i v -> d.d_buckets.(i) <- d.d_buckets.(i) + (sign * v))
             r.r_buckets;
           Hashtbl.replace tbl key d
         end)
      (rows t)
  in
  feed (-1) a;
  feed 1 b;
  Hashtbl.fold (fun _ d acc -> d :: acc) tbl []
  |> List.sort (fun x y ->
      match compare (d_delta y) (d_delta x) with
      | 0 -> compare x.d_path y.d_path
      | c -> c)

(* ---------- JSON export ---------- *)

let json_of_buckets names arr =
  Json.Obj (Array.to_list (Array.mapi (fun i n -> (n, Json.Int arr.(i))) names))

let to_json ?(label = "all") t =
  Json.Obj
    [
      ("label", Json.Str label);
      ("total_cycles", Json.Int (total t));
      ("buckets", Json.List (Array.to_list (Array.map (fun n -> Json.Str n) t.bucket_names)));
      ( "sites",
        Json.List
          (List.map
             (fun r ->
                Json.Obj
                  [
                    ("path", Json.Str (String.concat ";" r.r_path));
                    ("self_cycles", Json.Int r.r_self);
                    ("inclusive_cycles", Json.Int r.r_incl);
                    ("charges", Json.Int r.r_charges);
                    ("calls", Json.Int r.r_calls);
                    ("by_bucket", json_of_buckets t.bucket_names r.r_buckets);
                  ])
             (rows t)) );
    ]

let diff_to_json ~a_label ~b_label a ds =
  Json.Obj
    [
      ("a", Json.Str a_label);
      ("b", Json.Str b_label);
      ( "sites",
        Json.List
          (List.map
             (fun d ->
                Json.Obj
                  [
                    ("path", Json.Str (String.concat ";" d.d_path));
                    ("a_cycles", Json.Int d.d_a);
                    ("b_cycles", Json.Int d.d_b);
                    ("delta", Json.Int (d_delta d));
                    ("by_bucket", json_of_buckets a.bucket_names d.d_buckets);
                  ])
             ds) );
    ]
