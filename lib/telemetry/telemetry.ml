(** The telemetry hub: a named-counter/histogram registry, a span stack
    and a bounded event ring behind one [enabled] switch.

    Layers of the simulator hold a [t] and call [incr]/[observe]/
    [event]/[span_*] unconditionally; when the hub is disabled every one
    of those is a single branch and no allocation, so tier-1 bench
    numbers are unaffected by the instrumentation being compiled in.
    Timestamps come from [clock], which the memory system points at its
    simulated-cycle counter ({!Sb_sgx.Memsys.create}). *)

type t = {
  enabled : bool;
  counters : (string, Metrics.Counter.t) Hashtbl.t;
  histograms : (string, Metrics.Histogram.t) Hashtbl.t;
  ring : Events.ring;
  mutable clock : unit -> int;
  mutable tid : unit -> int;
  mutable open_spans : (string * string * int) list;  (* name, cat, start ts *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    ring = Events.create ~capacity:(if enabled then capacity else 0);
    clock = (fun () -> 0);
    tid = (fun () -> 0);
    open_spans = [];
  }

(** A hub that drops everything — the zero-cost-when-off default. *)
let disabled () = create ~capacity:0 ~enabled:false ()

let is_enabled t = t.enabled
let set_clock t f = t.clock <- f
let set_tid t f = t.tid <- f
let now t = t.clock ()

(* ---------- counters and histograms ---------- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Metrics.Counter.create name in
    Hashtbl.replace t.counters name c;
    c

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Metrics.Histogram.create name in
    Hashtbl.replace t.histograms name h;
    h

let incr t ?(by = 1) name = if t.enabled then Metrics.Counter.incr ~by (counter t name)
let observe t name v = if t.enabled then Metrics.Histogram.observe (histogram t name) v

let counters t =
  Hashtbl.fold (fun name c acc -> (name, Metrics.Counter.value c) :: acc) t.counters []
  |> List.sort compare

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------- events and spans ---------- *)

let event t ?(cat = "event") ?(args = []) name =
  if t.enabled then
    Events.push t.ring
      { Events.ts = t.clock (); tid = t.tid (); name; cat; ph = Events.Instant; args }

let span_begin t ?(cat = "phase") name =
  if t.enabled then t.open_spans <- (name, cat, t.clock ()) :: t.open_spans

(** Close the innermost span opened with [span_begin]: emits one Chrome
    "complete" event and feeds the duration to histogram
    ["span:"^name]. Unbalanced calls are ignored. *)
let span_end t =
  if t.enabled then
    match t.open_spans with
    | [] -> ()
    | (name, cat, start) :: rest ->
      t.open_spans <- rest;
      let dur = max 0 (t.clock () - start) in
      Metrics.Histogram.observe (histogram t ("span:" ^ name)) dur;
      Events.push t.ring
        { Events.ts = start; tid = t.tid (); name; cat; ph = Events.Complete dur; args = [] }

let with_span t ?cat name f =
  span_begin t ?cat name;
  Fun.protect ~finally:(fun () -> span_end t) f

let events t = Events.to_list t.ring
let dropped_events t = Events.dropped t.ring

(* ---------- lifecycle ---------- *)

(** Zero every counter and histogram, drop all events and open spans.
    The registry itself (names) survives, so sinks attached by name keep
    working across runs. *)
let reset t =
  Hashtbl.iter (fun _ c -> Metrics.Counter.reset c) t.counters;
  Hashtbl.iter (fun _ h -> Metrics.Histogram.reset h) t.histograms;
  Events.clear t.ring;
  t.open_spans <- []
