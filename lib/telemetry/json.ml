(** Minimal JSON tree, printer and parser.

    Just enough for the telemetry exporters and their tests — no
    dependency on an external JSON package (the container pins the
    package set). The printer emits canonical JSON; the parser accepts
    any RFC 8259 document and is used by the test suite and [check.sh]
    to validate exporter output round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
    else Fmt.pf ppf "%.6g" f
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List xs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.comma pp) xs
  | Obj kvs ->
    let field ppf (k, v) = Fmt.pf ppf "\"%s\":%a" (escape k) pp v in
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma field) kvs

let to_string t = Fmt.str "%a" pp t

(* ---------- accessors ---------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin pos := !pos + l; v end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
           (* Encode the code point as UTF-8 (surrogates passed through raw). *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
