(** Runtime layer of the proof-carrying bounds-check optimizer.

    [wrap plan inner] consults an elision plan at runtime: checked-family
    accesses whose op-stream index carries an [Elide] certificate are
    routed through the inner scheme's [*_unchecked] accessors; a [Hoist]
    certificate first charges a one-time widened [check_range] covering
    the site's certified extent, then elides like the rest of its site.

    The plan is {e untrusted input}. Every elision is re-verified
    against live state before the unchecked accessor is taken:

    - the access must resolve to the certificate's object (same birth
      index, so a stale certificate never transfers to a reallocation
      reusing the address);
    - a live check on that object — a [check_range] the workload issued,
      or a hoisted check this layer inserted — must cover the accessed
      bytes and license the direction (a [Write] check licenses both
      directions, a [Read] check only reads: the same dominating-check
      contract {!Sb_analysis.Audit} enforces);
    - a hoisted check's extent must lie within the live object, or it is
      not inserted;
    - narrowed pointers ([p.bnd <> None]) are never elided.

    Any certificate that fails re-verification falls back to the fully
    checked path and is counted in [fallbacks] — so a wrong (or
    adversarial) plan can only {e lose} elisions, never weaken a check:
    violation verdicts and simulation results are preserved by
    construction. Telemetry flows through the inner scheme: inserted
    checks count [checks_done]/[checks_hoisted], elided accesses count
    [checks_elided] (under schemes whose [*_unchecked] really skips the
    check; ASan/MPX keep checking and gain nothing, which is the
    paper's point about per-object bounds in the pointer). *)

open Types
module Imap = Map.Make (Int)

type action = Pass | Elide of int | Hoist of int

type site_kind = Run | Span

let site_kind_name = function Run -> "run" | Span -> "span"

(** A certificate: one static site with its referent object (by birth
    index), affine facts, certified extent (object-relative, half-open)
    and the dominating check it elides against ([site_dom = site_id]:
    the site hoists its own widened check; [site_dom = -1]: dominated by
    a [check_range] the workload itself issues before the site). *)
type site = {
  site_id : int;
  site_obj : int;
  site_kind : site_kind;
  site_op : Sitestream.opk;
  site_base : int;      (** object-relative offset of the first access *)
  site_stride : int;    (** 0 for [Span] sites *)
  site_count : int;     (** dynamic accesses certified *)
  site_lo : int;
  site_hi : int;
  site_dir : access;    (** direction of the licensing check *)
  site_dom : int;
}

type plan = {
  p_workload : string;
  p_scheme : string;
  p_ops : int;          (** op-stream length of the recording run *)
  p_truncated : bool;   (** recorder hit its event cap: plan covers a prefix *)
  p_sites : site array;
  p_actions : action array;  (** indexed by op-stream position *)
}

let empty_plan ~workload ~scheme =
  { p_workload = workload; p_scheme = scheme; p_ops = 0; p_truncated = false;
    p_sites = [||]; p_actions = [||] }

type stats = {
  mutable hoists : int;     (** widened checks inserted *)
  mutable elides : int;     (** accesses routed through [*_unchecked] *)
  mutable fallbacks : int;  (** certificates failed re-verification *)
  mutable passes : int;     (** ops with no certificate *)
}

(* Live runtime state: an object table keyed by base address (birth
   indices mirror the recorder's, because allocation order is part of
   the deterministic stream) and per-object live checks. *)
type rt = {
  mutable objects : (int * int) Imap.t;  (* base -> (hi, birth id) *)
  mutable births : int;
  mutable frames : int list list;
  checks : (int, (int * int * access) list ref) Hashtbl.t;
  mutable ops : int;
}

let rt_lookup rt a =
  match Imap.find_last_opt (fun b -> b <= a) rt.objects with
  | Some (base, (hi, id)) when a < hi -> Some (base, hi, id)
  | _ -> None

let rt_add_check rt id lo hi dir =
  match Hashtbl.find_opt rt.checks id with
  | Some l -> l := (lo, hi, dir) :: !l
  | None -> Hashtbl.replace rt.checks id (ref [ (lo, hi, dir) ])

let rt_covered rt id lo hi access =
  match Hashtbl.find_opt rt.checks id with
  | None -> false
  | Some l ->
    List.exists
      (fun (clo, chi, cdir) -> clo <= lo && hi <= chi && (cdir = Write || access = Read))
      !l

let wrap (plan : plan) (inner : Scheme.t) : Scheme.t * stats =
  let rt =
    { objects = Imap.empty; births = 0; frames = []; checks = Hashtbl.create 64; ops = 0 }
  in
  let st = { hoists = 0; elides = 0; fallbacks = 0; passes = 0 } in
  let register base size =
    rt.objects <- Imap.add base (base + size, rt.births) rt.objects;
    rt.births <- rt.births + 1
  in
  let kill base =
    match Imap.find_opt base rt.objects with
    | Some (_, id) ->
      rt.objects <- Imap.remove base rt.objects;
      Hashtbl.remove rt.checks id
    | None -> ()
  in
  (* The guarded access path: consult the plan at this op index, verify
     the certificate, and pick the unchecked or checked continuation. *)
  let guarded op p width ~checked ~unchecked =
    let k = rt.ops in
    rt.ops <- k + 1;
    let action = if k < Array.length plan.p_actions then plan.p_actions.(k) else Pass in
    match action with
    | Pass ->
      st.passes <- st.passes + 1;
      checked ()
    | (Elide sid | Hoist sid) as act ->
      let fallback () =
        st.fallbacks <- st.fallbacks + 1;
        checked ()
      in
      if sid < 0 || sid >= Array.length plan.p_sites || p.bnd <> None then fallback ()
      else begin
        let s = plan.p_sites.(sid) in
        let a = inner.Scheme.addr_of p in
        match rt_lookup rt a with
        | Some (base, hi, id) when id = s.site_obj ->
          let off = a - base in
          (match act with
           | Hoist _ when s.site_lo >= 0 && s.site_lo < s.site_hi && base + s.site_hi <= hi ->
             (* the one-time widened check, charged through the scheme *)
             inner.Scheme.check_range
               (inner.Scheme.offset p (s.site_lo - off))
               (s.site_hi - s.site_lo) s.site_dir;
             st.hoists <- st.hoists + 1;
             rt_add_check rt id s.site_lo s.site_hi s.site_dir
           | _ -> ());
          let dir = if Sitestream.opk_writes op then Write else Read in
          if rt_covered rt id off (off + width) dir then begin
            st.elides <- st.elides + 1;
            unchecked ()
          end
          else fallback ()
        | _ -> fallback ()
      end
  in
  let s =
    {
      inner with
      Scheme.malloc =
        (fun size ->
           let p = inner.Scheme.malloc size in
           register (inner.Scheme.addr_of p) size;
           p);
      calloc =
        (fun n size ->
           let p = inner.Scheme.calloc n size in
           register (inner.Scheme.addr_of p) (n * size);
           p);
      realloc =
        (fun p size ->
           let old = inner.Scheme.addr_of p in
           let q = inner.Scheme.realloc p size in
           kill old;
           register (inner.Scheme.addr_of q) size;
           q);
      free =
        (fun p ->
           kill (inner.Scheme.addr_of p);
           inner.Scheme.free p);
      global =
        (fun size ->
           let p = inner.Scheme.global size in
           register (inner.Scheme.addr_of p) size;
           p);
      stack_push =
        (fun () ->
           rt.frames <- [] :: rt.frames;
           inner.Scheme.stack_push ());
      stack_alloc =
        (fun size ->
           let p = inner.Scheme.stack_alloc size in
           let a = inner.Scheme.addr_of p in
           register a size;
           (match rt.frames with
            | f :: rest -> rt.frames <- (a :: f) :: rest
            | [] -> ());
           p);
      stack_pop =
        (fun tok ->
           (match rt.frames with
            | f :: rest ->
              List.iter kill f;
              rt.frames <- rest
            | [] -> ());
           inner.Scheme.stack_pop tok);
      load =
        (fun p width ->
           guarded Sitestream.Oload p width
             ~checked:(fun () -> inner.Scheme.load p width)
             ~unchecked:(fun () -> inner.Scheme.load_unchecked p width));
      store =
        (fun p width v ->
           guarded Sitestream.Ostore p width
             ~checked:(fun () -> inner.Scheme.store p width v)
             ~unchecked:(fun () -> inner.Scheme.store_unchecked p width v));
      load_ptr =
        (fun p ->
           guarded Sitestream.Oload_ptr p 8
             ~checked:(fun () -> inner.Scheme.load_ptr p)
             ~unchecked:(fun () -> inner.Scheme.load_ptr_unchecked p));
      store_ptr =
        (fun p q ->
           guarded Sitestream.Ostore_ptr p 8
             ~checked:(fun () -> inner.Scheme.store_ptr p q)
             ~unchecked:(fun () -> inner.Scheme.store_ptr_unchecked p q));
      check_range =
        (fun p len dir ->
           (* Workload-issued checks dominate plan sites: remember the
              ones that are provably within their live object (the only
              ones the analyzer may certify against). *)
           (if len > 0 && p.bnd = None then
              match rt_lookup rt (inner.Scheme.addr_of p) with
              | Some (base, hi, id) ->
                let off = inner.Scheme.addr_of p - base in
                if off >= 0 && base + off + len <= hi then
                  rt_add_check rt id off (off + len) dir
              | None -> ());
           inner.Scheme.check_range p len dir);
    }
  in
  (s, st)
