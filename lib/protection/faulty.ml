(** Fault injection: deliberately broken wrappers around a working
    {!Scheme.t}.

    The fuzzer's harness-sanity check: a differential tester that has
    never been seen to catch a broken checker proves nothing. Wrapping a
    real scheme with one of these faults must make the fuzz campaign
    report a missed violation and shrink it to a tiny counterexample
    (pinned in [test/test_fuzz.ml]). *)

type fault =
  | Elide_every_nth of int
      (** every n-th instrumented load/store skips its bounds check —
          the shape of a miscompiled or raced check elision *)
  | Deaf_libc  (** libc wrappers check nothing — the paper's MPX setup,
                   grafted onto a scheme whose contract says otherwise *)

let fault_of_string = function
  | "elide-checks" -> Some (Elide_every_nth 3)
  | "deaf-libc" -> Some Deaf_libc
  | _ -> None

let fault_names = [ "elide-checks"; "deaf-libc" ]

(** [inject fault s] returns [s] with the fault grafted on. The wrapper
    keeps its own deterministic counter, so the same trace replayed
    twice (or under both engines) elides the same accesses. *)
let inject fault (s : Scheme.t) : Scheme.t =
  match fault with
  | Elide_every_nth n ->
    let k = ref 0 in
    {
      s with
      load =
        (fun p w ->
           incr k;
           if !k mod n = 0 then s.load_unchecked p w else s.load p w);
      store =
        (fun p w v ->
           incr k;
           if !k mod n = 0 then s.store_unchecked p w v else s.store p w v);
    }
  | Deaf_libc -> { s with libc_check = (fun _ _ _ -> ()) }
