(** Site-stream recorder for the static check optimizer.

    Our schemes are closures, not compiled code, so "static site" cannot
    mean a program counter. Instead, a checked-family access is
    identified by its {e position in the deterministic operation
    stream}: the [k]-th [load]/[store]/[load_ptr]/[store_ptr] a workload
    issues. Workloads are deterministic and the stream is a
    workload-level property (engines only change memory-system
    internals), so the same index names the same access in the recording
    run, in the optimized run, under every engine, and under any
    [--jobs] split.

    [wrap] interposes a purely observational layer: it charges nothing,
    touches no simulated memory, and keeps all bookkeeping host-side, so
    a recorded run is bit-identical to an unwrapped one. It logs, per
    event: object births (with size) and deaths, every checked-family
    access (op kind, referent object by birth index, object-relative
    offset, width, clocked by the op counter), and every [check_range] a
    workload issues (the dominating checks the optimizer may elide
    against). Accesses through narrowed pointers ([p.bnd <> None]) are
    recorded referent-less: intra-object bounds are deliberately outside
    the optimizer's certificate language. *)

open Types
module Imap = Map.Make (Int)

type opk = Oload | Ostore | Oload_ptr | Ostore_ptr

let opk_name = function
  | Oload -> "load"
  | Ostore -> "store"
  | Oload_ptr -> "load_ptr"
  | Ostore_ptr -> "store_ptr"

let opk_writes = function Ostore | Ostore_ptr -> true | Oload | Oload_ptr -> false

type event =
  | Alloc of { obj : int; size : int }
  | Dead of { obj : int }
  | Acc of { idx : int; op : opk; obj : int; off : int; width : int }
      (** [idx] is the op-stream clock; [obj = -1]: no (single) referent *)
  | Chk of { idx : int; obj : int; off : int; len : int; dir : access }
      (** a workload [check_range]; [idx] is the clock value it becomes
          live at (the next access index) *)

type t = {
  mutable rev_events : event list;
  mutable nevents : int;
  mutable objects : (int * int) Imap.t;  (** base -> (hi, birth index) *)
  mutable births : int;
  mutable ops : int;                     (** checked-family op counter *)
  mutable frames : int list list;        (** stack-frame alloc bases *)
  cap : int;
  mutable truncated : bool;
}

let create ?(cap = 4_000_000) () =
  { rev_events = []; nevents = 0; objects = Imap.empty; births = 0; ops = 0;
    frames = []; cap; truncated = false }

let events t = Array.of_list (List.rev t.rev_events)
let ops t = t.ops
let births t = t.births
let truncated t = t.truncated

let emit t e =
  if t.nevents < t.cap then begin
    t.rev_events <- e :: t.rev_events;
    t.nevents <- t.nevents + 1
  end
  else t.truncated <- true

let register t base size =
  let id = t.births in
  t.births <- id + 1;
  t.objects <- Imap.add base (base + size, id) t.objects;
  emit t (Alloc { obj = id; size })

let kill t base =
  match Imap.find_opt base t.objects with
  | Some (_, id) ->
    t.objects <- Imap.remove base t.objects;
    emit t (Dead { obj = id })
  | None -> ()

let lookup t a =
  match Imap.find_last_opt (fun b -> b <= a) t.objects with
  | Some (base, (hi, id)) when a < hi -> Some (base, id)
  | _ -> None

(** Record one checked-family access and advance the op clock. *)
let acc t (inner : Scheme.t) op p width =
  let idx = t.ops in
  t.ops <- idx + 1;
  let referent = if p.bnd <> None then None else lookup t (inner.Scheme.addr_of p) in
  match referent with
  | Some (base, id) ->
    emit t (Acc { idx; op; obj = id; off = inner.Scheme.addr_of p - base; width })
  | None -> emit t (Acc { idx; op; obj = -1; off = 0; width })

let chk t (inner : Scheme.t) p len dir =
  if p.bnd = None then begin
    match lookup t (inner.Scheme.addr_of p) with
    | Some (base, id) ->
      emit t (Chk { idx = t.ops; obj = id; off = inner.Scheme.addr_of p - base; len; dir })
    | None -> ()
  end

let wrap ?cap (inner : Scheme.t) : Scheme.t * t =
  let t = create ?cap () in
  let s =
    {
      inner with
      Scheme.malloc =
        (fun size ->
           let p = inner.Scheme.malloc size in
           register t (inner.Scheme.addr_of p) size;
           p);
      calloc =
        (fun n size ->
           let p = inner.Scheme.calloc n size in
           register t (inner.Scheme.addr_of p) (n * size);
           p);
      realloc =
        (fun p size ->
           let old = inner.Scheme.addr_of p in
           let q = inner.Scheme.realloc p size in
           kill t old;
           register t (inner.Scheme.addr_of q) size;
           q);
      free =
        (fun p ->
           kill t (inner.Scheme.addr_of p);
           inner.Scheme.free p);
      global =
        (fun size ->
           let p = inner.Scheme.global size in
           register t (inner.Scheme.addr_of p) size;
           p);
      stack_push =
        (fun () ->
           t.frames <- [] :: t.frames;
           inner.Scheme.stack_push ());
      stack_alloc =
        (fun size ->
           let p = inner.Scheme.stack_alloc size in
           let a = inner.Scheme.addr_of p in
           register t a size;
           (match t.frames with
            | f :: rest -> t.frames <- (a :: f) :: rest
            | [] -> ());
           p);
      stack_pop =
        (fun tok ->
           (match t.frames with
            | f :: rest ->
              List.iter (kill t) f;
              t.frames <- rest
            | [] -> ());
           inner.Scheme.stack_pop tok);
      load =
        (fun p width ->
           acc t inner Oload p width;
           inner.Scheme.load p width);
      store =
        (fun p width v ->
           acc t inner Ostore p width;
           inner.Scheme.store p width v);
      load_ptr =
        (fun p ->
           acc t inner Oload_ptr p 8;
           inner.Scheme.load_ptr p);
      store_ptr =
        (fun p q ->
           acc t inner Ostore_ptr p 8;
           inner.Scheme.store_ptr p q);
      check_range =
        (fun p len dir ->
           chk t inner p len dir;
           inner.Scheme.check_range p len dir);
    }
  in
  (s, t)
