(** Profiling meta-scheme: interpose on every {!Scheme.t} operation and
    bracket it in a {!Sb_telemetry.Profile} site, so every cycle the
    memory system charges during the operation — the data access itself
    plus all metadata traffic the scheme issues for it — lands on an
    "op:<name>" site under whatever site the caller is in.

    The wrapper only intercepts calls through the scheme record; a
    scheme's internal helpers never pass through it again, so there is
    no double counting. Like the other meta-schemes ({!Faulty},
    auditing), semantics are delegated verbatim — simulated metrics are
    unchanged, only attribution is added. *)

module Profile = Sb_telemetry.Profile

type sites = {
  p : Profile.t;
  s_malloc : int;
  s_calloc : int;
  s_realloc : int;
  s_free : int;
  s_global : int;
  s_stack_alloc : int;
  s_load : int;
  s_store : int;
  s_safe_load : int;
  s_safe_store : int;
  s_check_range : int;
  s_load_unchecked : int;
  s_store_unchecked : int;
  s_load_ptr : int;
  s_store_ptr : int;
  s_load_ptr_unchecked : int;
  s_store_ptr_unchecked : int;
  s_libc_check : int;
  s_libc_touch : int;
}

let sites p =
  let i n = Profile.intern p ("op:" ^ n) in
  {
    p;
    s_malloc = i "malloc";
    s_calloc = i "calloc";
    s_realloc = i "realloc";
    s_free = i "free";
    s_global = i "global";
    s_stack_alloc = i "stack_alloc";
    s_load = i "load";
    s_store = i "store";
    s_safe_load = i "safe_load";
    s_safe_store = i "safe_store";
    s_check_range = i "check_range";
    s_load_unchecked = i "load_unchecked";
    s_store_unchecked = i "store_unchecked";
    s_load_ptr = i "load_ptr";
    s_store_ptr = i "store_ptr";
    s_load_ptr_unchecked = i "load_ptr_unchecked";
    s_store_ptr_unchecked = i "store_ptr_unchecked";
    s_libc_check = i "libc_check";
    s_libc_touch = i "libc_touch";
  }

(* Arity-specialized brackets: [Profile.with_site] closes the site even
   on a fault (schemes raise on violations), and these avoid allocating
   an intermediate closure per call for the common arities. *)
let w1 p site f a = Profile.with_site p site (fun () -> f a)
let w2 p site f a b = Profile.with_site p site (fun () -> f a b)
let w3 p site f a b c = Profile.with_site p site (fun () -> f a b c)
let w4 p site f a b c d = Profile.with_site p site (fun () -> f a b c d)

(** [wrap prof s]: a scheme equal to [s] with every record operation
    bracketed in its "op:<name>" site of [prof]. [prof] must already be
    attached to [s]'s machine for the charges to arrive
    ({!Sb_sgx.Memsys.attach_profiler}). *)
let wrap prof (s : Scheme.t) =
  let z = sites prof in
  let p = z.p in
  {
    s with
    Scheme.malloc = w1 p z.s_malloc s.Scheme.malloc;
    calloc = w2 p z.s_calloc s.Scheme.calloc;
    realloc = w2 p z.s_realloc s.Scheme.realloc;
    free = w1 p z.s_free s.Scheme.free;
    global = w1 p z.s_global s.Scheme.global;
    stack_alloc = w1 p z.s_stack_alloc s.Scheme.stack_alloc;
    load = w2 p z.s_load s.Scheme.load;
    store = w3 p z.s_store s.Scheme.store;
    safe_load = w2 p z.s_safe_load s.Scheme.safe_load;
    safe_store = w3 p z.s_safe_store s.Scheme.safe_store;
    check_range = w3 p z.s_check_range s.Scheme.check_range;
    load_unchecked = w2 p z.s_load_unchecked s.Scheme.load_unchecked;
    store_unchecked = w3 p z.s_store_unchecked s.Scheme.store_unchecked;
    load_ptr = w1 p z.s_load_ptr s.Scheme.load_ptr;
    store_ptr = w2 p z.s_store_ptr s.Scheme.store_ptr;
    load_ptr_unchecked = w1 p z.s_load_ptr_unchecked s.Scheme.load_ptr_unchecked;
    store_ptr_unchecked = w2 p z.s_store_ptr_unchecked s.Scheme.store_ptr_unchecked;
    libc_check = w3 p z.s_libc_check s.Scheme.libc_check;
    libc_touch = w4 p z.s_libc_touch s.Scheme.libc_touch;
  }
