(** The uninstrumented baseline ("native SGX" in the paper): no checks,
    no metadata — and no protection. Out-of-bounds accesses silently read
    or corrupt whatever is mapped there; only the MMU ({!Sb_vmem.Vmem})
    stops accesses to unmapped or guard pages, as on real hardware. *)

open Types
module Memsys = Sb_sgx.Memsys

let make ms : Scheme.t =
  let base = Base.create ms in
  let heap = base.Base.heap in
  let extras = fresh_extras () in
  let mk v = { v; bnd = None } in
  let malloc size = mk (Sb_alloc.Freelist.alloc heap size) in
  let free p =
    (* Freeing a dead or wild pointer is undefined behaviour; the native
       run ignores it silently, like glibc often appears to. *)
    if Sb_alloc.Freelist.is_live heap p.v then Sb_alloc.Freelist.free heap p.v
  in
  let calloc n size =
    let p = malloc (n * size) in
    Memsys.fill ms ~addr:p.v ~len:(n * size) ~byte:0;
    p
  in
  let realloc p size =
    if p.v = 0 then malloc size
    else begin
      let old_size = Sb_alloc.Freelist.chunk_size heap p.v in
      let q = malloc size in
      Memsys.blit ms ~src:p.v ~dst:q.v ~len:(min old_size size);
      free p;
      q
    end
  in
  let load p width = Memsys.load ms ~addr:p.v ~width in
  let store p width v = Memsys.store ms ~addr:p.v ~width v in
  {
    Scheme.name = "native";
    ms;
    extras;
    malloc;
    calloc;
    realloc;
    free;
    global = (fun size -> mk (Sb_alloc.Bump.alloc base.Base.globals size));
    stack_push = (fun () -> Sb_alloc.Stackmem.push_frame (Base.stack base));
    stack_alloc = (fun size -> mk (Sb_alloc.Stackmem.alloc (Base.stack base) size));
    stack_pop = (fun tok -> Sb_alloc.Stackmem.pop_frame (Base.stack base) tok);
    offset = (fun p delta -> { p with v = p.v + delta });
    addr_of = (fun p -> p.v);
    load;
    store;
    safe_load = load;
    safe_store = store;
    check_range = (fun _ _ _ -> ());
    load_unchecked = load;
    store_unchecked = store;
    load_ptr = (fun p -> mk (Memsys.load ms ~addr:p.v ~width:8));
    store_ptr = (fun p q -> Memsys.store ms ~addr:p.v ~width:8 q.v);
    load_ptr_unchecked = (fun p -> mk (Memsys.load ms ~addr:p.v ~width:8));
    store_ptr_unchecked = (fun p q -> Memsys.store ms ~addr:p.v ~width:8 q.v);
    libc_check = (fun _ _ _ -> ());
    libc_touch = Scheme.no_touch;
  }
