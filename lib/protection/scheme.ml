(** The protection-scheme interface.

    A workload performs *every* memory operation through a [t] — the
    moral equivalent of compiling it with the scheme's LLVM/GCC pass
    under the SCONE monolithic-build assumption (§3 of the paper: no
    uninstrumented application code exists).

    Access families:
    - [load]/[store]: ordinary instrumented accesses (checked).
    - [safe_load]/[safe_store]: accesses the compiler can prove
      in-bounds (fixed struct offsets, constant indices into fixed-size
      arrays). Schemes with the "safe accesses" optimization of §4.4
      elide the check; with the optimization off they behave like
      [load]/[store].
    - [check_range] + [*_unchecked]: the loop-hoisting pattern of §4.4 —
      one range check before the loop, raw accesses inside. Schemes that
      cannot hoist (no per-object bounds, or the optimization is off)
      implement [check_range] as a no-op and make the "unchecked" ops
      checked, so semantics never weaken.
    - [load_ptr]/[store_ptr]: pointer-typed memory traffic; this is
      where per-pointer metadata schemes (MPX) spill and fill bounds.
    - [libc_check]: what the scheme's libc wrapper does to a buffer
      argument before calling the real (uninstrumented) libc.
    - [libc_touch]: {!Sb_libc.Simlibc} declares the bytes a raw libc
      body actually touches, right after the corresponding
      [libc_check]. Every real scheme ignores it (the hardware would
      not see the declaration either); the auditing meta-scheme in
      [Sb_analysis] overrides it to verify that wrapper checks and
      libc traffic agree. *)

open Types

type t = {
  name : string;
  ms : Sb_sgx.Memsys.t;
  extras : extras;
  (* allocation *)
  malloc : int -> ptr;
  calloc : int -> int -> ptr;
  realloc : ptr -> int -> ptr;
  free : ptr -> unit;
  global : int -> ptr;
  stack_push : unit -> int;
  stack_alloc : int -> ptr;
  stack_pop : int -> unit;
  (* pointer ops *)
  offset : ptr -> int -> ptr;
  addr_of : ptr -> int;
  (* data accesses *)
  load : ptr -> int -> int;
  store : ptr -> int -> int -> unit;
  safe_load : ptr -> int -> int;
  safe_store : ptr -> int -> int -> unit;
  check_range : ptr -> int -> access -> unit;
  load_unchecked : ptr -> int -> int;
  store_unchecked : ptr -> int -> int -> unit;
  (* pointer-typed accesses *)
  load_ptr : ptr -> ptr;
  store_ptr : ptr -> ptr -> unit;
  (* pointer-typed accesses inside a hoisted loop (after check_range on
     the table): SGXBounds reads the tagged word raw — bounds metadata
     arrives with the data, zero extra work ("no additional memory
     lookups for simple loop iterations", §1). Schemes with disjoint
     metadata (MPX) still pay their bndldx/bndstx; schemes that cannot
     hoist keep the full checked path. *)
  load_ptr_unchecked : ptr -> ptr;
  store_ptr_unchecked : ptr -> ptr -> unit;
  (* libc wrapper behaviour *)
  libc_check : ptr -> int -> access -> unit;
  (* Simlibc's declaration of the bytes its raw body touches: function
     name, buffer, byte count, direction. No-op in every real scheme. *)
  libc_touch : string -> ptr -> int -> access -> unit;
}

(** The default [libc_touch]: declarations vanish, like they would on
    real hardware. *)
let no_touch : string -> ptr -> int -> access -> unit = fun _ _ _ _ -> ()

(** Raw untagged address of [p] under scheme [s]. *)
let addr s p = s.addr_of p

(** Peak reserved virtual memory of the run so far — the metric of the
    paper's memory plots. *)
let peak_vm s = Sb_vmem.Vmem.peak_reserved_bytes (Sb_sgx.Memsys.vmem s.ms)

let reserved_vm s = Sb_vmem.Vmem.reserved_bytes (Sb_sgx.Memsys.vmem s.ms)

(** Convenience: pointer + byte offset, then a checked load. *)
let load_at s p off width = s.load (s.offset p off) width

let store_at s p off width v = s.store (s.offset p off) width v
