(** Common types of the protection-scheme interface. *)

(** A simulated application pointer.

    [v] is the scheme's machine representation: for the native baseline,
    AddressSanitizer, Baggy Bounds and Intel MPX it is the plain address;
    for SGXBounds it is the tagged word of the paper's Figure 5 (upper
    bound in the high half, address in the low half).

    [bnd] models metadata travelling in *registers* next to the pointer —
    only Intel MPX uses it (the contents of a BNDx register associated
    with this pointer value). It deliberately does NOT survive a trip
    through memory: storing a pointer and loading it back goes through
    bndstx/bndldx, which is where MPX's multithreading troubles live. *)
type ptr = {
  v : int;
  bnd : bound option;
}

and bound = { lo : int; hi : int }  (** referent object is [lo, hi) *)

type access = Read | Write

(** A detected memory-safety violation (the hardened program would print
    a diagnostic and abort). *)
type violation = {
  scheme : string;
  addr : int;          (** untagged offending address *)
  access : access;
  width : int;
  lo : int;            (** referent lower bound if known, else 0 *)
  hi : int;            (** referent upper bound if known, else 0 *)
  reason : string;
}

exception Violation of violation

(** The application died for a reason other than a detected violation —
    e.g. Intel MPX exhausting enclave memory with bounds tables, or a
    native segfault surfacing from the MMU. *)
exception App_crash of string

(** Per-scheme counters surfaced into experiment results. *)
type extras = {
  mutable bts_allocated : int;        (** MPX bounds tables created *)
  mutable quarantine_bytes : int;     (** ASan quarantine footprint *)
  mutable redzone_bytes : int;        (** ASan redzone footprint *)
  mutable boundless_reads : int;      (** SGXBounds overlay reads *)
  mutable boundless_writes : int;     (** SGXBounds overlay writes *)
  mutable violations : int;           (** violations observed (boundless mode) *)
  mutable checks_elided : int;        (** checks removed by optimizations *)
  mutable checks_done : int;          (** bounds checks executed *)
  mutable checks_hoisted : int;       (** range checks hoisted out of loops (§4.4) *)
}

let fresh_extras () = {
  bts_allocated = 0;
  quarantine_bytes = 0;
  redzone_bytes = 0;
  boundless_reads = 0;
  boundless_writes = 0;
  violations = 0;
  checks_elided = 0;
  checks_done = 0;
  checks_hoisted = 0;
}

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

let pp_violation ppf v =
  Fmt.pf ppf "%s: out-of-bounds %a of %d byte(s) at 0x%x (object [0x%x,0x%x)): %s"
    v.scheme pp_access v.access v.width v.addr v.lo v.hi v.reason
