(** The scheme-capability record: one row per protection scheme holding
    everything the rest of the tree used to hard-code about it — the
    maker, the fuzz detection contract, the libc-wrapper capability, the
    disjoint-metadata model and its {!Memsys.access_class}es, and the
    symbolic-auditor capability row. Harness, fuzz, audit, symex and the
    service consume this table, so adding scheme #5 is one entry here
    (plus its implementation library) rather than a five-file hunt. *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme

(** Which {!Sb_fuzz.Contract} detection floor the scheme promises. The
    variants name mechanisms, not scheme strings, so ablation variants
    (e.g. [sgxbounds-noopt]) share their base scheme's row. *)
type contract =
  | Contract_none        (** promises nothing (native) *)
  | Contract_sgxbounds   (** any upper overflow, incl. libc wrappers *)
  | Contract_asan        (** redzone/quarantine intersections *)
  | Contract_mpx         (** spatially bad instrumented access, no libc *)
  | Contract_baggy       (** allocation-bounds (buddy block) overruns *)

(** Where the scheme keeps bounds metadata relative to the object — the
    disjoint-metadata model the race auditor reasons about. *)
type meta = No_meta | Mpx_bt | Sgxbounds_footer

type t = {
  name : string;
  maker : Memsys.t -> Scheme.t;
      (** evaluation flavour: full-size regions, as the harness runs it *)
  trace_maker : Memsys.t -> Scheme.t;
      (** fuzz-replay flavour: traces allocate a few KiB, so schemes with
          eagerly-mapped regions (baggy) use a small one per replay *)
  counts_only : bool;
      (** boundless mode: violations are counted, not raised (§3.4) *)
  contract : contract;
  guards_accesses : bool;
      (** symex capability row: every checked-family access is verified,
          so an attacker-steered pointer traps instead of dereferencing *)
  libc_touch : bool;
      (** symex capability row: the scheme's libc wrappers really check
          buffer extents ([libc_check] is live, [libc_touch] traffic is
          covered). MPX ships no interceptors (§5.3), so its row is
          [false] and its fuzz contract exempts [Libc] ranges. *)
  meta_model : meta;
  meta_classes : Memsys.access_class list;
      (** access classes the scheme charges metadata traffic to *)
  headline : bool;
      (** one of the paper's four headline schemes (audit/matrix sweeps) *)
  ablation : int option;
      (** position in the Figure 10 optimization-ablation line-up *)
}

let sgxbounds_row name ?(counts_only = false) ?ablation maker =
  {
    name;
    maker;
    trace_maker = maker;
    counts_only;
    contract = Contract_sgxbounds;
    guards_accesses = true;
    libc_touch = true;
    meta_model = Sgxbounds_footer;
    meta_classes = [ Memsys.Footer_meta ];
    headline = name = "sgxbounds";
    ablation;
  }

(** The scheme line-up of the evaluation. [sgxbounds-*] variants are the
    Figure 10 optimization ablation. *)
let all : t list =
  [
    {
      name = "native";
      maker = Sb_protection.Native.make;
      trace_maker = Sb_protection.Native.make;
      counts_only = false;
      contract = Contract_none;
      guards_accesses = false;
      libc_touch = false;
      meta_model = No_meta;
      meta_classes = [];
      headline = true;
      ablation = Some 0;
    };
    sgxbounds_row "sgxbounds" ~ablation:4 (fun m -> Sgxbounds.make m);
    sgxbounds_row "sgxbounds-noopt" ~ablation:1
      (fun m -> Sgxbounds.make ~opts:Sgxbounds.no_opts m);
    sgxbounds_row "sgxbounds-safe" ~ablation:2
      (fun m ->
         Sgxbounds.make ~opts:{ Sgxbounds.safe_elision = true; hoisting = false } m);
    sgxbounds_row "sgxbounds-hoist" ~ablation:3
      (fun m ->
         Sgxbounds.make ~opts:{ Sgxbounds.safe_elision = false; hoisting = true } m);
    sgxbounds_row "sgxbounds-boundless" ~counts_only:true
      (fun m -> Sgxbounds.make ~mode:Sgxbounds.Boundless_mode m);
    {
      name = "asan";
      maker = (fun m -> Sb_asan.Asan.make m);
      trace_maker = (fun m -> Sb_asan.Asan.make m);
      counts_only = false;
      contract = Contract_asan;
      guards_accesses = true;
      libc_touch = true;
      meta_model = No_meta;
      meta_classes = [ Memsys.Shadow; Memsys.Quarantine ];
      headline = true;
      ablation = None;
    };
    {
      name = "mpx";
      maker = Sb_mpx.Mpx.make;
      trace_maker = Sb_mpx.Mpx.make;
      counts_only = false;
      contract = Contract_mpx;
      guards_accesses = true;
      libc_touch = false;
      meta_model = Mpx_bt;
      meta_classes = [ Memsys.Bounds_table ];
      headline = true;
      ablation = None;
    };
    {
      name = "baggy";
      maker = (fun m -> Sb_baggy.Baggy.make ~region_bytes:(16 * 1024 * 1024) m);
      (* Baggy gets a small buddy region for traces: fuzz traces allocate
         a few KiB, and the region (plus its 1/16 size table) is mapped
         eagerly per replay. *)
      trace_maker = (fun m -> Sb_baggy.Baggy.make ~region_bytes:(1 lsl 20) m);
      counts_only = false;
      contract = Contract_baggy;
      guards_accesses = true;
      libc_touch = true;
      meta_model = No_meta;
      meta_classes = [ Memsys.Bounds_table ];
      headline = false;
      ablation = None;
    };
  ]

let names = List.map (fun i -> i.name) all
let find_opt name = List.find_opt (fun i -> i.name = name) all

(* "sgxbounds-noopt" -> "sgxbounds": ablation variants share their base
   scheme's capabilities (§4.4 optimizations never weaken checks). *)
let base_scheme name =
  match String.index_opt name '-' with
  | Some i -> String.sub name 0 i
  | None -> name

(** Capability row for [name], falling back to the base scheme's row for
    variant names not listed explicitly; [None] for unknown schemes. *)
let lookup name =
  match find_opt name with Some i -> Some i | None -> find_opt (base_scheme name)

let contract_of name =
  match lookup name with Some i -> i.contract | None -> Contract_none

let guards_accesses name =
  match lookup name with Some i -> i.guards_accesses | None -> false

let guards_libc name =
  match lookup name with Some i -> i.libc_touch | None -> false

let meta_model_of name =
  match lookup name with Some i -> i.meta_model | None -> No_meta

(** The paper's four headline schemes, the line-up of every audit /
    interface-matrix sweep. *)
let headline_names = List.map (fun i -> i.name) (List.filter (fun i -> i.headline) all)

(** The Figure 10 optimization-ablation line-up, in table order. *)
let ablation_names =
  List.filter (fun i -> i.ablation <> None) all
  |> List.sort (fun a b -> compare a.ablation b.ablation)
  |> List.map (fun i -> i.name)
