(** Memcached model (§7, Figure 13a): slab-allocated items, a chained
    hash table and an LRU list — all pointers in simulated memory, which
    is why Intel MPX's bounds tables blow its working set past the EPC
    ("abysmal drop in throughput", 100x more page faults).

    Item layout:
      0  : hash-chain next pointer (8)
      8  : LRU prev (8)
      16 : LRU next (8)
      24 : key (8)
      32 : expiry deadline in simulated cycles, 0 = never (8)
      40 : value bytes

    The memaslap-like driver issues a 9:1 get:set mix over a skewed key
    popularity distribution.

    [handle_binary_packet] reproduces CVE-2011-4971: a negative body
    length in the binary protocol header becomes a huge unsigned copy
    length. *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
module Libc = Sb_libc.Simlibc
open Sb_protection.Types
open Sb_workloads.Wctx

let item_header = 40
let expiry_off = 32
let slab_bytes = 64 * 1024

type t = {
  ctx : Sb_workloads.Wctx.t;
  nbuckets : int;
  buckets : ptr;
  value_bytes : int;
  max_items : int;             (* the -m memory cap, in items *)
  (* slab free lists per run: one item size class for simplicity *)
  mutable slab_free : ptr list;
  mutable items : int;
  (* intrusive LRU list: most-recently-used at the head *)
  mutable lru_head : ptr;
  mutable lru_tail : ptr;
  mutable evictions : int;
  (* the SCONE world: requests arrive and responses leave through the
     shielded syscall interface *)
  world : Sb_scone.Scone.t;
  conn : Sb_scone.Scone.fd;
  conn_buf : ptr;
}

let request_bytes = 32
let null = { v = 0; bnd = None }

let create ?(nbuckets = 8192) ?(value_bytes = 96) ?(max_items = max_int) ctx =
  let world = Sb_scone.Scone.create ctx.s in
  {
    ctx;
    nbuckets;
    buckets = ctx.s.Scheme.calloc nbuckets 8;
    value_bytes;
    max_items;
    slab_free = [];
    items = 0;
    lru_head = null;
    lru_tail = null;
    evictions = 0;
    world;
    conn = Sb_scone.Scone.open_channel world ~shield:Sb_scone.Scone.No_shield;
    conn_buf = ctx.s.Scheme.malloc 1024;
  }

let item_bytes t = item_header + t.value_bytes

(* Carve a fresh 64 KiB slab into items, like memcached's slabber. *)
let grow_slab t =
  let per_slab = slab_bytes / item_bytes t in
  let slab = t.ctx.s.Scheme.malloc (per_slab * item_bytes t) in
  for i = per_slab - 1 downto 0 do
    t.slab_free <- t.ctx.s.Scheme.offset slab (i * item_bytes t) :: t.slab_free
  done

let alloc_item t =
  (match t.slab_free with [] -> grow_slab t | _ :: _ -> ());
  match t.slab_free with
  | it :: rest ->
    t.slab_free <- rest;
    it
  | [] -> assert false

let hash t key =
  work t.ctx 10;
  (key * 2654435761) land (t.nbuckets - 1)

let bucket t key = t.ctx.s.Scheme.offset t.buckets (hash t key * 8)

(* --- intrusive LRU list over item fields [8]=prev, [16]=next --- *)

let lru_prev t it = t.ctx.s.Scheme.load_ptr (t.ctx.s.Scheme.offset it 8)
let lru_next t it = t.ctx.s.Scheme.load_ptr (t.ctx.s.Scheme.offset it 16)
let set_lru_prev t it p = t.ctx.s.Scheme.store_ptr (t.ctx.s.Scheme.offset it 8) p
let set_lru_next t it p = t.ctx.s.Scheme.store_ptr (t.ctx.s.Scheme.offset it 16) p

let lru_unlink t it =
  let p = lru_prev t it and n = lru_next t it in
  if not (is_null t.ctx p) then set_lru_next t p n;
  if not (is_null t.ctx n) then set_lru_prev t n p;
  if t.lru_head.v = it.v then t.lru_head <- n;
  if t.lru_tail.v = it.v then t.lru_tail <- p

let lru_push_head t it =
  set_lru_prev t it null;
  set_lru_next t it t.lru_head;
  if not (is_null t.ctx t.lru_head) then set_lru_prev t t.lru_head it;
  t.lru_head <- it;
  if is_null t.ctx t.lru_tail then t.lru_tail <- it

(* item_touch: move to the MRU position (memcached does this on get) *)
let lru_touch t it =
  if t.lru_head.v <> it.v then begin
    lru_unlink t it;
    lru_push_head t it
  end

let rec chain_find t node key =
  if is_null t.ctx node then None
  else begin
    work t.ctx 2;
    if t.ctx.s.Scheme.safe_load (t.ctx.s.Scheme.offset node 24) 8 = key then Some node
    else chain_find t (t.ctx.s.Scheme.load_ptr node) key
  end

(* Unlink [it] from its hash chain (used by eviction); the chain-next
   pointer is the item's first field. *)
let chain_unlink t key it =
  let b = bucket t key in
  let rec go link =
    let node = t.ctx.s.Scheme.load_ptr link in
    if is_null t.ctx node then ()
    else if node.v = it.v then
      t.ctx.s.Scheme.store_ptr link (t.ctx.s.Scheme.load_ptr node)
    else go node
  in
  go b

(* Evict the least recently used item: unlink from LRU and hash chain,
   return it to the slab class (memcached's -m cap behaviour). *)
let evict_lru t =
  let victim = t.lru_tail in
  if not (is_null t.ctx victim) then begin
    let key = t.ctx.s.Scheme.safe_load (t.ctx.s.Scheme.offset victim 24) 8 in
    lru_unlink t victim;
    chain_unlink t key victim;
    t.slab_free <- victim :: t.slab_free;
    t.items <- t.items - 1;
    t.evictions <- t.evictions + 1;
    work t.ctx 40
  end

let now t = Memsys.get_clock t.ctx.ms (Memsys.current_thread t.ctx.ms)

(* Lazy expiration, as in the real memcached: an expired item is only
   reclaimed when a get trips over it. *)
let expired t it =
  let deadline = t.ctx.s.Scheme.safe_load (t.ctx.s.Scheme.offset it expiry_off) 8 in
  deadline <> 0 && now t >= deadline

let reclaim_expired t key it =
  lru_unlink t it;
  chain_unlink t key it;
  t.slab_free <- it :: t.slab_free;
  t.items <- t.items - 1;
  work t.ctx 40

(** GET: hash, chain walk, expiry check, LRU touch, then stream the
    value out (touching it the way the response path would). *)
let get t key =
  let b = bucket t key in
  match chain_find t (t.ctx.s.Scheme.load_ptr b) key with
  | None -> false
  | Some it when expired t it ->
    reclaim_expired t key it;
    false
  | Some it ->
    lru_touch t it;
    let v = t.ctx.s.Scheme.offset it item_header in
    t.ctx.s.Scheme.check_range v t.value_bytes Read;
    let i = ref 0 in
    while !i < t.value_bytes do
      ignore (t.ctx.s.Scheme.load_unchecked (t.ctx.s.Scheme.offset v !i) 8);
      i := !i + 8
    done;
    work t.ctx 20;
    true

(** SET: insert or overwrite; fresh items also join the LRU list head
    (two more pointer stores, as in the real item_link). [ttl] is a
    relative lifetime in simulated cycles (0 = never expires, the
    default); sets always refresh the deadline. *)
let set_kv ?(ttl = 0) t key seed =
  let b = bucket t key in
  let it =
    match chain_find t (t.ctx.s.Scheme.load_ptr b) key with
    | Some it -> it
    | None ->
      if t.items >= t.max_items then evict_lru t;
      let it = alloc_item t in
      t.ctx.s.Scheme.store (t.ctx.s.Scheme.offset it 24) 8 key;
      (* hash chain push *)
      t.ctx.s.Scheme.store_ptr it (t.ctx.s.Scheme.load_ptr b);
      t.ctx.s.Scheme.store_ptr b it;
      lru_push_head t it;
      t.items <- t.items + 1;
      it
  in
  t.ctx.s.Scheme.safe_store
    (t.ctx.s.Scheme.offset it expiry_off) 8
    (if ttl > 0 then now t + ttl else 0);
  let v = t.ctx.s.Scheme.offset it item_header in
  t.ctx.s.Scheme.check_range v t.value_bytes Write;
  let i = ref 0 in
  while !i < t.value_bytes do
    t.ctx.s.Scheme.store_unchecked (t.ctx.s.Scheme.offset v !i) 8 (seed + !i);
    i := !i + 8
  done;
  work t.ctx 25

(** memaslap-like driver: preload [keys] items, then [ops] operations
    (90% get, 10% set) over a skewed distribution, spread across the
    context's threads. Returns (elapsed cycles, ops completed). *)
let memaslap t ~keys ~ops =
  for k = 0 to keys - 1 do
    set_kv t k k
  done;
  let request = String.make request_bytes 'r' in
  let start = Memsys.get_clock t.ctx.ms 0 in
  parallel t.ctx ops (fun _tid lo hi ->
      for _op = lo to hi - 1 do
        (* the request arrives through the syscall interface... *)
        Sb_scone.Scone.feed t.world t.conn request;
        ignore (Sb_scone.Scone.read t.world t.conn ~buf:t.conn_buf ~len:request_bytes);
        (* memaslap draws keys ~uniformly over the whole set *)
        let key = Rng.int t.ctx.rng (max 1 (keys * 10 / 8)) in
        (if Rng.bernoulli t.ctx.rng 0.9 then ignore (get t key) else set_kv t key key);
        (* ...and the response leaves the same way *)
        ignore (Sb_scone.Scone.write t.world t.conn ~buf:t.conn_buf ~len:t.value_bytes)
      done);
  let elapsed = Memsys.get_clock t.ctx.ms 0 - start in
  (elapsed, ops)

let item_count t = t.items
let eviction_count t = t.evictions

(** Open a dedicated client connection for a service worker. *)
let open_conn ?(shield = Sb_scone.Scone.No_shield) t =
  Sb_scone.Scone.open_channel t.world ~shield

(** Serve one memaslap-style operation on a worker's own connection:
    request in through the syscall interface, one get or set, response
    out. [buf] must hold at least [request_bytes] and the value size. *)
let serve_request t ~conn ~buf ~key ~is_get =
  Sb_scone.Scone.feed t.world conn (String.make request_bytes 'r');
  ignore (Sb_scone.Scone.read t.world conn ~buf ~len:request_bytes);
  (if is_get then ignore (get t key) else set_kv t key key);
  ignore (Sb_scone.Scone.write t.world conn ~buf ~len:t.value_bytes)

(** CVE-2011-4971: binary-protocol packet with a negative (sign-extended)
    body length. The unsigned copy length becomes enormous and the copy
    runs off the 1 KiB connection buffer. Returns what happened. *)
type packet_outcome =
  | Processed          (** benign packet handled *)
  | Corrupted          (** native: the copy trampled adjacent memory *)
  | Detected_dropped   (** a wrapper/check flagged it; request dropped *)
  | Crashed_segfault   (** the runaway copy hit an unmapped page *)
  | Survived_looping
      (** boundless memory: the overflowed content was discarded (reads
          and writes went to the overlay), but the program's subsequent
          logic spins on the bogus length — the paper's §7 observation
          ("went into an infinite loop due to a subsequent bug"). The
          simulation bounds the spin at the socket-read limit. *)

let handle_binary_packet t ~body_len =
  Sb_scone.Scone.feed t.world t.conn (String.make 24 'h');
  ignore (Sb_scone.Scone.read t.world t.conn ~buf:t.conn_buf ~len:24);
  let conn_buf = t.ctx.s.Scheme.malloc 1024 in
  let scratch = t.ctx.s.Scheme.malloc 1024 in
  let victim = t.ctx.s.Scheme.malloc 64 in
  t.ctx.s.Scheme.store victim 8 0x5AFE;
  (* the bug: body_len arrives as a signed 32-bit field and is used as an
     unsigned length by the inlined copy loop *)
  let len = if body_len < 0 then body_len land 0xFFFFFFFF else body_len in
  (* each socket read delivers at most this much before the loop re-polls *)
  let recv_bound = 256 * 1024 in
  let violations_before = t.ctx.s.Scheme.extras.violations in
  let outcome =
    match
      let i = ref 0 in
      while !i < min len recv_bound do
        let v = t.ctx.s.Scheme.load (t.ctx.s.Scheme.offset conn_buf !i) 8 in
        t.ctx.s.Scheme.store (t.ctx.s.Scheme.offset scratch !i) 8 v;
        i := !i + 8
      done
    with
    | () ->
      if t.ctx.s.Scheme.load victim 8 <> 0x5AFE then Corrupted
      else if t.ctx.s.Scheme.extras.violations > violations_before then
        Survived_looping (* boundless: redirected, nothing corrupted *)
      else if len > 1024 then Corrupted
      else Processed
    | exception Violation _ -> Detected_dropped
    | exception Sb_vmem.Vmem.Fault _ ->
      (* the runaway copy ran off the mapped heap segment *)
      let corrupted =
        Sb_vmem.Vmem.load (Memsys.vmem t.ctx.ms)
          ~addr:(t.ctx.s.Scheme.addr_of victim) ~width:8 <> 0x5AFE
      in
      if corrupted then Corrupted else Crashed_segfault
  in
  outcome
