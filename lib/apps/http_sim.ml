(** HTTP server models (§7, Figures 13b/13c) and the two real exploits
    of the case studies.

    Two server architectures with the memory behaviours the paper's
    results hinge on:

    - [Apache]: a worker-pool server where every connection gets its own
      memory pool (~1 MiB in the paper — the reason MPX's bounds
      metadata bloats per client, and the reason SGXBounds' mmap wrapper
      rounds one extra page per pool, the paper's unexpected +50%
      memory);
    - [Nginx]: a single-threaded event server that reuses static buffers
      and copies as little as possible.

    Inside the enclave both pay SCONE's extra response copy to the
    syscall thread (the paper's explanation for the 5-20% native-vs-SGX
    gap on Nginx's 200 KiB page).

    Exploits:
    - [heartbeat] — Heartbleed (Apache/OpenSSL): the attacker-declared
      payload length is trusted, and the reply copy reads far past the
      16-byte request payload into adjacent memory holding key material.
      The copy is the in-application loop OpenSSL inlines, so boundless
      memory turns the leak into zeros without killing the server.
    - [chunked_request] — CVE-2013-2028 (Nginx): a huge chunked-transfer
      size is cast through a signed type and a later recv writes
      attacker-controlled bytes into a small stack buffer. *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
module Libc = Sb_libc.Simlibc
open Sb_protection.Types
open Sb_workloads.Wctx

(* Scaled stand-in for the paper's 200 KiB static page. *)
let page_bytes = 3200 (* 200 KiB / scale *)
let apache_pool_bytes = 16 * 1024 (* paper: ~1 MiB per client, scaled *)

let request_line = "GET /index.html HTTP/1.1\r\nHost: enclave\r\nConnection: keep-alive\r\n\r\n"

type server = {
  ctx : Sb_workloads.Wctx.t;
  page : ptr;              (* the static file being served *)
  world : Sb_scone.Scone.t;
  conn : Sb_scone.Scone.fd;
}

let create_server ?(shield = Sb_scone.Scone.No_shield) ctx =
  let page = ctx.s.Scheme.malloc page_bytes in
  fill_random ctx page (page_bytes / 8) 8;
  let world = Sb_scone.Scone.create ctx.s in
  let conn = Sb_scone.Scone.open_channel world ~shield in
  { ctx; page; world; conn }

(* Send: compose the response in the app buffer, then write it out
   through the SCONE syscall interface — which stages the bytes through
   the enclave syscall slot (the second copy of §7) before the outside
   syscall thread transmits them. [conn] defaults to the server's
   listening connection; service workers pass their own. *)
let send ?conn srv ~out ~len =
  let conn = Option.value conn ~default:srv.conn in
  Libc.memcpy srv.ctx.s ~dst:out ~src:srv.page ~len;
  ignore (Sb_scone.Scone.write srv.world conn ~buf:out ~len)

(* Receive one request into the connection buffer via the syscall
   interface. *)
let recv_request ?conn srv ~conn_buf =
  let conn = Option.value conn ~default:srv.conn in
  Sb_scone.Scone.feed srv.world conn request_line;
  ignore
    (Sb_scone.Scone.read srv.world conn ~buf:conn_buf
       ~len:(String.length request_line))

let requests_per_connection = 20 (* ab keepalive *)

(** One Apache worker handling one keep-alive connection: allocate the
    connection pool once, serve a batch of requests from it, tear the
    pool down. *)
let apache_handle_connection srv =
  let pool = srv.ctx.s.Scheme.malloc apache_pool_bytes in
  for _req = 1 to requests_per_connection do
    (* receive and parse the request inside the connection pool *)
    let hdr = srv.ctx.s.Scheme.offset pool 0 in
    recv_request srv ~conn_buf:hdr;
    srv.ctx.s.Scheme.check_range hdr 256 Write;
    for i = 0 to 255 do
      srv.ctx.s.Scheme.store_unchecked (srv.ctx.s.Scheme.offset hdr i) 1 (i land 0x7f)
    done;
    work srv.ctx 6000; (* request parsing, filters, config walk, logging *)
    let out = srv.ctx.s.Scheme.offset pool 1024 in
    send srv ~out ~len:page_bytes
  done;
  srv.ctx.s.Scheme.free pool

(** Apache under load: [clients] concurrent workers (up to 8 simulated
    threads), [requests] total. Returns (elapsed cycles, requests). *)
let apache_bench ctx ~clients ~requests =
  let srv = create_server ctx in
  let threads = min clients 8 in
  let start = Memsys.get_clock ctx.ms 0 in
  let ctx = { ctx with threads } in
  let connections = max 1 (requests / requests_per_connection) in
  parallel ctx connections (fun _t lo hi ->
      for _c = lo to hi - 1 do
        apache_handle_connection srv
      done);
  (Memsys.get_clock ctx.ms 0 - start, connections * requests_per_connection)

(** One Nginx event-loop iteration: static buffers, minimal copying. *)
let nginx_handle srv ~conn_buf ~out_buf =
  recv_request srv ~conn_buf;
  srv.ctx.s.Scheme.check_range conn_buf 256 Write;
  for i = 0 to 255 do
    srv.ctx.s.Scheme.store_unchecked (srv.ctx.s.Scheme.offset conn_buf i) 1 (i land 0x7f)
  done;
  work srv.ctx 3000; (* event loop, parsing, header assembly *)
  send srv ~out:out_buf ~len:page_bytes

(** Per-client connection state for the open-loop service layer: each
    simulated client multiplexed onto a worker owns its own SCONE channel
    and static nginx-style buffers over the shared server. *)
type worker_conn = {
  wc_fd : Sb_scone.Scone.fd;
  wc_in : ptr;
  wc_out : ptr;
}

let open_worker_conn ?(shield = Sb_scone.Scone.No_shield) srv =
  {
    wc_fd = Sb_scone.Scone.open_channel srv.world ~shield;
    wc_in = srv.ctx.s.Scheme.malloc 1024;
    wc_out = srv.ctx.s.Scheme.malloc (page_bytes + 1024);
  }

(** Serve exactly one request on [wc]'s connection — the nginx event
    handler, addressable per worker by the service scheduler. *)
let serve_request srv wc =
  recv_request ~conn:wc.wc_fd srv ~conn_buf:wc.wc_in;
  srv.ctx.s.Scheme.check_range wc.wc_in 256 Write;
  for i = 0 to 255 do
    srv.ctx.s.Scheme.store_unchecked (srv.ctx.s.Scheme.offset wc.wc_in i) 1 (i land 0x7f)
  done;
  work srv.ctx 3000;
  send ~conn:wc.wc_fd srv ~out:wc.wc_out ~len:page_bytes

(** Nginx under load: single-threaded event loop. *)
let nginx_bench ctx ~requests =
  let srv = create_server ctx in
  let conn_buf = ctx.s.Scheme.malloc 1024 in
  let out_buf = ctx.s.Scheme.malloc (page_bytes + 1024) in
  let start = Memsys.get_clock ctx.ms 0 in
  for _r = 1 to requests do
    nginx_handle srv ~conn_buf ~out_buf
  done;
  (Memsys.get_clock ctx.ms 0 - start, requests)

(* ---------- exploits ---------- *)

type exploit_outcome =
  | Leaked of string     (** reply contained out-of-bounds bytes *)
  | Detected             (** scheme aborted the request (fail-stop) *)
  | Contained_zeros      (** boundless memory: reply padded with zeros *)
  | Corrupted            (** memory beyond the buffer was overwritten *)
  | Harmless             (** attack had no effect *)

(** Heartbleed. The heartbeat request carries a 16-byte payload but
    declares [claimed_len]; the reply copy trusts the claim. The
    "private key" lives in an adjacent heap allocation, and the reply
    leaves the enclave through the SCONE network channel — so the leak
    test below inspects exactly the bytes the attacker would receive. *)
let heartbeat ctx ~claimed_len =
  let world = Sb_scone.Scone.create ctx.s in
  let conn = Sb_scone.Scone.open_channel world ~shield:Sb_scone.Scone.No_shield in
  let request = ctx.s.Scheme.malloc 32 in (* type + len + 16-byte payload *)
  let secret = ctx.s.Scheme.malloc 64 in
  let marker = 0x5EC12E7 in
  for i = 0 to 7 do
    ctx.s.Scheme.store (ctx.s.Scheme.offset secret (i * 8)) 8 (marker + i)
  done;
  let reply = ctx.s.Scheme.malloc (claimed_len + 16) in
  let payload = ctx.s.Scheme.offset request 16 in
  match
    (* OpenSSL's inlined copy loop, compiled with the scheme's checks *)
    for i = 0 to claimed_len - 1 do
      let b = ctx.s.Scheme.load (ctx.s.Scheme.offset payload i) 1 in
      ctx.s.Scheme.store (ctx.s.Scheme.offset reply i) 1 b
    done;
    ignore (Sb_scone.Scone.write world conn ~buf:reply ~len:claimed_len)
  with
  | () ->
    (* inspect the bytes that actually left the enclave *)
    let wire = Sb_scone.Scone.sent world conn in
    let marker_le =
      String.init 4 (fun i -> Char.chr ((marker lsr (8 * i)) land 0xff))
    in
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    let zeros_beyond =
      claimed_len > 16
      && String.for_all (( = ) '\000')
           (String.sub wire 16 (max 0 (String.length wire - 16)))
    in
    if contains wire marker_le then
      Leaked "reply on the wire contains adjacent heap memory (private key material)"
    else if claimed_len > 16 && zeros_beyond then Contained_zeros
    else Harmless
  | exception Violation _ -> Detected
  | exception Sb_vmem.Vmem.Fault _ -> Detected

(** CVE-2013-2028: nginx chunked-transfer stack buffer overflow. The
    attacker-declared chunk size reaches a signed cast and a discard
    loop recv()s that many bytes into a small stack buffer. *)
let chunked_request ctx ~chunk_size =
  let tok = ctx.s.Scheme.stack_push () in
  (* caller frames above the handler: where a real overflow lands *)
  let _caller_frames = ctx.s.Scheme.stack_alloc 8192 in
  let canary = ctx.s.Scheme.stack_alloc 8 in
  ctx.s.Scheme.store canary 8 0xC0DE;
  let buf = ctx.s.Scheme.stack_alloc 128 in
  (* signed cast: a huge declared size becomes negative, passes the
     sanity check, and the discard loop uses it as unsigned; the recv is
     bounded by the socket read size (~2 KiB per call) *)
  let signed = if chunk_size > 0x7FFFFFFF then chunk_size - (1 lsl 32) else chunk_size in
  let effective = if signed < 0 then min (signed land 0xFFFFFFFF) 2048 else min signed 128 in
  let outcome =
    match
      for i = 0 to effective - 1 do
        ctx.s.Scheme.store (ctx.s.Scheme.offset buf i) 1 0x90 (* NOP sled *)
      done
    with
    | () ->
      if ctx.s.Scheme.load canary 8 <> 0xC0DE then Corrupted else Harmless
    | exception Violation _ -> Detected
    | exception Sb_vmem.Vmem.Fault _ -> Detected
  in
  (try ctx.s.Scheme.stack_pop tok with _ -> ());
  outcome
