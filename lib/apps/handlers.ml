(** Deliberately buggy request-handler variants — the TeeRex corpus.

    PAPERS.md's TeeRex finds real enclave bugs by symbolically validating
    the ecall interface: attacker-controlled pointers escaping
    validation, attacker-controlled lengths reaching copies, double
    fetches of host-shared memory, and out-of-order interface state
    machines. Each variant below seeds exactly one of those classes into
    a miniature request handler over the {!Sb_protection.Scheme.t}
    vocabulary, so the symbolic interface auditor ({!Sb_analysis.Symex})
    can pin a Table-4-style matrix: the unprotected scheme lets every
    class through, SGXBounds-instrumented handlers neutralize them.

    Handlers access memory through the *checked* family ([load]/[store])
    like scheme-compiled application code would — the [*_unchecked] and
    [safe_*] families are compiler-emitted patterns with their own
    dominating checks, not something handler source code writes by hand.

    The request image is part of each attack: [v_fields] lists the
    (offset, value) words the "attacker" plants in the request buffer.
    Values at or above {!marker_min} act as taint markers the symbolic
    pass can follow through host-level arithmetic. *)

module Scheme = Sb_protection.Scheme
module Simlibc = Sb_libc.Simlibc
open Sb_protection.Types

(** Request wire format (offsets into the request buffer). *)
let off_opcode = 0
let off_ptr = 8      (* attacker-controlled offset/pointer field *)
let off_len = 16     (* attacker-controlled length field *)
let off_payload = 32

(** Attacker-planted field values the symbolic pass treats as taint
    markers (any planted word >= 2^16 is trackable; these are far larger
    than any host loop index or cycle count a handler computes). *)
let marker_min = 0x1_0000
let marker_ptr = 0x20_0000   (* a 2 MiB wild offset: off any object *)
let marker_len = 0x18_0000   (* an absurd length claim *)

(** Everything a handler touches: the scheme it is "compiled" with, the
    request bytes (tainted by the driver), a response buffer, and the
    interface state-machine hook the orderliness check observes. The
    canonical phase order is recv, parse, validate, execute, respond. *)
type hctx = {
  s : Scheme.t;
  req : ptr;
  req_len : int;
  resp : ptr;
  resp_len : int;
  note_phase : string -> unit;
}

let phase_names = [ "recv"; "parse"; "validate"; "execute"; "respond" ]

let load1 h p off = h.s.Scheme.load (h.s.Scheme.offset p off) 1
let load4 h p off = h.s.Scheme.load (h.s.Scheme.offset p off) 4
let store1 h p off v = h.s.Scheme.store (h.s.Scheme.offset p off) 1 v
let store4 h p off v = h.s.Scheme.store (h.s.Scheme.offset p off) 4 v

(* ---------- the corpus ---------- *)

(** Disciplined control row: validates the whole request and the
    response extent before acting, copies within bounds, phases in
    order. Must be clean under every scheme, concretely and
    symbolically. *)
let good h =
  h.note_phase "recv";
  h.note_phase "parse";
  let op = load4 h h.req off_opcode in
  h.note_phase "validate";
  h.s.Scheme.check_range h.req h.req_len Read;
  h.s.Scheme.check_range h.resp h.resp_len Write;
  h.note_phase "execute";
  let len = min (load4 h h.req off_len) 64 in
  for i = 0 to len - 1 do
    store1 h h.resp (8 + i) (load1 h h.req (off_payload + (i mod 64)))
  done;
  Simlibc.memcpy h.s ~dst:(h.s.Scheme.offset h.resp 128)
    ~src:(h.s.Scheme.offset h.req off_payload) ~len:64;
  h.note_phase "respond";
  store4 h h.resp 0 op

(** TeeRex class 1 — attacker-controlled pointer: the offset field is
    used to derive a pointer with no validation whatsoever. *)
let ptr_deref h =
  h.note_phase "recv";
  h.note_phase "parse";
  let off = load4 h h.req off_ptr in
  h.note_phase "execute";
  (* dereference wherever the request says — classic ecall pointer bug *)
  let v = h.s.Scheme.load (h.s.Scheme.offset h.resp off) 4 in
  h.note_phase "respond";
  store4 h h.resp 0 v

(** TeeRex class 2 — attacker-controlled length driving an inlined copy
    loop. The host-level [min] cap models the socket read bound; the
    response buffer is still four times smaller. *)
let len_overflow h =
  h.note_phase "recv";
  h.note_phase "parse";
  let claimed = load4 h h.req off_len in
  h.note_phase "execute";
  let len = min claimed 4096 in
  for i = 0 to len - 1 do
    store1 h h.resp i 0x41
  done;
  h.note_phase "respond"

(** TeeRex class 3 — attacker-controlled length handed to a libc
    wrapper. Schemes whose wrappers really check extents (SGXBounds,
    ASan) refuse with EINVAL; MPX has no libc interceptors (§5.3) and
    native none at all, so the raw memcpy tramples the heap. *)
let libc_len h =
  h.note_phase "recv";
  h.note_phase "parse";
  let claimed = load4 h h.req off_len in
  h.note_phase "execute";
  let len = min claimed 4096 in
  Simlibc.memcpy h.s ~dst:h.resp ~src:h.req ~len;
  h.note_phase "respond"

(** TeeRex class 4 — double fetch: the length is validated on a first
    read, an acknowledgment is written, and the length is then fetched
    {e again} for the copy. Between the two fetches the attacker can
    rewrite the shared request page; the symbolic pass models that by
    havocking the second read. *)
let double_fetch h =
  h.note_phase "recv";
  h.note_phase "parse";
  let len1 = load4 h h.req off_len in
  h.note_phase "validate";
  if len1 <= 64 then begin
    (* ack into the shared request buffer: the store between fetches *)
    store4 h h.req off_opcode 2;
    h.note_phase "execute";
    let len2 = load4 h h.req off_len in   (* the bug: trusts the re-fetch *)
    for i = 0 to len2 - 1 do
      store1 h h.resp i (load1 h h.req (off_payload + i))
    done
  end;
  h.note_phase "respond"

(** TeeRex class 5 — orderliness violation: the handler starts executing
    (and writing) before its validate phase, then "validates" the wrong
    buffer, and finally copies with the still-unvalidated length. *)
let order h =
  h.note_phase "recv";
  h.note_phase "parse";
  let claimed = load4 h h.req off_len in
  h.note_phase "execute";               (* premature: nothing validated yet *)
  store4 h h.resp 0 1;
  h.note_phase "validate";              (* phase regression *)
  h.s.Scheme.check_range h.resp 64 Write;  (* checks the wrong buffer *)
  let len = min claimed 2048 in
  for i = 0 to len - 1 do
    store1 h h.resp i 0x42
  done;
  h.note_phase "respond"

(** One corpus entry: name, the handler, and the request words the
    attacker plants ([v_fields] beyond these default to payload bytes). *)
type variant = {
  v_name : string;
  v_run : hctx -> unit;
  v_fields : (int * int) list;
}

let variants =
  [
    { v_name = "good"; v_run = good;
      v_fields = [ (off_opcode, 1); (off_ptr, 8); (off_len, 48) ] };
    { v_name = "ptr-deref"; v_run = ptr_deref;
      v_fields = [ (off_opcode, 1); (off_ptr, marker_ptr); (off_len, 48) ] };
    { v_name = "len-overflow"; v_run = len_overflow;
      v_fields = [ (off_opcode, 1); (off_ptr, 8); (off_len, marker_len) ] };
    { v_name = "libc-len"; v_run = libc_len;
      v_fields = [ (off_opcode, 1); (off_ptr, 8); (off_len, marker_len) ] };
    { v_name = "double-fetch"; v_run = double_fetch;
      v_fields = [ (off_opcode, 1); (off_ptr, 8); (off_len, 48) ] };
    { v_name = "order"; v_run = order;
      v_fields = [ (off_opcode, 1); (off_ptr, 8); (off_len, marker_len) ] };
  ]

let variant_names = List.map (fun v -> v.v_name) variants

let find_variant name = List.find_opt (fun v -> v.v_name = name) variants
