(** SQLite model: a B+-tree storage engine driven by a speedtest-like
    workload (the paper's Figure 1 / §1 motivating example).

    Faithful to what makes SQLite the paper's worst case for Intel MPX:
    it is *exceptionally pointer-intensive* — every key lookup descends
    the tree through child pointers stored in heap nodes, and every row
    is an individually allocated record reached through a leaf pointer.
    Bounds metadata for all those pointers is what drove MPX to 800-900
    bounds tables and an out-of-memory crash at tiny working sets.

    Layout of a node (all offsets in bytes):
      0   : key count (4)
      4   : leaf flag (4)
      8   : keys, [order] slots of 8
      8+8*order : children (internal: node pointers) or rows (leaf: row
                  pointers), [order+1] slots of 8

    Rows are 60-byte records (id + payload). *)

module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Sb_workloads.Wctx

let order = 8
let node_bytes = 8 + (8 * order) + (8 * (order + 1))
let row_bytes = 60

type t = {
  ctx : Sb_workloads.Wctx.t;
  mutable root : ptr;
}

let keys_off i = 8 + (i * 8)
let child_off i = 8 + (8 * order) + (i * 8)

let nkeys t node = t.ctx.s.Scheme.safe_load node 4
let set_nkeys t node v = t.ctx.s.Scheme.store node 4 v
let is_leaf t node = t.ctx.s.Scheme.safe_load (t.ctx.s.Scheme.offset node 4) 4 = 1
let key_at t node i = t.ctx.s.Scheme.load (t.ctx.s.Scheme.offset node (keys_off i)) 8
let set_key t node i v = t.ctx.s.Scheme.store (t.ctx.s.Scheme.offset node (keys_off i)) 8 v
let child_at t node i = t.ctx.s.Scheme.load_ptr (t.ctx.s.Scheme.offset node (child_off i))
let set_child t node i p = t.ctx.s.Scheme.store_ptr (t.ctx.s.Scheme.offset node (child_off i)) p

let new_node t ~leaf =
  let n = t.ctx.s.Scheme.calloc 1 node_bytes in
  t.ctx.s.Scheme.store (t.ctx.s.Scheme.offset n 4) 4 (if leaf then 1 else 0);
  n

let create ctx =
  let t = { ctx; root = { v = 0; bnd = None } } in
  t.root <- new_node t ~leaf:true;
  t

(* Position of the first key >= k (linear scan, like SQLite's cell
   scan). The node is a fixed-size object and the scan is affine, so the
   per-key checks hoist to one range check per node visit. *)
let find_pos t node k =
  let n = nkeys t node in
  t.ctx.s.Scheme.check_range node node_bytes Sb_protection.Types.Read;
  let key_unch i =
    t.ctx.s.Scheme.load_unchecked (t.ctx.s.Scheme.offset node (keys_off i)) 8
  in
  let rec go i = if i >= n || key_unch i >= k then i else go (i + 1) in
  work t.ctx 4;
  go 0

let rec find_row t node k =
  let i = find_pos t node k in
  if is_leaf t node then
    if i < nkeys t node && key_at t node i = k then Some (child_at t node i) else None
  else begin
    let i = if i < nkeys t node && key_at t node i = k then i + 1 else i in
    find_row t (child_at t node i) k
  end

(* Split the full child [ci] of [parent]. *)
let split_child t parent ci =
  let child = child_at t parent ci in
  let right = new_node t ~leaf:(is_leaf t child) in
  let mid = order / 2 in
  let leaf = is_leaf t child in
  let move_from = if leaf then mid else mid + 1 in
  let moved = order - move_from in
  for i = 0 to moved - 1 do
    set_key t right i (key_at t child (move_from + i));
    set_child t right i (child_at t child (move_from + i))
  done;
  if not leaf then set_child t right moved (child_at t child order);
  set_nkeys t right moved;
  set_nkeys t child mid;
  (* shift parent entries right to make room *)
  let pn = nkeys t parent in
  for i = pn downto ci + 1 do
    set_key t parent i (key_at t parent (i - 1));
    set_child t parent (i + 1) (child_at t parent i)
  done;
  set_key t parent ci (key_at t child mid);
  set_child t parent (ci + 1) right;
  set_nkeys t parent (pn + 1)

let rec insert_nonfull t node k row =
  let i = find_pos t node k in
  if is_leaf t node then begin
    if i < nkeys t node && key_at t node i = k then set_child t node i row
    else begin
      let n = nkeys t node in
      for j = n downto i + 1 do
        set_key t node j (key_at t node (j - 1));
        set_child t node j (child_at t node (j - 1))
      done;
      set_key t node i k;
      set_child t node i row;
      set_nkeys t node (n + 1)
    end
  end
  else begin
    let i = if i < nkeys t node && key_at t node i = k then i + 1 else i in
    let c = child_at t node i in
    if nkeys t c = order then begin
      split_child t node i;
      insert_nonfull t node k row
    end
    else insert_nonfull t c k row
  end

let insert t k row =
  if nkeys t t.root = order then begin
    let new_root = new_node t ~leaf:false in
    set_child t new_root 0 t.root;
    t.root <- new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root k row

(** Insert a row with key [k]; the row record is allocated and filled. *)
let insert_row t k =
  let row = t.ctx.s.Scheme.malloc row_bytes in
  t.ctx.s.Scheme.store row 8 k;
  for i = 1 to (row_bytes / 8) - 1 do
    t.ctx.s.Scheme.safe_store (t.ctx.s.Scheme.offset row (i * 8)) 8 (k * i)
  done;
  insert t k row

(** SELECT by key: descend, then read the whole row. *)
let select t k =
  match find_row t t.root k with
  | None -> false
  | Some row ->
    let acc = ref 0 in
    t.ctx.s.Scheme.check_range row row_bytes Read;
    for i = 0 to (row_bytes / 8) - 1 do
      acc := !acc + t.ctx.s.Scheme.load_unchecked (t.ctx.s.Scheme.offset row (i * 8)) 8
    done;
    work t.ctx 10;
    ignore !acc;
    true

(** UPDATE by key: rewrite half the row in place. *)
let update t k =
  match find_row t t.root k with
  | None -> false
  | Some row ->
    for i = 1 to row_bytes / 16 do
      t.ctx.s.Scheme.safe_store (t.ctx.s.Scheme.offset row (i * 8)) 8 (k + i)
    done;
    work t.ctx 8;
    true

(** DELETE by key: remove the leaf entry and free the row record.
    Like SQLite's lazy vacuum, underflowing leaves are left in place
    rather than eagerly merged. Returns whether the key existed. *)
let delete t k =
  let rec go node =
    let i = find_pos t node k in
    if is_leaf t node then begin
      if i < nkeys t node && key_at t node i = k then begin
        let row = child_at t node i in
        let n = nkeys t node in
        for j = i to n - 2 do
          set_key t node j (key_at t node (j + 1));
          set_child t node j (child_at t node (j + 1))
        done;
        set_nkeys t node (n - 1);
        t.ctx.s.Scheme.free row;
        work t.ctx 6;
        true
      end
      else false
    end
    else begin
      let i = if i < nkeys t node && key_at t node i = k then i + 1 else i in
      go (child_at t node i)
    end
  in
  go t.root

(** One point query for the service layer: SELECT (the common case) or
    UPDATE by key on the current thread. *)
let serve_query t key ~is_select =
  if is_select then ignore (select t key) else ignore (update t key)

(** The speedtest-like driver: [items] inserts, then 4 passes of selects,
    2 of updates, then deletion of every other row and a final select
    pass — the paper's Figure 1 is this at increasing [items]. *)
let speedtest ctx ~items =
  let t = create ctx in
  let key k = (k * 2654435761) land 0xFFFFFF in
  for k = 0 to items - 1 do
    insert_row t (key k)
  done;
  for _pass = 1 to 4 do
    for k = 0 to items - 1 do
      ignore (select t (key k))
    done
  done;
  for _pass = 1 to 2 do
    for k = 0 to items - 1 do
      ignore (update t (key k))
    done
  done;
  let k = ref 0 in
  while !k < items do
    ignore (delete t (key !k));
    k := !k + 2
  done;
  for k = 0 to items - 1 do
    ignore (select t (key k))
  done
