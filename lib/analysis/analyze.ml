(** Sweep driver for the instrumentation auditor: run workloads under
    audited schemes, aggregate findings into reports (text and JSON),
    and self-test the auditor against seeded scenarios — the §4.1
    MPX bounds-table race and deliberately broken §4.4 annotations
    ("mutants") that a sound auditor must flag. *)

module Harness = Sb_harness.Harness
module Registry = Sb_workloads.Registry
module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Json = Sb_telemetry.Json
module Mt = Sb_mt.Mt
open Sb_protection.Types

(** The scheme line-up of the audit sweep (the paper's four headline
    schemes, from the capability table; the sgxbounds ablation variants
    share sgxbounds' kernel annotations). *)
let default_schemes = Sb_schemes.Scheme_info.headline_names

(** Smoke working-set size: the audit verifies per-object contracts, so
    it needs every code path, not the full Figure 7 working set. *)
let smoke_n (w : Registry.spec) = max 24 (w.Registry.default_n / 64)

type cell = {
  c_workload : string;
  c_scheme : string;
  c_n : int;
  c_threads : int;
  c_crashed : string option;
  c_ops : int;          (** scheme operations audited *)
  c_total : int;        (** finding occurrences (pre-deduplication) *)
  c_findings : Finding.t list;  (** deduplicated, capped; unified schema *)
  c_sym_total : int;    (** occurrences from the symbolic pass alone *)
  c_subset_ok : bool;   (** dynamic findings ⊆ unified findings (pin) *)
}

(** Run one audited (workload, scheme) cell on a fresh machine at smoke
    size (or [n]). The wrapper is {!Symex.wrap}, which carries the
    dynamic auditor inside — every sweep cell therefore also asserts
    the audit-subset soundness pin, and a workload that never plants
    taint pays nothing for the symbolic layer. Race tracking is enabled
    only for multithreaded runs: a single-threaded run has no parallel
    regions to race in. *)
let run_cell ?(env = Config.Inside_enclave) ?(threads = 1) ?n ~scheme
    (w : Registry.spec) =
  let n = match n with Some n -> n | None -> smoke_n w in
  let handle = ref None in
  let wrap s =
    let s', a = Symex.wrap ~track_races:(threads > 1) s in
    handle := Some a;
    s'
  in
  let r =
    Fun.protect ~finally:Symex.unhook (fun () ->
        Harness.run_one ~wrap ~env ~threads ~n ~scheme w)
  in
  let a = Option.get !handle in
  {
    c_workload = w.Registry.name;
    c_scheme = scheme;
    c_n = n;
    c_threads = threads;
    c_crashed =
      (match r.Harness.outcome with
       | Harness.Completed _ -> None
       | Harness.Crashed msg -> Some msg);
    c_ops = Symex.ops a;
    c_total = Symex.total a;
    c_findings = Symex.findings a;
    c_sym_total = Symex.sym_total a;
    c_subset_ok = Symex.subset_ok a;
  }

let sweep ?env ?threads ?n ~schemes workloads =
  List.concat_map
    (fun w -> List.map (fun scheme -> run_cell ?env ?threads ?n ~scheme w) schemes)
    workloads

(* ---------- reports ---------- *)

let cells_findings cells = List.fold_left (fun acc c -> acc + c.c_total) 0 cells
let cells_crashed cells =
  List.length (List.filter (fun c -> c.c_crashed <> None) cells)

let cells_subset_bad cells =
  List.length (List.filter (fun c -> not c.c_subset_ok) cells)

let json_of_cell c =
  Json.Obj
    [
      ("workload", Json.Str c.c_workload);
      ("scheme", Json.Str c.c_scheme);
      ("n", Json.Int c.c_n);
      ("threads", Json.Int c.c_threads);
      ( "status",
        Json.Str (match c.c_crashed with None -> "completed" | Some _ -> "crashed") );
      ("ops_audited", Json.Int c.c_ops);
      ("findings", Json.Int c.c_total);
      ("symbolic_findings", Json.Int c.c_sym_total);
      ("subset_ok", Json.Bool c.c_subset_ok);
      ("detail", Json.List (List.map Finding.to_json c.c_findings));
    ]

let json_report cells =
  Json.Obj
    [
      ("cells", Json.List (List.map json_of_cell cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("crashed", Json.Int (cells_crashed cells));
            ("findings", Json.Int (cells_findings cells));
            ("subset_bad", Json.Int (cells_subset_bad cells));
          ] );
    ]

let print_report cells =
  List.iter
    (fun c ->
       let tag =
         match c.c_crashed with
         | Some msg -> "CRASHED: " ^ msg
         | None -> if c.c_total = 0 then "clean" else Printf.sprintf "%d finding(s)" c.c_total
       in
       Fmt.pr "%-18s %-12s n=%-8d ops=%-9d %s@." c.c_workload c.c_scheme c.c_n
         c.c_ops tag;
       List.iter (fun f -> Fmt.pr "    %a@." Finding.pp f) c.c_findings)
    cells;
  Fmt.pr "audit: %d cell(s), %d crashed, %d finding(s), %d subset pin failure(s)@."
    (List.length cells) (cells_crashed cells) (cells_findings cells)
    (cells_subset_bad cells)

(* ---------- self-test: seeded race + annotation mutants ---------- *)

type selftest = { st_name : string; st_pass : bool; st_detail : string }

let with_audited ?(track_races = false) scheme f =
  let ms = Memsys.create (Config.default ()) in
  let s = Harness.maker scheme ms in
  let s', a = Audit.wrap ~track_races s in
  Fun.protect ~finally:Audit.unhook (fun () -> f s' a)

(** The §4.1/Figure 4c scenario: two threads hammer one shared pointer
    slot. The slot word itself races under every scheme; only MPX also
    conflicts on disjoint metadata — the bounds-table entry its bndstx
    writes after (not atomically with) the data store. SGXBounds'
    pointer and bounds travel in one tagged word, so its store is the
    data store: no metadata to race on. *)
let shared_slot_kernel (s : Scheme.t) =
  let slot = s.Scheme.malloc 8 in
  let a = s.Scheme.malloc 32 in
  let b = s.Scheme.malloc 32 in
  Mt.run s.Scheme.ms
    [|
      (fun () ->
         for _ = 1 to 8 do
           s.Scheme.store_ptr slot a;
           Mt.yield ()
         done);
      (fun () ->
         for _ = 1 to 8 do
           s.Scheme.store_ptr slot b;
           Mt.yield ();
           ignore (s.Scheme.load_ptr slot)
         done);
    |]

(** A bad loop hoist: the range check covers half the iteration space. *)
let bad_hoist_kernel (s : Scheme.t) =
  let p = s.Scheme.malloc 64 in
  s.Scheme.check_range p 32 Read;
  for i = 0 to 15 do
    ignore (s.Scheme.load_unchecked (s.Scheme.offset p (i * 4)) 4)
  done;
  s.Scheme.free p

(** A bogus "compiler-proved" access straddling the object end. *)
let bad_safe_kernel (s : Scheme.t) =
  let p = s.Scheme.malloc 64 in
  ignore (s.Scheme.safe_load (s.Scheme.offset p 62) 4);
  s.Scheme.free p

(** A libc wrapper whose check disagrees with the bytes the body
    touches, plus raw traffic with no check at all. *)
let bad_libc_kernel (s : Scheme.t) =
  let p = s.Scheme.malloc 64 in
  s.Scheme.libc_check p 4 Read;
  s.Scheme.libc_touch "mutant_memcpy" p 8 Read;
  s.Scheme.libc_touch "rogue_memset" p 4 Write;
  s.Scheme.free p

(** A disciplined kernel: hoisted check covering the loop, in-bounds
    safe accesses, well-paired libc traffic. Must audit clean. *)
let clean_kernel (s : Scheme.t) =
  let p = s.Scheme.malloc 64 in
  let q = s.Scheme.malloc 64 in
  s.Scheme.check_range p 64 Write;
  for i = 0 to 15 do
    s.Scheme.store_unchecked (s.Scheme.offset p (i * 4)) 4 i
  done;
  ignore (s.Scheme.safe_load p 4);
  s.Scheme.safe_store (s.Scheme.offset q 60) 4 7;
  Sb_libc.Simlibc.memcpy s ~dst:q ~src:p ~len:64;
  s.Scheme.free p;
  s.Scheme.free q

let expect name cond detail = { st_name = name; st_pass = cond; st_detail = detail }

let selftests () =
  let mpx_race =
    with_audited ~track_races:true "mpx" (fun s a ->
        shared_slot_kernel s;
        expect "mpx-metadata-race"
          (Audit.count a Finding.Meta_race > 0 && Audit.count a Finding.Data_race > 0)
          (Printf.sprintf "meta=%d data=%d (expected both > 0)"
             (Audit.count a Finding.Meta_race)
             (Audit.count a Finding.Data_race)))
  in
  let sgxb_race =
    with_audited ~track_races:true "sgxbounds" (fun s a ->
        shared_slot_kernel s;
        expect "sgxbounds-no-metadata-race"
          (Audit.count a Finding.Meta_race = 0 && Audit.count a Finding.Data_race > 0)
          (Printf.sprintf "meta=%d data=%d (expected meta = 0, data > 0)"
             (Audit.count a Finding.Meta_race)
             (Audit.count a Finding.Data_race)))
  in
  let bad_hoist =
    with_audited "sgxbounds" (fun s a ->
        bad_hoist_kernel s;
        expect "bad-hoist-mutant"
          (Audit.count a Finding.Unchecked_uncovered > 0)
          (Printf.sprintf "unchecked-uncovered=%d (expected > 0)"
             (Audit.count a Finding.Unchecked_uncovered)))
  in
  let bad_safe =
    with_audited "sgxbounds" (fun s a ->
        bad_safe_kernel s;
        expect "bad-safe-mutant"
          (Audit.count a Finding.Safe_oob > 0)
          (Printf.sprintf "safe-oob=%d (expected > 0)" (Audit.count a Finding.Safe_oob)))
  in
  let bad_libc =
    with_audited "sgxbounds" (fun s a ->
        bad_libc_kernel s;
        expect "bad-libc-mutant"
          (Audit.count a Finding.Libc_mismatch > 0
           && Audit.count a Finding.Libc_unchecked > 0)
          (Printf.sprintf "libc-mismatch=%d libc-unchecked=%d (expected both > 0)"
             (Audit.count a Finding.Libc_mismatch)
             (Audit.count a Finding.Libc_unchecked)))
  in
  let cleans =
    List.map
      (fun scheme ->
         with_audited scheme (fun s a ->
             clean_kernel s;
             expect ("clean-kernel-" ^ scheme) (Audit.total a = 0)
               (Printf.sprintf "findings=%d (expected 0)" (Audit.total a))))
      default_schemes
  in
  [ mpx_race; sgxb_race; bad_hoist; bad_safe; bad_libc ] @ cleans

let print_selftests sts =
  List.iter
    (fun st ->
       Fmt.pr "%-28s %s  %s@." st.st_name
         (if st.st_pass then "pass" else "FAIL")
         st.st_detail)
    sts;
  let failed = List.filter (fun st -> not st.st_pass) sts in
  Fmt.pr "selftest: %d/%d passed@." (List.length sts - List.length failed)
    (List.length sts);
  failed = []
