(** The proof-carrying bounds-check optimizer (the missing §4.4
    compiler pass).

    An abstract interpreter over the recorded {!Sb_protection.Sitestream}
    op stream, with an affine-index/interval domain instead of
    {!Symex}'s taint: per static site it infers (base object, stride,
    extent) facts, relates them to the [check_range] sites the workload
    already issues (the dominator relation: a check dominates an access
    if it precedes it in the stream, refers to the same live object,
    covers the accessed bytes and licenses the direction), and emits an
    {e elision plan}:

    - {b eliminate} — sites dominated by an equal-or-wider live check on
      the same object route through [*_unchecked];
    - {b hoist} — affine runs and hot whole-object footprints get one
      widened check covering the iteration range, charged once at the
      first access, then elide like the rest.

    Every plan entry is a certificate (site, dominating site, object
    id, extent). Three independent layers verify them:

    + {!verify_plan} — this module's static certificate checker replays
      the recorded stream against the plan;
    + {!Sb_protection.Optimized.wrap} — re-verifies each certificate at
      runtime before taking an unchecked path (wrong plans lose
      elisions, never checks);
    + {!verify_replay} / {!fuzz_soundness} — dynamic oracles: the plan
      composed with {!Audit.wrap} must report zero findings, and the
      tri-engine fuzz oracle must see bit-identical results and
      unchanged violation verdicts. *)

module Harness = Sb_harness.Harness
module Parallel_runner = Sb_harness.Parallel_runner
module Registry = Sb_workloads.Registry
module Config = Sb_machine.Config
module Fastpath = Sb_machine.Fastpath
module Rng = Sb_machine.Rng
module Memsys = Sb_sgx.Memsys
module Scheme = Sb_protection.Scheme
module Sitestream = Sb_protection.Sitestream
module Optimized = Sb_protection.Optimized
module Scheme_info = Sb_schemes.Scheme_info
module Json = Sb_telemetry.Json
module Trace = Sb_fuzz.Trace
module Oracle = Sb_fuzz.Oracle
module Replay = Sb_fuzz.Replay
open Sb_protection.Types

(* ---------- plan construction ---------- *)

(** Objects with at least this many checked accesses get one widened
    whole-footprint check instead of per-run checks. *)
let span_threshold = 8

(** Affine runs shorter than this are not worth a hoisted check (the
    widened check plus its address computation would cost as much as
    the checks it replaces). *)
let run_threshold = 2

(* A candidate site: a maximal affine run (consecutive accesses of one
   object with equal op, width and stride) or a whole-object span. *)
type cand = {
  cd_kind : Optimized.site_kind;
  cd_first : int;  (* op index of the first access *)
  cd_op : Sitestream.opk;
  cd_base : int;
  cd_stride : int;
  cd_lo : int;
  cd_hi : int;
  cd_write : bool;
  cd_accs : (int * int * int) list;  (* (op index, off, width), in order *)
}

type oacc = { oa_idx : int; oa_op : Sitestream.opk; oa_off : int; oa_width : int }

let cand_of_accs kind (accs : oacc list) =
  let first = List.hd accs in
  let lo = List.fold_left (fun m a -> min m a.oa_off) max_int accs in
  let hi = List.fold_left (fun m a -> max m (a.oa_off + a.oa_width)) min_int accs in
  let stride =
    match accs with
    | a :: b :: _ when kind = Optimized.Run -> b.oa_off - a.oa_off
    | _ -> 0
  in
  {
    cd_kind = kind;
    cd_first = first.oa_idx;
    cd_op = first.oa_op;
    cd_base = first.oa_off;
    cd_stride = stride;
    cd_lo = lo;
    cd_hi = hi;
    cd_write = List.exists (fun a -> Sitestream.opk_writes a.oa_op) accs;
    cd_accs = List.map (fun a -> (a.oa_idx, a.oa_off, a.oa_width)) accs;
  }

(* Split an object's access sequence into maximal affine runs. *)
let runs_of_accs (accs : oacc list) : cand list =
  let flush cur out =
    match cur with [] -> out | _ -> cand_of_accs Optimized.Run (List.rev cur) :: out
  in
  let rec go cur stride out = function
    | [] -> List.rev (flush cur out)
    | a :: rest -> (
      match cur with
      | [] -> go [ a ] None out rest
      | prev :: _ ->
        let d = a.oa_off - prev.oa_off in
        let extends =
          a.oa_op = prev.oa_op && a.oa_width = prev.oa_width
          && (match stride with None -> true | Some s -> d = s)
        in
        if extends then go (a :: cur) (Some d) out rest
        else go [ a ] None (flush cur out) rest)
  in
  go [] None [] accs

let build_plan ~workload ~scheme (t : Sitestream.t) : Optimized.plan =
  let events = Sitestream.events t in
  let nops = Sitestream.ops t in
  let nobjs = Sitestream.births t in
  (* pass 1: object sizes, per-object in-bounds accesses and checks *)
  let sizes = Array.make (max 1 nobjs) (-1) in
  let accs : oacc list array = Array.make (max 1 nobjs) [] in
  let chks : (int * int * int * access) list array = Array.make (max 1 nobjs) [] in
  Array.iter
    (function
      | Sitestream.Alloc { obj; size } -> sizes.(obj) <- size
      | Sitestream.Dead _ -> ()
      | Sitestream.Acc { idx; op; obj; off; width } ->
        if obj >= 0 && sizes.(obj) >= 0 && off >= 0 && off + width <= sizes.(obj) then
          accs.(obj) <- { oa_idx = idx; oa_op = op; oa_off = off; oa_width = width }
                        :: accs.(obj)
      | Sitestream.Chk { idx; obj; off; len; dir } ->
        if obj >= 0 && sizes.(obj) >= 0 && len > 0 && off >= 0
           && off + len <= sizes.(obj)
        then chks.(obj) <- (idx, off, off + len, dir) :: chks.(obj))
    events;
  (* pass 2: per object (in birth order), candidates in stream order,
     then the dominator decision against live checks *)
  let actions = Array.make nops Optimized.Pass in
  let sites = ref [] in
  let nsites = ref 0 in
  for obj = 0 to nobjs - 1 do
    let oaccs = List.rev accs.(obj) in
    let ochks = List.rev chks.(obj) in
    let cands =
      if List.length oaccs >= span_threshold then [ cand_of_accs Optimized.Span oaccs ]
      else runs_of_accs oaccs
    in
    (* checks this pass has already decided to hoist for this object *)
    let planned = ref [] in
    List.iter
      (fun c ->
         let licensed (clo, chi, cdir) =
           clo <= c.cd_lo && c.cd_hi <= chi && (cdir = Write || not c.cd_write)
         in
         let dir = if c.cd_write then Write else Read in
         let dom_workload =
           List.exists
             (fun (cidx, clo, chi, cdir) -> cidx <= c.cd_first && licensed (clo, chi, cdir))
             ochks
         in
         let dom_planned =
           List.find_opt (fun (clo, chi, cdir, _) -> licensed (clo, chi, cdir)) !planned
         in
         let count = List.length c.cd_accs in
         let make_site dom =
           let id = !nsites in
           nsites := id + 1;
           sites :=
             {
               Optimized.site_id = id;
               site_obj = obj;
               site_kind = c.cd_kind;
               site_op = c.cd_op;
               site_base = c.cd_base;
               site_stride = c.cd_stride;
               site_count = count;
               site_lo = c.cd_lo;
               site_hi = c.cd_hi;
               site_dir = dir;
               site_dom = dom;
             }
             :: !sites;
           id
         in
         let elide_all id = List.iter (fun (i, _, _) -> actions.(i) <- Optimized.Elide id) c.cd_accs in
         if dom_workload then elide_all (make_site (-1))
         else
           match dom_planned with
           | Some (_, _, _, dom_id) -> elide_all (make_site dom_id)
           | None ->
             if count >= run_threshold then begin
               let id = make_site (!nsites) in
               elide_all id;
               (match c.cd_accs with
                | (i0, _, _) :: _ -> actions.(i0) <- Optimized.Hoist id
                | [] -> ());
               planned := (c.cd_lo, c.cd_hi, dir, id) :: !planned
             end)
      cands
  done;
  {
    Optimized.p_workload = workload;
    p_scheme = scheme;
    p_ops = nops;
    p_truncated = Sitestream.truncated t;
    p_sites = Array.of_list (List.rev !sites);
    p_actions = actions;
  }

(* ---------- the certificate verifier ---------- *)

type cert_failure = { cf_site : int; cf_reason : string }

let pp_cert_failure ppf f =
  Fmt.pf ppf "certificate %d: %s" f.cf_site f.cf_reason

(** Independently re-check every certificate of [plan] against the
    recorded stream: replays object lifetimes and live checks and
    demands, per elided access, a dominating licensed check — the same
    contract {!Audit} enforces dynamically. Returns all failures (a
    sound plan returns []). *)
let verify_plan (plan : Optimized.plan) (t : Sitestream.t) : cert_failure list =
  let events = Sitestream.events t in
  let nobjs = Sitestream.births t in
  let sizes = Array.make (max 1 nobjs) (-1) in
  let alive = Array.make (max 1 nobjs) false in
  let checks : (int * int * access) list array = Array.make (max 1 nobjs) [] in
  let failures = ref [] in
  let fail site reason = failures := { cf_site = site; cf_reason = reason } :: !failures in
  let covered obj lo hi access =
    List.exists
      (fun (clo, chi, cdir) -> clo <= lo && hi <= chi && (cdir = Write || access = Read))
      checks.(obj)
  in
  Array.iter
    (function
      | Sitestream.Alloc { obj; size } ->
        sizes.(obj) <- size;
        alive.(obj) <- true
      | Sitestream.Dead { obj } ->
        alive.(obj) <- false;
        checks.(obj) <- []
      | Sitestream.Chk { idx = _; obj; off; len; dir } ->
        if obj >= 0 && alive.(obj) && len > 0 && off >= 0 && off + len <= sizes.(obj)
        then checks.(obj) <- (off, off + len, dir) :: checks.(obj)
      | Sitestream.Acc { idx; op; obj; off; width } -> (
        let action =
          if idx < Array.length plan.Optimized.p_actions then
            plan.Optimized.p_actions.(idx)
          else Optimized.Pass
        in
        match action with
        | Optimized.Pass -> ()
        | Optimized.Elide sid | Optimized.Hoist sid ->
          if sid < 0 || sid >= Array.length plan.Optimized.p_sites then
            fail sid "site id out of range"
          else begin
            let s = plan.Optimized.p_sites.(sid) in
            if obj < 0 then fail sid "access has no single referent object"
            else if obj <> s.Optimized.site_obj then
              fail sid
                (Printf.sprintf "certificate names object %d but access hits object %d"
                   s.Optimized.site_obj obj)
            else if not alive.(obj) then fail sid "referent object is dead"
            else if s.Optimized.site_lo < 0 || s.Optimized.site_hi > sizes.(obj) then
              fail sid
                (Printf.sprintf "extent [%d,%d) exceeds object size %d"
                   s.Optimized.site_lo s.Optimized.site_hi sizes.(obj))
            else if off < s.Optimized.site_lo || off + width > s.Optimized.site_hi then
              fail sid
                (Printf.sprintf "access [%d,%d) outside certified extent [%d,%d)" off
                   (off + width) s.Optimized.site_lo s.Optimized.site_hi)
            else begin
              (match action with
               | Optimized.Hoist _ ->
                 checks.(obj) <-
                   (s.Optimized.site_lo, s.Optimized.site_hi, s.Optimized.site_dir)
                   :: checks.(obj)
               | _ -> ());
              let dir = if Sitestream.opk_writes op then Write else Read in
              if not (covered obj off (off + width) dir) then
                fail sid "no dominating live check licenses this access"
            end
          end))
    events;
  List.rev !failures

(* ---------- per-cell driver ---------- *)

type row = {
  r_workload : string;
  r_scheme : string;
  r_n : int;
  r_sites : int;
  r_hoist_sites : int;
  r_elim_sites : int;    (** sites dominated by a pre-existing check *)
  r_checks_before : int;
  r_checks_after : int;
  r_elided : int;        (** accesses routed through [*_unchecked] *)
  r_hoisted : int;       (** widened checks inserted *)
  r_fallbacks : int;     (** certificates rejected at runtime *)
  r_removed_pct : float;
  r_cycles_before : int;
  r_cycles_after : int;
  r_delta_pct : float;
  r_certs_bad : int;
  r_sound : bool;        (** all replay invariants held *)
  r_detail : string;
}

let data_accesses (m : Harness.metrics) =
  match List.assoc_opt Memsys.Data m.Harness.attribution with
  | Some cs -> cs.Memsys.accesses
  | None -> 0

let pct part whole = if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(** Record one (workload, scheme) cell through the site-stream recorder.
    The recorder is purely observational, so the run's metrics are those
    of an unoptimized run. *)
let record_cell ?env ?(threads = 1) ?n ~scheme (w : Registry.spec) =
  let n = match n with Some n -> n | None -> Analyze.smoke_n w in
  let stream = ref None in
  let wrap s =
    let s', t = Sitestream.wrap s in
    stream := Some t;
    s'
  in
  let r = Harness.run_one ~wrap ?env ~threads ~n ~scheme w in
  (r, Option.get !stream, n)

(** Record one cell and build its elision plan, for plan dumps. *)
let plan_of_cell ?env ?threads ?n ~scheme (w : Registry.spec) =
  let _r, stream, _n = record_cell ?env ?threads ?n ~scheme w in
  build_plan ~workload:w.Registry.name ~scheme stream

let print_plan (p : Optimized.plan) =
  Fmt.pr "plan %s/%s: %d ops, %d site(s)%s@." p.Optimized.p_workload
    p.Optimized.p_scheme p.Optimized.p_ops
    (Array.length p.Optimized.p_sites)
    (if p.Optimized.p_truncated then " (stream truncated: prefix only)" else "");
  Array.iter
    (fun (s : Optimized.site) ->
       Fmt.pr
         "  site %4d %-4s %-9s obj=%-4d base=%-6d stride=%-4d count=%-6d \
          extent=[%d,%d) dir=%s dom=%s@."
         s.Optimized.site_id
         (Optimized.site_kind_name s.Optimized.site_kind)
         (Sitestream.opk_name s.Optimized.site_op)
         s.Optimized.site_obj s.Optimized.site_base s.Optimized.site_stride
         s.Optimized.site_count s.Optimized.site_lo s.Optimized.site_hi
         (match s.Optimized.site_dir with Write -> "w" | Read -> "r")
         (if s.Optimized.site_dom = -1 then "workload-check"
          else if s.Optimized.site_dom = s.Optimized.site_id then "self-hoist"
          else Printf.sprintf "site %d" s.Optimized.site_dom))
    p.Optimized.p_sites

(** Record, plan, verify, and re-run one cell optimized; compare the two
    runs against the soundness invariants (same verdict, same data-class
    traffic, no runtime certificate rejections, no static certificate
    failures, cycles not up). *)
let optimize_cell ?env ?(threads = 1) ?n ~scheme (w : Registry.spec) : row =
  let r0, stream, n = record_cell ?env ~threads ?n ~scheme w in
  let plan = build_plan ~workload:w.Registry.name ~scheme stream in
  let certs_bad = List.length (verify_plan plan stream) in
  let stats = ref None in
  let wrap s =
    let s', st = Optimized.wrap plan s in
    stats := Some st;
    s'
  in
  let r1 = Harness.run_one ~wrap ?env ~threads ~n ~scheme w in
  let st = Option.get !stats in
  let hoist_sites =
    Array.fold_left
      (fun k (s : Optimized.site) -> if s.Optimized.site_dom = s.Optimized.site_id then k + 1 else k)
      0 plan.Optimized.p_sites
  in
  let base =
    {
      r_workload = w.Registry.name;
      r_scheme = scheme;
      r_n = n;
      r_sites = Array.length plan.Optimized.p_sites;
      r_hoist_sites = hoist_sites;
      r_elim_sites = Array.length plan.Optimized.p_sites - hoist_sites;
      r_checks_before = 0;
      r_checks_after = 0;
      r_elided = st.Optimized.elides;
      r_hoisted = st.Optimized.hoists;
      r_fallbacks = st.Optimized.fallbacks;
      r_removed_pct = 0.0;
      r_cycles_before = 0;
      r_cycles_after = 0;
      r_delta_pct = 0.0;
      r_certs_bad = certs_bad;
      r_sound = false;
      r_detail = "";
    }
  in
  match (r0.Harness.outcome, r1.Harness.outcome) with
  | Harness.Completed m0, Harness.Completed m1 ->
    let problems = ref [] in
    let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    if certs_bad > 0 then note "%d certificate(s) failed static verification" certs_bad;
    if st.Optimized.fallbacks > 0 then
      note "%d certificate(s) rejected at runtime" st.Optimized.fallbacks;
    if m0.Harness.violations <> m1.Harness.violations then
      note "violation verdict changed (%d -> %d)" m0.Harness.violations
        m1.Harness.violations;
    if data_accesses m0 <> data_accesses m1 then
      note "data-class accesses changed (%d -> %d)" (data_accesses m0) (data_accesses m1);
    if m1.Harness.cycles > m0.Harness.cycles then
      note "cycles increased (%d -> %d)" m0.Harness.cycles m1.Harness.cycles;
    if m1.Harness.checks_done > m0.Harness.checks_done then
      note "checks increased (%d -> %d)" m0.Harness.checks_done m1.Harness.checks_done;
    {
      base with
      r_checks_before = m0.Harness.checks_done;
      r_checks_after = m1.Harness.checks_done;
      r_removed_pct = pct (m0.Harness.checks_done - m1.Harness.checks_done) m0.Harness.checks_done;
      r_cycles_before = m0.Harness.cycles;
      r_cycles_after = m1.Harness.cycles;
      r_delta_pct = -. pct (m0.Harness.cycles - m1.Harness.cycles) m0.Harness.cycles;
      r_sound = !problems = [];
      r_detail = String.concat "; " (List.rev !problems);
    }
  | Harness.Crashed a, Harness.Crashed b when a = b ->
    (* same verdict, nothing to measure *)
    { base with r_sound = certs_bad = 0; r_detail = "crashed (both runs): " ^ a }
  | o0, o1 ->
    let name = function
      | Harness.Completed _ -> "completed"
      | Harness.Crashed msg -> "crashed: " ^ msg
    in
    { base with r_sound = false;
      r_detail = Printf.sprintf "outcome diverged (%s vs %s)" (name o0) (name o1) }

(** The sweep line-up: schemes whose metadata could conceivably support
    object-keyed certificates. Only SGXBounds profits — ASan and MPX
    keep checking under [*_unchecked] (no per-object bounds to elide
    against), which the table shows as a 0% removal rate. *)
let default_sweep_schemes = [ "sgxbounds"; "asan"; "mpx" ]

let sweep ?env ?threads ?n ?jobs ?(schemes = default_sweep_schemes) workloads =
  let cells = List.concat_map (fun w -> List.map (fun s -> (w, s)) schemes) workloads in
  Parallel_runner.map_list ?jobs
    (fun (w, scheme) -> optimize_cell ?env ?threads ?n ~scheme w)
    cells

(* ---------- TSV / JSON / text reports ---------- *)

let elision_tsv_header =
  "workload\tscheme\tn\tsites\tchecks_before\tchecks_after\telided\thoisted\tremoved_pct\tcycles_before\tcycles_after\tcycle_delta_pct"

let tsv_of_rows rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b (elision_tsv_header ^ "\n");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%d\t%d\t%.2f\n" r.r_workload
            r.r_scheme r.r_n r.r_sites r.r_checks_before r.r_checks_after r.r_elided
            r.r_hoisted r.r_removed_pct r.r_cycles_before r.r_cycles_after r.r_delta_pct))
    rows;
  Buffer.contents b

let dir_name = function Read -> "read" | Write -> "write"

let json_of_site (s : Optimized.site) =
  Json.Obj
    [
      ("id", Json.Int s.Optimized.site_id);
      ("object", Json.Int s.Optimized.site_obj);
      ("kind", Json.Str (Optimized.site_kind_name s.Optimized.site_kind));
      ("op", Json.Str (Sitestream.opk_name s.Optimized.site_op));
      ("base", Json.Int s.Optimized.site_base);
      ("stride", Json.Int s.Optimized.site_stride);
      ("count", Json.Int s.Optimized.site_count);
      ("lo", Json.Int s.Optimized.site_lo);
      ("hi", Json.Int s.Optimized.site_hi);
      ("dir", Json.Str (dir_name s.Optimized.site_dir));
      ("dominator", Json.Int s.Optimized.site_dom);
    ]

let json_of_plan (p : Optimized.plan) =
  let count f = Array.fold_left (fun k a -> if f a then k + 1 else k) 0 p.Optimized.p_actions in
  Json.Obj
    [
      ("workload", Json.Str p.Optimized.p_workload);
      ("scheme", Json.Str p.Optimized.p_scheme);
      ("ops", Json.Int p.Optimized.p_ops);
      ("truncated", Json.Bool p.Optimized.p_truncated);
      ("sites", Json.List (List.map json_of_site (Array.to_list p.Optimized.p_sites)));
      ( "actions",
        Json.Obj
          [
            ("hoist", Json.Int (count (function Optimized.Hoist _ -> true | _ -> false)));
            ("elide", Json.Int (count (function Optimized.Elide _ -> true | _ -> false)));
            ("pass", Json.Int (count (function Optimized.Pass -> true | _ -> false)));
          ] );
    ]

let json_of_row r =
  Json.Obj
    [
      ("workload", Json.Str r.r_workload);
      ("scheme", Json.Str r.r_scheme);
      ("n", Json.Int r.r_n);
      ("sites", Json.Int r.r_sites);
      ("hoist_sites", Json.Int r.r_hoist_sites);
      ("eliminated_sites", Json.Int r.r_elim_sites);
      ("checks_before", Json.Int r.r_checks_before);
      ("checks_after", Json.Int r.r_checks_after);
      ("elided", Json.Int r.r_elided);
      ("hoisted", Json.Int r.r_hoisted);
      ("fallbacks", Json.Int r.r_fallbacks);
      ("removed_pct", Json.Float r.r_removed_pct);
      ("cycles_before", Json.Int r.r_cycles_before);
      ("cycles_after", Json.Int r.r_cycles_after);
      ("cycle_delta_pct", Json.Float r.r_delta_pct);
      ("cert_failures", Json.Int r.r_certs_bad);
      ("sound", Json.Bool r.r_sound);
      ("detail", Json.Str r.r_detail);
    ]

let json_report rows =
  Json.Obj
    [
      ("rows", Json.List (List.map json_of_row rows));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length rows));
            ( "unsound",
              Json.Int (List.length (List.filter (fun r -> not r.r_sound) rows)) );
            ( "elided",
              Json.Int (List.fold_left (fun k r -> k + r.r_elided) 0 rows) );
            ( "hoisted",
              Json.Int (List.fold_left (fun k r -> k + r.r_hoisted) 0 rows) );
          ] );
    ]

let print_rows rows =
  Fmt.pr "%-18s %-10s %9s %9s %8s %8s %8s %8s  %s@." "workload" "scheme" "before"
    "after" "elided" "hoisted" "removed" "cycles" "status";
  List.iter
    (fun r ->
       Fmt.pr "%-18s %-10s %9d %9d %8d %8d %7.1f%% %+7.2f%%  %s@." r.r_workload r.r_scheme
         r.r_checks_before r.r_checks_after r.r_elided r.r_hoisted r.r_removed_pct
         r.r_delta_pct
         (if r.r_sound then "sound" else "UNSOUND: " ^ r.r_detail))
    rows;
  let unsound = List.filter (fun r -> not r.r_sound) rows in
  Fmt.pr "optimize: %d cell(s), %d unsound@." (List.length rows) (List.length unsound)

(* ---------- dynamic verification ---------- *)

(** Replay a plan composed with {!Audit.wrap} (the dominating-check
    contract, independently enforced): the audited scheme sits inside
    the optimizer layer, so every hoisted check and every elided access
    the plan produces is re-judged by the auditor. Returns (audit
    findings, runtime certificate rejections). *)
let verify_replay ?env ?(threads = 1) ?n ~scheme (w : Registry.spec) plan =
  let n = match n with Some n -> n | None -> Analyze.smoke_n w in
  let audit = ref None and stats = ref None in
  let wrap s =
    let sa, a = Audit.wrap ~track_races:false s in
    audit := Some a;
    let so, st = Optimized.wrap plan sa in
    stats := Some st;
    so
  in
  let _r =
    Fun.protect ~finally:Audit.unhook (fun () ->
        Harness.run_one ~wrap ?env ~threads ~n ~scheme w)
  in
  (Audit.total (Option.get !audit), (Option.get !stats).Optimized.fallbacks)

(* ---------- Figure 10 ablation with the optimizer column ---------- *)

(** The Figure 10 ablation line-up plus an [sgxbounds-opt] column: the
    optimizer's plan applied on top of full sgxbounds (so it elides the
    checks the manual annotations leave behind). *)
let opt_result ?env ?threads ?n (w : Registry.spec) =
  let _r0, stream, n = record_cell ?env ?threads ?n ~scheme:"sgxbounds" w in
  let plan = build_plan ~workload:w.Registry.name ~scheme:"sgxbounds" stream in
  let r =
    Harness.run_one
      ~wrap:(fun s -> fst (Optimized.wrap plan s))
      ?env ?threads ~n ~scheme:"sgxbounds" w
  in
  { r with Harness.scheme = "sgxbounds-opt" }

let ablation_with_opt ?env ?threads ?n (w : Registry.spec) =
  Harness.run_ablation ?env ?threads ?n w @ [ opt_result ?env ?threads ?n w ]

(* ---------- fuzz-oracle soundness (tri-engine) ---------- *)

let engines = [ Fastpath.Naive; Fastpath.Fast; Fastpath.Trace ]

let engine_name = function
  | Fastpath.Naive -> "naive"
  | Fastpath.Fast -> "fast"
  | Fastpath.Trace -> "trace"

type fuzz_report = {
  fz_traces : int;
  fz_cells : int;       (** (trace, scheme) pairs exercised *)
  fz_elided : int;      (** accesses elided across all optimized replays *)
  fz_failures : string list;
}

(** The fuzz-oracle soundness gate: for seeded traces (about half of
    which contain deliberate violations), record each (trace, scheme)
    cell, build and statically verify a plan, then replay optimized
    under all three engines. The optimized replays must be bit-identical
    to each other, must preserve the unoptimized run's verdict (stop,
    read values, counted violations, boundless accesses) per engine, may
    only remove cost, and — composed with {!Audit.wrap} — must report
    exactly the findings the unoptimized audited replay reports (zero on
    safe traces). *)
let fuzz_soundness ?(seed = 11) ?(iters = 24)
    ?(schemes = [ "sgxbounds"; "sgxbounds-boundless" ]) () : fuzz_report =
  let rng = Rng.create seed in
  let failures = ref [] in
  let cells = ref 0 in
  let elided = ref 0 in
  let fail trace_i scheme fmt =
    Printf.ksprintf
      (fun s -> failures := Printf.sprintf "trace %d [%s]: %s" trace_i scheme s :: !failures)
      fmt
  in
  for trace_i = 0 to iters - 1 do
    let trace = Trace.generate (Rng.create (Rng.split rng)) in
    let oplan = Oracle.analyze trace in
    List.iter
      (fun scheme ->
         incr cells;
         let maker =
           match Scheme_info.find_opt scheme with
           | Some i -> i.Scheme_info.trace_maker
           | None -> invalid_arg ("fuzz_soundness: unknown scheme " ^ scheme)
         in
         let run_plain kind = Replay.run_engine ~kind ~maker ~plan:oplan trace in
         let unopt = List.map run_plain engines in
         (* record under the naive engine; the stream is engine-invariant *)
         let stream = ref None in
         let rmaker ms =
           let s', t = Sitestream.wrap (maker ms) in
           stream := Some t;
           s'
         in
         ignore (Replay.run_engine ~kind:Fastpath.Naive ~maker:rmaker ~plan:oplan trace);
         let eplan =
           build_plan ~workload:(Printf.sprintf "trace-%d" trace_i) ~scheme
             (Option.get !stream)
         in
         (match verify_plan eplan (Option.get !stream) with
          | [] -> ()
          | fs ->
            fail trace_i scheme "%d certificate(s) failed static verification: %s"
              (List.length fs)
              (Fmt.str "%a" Fmt.(list ~sep:(any "; ") pp_cert_failure) fs));
         let run_opt kind =
           let stats = ref None in
           let omaker ms =
             let s', st = Optimized.wrap eplan (maker ms) in
             stats := Some st;
             s'
           in
           let r = Replay.run_engine ~kind ~maker:omaker ~plan:oplan trace in
           (r, Option.get !stats)
         in
         let opt = List.map run_opt engines in
         (* optimized replays agree bit-for-bit across engines *)
         let r0, _ = List.hd opt in
         List.iteri
           (fun i (r, _) ->
              if r <> r0 then
                fail trace_i scheme "optimized %s engine diverges from optimized naive"
                  (engine_name (List.nth engines i)))
           opt;
         (* per engine: the verdict and results of the unoptimized run *)
         List.iteri
           (fun i ((o : Replay.run), (st : Optimized.stats)) ->
              let u = List.nth unopt i in
              let en = engine_name (List.nth engines i) in
              elided := !elided + st.Optimized.elides;
              if o.Replay.stop <> u.Replay.stop then
                fail trace_i scheme "[%s] stop verdict changed" en;
              if o.Replay.reads <> u.Replay.reads then
                fail trace_i scheme "[%s] read values changed" en;
              if o.Replay.violations_counted <> u.Replay.violations_counted then
                fail trace_i scheme "[%s] counted violations changed (%d -> %d)" en
                  u.Replay.violations_counted o.Replay.violations_counted;
              if o.Replay.boundless_accesses <> u.Replay.boundless_accesses then
                fail trace_i scheme "[%s] boundless accesses changed" en;
              if o.Replay.cycles > u.Replay.cycles then
                fail trace_i scheme "[%s] cycles increased (%d -> %d)" en u.Replay.cycles
                  o.Replay.cycles;
              if o.Replay.checks_done > u.Replay.checks_done then
                fail trace_i scheme "[%s] checks increased" en)
           opt;
         (* audit composition: optimized findings = unoptimized findings,
            and zero on safe traces *)
         let audited omaker =
           let audit = ref None in
           let amaker ms =
             let sa, a = Audit.wrap ~track_races:false (omaker ms) in
             audit := Some a;
             sa
           in
           ignore
             (Fun.protect ~finally:Audit.unhook (fun () ->
                  Replay.run_engine ~kind:Fastpath.Naive ~maker:amaker ~plan:oplan trace));
           Audit.total (Option.get !audit)
         in
         (* Audit sits inside the optimizer layer, outside the scheme. *)
         let audited_unopt = audited maker in
         let audited_opt =
           let audit = ref None in
           let amaker ms =
             let sa, a = Audit.wrap ~track_races:false (maker ms) in
             audit := Some a;
             fst (Optimized.wrap eplan sa)
           in
           ignore
             (Fun.protect ~finally:Audit.unhook (fun () ->
                  Replay.run_engine ~kind:Fastpath.Naive ~maker:amaker ~plan:oplan trace));
           Audit.total (Option.get !audit)
         in
         if audited_opt <> audited_unopt then
           fail trace_i scheme "audited findings changed under the plan (%d -> %d)"
             audited_unopt audited_opt;
         let u0 = List.hd unopt in
         let safe = u0.Replay.stop = None && u0.Replay.violations_counted = 0 in
         if safe && audited_opt <> 0 then
           fail trace_i scheme "plan replay under Audit.wrap reports %d finding(s)"
             audited_opt)
      schemes
  done;
  { fz_traces = iters; fz_cells = !cells; fz_elided = !elided;
    fz_failures = List.rev !failures }

(* ---------- selftests ---------- *)

let selftest_workloads = [ "kmeans"; "matrixmul"; "blackscholes" ]

let selftests () : Analyze.selftest list =
  let expect name cond detail =
    { Analyze.st_name = name; st_pass = cond; st_detail = detail }
  in
  (* sound cells: certificates verify, runtime accepts them all, and the
     replays preserve every invariant *)
  let cell_tests =
    List.map
      (fun wname ->
         let w = Registry.find wname in
         let r = optimize_cell ~scheme:"sgxbounds" w in
         expect ("optimize-" ^ wname)
           (r.r_sound && r.r_certs_bad = 0 && r.r_fallbacks = 0 && r.r_sites > 0
            && r.r_elided > 0)
           (Printf.sprintf "sites=%d elided=%d hoisted=%d certs_bad=%d fallbacks=%d %s"
              r.r_sites r.r_elided r.r_hoisted r.r_certs_bad r.r_fallbacks r.r_detail))
      selftest_workloads
  in
  (* audit-composed replay: the dominating-check contract holds *)
  let audit_tests =
    List.map
      (fun wname ->
         let w = Registry.find wname in
         let _r, stream, _n = record_cell ~scheme:"sgxbounds" w in
         let plan = build_plan ~workload:wname ~scheme:"sgxbounds" stream in
         let findings, fallbacks = verify_replay ~scheme:"sgxbounds" w plan in
         expect ("audit-replay-" ^ wname)
           (findings = 0 && fallbacks = 0)
           (Printf.sprintf "findings=%d fallbacks=%d (expected 0/0)" findings fallbacks))
      selftest_workloads
  in
  (* a tampered certificate must be caught statically AND rejected at
     runtime without changing the verdict *)
  let tamper_tests =
    let w = Registry.find "kmeans" in
    let _r, stream, n = record_cell ~scheme:"sgxbounds" w in
    let plan = build_plan ~workload:"kmeans" ~scheme:"sgxbounds" stream in
    let tamper f = { plan with Optimized.p_sites = Array.map f plan.Optimized.p_sites } in
    let widened =
      tamper (fun s ->
          if s.Optimized.site_dom = s.Optimized.site_id then
            { s with Optimized.site_hi = s.Optimized.site_hi + 64 }
          else s)
    in
    let retargeted =
      tamper (fun s -> { s with Optimized.site_obj = s.Optimized.site_obj + 1 })
    in
    let caught p = verify_plan p stream <> [] in
    let runtime_rejects p =
      let stats = ref None in
      let wrap s =
        let s', st = Optimized.wrap p s in
        stats := Some st;
        s'
      in
      let r = Harness.run_one ~wrap ~n ~scheme:"sgxbounds" w in
      let st = Option.get !stats in
      (match r.Harness.outcome with
       | Harness.Completed m -> m.Harness.violations = 0
       | Harness.Crashed _ -> false)
      && st.Optimized.fallbacks > 0
    in
    [
      expect "tampered-extent-caught" (caught widened)
        "certificate widened past its object flagged by the verifier";
      expect "tampered-object-caught" (caught retargeted)
        "certificate naming the wrong object flagged by the verifier";
      expect "tampered-extent-runtime" (runtime_rejects widened)
        "widened certificate rejected at runtime, verdict kept";
      expect "tampered-object-runtime" (runtime_rejects retargeted)
        "retargeted certificate rejected at runtime, verdict kept";
    ]
  in
  (* plan determinism across the three engines *)
  let determinism =
    let w = Registry.find "matrixmul" in
    let plan_under kind =
      Fastpath.with_kind kind (fun () ->
          let _r, stream, _n = record_cell ~scheme:"sgxbounds" w in
          build_plan ~workload:"matrixmul" ~scheme:"sgxbounds" stream)
    in
    let plans = List.map plan_under engines in
    let p0 = List.hd plans in
    expect "plan-engine-determinism"
      (List.for_all (fun p -> p = p0) plans)
      (Printf.sprintf "sites=%s"
         (String.concat "/"
            (List.map
               (fun (p : Optimized.plan) ->
                  string_of_int (Array.length p.Optimized.p_sites))
               plans)))
  in
  cell_tests @ audit_tests @ tamper_tests @ [ determinism ]
