(** The one finding schema shared by the dynamic auditor ({!Audit}) and
    the symbolic interface auditor ({!Symex}).

    Both passes observe the same {!Sb_protection.Scheme.t} operation
    vocabulary, so a finding is always "operation [site] implicated
    [extent] byte(s) at [addr] inside object [obj]" — only the [kind]
    says whether the evidence was concrete (a §4.4 contract broken on a
    real run) or symbolic (attacker-derived data reached a sink without
    a dominating check). `analyze --json` emits exactly this record for
    both passes, and {!Symex} guarantees the dynamic findings of a run
    are a subset of the symbolic ones (it wraps {!Audit} inside). *)

module Json = Sb_telemetry.Json

type kind =
  (* dynamic (concrete-run) kinds, from Audit *)
  | Unchecked_uncovered  (** [*_unchecked] without a covering live check *)
  | Check_oob            (** [check_range]/[libc_check] extent exceeds its object *)
  | Safe_oob             (** [safe_*] not statically in-bounds *)
  | Libc_mismatch        (** [libc_check] width disagrees with bytes touched *)
  | Libc_unchecked       (** raw libc traffic with no matching [libc_check] *)
  | Data_race            (** conflicting unsynchronized data accesses *)
  | Meta_race            (** conflicting unsynchronized metadata accesses *)
  (* symbolic (taint) kinds, from Symex *)
  | Tainted_deref        (** attacker-derived pointer reaches an access *)
  | Tainted_extent       (** out-of-object access while tainted data is live *)
  | Tainted_libc         (** libc extent attack the wrapper does not stop *)
  | Double_fetch         (** same request byte fetched twice, store between *)
  | Phase_disorder       (** handler state-machine phase regression *)

let kind_name = function
  | Unchecked_uncovered -> "unchecked-uncovered"
  | Check_oob -> "check-oob"
  | Safe_oob -> "safe-oob"
  | Libc_mismatch -> "libc-mismatch"
  | Libc_unchecked -> "libc-unchecked"
  | Data_race -> "data-race"
  | Meta_race -> "meta-race"
  | Tainted_deref -> "tainted-deref"
  | Tainted_extent -> "tainted-extent"
  | Tainted_libc -> "tainted-libc"
  | Double_fetch -> "double-fetch"
  | Phase_disorder -> "phase-disorder"

let dynamic_kinds =
  [ Unchecked_uncovered; Check_oob; Safe_oob; Libc_mismatch; Libc_unchecked;
    Data_race; Meta_race ]

let symbolic_kinds =
  [ Tainted_deref; Tainted_extent; Tainted_libc; Double_fetch; Phase_disorder ]

let all_kinds = dynamic_kinds @ symbolic_kinds

type t = {
  kind : kind;
  site : string;   (** scheme entry point, libc function or phase hook *)
  addr : int;      (** faulting address (0 for control-flow findings) *)
  obj : int;       (** base address of the referent object, 0 if unknown *)
  extent : int;    (** bytes implicated *)
  thread : int;
  detail : string;
}

let pp ppf f =
  Fmt.pf ppf "[%s] %s: %d byte(s) at 0x%x (object 0x%x, thread %d): %s"
    (kind_name f.kind) f.site f.extent f.addr f.obj f.thread f.detail

let to_json f =
  Json.Obj
    [
      ("kind", Json.Str (kind_name f.kind));
      ("site", Json.Str f.site);
      ("object", Json.Int f.obj);
      ("extent", Json.Int f.extent);
      ("addr", Json.Int f.addr);
      ("thread", Json.Int f.thread);
      ("detail", Json.Str f.detail);
    ]

(** [f] appears in [fs] (the subset pin compares findings structurally,
    ignoring the free-text detail which differs per pass). *)
let same a b =
  a.kind = b.kind && a.site = b.site && a.addr = b.addr && a.obj = b.obj
  && a.extent = b.extent && a.thread = b.thread

let subset smaller larger =
  List.for_all (fun f -> List.exists (same f) larger) smaller
