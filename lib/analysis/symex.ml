(** The symbolic interface auditor: a taint/abstract interpreter over
    the {!Sb_protection.Scheme.t} operation vocabulary.

    PAPERS.md's TeeRex and Guardian audit the *ecall interface* of an
    enclave: request bytes arrive from the untrusted host, so any
    pointer or length derived from them must pass a dominating bounds
    check before it reaches memory. This pass models exactly that,
    without a solver: every incoming request byte becomes a fresh taint
    symbol, taint propagates through [load]s, host arithmetic on loaded
    values and [offset], and a finding fires when

    - a pointer carrying unvalidated taint reaches an access the scheme
      does not itself guard ({!Finding.Tainted_deref});
    - an access lands outside its referent object while unvalidated
      taint is live — the attacker steered an extent
      ({!Finding.Tainted_extent});
    - tainted or out-of-object extents reach a libc wrapper that does
      not really check ({!Finding.Tainted_libc});
    - the same tainted request byte is fetched twice with a store in
      between — a double fetch; the second read is havocked to model
      the host rewriting the shared page ({!Finding.Double_fetch});
    - the handler's interface state machine regresses (an "execute"
      before its "validate" — {!Finding.Phase_disorder}).

    [check_range]/[libc_check] on a region *validate* the symbols in it:
    that is the handler doing its job, under any scheme. Independently,
    schemes that check every access by construction (the
    {!guards_accesses} capability table, mirroring
    [Sb_fuzz.Contract.covers]) neutralize the deref/extent classes even
    when the handler forgot — that asymmetry is the Table-4-style
    matrix this module pins over the {!Sb_apps.Handlers} buggy corpus.
    Double fetches and phase disorder are *not* suppressed by bounds
    checking (a bounds check cannot stop TOCTOU); SGXBounds cells for
    those classes are neutralized operationally instead, by trapping the
    resulting out-of-bounds access.

    The wrapper composes {!Audit.wrap} *inside* itself, so every run
    carries both passes and the dynamic findings are a subset of the
    unified findings by construction ({!subset_ok}). All taint
    bookkeeping is gated on {!active} — until the driver calls
    {!taint_region} the wrapper adds nothing but the audit layer, and
    metrics stay bit-identical. *)

module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Scheme = Sb_protection.Scheme
module Telemetry = Sb_telemetry.Telemetry
module Json = Sb_telemetry.Json
module Harness = Sb_harness.Harness
module Parallel_runner = Sb_harness.Parallel_runner
module Handlers = Sb_apps.Handlers
module Trace = Sb_fuzz.Trace
open Sb_protection.Types

module Iset = Set.Make (Int)

(* ---------- scheme capability table ----------

   Mirrors the philosophy of [Sb_fuzz.Contract]: what a scheme promises
   is static knowledge, not something to probe at runtime (only
   SGXBounds counts [checks_done]; ASan and MPX trap without counting,
   so a counter delta would misclassify them). *)

(** The scheme checks every ordinary (checked-family) access against
    object bounds, so an attacker-steered pointer traps instead of
    dereferencing wild. Both rows come from the one capability table
    ({!Sb_schemes.Scheme_info}); MPX ships no libc interceptors (§5.3 of
    the paper) — its column stays exposed on the libc-length class,
    which is exactly the Table 4 story. *)
let guards_accesses = Sb_schemes.Scheme_info.guards_accesses

let guards_libc = Sb_schemes.Scheme_info.guards_libc

(* ---------- taint state ---------- *)

(** Values a handler computes from untainted host state (loop indices,
    cycle counts) stay tiny; attacker markers planted by the corpus are
    >= [Handlers.marker_min]. Only loaded values at or above this bound
    are registered for value-taint lookup, so host arithmetic cannot
    collide with a symbol by accident. *)
let value_track_min = Handlers.marker_min

(** What a havocked double-fetch read returns: large enough to steer
    any copy loop out of bounds, deterministic across engines. *)
let havoc_value = 4096

type t = {
  audit : Audit.t;
  tel : Telemetry.t;
  max_findings : int;
  (* taint shadow *)
  tmem : (int, Iset.t) Hashtbl.t;   (* byte address -> symbols *)
  tval : (int, Iset.t) Hashtbl.t;   (* loaded value -> symbols *)
  tptr : (int, Iset.t) Hashtbl.t;   (* pointer address -> symbols *)
  prov : (int, int) Hashtbl.t;      (* derived address -> referent base *)
  validated : (int, unit) Hashtbl.t;    (* symbol -> dominating check seen *)
  sym_src : (int, string) Hashtbl.t;    (* symbol -> "label[i]" *)
  first_fetch : (int, int) Hashtbl.t;   (* symbol -> store epoch at 1st read *)
  mutable next_sym : int;
  mutable unvalidated_live : int;
  mutable store_epoch : int;
  mutable phase_max : int;
  mutable wild : int;               (* unguarded out-of-object accesses *)
  (* findings (symbolic side; Audit keeps its own) *)
  seen : (string, unit) Hashtbl.t;
  mutable findings_rev : Finding.t list;
  mutable n_stored : int;
  mutable s_total : int;
  counts : (Finding.kind, int) Hashtbl.t;
}

(** Taint machinery engages only once the driver has planted symbols;
    before that every interceptor is a plain passthrough and audited
    runs keep bit-identical metrics. *)
let active t = t.next_sym > 0

let report t kind ~site ~addr ~obj ~extent ~detail ~dedup =
  t.s_total <- t.s_total + 1;
  Hashtbl.replace t.counts kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind));
  if not (Hashtbl.mem t.seen dedup) then begin
    Hashtbl.replace t.seen dedup ();
    let f =
      { Finding.kind; site; addr; obj; extent;
        thread = Audit.cur_thread t.audit; detail }
    in
    if t.n_stored < t.max_findings then begin
      t.findings_rev <- f :: t.findings_rev;
      t.n_stored <- t.n_stored + 1
    end;
    Telemetry.event t.tel ~cat:"symex" (Finding.kind_name kind)
      ~args:
        [ ("site", site); ("addr", Printf.sprintf "0x%x" addr);
          ("extent", string_of_int extent); ("detail", detail) ]
  end

(* -- shadow lookups -- *)

let mem_syms t addr width =
  let acc = ref Iset.empty in
  for i = 0 to width - 1 do
    match Hashtbl.find_opt t.tmem (addr + i) with
    | Some s -> acc := Iset.union !acc s
    | None -> ()
  done;
  !acc

let val_syms t v =
  Option.value ~default:Iset.empty (Hashtbl.find_opt t.tval v)

let ptr_syms t addr =
  Option.value ~default:Iset.empty (Hashtbl.find_opt t.tptr addr)

let unvalidated t syms = Iset.filter (fun s -> not (Hashtbl.mem t.validated s)) syms

let sym_name t s =
  Option.value ~default:(Printf.sprintf "sym%d" s) (Hashtbl.find_opt t.sym_src s)

let validate_sym t s =
  if not (Hashtbl.mem t.validated s) then begin
    Hashtbl.replace t.validated s ();
    t.unvalidated_live <- t.unvalidated_live - 1
  end

let validate_syms t syms = Iset.iter (validate_sym t) syms

(** Referent base of a derived address: the provenance recorded when the
    pointer was built with [offset], else whatever live object contains
    the address (the audit layer's table). *)
let prov_base t addr =
  match Hashtbl.find_opt t.prov addr with
  | Some lo -> Some lo
  | None ->
    (match Audit.lookup t.audit addr with
     | Some o -> Some o.Audit.o_lo
     | None -> None)

let referent t addr =
  match prov_base t addr with
  | None -> None
  | Some lo ->
    (match Audit.lookup t.audit lo with
     | Some o -> Some (o.Audit.o_lo, o.Audit.o_hi)
     | None -> None)

(* ---------- taint sources (driver API) ---------- *)

(** Mark [len] request bytes at [addr] as fresh attacker symbols.
    Re-tainting the same region for the next request mints *fresh*
    symbols, so cross-request re-reads never masquerade as double
    fetches. *)
let taint_region t ~addr ~len ~label =
  for i = 0 to len - 1 do
    let s = t.next_sym in
    t.next_sym <- s + 1;
    t.unvalidated_live <- t.unvalidated_live + 1;
    Hashtbl.replace t.sym_src s (Printf.sprintf "%s[%d]" label i);
    Hashtbl.replace t.tmem (addr + i) (Iset.singleton s)
  done

(** Bind a planted field's concrete [value] to the symbols of its bytes,
    so host arithmetic on the loaded value stays trackable. *)
let register_value t ~addr ~width ~value =
  if value >= value_track_min then begin
    let syms = mem_syms t addr width in
    if not (Iset.is_empty syms) then
      Hashtbl.replace t.tval value (Iset.union syms (val_syms t value))
  end

(* ---------- the orderliness check ---------- *)

let phase_index name =
  let rec idx i = function
    | [] -> -1
    | p :: _ when p = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 Handlers.phase_names

(** Note a handler phase. Entering a phase that precedes the furthest
    phase reached is a state-machine regression (TeeRex's orderliness
    class); re-entering the current phase or skipping forward is fine. *)
let phase t name =
  let i = phase_index name in
  if i >= 0 then begin
    if i < t.phase_max then
      report t Finding.Phase_disorder ~site:name ~addr:0 ~obj:0 ~extent:0
        ~detail:
          (Printf.sprintf "phase '%s' entered after '%s'" name
             (List.nth Handlers.phase_names t.phase_max))
        ~dedup:("ph:" ^ name)
    else t.phase_max <- i
  end

(* ---------- sinks ---------- *)

type family = Fam_checked | Fam_safe | Fam_unchecked

let fam_str = function
  | Fam_checked -> "checked"
  | Fam_safe -> "safe"
  | Fam_unchecked -> "unchecked"

(** Before an access: does attacker-derived data steer it, and does
    anything stand in the way? The [safe_*]/[*_unchecked] families are
    compiler-elided even under guarding schemes — tainted data reaching
    them is a finding under *every* scheme. *)
let pre_access t ~family ~site ~addr ~width =
  if active t then begin
    let scheme_checked =
      family = Fam_checked && guards_accesses (Audit.scheme_name t.audit)
    in
    let ps = unvalidated t (ptr_syms t addr) in
    let tainted_ptr = not (Iset.is_empty ps) in
    if tainted_ptr && not scheme_checked then begin
      let s = Iset.min_elt ps in
      report t Finding.Tainted_deref ~site ~addr
        ~obj:(Option.value ~default:0 (prov_base t addr))
        ~extent:width
        ~detail:
          (Printf.sprintf
             "%s-family access through pointer derived from %s with no \
              dominating check" (fam_str family) (sym_name t s))
        ~dedup:(Printf.sprintf "td:%s:%d" site s)
    end;
    match referent t addr with
    | Some (lo, hi) when addr < lo || addr + width > hi ->
      if not scheme_checked then begin
        t.wild <- t.wild + 1;
        if t.unvalidated_live > 0 && not tainted_ptr then
          report t Finding.Tainted_extent ~site ~addr ~obj:lo ~extent:width
            ~detail:
              (Printf.sprintf
                 "access [0x%x,0x%x) escapes object [0x%x,0x%x) while \
                  unvalidated request taint is live" addr (addr + width) lo hi)
            ~dedup:(Printf.sprintf "te:%s:0x%x" site lo)
      end
    | _ -> ()
  end

(** After a successful read: double-fetch detection, then value-taint
    registration. A re-fetch after any store havocs — the model of the
    host rewriting the shared request page between the two reads. *)
let post_read t ~site ~addr ~width v =
  if not (active t) then v
  else begin
    let syms = mem_syms t addr width in
    if Iset.is_empty syms then v
    else begin
      let havoc = ref false in
      Iset.iter
        (fun s ->
           match Hashtbl.find_opt t.first_fetch s with
           | None -> Hashtbl.replace t.first_fetch s t.store_epoch
           | Some e ->
             if t.store_epoch > e then begin
               havoc := true;
               report t Finding.Double_fetch ~site ~addr
                 ~obj:(Option.value ~default:0 (prov_base t addr))
                 ~extent:width
                 ~detail:
                   (Printf.sprintf
                      "%s re-fetched after an intervening store; second read \
                       havocked to %d" (sym_name t s) havoc_value)
                 ~dedup:(Printf.sprintf "df:%d" s)
             end)
        syms;
      if !havoc then havoc_value
      else begin
        if v >= value_track_min then
          Hashtbl.replace t.tval v (Iset.union syms (val_syms t v));
        v
      end
    end
  end

(** After a store: bump the double-fetch epoch and do a strong update of
    the destination bytes' taint from the stored value. *)
let post_store t ~addr ~width v =
  if active t then begin
    t.store_epoch <- t.store_epoch + 1;
    let vs = val_syms t v in
    if Iset.is_empty vs then
      for i = 0 to width - 1 do Hashtbl.remove t.tmem (addr + i) done
    else
      for i = 0 to width - 1 do Hashtbl.replace t.tmem (addr + i) vs done
  end

(** A [check_range] validates every symbol it covers: the bytes of the
    extent, the pointer's own taint, and the taint of the length value —
    the handler has done its interface-validation duty for them. *)
let on_check t ~addr ~len =
  if active t && len > 0 then begin
    validate_syms t (mem_syms t addr len);
    validate_syms t (ptr_syms t addr);
    validate_syms t (val_syms t len)
  end

let on_libc_check t ~addr ~len =
  if active t && len > 0 then begin
    let name = Audit.scheme_name t.audit in
    if guards_libc name then begin
      validate_syms t (mem_syms t addr len);
      validate_syms t (ptr_syms t addr);
      validate_syms t (val_syms t len)
    end
    else begin
      let ps = unvalidated t (ptr_syms t addr) in
      let len_tainted = not (Iset.is_empty (unvalidated t (val_syms t len))) in
      let oob =
        match referent t addr with
        | Some (lo, hi) -> addr < lo || addr + len > hi
        | None -> false
      in
      if (not (Iset.is_empty ps)) || (oob && (len_tainted || t.unvalidated_live > 0))
      then
        report t Finding.Tainted_libc ~site:"libc_check" ~addr
          ~obj:(Option.value ~default:0 (prov_base t addr))
          ~extent:len
          ~detail:
            (Printf.sprintf
               "libc extent %d under scheme '%s' whose wrapper does not \
                verify bounds" len name)
          ~dedup:(Printf.sprintf "tl:0x%x"
                    (Option.value ~default:addr (prov_base t addr)))
    end
  end

(* ---------- the wrapper ---------- *)

let unhook = Audit.unhook

(** [wrap inner] = taint interpreter over [Audit.wrap inner]: the
    audited scheme sits inside, so the dynamic pass observes exactly
    the operations the symbolic pass does and its findings are a subset
    of {!findings} by construction. Same single-per-domain discipline
    as {!Audit.wrap} (call {!unhook} when done). *)
let wrap ?(track_races = true) ?(max_findings = 200) (inner : Scheme.t) :
  Scheme.t * t =
  let audited, audit = Audit.wrap ~track_races ~max_findings inner in
  let t =
    {
      audit;
      tel = Memsys.telemetry inner.Scheme.ms;
      max_findings;
      tmem = Hashtbl.create 1024;
      tval = Hashtbl.create 64;
      tptr = Hashtbl.create 256;
      prov = Hashtbl.create 256;
      validated = Hashtbl.create 64;
      sym_src = Hashtbl.create 1024;
      first_fetch = Hashtbl.create 1024;
      next_sym = 0;
      unvalidated_live = 0;
      store_epoch = 0;
      phase_max = 0;
      wild = 0;
      seen = Hashtbl.create 64;
      findings_rev = [];
      n_stored = 0;
      s_total = 0;
      counts = Hashtbl.create 8;
    }
  in
  let addr_of = audited.Scheme.addr_of in
  let s =
    {
      audited with
      Scheme.offset =
        (fun p d ->
           let q = audited.Scheme.offset p d in
           if active t then begin
             let ap = addr_of p and aq = addr_of q in
             let syms = Iset.union (ptr_syms t ap) (val_syms t d) in
             if not (Iset.is_empty syms) then
               Hashtbl.replace t.tptr aq (Iset.union syms (ptr_syms t aq));
             match prov_base t ap with
             | Some lo -> Hashtbl.replace t.prov aq lo
             | None -> ()
           end;
           q);
      load =
        (fun p width ->
           let a = addr_of p in
           pre_access t ~family:Fam_checked ~site:"load" ~addr:a ~width;
           let v = audited.Scheme.load p width in
           post_read t ~site:"load" ~addr:a ~width v);
      store =
        (fun p width v ->
           let a = addr_of p in
           pre_access t ~family:Fam_checked ~site:"store" ~addr:a ~width;
           audited.Scheme.store p width v;
           post_store t ~addr:a ~width v);
      safe_load =
        (fun p width ->
           let a = addr_of p in
           pre_access t ~family:Fam_safe ~site:"safe_load" ~addr:a ~width;
           let v = audited.Scheme.safe_load p width in
           post_read t ~site:"safe_load" ~addr:a ~width v);
      safe_store =
        (fun p width v ->
           let a = addr_of p in
           pre_access t ~family:Fam_safe ~site:"safe_store" ~addr:a ~width;
           audited.Scheme.safe_store p width v;
           post_store t ~addr:a ~width v);
      load_unchecked =
        (fun p width ->
           let a = addr_of p in
           pre_access t ~family:Fam_unchecked ~site:"load_unchecked" ~addr:a
             ~width;
           let v = audited.Scheme.load_unchecked p width in
           post_read t ~site:"load_unchecked" ~addr:a ~width v);
      store_unchecked =
        (fun p width v ->
           let a = addr_of p in
           pre_access t ~family:Fam_unchecked ~site:"store_unchecked" ~addr:a
             ~width;
           audited.Scheme.store_unchecked p width v;
           post_store t ~addr:a ~width v);
      load_ptr =
        (fun p ->
           let a = addr_of p in
           pre_access t ~family:Fam_checked ~site:"load_ptr" ~addr:a ~width:8;
           let q = audited.Scheme.load_ptr p in
           if active t then begin
             let syms = mem_syms t a 8 in
             if not (Iset.is_empty syms) then
               Hashtbl.replace t.tptr (addr_of q)
                 (Iset.union syms (ptr_syms t (addr_of q)))
           end;
           q);
      store_ptr =
        (fun p q ->
           let a = addr_of p in
           pre_access t ~family:Fam_checked ~site:"store_ptr" ~addr:a ~width:8;
           audited.Scheme.store_ptr p q;
           post_store t ~addr:a ~width:8 0);
      load_ptr_unchecked =
        (fun p ->
           let a = addr_of p in
           pre_access t ~family:Fam_unchecked ~site:"load_ptr_unchecked"
             ~addr:a ~width:8;
           let q = audited.Scheme.load_ptr_unchecked p in
           if active t then begin
             let syms = mem_syms t a 8 in
             if not (Iset.is_empty syms) then
               Hashtbl.replace t.tptr (addr_of q)
                 (Iset.union syms (ptr_syms t (addr_of q)))
           end;
           q);
      store_ptr_unchecked =
        (fun p q ->
           let a = addr_of p in
           pre_access t ~family:Fam_unchecked ~site:"store_ptr_unchecked"
             ~addr:a ~width:8;
           audited.Scheme.store_ptr_unchecked p q;
           post_store t ~addr:a ~width:8 0);
      check_range =
        (fun p len access ->
           audited.Scheme.check_range p len access;
           on_check t ~addr:(addr_of p) ~len);
      libc_check =
        (fun p len access ->
           (* verdict first: the wrapper's (in)capability decides, not
              whether the inner call survives to return *)
           on_libc_check t ~addr:(addr_of p) ~len;
           audited.Scheme.libc_check p len access);
    }
  in
  (s, t)

(* ---------- accessors ---------- *)

let audit t = t.audit
let symbolic_findings t = List.rev t.findings_rev

(** All findings of the run: dynamic (audit) first, then symbolic. *)
let findings t = Audit.findings t.audit @ symbolic_findings t

let sym_total t = t.s_total
let total t = Audit.total t.audit + t.s_total
let ops t = Audit.ops t.audit
let wild t = t.wild

let count t kind =
  Audit.count t.audit kind
  + Option.value ~default:0 (Hashtbl.find_opt t.counts kind)

(** The soundness pin of the composition: every dynamic finding appears
    (structurally) in the unified list. True by construction — asserted
    anyway on every sweep. *)
let subset_ok t = Finding.subset (Audit.findings t.audit) (findings t)

(* ---------- the buggy-handler corpus runner ---------- *)

(** Bytes of the request image the "attacker" controls (and we taint). *)
let req_image_len = 256

type corpus_cell = {
  cc_class : string;       (* Handlers variant name *)
  cc_scheme : string;
  cc_status : string;      (* "ok" | "flagged" | "trapped" *)
  cc_outcome : string;     (* "completed" | "trapped" | "fault" | "crash" *)
  cc_findings : Finding.t list;
  cc_total : int;          (* every occurrence, deduplicated or not *)
  cc_wild : int;
  cc_corrupted : bool;     (* the heap canary was trampled *)
  cc_subset_ok : bool;
}

(** Run one buggy-handler variant under one scheme on a fresh machine:
    allocate request/response/canary, plant the attacker's request
    image, taint it, run the handler, read the canary back raw. The
    canary is written and read through {!Memsys} directly so neither
    the scheme nor the auditors observe it. *)
let run_variant ?(scheme = "native") (v : Handlers.variant) : corpus_cell =
  let ms = Memsys.create (Config.default ()) in
  Fun.protect ~finally:(fun () -> Memsys.retire ms) @@ fun () ->
  let s0 = Harness.maker scheme ms in
  let s, t = wrap ~track_races:false s0 in
  Fun.protect ~finally:unhook @@ fun () ->
  let req = s.Scheme.malloc 1024 in
  let resp = s.Scheme.malloc 1024 in
  let canary = s.Scheme.malloc 64 in
  let ca = s.Scheme.addr_of canary in
  Memsys.fill ms ~addr:ca ~len:64 ~byte:0x5A;
  let ra = s.Scheme.addr_of req in
  Memsys.fill ms ~addr:ra ~len:req_image_len ~byte:0x41;
  taint_region t ~addr:ra ~len:req_image_len ~label:(v.Handlers.v_name ^ ".req");
  List.iter
    (fun (off, value) ->
       Memsys.store ms ~addr:(ra + off) ~width:4 value;
       register_value t ~addr:(ra + off) ~width:4 ~value)
    v.Handlers.v_fields;
  let h =
    { Handlers.s; req; req_len = req_image_len; resp; resp_len = 1024;
      note_phase = phase t }
  in
  let outcome =
    match v.Handlers.v_run h with
    | () -> "completed"
    | exception Violation _ -> "trapped"
    | exception Sb_vmem.Vmem.Fault _ -> "fault"
    | exception App_crash _ -> "crash"
  in
  let corrupted = ref false in
  for i = 0 to 63 do
    if Memsys.load ms ~addr:(ca + i) ~width:1 <> 0x5A then corrupted := true
  done;
  let fs = findings t in
  let status =
    if outcome = "trapped" then "trapped"
    else if fs <> [] || t.wild > 0 || !corrupted || outcome <> "completed" then
      "flagged"
    else "ok"
  in
  {
    cc_class = v.Handlers.v_name;
    cc_scheme = scheme;
    cc_status = status;
    cc_outcome = outcome;
    cc_findings = fs;
    cc_total = total t;
    cc_wild = t.wild;
    cc_corrupted = !corrupted;
    cc_subset_ok = subset_ok t;
  }

(** The Table-4-style scheme columns: unprotected, the paper's scheme,
    and the two comparison schemes its evaluation leans on. *)
let matrix_schemes = Sb_schemes.Scheme_info.headline_names

(** Every corpus class under every scheme, fanned out with
    {!Parallel_runner} (each cell owns a fresh machine, so cells are
    independent and the result is order-preserving and deterministic
    for any [jobs]). *)
let corpus_sweep ?jobs ?(schemes = matrix_schemes) () : corpus_cell list =
  let cells =
    List.concat_map
      (fun (v : Handlers.variant) -> List.map (fun sc -> (v, sc)) schemes)
      Handlers.variants
  in
  Parallel_runner.map_list ?jobs (fun (v, sc) -> run_variant ~scheme:sc v) cells

let cell_kinds c =
  List.sort_uniq compare
    (List.map (fun f -> Finding.kind_name f.Finding.kind) c.cc_findings)

(* ---------- the committed matrix ---------- *)

(** Column set deliberately excludes addresses and cycle counts so the
    bytes are identical across engines and [--jobs]. *)
let matrix_tsv_header =
  "class\tscheme\tstatus\toutcome\tfindings\tkinds\twild\tcorrupted"

let matrix_tsv cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf matrix_tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
       let kinds = match cell_kinds c with [] -> "-" | ks -> String.concat "," ks in
       Buffer.add_string buf
         (Printf.sprintf "%s\t%s\t%s\t%s\t%d\t%s\t%d\t%d\n" c.cc_class
            c.cc_scheme c.cc_status c.cc_outcome
            (List.length c.cc_findings) kinds c.cc_wild
            (if c.cc_corrupted then 1 else 0)))
    cells;
  Buffer.contents buf

(** The Table-4 pins. Returns human-readable problems; empty = good:
    - the disciplined "good" handler is clean under every scheme;
    - unprotected (native) lets every vulnerability class through;
    - SGXBounds neutralizes every class — the violation traps, or the
      class simply has nothing left to find;
    - the audit-subset invariant held in every cell. *)
let verify_matrix (cells : corpus_cell list) : string list =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun c ->
       if not c.cc_subset_ok then
         bad "%s/%s: dynamic findings escaped the unified set" c.cc_class
           c.cc_scheme;
       if c.cc_class = "good" && c.cc_status <> "ok" then
         bad "good/%s: expected clean, got %s" c.cc_scheme c.cc_status;
       if c.cc_class <> "good" && c.cc_scheme = "native"
          && c.cc_status <> "flagged" then
         bad "%s/native: expected flagged, got %s" c.cc_class c.cc_status;
       if c.cc_class <> "good" && c.cc_scheme = "sgxbounds"
          && c.cc_status = "flagged" && c.cc_wild > 0 then
         bad "%s/sgxbounds: wild access survived instrumentation" c.cc_class;
       if c.cc_scheme = "sgxbounds" && c.cc_corrupted then
         bad "%s/sgxbounds: canary corrupted despite instrumentation"
           c.cc_class)
    cells;
  List.rev !problems

(* ---------- symbolic findings as fuzz seeds ---------- *)

(** Translate one finding into a minimal {!Sb_fuzz.Trace.t} the fuzz
    oracle can replay under every scheme and engine. Offsets are folded
    into the oracle's modelled bad-access window (object end + at most
    2 KiB) so post-violation behaviour stays layout-independent. *)
let seed_of_finding (f : Finding.t) : Trace.t option =
  let size = 1024 in
  let clamp_off off =
    if off >= size + 16 && off < size + 2048 then off
    else size + 16 + (abs off mod 1800)
  in
  let width = max 1 (min 8 f.Finding.extent) in
  let raw_off = if f.Finding.obj <> 0 then f.Finding.addr - f.Finding.obj
    else size + 128 in
  match f.Finding.kind with
  | Finding.Tainted_deref | Finding.Tainted_extent | Finding.Double_fetch
  | Finding.Unchecked_uncovered | Finding.Safe_oob ->
    Some
      [| Trace.Alloc { id = 0; size; region = Trace.Heap };
         Trace.Store { id = 0; off = clamp_off raw_off; width; value = 0x41;
                       safe = false } |]
  | Finding.Tainted_libc | Finding.Check_oob | Finding.Libc_mismatch
  | Finding.Libc_unchecked ->
    let len = max (size + 16) (min f.Finding.extent (size + 512)) in
    Some
      [| Trace.Alloc { id = 0; size; region = Trace.Heap };
         Trace.Alloc { id = 1; size; region = Trace.Heap };
         Trace.Memcpy { dst = 1; dst_off = 0; src = 0; src_off = 0; len } |]
  | Finding.Phase_disorder | Finding.Data_race | Finding.Meta_race -> None

(** Seed traces from an unprotected corpus sweep — one per distinct
    translatable finding, deterministic order. *)
let seed_traces (cells : corpus_cell list) : Trace.t list =
  List.concat_map
    (fun c ->
       if c.cc_scheme <> "native" then []
       else List.filter_map seed_of_finding c.cc_findings)
    cells

(** Deterministically expand [seeds] to [total] traces by cycling the
    seed list and jittering store offsets/widths inside the modelled
    bad-access window. *)
let expand_seeds ~total (seeds : Trace.t list) : Trace.t list =
  if seeds = [] || total <= 0 then []
  else
    let widths = [| 1; 2; 4; 8 |] in
    List.init total (fun i ->
        let base = List.nth seeds (i mod List.length seeds) in
        let jitter = i / List.length seeds in
        Array.map
          (function
            | Trace.Store { id; off; width = _; value; safe } ->
              Trace.Store
                { id; off = off + (jitter mod 16);
                  width = widths.(i mod Array.length widths); value; safe }
            | Trace.Memcpy { dst; dst_off; src; src_off; len } ->
              Trace.Memcpy { dst; dst_off; src; src_off;
                             len = len + (jitter mod 16) }
            | ev -> ev)
          base)

(* ---------- reports ---------- *)

let json_of_cell c =
  Json.Obj
    [
      ("class", Json.Str c.cc_class);
      ("scheme", Json.Str c.cc_scheme);
      ("status", Json.Str c.cc_status);
      ("outcome", Json.Str c.cc_outcome);
      ("findings", Json.Int (List.length c.cc_findings));
      ("total", Json.Int c.cc_total);
      ("wild", Json.Int c.cc_wild);
      ("corrupted", Json.Bool c.cc_corrupted);
      ("subset_ok", Json.Bool c.cc_subset_ok);
      ("kinds", Json.List (List.map (fun k -> Json.Str k) (cell_kinds c)));
      ("detail", Json.List (List.map Finding.to_json c.cc_findings));
    ]

let json_report (cells : corpus_cell list) =
  let flagged = List.filter (fun c -> c.cc_status <> "ok") cells in
  Json.Obj
    [
      ("cells", Json.List (List.map json_of_cell cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("not_ok", Json.Int (List.length flagged));
            ( "findings",
              Json.Int
                (List.fold_left
                   (fun acc c -> acc + List.length c.cc_findings)
                   0 cells) );
            ( "subset_ok",
              Json.Bool (List.for_all (fun c -> c.cc_subset_ok) cells) );
          ] );
    ]

let print_cells cells =
  List.iter
    (fun c ->
       Fmt.pr "%-14s %-11s %-8s %-9s findings=%d wild=%d%s@." c.cc_class
         c.cc_scheme c.cc_status c.cc_outcome
         (List.length c.cc_findings) c.cc_wild
         (if c.cc_corrupted then " CANARY-CORRUPTED" else "");
       List.iter (fun f -> Fmt.pr "    %a@." Finding.pp f) c.cc_findings)
    cells

(* ---------- selftests ---------- *)

type selftest = { sx_name : string; sx_pass : bool; sx_detail : string }

let find_cell cells cls scheme =
  List.find_opt (fun c -> c.cc_class = cls && c.cc_scheme = scheme) cells

(** The signature kind each TeeRex class must produce on the
    unprotected scheme. *)
let signature_kinds =
  [
    ("ptr-deref", "tainted-deref");
    ("len-overflow", "tainted-extent");
    ("libc-len", "tainted-libc");
    ("double-fetch", "double-fetch");
    ("order", "phase-disorder");
  ]

let selftests () : selftest list =
  let cells = corpus_sweep ~schemes:[ "native"; "sgxbounds" ] () in
  let cell cls scheme = find_cell cells cls scheme in
  let tests = ref [] in
  let add name pass detail =
    tests := { sx_name = name; sx_pass = pass; sx_detail = detail } :: !tests
  in
  List.iter
    (fun (cls, kind) ->
       (match cell cls "native" with
        | Some c ->
          add (cls ^ "-native-flagged")
            (c.cc_status = "flagged")
            (Printf.sprintf "status=%s" c.cc_status);
          add (cls ^ "-native-kind")
            (List.mem kind (cell_kinds c))
            (Printf.sprintf "kinds=%s" (String.concat "," (cell_kinds c)))
        | None -> add (cls ^ "-native-flagged") false "cell missing");
       match cell cls "sgxbounds" with
       | Some c ->
         add (cls ^ "-sgxbounds-neutralized")
           (c.cc_status = "trapped" || c.cc_status = "ok")
           (Printf.sprintf "status=%s outcome=%s" c.cc_status c.cc_outcome)
       | None -> add (cls ^ "-sgxbounds-neutralized") false "cell missing")
    signature_kinds;
  List.iter
    (fun scheme ->
       match cell "good" scheme with
       | Some c ->
         add ("good-" ^ scheme ^ "-clean")
           (c.cc_status = "ok")
           (Printf.sprintf "status=%s findings=%d" c.cc_status
              (List.length c.cc_findings))
       | None -> add ("good-" ^ scheme ^ "-clean") false "cell missing")
    [ "native"; "sgxbounds" ];
  add "audit-subset"
    (List.for_all (fun c -> c.cc_subset_ok) cells)
    "dynamic findings are a subset of unified findings in every cell";
  let seeds = seed_traces cells in
  add "seeds-nonempty"
    (List.length seeds >= 3)
    (Printf.sprintf "%d seed traces from native findings" (List.length seeds));
  List.rev !tests

let print_selftests tests =
  List.iter
    (fun st ->
       Fmt.pr "%-34s %s  (%s)@." st.sx_name
         (if st.sx_pass then "PASS" else "FAIL")
         st.sx_detail)
    tests;
  let failed = List.filter (fun st -> not st.sx_pass) tests in
  Fmt.pr "symex selftests: %d/%d passed@."
    (List.length tests - List.length failed)
    (List.length tests);
  failed = []
