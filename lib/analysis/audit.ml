(** The instrumentation auditor: a meta-scheme that wraps any
    {!Sb_protection.Scheme.t} and verifies the discipline behind the
    paper's §4.4 optimizations, which the workload kernels otherwise
    merely assert by hand:

    - every [load_unchecked]/[store_unchecked] must be dominated by a
      still-valid [check_range] on the same live object whose extent
      covers the access (and a [Read] check only licenses reads — a
      [Write] check licenses both directions);
    - every [safe_load]/[safe_store] must be statically in-bounds for
      its live object (the "compiler can prove it" claim);
    - every byte of raw libc traffic ({!Sb_libc.Simlibc} declares it
      through [Scheme.libc_touch]) must match a preceding [libc_check]
      of the same buffer, direction and width;
    - a vector-clock happens-before race detector over {!Sb_mt.Mt}
      fork/join regions flags unsynchronized conflicting accesses to
      application data *and* to scheme metadata — which turns the MPX
      bounds-table non-atomicity of §4.1/Figure 4c into a reported
      finding rather than a bespoke example.

    The wrapper is pure observation: it calls each inner operation
    exactly once, charges no simulated cycles and allocates no simulated
    memory, so audited runs produce bit-identical metrics to unaudited
    ones (pinned by tests). All bookkeeping is host-side.

    Object identity is tracked by address (the scheme interface has no
    pointer provenance), with objects born at
    malloc/calloc/realloc/global/stack_alloc and dying at
    free/realloc/stack_pop; a recorded [check_range] stays valid for the
    lifetime of its object. One auditor is active per domain at a time
    (it owns the {!Sb_mt.Mt.set_region_tracer} slot). *)

module Memsys = Sb_sgx.Memsys
module Config = Sb_machine.Config
module Eff = Sb_machine.Eff
module Scheme = Sb_protection.Scheme
module Telemetry = Sb_telemetry.Telemetry
open Sb_protection.Types

module Imap = Map.Make (Int)

(* Findings use the unified {!Finding} schema shared with the symbolic
   pass; the auditor reports only {!Finding.dynamic_kinds}. *)

let kind_name = Finding.kind_name
let all_kinds = Finding.dynamic_kinds
let pp_finding = Finding.pp

(* ---------- live objects and their recorded checks ---------- *)

type obj = {
  o_lo : int;
  o_hi : int;
  (* deduplicated [lo, hi, access) extents of live check_range calls *)
  mutable o_checks : (int * int * access) list;
}

(* ---------- happens-before shadow cells (FastTrack-style) ---------- *)

type cell = {
  mutable c_wt : int;             (* last writer thread, -1 = none *)
  mutable c_wc : int;             (* last writer clock *)
  mutable c_rd : (int * int) list;(* concurrent-frontier reads: thread, clock *)
}

(* Which disjoint metadata a scheme operation implies. SGXBounds keeps
   the lower bound in a footer written once at allocation and read by
   checks; MPX spills/fills bounds through bounds-table entries keyed by
   the *pointer slot* address, with bndstx/bndldx not atomic with the
   data access (§4.1). Schemes whose metadata never races by
   construction (or that have none) are not modeled. *)
type meta_model = Sb_schemes.Scheme_info.meta = No_meta | Mpx_bt | Sgxbounds_footer

let model_of_name = Sb_schemes.Scheme_info.meta_model_of

type t = {
  inner : Scheme.t;
  tel : Telemetry.t;
  track_races : bool;
  max_findings : int;
  model : meta_model;
  nthreads : int;
  (* vector clocks, one per hardware thread; vc.(i).(j) = latest segment
     of thread j that thread i has synchronized with *)
  vc : int array array;
  mutable region_n : int;          (* threads of the open region; 0 = sequential *)
  mutable objects : obj Imap.t;    (* keyed by o_lo; live objects only *)
  mutable frames : (int * int list ref) list;  (* stack frames: token, object bases *)
  mutable pending : (int * int * access) list; (* libc_check awaiting its touch *)
  mutable findings_rev : Finding.t list;
  mutable n_stored : int;
  mutable total : int;             (* every occurrence, deduplicated or not *)
  counts : (Finding.kind, int) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  data_shadow : (int, cell) Hashtbl.t;  (* keyed by 4-byte granule *)
  meta_shadow : (int, cell) Hashtbl.t;
  mutable ops : int;
}

(* ---------- vector-clock fork/join ---------- *)

let join t =
  if t.region_n > 0 then begin
    let v0 = t.vc.(0) in
    for i = 1 to t.region_n - 1 do
      let vi = t.vc.(i) in
      for j = 0 to t.nthreads - 1 do
        if vi.(j) > v0.(j) then v0.(j) <- vi.(j)
      done
    done;
    v0.(0) <- v0.(0) + 1;
    t.region_n <- 0
  end

let fork t n =
  join t;  (* back-to-back regions: close the previous one first *)
  for i = 1 to n - 1 do
    Array.blit t.vc.(0) 0 t.vc.(i) 0 t.nthreads
  done;
  for i = 0 to n - 1 do
    t.vc.(i).(i) <- t.vc.(i).(i) + 1
  done;
  t.region_n <- n

(* Lazily close a region once sequential code resumes: Mt only signals
   region starts, but no audited operation can happen between a region's
   end and the next operation that observes the scheduler inactive. *)
let enter t =
  t.ops <- t.ops + 1;
  if t.region_n > 0 && not (Eff.scheduler_active ()) then join t

let scheme_name t = t.inner.Scheme.name

let cur_thread t =
  if Eff.scheduler_active () then Memsys.current_thread t.inner.Scheme.ms else 0

(* ---------- object lookup (also locates a finding's referent) ---------- *)

let lookup t addr =
  match Imap.find_last_opt (fun k -> k <= addr) t.objects with
  | Some (_, o) when addr < o.o_hi -> Some o
  | _ -> None

(* ---------- findings ---------- *)

let report t kind ~op ~addr ~width ~detail ~dedup =
  t.total <- t.total + 1;
  Hashtbl.replace t.counts kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind));
  if not (Hashtbl.mem t.seen dedup) then begin
    Hashtbl.replace t.seen dedup ();
    let obj = match lookup t addr with Some o -> o.o_lo | None -> 0 in
    let f =
      { Finding.kind; site = op; addr; obj; extent = width;
        thread = cur_thread t; detail }
    in
    if t.n_stored < t.max_findings then begin
      t.findings_rev <- f :: t.findings_rev;
      t.n_stored <- t.n_stored + 1
    end;
    Telemetry.event t.tel ~cat:"audit" (kind_name kind)
      ~args:
        [ ("op", op); ("addr", Printf.sprintf "0x%x" addr);
          ("width", string_of_int width); ("detail", detail) ]
  end

let findings t = List.rev t.findings_rev
let total t = t.total
let ops t = t.ops
let count t kind = Option.value ~default:0 (Hashtbl.find_opt t.counts kind)
let counts t = List.filter_map (fun k ->
    match count t k with 0 -> None | c -> Some (k, c)) all_kinds

(* ---------- object table ---------- *)

let kill_at t lo = t.objects <- Imap.remove lo t.objects

let meta_write_footer t o =
  (* the LB footer sits at the object's upper bound *)
  if t.model = Sgxbounds_footer then `Footer (o.o_hi, 4) else `None

(* ---------- race shadow ---------- *)

let cell_of tbl g =
  match Hashtbl.find_opt tbl g with
  | Some c -> c
  | None ->
    let c = { c_wt = -1; c_wc = 0; c_rd = [] } in
    Hashtbl.replace tbl g c;
    c

(* epoch (et, ec) happens-before the current segment of thread [u]? *)
let hb t ~et ~ec ~u = ec <= t.vc.(u).(et)

let note_access t ~meta ~op ~addr ~width ~access =
  if t.track_races && width > 0 then begin
    let u = cur_thread t in
    let clk = t.vc.(u).(u) in
    let tbl = if meta then t.meta_shadow else t.data_shadow in
    let kind = if meta then Finding.Meta_race else Finding.Data_race in
    let what = if meta then "metadata" else "data" in
    let g0 = addr asr 2 and g1 = (addr + width - 1) asr 2 in
    (* one report per access, not per granule it spans *)
    let reported = ref false in
    let flag conflict other g =
      if not !reported then begin
        reported := true;
        report t kind ~op ~addr ~width
          ~detail:
            (Printf.sprintf "unsynchronized %s %s conflict with thread %d" what
               conflict other)
          ~dedup:(Printf.sprintf "race:%b:0x%x" meta g)
      end
    in
    for g = g0 to g1 do
      let c = cell_of tbl g in
      (match access with
       | Write ->
         if c.c_wt >= 0 && c.c_wt <> u && not (hb t ~et:c.c_wt ~ec:c.c_wc ~u)
         then flag "write-write" c.c_wt g;
         List.iter
           (fun (rt, rc) ->
              if rt <> u && not (hb t ~et:rt ~ec:rc ~u) then
                flag "read-write" rt g)
           c.c_rd;
         c.c_wt <- u;
         c.c_wc <- clk;
         c.c_rd <- []
       | Read ->
         if c.c_wt >= 0 && c.c_wt <> u && not (hb t ~et:c.c_wt ~ec:c.c_wc ~u)
         then flag "write-read" c.c_wt g;
         c.c_rd <- (u, clk) :: List.filter (fun (rt, _) -> rt <> u) c.c_rd)
    done
  end

(* Allocation is a synchronization point: the allocator hands the block
   to exactly one thread, so epochs recorded by a previous owner of a
   recycled address must not be read as conflicts. Drop stale shadow
   cells over the object's footprint (plus the footer granule). *)
let clear_shadow t addr size =
  if t.track_races then begin
    let g0 = addr asr 2 and g1 = (addr + size + 4 - 1) asr 2 in
    for g = g0 to g1 do
      Hashtbl.remove t.data_shadow g;
      Hashtbl.remove t.meta_shadow g
    done
  end

(* ---------- the contract checkers ---------- *)

let on_alloc t addr size =
  if addr <> 0 && size > 0 then begin
    let o = { o_lo = addr; o_hi = addr + size; o_checks = [] } in
    t.objects <- Imap.add addr o t.objects;
    clear_shadow t addr size;
    (match meta_write_footer t o with
     | `Footer (a, w) -> note_access t ~meta:true ~op:"alloc" ~addr:a ~width:w ~access:Write
     | `None -> ())
  end

(* A checked access under SGXBounds loads the LB footer of its object. *)
let meta_read_of_check t addr =
  if t.model = Sgxbounds_footer then
    match lookup t addr with
    | Some o -> note_access t ~meta:true ~op:"check" ~addr:o.o_hi ~width:4 ~access:Read
    | None -> ()

let covered o a w access =
  List.exists
    (fun (clo, chi, cacc) ->
       clo <= a && a + w <= chi
       && (match cacc with Write -> true | Read -> access = Read))
    o.o_checks

let audit_unchecked t ~op ~addr ~width ~access =
  enter t;
  (match lookup t addr with
   | None ->
     report t Finding.Unchecked_uncovered ~op ~addr ~width
       ~detail:"no live object contains the access (stale or freed referent)"
       ~dedup:(Printf.sprintf "u:%s:none:0x%x" op (addr asr 12))
   | Some o ->
     if not (covered o addr width access) then
       report t Finding.Unchecked_uncovered ~op ~addr ~width
         ~detail:
           (Printf.sprintf
              "access [0x%x,0x%x) not covered by any live %s check_range on object [0x%x,0x%x)"
              addr (addr + width)
              (match access with Read -> "read" | Write -> "write")
              o.o_lo o.o_hi)
         ~dedup:(Printf.sprintf "u:%s:0x%x" op o.o_lo));
  note_access t ~meta:false ~op ~addr ~width ~access

let audit_safe t ~op ~addr ~width ~access =
  enter t;
  (match lookup t addr with
   | None ->
     report t Finding.Safe_oob ~op ~addr ~width
       ~detail:"no live object contains the \"provably safe\" access"
       ~dedup:(Printf.sprintf "s:%s:none:0x%x" op (addr asr 12))
   | Some o ->
     if addr + width > o.o_hi then
       report t Finding.Safe_oob ~op ~addr ~width
         ~detail:
           (Printf.sprintf
              "access [0x%x,0x%x) straddles the end of object [0x%x,0x%x)"
              addr (addr + width) o.o_lo o.o_hi)
         ~dedup:(Printf.sprintf "s:%s:0x%x" op o.o_lo));
  note_access t ~meta:false ~op ~addr ~width ~access

let audit_checked t ~op ~addr ~width ~access =
  enter t;
  meta_read_of_check t addr;
  note_access t ~meta:false ~op ~addr ~width ~access

let record_check o lo hi access =
  let e = (lo, hi, access) in
  if not (List.mem e o.o_checks) then o.o_checks <- e :: o.o_checks

let audit_check_range t ~addr ~len ~access =
  enter t;
  if len > 0 then begin
    meta_read_of_check t addr;
    match lookup t addr with
    | None ->
      report t Finding.Check_oob ~op:"check_range" ~addr ~width:len
        ~detail:"check_range on no live object"
        ~dedup:(Printf.sprintf "c:none:0x%x" (addr asr 12))
    | Some o ->
      if addr + len > o.o_hi then
        report t Finding.Check_oob ~op:"check_range" ~addr ~width:len
          ~detail:
            (Printf.sprintf
               "claimed extent [0x%x,0x%x) exceeds object [0x%x,0x%x)" addr
               (addr + len) o.o_lo o.o_hi)
          ~dedup:(Printf.sprintf "c:0x%x" o.o_lo)
      else record_check o addr (addr + len) access
  end

let pending_cap = 16

let audit_libc_check t ~addr ~len ~access =
  enter t;
  if len > 0 then begin
    meta_read_of_check t addr;
    (match lookup t addr with
     | None ->
       report t Finding.Check_oob ~op:"libc_check" ~addr ~width:len
         ~detail:"libc_check on no live object"
         ~dedup:(Printf.sprintf "lc:none:0x%x" (addr asr 12))
     | Some o ->
       if addr + len > o.o_hi then
         report t Finding.Check_oob ~op:"libc_check" ~addr ~width:len
           ~detail:
             (Printf.sprintf
                "wrapper-checked extent [0x%x,0x%x) exceeds object [0x%x,0x%x)"
                addr (addr + len) o.o_lo o.o_hi)
           ~dedup:(Printf.sprintf "lc:0x%x" o.o_lo));
    let p = (addr, len, access) :: t.pending in
    t.pending <- (if List.length p > pending_cap then List.filteri (fun i _ -> i < pending_cap) p else p)
  end

let audit_libc_touch t ~fn ~addr ~len ~access =
  enter t;
  if len > 0 then begin
    let rec take acc = function
      | [] -> (None, List.rev acc)
      | (a, l, ac) :: rest when a = addr && ac = access ->
        (Some l, List.rev_append acc rest)
      | e :: rest -> take (e :: acc) rest
    in
    let matched, rest = take [] t.pending in
    t.pending <- rest;
    (match matched with
     | None ->
       report t Finding.Libc_unchecked ~op:fn ~addr ~width:len
         ~detail:
           (Printf.sprintf "raw libc %s of %d byte(s) with no matching libc_check"
              (match access with Read -> "read" | Write -> "write")
              len)
         ~dedup:(Printf.sprintf "lu:%s:0x%x" fn (addr asr 12))
     | Some clen when clen <> len ->
       report t Finding.Libc_mismatch ~op:fn ~addr ~width:len
         ~detail:
           (Printf.sprintf
              "libc_check declared %d byte(s) but the body touches %d" clen len)
         ~dedup:(Printf.sprintf "lm:%s" fn)
     | Some _ -> ());
    note_access t ~meta:false ~op:fn ~addr ~width:len ~access
  end

(* ---------- the wrapper ---------- *)

let unhook () = Sb_mt.Mt.set_region_tracer None

(** [wrap inner] returns the audited scheme and the auditor handle.
    Installs this domain's {!Sb_mt.Mt.set_region_tracer}; call
    {!unhook} (or wrap the next scheme) when done. [track_races]
    enables the happens-before shadow (leave it off for single-threaded
    sweeps: without parallel regions it can find nothing and costs
    host time). *)
let wrap ?(track_races = true) ?(max_findings = 200) (inner : Scheme.t) :
  Scheme.t * t =
  let nthreads = (Memsys.cfg inner.Scheme.ms).Config.max_threads in
  let t =
    {
      inner;
      tel = Memsys.telemetry inner.Scheme.ms;
      track_races;
      max_findings;
      model = model_of_name inner.Scheme.name;
      nthreads;
      vc = Array.init nthreads (fun _ -> Array.make nthreads 0);
      region_n = 0;
      objects = Imap.empty;
      frames = [];
      pending = [];
      findings_rev = [];
      n_stored = 0;
      total = 0;
      counts = Hashtbl.create 8;
      seen = Hashtbl.create 64;
      data_shadow = Hashtbl.create 1024;
      meta_shadow = Hashtbl.create 64;
      ops = 0;
    }
  in
  Sb_mt.Mt.set_region_tracer (Some (fun n -> fork t n));
  let addr_of = inner.Scheme.addr_of in
  (* MPX spills/fills bounds through a bounds-table entry keyed by the
     pointer slot — a disjoint metadata access that is NOT atomic with
     the data access (§4.1). *)
  let mpx_meta ~op slot access =
    if t.model = Mpx_bt then
      note_access t ~meta:true ~op ~addr:slot ~width:8 ~access
  in
  let s =
    {
      inner with
      Scheme.malloc =
        (fun size ->
           enter t;
           let p = inner.Scheme.malloc size in
           on_alloc t (addr_of p) size;
           p);
      calloc =
        (fun n size ->
           enter t;
           let p = inner.Scheme.calloc n size in
           on_alloc t (addr_of p) (n * size);
           p);
      realloc =
        (fun p size ->
           enter t;
           let old = addr_of p in
           let q = inner.Scheme.realloc p size in
           kill_at t old;
           on_alloc t (addr_of q) size;
           q);
      free =
        (fun p ->
           enter t;
           let a = addr_of p in
           inner.Scheme.free p;
           kill_at t a);
      global =
        (fun size ->
           enter t;
           let p = inner.Scheme.global size in
           on_alloc t (addr_of p) size;
           p);
      stack_push =
        (fun () ->
           enter t;
           let tok = inner.Scheme.stack_push () in
           t.frames <- (tok, ref []) :: t.frames;
           tok);
      stack_alloc =
        (fun size ->
           enter t;
           let p = inner.Scheme.stack_alloc size in
           let a = addr_of p in
           on_alloc t a size;
           (match t.frames with
            | (_, objs) :: _ -> objs := a :: !objs
            | [] -> ());
           p);
      stack_pop =
        (fun tok ->
           enter t;
           inner.Scheme.stack_pop tok;
           let rec pop = function
             | (tk, objs) :: rest ->
               List.iter (kill_at t) !objs;
               if tk = tok then rest else pop rest
             | [] -> []
           in
           t.frames <- pop t.frames);
      load =
        (fun p width ->
           audit_checked t ~op:"load" ~addr:(addr_of p) ~width ~access:Read;
           inner.Scheme.load p width);
      store =
        (fun p width v ->
           audit_checked t ~op:"store" ~addr:(addr_of p) ~width ~access:Write;
           inner.Scheme.store p width v);
      safe_load =
        (fun p width ->
           audit_safe t ~op:"safe_load" ~addr:(addr_of p) ~width ~access:Read;
           inner.Scheme.safe_load p width);
      safe_store =
        (fun p width v ->
           audit_safe t ~op:"safe_store" ~addr:(addr_of p) ~width ~access:Write;
           inner.Scheme.safe_store p width v);
      check_range =
        (fun p len access ->
           audit_check_range t ~addr:(addr_of p) ~len ~access;
           inner.Scheme.check_range p len access);
      load_unchecked =
        (fun p width ->
           audit_unchecked t ~op:"load_unchecked" ~addr:(addr_of p) ~width
             ~access:Read;
           inner.Scheme.load_unchecked p width);
      store_unchecked =
        (fun p width v ->
           audit_unchecked t ~op:"store_unchecked" ~addr:(addr_of p) ~width
             ~access:Write;
           inner.Scheme.store_unchecked p width v);
      load_ptr =
        (fun p ->
           let a = addr_of p in
           audit_checked t ~op:"load_ptr" ~addr:a ~width:8 ~access:Read;
           mpx_meta ~op:"load_ptr" a Read;
           inner.Scheme.load_ptr p);
      store_ptr =
        (fun p q ->
           let a = addr_of p in
           audit_checked t ~op:"store_ptr" ~addr:a ~width:8 ~access:Write;
           mpx_meta ~op:"store_ptr" a Write;
           inner.Scheme.store_ptr p q);
      load_ptr_unchecked =
        (fun p ->
           let a = addr_of p in
           audit_unchecked t ~op:"load_ptr_unchecked" ~addr:a ~width:8
             ~access:Read;
           mpx_meta ~op:"load_ptr_unchecked" a Read;
           inner.Scheme.load_ptr_unchecked p);
      store_ptr_unchecked =
        (fun p q ->
           let a = addr_of p in
           audit_unchecked t ~op:"store_ptr_unchecked" ~addr:a ~width:8
             ~access:Write;
           mpx_meta ~op:"store_ptr_unchecked" a Write;
           inner.Scheme.store_ptr_unchecked p q);
      libc_check =
        (fun p len access ->
           audit_libc_check t ~addr:(addr_of p) ~len ~access;
           inner.Scheme.libc_check p len access);
      libc_touch =
        (fun fn p len access ->
           audit_libc_touch t ~fn ~addr:(addr_of p) ~len ~access;
           inner.Scheme.libc_touch fn p len access);
    }
  in
  (s, t)
