(** SARIF 2.1.0 writer over the unified {!Finding} schema and the
    optimizer's certificate failures.

    One run, one driver ("sgxbounds-analyze"), one rule per finding kind
    plus [optimizer-cert] for {!Optimizer} certificate verification
    failures. A cell has no source file — workloads are simulated — so
    locations carry a stable [sim://workload/scheme] artifact URI and a
    logical location naming the cell. The emitted document is fully
    deterministic (fixed rule table, results in input order), which the
    golden test pins byte-for-byte. *)

module Json = Sb_telemetry.Json

type result = {
  sr_rule : string;
  sr_level : string;  (** "error" | "warning" | "note" *)
  sr_message : string;
  sr_uri : string;    (** cell URI, e.g. [sim://kmeans/sgxbounds] *)
}

let cell_uri ~workload ~scheme = Printf.sprintf "sim://%s/%s" workload scheme

let of_finding ~workload ~scheme (f : Finding.t) =
  {
    sr_rule = Finding.kind_name f.Finding.kind;
    sr_level = "error";
    sr_message = Fmt.str "%a" Finding.pp f;
    sr_uri = cell_uri ~workload ~scheme;
  }

let of_cert_failure ~workload ~scheme detail =
  {
    sr_rule = "optimizer-cert";
    sr_level = "error";
    sr_message = detail;
    sr_uri = cell_uri ~workload ~scheme;
  }

(** The fixed rule table: every finding kind both auditors can emit,
    plus the optimizer's certificate-failure rule. *)
let rule_ids = List.map Finding.kind_name Finding.all_kinds @ [ "optimizer-cert" ]

let json_of_rule id =
  Json.Obj
    [ ("id", Json.Str id); ("shortDescription", Json.Obj [ ("text", Json.Str id) ]) ]

let json_of_result r =
  Json.Obj
    [
      ("ruleId", Json.Str r.sr_rule);
      ("level", Json.Str r.sr_level);
      ("message", Json.Obj [ ("text", Json.Str r.sr_message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    [
                      ( "artifactLocation",
                        Json.Obj [ ("uri", Json.Str r.sr_uri) ] );
                    ] );
                ( "logicalLocations",
                  Json.List
                    [ Json.Obj [ ("fullyQualifiedName", Json.Str r.sr_uri) ] ] );
              ];
          ] );
    ]

let document ?(tool = "sgxbounds-analyze") ?(tool_version = "1.0.0") results : Json.t =
  Json.Obj
    [
      ("$schema", Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str tool);
                            ("version", Json.Str tool_version);
                            ( "informationUri",
                              Json.Str "https://github.com/tudinfse/sgxbounds" );
                            ("rules", Json.List (List.map json_of_rule rule_ids));
                          ] );
                    ] );
                ("results", Json.List (List.map json_of_result results));
              ];
          ] );
    ]

let to_string results = Json.to_string (document results)
