(** Ground truth for the fuzzer: a trivial model of every object's exact
    bounds and liveness, independent of any protection scheme.

    [analyze] walks a trace once and produces a {!plan}:

    - a {b disposition} per event — [Skip] for events that do not apply
      to the current slot state (so any event subsequence is a
      well-formed trace; see {!Trace}), or [Exec] with the exact byte
      ranges the event will touch, labelled with the object's size,
      Baggy block size, liveness and access family;
    - [first_unsafe], the index of the first event touching any unsafe
      range. Replays of the same plan are byte-identical across schemes
      {e up to} this point; beyond it the application is corrupt and
      only per-scheme invariants apply;
    - per-event {b comparability masks} for the values the replay reads:
      a read is comparable across schemes only while the trace is still
      safe and the bytes are {e defined} — written since allocation
      (calloc/Store/Memcpy/Strcpy), not realloc slack or stale reuse,
      whose contents legitimately differ between allocator layouts.

    The replay ({!Replay}) executes dispositions verbatim and never
    consults slot state itself, so oracle and replay cannot disagree on
    which events run. *)

type verdict = Safe | Overflow | Use_after_free

(** How the access reaches memory — decides which schemes' contracts
    apply ({!Contract}). [Safe_access] models compiler-proven-in-bounds
    accesses: no scheme owes a detection there. *)
type kind = Direct | Safe_access | Hoisted | Libc

type range = {
  r_off : int;    (** byte offset from object base *)
  r_len : int;
  r_size : int;   (** exact object size at event time *)
  r_block : int;  (** Baggy buddy block covering the object *)
  r_kind : kind;
  r_freed : bool; (** object was freed (and not reallocated) *)
}

let spatial_bad r = r.r_off < 0 || r.r_off + r.r_len > r.r_size

let range_verdict r =
  if r.r_freed then Use_after_free
  else if spatial_bad r then Overflow
  else Safe

let is_bad r = range_verdict r <> Safe

type exec = {
  x_ranges : range list;
  x_strcpy_n : int;        (** chars the strcpy will copy; -1 otherwise *)
  x_compare : bool array;  (** per value read by the replay, in order *)
}

type disposition = Skip | Exec of exec

type plan = {
  p_slots : int;
  p_dispositions : disposition array;
  p_first_unsafe : int option;
}

(** Oracle label for event [i], for reporting. *)
let event_label plan i =
  match plan.p_dispositions.(i) with
  | Skip -> "skip"
  | Exec x ->
    let worst =
      List.fold_left
        (fun acc r ->
           match (acc, range_verdict r) with
           | (Use_after_free, _) | (_, Use_after_free) -> Use_after_free
           | (Overflow, _) | (_, Overflow) -> Overflow
           | (Safe, Safe) -> Safe)
        Safe x.x_ranges
    in
    (match worst with
     | Safe -> "safe"
     | Overflow -> "overflow"
     | Use_after_free -> "use-after-free")

(* ------------------------------------------------------------------ *)

type obj = {
  o_size : int;
  o_region : Trace.region;
  o_block : int;
  o_def : Bytes.t; (* '\001' = byte written since allocation *)
}

type slot = Empty | Live of obj | Freed of obj

(* Baggy pads every object to a power-of-two buddy block of >= 16 bytes
   (its size-table granule); the block size decides its allocation-bounds
   tolerance. *)
let block_of size = Sb_machine.Util.next_pow2 (max size 16)

let slot_count (trace : Trace.t) =
  let id = function
    | Trace.Alloc { id; _ } | Free { id } | Realloc { id; size = _ }
    | Load { id; _ } | Store { id; _ } | Range_loop { id; _ } -> id
    | Memcpy { dst; src; _ } | Strcpy { dst; src; _ } -> max dst src
    | Yield -> 0
  in
  Array.fold_left (fun m e -> max m (id e + 1)) 1 trace

(* The deterministic byte pattern Strcpy plants at src (replay uses the
   same one). Never 0, so the terminator lands exactly at [n]. *)
let plant_byte i = 0x41 + (i mod 26)

let analyze ?slots (trace : Trace.t) : plan =
  let nslots = match slots with Some n -> n | None -> slot_count trace in
  let st = Array.make nslots Empty in
  let first_unsafe = ref None in
  let mk_obj size region =
    { o_size = size; o_region = region; o_block = block_of size; o_def = Bytes.make size '\001' }
  in
  let range ?(kind = Direct) o freed off len =
    { r_off = off; r_len = len; r_size = o.o_size; r_block = o.o_block; r_kind = kind;
      r_freed = freed }
  in
  let in_bounds o off len = off >= 0 && len >= 0 && off + len <= o.o_size in
  let defined o off len =
    let rec go i = i >= len || (Bytes.get o.o_def (off + i) = '\001' && go (i + 1)) in
    in_bounds o off len && go 0
  in
  let define o off len =
    if in_bounds o off len then Bytes.fill o.o_def off len '\001'
  in
  let get id = if id >= 0 && id < nslots then st.(id) else Empty in
  let exec ?(strcpy_n = -1) ?(compare = [||]) ranges =
    Exec { x_ranges = ranges; x_strcpy_n = strcpy_n; x_compare = compare }
  in
  let dispose ev =
    let safe_so_far = !first_unsafe = None in
    match ev with
    | Trace.Yield -> exec []
    | Trace.Alloc { id; size; region } -> (
        if size < 1 then Skip
        else
          match get id with
          | Live _ -> Skip (* would leak the old object's identity *)
          | Empty | Freed _ ->
            (* Heap comes from calloc; the replay raw-zeroes global and
               stack blocks so contents match across allocators. Either
               way every byte is defined zero. *)
            st.(id) <- Live (mk_obj size region);
            exec [])
    | Trace.Free { id } -> (
        match get id with
        | Live o when o.o_region = Trace.Heap ->
          st.(id) <- Freed o;
          exec []
        | _ -> Skip (* double free / free of global-stack: UB the schemes
                       legitimately disagree on, so never replayed *))
    | Trace.Realloc { id; size } -> (
        match get id with
        | Live o when o.o_region = Trace.Heap && size >= 1 ->
          let o' = mk_obj size Trace.Heap in
          Bytes.fill o'.o_def 0 size '\000';
          let keep = min o.o_size size in
          Bytes.blit o.o_def 0 o'.o_def 0 keep;
          st.(id) <- Live o';
          exec []
        | _ -> Skip)
    | Trace.Load { id; off; width; safe } -> (
        match get id with
        | Empty -> Skip
        | Live o | Freed o ->
          let freed = get id |> function Freed _ -> true | _ -> false in
          let kind = if safe then Safe_access else Direct in
          let r = range ~kind o freed off width in
          let comparable = safe_so_far && (not freed) && defined o off width in
          exec ~compare:[| comparable |] [ r ])
    | Trace.Store { id; off; width; value = _; safe } -> (
        match get id with
        | Empty -> Skip
        | Live o | Freed o ->
          let freed = get id |> function Freed _ -> true | _ -> false in
          let kind = if safe then Safe_access else Direct in
          let r = range ~kind o freed off width in
          if safe_so_far && (not freed) && not (is_bad r) then define o off width;
          exec [ r ])
    | Trace.Range_loop { id; off; len } -> (
        match get id with
        | Empty -> Skip
        | Live o | Freed o ->
          let freed = get id |> function Freed _ -> true | _ -> false in
          if len <= 0 then exec []
          else
            let r = range ~kind:Hoisted o freed off len in
            let compare =
              Array.init len (fun j ->
                  safe_so_far && (not freed) && defined o (off + j) 1)
            in
            exec ~compare [ r ])
    | Trace.Memcpy { dst; dst_off; src; src_off; len } -> (
        match (get dst, get src) with
        | (Empty, _) | (_, Empty) -> Skip
        | (dslot, sslot) ->
          if len < 0 then Skip
          else if len = 0 then exec [] (* wrappers don't even check *)
          else
            let dobj = (match dslot with Live o | Freed o -> o | Empty -> assert false) in
            let sobj = (match sslot with Live o | Freed o -> o | Empty -> assert false) in
            let dfreed = (match dslot with Freed _ -> true | _ -> false) in
            let sfreed = (match sslot with Freed _ -> true | _ -> false) in
            let rs = range ~kind:Libc sobj sfreed src_off len in
            let rd = range ~kind:Libc dobj dfreed dst_off len in
            if safe_so_far && (not (is_bad rs)) && not (is_bad rd) then
              for j = 0 to len - 1 do
                let d = Bytes.get sobj.o_def (src_off + j) in
                Bytes.set dobj.o_def (dst_off + j) d
              done;
            exec [ rs; rd ])
    | Trace.Strcpy { dst; src; len } -> (
        match (get dst, get src) with
        | (dslot, Live sobj) -> (
            match dslot with
            | Empty -> Skip
            | Live dobj | Freed dobj ->
              if len < 0 then Skip
              else begin
                (* Planting writes [n] bytes + NUL raw at src's base; the
                   copy length is discovered from that terminator. The
                   plant must stay inside the live src so it cannot
                   corrupt unrelated objects under any layout. *)
                let n = min len (sobj.o_size - 1) in
                let dfreed = (match dslot with Freed _ -> true | _ -> false) in
                let rs = range ~kind:Libc sobj false 0 (n + 1) in
                let rd = range ~kind:Libc dobj dfreed 0 (n + 1) in
                define sobj 0 (n + 1);
                if safe_so_far && not (is_bad rd) then define dobj 0 (n + 1);
                exec ~strcpy_n:n [ rs; rd ]
              end)
        | _ -> Skip (* src must be live: planting into freed memory could
                       scribble over whatever reused the chunk *))
  in
  let dispositions =
    Array.mapi
      (fun i ev ->
         let d = dispose ev in
         (match d with
          | Exec x when List.exists is_bad x.x_ranges ->
            if !first_unsafe = None then first_unsafe := Some i
          | _ -> ());
         d)
      trace
  in
  (* From the first unsafe event on, schemes legitimately stop at
     different points within an event and memory contents diverge, so no
     read value is comparable across schemes any more (the event at the
     index included: a stopping scheme logs fewer of its reads). *)
  (match !first_unsafe with
   | None -> ()
   | Some u ->
     for i = u to Array.length dispositions - 1 do
       match dispositions.(i) with
       | Skip -> ()
       | Exec x -> Array.fill x.x_compare 0 (Array.length x.x_compare) false
     done);
  { p_slots = nslots; p_dispositions = dispositions; p_first_unsafe = !first_unsafe }
