(** Random memory-access traces for the differential fuzzer.

    A trace is a flat list of allocator and access events over a fixed
    number of object {i slots}. Events name objects by slot id, never by
    address, so the same trace replays against any protection scheme and
    any allocator layout. Offsets are relative to the object base;
    deliberately out-of-bounds offsets are how the generator plants
    violations for the oracle ({!Oracle}) to label.

    Any event array is a valid trace: events that do not apply to the
    current slot state (access to a never-allocated slot, free of a
    non-live slot, ...) are marked [Skip] by the oracle and not replayed.
    That closure under taking subsequences is what makes greedy trace
    shrinking sound ({!Fuzz.shrink}). *)

type region = Heap | Global | Stack

type event =
  | Alloc of { id : int; size : int; region : region }
  | Free of { id : int }                      (* heap only *)
  | Realloc of { id : int; size : int }       (* heap only *)
  | Load of { id : int; off : int; width : int; safe : bool }
  | Store of { id : int; off : int; width : int; value : int; safe : bool }
      (** [safe]: replay through [safe_load]/[safe_store] — the
          compiler-proven-in-bounds family whose checks §4.4 schemes
          elide. The generator only marks oracle-safe accesses safe. *)
  | Memcpy of { dst : int; dst_off : int; src : int; src_off : int; len : int }
  | Strcpy of { dst : int; src : int; len : int }
      (** Plant a [len]-byte string (plus NUL) at [src]'s base, then
          [Simlibc.strcpy] it to [dst] — the classic overflow primitive:
          the copied length comes from the terminator, not the caller. *)
  | Range_loop of { id : int; off : int; len : int }
      (** [check_range] once, then [len] one-byte unchecked loads —
          the hoisted-check loop pattern of §4.4. *)
  | Yield  (* switch simulated threads *)

type t = event array

let region_name = function Heap -> "heap" | Global -> "global" | Stack -> "stack"

let pp_event ppf = function
  | Alloc { id; size; region } ->
    Format.fprintf ppf "alloc #%d %db %s" id size (region_name region)
  | Free { id } -> Format.fprintf ppf "free #%d" id
  | Realloc { id; size } -> Format.fprintf ppf "realloc #%d %db" id size
  | Load { id; off; width; safe } ->
    Format.fprintf ppf "%s #%d[%d] w%d" (if safe then "safe-load" else "load") id off width
  | Store { id; off; width; value; safe } ->
    Format.fprintf ppf "%s #%d[%d] w%d <- %#x"
      (if safe then "safe-store" else "store") id off width value
  | Memcpy { dst; dst_off; src; src_off; len } ->
    Format.fprintf ppf "memcpy #%d[%d] <- #%d[%d] %db" dst dst_off src src_off len
  | Strcpy { dst; src; len } -> Format.fprintf ppf "strcpy #%d <- #%d (%d chars)" dst src len
  | Range_loop { id; off; len } -> Format.fprintf ppf "range-loop #%d[%d..+%d]" id off len
  | Yield -> Format.fprintf ppf "yield"

let pp ppf (t : t) =
  Array.iteri (fun i ev -> Format.fprintf ppf "%3d: %a@." i pp_event ev) t

let to_string (t : t) = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Generation *)

module Rng = Sb_machine.Rng

type params = {
  slots : int;      (** object slots available to the trace *)
  max_size : int;   (** largest object, bytes *)
  max_events : int;
  p_bad : float;    (** fraction of traces that contain deliberate violations *)
}

let default_params = { slots = 8; max_size = 160; max_events = 40; p_bad = 0.5 }

let widths = [| 1; 2; 4; 8 |]

(* Deliberately-bad offset for an object of [size], to be accessed with
   [width] bytes. Kept within +-2 KiB of the object so a wild access can
   stray into neighbouring mappings (or an unmapped hole) but never as
   far as a scheme's own metadata arenas — corrupting those would make
   post-violation behaviour layout-dependent rather than a modelled
   miss. *)
let bad_off rng size width =
  match Rng.int rng 4 with
  | 0 -> size - width + 1 + Rng.int rng 8 (* just past the end *)
  | 1 -> -(1 + Rng.int rng 8)             (* just before the start *)
  | 2 -> size + 16 + Rng.int rng 64       (* past any redzone/padding *)
  | _ ->
    let m = 256 + Rng.int rng 1792 in
    if Rng.bernoulli rng 0.3 then -m else size + m

(* The generator mirrors the slot state machine of the oracle just
   closely enough to (almost) always emit applicable events; the oracle
   stays the single authority on which events actually execute. *)
type gslot = Gempty | Glive of int * region | Gfreed of int

let generate ?(params = default_params) rng : t =
  let st = Array.make params.slots Gempty in
  let ids pred =
    let r = ref [] in
    Array.iteri (fun i s -> if pred s then r := i :: !r) st;
    !r
  in
  let pick_id pred = match ids pred with [] -> None | l -> Some (List.nth l (Rng.int rng (List.length l))) in
  let live = function Glive _ -> true | _ -> false in
  let live_heap = function Glive (_, Heap) -> true | _ -> false in
  let size_of id = match st.(id) with Glive (s, _) | Gfreed s -> s | Gempty -> 0 in
  let bad_trace = Rng.bernoulli rng params.p_bad in
  let n_events = Rng.range rng (params.max_events / 4) params.max_events in
  let out = ref [] in
  let emit e = out := e :: !out in
  let fresh_size () = 1 + Rng.int rng params.max_size in
  let alloc () =
    match pick_id (fun s -> s = Gempty) with
    | None -> ()
    | Some id ->
      let region =
        match Rng.int rng 4 with 0 -> Global | 1 -> Stack | _ -> Heap
      in
      let size = fresh_size () in
      st.(id) <- Glive (size, region);
      emit (Alloc { id; size; region })
  in
  let access () =
    (* Sometimes target a dangling pointer in bad traces. *)
    let target =
      if bad_trace && Rng.bernoulli rng 0.2 then
        match pick_id (function Gfreed _ -> true | _ -> false) with
        | Some id -> Some id
        | None -> pick_id live
      else pick_id live
    in
    match target with
    | None -> alloc ()
    | Some id ->
      let size = size_of id in
      let width = Rng.pick rng widths in
      let uaf = not (live st.(id)) in
      let spatial = (not uaf) && bad_trace && Rng.bernoulli rng 0.25 in
      let width = if spatial || size >= width then width else 1 in
      let off =
        if spatial then bad_off rng size width
        else Rng.int rng (size - width + 1) (* in-bounds (of a live or freed object) *)
      in
      let safe = (not spatial) && (not uaf) && Rng.bernoulli rng 0.25 in
      if Rng.bernoulli rng 0.5 then emit (Load { id; off; width; safe })
      else
        emit (Store { id; off; width; value = Rng.int rng 0xFFFF; safe })
  in
  let memcpy () =
    match (pick_id live, pick_id live) with
    | Some src, Some dst ->
      let ss = size_of src and ds = size_of dst in
      let src_off = Rng.int rng ss and dst_off = Rng.int rng ds in
      let len =
        if bad_trace && Rng.bernoulli rng 0.3 then 1 + Rng.int rng (ss + 32)
        else max 1 (min (ss - src_off) (ds - dst_off))
      in
      emit (Memcpy { dst; dst_off; src; src_off; len })
    | _ -> alloc ()
  in
  let strcpy () =
    match (pick_id live, pick_id live) with
    | Some src, Some dst ->
      let ss = size_of src and ds = size_of dst in
      let len =
        if bad_trace && Rng.bernoulli rng 0.4 then Rng.int rng ss
        else min (Rng.int rng ss) (max 0 (ds - 1))
      in
      emit (Strcpy { dst; src; len })
    | _ -> alloc ()
  in
  let range_loop () =
    match pick_id live with
    | None -> alloc ()
    | Some id ->
      let size = size_of id in
      let bad = bad_trace && Rng.bernoulli rng 0.3 in
      let off, len =
        if bad then
          let off = Rng.int rng size in
          (off, size - off + 1 + Rng.int rng 24)
        else
          let off = Rng.int rng size in
          (off, 1 + Rng.int rng (size - off))
      in
      emit (Range_loop { id; off; len })
  in
  for _ = 1 to n_events do
    if ids live = [] then alloc ()
    else
      match Rng.int rng 100 with
      | n when n < 20 -> alloc ()
      | n when n < 30 -> (
          match pick_id live_heap with
          | Some id -> st.(id) <- Gfreed (size_of id); emit (Free { id })
          | None -> access ())
      | n when n < 36 -> (
          match pick_id live_heap with
          | Some id ->
            let size = fresh_size () in
            st.(id) <- Glive (size, Heap);
            emit (Realloc { id; size })
          | None -> access ())
      | n when n < 78 -> access ()
      | n when n < 86 -> memcpy ()
      | n when n < 92 -> strcpy ()
      | n when n < 97 -> range_loop ()
      | _ -> emit Yield
  done;
  Array.of_list (List.rev !out)
