(** Replay a trace through one protection scheme on a fresh machine,
    following an oracle {!Oracle.plan} verbatim.

    The replay records everything observable: where (and whether) the
    scheme stopped, every value its instrumented loads returned, the
    machine's simulated cycle/instruction/memory counters and the
    scheme's own check counters. Two runs of the same (trace, plan,
    scheme) under the two memory engines must produce structurally equal
    records — that is the fuzzer's first invariant.

    Machines are retired after each run ({!Sb_sgx.Memsys.retire}), so a
    campaign of thousands of replays recycles the multi-megabyte page
    arrays instead of re-zeroing them. *)

module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
open Sb_protection.Types

type stop = {
  at : int;           (** event index *)
  violation : bool;   (** detected violation vs. crash (fault/oom/...) *)
  detail : string;
}

type run = {
  stop : stop option;
  reads : int array array; (** per event, values its loads returned *)
  cycles : int;
  instrs : int;
  mem_accesses : int;
  llc_misses : int;
  epc_faults : int;
  checks_done : int;
  checks_elided : int;
  checks_hoisted : int;
  violations_counted : int; (** [extras.violations]: boundless counts *)
  boundless_accesses : int;
}

let pp_stop ppf (s : stop) =
  Format.fprintf ppf "event %d: %s (%s)" s.at
    (if s.violation then "violation" else "crash")
    s.detail

exception Stopped

let run ~maker ~(plan : Oracle.plan) (trace : Trace.t) : run =
  let n = Array.length trace in
  let ms = Memsys.create (Sb_machine.Config.default ()) in
  let s : Scheme.t = maker ms in
  let vm = Memsys.vmem ms in
  let slots : ptr option array = Array.make plan.p_slots None in
  let reads = Array.make n [||] in
  let stop = ref None in
  let tid = ref 0 in
  (* Raw zero-fill, uncosted and uninstrumented: makes global/stack
     blocks (which some allocators recycle without clearing) identical
     across schemes, like calloc does for the heap. *)
  let raw_zero addr len =
    for i = 0 to len - 1 do
      Vmem.store vm ~addr:(addr + i) ~width:1 0
    done
  in
  (* The plan only marks events Exec when the oracle saw the slot
     allocated, so a missing pointer is a harness bug, not a trace
     property — surface it as a loud stop, never silently. *)
  let ptr_of id =
    match slots.(id) with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Replay: slot #%d used before alloc" id)
  in
  let exec_event i (x : Oracle.exec) ev =
    let log = ref [] in
    let record v = log := v :: !log in
    (match ev with
     | Trace.Yield ->
       tid := 1 - !tid;
       Memsys.set_thread ms !tid
     | Trace.Alloc { id; size; region } ->
       let p =
         match region with
         | Trace.Heap -> s.Scheme.calloc 1 size
         | Trace.Global ->
           let p = s.Scheme.global size in
           raw_zero (s.Scheme.addr_of p) size;
           p
         | Trace.Stack ->
           let p = s.Scheme.stack_alloc size in
           raw_zero (s.Scheme.addr_of p) size;
           p
       in
       slots.(id) <- Some p
     | Trace.Free { id } -> s.Scheme.free (ptr_of id)
     | Trace.Realloc { id; size } -> slots.(id) <- Some (s.Scheme.realloc (ptr_of id) size)
     | Trace.Load { id; off; width; safe } ->
       let p = s.Scheme.offset (ptr_of id) off in
       let v = if safe then s.Scheme.safe_load p width else s.Scheme.load p width in
       record v
     | Trace.Store { id; off; width; value; safe } ->
       let p = s.Scheme.offset (ptr_of id) off in
       if safe then s.Scheme.safe_store p width value else s.Scheme.store p width value
     | Trace.Range_loop { id; off; len } ->
       let p0 = s.Scheme.offset (ptr_of id) off in
       s.Scheme.check_range p0 len Read;
       for j = 0 to len - 1 do
         record (s.Scheme.load_unchecked (s.Scheme.offset p0 j) 1)
       done
     | Trace.Memcpy { dst; dst_off; src; src_off; len } ->
       let psrc = s.Scheme.offset (ptr_of src) src_off in
       let pdst = s.Scheme.offset (ptr_of dst) dst_off in
       Sb_libc.Simlibc.memcpy s ~dst:pdst ~src:psrc ~len
     | Trace.Strcpy { dst; src; len = _ } ->
       let psrc = ptr_of src and pdst = ptr_of dst in
       let n = x.Oracle.x_strcpy_n in
       let a = s.Scheme.addr_of psrc in
       for j = 0 to n - 1 do
         Vmem.store vm ~addr:(a + j) ~width:1 (Oracle.plant_byte j)
       done;
       Vmem.store vm ~addr:(a + n) ~width:1 0;
       ignore (Sb_libc.Simlibc.strcpy s ~dst:pdst ~src:psrc : int));
    reads.(i) <- Array.of_list (List.rev !log)
  in
  (try
     for i = 0 to n - 1 do
       match plan.p_dispositions.(i) with
       | Oracle.Skip -> ()
       | Oracle.Exec x -> (
           try exec_event i x trace.(i) with
           | Violation v ->
             stop := Some { at = i; violation = true;
                            detail = Printf.sprintf "%s: %s @%#x" v.scheme v.reason v.addr };
             raise Stopped
           | Vmem.Fault { addr; kind } ->
             let k = match kind with
               | Vmem.Unmapped -> "unmapped"
               | Vmem.Guard_hit -> "guard"
               | Vmem.Write_to_ro -> "read-only"
             in
             stop := Some { at = i; violation = false;
                            detail = Printf.sprintf "fault (%s) @%#x" k addr };
             raise Stopped
           | Vmem.Enclave_oom _ ->
             stop := Some { at = i; violation = false; detail = "enclave OOM" };
             raise Stopped
           | App_crash msg ->
             stop := Some { at = i; violation = false; detail = "app crash: " ^ msg };
             raise Stopped
           | Invalid_argument msg | Failure msg ->
             stop := Some { at = i; violation = false; detail = "internal: " ^ msg };
             raise Stopped)
     done
   with Stopped -> ());
  let snap = Memsys.snapshot ms in
  let r =
    {
      stop = !stop;
      reads;
      cycles = snap.Memsys.cycles;
      instrs = snap.Memsys.instrs;
      mem_accesses = snap.Memsys.mem_accesses;
      llc_misses = snap.Memsys.llc_misses;
      epc_faults = snap.Memsys.epc_faults;
      checks_done = s.Scheme.extras.checks_done;
      checks_elided = s.Scheme.extras.checks_elided;
      checks_hoisted = s.Scheme.extras.checks_hoisted;
      violations_counted = s.Scheme.extras.violations;
      boundless_accesses =
        s.Scheme.extras.boundless_reads + s.Scheme.extras.boundless_writes;
    }
  in
  Memsys.retire ms;
  r

(** [run] with the memory engine pinned to [kind] for every component
    the replay creates — the fuzzer's tri-engine oracle replays each
    (trace, plan, scheme) under naive, fast and trace and demands
    structurally equal records. *)
let run_engine ~kind ~maker ~plan trace =
  Sb_machine.Fastpath.with_kind kind (fun () -> run ~maker ~plan trace)
