(** Per-scheme detection contracts: which oracle-flagged ranges a scheme
    is {e guaranteed} to detect. This is the capability table the
    third fuzz invariant checks against — deliberately the {b minimum}
    each scheme promises, derived from its mechanism, not the best case
    it sometimes achieves:

    - {b native}: promises nothing. (The MMU may still crash a wild
      access; the driver accepts any stop at-or-after the first unsafe
      event from every scheme.)
    - {b sgxbounds} (all variants): any {e upper} overflow,
      [off + len > size], in every access family including libc
      wrappers. The upper bound travels in the pointer's spare tag bits,
      so it survives free and cannot be clobbered by earlier corruption.
      The {e lower} bound lives in the LB footer — in-object data that a
      use-after-free write may have overwritten — so underflow detection
      is real but only best-effort ("may", not "must"). In boundless
      mode violations are counted rather than raised (libc wrappers
      still fail-stop, §3.4).
    - {b asan}: any range intersecting a redzone: [[-16, 0)] or
      [[size, size + 16)] around a live object (the partial-granule
      shadow encoding catches the tail bytes), or anywhere in
      [[-16, size + 16)] of a freed object — quarantine keeps freed
      chunks poisoned for the whole (small) trace. Beyond the redzone
      ASan is blind by design: the access lands on some other valid
      object or crashes.
    - {b mpx}: any spatially bad range through an instrumented access —
      bounds ride in registers, immune to memory corruption and free.
      But the paper's MPX setup has no libc interceptors (§5.3), so
      wrapper traffic is exempt.
    - {b baggy}: allocation-bounds only: a range that starts inside the
      live object's power-of-two buddy block and runs past the block's
      end. Overflows swallowed by the block padding, accesses starting
      outside the block, and freed objects (the size table is zeroed,
      usually detected — but reuse can repopulate it) are best-effort.
      Hoisted loops degrade to per-element checks whose out-of-block
      elements start outside the block, so they are exempt too.

    [Safe_access] ranges (compiler-proven in-bounds, checks elided) are
    exempt everywhere: a trace that violates one has broken the
    compiler's proof, not the scheme. *)

open Oracle

let asan_redzone = 16

(* Does [r] intersect the half-open offset interval [lo, hi)? *)
let intersects r lo hi = r.r_off < hi && r.r_off + r.r_len > lo

(* "sgxbounds-noopt" -> "sgxbounds"; the detection floor is identical
   across optimization variants (§4.4 optimizations never weaken
   checks: elided safe accesses are exempt for everyone, and unchecked
   loop bodies are covered by the hoisted range check or stay checked). *)
let base_scheme = Sb_schemes.Scheme_info.base_scheme

(* The floor is keyed on the capability table's contract row, so variant
   names resolve through the same fallback every consumer uses. *)
let covers ~scheme (r : range) =
  is_bad r && r.r_kind <> Safe_access
  &&
  match Sb_schemes.Scheme_info.contract_of scheme with
  | Sb_schemes.Scheme_info.Contract_none -> false
  | Sb_schemes.Scheme_info.Contract_sgxbounds -> r.r_off + r.r_len > r.r_size
  | Sb_schemes.Scheme_info.Contract_asan ->
    if r.r_freed then intersects r (-asan_redzone) (r.r_size + asan_redzone)
    else
      intersects r (-asan_redzone) 0 || intersects r r.r_size (r.r_size + asan_redzone)
  | Sb_schemes.Scheme_info.Contract_mpx -> r.r_kind <> Libc && spatial_bad r
  | Sb_schemes.Scheme_info.Contract_baggy ->
    (not r.r_freed) && r.r_kind <> Hoisted
    && r.r_off >= 0 && r.r_off < r.r_block
    && r.r_off + r.r_len > r.r_block

(** Index of the first event containing a range [scheme] must detect. *)
let first_covered ~scheme (plan : plan) =
  let n = Array.length plan.p_dispositions in
  let rec go i =
    if i >= n then None
    else
      match plan.p_dispositions.(i) with
      | Exec x when List.exists (fun r -> covers ~scheme r) x.x_ranges -> Some i
      | _ -> go (i + 1)
  in
  go 0
