(** The differential fuzz driver.

    For every generated trace, [check_trace] replays the oracle's plan
    through every scheme under {e all three} memory engines — naive,
    fast, and the superblock-fusing trace engine — and checks three
    invariants:

    + {b Engines agree bit-for-bit}: the fast and trace engines each
      produce a {!Replay.run} record structurally equal to the naive
      engine's — same stop, same read values, same
      cycle/instruction/check counters. Fault-injection traces are the
      sharp edge here: a violation or page fault landing mid-superblock
      must observe exactly the accounting the interpreter would have
      accumulated access by access.
    + {b Zero false positives}: no scheme stops (violation {e or}
      crash) before the oracle's first unsafe event; on an oracle-safe
      trace nothing stops and boundless mode counts zero violations.
    + {b No missed in-contract violations}: if the trace contains a
      range a scheme's {!Contract} covers, that scheme stops at or
      before the first such event (boundless mode may count instead of
      stopping). Stops {e at or after} the first unsafe event are always
      acceptable — post-corruption behaviour is the scheme's business —
      but silence past a covered event is a miss.

    Reads are additionally compared {e across} schemes (against the
    first spec, normally native) wherever the oracle says the bytes are
    defined and the trace still safe — the protection layer must not
    change what correct code computes.

    [campaign] drives seeded generation ({!Trace.generate}), and on
    failure greedily shrinks the trace to a minimal counterexample that
    still fails the same way ([shrink_trace]). Everything is
    deterministic in the seed: per-iteration child seeds split off one
    parent generator, machines are simulated, and no wall clock is
    consulted. *)

module Rng = Sb_machine.Rng
module Scheme = Sb_protection.Scheme

type spec = {
  sp_name : string;
  sp_maker : Sb_sgx.Memsys.t -> Scheme.t;
  sp_counts_only : bool;
      (** boundless mode: detection shows up as counted violations, not
          stops (libc wrappers still stop, §3.4) *)
}

(* One spec per capability-table row; the replay flavour of each maker
   (baggy gets a small buddy region: fuzz traces allocate a few KiB, and
   the region plus its 1/16 size table is mapped eagerly per replay). *)
let default_specs () : spec list =
  List.map
    (fun i ->
       {
         sp_name = i.Sb_schemes.Scheme_info.name;
         sp_maker = i.Sb_schemes.Scheme_info.trace_maker;
         sp_counts_only = i.Sb_schemes.Scheme_info.counts_only;
       })
    Sb_schemes.Scheme_info.all

type failure_kind = Engine_mismatch | False_positive | Missed_violation | Scheme_divergence

let kind_name = function
  | Engine_mismatch -> "engine mismatch"
  | False_positive -> "false positive"
  | Missed_violation -> "missed violation"
  | Scheme_divergence -> "scheme divergence"

type failure = {
  f_scheme : string;
  f_kind : failure_kind;
  f_event : int; (** primary event index; -1 when trace-global *)
  f_detail : string;
}

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s%s: %s" f.f_scheme (kind_name f.f_kind)
    (if f.f_event >= 0 then Printf.sprintf " at event %d" f.f_event else "")
    f.f_detail

let event_str trace i =
  if i >= 0 && i < Array.length trace then Format.asprintf "%a" Trace.pp_event trace.(i)
  else "<none>"

let check_trace ?specs (trace : Trace.t) : failure option =
  let specs = match specs with Some s -> s | None -> default_specs () in
  let plan = Oracle.analyze trace in
  let fail sp_name f_kind f_event f_detail =
    Some { f_scheme = sp_name; f_kind; f_event; f_detail }
  in
  (* Invariant 1: fast == naive and trace == naive, per scheme. *)
  let runs =
    List.map
      (fun sp ->
         let naive =
           Replay.run_engine ~kind:Sb_machine.Fastpath.Naive ~maker:sp.sp_maker ~plan trace
         in
         let fast =
           Replay.run_engine ~kind:Sb_machine.Fastpath.Fast ~maker:sp.sp_maker ~plan trace
         in
         let tr =
           Replay.run_engine ~kind:Sb_machine.Fastpath.Trace ~maker:sp.sp_maker ~plan trace
         in
         (sp, naive, fast, tr))
      specs
  in
  let mismatch_detail name (eng : Replay.run) (naive : Replay.run) =
    if eng.Replay.stop <> naive.Replay.stop then
      Format.asprintf "%s stop %a / naive stop %a" name
        (Format.pp_print_option Replay.pp_stop) eng.Replay.stop
        (Format.pp_print_option Replay.pp_stop) naive.Replay.stop
    else if eng.Replay.reads <> naive.Replay.reads then
      Printf.sprintf "%s read values differ" name
    else
      Printf.sprintf
        "%s counters differ (cycles %d/%d, instrs %d/%d, checks %d/%d)"
        name eng.Replay.cycles naive.Replay.cycles eng.Replay.instrs
        naive.Replay.instrs eng.Replay.checks_done naive.Replay.checks_done
  in
  let engine_mismatch =
    List.find_map
      (fun (sp, naive, fast, tr) ->
         if fast <> naive then
           fail sp.sp_name Engine_mismatch (-1) (mismatch_detail "fast" fast naive)
         else if tr <> naive then
           fail sp.sp_name Engine_mismatch (-1) (mismatch_detail "trace" tr naive)
         else None)
      runs
  in
  match engine_mismatch with
  | Some _ as f -> f
  | None ->
    let fp_bound = match plan.Oracle.p_first_unsafe with None -> max_int | Some u -> u in
    (* Invariant 2: zero false positives before the first unsafe event. *)
    let false_positive =
      List.find_map
        (fun (sp, r, _, _) ->
           match r.Replay.stop with
           | Some st when st.Replay.at < fp_bound ->
             fail sp.sp_name False_positive st.Replay.at
               (Format.asprintf "%a on oracle-%s event (%s)" Replay.pp_stop st
                  (Oracle.event_label plan st.Replay.at)
                  (event_str trace st.Replay.at))
           | _ ->
             if plan.Oracle.p_first_unsafe = None && r.Replay.violations_counted > 0 then
               fail sp.sp_name False_positive (-1)
                 (Printf.sprintf "%d violation(s) counted on an oracle-safe trace"
                    r.Replay.violations_counted)
             else None)
        runs
    in
    (match false_positive with
     | Some _ as f -> f
     | None ->
       (* Invariant 3: every in-contract violation is detected. *)
       let missed =
         List.find_map
           (fun (sp, r, _, _) ->
              match Contract.first_covered ~scheme:sp.sp_name plan with
              | None -> None
              | Some c ->
                let detected =
                  (match r.Replay.stop with Some st -> st.Replay.at <= c | None -> false)
                  || (sp.sp_counts_only && r.Replay.violations_counted > 0)
                in
                if detected then None
                else
                  fail sp.sp_name Missed_violation c
                    (Format.asprintf
                       "oracle-%s event in the scheme's contract (%s), but the run %s"
                       (Oracle.event_label plan c) (event_str trace c)
                       (match r.Replay.stop with
                        | None -> "completed silently"
                        | Some st -> Format.asprintf "only stopped later: %a" Replay.pp_stop st)))
           runs
       in
       (match missed with
        | Some _ as f -> f
        | None ->
          (* Cross-scheme: instrumented reads of defined bytes agree. *)
          match runs with
          | [] | [ _ ] -> None
          | (base_sp, base, _, _) :: rest ->
            List.find_map
              (fun (sp, r, _, _) ->
                 let bad = ref None in
                 Array.iteri
                   (fun i d ->
                      match d with
                      | Oracle.Skip -> ()
                      | Oracle.Exec x ->
                        if !bad = None then
                          Array.iteri
                            (fun j cmp ->
                               if cmp && !bad = None then
                                 let a = base.Replay.reads.(i) and b = r.Replay.reads.(i) in
                                 if j < Array.length a && j < Array.length b
                                    && a.(j) <> b.(j) then
                                   bad :=
                                     fail sp.sp_name Scheme_divergence i
                                       (Printf.sprintf
                                          "read %d of (%s) = %#x, but %s read %#x"
                                          j (event_str trace i) b.(j) base_sp.sp_name a.(j)))
                            x.Oracle.x_compare)
                   plan.Oracle.p_dispositions;
                 !bad)
              rest))

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy delta-debugging on event subsequences. Dropping
   events is always sound — the oracle re-plans the subsequence and
   skips whatever no longer applies — so we only need "still fails the
   same way" as the predicate. *)

let same_failure (a : failure) (b : failure) =
  a.f_scheme = b.f_scheme && a.f_kind = b.f_kind

let shrink_trace ?specs (trace : Trace.t) (target : failure) : Trace.t =
  let attempt t =
    match check_trace ?specs t with
    | Some f when same_failure target f -> true
    | _ -> false
  in
  let remove t i k =
    Array.append (Array.sub t 0 i) (Array.sub t (i + k) (Array.length t - i - k))
  in
  let rec pass t k =
    if k = 0 then t
    else begin
      let t = ref t and i = ref 0 in
      while !i < Array.length !t do
        let k' = min k (Array.length !t - !i) in
        let cand = remove !t !i k' in
        if attempt cand then t := cand else i := !i + k'
      done;
      pass !t (k / 2)
    end
  in
  pass trace (max 1 (Array.length trace / 2))

(* ------------------------------------------------------------------ *)

type counterexample = {
  cx_iter : int;       (** 1-based iteration that failed *)
  cx_trace : Trace.t;  (** the original failing trace *)
  cx_shrunk : Trace.t;
  cx_failure : failure; (** failure reported on the shrunk trace *)
}

type report = {
  rp_seed : int;
  rp_iters : int;     (** iterations requested *)
  rp_ran : int;       (** iterations executed *)
  rp_events : int;    (** total events generated *)
  rp_schemes : string list;
  rp_counterexample : counterexample option;
}

let campaign ?specs ?params ?(progress = fun _ -> ()) ?(shrink = true) ~seed ~iters () :
  report =
  let specs = match specs with Some s -> s | None -> default_specs () in
  let rng = Rng.create seed in
  let events = ref 0 in
  let finish ran cx =
    { rp_seed = seed; rp_iters = iters; rp_ran = ran; rp_events = !events;
      rp_schemes = List.map (fun sp -> sp.sp_name) specs; rp_counterexample = cx }
  in
  let rec loop i =
    if i > iters then finish (i - 1) None
    else begin
      let tseed = Rng.split rng in
      let trace = Trace.generate ?params (Rng.create tseed) in
      events := !events + Array.length trace;
      match check_trace ~specs trace with
      | None ->
        progress i;
        loop (i + 1)
      | Some f ->
        let shrunk = if shrink then shrink_trace ~specs trace f else trace in
        let f' = match check_trace ~specs shrunk with Some f' -> f' | None -> f in
        finish i (Some { cx_iter = i; cx_trace = trace; cx_shrunk = shrunk; cx_failure = f' })
    end
  in
  loop 1

(** The exact command that reproduces a failing campaign (iteration
    [cx_iter] is reached deterministically from the seed). *)
let replay_command ~seed (cx : counterexample) =
  Printf.sprintf "sgxbounds_cli fuzz --seed %d --iters %d" seed cx.cx_iter
