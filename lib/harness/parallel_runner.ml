(** Domain-parallel experiment runner.

    An experiment grid — (scheme x workload x config) cells — is
    embarrassingly parallel: every cell builds its own {!Sb_sgx.Memsys}
    (its own address space, caches, EPC and telemetry hub), so cells
    share no simulator state. This module fans independent cells across
    OCaml 5 [Domain]s, which is host parallelism *around* the simulator:
    simulated results are bit-for-bit those of a sequential sweep (each
    cell is still deterministic), only host wall-clock changes. The
    cooperative scheduler flag is domain-local (see {!Sb_machine.Eff}),
    so cells running simulated multithreaded workloads do not interfere
    across domains.

    This mirrors how the paper's evaluation machine actually ran the
    multithreaded Phoenix/PARSEC suites: many independent
    configurations, one per core. *)

module Config = Sb_machine.Config
module Registry = Sb_workloads.Registry

(** Leave one core for the coordinating domain; cap at 8 — grid cells
    are memory-bound, and more domains than memory channels just thrash
    the host caches. *)
let default_jobs () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(** [map ~jobs f items] = [Array.map f items], fanned across [jobs]
    domains pulling from a shared chunked work queue. Result order is
    [items] order regardless of execution order. [jobs <= 1] runs
    inline (no domain is spawned). An exception in any [f] is re-raised
    (with its backtrace) after all domains join.

    Workers claim contiguous {e chunks} of the index space, not single
    cells: one [Atomic.fetch_and_add] hands out [chunk] cells, so
    queue-head contention is amortized (cells are milliseconds of work,
    but a fine-grained head is the one cache line every domain writes).
    The chunk size splits the grid into ~4 batches per worker — small
    enough that an unlucky domain stuck with the slowest cells still
    load-balances, large enough that the queue head stays cold. *)
let map ?(jobs = 1) f items =
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let jobs = min jobs n in
    let chunk = max 1 (n / (jobs * 4)) in
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let worker () =
      let rec go () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            let r =
              try Ok (f items.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r
          done;
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

(** {!map} over a list, preserving order — the convenience shape most
    sweep drivers (e.g. the service-layer rate sweep) want. *)
let map_list ?jobs f items =
  Array.to_list (map ?jobs f (Array.of_list items))

(** One grid cell: a workload under a scheme in a given configuration.
    [n = None] uses the workload's default working set. *)
type cell = {
  scheme : string;
  workload : Registry.spec;
  env : Config.env;
  threads : int;
  n : int option;
}

let cell ?(env = Config.Inside_enclave) ?(threads = 1) ?n ~scheme workload =
  { scheme; workload; env; threads; n }

let run_cell (c : cell) =
  Harness.run_one ~env:c.env ~threads:c.threads ?n:c.n ~scheme:c.scheme c.workload

(** Run a list of cells across [jobs] domains; results in cell order. *)
let run_cells ?jobs cells =
  Array.to_list (map ?jobs run_cell (Array.of_list cells))

(** Run the full (workload x scheme) product and regroup the results in
    the row shape the figure printers consume:
    [(workload_name, [(scheme, result); ...]); ...]. *)
let run_grid ?jobs ?env ?(threads = 1) ?n ~schemes ~workloads () =
  let cells =
    List.concat_map
      (fun (w : Registry.spec) ->
         List.map (fun scheme -> cell ?env ~threads ?n ~scheme w) schemes)
      workloads
  in
  let results = run_cells ?jobs cells in
  let tbl = List.combine cells results in
  List.map
    (fun (w : Registry.spec) ->
       ( w.Registry.name,
         List.filter_map
           (fun (c, r) ->
              if c.workload == w then Some (c.scheme, r) else None)
           tbl ))
    workloads
