(** Experiment harness: run a workload under a scheme, collect the
    metrics the paper reports, normalize against the native-SGX baseline
    and print paper-shaped tables.

    Methodology mirrors §6.1: results are normalized against the native
    (uninstrumented) version in the same environment; memory numbers are
    peak reserved virtual memory; crashed configurations (MPX out of
    enclave memory) are reported as missing bars. *)

module Config = Sb_machine.Config
module Memsys = Sb_sgx.Memsys
module Vmem = Sb_vmem.Vmem
module Scheme = Sb_protection.Scheme
module Telemetry = Sb_telemetry.Telemetry
module Profile = Sb_telemetry.Profile
module Json = Sb_telemetry.Json
open Sb_protection.Types

type metrics = {
  cycles : int;
  instrs : int;
  mem_accesses : int;
  llc_misses : int;
  epc_faults : int;
  epc_evictions : int;
  peak_vm : int;
  bts : int;
  quarantine : int;
  (* cycle attribution: where the time went (paper Figures 2/9/10) *)
  attribution : (Memsys.access_class * Memsys.class_stat) list;
  compute_cycles : int;
  cache : (string * Sb_cache.Hierarchy.level_stats) list;
  (* instrumentation activity of the scheme (§4.4 ablation) *)
  checks_done : int;
  checks_elided : int;
  checks_hoisted : int;
  violations : int;
}

type outcome =
  | Completed of metrics
  | Crashed of string

(** Canonical short name of an environment, as used in tables, JSON and
    TSV output. *)
let env_name = function
  | Config.Inside_enclave -> "enclave"
  | Config.Outside_enclave -> "native"

type result = {
  scheme : string;
  workload : string;
  n : int;
  threads : int;
  env : Config.env;
  outcome : outcome;
}

(** The scheme line-up of the evaluation, from the one capability table
    ({!Sb_schemes.Scheme_info}). [sgxbounds-*] variants are the Figure 10
    optimization ablation. *)
let makers : (string * (Memsys.t -> Scheme.t)) list =
  List.map
    (fun i -> (i.Sb_schemes.Scheme_info.name, i.Sb_schemes.Scheme_info.maker))
    Sb_schemes.Scheme_info.all

let scheme_names = List.map fst makers

let maker_opt name = List.assoc_opt name makers

let maker name =
  match maker_opt name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Harness.maker: unknown scheme %S (valid schemes: %s)" name
         (String.concat ", " scheme_names))

(** Metrics of a completed run on machine [ms] under scheme [s]. *)
let collect_metrics ms (s : Scheme.t) =
  let snap = Memsys.snapshot ms in
  {
    cycles = snap.Memsys.cycles;
    instrs = snap.Memsys.instrs;
    mem_accesses = snap.Memsys.mem_accesses;
    llc_misses = snap.Memsys.llc_misses;
    epc_faults = snap.Memsys.epc_faults;
    epc_evictions = Memsys.epc_evictions ms;
    peak_vm = Vmem.peak_reserved_bytes (Memsys.vmem ms);
    bts = s.Scheme.extras.bts_allocated;
    quarantine = s.Scheme.extras.quarantine_bytes;
    attribution = Memsys.attribution ms;
    compute_cycles = Memsys.compute_cycles ms;
    cache = Memsys.cache_stats ms;
    checks_done = s.Scheme.extras.checks_done;
    checks_elided = s.Scheme.extras.checks_elided;
    checks_hoisted = s.Scheme.extras.checks_hoisted;
    violations = s.Scheme.extras.violations;
  }

(** Run the workload body [f], mapping the crash taxonomy to [outcome]. *)
let run_body f collect =
  match f () with
  | () -> Completed (collect ())
  | exception App_crash msg -> Crashed msg
  | exception Vmem.Enclave_oom _ -> Crashed "enclave out of memory"
  | exception Violation v -> Crashed (Fmt.str "%a" pp_violation v)

(** Run one (workload, scheme, environment) cell on a fresh machine.
    [tel] (default: disabled) collects spans, EPC events and access-cost
    histograms for the run; the workload body executes inside a
    ["run:<workload>/<scheme>"] phase span. [wrap] interposes on the
    freshly built scheme before the workload sees it — the hook the
    instrumentation auditor ({!Sb_analysis}) uses; observation only, it
    must not change simulated behaviour. *)
let run_one ?tel ?wrap ?(env = Config.Inside_enclave) ?(threads = 1) ?n ~scheme
    (w : Sb_workloads.Registry.spec) =
  let n = Option.value n ~default:w.Sb_workloads.Registry.default_n in
  let cfg = Config.default ~env () in
  let ms = Memsys.create ?tel cfg in
  let tel = Memsys.telemetry ms in
  let s = Telemetry.with_span tel ("setup:" ^ scheme) (fun () -> maker scheme ms) in
  let s = match wrap with None -> s | Some f -> f s in
  let ctx = Sb_workloads.Wctx.make ~threads s in
  let workload = w.Sb_workloads.Registry.name in
  let outcome =
    run_body
      (fun () ->
         Telemetry.with_span tel ("run:" ^ workload ^ "/" ^ scheme) (fun () ->
             w.Sb_workloads.Registry.run ctx ~n))
      (fun () -> collect_metrics ms s)
  in
  { scheme; workload; n; threads; env; outcome }

(** Run one cell with a site-attributed profiler: the machine's charge
    stream is routed into a fresh {!Sb_telemetry.Profile.t}
    ({!Sb_sgx.Memsys.attach_profiler}), the scheme is wrapped so every
    scheme operation is an "op:<name>" site
    ({!Sb_protection.Profiled.wrap}), scheme construction runs under
    "setup" and the workload body under "run". The hook only observes:
    simulated metrics equal {!run_one}'s for the same cell. Returns the
    result together with the filled profiler. *)
let run_profiled ?(env = Config.Inside_enclave) ?(threads = 1) ?n ~scheme
    (w : Sb_workloads.Registry.spec) =
  let n = Option.value n ~default:w.Sb_workloads.Registry.default_n in
  let cfg = Config.default ~env () in
  let ms = Memsys.create cfg in
  let prof =
    Profile.create ~max_threads:cfg.Config.max_threads ~buckets:Memsys.profile_buckets ()
  in
  Memsys.attach_profiler ms prof;
  let site_setup = Profile.intern prof "setup" in
  let site_run = Profile.intern prof "run" in
  let s = Profile.with_site prof site_setup (fun () -> maker scheme ms) in
  let ctx = Sb_workloads.Wctx.make ~threads (Sb_protection.Profiled.wrap prof s) in
  let workload = w.Sb_workloads.Registry.name in
  let outcome =
    run_body
      (fun () ->
         Profile.with_site prof site_run (fun () -> w.Sb_workloads.Registry.run ctx ~n))
      (fun () -> collect_metrics ms s)
  in
  ({ scheme; workload; n; threads; env; outcome }, prof)

let metrics_exn r =
  match r.outcome with
  | Completed m -> m
  | Crashed msg -> failwith (r.workload ^ "/" ^ r.scheme ^ " crashed: " ^ msg)

(** Performance overhead of [r] relative to baseline cycles (1.0 = equal). *)
let perf_ratio ~baseline r =
  match r.outcome with
  | Crashed _ -> None
  | Completed m -> Some (float_of_int m.cycles /. float_of_int (max 1 baseline.cycles))

let mem_ratio ~baseline r =
  match r.outcome with
  | Crashed _ -> None
  | Completed m -> Some (float_of_int m.peak_vm /. float_of_int (max 1 baseline.peak_vm))

(* ---------- aggregation across cells/domains ---------- *)

(** Sum the counters of several completed cells into one [metrics] — the
    per-class attribution, cache and EPC counters of a parallel sweep
    aggregated over every domain's private [Memsys], not read from any
    single one. [cycles] (and the other totals) are summed, i.e. total
    simulated work across the cells, not elapsed time of the sweep. *)
let aggregate_metrics (ms : metrics list) =
  match ms with
  | [] -> None
  | first :: _ ->
    let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
    let sum_attr =
      List.map
        (fun c ->
           let st m =
             match List.assoc_opt c m.attribution with
             | Some (st : Memsys.class_stat) -> st
             | None -> { Memsys.accesses = 0; cycles = 0 }
           in
           ( c,
             {
               Memsys.accesses = sum (fun m -> (st m).Memsys.accesses);
               cycles = sum (fun m -> (st m).Memsys.cycles);
             } ))
        Memsys.all_classes
    in
    let sum_cache =
      List.map
        (fun (lvl, _) ->
           let st m =
             match List.assoc_opt lvl m.cache with
             | Some (st : Sb_cache.Hierarchy.level_stats) -> st
             | None -> { Sb_cache.Hierarchy.hits = 0; misses = 0 }
           in
           ( lvl,
             {
               Sb_cache.Hierarchy.hits = sum (fun m -> (st m).Sb_cache.Hierarchy.hits);
               misses = sum (fun m -> (st m).Sb_cache.Hierarchy.misses);
             } ))
        first.cache
    in
    Some
      {
        cycles = sum (fun m -> m.cycles);
        instrs = sum (fun m -> m.instrs);
        mem_accesses = sum (fun m -> m.mem_accesses);
        llc_misses = sum (fun m -> m.llc_misses);
        epc_faults = sum (fun m -> m.epc_faults);
        epc_evictions = sum (fun m -> m.epc_evictions);
        peak_vm = sum (fun m -> m.peak_vm);
        bts = sum (fun m -> m.bts);
        quarantine = sum (fun m -> m.quarantine);
        attribution = sum_attr;
        compute_cycles = sum (fun m -> m.compute_cycles);
        cache = sum_cache;
        checks_done = sum (fun m -> m.checks_done);
        checks_elided = sum (fun m -> m.checks_elided);
        checks_hoisted = sum (fun m -> m.checks_hoisted);
        violations = sum (fun m -> m.violations);
      }

(** The completed cells of a result list, in order. *)
let completed_metrics (rs : result list) =
  List.filter_map (fun r -> match r.outcome with Completed m -> Some m | Crashed _ -> None) rs

(* ---------- table formatting ---------- *)

let pp_ratio ppf = function
  | None -> Fmt.string ppf "   CRASH"
  | Some r -> Fmt.pf ppf "%7.2fx" r

let pp_cell_bytes ppf = function
  | None -> Fmt.string ppf "   CRASH"
  | Some b -> Fmt.pf ppf "%8s" (Fmt.str "%a" Sb_machine.Util.pp_bytes b)

(** Print a normalized table: one row per workload, one column per
    scheme, each cell a ratio to the native baseline. *)
let print_ratio_table ~title ~rows ~columns ~cell () =
  Fmt.pr "@.%s@." title;
  Fmt.pr "%-18s" "";
  List.iter (fun c -> Fmt.pr "%10s" c) columns;
  Fmt.pr "@.";
  List.iter
    (fun row ->
       Fmt.pr "%-18s" row;
       List.iter (fun col -> Fmt.pr "  %a" pp_ratio (cell ~row ~col)) columns;
       Fmt.pr "@.")
    rows

(** Geometric mean over the defined cells of a column. *)
let gmean_column ~rows ~cell ~col =
  let vals = List.filter_map (fun row -> cell ~row ~col) rows in
  if vals = [] then None else Some (Sb_machine.Util.geomean vals)

(* ---------- cycle attribution (Figures 2/9/10, explained) ---------- *)

(** Attribution rows of [m]: every access class plus the compute bucket,
    as [(label, cycles, accesses)]. The cycles column re-adds to
    [m.cycles] for single-threaded runs (see {!Sb_sgx.Memsys}). *)
let attribution_rows m =
  List.map
    (fun (c, (st : Memsys.class_stat)) -> (Memsys.class_name c, st.Memsys.cycles, st.Memsys.accesses))
    m.attribution
  @ [ ("compute", m.compute_cycles, 0) ]

let attributed_total m =
  List.fold_left (fun acc (_, cy, _) -> acc + cy) 0 (attribution_rows m)

(** Per-access-class cycle attribution of one completed cell. *)
let print_attribution ~label m =
  let total = attributed_total m in
  let pct cy = 100.0 *. float_of_int cy /. float_of_int (max 1 total) in
  Fmt.pr "@.cycle attribution — %s@." label;
  Fmt.pr "  %-14s %14s %7s %14s@." "class" "cycles" "%" "accesses";
  List.iter
    (fun (name, cy, acc) ->
       Fmt.pr "  %-14s %14d %6.1f%% %14d@." name cy (pct cy) acc)
    (attribution_rows m);
  Fmt.pr "  %-14s %14d %6.1f%%@." "total" total 100.0;
  if total <> m.cycles then
    Fmt.pr "  (elapsed %d cycles: parallel region, elapsed = max over threads)@." m.cycles;
  Fmt.pr "  checks: %d executed, %d elided, %d hoisted; violations: %d@." m.checks_done
    m.checks_elided m.checks_hoisted m.violations;
  List.iter
    (fun (lvl, (st : Sb_cache.Hierarchy.level_stats)) ->
       Fmt.pr "  %-4s %d hits / %d misses@." lvl st.Sb_cache.Hierarchy.hits
         st.Sb_cache.Hierarchy.misses)
    m.cache;
  Fmt.pr "  EPC: %d faults, %d evictions@." m.epc_faults m.epc_evictions

(** The §4.4 optimization ablation of Figure 10, with the overhead of
    each variant *attributed*: which access class an optimization
    removes cycles from, and what it does to the check counts. *)
let ablation_schemes = Sb_schemes.Scheme_info.ablation_names

let run_ablation ?env ?threads ?n (w : Sb_workloads.Registry.spec) =
  List.map (fun scheme -> run_one ?env ?threads ?n ~scheme w) ablation_schemes

let print_ablation (results : result list) =
  match results with
  | [] -> ()
  | r0 :: _ ->
    Fmt.pr "@.overhead attribution — %s (n=%d)@." r0.workload r0.n;
    Fmt.pr "%-18s %9s %12s %12s %12s %12s %10s %10s %8s@." "scheme" "overhead" "cycles"
      "data" "footer_meta" "compute" "checks" "elided" "hoisted";
    let base =
      List.find_opt (fun r -> r.scheme = "native") results
      |> Option.map (fun r -> metrics_exn r)
    in
    List.iter
      (fun r ->
         match r.outcome with
         | Crashed msg -> Fmt.pr "%-18s CRASHED: %s@." r.scheme msg
         | Completed m ->
           let cls c =
             match List.assoc_opt c m.attribution with
             | Some (st : Memsys.class_stat) -> st.Memsys.cycles
             | None -> 0
           in
           let overhead =
             match base with
             | Some b -> Fmt.str "%.2fx" (float_of_int m.cycles /. float_of_int (max 1 b.cycles))
             | None -> "-"
           in
           Fmt.pr "%-18s %9s %12d %12d %12d %12d %10d %10d %8d@." r.scheme overhead
             m.cycles (cls Memsys.Data) (cls Memsys.Footer_meta) m.compute_cycles
             m.checks_done m.checks_elided m.checks_hoisted)
      results

(* ---------- JSON export ---------- *)

let json_of_metrics m =
  Json.Obj
    [
      ("cycles", Json.Int m.cycles);
      ("instrs", Json.Int m.instrs);
      ("mem_accesses", Json.Int m.mem_accesses);
      ("llc_misses", Json.Int m.llc_misses);
      ("epc_faults", Json.Int m.epc_faults);
      ("epc_evictions", Json.Int m.epc_evictions);
      ("peak_vm", Json.Int m.peak_vm);
      ("bts_allocated", Json.Int m.bts);
      ("quarantine_bytes", Json.Int m.quarantine);
      ( "attribution",
        Json.Obj
          (List.map
             (fun (name, cy, acc) ->
                (name, Json.Obj [ ("cycles", Json.Int cy); ("accesses", Json.Int acc) ]))
             (attribution_rows m)) );
      ("attributed_cycles", Json.Int (attributed_total m));
      ( "cache",
        Json.Obj
          (List.map
             (fun (lvl, (st : Sb_cache.Hierarchy.level_stats)) ->
                ( lvl,
                  Json.Obj
                    [
                      ("hits", Json.Int st.Sb_cache.Hierarchy.hits);
                      ("misses", Json.Int st.Sb_cache.Hierarchy.misses);
                    ] ))
             m.cache) );
      ( "checks",
        Json.Obj
          [
            ("executed", Json.Int m.checks_done);
            ("elided", Json.Int m.checks_elided);
            ("hoisted", Json.Int m.checks_hoisted);
          ] );
      ("violations", Json.Int m.violations);
    ]

let json_of_result (r : result) =
  let outcome =
    match r.outcome with
    | Completed m -> [ ("status", Json.Str "completed"); ("metrics", json_of_metrics m) ]
    | Crashed msg -> [ ("status", Json.Str "crashed"); ("reason", Json.Str msg) ]
  in
  Json.Obj
    ([
      ("workload", Json.Str r.workload);
      ("scheme", Json.Str r.scheme);
      ("n", Json.Int r.n);
      ("threads", Json.Int r.threads);
      ("env", Json.Str (env_name r.env));
    ]
     @ outcome)
