(** Deterministic cooperative multithreading.

    Replaces the pthreads of the paper's 1/4/8-thread experiments. Each
    simulated thread runs as an OCaml effect fiber; the memory system
    performs a yield every few accesses, and the scheduler always resumes
    the runnable thread with the *smallest cycle clock* — so threads
    advance together in simulated time, shared caches and the EPC see a
    realistically interleaved access stream, and the elapsed time of the
    region is the max over thread clocks, like a real parallel section.

    The fine-grained interleaving is also what exposes Intel MPX's
    non-atomic pointer/bounds updates (§4.1): a data store and its bndstx
    can be separated by another thread's accesses. *)

type t = Sb_sgx.Memsys.t

(** [run ms fns] executes all thunks as parallel threads (thread ids
    [0..n-1]); returns when all finished. Thread 0's clock afterwards
    holds the elapsed time of the region. Exceptions from any thread
    propagate (after deactivating the scheduler). Must not be nested. *)
val run : t -> (unit -> unit) array -> unit

(** [parallel_for ms ~threads ~lo ~hi f] — run [f i] for [i] in
    [lo, hi), statically partitioned over [threads] threads. *)
val parallel_for : t -> threads:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** Explicit yield point (for race demonstrations and servers). No-op
    outside [run]. *)
val yield : unit -> unit

(** Install (or clear) a domain-local observer called with the thread
    count at the start of every parallel region on this domain. Used by
    the instrumentation auditor ({!Sb_analysis}) to fork its
    happens-before vector clocks; one observer per domain. *)
val set_region_tracer : (int -> unit) option -> unit
