module Memsys = Sb_sgx.Memsys
module Eff = Sb_machine.Eff
module Config = Sb_machine.Config
open Effect.Shallow

type t = Memsys.t

type state =
  | Pending of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Finished

let yield () = if Eff.scheduler_active () then Effect.perform Eff.Yield

(* Observer of parallel-region starts, for happens-before tracking by
   the instrumentation auditor (Sb_analysis). Domain-local for the same
   reason as [Eff.scheduler_key]: each domain schedules its own
   cooperative threads, so a tracer installed by one domain must not
   fire for regions of another. *)
let region_tracer_key : (int -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_region_tracer f = Domain.DLS.set region_tracer_key f

let run_some ms fns n =
  let max_threads = (Memsys.cfg ms).Config.max_threads in
  if n > max_threads then
    invalid_arg
      (Printf.sprintf "Mt.run: %d threads exceed the machine's %d hardware threads"
         n max_threads);
  let start = Memsys.get_clock ms (Memsys.current_thread ms) in
  for i = 0 to n - 1 do
    Memsys.set_clock ms i start
  done;
  let state = Array.map (fun f -> Pending f) fns in
  (* Resume the runnable thread whose clock is smallest: simulated
     parallel time advances evenly across cores. *)
  let pick () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      match state.(i) with
      | Finished -> ()
      | Pending _ | Suspended _ ->
        if !best < 0 || Memsys.get_clock ms i < Memsys.get_clock ms !best then best := i
    done;
    if !best < 0 then None else Some !best
  in
  let handler i =
    {
      retc = (fun () -> state.(i) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
           match eff with
           | Eff.Yield ->
             Some (fun (k : (a, unit) continuation) -> state.(i) <- Suspended k)
           | _ -> None);
    }
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some i ->
      Memsys.set_thread ms i;
      (match state.(i) with
       | Pending f ->
         state.(i) <- Finished;
         (* default in case f never yields *)
         continue_with (fiber f) () (handler i)
       | Suspended k ->
         state.(i) <- Finished;
         continue_with k () (handler i)
       | Finished -> assert false);
      loop ()
  in
  (match Domain.DLS.get region_tracer_key with
   | Some tracer -> tracer n
   | None -> ());
  Eff.set_scheduler_active true;
  Fun.protect
    ~finally:(fun () ->
      Eff.set_scheduler_active false;
      (* Sequential code continues on thread 0 at the region's elapsed
         time (the slowest thread). *)
      let mx = ref 0 in
      for i = 0 to n - 1 do
        mx := max !mx (Memsys.get_clock ms i)
      done;
      Memsys.set_thread ms 0;
      Memsys.set_clock ms 0 !mx)
    loop

(** Run each closure of [fns] as a cooperative simulated thread (thread
    [i] runs [fns.(i)]), interleaved by the min-clock scheduler until all
    finish. An empty array is a no-op; asking for more threads than the
    machine's [Config.max_threads] hardware contexts is an
    [Invalid_argument], as is starting a region inside another. *)
let run ms fns =
  if Eff.scheduler_active () then invalid_arg "Mt.run: nested parallel regions";
  let n = Array.length fns in
  if n > 0 then run_some ms fns n

let parallel_for ms ~threads ~lo ~hi f =
  let n = max 1 threads in
  let total = hi - lo in
  if total > 0 then begin
    let chunk = (total + n - 1) / n in
    let fns =
      Array.init n (fun t ->
          let a = lo + (t * chunk) in
          let b = min hi (a + chunk) in
          fun () ->
            for i = a to b - 1 do
              f i
            done)
    in
    run ms fns
  end
