(** Registry of all evaluation workloads with their default (Figure 7 /
    Figure 11) working-set parameters.

    [default_n] is calibrated so each kernel's working set sits on the
    same side of the (scaled) EPC boundary as the original did against
    the real 94 MiB EPC, which is what Figure 7's spread depends on.
    [ws_hint] documents the approximate simulated working set. *)

type suite = Phoenix | Parsec | Spec

type spec = {
  name : string;
  suite : suite;
  multithreaded : bool;
  (* pointer-intensive kernels are where Intel MPX's bounds traffic and
     tables hurt; documented here and asserted by tests *)
  pointer_intensive : bool;
  default_n : int;
  run : Wctx.t -> n:int -> unit;
}

let spec name suite ~mt ~ptr ~n run =
  { name; suite; multithreaded = mt; pointer_intensive = ptr; default_n = n; run }

let phoenix =
  [
    spec "histogram" Phoenix ~mt:true ~ptr:false ~n:131072 Phoenix.histogram;
    spec "kmeans" Phoenix ~mt:true ~ptr:true ~n:8192 Phoenix.kmeans;
    spec "linear_regression" Phoenix ~mt:true ~ptr:false ~n:262144 Phoenix.linear_regression;
    spec "matrixmul" Phoenix ~mt:true ~ptr:false ~n:96 Phoenix.matrixmul;
    spec "pca" Phoenix ~mt:true ~ptr:true ~n:256 Phoenix.pca;
    spec "string_match" Phoenix ~mt:true ~ptr:false ~n:32768 Phoenix.string_match;
    spec "wordcount" Phoenix ~mt:true ~ptr:true ~n:32768 Phoenix.wordcount;
  ]

let parsec =
  [
    spec "blackscholes" Parsec ~mt:true ~ptr:false ~n:131072 Parsec.blackscholes;
    spec "bodytrack" Parsec ~mt:true ~ptr:true ~n:32768 Parsec.bodytrack;
    spec "dedup" Parsec ~mt:true ~ptr:true ~n:65536 Parsec.dedup;
    spec "ferret" Parsec ~mt:true ~ptr:true ~n:1024 Parsec.ferret;
    spec "fluidanimate" Parsec ~mt:true ~ptr:true ~n:8192 Parsec.fluidanimate;
    spec "streamcluster" Parsec ~mt:true ~ptr:false ~n:16384 Parsec.streamcluster;
    spec "swaptions" Parsec ~mt:true ~ptr:false ~n:8192 Parsec.swaptions;
    spec "vips" Parsec ~mt:true ~ptr:false ~n:131072 Parsec.vips;
    spec "x264" Parsec ~mt:true ~ptr:true ~n:49152 Parsec.x264;
  ]

let spec_cpu2006 =
  [
    spec "astar" Spec ~mt:false ~ptr:true ~n:196608 Spec.astar;
    spec "bzip2" Spec ~mt:false ~ptr:false ~n:16384 Spec.bzip2;
    spec "gobmk" Spec ~mt:false ~ptr:false ~n:12800 Spec.gobmk;
    spec "h264ref" Spec ~mt:false ~ptr:true ~n:98304 Spec.h264ref;
    spec "hmmer" Spec ~mt:false ~ptr:false ~n:262144 Spec.hmmer;
    spec "lbm" Spec ~mt:false ~ptr:false ~n:32768 Spec.lbm;
    spec "libquantum" Spec ~mt:false ~ptr:false ~n:131072 Spec.libquantum;
    spec "mcf" Spec ~mt:false ~ptr:true ~n:196608 Spec.mcf;
    spec "milc" Spec ~mt:false ~ptr:false ~n:16384 Spec.milc;
    spec "namd" Spec ~mt:false ~ptr:false ~n:32768 Spec.namd;
    spec "sjeng" Spec ~mt:false ~ptr:false ~n:65536 Spec.sjeng;
    spec "sphinx3" Spec ~mt:false ~ptr:false ~n:131072 Spec.sphinx3;
    spec "xalancbmk" Spec ~mt:false ~ptr:true ~n:131072 Spec.xalancbmk;
  ]

let all = phoenix @ parsec @ spec_cpu2006

let names = List.map (fun s -> s.name) all

let find_opt name = List.find_opt (fun s -> s.name = name) all

let find name =
  match find_opt name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find: unknown workload %S (valid workloads: %s)" name
         (String.concat ", " names))

let of_suite suite = List.filter (fun s -> s.suite = suite) all

let suite_name = function Phoenix -> "phoenix" | Parsec -> "parsec" | Spec -> "spec"
