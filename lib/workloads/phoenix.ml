(** The seven Phoenix 2.0 kernels (§6.1).

    Each kernel reproduces the memory-access character of the original —
    pointer intensity, access pattern, allocation behaviour and relative
    working-set size — because those are what drive the spread of
    overheads in the paper's Figure 7. [n] scales the working set; the
    defaults in {!Registry} land the same side of the EPC boundary as the
    originals did on real hardware. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

(** histogram: byte-stream scan with tiny per-thread tables —
    pointer-free, near-zero overhead under every scheme. *)
let histogram ctx ~n =
  let input = array ctx n 8 in
  fill_random ctx input n 8;
  parallel ctx n (fun _t lo hi ->
      let local = array ctx 256 4 in
      read_seq ctx input ~lo ~hi ~width:8 (fun _ v ->
          (* three colour channels per word *)
          work ctx 6;
          let r = v land 0xff and g = (v lsr 8) land 0xff and b = (v lsr 16) land 0xff in
          set ctx local (r land 0x7f) 4 (get ctx local (r land 0x7f) 4 + 1);
          set ctx local (g land 0x7f) 4 (get ctx local (g land 0x7f) 4 + 1);
          set ctx local (b land 0x7f) 4 (get ctx local (b land 0x7f) 4 + 1));
      ctx.s.Scheme.free local)

(** kmeans: Phoenix passes the point set as an array of point pointers
    (an array of point pointers); iterative passes re-walk it every iteration — the Figure 8 /
    Table 3 exemplar whose overheads flip when the working set crosses
    the EPC, and whose pointer table makes Intel MPX's bounds tables grow
    with the input. *)
let kmeans ctx ~n =
  let dim = 7 and k = 4 and iters = 2 in
  let points = array ctx n 8 in
  for i = 0 to n - 1 do
    let p = ctx.s.Scheme.malloc (dim * 4) in
    ctx.s.Scheme.check_range p (dim * 4) Write;
    for j = 0 to dim - 1 do
      ctx.s.Scheme.store_unchecked (idx ctx p j 4) 4 (Rng.int ctx.rng 1000)
    done;
    ctx.s.Scheme.store_ptr (idx ctx points i 8) p
  done;
  let centers = array ctx (k * dim) 4 in
  fill_random ctx centers (k * dim) 4;
  let assign = array ctx n 4 in
  for _iter = 1 to iters do
    parallel ctx n (fun _t lo hi ->
        ctx.s.Scheme.check_range (idx ctx points lo 8) ((hi - lo) * 8) Read;
        ctx.s.Scheme.check_range centers (k * dim * 4) Read;
        for i = lo to hi - 1 do
          let row = ctx.s.Scheme.load_ptr_unchecked (idx ctx points i 8) in
          ctx.s.Scheme.check_range row (dim * 4) Read;
          let best = ref 0 and bestd = ref max_int in
          for c = 0 to k - 1 do
            let d = ref 0 in
            for j = 0 to dim - 1 do
              let pv = ctx.s.Scheme.load_unchecked (idx ctx row j 4) 4 in
              let cv = ctx.s.Scheme.load_unchecked (idx ctx centers ((c * dim) + j) 4) 4 in
              let diff = pv - cv in
              d := !d + (diff * diff);
              work ctx 3
            done;
            if !d < !bestd then begin
              bestd := !d;
              best := c
            end
          done;
          set ctx assign i 4 !best
        done);
    (* centre update: sequential reduction pass *)
    read_seq ctx assign ~lo:0 ~hi:n ~width:4 (fun _ _ -> work ctx 2)
  done

(** linear_regression: single streaming pass accumulating five sums. *)
let linear_regression ctx ~n =
  let pts = array ctx (n * 2) 4 in
  fill_random ctx pts (n * 2) 4;
  parallel ctx n (fun _t lo hi ->
      read_seq ctx pts ~lo:(lo * 2) ~hi:(hi * 2) ~width:4 (fun _ _ -> work ctx 5))

(** matrixmul: naive triple loop, cache-unfriendly column walks in [b];
    only three objects, so Intel MPX keeps all bounds in registers. *)
let matrixmul ctx ~n =
  (* n is the matrix dimension *)
  let a = array ctx (n * n) 4 and b = array ctx (n * n) 4 and c = array ctx (n * n) 4 in
  fill_random ctx a (n * n) 4;
  fill_random ctx b (n * n) 4;
  parallel ctx n (fun _t lo hi ->
      for i = lo to hi - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0 in
          let row = idx ctx a (i * n) 4 in
          ctx.s.Scheme.check_range row (n * 4) Read;
          (* the b column walk has an affine stride, so scalar evolution
             hoists its check too (the paper's 20% matrixmul gain) *)
          ctx.s.Scheme.check_range b (n * n * 4) Read;
          for kk = 0 to n - 1 do
            let av = ctx.s.Scheme.load_unchecked (ctx.s.Scheme.offset row (kk * 4)) 4 in
            let bv = ctx.s.Scheme.load_unchecked (idx ctx b ((kk * n) + j) 4) 4 in
            acc := !acc + (av * bv);
            work ctx 2
          done;
          set ctx c ((i * n) + j) 4 !acc
        done
      done)

(** pca: principal component analysis by power iteration over an
    array-of-row-pointers matrix — see {!Phoenix_pca}. The a[i][k]
    indexing re-derives the row pointer per element: the paper's worst
    case for Intel MPX (10x instructions from bndldx). *)
let pca ctx ~n = Phoenix_pca.run ctx ~n

(** string_match: for every input key, byte-compare against four fixed
    "encrypted" keys with early exit. *)
let string_match ctx ~n =
  let klen = 16 in
  let keys = array ctx (n * klen) 1 in
  fill_random ctx keys (n * klen) 1;
  let targets = array ctx (4 * klen) 1 in
  fill_random ctx targets (4 * klen) 1;
  parallel ctx n (fun _t lo hi ->
      for i = lo to hi - 1 do
        let kbase = idx ctx keys (i * klen) 1 in
        ctx.s.Scheme.check_range kbase klen Read;
        for t = 0 to 3 do
          let matched = ref true in
          let b = ref 0 in
          while !matched && !b < klen do
            let kv = ctx.s.Scheme.load_unchecked (ctx.s.Scheme.offset kbase !b) 1 in
            let tv = get ctx targets ((t * klen) + !b) 1 in
            work ctx 2;
            if kv <> tv then matched := false;
            incr b
          done
        done
      done)

(** wordcount: hash table of counted words with chained, individually
    allocated nodes — pointer- and allocation-intensive. Phoenix's
    map-reduce shape: each map thread counts into a private table, then
    the reduce phase (after the join) folds them into the final one, so
    no chain is ever mutated by two threads. *)
let wordcount ctx ~n =
  let nbuckets = 4096 in
  let node_bytes = 28 in (* [0]=next ptr, [8]=count, [16]=word id *)
  let distinct = max 64 (n / 4) in
  let nthreads = max 1 ctx.threads in
  let hash word = (word * 2654435761) land (nbuckets - 1) in
  (* insert [word] (+delta) into the chain of [buckets], walking through
     the scheme exactly as the original tight loop did *)
  let insert buckets word delta =
    let head = idx ctx buckets (hash word) 8 in
    let rec walk node depth =
      if is_null ctx node || depth > 16 then None
      else begin
        work ctx 2;
        if ctx.s.Scheme.safe_load (ctx.s.Scheme.offset node 16) 4 = word then Some node
        else walk (ctx.s.Scheme.load_ptr node) (depth + 1)
      end
    in
    match walk (ctx.s.Scheme.load_ptr head) 0 with
    | Some node ->
      let cnt = ctx.s.Scheme.offset node 8 in
      ctx.s.Scheme.safe_store cnt 4 (ctx.s.Scheme.safe_load cnt 4 + delta)
    | None ->
      let fresh = ctx.s.Scheme.malloc node_bytes in
      ctx.s.Scheme.store_ptr fresh (ctx.s.Scheme.load_ptr head);
      ctx.s.Scheme.store (ctx.s.Scheme.offset fresh 8) 4 delta;
      ctx.s.Scheme.store (ctx.s.Scheme.offset fresh 16) 4 word;
      ctx.s.Scheme.store_ptr head fresh
  in
  let locals =
    Array.init nthreads (fun _ -> ctx.s.Scheme.calloc nbuckets 8)
  in
  (* map: each thread counts into its own table *)
  parallel ctx n (fun t lo hi ->
      let mine = locals.(t) in
      for _i = lo to hi - 1 do
        let word = Rng.int ctx.rng distinct in
        work ctx 12; (* hashing the word's characters *)
        insert mine word 1
      done);
  (* reduce: fold the per-thread tables into the final one *)
  let buckets = ctx.s.Scheme.calloc nbuckets 8 in
  Array.iter
    (fun mine ->
       for h = 0 to nbuckets - 1 do
         let rec drain node =
           if not (is_null ctx node) then begin
             let next = ctx.s.Scheme.load_ptr node in
             let word = ctx.s.Scheme.safe_load (ctx.s.Scheme.offset node 16) 4 in
             let cnt = ctx.s.Scheme.safe_load (ctx.s.Scheme.offset node 8) 4 in
             insert buckets word cnt;
             ctx.s.Scheme.free node;
             drain next
           end
         in
         drain (ctx.s.Scheme.load_ptr (idx ctx mine h 8));
         work ctx 1
       done;
       ctx.s.Scheme.free mine)
    locals
