(** dedup: content-defined chunking with a real rolling hash.

    The original pipeline: a Rabin-style rolling hash slides over the
    stream and declares a chunk boundary whenever the low bits of the
    fingerprint hit a magic value; each chunk is digested and looked up
    in a hash table of previously seen chunks; fresh chunks are copied
    into the store (never freed — the allocation volume that OOMs Intel
    MPX in Figure 7).

    Properties the tests rely on:
    - chunking is *content-defined*: identical content produces identical
      boundaries, so duplicate regions dedup regardless of alignment;
    - a duplicated stream stores (almost) no new bytes the second time. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

let boundary_mask = 0x3F (* with 4-byte steps: expected chunk ~256 bytes *)
let max_chunk = 1024
let min_chunk = 64

type store = {
  nbuckets : int;
  buckets : ptr;
  mutable stored_chunks : int;
  mutable stored_bytes : int;
  mutable dup_chunks : int;
}

let create_store ctx ~nbuckets =
  { nbuckets; buckets = ctx.s.Scheme.calloc nbuckets 8; stored_chunks = 0;
    stored_bytes = 0; dup_chunks = 0 }

(* Store node: [0] chain next (8), [8] digest (8), [16] length (4),
   [24] payload pointer (8). *)
let node_bytes = 32

let lookup_or_store ctx st data ~off ~len ~digest =
  let b = ctx.s.Scheme.offset st.buckets ((digest land (st.nbuckets - 1)) * 8) in
  let rec walk node =
    if is_null ctx node then None
    else if
      ctx.s.Scheme.safe_load (ctx.s.Scheme.offset node 8) 8 = digest
      && ctx.s.Scheme.safe_load (ctx.s.Scheme.offset node 16) 4 = len
    then Some node
    else begin
      work ctx 2;
      walk (ctx.s.Scheme.load_ptr node)
    end
  in
  match walk (ctx.s.Scheme.load_ptr b) with
  | Some _ -> st.dup_chunks <- st.dup_chunks + 1
  | None ->
    let payload = ctx.s.Scheme.malloc len in
    Sb_libc.Simlibc.memcpy ctx.s ~dst:payload ~src:(ctx.s.Scheme.offset data off) ~len;
    let node = ctx.s.Scheme.malloc node_bytes in
    ctx.s.Scheme.store_ptr node (ctx.s.Scheme.load_ptr b);
    ctx.s.Scheme.store (ctx.s.Scheme.offset node 8) 8 digest;
    ctx.s.Scheme.store (ctx.s.Scheme.offset node 16) 4 len;
    ctx.s.Scheme.store_ptr (ctx.s.Scheme.offset node 24) payload;
    ctx.s.Scheme.store_ptr b node;
    st.stored_chunks <- st.stored_chunks + 1;
    st.stored_bytes <- st.stored_bytes + len

(** Scan the [len]-byte stream at [data] (one pass: the rolling
    fingerprint decides boundaries while the chunk digest accumulates).
    Pure — touches only the stream, so parallel scans of distinct
    streams cannot conflict. Returns the chunk descriptors in order. *)
let scan_stream ctx data ~len =
  ctx.s.Scheme.check_range data len Read;
  let chunks = ref [] in
  let start = ref 0 in
  let fp = ref 0 and dg = ref 0xcbf29ce484222 in
  let i = ref 0 in
  while !i < len do
    let w = ctx.s.Scheme.load_unchecked (idx ctx data !i 1) 4 in
    fp := ((!fp * 31) + w) land 0xFFFFFF;
    dg := (!dg lxor w) * 0x10000001b3 land max_int;
    work ctx 7;
    let size = !i + 4 - !start in
    let at_boundary =
      (size >= min_chunk && !fp land boundary_mask = boundary_mask) || size >= max_chunk
    in
    if at_boundary then begin
      chunks := (!start, size, !dg) :: !chunks;
      start := !i + 4;
      fp := 0;
      dg := 0xcbf29ce484222
    end;
    i := !i + 4
  done;
  if !start < len then chunks := (!start, len - !start, !dg) :: !chunks;
  List.rev !chunks

(** Chunk and deduplicate the stream into [st] in one sequential call.
    Returns boundary offsets (chunk ends). *)
let chunk_stream ctx st data ~len =
  let chunks = scan_stream ctx data ~len in
  List.iter
    (fun (off, clen, digest) -> lookup_or_store ctx st data ~off ~len:clen ~digest)
    chunks;
  List.filter_map
    (fun (off, clen, _) -> if off + clen < len then Some (off + clen) else None)
    chunks

(** The kernel: an [n]-scaled stream where 3/4 of the content repeats
    earlier blocks — dedup's natural workload. The store never frees.

    The original's pipeline (chunk stages feeding a single store stage
    through queues) maps onto fork/join as rounds: each round the
    threads scan one stream each in parallel — touching nothing shared —
    and after the join the chunk descriptors are committed to the store
    in pass order, so the shared bucket chains are only ever mutated
    sequentially. *)
let run ctx ~n =
  let st = create_store ctx ~nbuckets:8192 in
  let stream_len = 32768 in
  let passes = max 1 (n / 80) in
  let nthreads = max 1 ctx.threads in
  let streams = Array.init nthreads (fun _ -> array ctx stream_len 1) in
  let chunks = Array.make nthreads [] in
  let p = ref 0 in
  while !p < passes do
    let batch = min nthreads (passes - !p) in
    let base = !p in
    parallel ctx batch (fun _t lo hi ->
        for b = lo to hi - 1 do
          (* half the passes carry fresh content; the rest repeat one of
             a small pool of earlier blocks *)
          let pass = base + b in
          let seed = if pass land 1 = 0 then 1000 + pass else pass land 15 in
          let stream = streams.(b) in
          write_seq ctx stream ~lo:0 ~hi:(stream_len / 4) ~width:4 (fun i ->
              ((seed * 131) + (i * 7) + (i lsr 5)) land 0xFFFFFF);
          chunks.(b) <- scan_stream ctx stream ~len:stream_len
        done);
    for b = 0 to batch - 1 do
      List.iter
        (fun (off, clen, digest) ->
           lookup_or_store ctx st streams.(b) ~off ~len:clen ~digest)
        chunks.(b);
      chunks.(b) <- []
    done;
    p := !p + batch
  done;
  Array.iter (fun stream -> ctx.s.Scheme.free stream) streams
