(** The nine supported PARSEC 3.0 kernels (§6.1: blackscholes, bodytrack,
    dedup, ferret, fluidanimate, streamcluster, swaptions, vips, x264).

    As with Phoenix, each kernel reproduces the original's memory-access
    character — the property that decides its column in Figure 7:
    blackscholes is pointer-free (near-zero overhead everywhere), dedup
    allocates until Intel MPX's bounds tables exhaust the enclave,
    swaptions churns tiny objects (AddressSanitizer's quarantine
    blow-up), fluidanimate chases cell/neighbour pointers (MPX ~4x
    memory), and so on. *)

module Scheme = Sb_protection.Scheme
module Rng = Sb_machine.Rng
open Sb_protection.Types
open Wctx

(** blackscholes: embarrassingly parallel option pricing over flat
    struct-of-arrays data; heavy arithmetic per element. *)
let blackscholes ctx ~n =
  let price = array ctx n 4 and strike = array ctx n 4 in
  let vol = array ctx n 4 and out = array ctx n 4 in
  fill_random ctx price n 4;
  fill_random ctx strike n 4;
  fill_random ctx vol n 4;
  parallel ctx n (fun _t lo hi ->
      for i = lo to hi - 1 do
        let sp = get ctx price i 4 and k = get ctx strike i 4 and v = get ctx vol i 4 in
        (* CNDF-ish arithmetic: ~40 retired instructions per option *)
        work ctx 40;
        set ctx out i 4 (fx_mul (sp + k) (v + 1))
      done)

(** bodytrack: particles evaluate likelihoods against shared body-part
    objects reached through a pointer table. *)
let bodytrack ctx ~n =
  let nparts = 256 in
  let parts = array ctx nparts 8 in
  for i = 0 to nparts - 1 do
    let o = array ctx 8 8 in
    fill_random ctx o 8 8;
    ctx.s.Scheme.store_ptr (idx ctx parts i 8) o
  done;
  parallel ctx n (fun _t lo hi ->
      for i = lo to hi - 1 do
        for e = 0 to 3 do
          let pi = ((i * 13) + (e * 7)) mod nparts in
          let part = ctx.s.Scheme.load_ptr (idx ctx parts pi 8) in
          let v = ctx.s.Scheme.safe_load (idx ctx part (e * 2) 8) 8 in
          work ctx 16;
          ignore v
        done
      done)

(** dedup: content-defined chunking with a rolling fingerprint and a
    digest store — see {!Parsec_dedup}. The allocation volume is what
    kills Intel MPX in the paper (missing bar in Figure 7). *)
let dedup ctx ~n = Parsec_dedup.run ctx ~n

(** ferret: content-based similarity search — query vectors ranked
    against database features reached through a pointer index. *)
let ferret ctx ~n =
  let db = 1024 and dims = 32 in
  let index = array ctx db 8 in
  for i = 0 to db - 1 do
    let f = array ctx dims 4 in
    fill_random ctx f dims 4;
    ctx.s.Scheme.store_ptr (idx ctx index i 8) f
  done;
  let query = array ctx dims 4 in
  fill_random ctx query dims 4;
  parallel ctx n (fun _t lo hi ->
      for q = lo to hi - 1 do
        for c = 0 to 15 do
          let cand = ctx.s.Scheme.load_ptr (idx ctx index (((q * 31) + c) mod db) 8) in
          let d = ref 0 in
          ctx.s.Scheme.check_range cand (dims * 4) Read;
          for j = 0 to dims - 1 do
            let a = ctx.s.Scheme.load_unchecked (idx ctx cand j 4) 4 in
            let b = get ctx query j 4 in
            d := !d + ((a - b) * (a - b));
            work ctx 3
          done
        done
      done)

(** fluidanimate: grid cells with neighbour-pointer lists; each timestep
    streams every cell and dereferences its neighbours. *)
let fluidanimate ctx ~n =
  (* n = number of cells *)
  let cells = array ctx n 8 in
  let cell_bytes = 56 + (6 * 8) + 4 in
  for i = 0 to n - 1 do
    ctx.s.Scheme.store_ptr (idx ctx cells i 8) (ctx.s.Scheme.malloc cell_bytes)
  done;
  (* wire 6 neighbours per cell *)
  for i = 0 to n - 1 do
    let c = ctx.s.Scheme.load_ptr (idx ctx cells i 8) in
    for d = 0 to 5 do
      let nb = (i + (d * 17) + 1) mod n in
      ctx.s.Scheme.store_ptr
        (ctx.s.Scheme.offset c (56 + (d * 8)))
        (ctx.s.Scheme.load_ptr (idx ctx cells nb 8))
    done
  done;
  (* Each timestep is PARSEC's barrier-separated double buffer: the
     compute phase reads the neighbour halo (field 0) and stages its
     result in the cell's scratch field (offset 4), and only after the
     join does the publish phase copy scratch into field 0 — each thread
     touching only its own cells. Writing field 0 directly from the
     compute phase would race with neighbours still reading it. *)
  for _step = 1 to 2 do
    parallel ctx n (fun _t lo hi ->
        ctx.s.Scheme.check_range (idx ctx cells lo 8) ((hi - lo) * 8) Read;
        for i = lo to hi - 1 do
          let c = ctx.s.Scheme.load_ptr_unchecked (idx ctx cells i 8) in
          let acc = ref 0 in
          for d = 0 to 5 do
            let nb = ctx.s.Scheme.load_ptr (ctx.s.Scheme.offset c (56 + (d * 8))) in
            acc := !acc + ctx.s.Scheme.safe_load nb 4;
            work ctx 8
          done;
          ctx.s.Scheme.safe_store (ctx.s.Scheme.offset c 4) 4 (!acc / 6)
        done);
    parallel ctx n (fun _t lo hi ->
        ctx.s.Scheme.check_range (idx ctx cells lo 8) ((hi - lo) * 8) Read;
        for i = lo to hi - 1 do
          let c = ctx.s.Scheme.load_ptr_unchecked (idx ctx cells i 8) in
          ctx.s.Scheme.safe_store c 4
            (ctx.s.Scheme.safe_load (ctx.s.Scheme.offset c 4) 4);
          work ctx 2
        done)
  done

(** streamcluster: repeated distance evaluations of flat points against
    a small center set — regular, cache-friendly. *)
let streamcluster ctx ~n =
  let dims = 8 and k = 8 in
  let pts = array ctx (n * dims) 4 in
  fill_random ctx pts (n * dims) 4;
  let centers = array ctx (k * dims) 4 in
  fill_random ctx centers (k * dims) 4;
  for _pass = 1 to 2 do
    parallel ctx n (fun _t lo hi ->
        for i = lo to hi - 1 do
          let base = idx ctx pts (i * dims) 4 in
          ctx.s.Scheme.check_range base (dims * 4) Read;
          ctx.s.Scheme.check_range centers (k * dims * 4) Read;
          for c = 0 to (k / 2) - 1 do
            for j = 0 to dims - 1 do
              let p = ctx.s.Scheme.load_unchecked (idx ctx base j 4) 4 in
              let q = ctx.s.Scheme.load_unchecked (idx ctx centers ((c * dims) + j) 4) 4 in
              work ctx 3;
              ignore (p - q)
            done
          done
        done)
  done

(** swaptions: Monte-Carlo paths re-allocating a handful of tiny arrays
    every iteration — tiny working set, extreme allocator churn. *)
let swaptions ctx ~n =
  parallel ctx n (fun _t lo hi ->
      for i = lo to hi - 1 do
        ignore i;
        let path = array ctx 8 8 in
        let rates = array ctx 6 8 in
        let disc = array ctx 4 8 in
        (* HJM path simulation: arithmetic-dense per step *)
        write_seq ctx path ~lo:0 ~hi:8 ~width:8 (fun j ->
            work ctx 45;
            j * 3);
        write_seq ctx rates ~lo:0 ~hi:6 ~width:8 (fun j ->
            work ctx 45;
            j + 1);
        work ctx 180; (* discounting and payoff *)
        let acc = ref 0 in
        read_seq ctx path ~lo:0 ~hi:8 ~width:8 (fun _ v -> acc := !acc + v);
        write_seq ctx disc ~lo:0 ~hi:4 ~width:8 (fun _ -> !acc);
        ctx.s.Scheme.free path;
        ctx.s.Scheme.free rates;
        ctx.s.Scheme.free disc
      done)

(** vips: image pipeline — three sequential transforms through
    intermediate buffers. *)
let vips ctx ~n =
  let src = array ctx n 8 in
  fill_random ctx src n 8;
  let tmp1 = array ctx n 8 and tmp2 = array ctx n 8 in
  let stage inp out f =
    parallel ctx n (fun _t lo hi ->
        read_seq ctx inp ~lo ~hi ~width:8 (fun i v ->
            work ctx 8;
            ctx.s.Scheme.store_unchecked (idx ctx out i 8) 8 (f v));
        (* the write side of the stage gets its own hoisted check *)
        ())
  in
  (* NB: writes above use store_unchecked under the read range check of
     [inp]; add an explicit range check for the output buffer. *)
  ctx.s.Scheme.check_range tmp1 (n * 8) Write;
  ctx.s.Scheme.check_range tmp2 (n * 8) Write;
  ctx.s.Scheme.check_range src (n * 8) Write;
  stage src tmp1 (fun v -> (v lsr 1) + 3);
  stage tmp1 tmp2 (fun v -> v lxor 0x5A5A);
  stage tmp2 src (fun v -> v + 1)

(** x264: motion estimation — current frame blocks compared against
    candidate positions in a reference frame addressed through row
    pointers. *)
let x264 ctx ~n =
  (* n = pixels per frame; 16:9-ish geometry *)
  let w = 256 in
  let h = max 16 (n / w) in
  let mk_frame () =
    let rows = array ctx h 8 in
    for y = 0 to h - 1 do
      let r = array ctx w 1 in
      fill_random ctx r w 1;
      ctx.s.Scheme.store_ptr (idx ctx rows y 8) r
    done;
    rows
  in
  let cur = mk_frame () and reff = mk_frame () in
  let blocks_y = h / 16 and blocks_x = w / 16 in
  parallel ctx blocks_y (fun _t by_lo by_hi ->
      for by = by_lo to by_hi - 1 do
        for bx = 0 to blocks_x - 1 do
          (* 4 candidate motion vectors, SAD over a sampled 16x4 patch *)
          for cand = 0 to 3 do
            let dy = (cand * 3) mod 5 and dx = (cand * 7) mod 5 in
            for y = 0 to 3 do
              let cy = (by * 16) + (y * 4) in
              let ry = min (h - 1) (cy + dy) in
              let crow = ctx.s.Scheme.load_ptr (idx ctx cur cy 8) in
              let rrow = ctx.s.Scheme.load_ptr (idx ctx reff ry 8) in
              let sad = ref 0 in
              (* the current-row walk is affine in x: its check hoists *)
              ctx.s.Scheme.check_range (idx ctx crow (bx * 16) 1) 16 Read;
              for x = 0 to 15 do
                let cx = (bx * 16) + x in
                let rx = min (w - 1) (cx + dx) in
                sad := !sad
                       + abs (ctx.s.Scheme.load_unchecked (idx ctx crow cx 1) 1
                              - get ctx rrow rx 1);
                work ctx 2
              done;
              ignore !sad
            done
          done
        done
      done)
