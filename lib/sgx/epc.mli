(** Enclave Page Cache model.

    The EPC is a fixed-size set of physical pages protected by the memory
    encryption engine. When the enclave touches a page that is not
    resident, the OS paging path evicts a victim (re-encrypting it) and
    loads + decrypts the requested page — the paper's §2.1 puts this at
    2x for sequential and up to 2000x for random access patterns; we
    charge a flat [epc_fault] cycle cost which lands in that band once
    cache effects are added on top.

    Eviction is CLOCK (second chance), a good stand-in for the Linux SGX
    driver's LRU-approximating behaviour. *)

type t

(** Paging events, for the telemetry event ring. An eviction always
    implies the re-encryption of the victim page (SGX pages leave the
    EPC encrypted); the fault that triggered it follows immediately. *)
type event =
  | Fault of { page : int }              (** page loaded + decrypted into the EPC *)
  | Evict of { page : int; slot : int }  (** victim re-encrypted and written back *)

(** [create ?num_pages ~capacity_pages ()] builds an EPC with
    [capacity_pages] slots. [num_pages] is the size of the simulated
    address space in pages; when given (and the fast engine is active)
    residency lookups use a direct-mapped page table of that size
    instead of a hashtable — behaviour is identical either way. *)
val create : ?num_pages:int -> capacity_pages:int -> unit -> t

(** Install (or remove, with [None]) an event callback. The memory
    system wires this to its telemetry hub only when tracing is on, so
    the paging fast path stays callback-free by default. *)
val set_tracer : t -> (event -> unit) option -> unit

(** [touch t ~page] notes an access to virtual page number [page].
    Returns [true] if it was resident (no fault). On a fault the page
    becomes resident, evicting a victim if the EPC is full. *)
val touch : t -> page:int -> bool

val faults : t -> int
val evictions : t -> int
val resident_pages : t -> int
val capacity_pages : t -> int
val reset_stats : t -> unit

(** Drop all residency state (between experiments). *)
val clear : t -> unit

(** [clear] plus: recycle the fast engine's direct-mapped residency
    table through a shared pool so the next [create] skips its
    zero-fill. Residency probes on a retired [t] fall back to the
    (now empty) hashtable, but callers should simply stop using it. *)
val retire : t -> unit
