module Config = Sb_machine.Config
module Vmem = Sb_vmem.Vmem
module Trace = Sb_machine.Trace
module Hierarchy = Sb_cache.Hierarchy
module Telemetry = Sb_telemetry.Telemetry

type access_class =
  | Data
  | Footer_meta
  | Shadow
  | Bounds_table
  | Quarantine
  | Overlay

let all_classes = [ Data; Footer_meta; Shadow; Bounds_table; Quarantine; Overlay ]
let n_classes = 6

let class_index = function
  | Data -> 0
  | Footer_meta -> 1
  | Shadow -> 2
  | Bounds_table -> 3
  | Quarantine -> 4
  | Overlay -> 5

let class_name = function
  | Data -> "data"
  | Footer_meta -> "footer_meta"
  | Shadow -> "shadow"
  | Bounds_table -> "bounds_table"
  | Quarantine -> "quarantine"
  | Overlay -> "overlay"

type class_stat = {
  accesses : int;
  cycles : int;
}

type snapshot = {
  cycles : int;
  instrs : int;
  mem_accesses : int;
  llc_misses : int;
  epc_faults : int;
}

type t = {
  cfg : Config.t;
  vmem : Vmem.t;
  hier : Hierarchy.t;
  epc : Epc.t option;
  tel : Telemetry.t;
  clocks : int array;
  mutable tid : int;
  mutable instrs : int;
  mutable mem_accesses : int;
  (* Cycle attribution: every cycle that enters [clocks] is also charged
     to exactly one bucket — a memory access class or [compute_cycles] —
     so the per-class breakdown always re-adds to the total (per
     thread; a parallel region's elapsed time is the max, not the sum). *)
  cls_accesses : int array;
  cls_cycles : int array;
  mutable compute_cycles : int;
  (* Telemetry hook, hoisted out of [charge_access]: the branch on
     whether histograms exist is taken once at [create] time and baked
     into this closure — a statically allocated no-op when telemetry is
     off, a pre-resolved per-class observation when it is on. *)
  observe : int -> int -> unit;
  mutable yield_countdown : int;
  line_mask : int;
  dram_cost : int;          (* cost of a DRAM access in the current env *)
  (* Fast engine: last-line cost memo. Holds the line-aligned address of
     the hierarchy's most recent access (so that line is at way 0 of L1
     by the LRU invariant), or -1. A single-line access to it is an L1
     hit costing [l1_cost] with no other state change — the short path
     skips the hierarchy walk and the EPC entirely, with identical
     stats. Invalidated by [reset] (which flushes the caches). *)
  mutable last_line : int;
  l1_cost : int;
  (* L2/LLC hit costs, cached so [line_cost] resolves the common probe
     outcomes without a cross-module [Hierarchy.hit_cost] call. *)
  l2_cost : int;
  llc_cost : int;
  (* Whether [observe] does anything — guards the indirect call. *)
  observing : bool;
  fast : bool;
  (* Fast engine, telemetry off: same-line streak accumulator. While
     consecutive single-line accesses stay on [last_line] with the same
     class, each has the identical effect (one L1 hit, [l1_cost] cycles
     to the same buckets), so only a count is kept and the batch is
     applied by [flush_pending] before any other bookkeeping runs or any
     stats are read — observable state equals the naive engine's at
     every read point. The yield countdown is still maintained per
     access, and the batch is flushed before a yield is performed, so
     cooperative scheduling (and every clock a scheduler could read) is
     bit-for-bit unchanged. Disabled under telemetry, which must observe
     each access individually. *)
  mutable pend_k : int;
  mutable pend_ci : int;
  (* Disabled (false) while a profiler is attached: the profiler needs
     every charge delivered at the site where it happens, and a batch
     flushed later would land on whatever site is then current. Batching
     is stats-invariant, so toggling it never changes simulated
     metrics. *)
  mutable batch : bool;
  (* Site-attributed profiling hook ({!attach_profiler}): called with
     (bucket, cost) for every charge — bucket is the access class index,
     or [n_classes] for unclassed compute. One predicted branch when
     detached. *)
  mutable profiling : bool;
  mutable prof : int -> int -> unit;
  (* Trace engine: superblock recorder ({!Sb_machine.Trace}). The run
     accumulator generalizes [pend_k]'s same-line batching to strided
     runs that move across lines, with the same contract: pending
     accounting is flushed before any other probe, any stats read, any
     thread switch and any yield. [trace_capable] is the creation-time
     engine sample; [tr.on] additionally drops while a profiler hook is
     attached. *)
  tr : Trace.t;
  trace_capable : bool;
}

let yield_quantum = 32

(* ---------- trace-engine fused data codec ----------

   The fused run path reads/writes a page's backing bytes directly
   through the window cached in [tr] — same unboxed uint16 composition
   as Vmem's fast codec (value-identical, including the width-8
   sign-replicating store), but through the bounds-check-free 16-bit
   primitives: the window test [0 <= o && o + width <= page_size] has
   already proven every byte in range, and the page's backing store is
   always exactly [page_size] bytes. *)

external get_16u : Bytes.t -> int -> int = "%caml_bytes_get16u"
external set_16u : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"

let swap16 v = ((v land 0xff) lsl 8) lor ((v lsr 8) land 0xff)

let get16le b o =
  let v = get_16u b o in
  if Sys.big_endian then swap16 v else v

let set16le b o v = set_16u b o (if Sys.big_endian then swap16 (v land 0xffff) else v)

let vpage_size = Vmem.page_size

(* [width] is guaranteed in {1,2,4,8} by the run promotion gate. *)
let win_load data o width =
  match width with
  | 1 -> Char.code (Bytes.unsafe_get data o)
  | 2 -> get16le data o
  | 4 -> get16le data o lor (get16le data (o + 2) lsl 16)
  | _ ->
    (get16le data o
     lor (get16le data (o + 2) lsl 16)
     lor (get16le data (o + 4) lsl 32)
     lor (get16le data (o + 6) lsl 48))
    land max_int

let win_store data o width v =
  match width with
  | 1 -> Bytes.unsafe_set data o (Char.unsafe_chr (v land 0xff))
  | 2 -> set16le data o (v land 0xffff)
  | 4 ->
    set16le data o (v land 0xffff);
    set16le data (o + 2) ((v lsr 16) land 0xffff)
  | _ ->
    set16le data o (v land 0xffff);
    set16le data (o + 2) ((v lsr 16) land 0xffff);
    set16le data (o + 4) ((v lsr 32) land 0xffff);
    set16le data (o + 6) ((v asr 48) land 0xffff)

(* ---------- cost model ---------- *)

let maybe_yield t =
  t.yield_countdown <- t.yield_countdown - 1;
  if t.yield_countdown <= 0 then begin
    t.yield_countdown <- yield_quantum;
    if Sb_machine.Eff.scheduler_active () then Effect.perform Sb_machine.Eff.Yield
  end

(* Cost of touching one cache line at [addr]. *)
let line_cost t addr =
  match Hierarchy.access t.hier ~addr with
  | Hierarchy.L1 -> t.l1_cost
  | Hierarchy.L2 -> t.l2_cost
  | Hierarchy.Llc -> t.llc_cost
  | Hierarchy.Dram ->
    let c = t.dram_cost in
    (match t.epc with
     | None -> c
     | Some epc ->
       if Epc.touch epc ~page:(addr lsr 12) then c else c + t.cfg.costs.epc_fault)

(* Apply the accounting of the live run's [run_k] pending accesses
   through its compiled flush closure, keeping the run alive (the next
   matching access continues it). Must run before any other probe, any
   stats mutation outside the run, and any stats read — the same
   contract as [flush_pending], which calls this. *)
let flush_run t =
  let tr = t.tr in
  let k = tr.Trace.run_k in
  if k > 0 then begin
    let start = tr.Trace.run_start in
    tr.Trace.run_k <- 0;
    tr.Trace.run_start <- tr.Trace.run_next;
    (* Fused-access counting is done here in bulk rather than per access:
       host-side observability only, so a run discarded by [reset]/
       [retire] (which never flush) under-counting is fine. *)
    tr.Trace.fused <- tr.Trace.fused + k;
    tr.Trace.run_flush start k
  end

(* Apply a pending same-line streak: [pend_k] accesses, each an L1 hit
   of [l1_cost] cycles charged to class [pend_ci]. Must run before any
   other stats mutation (so a yield can never migrate the batch to
   another thread's clock) and before any stats read. A pending batch
   and a live run are mutually exclusive (promotion flushes the batch,
   and batch accrual only happens with no run live), so the order of
   the two flushes is immaterial. *)
let flush_pending t =
  if t.pend_k > 0 then begin
    let k = t.pend_k in
    let ci = t.pend_ci in
    t.pend_k <- 0;
    t.mem_accesses <- t.mem_accesses + k;
    t.cls_accesses.(ci) <- t.cls_accesses.(ci) + k;
    let c = k * t.l1_cost in
    t.cls_cycles.(ci) <- t.cls_cycles.(ci) + c;
    t.clocks.(t.tid) <- t.clocks.(t.tid) + c;
    Hierarchy.count_l1_mru_hits t.hier k
  end;
  if t.tr.Trace.run_k > 0 then flush_run t

(* Flush and deactivate the live run. The detector is re-seeded with
   the run's tail so a stream that resumes the same stride re-promotes
   after two accesses. Used on pattern breaks, interposed probes
   ([touch_range]/[blit]/[fill]), page remaps and profiler attach —
   anything that would invalidate a run's residency assumptions. *)
let kill_run t =
  let tr = t.tr in
  if tr.Trace.run_w >= 0 then begin
    flush_run t;
    tr.Trace.last_addr <- tr.Trace.run_next - tr.Trace.run_stride;
    tr.Trace.last_stride <- tr.Trace.run_stride;
    tr.Trace.last_w <- tr.Trace.run_w;
    tr.Trace.last_ci <- tr.Trace.run_ci;
    tr.Trace.run_next <- min_int;
    tr.Trace.run_w <- -1;
    tr.Trace.run_ci <- -1;
    tr.Trace.win_base <- min_int
  end

(* Compile the flush closure for a (stride, width, class) site: replay
   the [k] pending accesses of a run starting at [start] with exactly
   the naive engine's observable effects — line probes in access order
   against the live cache/EPC, MRU hits counted in bulk — then apply
   the bulk charges. Replay iterates per cache *line*, not per access:
   within a resident line every access is a way-0 L1 hit, so a whole
   streak collapses into one division. *)
let mk_flush t ~stride ~w ~ci =
  if stride = 0 then
    (* Promotion guaranteed the accessed span sits inside [last_line],
       and no probe can interpose while a run is live, so all [k]
       accesses are way-0 L1 hits. *)
    fun _start k ->
      t.mem_accesses <- t.mem_accesses + k;
      t.cls_accesses.(ci) <- t.cls_accesses.(ci) + k;
      let c = k * t.l1_cost in
      t.cls_cycles.(ci) <- t.cls_cycles.(ci) + c;
      t.clocks.(t.tid) <- t.clocks.(t.tid) + c;
      Hierarchy.count_l1_mru_hits t.hier k
  else begin
    let line = t.cfg.line_size in
    fun start k ->
      let mask = t.line_mask in
      let a = ref start in
      let remaining = ref k in
      let cur = ref t.last_line in
      let mru = ref 0 in
      let cost = ref 0 in
      while !remaining > 0 do
        let first = !a land mask in
        let last = (!a + w - 1) land mask in
        if first = !cur && first = last then begin
          (* MRU streak: every further access whose span stays inside
             [cur] is an L1 hit — batch the whole streak. The division
             computes how many strides fit before the span leaves the
             line (forward: the end crosses; backward: the start
             drops below). *)
          let m =
            if stride > 0 then 1 + ((!cur + line - w - !a) / stride)
            else 1 + ((!cur - !a) / stride)
          in
          let m = if m > !remaining then !remaining else m in
          mru := !mru + m;
          remaining := !remaining - m;
          a := !a + (m * stride)
        end
        else begin
          (* Same probe order as the interpreter: low line first. *)
          cost := !cost + line_cost t !a;
          if first <> last then cost := !cost + line_cost t (!a + w - 1);
          cur := last;
          decr remaining;
          a := !a + stride
        end
      done;
      t.last_line <- !cur;
      Hierarchy.count_l1_mru_hits t.hier !mru;
      let c = !cost + (!mru * t.l1_cost) in
      t.mem_accesses <- t.mem_accesses + k;
      t.cls_accesses.(ci) <- t.cls_accesses.(ci) + k;
      t.cls_cycles.(ci) <- t.cls_cycles.(ci) + c;
      t.clocks.(t.tid) <- t.clocks.(t.tid) + c
  end

(* Continue the live run with one more access: pure counter arithmetic.
   The yield countdown is maintained per access — identical scheduling
   points to the interpreter — and the run is flushed before any yield
   can hand control away. *)
(* Countdown expiry, out of line so the hot path below can inline: the
   countdown itself must tick per access (a scheduler that attaches
   later inherits the exact interpreter phase), but the flush is only
   needed if control can actually leave — without a scheduler the run
   just keeps accumulating. *)
let[@inline never] fused_quantum t =
  t.yield_countdown <- yield_quantum;
  if Sb_machine.Eff.scheduler_active () then begin
    flush_run t;
    Effect.perform Sb_machine.Eff.Yield
  end

let[@inline always] fused_account t =
  let tr = t.tr in
  tr.Trace.run_k <- tr.Trace.run_k + 1;
  tr.Trace.run_next <- tr.Trace.run_next + tr.Trace.run_stride;
  let c = t.yield_countdown - 1 in
  t.yield_countdown <- c;
  if c <= 0 then fused_quantum t

(* Promote the current access into a fresh run. The same-line batch the
   pre-run accesses may have accumulated is flushed first, preserving
   accounting order. The flush closure is compiled once per (stride,
   width, class) signature and memoized in the site table. *)
let start_run t ~ci ~addr ~width ~stride =
  flush_pending t;
  let tr = t.tr in
  let sg = Trace.pack_sig ~stride ~width ~ci in
  let f = tr.Trace.sites.(sg) in
  let f =
    if f != Trace.no_flush then f
    else begin
      let f = mk_flush t ~stride ~w:width ~ci in
      tr.Trace.sites.(sg) <- f;
      f
    end
  in
  tr.Trace.site_hits.(sg) <- tr.Trace.site_hits.(sg) + 1;
  tr.Trace.superblocks <- tr.Trace.superblocks + 1;
  tr.Trace.run_flush <- f;
  tr.Trace.run_stride <- stride;
  tr.Trace.run_w <- width;
  tr.Trace.run_ci <- ci;
  tr.Trace.run_start <- addr;
  tr.Trace.run_next <- addr + stride;
  tr.Trace.run_k <- 1;
  tr.Trace.win_base <- min_int;
  let c = t.yield_countdown - 1 in
  t.yield_countdown <- c;
  if c <= 0 then fused_quantum t

let create ?tel (cfg : Config.t) =
  let tel = match tel with Some t -> t | None -> Telemetry.disabled () in
  let fast = Sb_machine.Fastpath.is_enabled () in
  let trace_capable =
    Sb_machine.Fastpath.trace_enabled () && not (Telemetry.is_enabled tel)
  in
  let epc =
    match cfg.env with
    | Config.Inside_enclave ->
      Some
        (Epc.create
           ~num_pages:((Vmem.addr_mask + 1) lsr 12)
           ~capacity_pages:(max 4 (cfg.epc_bytes / cfg.page_size))
           ())
    | Config.Outside_enclave -> None
  in
  let dram_cost =
    match cfg.env with
    | Config.Inside_enclave -> cfg.costs.dram * (100 + cfg.costs.mee_percent) / 100
    | Config.Outside_enclave -> cfg.costs.dram
  in
  let observe =
    if Telemetry.is_enabled tel then begin
      let hists =
        Array.of_list
          (List.map
             (fun c -> Telemetry.histogram tel ("access_cycles:" ^ class_name c))
             all_classes)
      in
      fun ci cost -> Sb_telemetry.Metrics.Histogram.observe hists.(ci) cost
    end
    else fun _ _ -> ()
  in
  let hier = Hierarchy.create cfg in
  let t =
    {
      cfg;
      vmem = Vmem.create cfg;
      hier;
      epc;
      tel;
      clocks = Array.make cfg.max_threads 0;
      tid = 0;
      instrs = 0;
      mem_accesses = 0;
      cls_accesses = Array.make n_classes 0;
      cls_cycles = Array.make n_classes 0;
      compute_cycles = 0;
      observe;
      yield_countdown = yield_quantum;
      line_mask = lnot (cfg.line_size - 1);
      dram_cost;
      last_line = -1;
      l1_cost = Hierarchy.l1_hit_cost hier;
      l2_cost = cfg.costs.l2_hit;
      llc_cost = cfg.costs.llc_hit;
      observing = Telemetry.is_enabled tel;
      fast;
      pend_k = 0;
      pend_ci = 0;
      batch = fast && not (Telemetry.is_enabled tel);
      profiling = false;
      prof = (fun _ _ -> ());
      tr = Trace.create ~enabled:trace_capable;
      trace_capable;
    }
  in
  if trace_capable then
    (* Any remap/protect/retire of the address space kills the live run
       and its cached page window: the accounting that is already
       pending is applied (the probes it replays are address-keyed and
       do not depend on the mapping), and the data path re-translates. *)
    Vmem.set_remap_hook t.vmem (fun () ->
      if t.tr.Trace.run_w >= 0 then begin
        t.tr.Trace.invalidations <- t.tr.Trace.invalidations + 1;
        kill_run t
      end
      else t.tr.Trace.win_base <- min_int);
  Telemetry.set_clock tel (fun () -> t.clocks.(t.tid));
  Telemetry.set_tid tel (fun () -> t.tid);
  (match epc with
   | Some e when Telemetry.is_enabled tel ->
     Epc.set_tracer e
       (Some
          (function
            | Epc.Fault { page } ->
              Telemetry.event tel ~cat:"epc" ~args:[ ("page", Printf.sprintf "0x%x" page) ]
                "epc_fault"
            | Epc.Evict { page; slot } ->
              Telemetry.event tel ~cat:"epc"
                ~args:
                  [ ("page", Printf.sprintf "0x%x" page); ("slot", string_of_int slot) ]
                "epc_evict"))
   | _ -> ());
  t

let cfg t = t.cfg
let vmem t = t.vmem
let telemetry t = t.tel

let charge_access t ci cost =
  t.cls_accesses.(ci) <- t.cls_accesses.(ci) + 1;
  t.cls_cycles.(ci) <- t.cls_cycles.(ci) + cost;
  t.clocks.(t.tid) <- t.clocks.(t.tid) + cost;
  if t.observing then t.observe ci cost;
  if t.profiling then t.prof ci cost;
  maybe_yield t

(* The interpreter: one access at a time. Under the trace engine this
   is also the recorder — a break first kills any live run, then the
   stride detector looks for two consecutive equal (stride, width,
   class) steps and promotes the stream into a run. *)
let touch_general t ~cls ~addr ~width =
  let tr = t.tr in
  let ci = class_index cls in
  if tr.Trace.run_w >= 0 then begin
    tr.Trace.breaks <- tr.Trace.breaks + 1;
    kill_run t
  end;
  if
    tr.Trace.on
    && addr - tr.Trace.last_addr = tr.Trace.last_stride
    && width = tr.Trace.last_w
    && ci = tr.Trace.last_ci
    && (match width with 1 | 2 | 4 | 8 -> true | _ -> false)
    && (let s = tr.Trace.last_stride in
        if s = 0 then
          (* Stride-0 runs are accounted as pure MRU hits: require the
             span resident in the last-probed line and unsplit. *)
          (addr land (t.cfg.line_size - 1)) + width <= t.cfg.line_size
          && addr land t.line_mask = t.last_line
        else s >= -Trace.max_stride && s <= Trace.max_stride)
  then start_run t ~ci ~addr ~width ~stride:tr.Trace.last_stride
  else begin
    if tr.Trace.on then begin
      tr.Trace.last_stride <- addr - tr.Trace.last_addr;
      tr.Trace.last_addr <- addr;
      tr.Trace.last_w <- width;
      tr.Trace.last_ci <- ci
    end;
    let first = addr land t.line_mask in
    let last = (addr + width - 1) land t.line_mask in
    if first = t.last_line && first = last then begin
      (* Same line as the previous access: guaranteed L1 hit at way 0. *)
      if t.batch then begin
        if t.pend_k > 0 && ci <> t.pend_ci then flush_pending t;
        t.pend_ci <- ci;
        t.pend_k <- t.pend_k + 1;
        t.yield_countdown <- t.yield_countdown - 1;
        if t.yield_countdown <= 0 then begin
          flush_pending t;
          t.yield_countdown <- yield_quantum;
          if Sb_machine.Eff.scheduler_active () then Effect.perform Sb_machine.Eff.Yield
        end
      end
      else begin
        t.mem_accesses <- t.mem_accesses + 1;
        Hierarchy.count_l1_mru_hits t.hier 1;
        charge_access t ci t.l1_cost
      end
    end
    else begin
      flush_pending t;
      t.mem_accesses <- t.mem_accesses + 1;
      (* The two line probes of a split access must run low-line-first:
         the last-line memo (and the L1 MRU invariant it relies on) needs
         [last] to be the most recently probed line, and OCaml evaluates
         [+] operands right-to-left, so the order is pinned with a let. *)
      let cost =
        if first = last then line_cost t addr
        else begin
          let c_first = line_cost t addr in
          c_first + line_cost t (addr + width - 1)
        end
      in
      if t.fast then t.last_line <- last;
      charge_access t ci cost
    end
  end

let touch ?(cls = Data) t ~addr ~width =
  let tr = t.tr in
  if
    addr = tr.Trace.run_next && width = tr.Trace.run_w
    && class_index cls = tr.Trace.run_ci
  then fused_account t
  else touch_general t ~cls ~addr ~width

let touch_range ?(cls = Data) t ~addr ~len =
  if len > 0 then begin
    flush_pending t;
    (* A bulk range probe moves [last_line] and the cache state out
       from under any live run, so the run cannot stay alive. *)
    kill_run t;
    let line = t.cfg.line_size in
    let first = addr land t.line_mask in
    let last = (addr + len - 1) land t.line_mask in
    let a = ref first in
    let cost = ref 0 in
    let n = ref 0 in
    while !a <= last do
      cost := !cost + line_cost t !a;
      incr n;
      a := !a + line
    done;
    if t.fast then t.last_line <- last;
    let ci = class_index cls in
    t.mem_accesses <- t.mem_accesses + !n;
    t.cls_accesses.(ci) <- t.cls_accesses.(ci) + !n - 1;  (* charge_access adds 1 *)
    charge_access t ci !cost
  end

(* Re-establish the fused data window after a miss: perform the access
   through Vmem (which faults exactly like the interpreter would — the
   access was already accounted, matching the interpreter's
   touch-then-access order), then cache the page under [addr]. *)
let refresh_window t addr =
  let tr = t.tr in
  match Vmem.window t.vmem ~addr with
  | Some (data, writable) ->
    tr.Trace.win_data <- data;
    tr.Trace.win_base <- addr land lnot (vpage_size - 1);
    tr.Trace.win_wr <- writable
  | None -> tr.Trace.win_base <- min_int

let load_refill t ~addr ~width =
  let v = Vmem.load t.vmem ~addr ~width in
  refresh_window t addr;
  v

let store_refill t ~addr ~width v =
  Vmem.store t.vmem ~addr ~width v;
  refresh_window t addr

let load ?(cls = Data) t ~addr ~width =
  let tr = t.tr in
  if
    addr = tr.Trace.run_next && width = tr.Trace.run_w
    && class_index cls = tr.Trace.run_ci
  then begin
    fused_account t;
    let o = addr - tr.Trace.win_base in
    if o >= 0 && o + width <= vpage_size then win_load tr.Trace.win_data o width
    else load_refill t ~addr ~width
  end
  else begin
    touch_general t ~cls ~addr ~width;
    Vmem.load t.vmem ~addr ~width
  end

let store ?(cls = Data) t ~addr ~width v =
  let tr = t.tr in
  if
    addr = tr.Trace.run_next && width = tr.Trace.run_w
    && class_index cls = tr.Trace.run_ci
  then begin
    fused_account t;
    let o = addr - tr.Trace.win_base in
    if tr.Trace.win_wr && o >= 0 && o + width <= vpage_size then
      win_store tr.Trace.win_data o width v
    else store_refill t ~addr ~width v
  end
  else begin
    touch_general t ~cls ~addr ~width;
    Vmem.store t.vmem ~addr ~width v
  end

let blit ?cls t ~src ~dst ~len =
  touch_range ?cls t ~addr:src ~len;
  touch_range ?cls t ~addr:dst ~len;
  Vmem.blit t.vmem ~src ~dst ~len

let fill ?cls t ~addr ~len ~byte =
  touch_range ?cls t ~addr ~len;
  Vmem.fill t.vmem ~addr ~len ~byte

let charge_alu ?cls t n =
  t.instrs <- t.instrs + n;
  let c = n * t.cfg.costs.alu in
  (match cls with
   | None ->
     t.compute_cycles <- t.compute_cycles + c;
     if t.profiling then t.prof n_classes c
   | Some cl ->
     let ci = class_index cl in
     t.cls_cycles.(ci) <- t.cls_cycles.(ci) + c;
     if t.profiling then t.prof ci c);
  t.clocks.(t.tid) <- t.clocks.(t.tid) + c

let set_thread t tid =
  flush_pending t;
  t.tid <- tid

let current_thread t = t.tid

let get_clock t tid =
  flush_pending t;
  t.clocks.(tid)

let set_clock t tid v =
  flush_pending t;
  t.clocks.(tid) <- v

let elapsed t =
  flush_pending t;
  Array.fold_left max 0 t.clocks

let snapshot t =
  flush_pending t;
  {
    cycles = elapsed t;
    instrs = t.instrs;
    mem_accesses = t.mem_accesses;
    llc_misses = Hierarchy.llc_misses t.hier;
    epc_faults = (match t.epc with None -> 0 | Some e -> Epc.faults e);
  }

let attribution t =
  flush_pending t;
  List.map
    (fun c ->
       let i = class_index c in
       (c, { accesses = t.cls_accesses.(i); cycles = t.cls_cycles.(i) }))
    all_classes

let compute_cycles t = t.compute_cycles

let attributed_cycles t =
  flush_pending t;
  Array.fold_left ( + ) t.compute_cycles t.cls_cycles

let cache_stats t =
  flush_pending t;
  Hierarchy.stats t.hier

let trace_stats t =
  flush_pending t;
  Trace.stats t.tr

let reset t =
  t.pend_k <- 0;
  (* Pending run accounting is discarded like [pend_k], not flushed:
     the stats it would land in are being zeroed. Recorder counters are
     zeroed with every other stat, but compiled sites stay — the access
     pattern they memoize is a property of the machine, not the run. *)
  Trace.reset t.tr;
  Array.fill t.clocks 0 (Array.length t.clocks) 0;
  t.tid <- 0;
  t.instrs <- 0;
  t.mem_accesses <- 0;
  Array.fill t.cls_accesses 0 n_classes 0;
  Array.fill t.cls_cycles 0 n_classes 0;
  t.compute_cycles <- 0;
  t.last_line <- -1;
  Hierarchy.flush t.hier;
  Hierarchy.reset_stats t.hier;
  Telemetry.reset t.tel;
  match t.epc with None -> () | Some e -> Epc.clear e

let epc_faults t = match t.epc with None -> 0 | Some e -> Epc.faults e
let epc_evictions t = match t.epc with None -> 0 | Some e -> Epc.evictions e
let llc_misses t = Hierarchy.llc_misses t.hier

(* ---------- site-attributed profiling ---------- *)

module Profile = Sb_telemetry.Profile

let profile_buckets =
  Array.of_list (List.map class_name all_classes @ [ "compute" ])

let set_charge_hook t hook =
  flush_pending t;
  match hook with
  | Some h ->
    (* The profiler needs every charge delivered at the site where it
       happens: kill any live run and stop promoting new ones. Both are
       stats-invariant — simulated metrics do not change. *)
    if t.tr.Trace.run_w >= 0 then
      t.tr.Trace.invalidations <- t.tr.Trace.invalidations + 1;
    kill_run t;
    t.tr.Trace.on <- false;
    t.prof <- h;
    t.profiling <- true;
    t.batch <- false
  | None ->
    t.profiling <- false;
    t.prof <- (fun _ _ -> ());
    t.batch <- t.fast && not (Telemetry.is_enabled t.tel);
    t.tr.Trace.on <- t.trace_capable

let attach_profiler t p =
  if Array.length (Profile.bucket_names p) <> n_classes + 1 then
    invalid_arg "Memsys.attach_profiler: profiler buckets must be profile_buckets";
  Profile.ensure_threads p t.cfg.Config.max_threads;
  Profile.set_tid p (fun () -> t.tid);
  set_charge_hook t (Some (Profile.charge p))

let detach_profiler t = set_charge_hook t None

let retire t =
  (* Drop (don't flush) any pending run first: the Vmem remap hook
     fires during [Vmem.retire], and the EPC it would probe is being
     retired. Stats must be read before [retire] anyway. *)
  Trace.clear_run t.tr;
  (match t.epc with None -> () | Some e -> Epc.retire e);
  Vmem.retire t.vmem
